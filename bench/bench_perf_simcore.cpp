// bench_perf_simcore: the simulator-core performance harness.
//
// Every paper figure is produced by sweeps that push hundreds of millions
// of packet events through the discrete-event core, so the per-event cost
// is the scale knob that matters after PR 2's cross-cell parallelism. This
// driver pins that cost down: it wires four representative dumbbell
// scenarios directly onto the simulator (no sweep/checkpoint machinery in
// the way), runs each one, and reports
//   * events/sec and ns/event over the steady-state window (post-warmup),
//   * allocations per event in steady state (via the counting-allocator
//     hook in src/util/alloc_counter.*) — the pooled event core must hold
//     this at exactly zero,
//   * packet throughput as a sanity anchor.
//
// Scenarios: 2-flow (the paper's Fig. 3 shape), 50-flow (Fig. 9 shape, the
// acceptance scenario), impaired (loss + jitter + reordering exercises the
// retransmit/out-of-order paths), deep-buffer (50 BDP, Fig. 12 shape,
// stresses queue pooling).
//
// Usage:
//   bench_perf_simcore [--quick] [--repeat N] [--check] [--json PATH]
//     --quick   quarter-length runs (the CI smoke configuration)
//     --repeat  run each scenario N times, keep the fastest (default 1)
//     --check   exit non-zero when steady-state allocations are nonzero
//               (deterministic, so safe for CI; no timing assertions)
//     --trap    abort on the first steady-state allocation (run under a
//               debugger: the backtrace names the allocating code path)
//     --json    write the measurements as JSON (BENCH_simcore.json schema,
//               documented in EXPERIMENTS.md)
//     --write-baseline FILE
//               record per-case events/sec as a JSONL baseline
//     --baseline FILE [--tolerance F]
//               compare against a recorded baseline: exit non-zero when any
//               case regresses below (1 - F) x baseline events/sec
//               (default F = 0.01). Timing-dependent — for perf triage on a
//               quiet machine, not for CI (CI uses the timing-free --check).
//     --check-events FILE
//               bit-identity gate: exit non-zero when any case's steady
//               event count differs from the recorded baseline. Event
//               counts are a pure function of the workload (no timing), so
//               this IS CI-safe — it is the `perf` ctest preset's gate
//               that optimizations stay semantics-preserving.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cc/cc_variant.hpp"
#include "cc/congestion_control.hpp"
#include "flow/receiver.hpp"
#include "flow/sender.hpp"
#include "net/bottleneck_link.hpp"
#include "net/delay_line.hpp"
#include "net/impairment.hpp"
#include "exp/cli_flags.hpp"
#include "sim/simulator.hpp"
#include "util/alloc_counter.hpp"
#include "util/jsonl.hpp"
#include "util/schemas.hpp"
#include "util/units.hpp"

namespace bbrnash {
namespace {

bool g_trap_steady = false;  ///< --trap: abort on first steady-state alloc

struct PerfCase {
  std::string name;
  int bbr_flows = 1;
  int cubic_flows = 1;
  BytesPerSec capacity = mbps(100);
  TimeNs rtt = from_ms(40);
  double buffer_bdps = 1.0;
  TimeNs duration = from_sec(10);
  TimeNs warmup = from_sec(2);
  ImpairmentConfig impair;  ///< data-path impairments (pristine by default)
};

struct Measurement {
  std::uint64_t total_events = 0;
  double total_wall_sec = 0.0;
  std::uint64_t steady_events = 0;
  double steady_wall_sec = 0.0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_frees = 0;
  std::uint64_t packets_delivered = 0;

  [[nodiscard]] double events_per_sec() const {
    return steady_wall_sec > 0.0
               ? static_cast<double>(steady_events) / steady_wall_sec
               : 0.0;
  }
  [[nodiscard]] double ns_per_event() const {
    return steady_events > 0
               ? steady_wall_sec * 1e9 / static_cast<double>(steady_events)
               : 0.0;
  }
  [[nodiscard]] double allocs_per_event() const {
    return steady_events > 0
               ? static_cast<double>(steady_allocs) /
                     static_cast<double>(steady_events)
               : 0.0;
  }
};

/// A packet plus its bottleneck sojourn, travelling the forward delay line
/// (same shape the scenario runner uses).
struct Delivery {
  Packet pkt;
  TimeNs sojourn;
};

/// SplitMix64 finalizer: deterministic per-flow seed streams.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Measurement run_case(const PerfCase& pc) {
  const auto n = static_cast<std::uint32_t>(pc.bbr_flows + pc.cubic_flows);
  Simulator sim;
  const Bytes bdp = bdp_bytes(pc.capacity, pc.rtt);
  const Bytes buffer = std::max<Bytes>(
      3 * (kDefaultMss + kHeaderBytes),
      static_cast<Bytes>(static_cast<double>(bdp) * pc.buffer_bdps));
  BottleneckLink link{sim, pc.capacity, buffer, n};

  // Pre-size every per-packet pool past its expected high-water mark, so
  // nothing grows (allocates) inside the measured steady-state window: the
  // aggregate in-flight span is bounded by BDP + buffer packets, and each
  // in-flight packet accounts for a handful of scheduled events. Per-flow
  // pools get the aggregate span scaled by the flow count (with slack for
  // skew) — oversizing them is not free, because a ring's head sweeps its
  // whole buffer and an oversized ring trades cache locality for nothing.
  // All pools still grow on demand if a scenario overruns the hint.
  const auto total_window_pkts = static_cast<std::size_t>(
      (bdp + buffer) / (kDefaultMss + kHeaderBytes) + 1);
  const std::size_t per_flow_pkts = 4 * total_window_pkts / n + 512;
  sim.reserve_events(16 * total_window_pkts + 4096);

  std::vector<std::unique_ptr<Sender>> senders;
  std::vector<std::unique_ptr<Receiver>> receivers;
  std::vector<std::unique_ptr<DelayLine<Delivery>>> fwd;
  std::vector<std::unique_ptr<DelayLine<Ack>>> rev;
  std::vector<std::unique_ptr<ImpairmentStage<Packet>>> stages(n);
  senders.reserve(n);
  receivers.reserve(n);
  fwd.reserve(n);
  rev.reserve(n);

  for (std::uint32_t i = 0; i < n; ++i) {
    receivers.push_back(std::make_unique<Receiver>(i));
    fwd.push_back(std::make_unique<DelayLine<Delivery>>(sim, pc.rtt / 2));
    rev.push_back(
        std::make_unique<DelayLine<Ack>>(sim, pc.rtt - pc.rtt / 2));
    if (pc.impair.any()) {
      stages[i] = std::make_unique<ImpairmentStage<Packet>>(
          sim, pc.impair, mix_seed(42, i + 1));
      stages[i]->set_sink([&link](const Packet& p) { link.send(p); });
    }

    CcConfig cfg;
    cfg.seed = mix_seed(7, i + 1);
    const CcKind kind =
        i < static_cast<std::uint32_t>(pc.bbr_flows) ? CcKind::kBbr
                                                     : CcKind::kCubic;
    ImpairmentStage<Packet>* stage = stages[i].get();
    senders.push_back(std::make_unique<Sender>(
        sim, i, SenderConfig{}, make_cc_variant(kind, cfg),
        [&link, stage](const Packet& p) {
          if (stage != nullptr) {
            stage->send(p);
          } else {
            link.send(p);
          }
        }));


    senders.back()->reserve_windows(per_flow_pkts);
    receivers.back()->reserve_reorder(per_flow_pkts);

    fwd[i]->set_sink([&receivers, i](const Delivery& d) {
      receivers[i]->on_packet(d.pkt, d.sojourn);
    });
    receivers[i]->set_ack_sink(
        [&rev, i](const Ack& ack) { rev[i]->send(ack); });
    rev[i]->set_sink(
        [&senders, i](const Ack& ack) { senders[i]->on_ack(ack); });
  }
  link.set_sink([&sim, &fwd](const Packet& pkt) {
    const TimeNs sojourn =
        pkt.enqueued_at == kTimeNone ? 0 : sim.now() - pkt.enqueued_at;
    fwd[pkt.flow]->send(Delivery{pkt, sojourn});
  });

  // Stagger starts across one RTT so slow starts decorrelate (fixed stride:
  // the bench must be deterministic run to run).
  for (std::uint32_t i = 0; i < n; ++i) {
    senders[i]->start(static_cast<TimeNs>(i) * (pc.rtt / std::max(1u, n)));
  }

  // bbrnash-lint: allow(wall-clock) -- this harness MEASURES wall time
  // (events/sec, ns/event); timing never feeds back into simulation state.
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  sim.run_until(pc.warmup);
  const auto t1 = Clock::now();
  const std::uint64_t warm_events = sim.events_executed();
  const std::uint64_t warm_news = allocs::news();
  const std::uint64_t warm_deletes = allocs::deletes();
  if (g_trap_steady) allocs::set_trap(true);
  sim.run_until(pc.duration);
  if (g_trap_steady) allocs::set_trap(false);
  const auto t2 = Clock::now();

  Measurement m;
  m.total_events = sim.events_executed();
  m.total_wall_sec = std::chrono::duration<double>(t2 - t0).count();
  m.steady_events = sim.events_executed() - warm_events;
  m.steady_wall_sec = std::chrono::duration<double>(t2 - t1).count();
  m.steady_allocs = allocs::news() - warm_news;
  m.steady_frees = allocs::deletes() - warm_deletes;
  for (const auto& r : receivers) m.packets_delivered += r->packets_received();
  return m;
}

std::vector<PerfCase> make_cases(bool quick) {
  const double scale = quick ? 0.25 : 1.0;
  const auto secs = [scale](double s) { return from_sec(s * scale); };

  PerfCase two_flow;
  two_flow.name = "two_flow";
  two_flow.bbr_flows = 1;
  two_flow.cubic_flows = 1;
  two_flow.capacity = mbps(200);
  two_flow.duration = secs(12);
  two_flow.warmup = secs(4);

  PerfCase fifty_flow;
  fifty_flow.name = "fifty_flow";
  fifty_flow.bbr_flows = 25;
  fifty_flow.cubic_flows = 25;
  fifty_flow.capacity = mbps(400);
  fifty_flow.duration = secs(8);
  fifty_flow.warmup = secs(3);

  PerfCase impaired;
  impaired.name = "impaired";
  impaired.bbr_flows = 2;
  impaired.cubic_flows = 2;
  impaired.capacity = mbps(100);
  impaired.duration = secs(12);
  impaired.warmup = secs(4);
  impaired.impair.loss_rate = 0.005;
  impaired.impair.jitter = from_ms(2);
  impaired.impair.reorder_rate = 0.001;
  impaired.impair.reorder_delay = from_ms(5);

  PerfCase deep_buffer;
  deep_buffer.name = "deep_buffer";
  deep_buffer.bbr_flows = 1;
  deep_buffer.cubic_flows = 1;
  deep_buffer.capacity = mbps(100);
  deep_buffer.buffer_bdps = 50.0;
  deep_buffer.duration = secs(12);
  deep_buffer.warmup = secs(4);

  return {two_flow, fifty_flow, impaired, deep_buffer};
}

void write_json(const std::string& path, bool quick,
                const std::vector<PerfCase>& cases,
                const std::vector<Measurement>& results) {
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  os << "{\n  \"schema\": \"" << kSchemaSimcorePerf << "\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Measurement& m = results[i];
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"%s\", \"steady_events\": %llu, "
        "\"steady_wall_sec\": %.6f, \"events_per_sec\": %.0f, "
        "\"ns_per_event\": %.2f, \"allocs_per_event\": %.8f, "
        "\"steady_allocs\": %llu, \"steady_frees\": %llu, "
        "\"packets_delivered\": %llu}%s\n",
        cases[i].name.c_str(),
        static_cast<unsigned long long>(m.steady_events), m.steady_wall_sec,
        m.events_per_sec(), m.ns_per_event(), m.allocs_per_event(),
        static_cast<unsigned long long>(m.steady_allocs),
        static_cast<unsigned long long>(m.steady_frees),
        static_cast<unsigned long long>(m.packets_delivered),
        i + 1 < cases.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

/// One JSONL record per case; overwritten wholesale (a baseline is a
/// snapshot, not an append log).
void write_baseline(const std::string& path, bool quick,
                    const std::vector<PerfCase>& cases,
                    const std::vector<Measurement>& results) {
  std::ofstream os{path, std::ios::trunc};
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    JsonlRecord rec;
    rec.set("schema", kSchemaSimcoreBaseline);
    rec.set("name", cases[i].name);
    rec.set("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
    rec.set("events_per_sec", results[i].events_per_sec());
    rec.set("ns_per_event", results[i].ns_per_event());
    rec.set("steady_events", results[i].steady_events);
    os << rec.encode() << '\n';
  }
  std::printf("baseline written to %s (%zu cases)\n", path.c_str(),
              cases.size());
}

/// Timing-free bit-identity gate (CI-safe, unlike the events/sec compare):
/// steady-state event counts are a pure function of the workload, so any
/// deviation from the recorded baseline means simulation semantics changed.
/// Returns the number of mismatching cases; cases without a baseline entry
/// are reported but don't fail (a new case has nothing to diverge from).
int check_event_counts(const std::string& path,
                       const std::vector<PerfCase>& cases,
                       const std::vector<Measurement>& results) {
  std::size_t skipped = 0;
  const std::vector<JsonlRecord> records = read_jsonl(path, &skipped);
  if (skipped > 0) {
    std::fprintf(stderr, "warning: %zu unparseable line(s) in %s\n", skipped,
                 path.c_str());
  }
  if (records.empty()) {
    std::fprintf(stderr,
                 "error: no baseline records in %s (run with "
                 "--write-baseline first)\n",
                 path.c_str());
    return -1;
  }
  std::map<std::string, std::uint64_t> base;
  for (const JsonlRecord& r : records) {
    base[r.get_string("name")] =
        static_cast<std::uint64_t>(r.get_double("steady_events"));
  }
  int mismatches = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto it = base.find(cases[i].name);
    if (it == base.end()) {
      std::printf("events   %-12s (no baseline entry)\n",
                  cases[i].name.c_str());
      continue;
    }
    const bool ok = results[i].steady_events == it->second;
    if (!ok) ++mismatches;
    std::printf("events   %-12s %14llu vs %14llu recorded %s\n",
                cases[i].name.c_str(),
                static_cast<unsigned long long>(results[i].steady_events),
                static_cast<unsigned long long>(it->second),
                ok ? "ok" : "MISMATCH");
  }
  return mismatches;
}

/// Returns the number of cases that regressed below (1 - tolerance) x
/// their baseline events/sec. Cases without a baseline entry are reported
/// but don't fail the run (a new case has nothing to regress against).
int compare_baseline(const std::string& path, double tolerance,
                     const std::vector<PerfCase>& cases,
                     const std::vector<Measurement>& results) {
  std::size_t skipped = 0;
  const std::vector<JsonlRecord> records = read_jsonl(path, &skipped);
  if (skipped > 0) {
    std::fprintf(stderr, "warning: %zu unparseable line(s) in %s\n", skipped,
                 path.c_str());
  }
  if (records.empty()) {
    std::fprintf(stderr,
                 "error: no baseline records in %s (run with "
                 "--write-baseline first)\n",
                 path.c_str());
    return -1;
  }
  std::map<std::string, double> base;
  for (const JsonlRecord& r : records) {
    base[r.get_string("name")] = r.get_double("events_per_sec");
  }
  int regressions = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto it = base.find(cases[i].name);
    if (it == base.end() || it->second <= 0.0) {
      std::printf("baseline %-12s (no baseline entry)\n",
                  cases[i].name.c_str());
      continue;
    }
    const double measured = results[i].events_per_sec();
    const double floor = (1.0 - tolerance) * it->second;
    const bool ok = measured >= floor;
    if (!ok) ++regressions;
    std::printf("baseline %-12s %12.0f ev/s vs %12.0f recorded (%+.2f%%) %s\n",
                cases[i].name.c_str(), measured, it->second,
                100.0 * (measured / it->second - 1.0), ok ? "ok" : "REGRESSED");
  }
  return regressions;
}

}  // namespace
}  // namespace bbrnash

int main(int argc, char** argv) {
  using namespace bbrnash;
  bool quick = false;
  bool check = false;
  int repeat = 1;
  double tolerance = 0.01;
  std::string json_path;
  std::string only;
  std::string baseline_in;
  std::string baseline_out;
  std::string events_baseline;
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: bench_perf_simcore [--quick] [--repeat N] "
                 "[--check] [--trap] [--only CASE] [--json PATH]\n"
                 "                          [--write-baseline FILE] "
                 "[--baseline FILE] [--tolerance F]\n"
                 "                          [--check-events FILE]\n");
    return 2;
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        quick = true;
      } else if (arg == "--check") {
        check = true;
      } else if (arg == "--repeat" && i + 1 < argc) {
        repeat = std::max(1, parse_int_strict("--repeat", argv[++i]));
      } else if (arg == "--json" && i + 1 < argc) {
        json_path = argv[++i];
      } else if (arg == "--trap") {
        g_trap_steady = true;
      } else if (arg == "--only" && i + 1 < argc) {
        only = argv[++i];
      } else if (arg == "--write-baseline" && i + 1 < argc) {
        baseline_out = argv[++i];
      } else if (arg == "--baseline" && i + 1 < argc) {
        baseline_in = argv[++i];
      } else if (arg == "--check-events" && i + 1 < argc) {
        events_baseline = argv[++i];
      } else if (arg == "--tolerance" && i + 1 < argc) {
        tolerance = parse_double_strict("--tolerance", argv[++i]);
        if (tolerance < 0.0 || tolerance >= 1.0) {
          std::fprintf(stderr, "--tolerance must be in [0, 1)\n");
          return usage();
        }
      } else {
        return usage();
      }
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid flag value: %s\n", e.what());
    return usage();
  }

  std::vector<PerfCase> cases = make_cases(quick);
  if (!only.empty()) {
    std::erase_if(cases, [&](const PerfCase& c) { return c.name != only; });
    if (cases.empty()) {
      std::fprintf(stderr, "unknown case: %s\n", only.c_str());
      return 2;
    }
  }
  std::vector<Measurement> results;
  results.reserve(cases.size());
  std::printf("simulator-core perf harness (%s)\n",
              quick ? "quick" : "full");
  std::printf("%-12s %14s %12s %12s %16s %12s\n", "scenario", "events",
              "events/sec", "ns/event", "allocs/event", "pkts");
  bool clean = true;
  for (const PerfCase& pc : cases) {
    Measurement best;
    for (int r = 0; r < repeat; ++r) {
      Measurement m = run_case(pc);
      if (r == 0 || m.steady_wall_sec < best.steady_wall_sec) best = m;
    }
    // Steady-state allocations are deterministic (they depend only on the
    // simulated workload, never on timing), so the zero check is CI-safe.
    if (best.steady_allocs != 0) clean = false;
    std::printf("%-12s %14llu %12.0f %12.1f %16.8f %12llu\n",
                pc.name.c_str(),
                static_cast<unsigned long long>(best.steady_events),
                best.events_per_sec(), best.ns_per_event(),
                best.allocs_per_event(),
                static_cast<unsigned long long>(best.packets_delivered));
    results.push_back(best);
  }
  if (!json_path.empty()) write_json(json_path, quick, cases, results);
  if (!baseline_out.empty()) write_baseline(baseline_out, quick, cases, results);
  if (!baseline_in.empty()) {
    const int regressions =
        compare_baseline(baseline_in, tolerance, cases, results);
    if (regressions != 0) return 1;
  }
  if (!events_baseline.empty()) {
    const int mismatches = check_event_counts(events_baseline, cases, results);
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: steady-state event counts diverged from the "
                   "recorded baseline (semantics changed)\n");
      return 1;
    }
  }
  if (check && !clean) {
    std::fprintf(stderr,
                 "FAIL: steady-state allocations detected on the packet "
                 "hot path (expected 0 per event after warmup)\n");
    return 1;
  }
  return 0;
}
