// Micro benchmarks (google-benchmark): cost of the analytical solves and
// throughput of the discrete-event simulator core.
#include <benchmark/benchmark.h>

#include "exp/scenario_runner.hpp"
#include "model/mishra_model.hpp"
#include "model/nash.hpp"
#include "model/ware_model.hpp"
#include "sim/event_queue.hpp"

namespace bbrnash {
namespace {

void BM_TwoFlowModelSolve(benchmark::State& state) {
  const NetworkParams net = make_params(100.0, 40.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(two_flow_prediction(net));
  }
}
BENCHMARK(BM_TwoFlowModelSolve);

void BM_WareModelSolve(benchmark::State& state) {
  const NetworkParams net = make_params(100.0, 40.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ware_prediction(net));
  }
}
BENCHMARK(BM_WareModelSolve);

void BM_NashRegionPredict(benchmark::State& state) {
  const NetworkParams net = make_params(100.0, 40.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict_nash_region(net, 50));
  }
}
BENCHMARK(BM_NashRegionPredict);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t fired = 0;
  for (auto _ : state) {
    EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) {
      q.schedule(static_cast<TimeNs>((i * 7919) % 100000),
                 [&fired] { ++fired; });
    }
    while (!q.empty()) q.pop().fn();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1024)->Arg(16384);

// End-to-end simulator throughput: simulated-packet events per second for
// a 2-flow CUBIC/BBR contest.
void BM_SimulatorOneSecond(benchmark::State& state) {
  for (auto _ : state) {
    const NetworkParams net = make_params(50.0, 20.0, 3.0);
    Scenario s = make_mix_scenario(net, 1, 1);
    s.duration = from_sec(2);
    s.warmup = from_sec(1);
    benchmark::DoNotOptimize(run_scenario(s));
  }
}
BENCHMARK(BM_SimulatorOneSecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bbrnash

BENCHMARK_MAIN();
