// Figure 10: Nash Equilibria when flows have different RTTs. 30 flows in
// three groups of 10 (10 ms, 30 ms, 50 ms) share a 100 Mbps bottleneck;
// buffers are multiples of the shortest-RTT flow's BDP.
//
// The paper's two findings, checked here:
//   (1) an NE exists for every buffer size tested, and
//   (2) at the NE, the flows that run CUBIC are the SHORTEST-RTT flows
//       (CUBIC favours short RTTs; BBR favours long RTTs).
//
// The search is best-response dynamics over group-level deviations (the
// paper enumerated all 2^30 profiles only in the sense of its symmetric
// reductions; BR dynamics converge to the same fixed points).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/nash_search.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 10",
               "multi-RTT NE: 3 groups x 10 flows (10/30/50 ms), 100 Mbps");

  const std::vector<RttGroup> groups = {
      {from_ms(10), 10}, {from_ms(30), 10}, {from_ms(50), 10}};
  const BytesPerSec cap = mbps(100.0);
  // Buffer in BDP of the *shortest* RTT flow, per the paper.
  const Bytes short_bdp = bdp_bytes(cap, from_ms(10));

  std::vector<double> buffers;
  switch (opts.fidelity) {
    case Fidelity::kQuick:
      buffers = {10};
      break;
    case Fidelity::kDefault:
      buffers = {5, 15, 30, 50};
      break;
    case Fidelity::kFull:
      buffers = {2, 5, 10, 15, 20, 30, 40, 50};
      break;
  }

  NashSearchConfig cfg;
  cfg.trial = trial_config(opts);
  if (opts.fidelity != Fidelity::kFull) cfg.trial.trials = 1;

  // Each buffer point is an independent BR-dynamics search: parallel
  // cells committed by slot, table built in sweep order.
  std::vector<MultiRttNe> nes(buffers.size());
  for_each_cell(opts, buffers.size(), [&](std::size_t i) {
    const auto buffer =
        static_cast<Bytes>(buffers[i] * static_cast<double>(short_bdp));
    // Start from an even mixed split; BR dynamics walk to a fixed point.
    GroupProfile start;
    start.cubic_per_group = {5, 5, 5};
    nes[i] = find_multi_rtt_ne(cap, buffer, groups, start, cfg);
  });

  Table table({"buffer_bdp10", "cubic@10ms", "cubic@30ms", "cubic@50ms",
               "total_cubic", "converged", "short_rtt_prefers_cubic"});
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const MultiRttNe& ne = nes[i];
    const auto& c = ne.profile.cubic_per_group;
    // Paper's finding (2): CUBIC concentrates in the shortest-RTT group.
    const bool ordered = c[0] >= c[1] && c[1] >= c[2];
    table.add_row({format_double(buffers[i], 0), std::to_string(c[0]),
                   std::to_string(c[1]), std::to_string(c[2]),
                   std::to_string(ne.profile.total_cubic()),
                   ne.converged ? "yes" : "no", ordered ? "yes" : "no"});
  }
  emit(opts, table);
  print_parallel_summary(opts);
  return 0;
}
