// Figure 4 (a, b): multi-flow model validation. 5 CUBIC vs 5 BBR and
// 10 CUBIC vs 10 BBR through a 100 Mbps / 40 ms bottleneck, buffer swept
// 1..30 BDP. Series: the model's CUBIC-synchronized and de-synchronized
// bounds (the "predicted region"), the Ware et al. baseline, and the
// simulated per-flow BBR throughput.
#include <cstdio>

#include "bench_common.hpp"
#include "model/mishra_model.hpp"
#include "model/ware_model.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

void run_panel(const BenchOptions& opts, int per_side) {
  Table table({"buffer_bdp", "ware_mbps", "sync_bound_mbps",
               "desync_bound_mbps", "sim_bbr_mbps", "in_region"});
  const TrialConfig trial = trial_config(opts);

  const double step = 1.0 * sweep_step_multiplier(opts.fidelity);
  int inside = 0;
  int total = 0;
  for (double bdp = 1.0; bdp <= 30.0 + 1e-9; bdp += step) {
    const NetworkParams net = make_params(100.0, 40.0, bdp);
    const auto region = prediction_interval(net, per_side, per_side);
    const WarePrediction ware = ware_prediction(
        net, WareInputs{per_side, to_sec(trial.duration), 1500});
    const MixOutcome sim =
        run_mix_trials(net, per_side, per_side, CcKind::kBbr, trial);

    const double lo = region ? to_mbps(region->sync.per_flow_bbr) : 0.0;
    const double hi = region ? to_mbps(region->desync.per_flow_bbr) : 0.0;
    const double sim_mbps = sim.per_flow_other_mbps;
    // 10% slack: the paper's own measurements hug (and sometimes touch)
    // the region boundary.
    const bool in_region =
        sim_mbps >= lo * 0.9 && sim_mbps <= hi * 1.1;
    inside += in_region ? 1 : 0;
    ++total;
    table.add_row({format_double(bdp), format_double(to_mbps(ware.lambda_bbr) /
                                                     per_side),
                   format_double(lo), format_double(hi),
                   format_double(sim_mbps), in_region ? "yes" : "no"});
  }
  if (!opts.csv) {
    std::printf("-- panel: %d CUBIC vs %d BBR, 100 Mbps, 40 ms --\n",
                per_side, per_side);
  }
  emit(opts, table);
  if (!opts.csv) {
    std::printf("simulated points inside predicted region (+/-10%%): %d/%d\n\n",
                inside, total);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 4",
               "multi-flow predicted region vs simulated per-flow BBR");
  run_panel(opts, 5);
  run_panel(opts, 10);
  return 0;
}
