// Figure 4 (a, b): multi-flow model validation. 5 CUBIC vs 5 BBR and
// 10 CUBIC vs 10 BBR through a 100 Mbps / 40 ms bottleneck, buffer swept
// 1..30 BDP. Series: the model's CUBIC-synchronized and de-synchronized
// bounds (the "predicted region"), the Ware et al. baseline, and the
// simulated per-flow BBR throughput.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/mishra_model.hpp"
#include "model/ware_model.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

void run_panel(const BenchOptions& opts, int per_side) {
  Table table({"buffer_bdp", "ware_mbps", "sync_bound_mbps",
               "desync_bound_mbps", "sim_bbr_mbps", "in_region"});
  const TrialConfig trial = trial_config(opts);

  const double step = 1.0 * sweep_step_multiplier(opts.fidelity);
  std::vector<double> bdps;
  for (double bdp = 1.0; bdp <= 30.0 + 1e-9; bdp += step) {
    bdps.push_back(bdp);
  }

  // Every buffer point is an independent cell: run them concurrently,
  // each committing into its slot, then emit in sweep order — the table
  // is byte-identical for every --jobs value.
  struct Row {
    double ware = 0, lo = 0, hi = 0, sim = 0;
    bool in_region = false;
  };
  std::vector<Row> rows(bdps.size());
  for_each_cell(opts, bdps.size(), [&](std::size_t i) {
    const NetworkParams net = make_params(100.0, 40.0, bdps[i]);
    const auto region = prediction_interval(net, per_side, per_side);
    const WarePrediction ware = ware_prediction(
        net, WareInputs{per_side, to_sec(trial.duration), 1500});
    const MixOutcome sim =
        run_mix_trials(net, per_side, per_side, CcKind::kBbr, trial);

    Row& r = rows[i];
    r.ware = to_mbps(ware.lambda_bbr) / per_side;
    r.lo = region ? to_mbps(region->sync.per_flow_bbr) : 0.0;
    r.hi = region ? to_mbps(region->desync.per_flow_bbr) : 0.0;
    r.sim = sim.per_flow_other_mbps;
    // 10% slack: the paper's own measurements hug (and sometimes touch)
    // the region boundary.
    r.in_region = r.sim >= r.lo * 0.9 && r.sim <= r.hi * 1.1;
  });

  int inside = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    inside += r.in_region ? 1 : 0;
    table.add_row({format_double(bdps[i]), format_double(r.ware),
                   format_double(r.lo), format_double(r.hi),
                   format_double(r.sim), r.in_region ? "yes" : "no"});
  }
  const int total = static_cast<int>(rows.size());
  if (!opts.csv) {
    std::printf("-- panel: %d CUBIC vs %d BBR, 100 Mbps, 40 ms --\n",
                per_side, per_side);
  }
  emit(opts, table);
  if (!opts.csv) {
    std::printf("simulated points inside predicted region (+/-10%%): %d/%d\n\n",
                inside, total);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 4",
               "multi-flow predicted region vs simulated per-flow BBR");
  run_panel(opts, 5);
  run_panel(opts, 10);
  print_parallel_summary(opts);
  return 0;
}
