#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "exp/chaos.hpp"
#include "exp/cli_flags.hpp"
#include "exp/parallel.hpp"

namespace bbrnash::bench {

namespace {

[[noreturn]] void usage_exit(const char* prog, const char* complaint) {
  std::fprintf(stderr,
               "%s\nusage: %s [--csv] [--seed N] "
               "[--fidelity quick|default|full] [--jobs N] [--audit] "
               "[--chaos SEED] [--checkpoint PATH] [--workers N] "
               "[--lease-ms MS] [--max-worker-retries N] [--fabric-stats]\n",
               complaint, prog);
  std::exit(2);
}

std::string value_of(int argc, char** argv, int& i, const char* prog) {
  if (i + 1 >= argc) {
    const std::string msg = std::string{argv[i]} + " needs a value";
    usage_exit(prog, msg.c_str());
  }
  return argv[++i];
}

}  // namespace

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  opts.fidelity = fidelity_from_env();
  const char* prog = argc > 0 ? argv[0] : "bench";
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        opts.csv = true;
      } else if (std::strcmp(argv[i], "--audit") == 0) {
        opts.audit = true;
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        opts.seed = parse_u64_strict("--seed", value_of(argc, argv, i, prog));
      } else if (std::strcmp(argv[i], "--chaos") == 0) {
        opts.chaos = true;
        opts.chaos_seed =
            parse_u64_strict("--chaos", value_of(argc, argv, i, prog));
      } else if (std::strcmp(argv[i], "--fidelity") == 0) {
        const std::string v = value_of(argc, argv, i, prog);
        if (v == "quick") {
          opts.fidelity = Fidelity::kQuick;
        } else if (v == "default") {
          opts.fidelity = Fidelity::kDefault;
        } else if (v == "full") {
          opts.fidelity = Fidelity::kFull;
        } else {
          const std::string msg = "--fidelity: unknown level '" + v + "'";
          usage_exit(prog, msg.c_str());
        }
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        opts.jobs = parse_int_strict("--jobs", value_of(argc, argv, i, prog));
      } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
        // Parsed by the bench itself from the raw argv; skip the value.
        (void)value_of(argc, argv, i, prog);
      } else if (std::strcmp(argv[i], "--workers") == 0) {
        opts.workers =
            parse_int_strict("--workers", value_of(argc, argv, i, prog));
      } else if (std::strcmp(argv[i], "--lease-ms") == 0) {
        opts.lease_ms =
            parse_double_strict("--lease-ms", value_of(argc, argv, i, prog));
      } else if (std::strcmp(argv[i], "--max-worker-retries") == 0) {
        opts.max_worker_retries = parse_int_strict(
            "--max-worker-retries", value_of(argc, argv, i, prog));
      } else if (std::strcmp(argv[i], "--fabric-stats") == 0) {
        opts.fabric_stats = true;
      } else {
        const std::string msg = std::string{"unknown flag '"} + argv[i] + "'";
        usage_exit(prog, msg.c_str());
      }
    }
  } catch (const std::invalid_argument& e) {
    usage_exit(prog, e.what());
  }
  return opts;
}

void print_banner(const BenchOptions& opts, const std::string& figure,
                  const std::string& description) {
  if (opts.csv) return;
  std::printf("### %s — %s\n", figure.c_str(), description.c_str());
  std::printf("### fidelity=%s (set BBRNASH_FIDELITY=quick|default|full), "
              "jobs=%d\n\n",
              to_string(opts.fidelity), resolve_jobs(opts.jobs));
}

void emit(const BenchOptions& opts, const Table& table) {
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
    std::cout << '\n';
  }
}

TrialConfig trial_config(const BenchOptions& opts) {
  TrialConfig cfg;
  cfg.duration = experiment_duration(opts.fidelity);
  cfg.warmup = experiment_warmup(opts.fidelity);
  cfg.trials = experiment_trials(opts.fidelity);
  cfg.seed = opts.seed;
  cfg.jobs = opts.jobs;
  cfg.audit.enabled = opts.audit;
  if (opts.chaos) {
    cfg.guard.chaos = std::make_shared<ChaosInjector>(opts.chaos_seed);
  }
  return cfg;
}

void for_each_cell(const BenchOptions& opts, std::size_t n,
                   const std::function<void(std::size_t)>& fn) {
  parallel_for(opts.jobs, n, fn);
}

void print_parallel_summary(const BenchOptions& opts) {
  if (opts.csv) return;
  std::printf("### %s\n", describe(parallel_telemetry()).c_str());
}

FabricConfig fabric_config(const BenchOptions& opts) {
  FabricConfig fab;
  fab.workers = opts.workers;
  fab.lease_ms = opts.lease_ms;
  fab.max_worker_retries = opts.max_worker_retries;
  if (opts.chaos) {
    fab.chaos = std::make_shared<ChaosInjector>(opts.chaos_seed);
  }
  return fab;
}

void print_fabric_summary(const BenchOptions& opts, const FabricStats& stats) {
  if (!opts.csv) {
    std::printf(
        "### fabric: %d workers, %llu/%llu cells committed "
        "(%llu resumed, %llu reassigned, %llu deaths, %llu hangs), "
        "%.1f cells/s\n",
        static_cast<int>(stats.workers.size()),
        static_cast<unsigned long long>(stats.cells_committed),
        static_cast<unsigned long long>(stats.cells_total),
        static_cast<unsigned long long>(stats.cells_from_checkpoint),
        static_cast<unsigned long long>(stats.cells_reassigned),
        static_cast<unsigned long long>(stats.worker_deaths),
        static_cast<unsigned long long>(stats.worker_hangs),
        stats.cells_per_second);
  }
  if (opts.fabric_stats) {
    std::printf("%s\n", fabric_stats_to_record(stats).encode().c_str());
  }
}

}  // namespace bbrnash::bench
