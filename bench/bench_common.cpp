#include "bench_common.hpp"

#include <cstdio>
#include <cstring>
#include <iostream>

namespace bbrnash::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  opts.fidelity = fidelity_from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fidelity") == 0 && i + 1 < argc) {
      const std::string v = argv[++i];
      opts.fidelity = v == "quick"  ? Fidelity::kQuick
                      : v == "full" ? Fidelity::kFull
                                    : Fidelity::kDefault;
    }
  }
  return opts;
}

void print_banner(const BenchOptions& opts, const std::string& figure,
                  const std::string& description) {
  if (opts.csv) return;
  std::printf("### %s — %s\n", figure.c_str(), description.c_str());
  std::printf("### fidelity=%s (set BBRNASH_FIDELITY=quick|default|full)\n\n",
              to_string(opts.fidelity));
}

void emit(const BenchOptions& opts, const Table& table) {
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
    std::cout << '\n';
  }
}

TrialConfig trial_config(const BenchOptions& opts) {
  TrialConfig cfg;
  cfg.duration = experiment_duration(opts.fidelity);
  cfg.warmup = experiment_warmup(opts.fidelity);
  cfg.trials = experiment_trials(opts.fidelity);
  cfg.seed = opts.seed;
  return cfg;
}

}  // namespace bbrnash::bench
