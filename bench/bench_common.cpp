#include "bench_common.hpp"

#include <cstdio>
#include <cstring>
#include <iostream>

#include "exp/parallel.hpp"

namespace bbrnash::bench {

BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  opts.fidelity = fidelity_from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fidelity") == 0 && i + 1 < argc) {
      const std::string v = argv[++i];
      opts.fidelity = v == "quick"  ? Fidelity::kQuick
                      : v == "full" ? Fidelity::kFull
                                    : Fidelity::kDefault;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opts.jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    }
  }
  return opts;
}

void print_banner(const BenchOptions& opts, const std::string& figure,
                  const std::string& description) {
  if (opts.csv) return;
  std::printf("### %s — %s\n", figure.c_str(), description.c_str());
  std::printf("### fidelity=%s (set BBRNASH_FIDELITY=quick|default|full), "
              "jobs=%d\n\n",
              to_string(opts.fidelity), resolve_jobs(opts.jobs));
}

void emit(const BenchOptions& opts, const Table& table) {
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
    std::cout << '\n';
  }
}

TrialConfig trial_config(const BenchOptions& opts) {
  TrialConfig cfg;
  cfg.duration = experiment_duration(opts.fidelity);
  cfg.warmup = experiment_warmup(opts.fidelity);
  cfg.trials = experiment_trials(opts.fidelity);
  cfg.seed = opts.seed;
  cfg.jobs = opts.jobs;
  return cfg;
}

void for_each_cell(const BenchOptions& opts, std::size_t n,
                   const std::function<void(std::size_t)>& fn) {
  parallel_for(opts.jobs, n, fn);
}

void print_parallel_summary(const BenchOptions& opts) {
  if (opts.csv) return;
  std::printf("### %s\n", describe(parallel_telemetry()).c_str());
}

}  // namespace bbrnash::bench
