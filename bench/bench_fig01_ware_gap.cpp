// Figure 1: the motivating gap — Ware et al.'s prediction vs BBR's actual
// bandwidth share for one CUBIC flow vs one BBR flow on a 50 Mbps / 40 ms
// bottleneck, buffer swept 1..50 BDP, 2-minute flows.
#include <vector>

#include "bench_common.hpp"
#include "model/ware_model.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 1",
               "Ware et al. model vs actual BBR share, 50 Mbps / 40 ms");

  Table table({"buffer_bdp", "ware_mbps", "sim_bbr_mbps", "ware_err_pct"});
  const TrialConfig trial = trial_config(opts);

  const double step = 2.0 * sweep_step_multiplier(opts.fidelity);
  for (double bdp = 1.0; bdp <= 50.0 + 1e-9; bdp += step) {
    const NetworkParams net = make_params(50.0, 40.0, bdp);
    const WarePrediction ware =
        ware_prediction(net, WareInputs{1, to_sec(trial.duration), 1500});
    const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, trial);
    const double ware_mbps = to_mbps(ware.lambda_bbr);
    const double sim_mbps = sim.per_flow_other_mbps;
    const double err =
        sim_mbps > 0 ? 100.0 * (ware_mbps - sim_mbps) / sim_mbps : 0.0;
    table.add_row({bdp, ware_mbps, sim_mbps, err});
  }
  emit(opts, table);
  return 0;
}
