// Figure 1: the motivating gap — Ware et al.'s prediction vs BBR's actual
// bandwidth share for one CUBIC flow vs one BBR flow on a 50 Mbps / 40 ms
// bottleneck, buffer swept 1..50 BDP, 2-minute flows.
#include <vector>

#include "bench_common.hpp"
#include "model/ware_model.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 1",
               "Ware et al. model vs actual BBR share, 50 Mbps / 40 ms");

  Table table({"buffer_bdp", "ware_mbps", "sim_bbr_mbps", "ware_err_pct"});
  const TrialConfig trial = trial_config(opts);

  const double step = 2.0 * sweep_step_multiplier(opts.fidelity);
  std::vector<double> bdps;
  for (double bdp = 1.0; bdp <= 50.0 + 1e-9; bdp += step) {
    bdps.push_back(bdp);
  }

  // Independent buffer points: parallel cells, slot-committed, emitted in
  // sweep order (byte-identical output for every --jobs value).
  struct Row {
    double ware = 0, sim = 0, err = 0;
  };
  std::vector<Row> rows(bdps.size());
  for_each_cell(opts, bdps.size(), [&](std::size_t i) {
    const NetworkParams net = make_params(50.0, 40.0, bdps[i]);
    const WarePrediction ware =
        ware_prediction(net, WareInputs{1, to_sec(trial.duration), 1500});
    const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, trial);
    Row& r = rows[i];
    r.ware = to_mbps(ware.lambda_bbr);
    r.sim = sim.per_flow_other_mbps;
    r.err = r.sim > 0 ? 100.0 * (r.ware - r.sim) / r.sim : 0.0;
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({bdps[i], rows[i].ware, rows[i].sim, rows[i].err});
  }
  emit(opts, table);
  print_parallel_summary(opts);
  return 0;
}
