// Figure 9 (a–f): predicted vs empirically found Nash Equilibria for 50
// same-RTT flows. Settings: {50, 100} Mbps x {20, 40, 80} ms, buffer swept
// 0.5..50 BDP. For each buffer size we print the model's Nash region (the
// sync/desync bounds on the number of CUBIC flows at the NE, Eq. 25) and
// the empirically found NE.
//
// The paper's observations reproduced here:
//   * deeper buffers -> more CUBIC flows at the NE,
//   * normalized by BDP, the predicted region is identical across link
//     speeds and RTTs (the last column makes this visible).
//
// The empirical search uses the monotone crossing search (O(log n) runs —
// the paper's exhaustive 51-distribution enumeration is available via
// find_ne_enumerate and exercised in the test suite); at `full` fidelity
// each probed distribution still runs 10 trials of 2-minute flows.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/nash_search.hpp"
#include "model/nash.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

constexpr int kTotalFlows = 50;

void run_panel(const BenchOptions& opts, double cap_mbps, double rtt_ms,
               const std::vector<double>& buffers) {
  Table table({"buffer_bdp", "cubic_at_ne_sync", "cubic_at_ne_desync",
               "cubic_at_ne_sim"});
  NashSearchConfig cfg;
  cfg.trial = trial_config(opts);
  // One trial per probed distribution keeps the search tractable below
  // `full`; the NE tolerance absorbs the trial noise.
  if (opts.fidelity != Fidelity::kFull) cfg.trial.trials = 1;

  // Buffer points are independent NE searches: run them as parallel cells
  // (the adaptive crossing search stays serial *within* a cell), then emit
  // rows in sweep order.
  struct Row {
    bool has_region = false;
    double sync = 0, desync = 0;
    int k_ne = 0;
  };
  std::vector<Row> rows(buffers.size());
  for_each_cell(opts, buffers.size(), [&](std::size_t i) {
    const NetworkParams net = make_params(cap_mbps, rtt_ms, buffers[i]);
    const auto region = predict_nash_region(net, kTotalFlows);
    Row& r = rows[i];
    if (region) {
      r.has_region = true;
      r.sync = region->sync.num_cubic;
      r.desync = region->desync.num_cubic;
    }
    r.k_ne = find_ne_crossing(net, kTotalFlows, cfg);
  });
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const Row& r = rows[i];
    table.add_row(
        {format_double(buffers[i], 1),
         r.has_region ? format_double(r.sync, 1) : "n/a",
         r.has_region ? format_double(r.desync, 1) : "n/a",
         format_double(static_cast<double>(kTotalFlows - r.k_ne), 0)});
  }
  if (!opts.csv) std::printf("-- panel: %.0f Mbps, %.0f ms --\n", cap_mbps, rtt_ms);
  emit(opts, table);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 9",
               "Nash region vs empirical NE, 50 same-RTT flows");

  std::vector<double> buffers;
  switch (opts.fidelity) {
    case Fidelity::kQuick:
      buffers = {2, 10, 30};
      break;
    case Fidelity::kDefault:
      buffers = {1, 2, 3, 5, 8, 12, 20, 30, 50};
      break;
    case Fidelity::kFull:
      for (double b = 1; b <= 50; b += 2.5) buffers.push_back(b);
      break;
  }

  const double caps[] = {50.0, 100.0};
  const double rtts[] = {20.0, 40.0, 80.0};
  for (const double cap : caps) {
    for (const double rtt : rtts) {
      run_panel(opts, cap, rtt, buffers);
    }
  }

  if (!opts.csv) {
    std::printf(
        "note: the predicted-region columns depend only on buffer-in-BDP — "
        "identical across all six panels, the paper's §4.4 scale-invariance "
        "observation.\n");
  }
  print_parallel_summary(opts);
  return 0;
}
