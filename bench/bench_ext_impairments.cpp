// Extension (robustness): does the paper's BBR-dominant equilibrium
// survive a non-pristine path?
//
// The model (and every figure bench) assumes the only loss is drop-tail
// overflow. Real access paths add random loss, and BBR's loss resilience
// is exactly what CUBIC lacks — so random loss should push the empirical
// NE toward *more* BBR, and shallow buffers should amplify the push.
// This bench sweeps i.i.d. loss rate x buffer depth, finds the empirical
// NE at each cell (crossing search, guarded trials), and reports the NE
// drift relative to the clean-path cell of the same buffer.
//
// Extra flag beyond the common bench options:
//   --checkpoint PATH  append-only JSONL checkpoint; a killed sweep
//                      restarted with the same path resumes and reproduces
//                      the uninterrupted numbers exactly.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/nash_search.hpp"
#include "model/nash.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  std::string checkpoint_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      checkpoint_path = argv[i + 1];
    }
  }
  print_banner(opts, "Extension: impairments",
               "empirical NE (k = BBR flows of 8) under i.i.d. loss x "
               "buffer depth (20 Mbps, 20 ms)");

  const int total_flows = 8;
  const std::vector<double> loss_rates = {0.0, 0.005, 0.02};
  const std::vector<double> buffer_bdps = {1.0, 5.0, 15.0};

  NashSearchConfig cfg;
  cfg.trial = trial_config(opts);
  cfg.tolerance_frac = 0.10;
  cfg.checkpoint_path = checkpoint_path;
  // Guarded trials: a generous event budget aborts a runaway cell instead
  // of hanging the sweep, and a degenerate trial gets one seed-bump retry.
  cfg.trial.guard.watchdog.max_events = 200'000'000;
  cfg.trial.guard.max_attempts = 2;

  Table table({"buffer_bdp", "loss_rate", "ne_bbr_flows", "drift_vs_clean",
               "model_clean_lo", "model_clean_hi"});
  // The outer grid deliberately stays serial: every cell appends to the
  // same checkpoint file, and each loss row's drift is computed against
  // the clean-path NE of the same buffer, found earlier in the loop.
  // Parallelism comes from cfg.trial.jobs — the trials inside each probed
  // distribution fan out while the sweep order (and checkpoint resume
  // behaviour) stays exactly serial.
  for (const double bdp : buffer_bdps) {
    const NetworkParams net = make_params(20.0, 20.0, bdp);
    const auto region = predict_nash_region(net, total_flows);
    int clean_ne = 0;
    for (const double loss : loss_rates) {
      cfg.trial.impairments.loss_rate = loss;
      const int ne = find_ne_crossing(net, total_flows, cfg);
      if (loss == 0.0) clean_ne = ne;
      table.add_row(
          {format_double(bdp, 1), format_double(loss, 3),
           std::to_string(ne), std::to_string(ne - clean_ne),
           region ? format_double(total_flows - region->cubic_high(), 1)
                  : "n/a",
           region ? format_double(total_flows - region->cubic_low(), 1)
                  : "n/a"});
    }
  }
  emit(opts, table);
  if (!opts.csv) {
    std::printf(
        "reading: positive drift = random loss pushes the equilibrium "
        "toward more BBR (its loss resilience is worth more when CUBIC "
        "bleeds); the model columns are the paper's clean-path prediction "
        "for reference.\n");
    if (!checkpoint_path.empty()) {
      std::printf("checkpoint: %s\n", checkpoint_path.c_str());
    }
  }
  print_parallel_summary(opts);
  return 0;
}
