// Figure 3 (a–d): predicted vs. actual throughput when one CUBIC flow
// competes with one BBR flow.
//
// Paper setup: {50, 100} Mbps x {40, 80} ms, buffer swept 1..30 BDP in
// steps of 0.5 BDP, 2-minute flows. Series: Ware et al. prediction, our
// model's prediction, and the measured BBR bandwidth share. The paper's
// claim: our model is within ~5% of measured for most of this range while
// Ware et al. is off by >= 30% in shallow buffers.
//
// Also prints the §3.1 model-error summary table for each panel.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/mishra_model.hpp"
#include "model/ware_model.hpp"
#include "util/stats.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

struct Panel {
  const char* label;
  double capacity_mbps;
  double rtt_ms;
};

void run_panel(const BenchOptions& opts, const Panel& panel) {
  Table table({"buffer_bdp", "ware_mbps", "model_mbps", "sim_bbr_mbps",
               "model_err_pct"});
  const TrialConfig trial = trial_config(opts);

  RunningStats err_1_30;

  const double step = 0.5 * sweep_step_multiplier(opts.fidelity);
  std::vector<double> bdps;
  for (double bdp = 1.0; bdp <= 30.0 + 1e-9; bdp += step) {
    bdps.push_back(bdp);
  }

  // Parallel cells committed by slot; the table AND the error summary are
  // reduced in sweep order afterwards, so output is byte-identical for
  // every --jobs value.
  struct Row {
    double ware = 0, model = 0, sim = 0, err_pct = 0;
  };
  std::vector<Row> rows(bdps.size());
  for_each_cell(opts, bdps.size(), [&](std::size_t i) {
    const NetworkParams net =
        make_params(panel.capacity_mbps, panel.rtt_ms, bdps[i]);

    const WarePrediction ware =
        ware_prediction(net, WareInputs{1, to_sec(trial.duration), 1500});
    const auto model = two_flow_prediction(net);
    const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, trial);

    Row& r = rows[i];
    r.ware = to_mbps(ware.lambda_bbr);
    r.model = model ? to_mbps(model->lambda_bbr) : 0.0;
    r.sim = sim.per_flow_other_mbps;
    r.err_pct = r.sim > 0 ? 100.0 * (r.model - r.sim) / r.sim : 0.0;
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    err_1_30.add(std::abs(r.err_pct));
    table.add_row({bdps[i], r.ware, r.model, r.sim, r.err_pct});
  }

  if (!opts.csv) std::printf("-- panel %s --\n", panel.label);
  emit(opts, table);
  if (!opts.csv) {
    std::printf(
        "model |error| vs sim over 1..30 BDP: mean %.1f%%, max %.1f%% "
        "(paper claims <= ~5%% for most buffer sizes)\n\n",
        err_1_30.mean(), err_1_30.max());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 3",
               "1 CUBIC vs 1 BBR: our model vs Ware et al. vs simulation");

  const std::vector<Panel> panels = {
      {"(a) 50 Mbps, 40 ms", 50.0, 40.0},
      {"(b) 50 Mbps, 80 ms", 50.0, 80.0},
      {"(c) 100 Mbps, 40 ms", 100.0, 40.0},
      {"(d) 100 Mbps, 80 ms", 100.0, 80.0},
  };
  for (const auto& p : panels) run_panel(opts, p);
  print_parallel_summary(opts);
  return 0;
}
