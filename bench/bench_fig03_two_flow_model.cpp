// Figure 3 (a–d): predicted vs. actual throughput when one CUBIC flow
// competes with one BBR flow.
//
// Paper setup: {50, 100} Mbps x {40, 80} ms, buffer swept 1..30 BDP in
// steps of 0.5 BDP, 2-minute flows. Series: Ware et al. prediction, our
// model's prediction, and the measured BBR bandwidth share. The paper's
// claim: our model is within ~5% of measured for most of this range while
// Ware et al. is off by >= 30% in shallow buffers.
//
// Also prints the §3.1 model-error summary table for each panel.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/mishra_model.hpp"
#include "model/ware_model.hpp"
#include "util/stats.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

struct Panel {
  const char* label;
  double capacity_mbps;
  double rtt_ms;
};

void run_panel(const BenchOptions& opts, const Panel& panel) {
  Table table({"buffer_bdp", "ware_mbps", "model_mbps", "sim_bbr_mbps",
               "model_err_pct"});
  const TrialConfig trial = trial_config(opts);

  RunningStats err_1_30;

  const double step = 0.5 * sweep_step_multiplier(opts.fidelity);
  for (double bdp = 1.0; bdp <= 30.0 + 1e-9; bdp += step) {
    const NetworkParams net =
        make_params(panel.capacity_mbps, panel.rtt_ms, bdp);

    const WarePrediction ware =
        ware_prediction(net, WareInputs{1, to_sec(trial.duration), 1500});
    const auto model = two_flow_prediction(net);
    const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, trial);

    const double model_mbps = model ? to_mbps(model->lambda_bbr) : 0.0;
    const double sim_mbps = sim.per_flow_other_mbps;
    const double err_pct =
        sim_mbps > 0 ? 100.0 * (model_mbps - sim_mbps) / sim_mbps : 0.0;
    err_1_30.add(std::abs(err_pct));

    table.add_row({bdp, to_mbps(ware.lambda_bbr), model_mbps, sim_mbps,
                   err_pct});
  }

  if (!opts.csv) std::printf("-- panel %s --\n", panel.label);
  emit(opts, table);
  if (!opts.csv) {
    std::printf(
        "model |error| vs sim over 1..30 BDP: mean %.1f%%, max %.1f%% "
        "(paper claims <= ~5%% for most buffer sizes)\n\n",
        err_1_30.mean(), err_1_30.max());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 3",
               "1 CUBIC vs 1 BBR: our model vs Ware et al. vs simulation");

  const std::vector<Panel> panels = {
      {"(a) 50 Mbps, 40 ms", 50.0, 40.0},
      {"(b) 50 Mbps, 80 ms", 50.0, 80.0},
      {"(c) 100 Mbps, 40 ms", 100.0, 40.0},
      {"(d) 100 Mbps, 80 ms", 100.0, 80.0},
  };
  for (const auto& p : panels) run_panel(opts, p);
  return 0;
}
