// Extension (paper §5, "Taming the Zoo" / buffer sizing): how does the
// CUBIC/BBR competition — and the Nash Equilibrium — change when the
// bottleneck's drop-tail FIFO is replaced by RED or CoDel?
//
// Not a figure from the paper; this bench explores the question its
// discussion raises: in-network mechanisms will have to serve a *mixed*
// CUBIC/BBR population. Series per AQM: the 1v1 split, the shared queuing
// delay, and the empirical 10-flow NE.
#include <cstdio>
#include <iterator>
#include <vector>

#include "bench_common.hpp"
#include "exp/nash_search.hpp"
#include "exp/scenario_runner.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

MixOutcome run_with_aqm(const NetworkParams& net, int nc, int nb,
                        AqmKind aqm, const TrialConfig& trial) {
  MixOutcome avg;
  for (int t = 0; t < trial.trials; ++t) {
    Scenario s = make_mix_scenario(net, nc, nb);
    s.duration = trial.duration;
    s.warmup = trial.warmup;
    s.seed = trial.seed + static_cast<std::uint64_t>(t) * 1000003ULL;
    s.aqm = aqm;
    const RunResult r = run_scenario(s);
    avg.per_flow_cubic_mbps += r.avg_goodput_mbps(CcKind::kCubic);
    avg.per_flow_other_mbps += r.avg_goodput_mbps(CcKind::kBbr);
    avg.avg_queue_delay_ms += r.avg_queue_delay_ms;
    avg.link_utilization += r.link_utilization;
  }
  const auto k = static_cast<double>(trial.trials);
  avg.per_flow_cubic_mbps /= k;
  avg.per_flow_other_mbps /= k;
  avg.avg_queue_delay_ms /= k;
  avg.link_utilization /= k;
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Extension: AQM",
               "CUBIC/BBR split and queuing delay under drop-tail, RED, "
               "CoDel (50 Mbps, 40 ms, 5 BDP)");

  const NetworkParams net = make_params(50.0, 40.0, 5.0);
  const TrialConfig trial = trial_config(opts);

  // Each AQM is an independent cell (the per-trial loop inside
  // run_with_aqm stays serial so the averages accumulate in reference
  // order); rows are emitted in kAllAqmKinds order.
  std::vector<MixOutcome> aqm_rows(std::size(kAllAqmKinds));
  for_each_cell(opts, aqm_rows.size(), [&](std::size_t i) {
    aqm_rows[i] = run_with_aqm(net, 1, 1, kAllAqmKinds[i], trial);
  });

  Table table({"aqm", "cubic_mbps", "bbr_mbps", "queue_delay_ms",
               "utilization"});
  for (std::size_t i = 0; i < aqm_rows.size(); ++i) {
    const MixOutcome& m = aqm_rows[i];
    table.add_row({std::string{to_string(kAllAqmKinds[i])},
                   format_double(m.per_flow_cubic_mbps),
                   format_double(m.per_flow_other_mbps),
                   format_double(m.avg_queue_delay_ms, 1),
                   format_double(m.link_utilization)});
  }
  emit(opts, table);

  if (opts.fidelity != Fidelity::kQuick && !opts.csv) {
    std::printf("10-flow proportion sweep under each AQM (per-flow BBR "
                "Mbps; fair share %.1f):\n",
                to_mbps(net.capacity) / 10.0);
    const std::vector<int> ks = {2, 5, 8};
    const std::vector<AqmKind> aqms = {AqmKind::kDropTail, AqmKind::kRed,
                                       AqmKind::kCoDel};
    // Flatten the (k x AQM) grid into parallel cells.
    std::vector<double> cells(ks.size() * aqms.size(), 0.0);
    for_each_cell(opts, cells.size(), [&](std::size_t c) {
      const int k = ks[c / aqms.size()];
      const AqmKind aqm = aqms[c % aqms.size()];
      cells[c] = run_with_aqm(net, 10 - k, k, aqm, trial).per_flow_other_mbps;
    });
    Table sweep({"num_bbr", "droptail", "red", "codel"});
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      std::vector<double> row = {static_cast<double>(ks[ki])};
      for (std::size_t a = 0; a < aqms.size(); ++a) {
        row.push_back(cells[ki * aqms.size() + a]);
      }
      sweep.add_row(row);
    }
    emit(opts, sweep);
    std::printf(
        "reading: AQMs that keep the queue short erase the RTT+ inflation "
        "that lets CUBIC push BBR around in deep drop-tail buffers — the "
        "equilibrium question the paper leaves to future work.\n");
  }
  print_parallel_summary(opts);
  return 0;
}
