// Figure 5 (a–d): diminishing returns for BBR. For N = 10 and 20 flows
// through 100 Mbps / 40 ms with buffers of 3 and 10 BDP, the number of BBR
// flows is swept 1..N; the series are the model's sync/desync bounds and
// the simulated average per-flow BBR throughput. The paper's takeaway:
// BBR's per-flow bandwidth falls as the proportion of BBR flows rises, and
// eventually crosses the fair-share line.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/mishra_model.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

void run_panel(const BenchOptions& opts, int total_flows, double buffer_bdp) {
  Table table({"num_bbr", "sync_bound_mbps", "desync_bound_mbps",
               "sim_bbr_mbps", "fair_share_mbps"});
  const TrialConfig trial = trial_config(opts);
  const NetworkParams net = make_params(100.0, 40.0, buffer_bdp);
  const double fair = to_mbps(net.capacity) / total_flows;

  const int step = opts.fidelity == Fidelity::kQuick ? 3
                   : opts.fidelity == Fidelity::kFull ? 1
                                                      : (total_flows > 10 ? 2 : 1);
  std::vector<int> ks;
  for (int k = 1; k <= total_flows; k += step) ks.push_back(k);

  // Parallel cells, slot-committed; table rows and trend statistics are
  // reduced in k order afterwards (byte-identical for every --jobs, and —
  // under --workers N — for every fabric claim/crash schedule).
  struct Row {
    double lo = 0, hi = 0, sim = 0;
  };
  std::vector<Row> rows(ks.size());
  if (opts.workers >= 1) {
    std::vector<FabricCell> cells;
    cells.reserve(ks.size());
    for (const int k : ks) cells.push_back(FabricCell{total_flows - k, k});
    const FabricOutcome out = run_fabric_cells(net, cells, CcKind::kBbr,
                                               trial, fabric_config(opts));
    if (!out.complete()) {
      std::fprintf(stderr, "fabric: %s: %s\n", to_string(out.status),
                   out.message.c_str());
    }
    for (std::size_t i = 0; i < ks.size(); ++i) {
      if (out.cells[i].has_value()) {
        rows[i].sim = out.cells[i]->per_flow_other_mbps;
      }
    }
    print_fabric_summary(opts, out.stats);
  } else {
    for_each_cell(opts, ks.size(), [&](std::size_t i) {
      const int k = ks[i];
      const MixOutcome sim =
          run_mix_trials(net, total_flows - k, k, CcKind::kBbr, trial);
      rows[i].sim = sim.per_flow_other_mbps;
    });
  }
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const int nc = total_flows - ks[i];
    Row& r = rows[i];
    if (nc >= 1) {
      const auto region = prediction_interval(net, nc, ks[i]);
      if (region) {
        r.lo = to_mbps(region->sync.per_flow_bbr);
        r.hi = to_mbps(region->desync.per_flow_bbr);
      }
    } else {
      r.lo = r.hi = fair;  // all-BBR: fair share by definition
    }
  }

  double first_mixed = 0.0;
  double max_mixed = 0.0;
  double last_mixed = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const int k = ks[i];
    const Row& r = rows[i];
    // The diminishing-returns claim concerns *mixed* distributions: at
    // k = N the CUBIC pressure vanishes and per-flow BBR legitimately
    // jumps back to fair share, so the all-BBR point is excluded from the
    // trend statistics.
    if (total_flows - k >= 1) {
      if (first) first_mixed = r.sim;
      max_mixed = std::max(max_mixed, r.sim);
      last_mixed = r.sim;
      first = false;
    }
    table.add_row({static_cast<double>(k), r.lo, r.hi, r.sim, fair});
  }

  if (!opts.csv) {
    std::printf("-- panel: %d flows, %.0f BDP buffer --\n", total_flows,
                buffer_bdp);
  }
  emit(opts, table);
  if (!opts.csv) {
    // Individual deep-buffer points are noisy across 3 trials; the claim
    // is about the trend: the rare-BBR end is the peak and the advantage
    // has clearly eroded by the crowded-BBR end.
    const bool declining =
        first_mixed >= 0.8 * max_mixed && last_mixed < 0.6 * first_mixed;
    std::printf(
        "diminishing returns (k=1 is ~peak, per-flow BBR at k=N-1 < 60%% of "
        "k=1): %s (%.1f -> %.1f Mbps)\n\n",
        declining ? "yes" : "violated", first_mixed, last_mixed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 5",
               "per-flow BBR throughput vs number of BBR flows");
  run_panel(opts, 10, 3.0);
  run_panel(opts, 20, 3.0);
  run_panel(opts, 10, 10.0);
  run_panel(opts, 20, 10.0);
  print_parallel_summary(opts);
  return 0;
}
