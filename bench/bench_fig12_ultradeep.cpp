// Figure 12: model performance in ultra-deep buffers. One CUBIC vs one BBR
// flow at 50 Mbps / 40 ms, buffer swept 1..250 BDP. The paper's point:
// beyond ~100 BDP, BBR is no longer cwnd-limited (ProbeBW cycles are too
// slow to pin inflight at 2xBDP), so the model — which assumes the cap —
// over-estimates BBR's throughput; the measured share dips below the
// prediction.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/mishra_model.hpp"
#include "model/ware_model.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 12",
               "1v1 in ultra-deep buffers (model over-estimation region)");

  std::vector<double> buffers;
  switch (opts.fidelity) {
    case Fidelity::kQuick:
      buffers = {5, 60, 150};
      break;
    case Fidelity::kDefault:
      buffers = {1, 5, 15, 30, 60, 100, 150, 200, 250};
      break;
    case Fidelity::kFull:
      for (double b = 1; b <= 250; b += 10) buffers.push_back(b);
      break;
  }

  const TrialConfig trial = trial_config(opts);
  Table table({"buffer_bdp", "ware_mbps", "model_mbps", "sim_bbr_mbps",
               "model_overestimates"});
  // Independent buffer points: parallel cells, reduced in sweep order.
  struct Row {
    double ware = 0, model = 0, sim = 0;
  };
  std::vector<Row> rows(buffers.size());
  for_each_cell(opts, buffers.size(), [&](std::size_t i) {
    const NetworkParams net = make_params(50.0, 40.0, buffers[i]);
    const auto model = two_flow_prediction(net);
    const WarePrediction ware =
        ware_prediction(net, WareInputs{1, to_sec(trial.duration), 1500});
    const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, trial);
    Row& r = rows[i];
    r.ware = to_mbps(ware.lambda_bbr);
    r.model = model ? to_mbps(model->lambda_bbr) : 0.0;
    r.sim = sim.per_flow_other_mbps;
  });

  int deep_over = 0;
  int deep_total = 0;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const double bdp = buffers[i];
    const Row& r = rows[i];
    const bool over = r.model > r.sim;
    if (bdp >= 100.0) {
      deep_total++;
      deep_over += over ? 1 : 0;
    }
    table.add_row({format_double(bdp, 0), format_double(r.ware),
                   format_double(r.model), format_double(r.sim),
                   over ? "yes" : "no"});
  }
  emit(opts, table);
  if (!opts.csv && deep_total > 0) {
    std::printf(
        "buffers >= 100 BDP where the model over-estimates BBR: %d/%d "
        "(paper: all — BBR stops being cwnd-limited there)\n",
        deep_over, deep_total);
  }
  print_parallel_summary(opts);
  return 0;
}
