// Figure 7: do other post-BBR congestion controls also take a
// disproportionate share against CUBIC? 10 flows, 100 Mbps / 40 ms, 2 BDP
// buffer; for X in {BBR, BBRv2, Copa, PCC-Vivace}, sweep the number of X
// flows 1..10 and report the per-flow X throughput vs the fair-share line.
//
// The paper's finding: BBR, BBRv2 and Vivace exceed fair share at small
// counts (so a mixed NE with CUBIC exists), Copa stays below it.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 7",
               "per-flow throughput of X vs #X flows, X in "
               "{bbr, bbrv2, copa, vivace}; 10 flows, 2 BDP");

  const NetworkParams net = make_params(100.0, 40.0, 2.0);
  const TrialConfig trial = trial_config(opts);
  const double fair = to_mbps(net.capacity) / 10.0;
  const int step = opts.fidelity == Fidelity::kQuick ? 3 : 1;

  const std::vector<CcKind> kinds = {CcKind::kBbr, CcKind::kBbrV2,
                                     CcKind::kCopa, CcKind::kVivace};

  std::vector<int> ks;
  for (int k = 1; k <= 10; k += step) ks.push_back(k);

  // Flatten the (k x CCA) grid into independent parallel cells; rows and
  // the per-CCA maxima are reduced in grid order afterwards.
  std::vector<double> cells(ks.size() * kinds.size(), 0.0);
  for_each_cell(opts, cells.size(), [&](std::size_t c) {
    const int k = ks[c / kinds.size()];
    const CcKind kind = kinds[c % kinds.size()];
    const MixOutcome m = run_mix_trials(net, 10 - k, k, kind, trial);
    cells[c] = m.per_flow_other_mbps;
  });

  Table table({"num_x", "fair_share", "bbr", "bbrv2", "copa", "vivace"});
  std::vector<double> best(kinds.size(), 0.0);
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    std::vector<double> row = {static_cast<double>(ks[ki]), fair};
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const double mbps = cells[ki * kinds.size() + i];
      row.push_back(mbps);
      if (mbps > best[i]) best[i] = mbps;
    }
    table.add_row(row);
  }
  emit(opts, table);

  if (!opts.csv) {
    std::printf("disproportionate-share property (max per-flow > fair %.1f):\n",
                fair);
    const char* names[] = {"bbr", "bbrv2", "copa", "vivace"};
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      std::printf("  %-7s max %.2f Mbps -> %s (paper: %s)\n", names[i], best[i],
                  best[i] > fair ? "mixed NE expected" : "no NE expected",
                  i == 2 ? "no NE expected" : "mixed NE expected");
    }
  }
  print_parallel_summary(opts);
  return 0;
}
