// Figure 11 (a, b): Nash Equilibria for CUBIC vs BBRv2, 50 flows,
// {50, 100} Mbps x {20, 40, 80} ms. The region predicted by the *BBR*
// model is printed alongside; the paper's finding is that BBRv2's NE has
// at least as many CUBIC flows as BBR's for the same buffer (BBRv2 is less
// aggressive because it reacts to loss).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/nash_search.hpp"
#include "model/nash.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

constexpr int kTotalFlows = 50;

void run_panel(const BenchOptions& opts, double cap_mbps,
               const std::vector<double>& buffers,
               const std::vector<double>& rtts) {
  Table table({"buffer_bdp", "rtt_ms", "bbr_region_lo", "bbr_region_hi",
               "cubic_at_ne_bbrv2"});
  NashSearchConfig cfg;
  cfg.challenger = CcKind::kBbrV2;
  cfg.trial = trial_config(opts);
  if (opts.fidelity != Fidelity::kFull) cfg.trial.trials = 1;

  // Flatten the (buffer x RTT) grid into independent parallel NE
  // searches; rows are emitted in grid order.
  struct Row {
    bool has_region = false;
    double lo = 0, hi = 0;
    int k_ne = 0;
  };
  std::vector<Row> rows(buffers.size() * rtts.size());
  for_each_cell(opts, rows.size(), [&](std::size_t c) {
    const double bdp = buffers[c / rtts.size()];
    const double rtt = rtts[c % rtts.size()];
    const NetworkParams net = make_params(cap_mbps, rtt, bdp);
    const auto region = predict_nash_region(net, kTotalFlows);
    Row& r = rows[c];
    if (region) {
      r.has_region = true;
      r.lo = region->cubic_low();
      r.hi = region->cubic_high();
    }
    r.k_ne = find_ne_crossing(net, kTotalFlows, cfg);
  });
  for (std::size_t c = 0; c < rows.size(); ++c) {
    const Row& r = rows[c];
    table.add_row(
        {format_double(buffers[c / rtts.size()], 1),
         format_double(rtts[c % rtts.size()], 0),
         r.has_region ? format_double(r.lo, 1) : "n/a",
         r.has_region ? format_double(r.hi, 1) : "n/a",
         format_double(static_cast<double>(kTotalFlows - r.k_ne), 0)});
  }
  if (!opts.csv) std::printf("-- panel: 50 flows, %.0f Mbps --\n", cap_mbps);
  emit(opts, table);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 11",
               "CUBIC vs BBRv2 Nash Equilibria, 50 flows");

  std::vector<double> buffers;
  std::vector<double> rtts;
  switch (opts.fidelity) {
    case Fidelity::kQuick:
      buffers = {5};
      rtts = {40};
      break;
    case Fidelity::kDefault:
      buffers = {2, 8, 20, 40};
      rtts = {20, 40, 80};
      break;
    case Fidelity::kFull:
      buffers = {1, 2, 5, 8, 12, 20, 30, 40, 50};
      rtts = {20, 40, 80};
      break;
  }
  run_panel(opts, 50.0, buffers, rtts);
  run_panel(opts, 100.0, buffers, rtts);
  print_parallel_summary(opts);
  return 0;
}
