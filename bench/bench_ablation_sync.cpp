// Ablation: CUBIC synchronization (paper §5, "Forced synchronization among
// CUBIC flows"). For 5 CUBIC vs 5 BBR we measure the aggregate CUBIC
// buffer-occupancy floor b_cmin and compare it against the two model
// bounds (Eq. 21 sync, Eq. 22 desync), and report which bound the measured
// per-flow BBR throughput is closer to. The paper observes results usually
// nearer the synchronized bound because BBR's collective ProbeRTT exit
// overflows the buffer and synchronizes CUBIC's losses.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/mishra_model.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Ablation",
               "CUBIC synchronization: measured b_cmin and closer bound");

  const TrialConfig trial = trial_config(opts);
  const std::vector<double> buffers =
      opts.fidelity == Fidelity::kQuick
          ? std::vector<double>{5.0}
          : std::vector<double>{2.0, 3.0, 5.0, 8.0, 12.0, 20.0};

  // Buffer points are independent: parallel cells, reduced in sweep order.
  struct Row {
    double model_bcmin = 0, sim_bcmin = 0, lo = 0, hi = 0, sim = 0;
  };
  std::vector<Row> rows(buffers.size());
  for_each_cell(opts, buffers.size(), [&](std::size_t i) {
    const NetworkParams net = make_params(100.0, 40.0, buffers[i]);
    const auto region = prediction_interval(net, 5, 5);
    const MixOutcome m = run_mix_trials(net, 5, 5, CcKind::kBbr, trial);
    Row& r = rows[i];
    r.model_bcmin = region ? region->sync.aggregate.cubic_min_buffer / 1e3 : 0.0;
    r.sim_bcmin = m.cubic_buffer_min / 1e3;
    r.lo = region ? to_mbps(region->sync.per_flow_bbr) : 0.0;
    r.hi = region ? to_mbps(region->desync.per_flow_bbr) : 0.0;
    r.sim = m.per_flow_other_mbps;
  });

  Table table({"buffer_bdp", "model_bcmin_kB", "sim_bcmin_kB",
               "sync_bound_mbps", "desync_bound_mbps", "sim_bbr_mbps",
               "closer_bound"});
  int closer_sync = 0;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const Row& r = rows[i];
    const bool sync_closer = std::fabs(r.sim - r.lo) <= std::fabs(r.sim - r.hi);
    closer_sync += sync_closer ? 1 : 0;
    table.add_row({format_double(buffers[i], 0),
                   format_double(r.model_bcmin, 0),
                   format_double(r.sim_bcmin, 0), format_double(r.lo),
                   format_double(r.hi), format_double(r.sim),
                   sync_closer ? "sync" : "desync"});
  }
  emit(opts, table);
  if (!opts.csv) {
    std::printf("buffers where the synchronized bound is closer: %d/%zu\n",
                closer_sync, buffers.size());
  }
  print_parallel_summary(opts);
  return 0;
}
