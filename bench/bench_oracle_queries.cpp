// bench_oracle_queries: the payoff-oracle query-latency harness.
//
// The oracle's contract is economic: an exact memo hit must be so much
// cheaper than recomputing the cell that callers can treat cached payoff
// lookups as free. This driver measures all three answer tiers against one
// live PayoffOracle:
//
//   miss          cold queries that genuinely run the simulator (tier 3) —
//                 the recompute cost everything else is compared against,
//   exact         hot repeats of the same cells (tier 1 memo hits),
//   interpolated  midpoint queries between cached cells (tier 2; the model
//                 cross-check is disarmed so the tier itself is timed, not
//                 the rejection path).
//
// and reports queries/sec plus p50/p99 latency per tier and the headline
// ratio `exact-hit speedup vs recompute` (mean miss / mean exact). The
// measured numbers land in results/BENCH_oracle.json (see EXPERIMENTS.md).
//
// With --connect the harness additionally self-hosts a `bbrnash serve`
// daemon on a private socket and times the same exact-tier hits through
// the full wire path (connect once, then query/answer round trips) as the
// `daemon_exact` tier — the socket + framing + scheduling overhead an NE
// search pays for sharing one memo across processes.
//
// Usage:
//   bench_oracle_queries [--quick] [--check] [--json PATH] [--connect]
//     [--write-baseline FILE] [--baseline FILE] [--tolerance F]
//     --quick   shorter compute cells + fewer timed queries (CI smoke)
//     --check   exit non-zero unless (a) every exact hit is bit-identical
//               to the outcome computed in the miss phase, (b) every
//               midpoint query answers with the interpolated fidelity tag,
//               (c) a --no-compute probe returns kPending with zeroed
//               numbers, and (d) exact hits are >= 1000x faster than
//               recompute (a conservative floor: the full-fidelity ratio
//               runs well past 10000x; the floor keeps CI flake-free)
//     --connect time the daemon path too (adds the daemon_exact tier; with
//               --check also asserts daemon answers are ok/exact)
//     --json    write the measurements as JSON (bbrnash-oracle-perf-v1)
//     --write-baseline FILE
//               record per-tier queries/sec as a JSONL baseline
//     --baseline FILE [--tolerance F]
//               compare per-tier queries/sec against a recorded baseline:
//               exit non-zero when any tier regresses below (1 - F) x
//               baseline (default F = 0.2; query latency is micro-scale,
//               so the gate is looser than the simcore one). Timing-
//               dependent — perf triage, not CI (CI uses --check).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exp/cli_flags.hpp"
#include "exp/oracle.hpp"
#include "exp/serve.hpp"
#include "util/jsonl.hpp"
#include "util/schemas.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace bbrnash {
namespace {

// bbrnash-lint: allow(wall-clock) -- this harness MEASURES wall time
// (queries/sec, per-tier latency); timing never feeds back into any
// simulation or oracle state.
using Clock = std::chrono::steady_clock;

struct TierStats {
  std::string name;
  std::vector<double> ns;  ///< one entry per timed query

  [[nodiscard]] double mean_ns() const {
    if (ns.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : ns) sum += v;
    return sum / static_cast<double>(ns.size());
  }
  /// Delegates to the shared util/stats percentile (numpy-style linear
  /// interpolation). The old local copy truncated the rank, so p99 of a
  /// small sample silently reported a lower quantile (for n < 100 it could
  /// equal the median); one implementation, pinned by tests/util, now
  /// serves every consumer.
  [[nodiscard]] double percentile_ns(double p) const {
    return percentile(ns, p);
  }
  [[nodiscard]] double qps() const {
    const double m = mean_ns();
    return m > 0.0 ? 1e9 / m : 0.0;
  }
};

/// The wire-line twin of make_query(): every knob spelled out so the
/// daemon's oracle computes exactly the cells the in-process tiers use.
std::string make_query_line(double buffer_bdp, bool quick) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "capacity=100 rtt=40 buffer-bdp=%g cubic=1 other=1 "
                "trials=%d duration=%g warmup=%g seed=1 jobs=1",
                buffer_bdp, quick ? 1 : 3, quick ? 5.0 : 40.0,
                quick ? 1.0 : 8.0);
  return buf;
}

OracleQuery make_query(double buffer_bdp, bool quick) {
  OracleQuery q;
  q.net = make_params(100, 40, buffer_bdp);
  q.num_cubic = 1;
  q.num_other = 1;
  // Full fidelity keeps TrialConfig's defaults (3 trials x 40 s — the
  // sweep cell the paper figures are built from), so the speedup ratio is
  // against the genuine recompute cost. Quick shrinks the cells for CI.
  if (quick) {
    q.trial.trials = 1;
    q.trial.duration = from_sec(5.0);
    q.trial.warmup = from_sec(1.0);
  }
  q.trial.seed = 1;
  q.trial.jobs = 1;
  return q;
}

/// Bit-identical MixOutcome comparison: the exact tier's contract is "the
/// same doubles run_mix_trials produced", not "close".
bool same_outcome(const MixOutcome& a, const MixOutcome& b) {
  return std::memcmp(&a.per_flow_cubic_mbps, &b.per_flow_cubic_mbps,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.per_flow_other_mbps, &b.per_flow_other_mbps,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.total_cubic_mbps, &b.total_cubic_mbps,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.total_other_mbps, &b.total_other_mbps,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.avg_queue_delay_ms, &b.avg_queue_delay_ms,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.link_utilization, &b.link_utilization,
                     sizeof(double)) == 0 &&
         a.trials_completed == b.trials_completed &&
         a.trials_failed == b.trials_failed;
}

void write_json(const std::string& path, bool quick,
                std::vector<TierStats>& tiers, double speedup) {
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  os << "{\n  \"schema\": \"" << kSchemaOraclePerf << "\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"tiers\": [\n";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    TierStats& t = tiers[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"tier\": \"%s\", \"queries\": %zu, "
                  "\"qps\": %.1f, \"mean_us\": %.3f, \"p50_us\": %.3f, "
                  "\"p99_us\": %.3f}%s\n",
                  t.name.c_str(), t.ns.size(), t.qps(), t.mean_ns() / 1e3,
                  t.percentile_ns(0.50) / 1e3, t.percentile_ns(0.99) / 1e3,
                  i + 1 < tiers.size() ? "," : "");
    os << buf;
  }
  os << "  ],\n";
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "  \"speedup_exact_vs_compute\": %.0f\n}\n", speedup);
  os << buf;
}

void write_baseline(const std::string& path, bool quick,
                    const std::vector<TierStats>& tiers) {
  std::ofstream os{path, std::ios::trunc};
  if (!os) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  for (const TierStats& t : tiers) {
    JsonlRecord rec;
    rec.set("schema", kSchemaOracleBaseline);
    rec.set("name", t.name);
    rec.set("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
    rec.set("qps", t.qps());
    rec.set("queries", static_cast<std::uint64_t>(t.ns.size()));
    os << rec.encode() << '\n';
  }
  std::printf("baseline written to %s (%zu tiers)\n", path.c_str(),
              tiers.size());
}

int compare_baseline(const std::string& path, double tolerance,
                     const std::vector<TierStats>& tiers) {
  std::size_t skipped = 0;
  const std::vector<JsonlRecord> records = read_jsonl(path, &skipped);
  if (skipped > 0) {
    std::fprintf(stderr, "warning: %zu unparseable line(s) in %s\n", skipped,
                 path.c_str());
  }
  if (records.empty()) {
    std::fprintf(stderr,
                 "error: no baseline records in %s (run with "
                 "--write-baseline first)\n",
                 path.c_str());
    return -1;
  }
  std::map<std::string, double> base;
  for (const JsonlRecord& r : records) {
    base[r.get_string("name")] = r.get_double("qps");
  }
  int regressions = 0;
  for (const TierStats& t : tiers) {
    const auto it = base.find(t.name);
    if (it == base.end() || it->second <= 0.0) {
      std::printf("baseline %-14s (no baseline entry)\n", t.name.c_str());
      continue;
    }
    const double measured = t.qps();
    const bool ok = measured >= (1.0 - tolerance) * it->second;
    if (!ok) ++regressions;
    std::printf("baseline %-14s %12.0f q/s vs %12.0f recorded (%+.2f%%) %s\n",
                t.name.c_str(), measured, it->second,
                100.0 * (measured / it->second - 1.0),
                ok ? "ok" : "REGRESSED");
  }
  return regressions;
}

}  // namespace
}  // namespace bbrnash

int main(int argc, char** argv) {
  using namespace bbrnash;
  bool quick = false;
  bool check = false;
  bool connect_mode = false;
  double tolerance = 0.2;
  std::string json_path;
  std::string baseline_in;
  std::string baseline_out;
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: bench_oracle_queries [--quick] [--check] "
                 "[--json PATH] [--connect]\n"
                 "  [--write-baseline FILE] [--baseline FILE] "
                 "[--tolerance F]\n");
    return 2;
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        quick = true;
      } else if (arg == "--check") {
        check = true;
      } else if (arg == "--connect") {
        connect_mode = true;
      } else if (arg == "--json" && i + 1 < argc) {
        json_path = argv[++i];
      } else if (arg == "--write-baseline" && i + 1 < argc) {
        baseline_out = argv[++i];
      } else if (arg == "--baseline" && i + 1 < argc) {
        baseline_in = argv[++i];
      } else if (arg == "--tolerance" && i + 1 < argc) {
        tolerance = parse_double_strict("--tolerance", argv[++i]);
        if (tolerance < 0.0 || tolerance >= 1.0) {
          std::fprintf(stderr, "--tolerance must be in [0, 1)\n");
          return usage();
        }
      } else {
        return usage();
      }
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid flag value: %s\n", e.what());
    return usage();
  }

  // Cells at these buffer depths are computed cold (the miss tier), then
  // re-queried hot (exact tier); the gaps between them host the midpoint
  // queries (interpolated tier). In-memory cache only: the disk log is
  // crash-safety machinery, not part of the per-query cost being measured.
  const std::vector<double> grid_bdps = {2, 4, 8};
  const std::vector<double> mid_bdps = {3, 6};
  const std::size_t exact_iters = quick ? 20000 : 60000;
  const std::size_t interp_iters = quick ? 5000 : 20000;

  OracleConfig cfg;
  // Disarm the model cross-check: this harness times the interpolation
  // tier itself; whether a particular blend would survive the band gate is
  // the differential suite's concern, not a latency question.
  cfg.max_band_deviation = 1e9;
  PayoffOracle oracle{cfg};

  std::printf("payoff-oracle query harness (%s)\n", quick ? "quick" : "full");
  bool ok = true;

  // --- miss tier: cold computes ------------------------------------------
  TierStats miss{"miss_compute", {}};
  std::vector<MixOutcome> computed;
  for (const double bdp : grid_bdps) {
    const OracleQuery q = make_query(bdp, quick);
    const auto t0 = Clock::now();
    const OracleAnswer a = oracle.query(q);
    const auto t1 = Clock::now();
    miss.ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
    if (!a.ok() || a.fidelity != OracleFidelity::kExact) {
      std::fprintf(stderr, "FAIL: cold query at %.0f BDP did not compute\n",
                   bdp);
      ok = false;
    }
    computed.push_back(a.outcome);
  }

  // --- exact tier: hot memo hits -----------------------------------------
  TierStats exact{"exact", {}};
  exact.ns.reserve(exact_iters);
  for (std::size_t i = 0; i < exact_iters; ++i) {
    const double bdp = grid_bdps[i % grid_bdps.size()];
    const OracleQuery q = make_query(bdp, quick);
    const auto t0 = Clock::now();
    const OracleAnswer a = oracle.query(q);
    const auto t1 = Clock::now();
    exact.ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
    if (check && (!a.ok() || a.fidelity != OracleFidelity::kExact ||
                  !same_outcome(a.outcome, computed[i % grid_bdps.size()]))) {
      std::fprintf(stderr,
                   "FAIL: exact hit at %.0f BDP not bit-identical to the "
                   "computed outcome\n",
                   bdp);
      ok = false;
      break;
    }
  }

  // --- interpolated tier: midpoints between cached cells -----------------
  TierStats interp{"interpolated", {}};
  interp.ns.reserve(interp_iters);
  for (std::size_t i = 0; i < interp_iters; ++i) {
    const double bdp = mid_bdps[i % mid_bdps.size()];
    const OracleQuery q = make_query(bdp, quick);
    const auto t0 = Clock::now();
    const OracleAnswer a = oracle.query(q);
    const auto t1 = Clock::now();
    interp.ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
    if (check && (!a.ok() || a.fidelity != OracleFidelity::kInterpolated)) {
      std::fprintf(stderr,
                   "FAIL: midpoint query at %.0f BDP answered %s/%s, "
                   "expected ok/interpolated\n",
                   bdp, to_string(a.status), to_string(a.fidelity));
      ok = false;
      break;
    }
  }

  // --- pending probe: a miss under --no-compute must stay silent ---------
  if (check) {
    OracleConfig frozen;
    frozen.no_compute = true;
    frozen.allow_model = false;
    PayoffOracle probe{frozen};
    const OracleAnswer a = probe.query(make_query(5, quick));
    const MixOutcome zero;
    if (a.status != OracleStatus::kPending || !same_outcome(a.outcome, zero)) {
      std::fprintf(stderr,
                   "FAIL: --no-compute miss fabricated numbers (status %s)\n",
                   to_string(a.status));
      ok = false;
    }
  }

  std::vector<TierStats> tiers;
  tiers.push_back(std::move(miss));
  tiers.push_back(std::move(exact));
  tiers.push_back(std::move(interp));

  // --- daemon tier: exact hits over the serve wire path ------------------
  if (connect_mode) {
    ServeConfig scfg;
    scfg.socket_path =
        "/tmp/bbrnash-bench-serve-" + std::to_string(getpid()) + ".sock";
    scfg.oracle.max_band_deviation = 1e9;  // mirror the in-process oracle
    OracleDaemon daemon{scfg};
    std::thread host{[&daemon] { (void)daemon.run(); }};
    for (int i = 0; i < 1000 && !daemon.serving(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!daemon.serving()) {
      std::fprintf(stderr, "FAIL: bench daemon did not start: %s\n",
                   daemon.error().c_str());
      ok = false;
    } else {
      ClientConfig ccfg;
      ccfg.socket_path = scfg.socket_path;
      OracleClient client{ccfg};
      // Warm: compute the grid cells inside the daemon (tier-3 cost lands
      // here, not in the timed loop).
      std::vector<ServeReply> replies;
      for (const double bdp : grid_bdps) {
        if (client.query_lines({make_query_line(bdp, quick)}, &replies) !=
            ClientStatus::kOk) {
          std::fprintf(stderr, "FAIL: daemon warm-up query failed\n");
          ok = false;
        }
      }
      // Timed: one query/answer round trip per iteration, hot memo hits
      // only — the per-call overhead of sharing the memo across processes.
      TierStats dexact{"daemon_exact", {}};
      const std::size_t daemon_iters = quick ? 2000 : 10000;
      dexact.ns.reserve(daemon_iters);
      for (std::size_t i = 0; i < daemon_iters && ok; ++i) {
        const std::string line =
            make_query_line(grid_bdps[i % grid_bdps.size()], quick);
        const auto t0 = Clock::now();
        const ClientStatus st = client.query_lines({line}, &replies);
        const auto t1 = Clock::now();
        dexact.ns.push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count());
        if (check &&
            (st != ClientStatus::kOk ||
             replies[0].record.get_string("status") != "ok" ||
             replies[0].record.get_string("fidelity") != "exact")) {
          std::fprintf(stderr,
                       "FAIL: daemon hot query %zu answered %s/%s, expected "
                       "ok/exact\n",
                       i, replies[0].record.get_string("status").c_str(),
                       replies[0].record.get_string("fidelity").c_str());
          ok = false;
        }
      }
      tiers.push_back(std::move(dexact));
    }
    daemon.request_stop();
    host.join();
  }

  std::printf("%-14s %9s %14s %12s %12s\n", "tier", "queries", "queries/sec",
              "p50_us", "p99_us");
  for (TierStats& t : tiers) {
    std::printf("%-14s %9zu %14.0f %12.3f %12.3f\n", t.name.c_str(),
                t.ns.size(), t.qps(), t.percentile_ns(0.50) / 1e3,
                t.percentile_ns(0.99) / 1e3);
  }
  const double speedup =
      tiers[1].mean_ns() > 0.0 ? tiers[0].mean_ns() / tiers[1].mean_ns() : 0.0;
  std::printf("exact-hit speedup vs recompute: %.0fx\n", speedup);

  if (!json_path.empty()) write_json(json_path, quick, tiers, speedup);
  if (!baseline_out.empty()) write_baseline(baseline_out, quick, tiers);
  if (!baseline_in.empty()) {
    const int regressions = compare_baseline(baseline_in, tolerance, tiers);
    if (regressions != 0) return 1;
  }
  if (check && speedup < 1000.0) {
    std::fprintf(stderr,
                 "FAIL: exact-hit speedup %.0fx below the 1000x floor\n",
                 speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
