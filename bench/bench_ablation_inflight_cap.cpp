// Ablation: the paper's assumption 2 — "BBR flows always maintain 2 BDP
// packets in flight" — via the ProbeBW cwnd gain. The model hard-codes the
// factor 2 (Eq. 7). Here we vary BBR's cwnd gain and compare the simulated
// BBR share against (a) the standard model and (b) a gain-generalized
// variant of Eq. 10 (b_b + b_c = g*b_cmin + C*RTT resolves to the same
// fixed point with kappa unchanged only for g = 2), showing the model's
// accuracy is tied to the gain actually deployed.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/scenario_runner.hpp"
#include "model/mishra_model.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Ablation",
               "sensitivity to BBR's in-flight cap (paper assumption 2)");

  const TrialConfig trial = trial_config(opts);
  const std::vector<double> gains =
      opts.fidelity == Fidelity::kQuick
          ? std::vector<double>{2.0}
          : std::vector<double>{1.5, 2.0, 2.5, 3.0};
  const std::vector<double> buffers =
      opts.fidelity == Fidelity::kQuick ? std::vector<double>{5.0}
                                        : std::vector<double>{2.0, 5.0, 10.0};

  // Flatten the (gain x buffer) grid into independent parallel cells; the
  // per-trial loop inside a cell stays serial so its sum accumulates in
  // the exact reference order.
  struct Row {
    double model = 0, sim = 0;
  };
  std::vector<Row> rows(gains.size() * buffers.size());
  for_each_cell(opts, rows.size(), [&](std::size_t c) {
    const double gain = gains[c / buffers.size()];
    const double bdp = buffers[c % buffers.size()];
    const NetworkParams net = make_params(50.0, 40.0, bdp);
    const auto model = two_flow_prediction(net);

    double sum = 0.0;
    for (int t = 0; t < trial.trials; ++t) {
      Scenario s = make_mix_scenario(net, 1, 1);
      s.duration = trial.duration;
      s.warmup = trial.warmup;
      s.seed = trial.seed + static_cast<std::uint64_t>(t) * 1000003ULL;
      s.bbr_cwnd_gain = gain;
      sum += run_scenario(s).avg_goodput_mbps(CcKind::kBbr);
    }
    Row& r = rows[c];
    r.model = model ? to_mbps(model->lambda_bbr) : 0.0;
    r.sim = sum / trial.trials;
  });

  Table table({"cwnd_gain", "buffer_bdp", "model_mbps(g=2)", "sim_bbr_mbps",
               "err_pct"});
  for (std::size_t c = 0; c < rows.size(); ++c) {
    const Row& r = rows[c];
    const double err = r.sim > 0 ? 100.0 * (r.model - r.sim) / r.sim : 0.0;
    table.add_row({gains[c / buffers.size()], buffers[c % buffers.size()],
                   r.model, r.sim, err});
  }
  emit(opts, table);
  if (!opts.csv) {
    std::printf(
        "expectation: the g=2 model tracks the g=2.0 rows best; larger gains "
        "raise BBR's share (more in-flight), smaller gains lower it.\n");
  }
  print_parallel_summary(opts);
  return 0;
}
