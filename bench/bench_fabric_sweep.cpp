// Fabric throughput harness: cells/sec for the same payoff-grid sweep run
// (a) in-process on the calling thread and (b) sharded across forked
// worker processes by the sweep fabric (exp/fabric.hpp). Prints both
// timings plus the fork/lease overhead ratio, and — because speed means
// nothing if the numbers move — asserts the fabric cells are bit-identical
// to the in-process run before reporting.
//
// The default grid is the paper's k = 0..N payoff column at bench
// fidelity; --workers picks the pool size (default 2 here, unlike the
// figure benches where 0 means in-process only).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/checkpoint.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

namespace {

// bbrnash-lint: allow(wall-clock) -- this harness MEASURES wall time;
// nothing here feeds back into simulated results.
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);
  if (opts.workers < 1) opts.workers = 2;
  print_banner(opts, "Fabric",
               "sweep cells/sec: in-process vs forked worker fabric");

  const int total_flows = opts.fidelity == Fidelity::kQuick ? 3
                          : opts.fidelity == Fidelity::kFull ? 10
                                                             : 6;
  const NetworkParams net = make_params(100.0, 40.0, 3.0);
  const TrialConfig trial = trial_config(opts);
  std::vector<FabricCell> cells;
  for (int k = 0; k <= total_flows; ++k) {
    cells.push_back(FabricCell{total_flows - k, k});
  }

  const Clock::time_point serial_start = Clock::now();
  std::vector<MixOutcome> serial;
  serial.reserve(cells.size());
  for (const FabricCell& c : cells) {
    serial.push_back(
        run_mix_trials(net, c.num_cubic, c.num_other, CcKind::kBbr, trial));
  }
  const double serial_s = seconds_since(serial_start);

  const Clock::time_point fabric_start = Clock::now();
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fabric_config(opts));
  const double fabric_s = seconds_since(fabric_start);
  if (!out.complete()) {
    std::fprintf(stderr, "fabric: %s: %s\n", to_string(out.status),
                 out.message.c_str());
    return 1;
  }

  // Bit-identity gate: compare through the checkpoint encoding, the same
  // %.17g round-trip the fabric's own results took.
  std::size_t diverged = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (mix_to_record(*out.cells[i]).encode() !=
        mix_to_record(serial[i]).encode()) {
      ++diverged;
      std::fprintf(stderr, "cell %zu diverged from the in-process run\n", i);
    }
  }

  const double n = static_cast<double>(cells.size());
  Table table({"mode", "cells", "seconds", "cells_per_sec"});
  table.add_row({std::string{"in-process"}, format_double(n, 0),
                 format_double(serial_s, 3), format_double(n / serial_s, 1)});
  table.add_row({std::string{"fabric"}, format_double(n, 0),
                 format_double(fabric_s, 3), format_double(n / fabric_s, 1)});
  emit(opts, table);
  if (!opts.csv) {
    std::printf("bit-identical to in-process: %s\n",
                diverged == 0 ? "yes" : "NO");
    std::printf("fabric overhead: %.2fx serial wall time (%d workers)\n\n",
                fabric_s / serial_s, opts.workers);
  }
  print_fabric_summary(opts, out.stats);
  return diverged == 0 ? 0 : 1;
}
