// Shared scaffolding for the figure-regeneration benches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/fidelity.hpp"
#include "exp/sweeps.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bbrnash::bench {

/// Parsed command line common to all benches:
///   [--csv] [--seed N] [--fidelity quick|default|full] [--jobs N]
///   [--audit] [--chaos SEED]
struct BenchOptions {
  bool csv = false;
  std::uint64_t seed = 1;
  Fidelity fidelity = Fidelity::kDefault;
  /// Sweep workers: 0 (default) = one per hardware thread, 1 = serial.
  /// Output is bit-identical for every value (see exp/parallel.hpp).
  int jobs = 0;
  /// Conservation audit on every trial (--audit). Read-only sampling, so
  /// the figures are identical with or without it.
  bool audit = false;
  /// Deterministic fault injection (--chaos SEED); 0 = off. Every fault
  /// is retried with the same trial seed, so figures stay bit-identical.
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
};

/// Strict parser: an unknown flag or malformed value prints a diagnosis
/// and exits 2 — a typo'd knob must never silently run the default sweep.
/// `--checkpoint PATH` is recognised (and skipped) here because some
/// benches parse it themselves from the raw argv.
BenchOptions parse_options(int argc, char** argv);

/// Prints the figure banner: what is being reproduced and at what fidelity.
void print_banner(const BenchOptions& opts, const std::string& figure,
                  const std::string& description);

/// Emits the table in the selected format.
void emit(const BenchOptions& opts, const Table& table);

/// Trial config at the chosen fidelity (carries opts.jobs).
TrialConfig trial_config(const BenchOptions& opts);

/// Runs fn(i) for i in [0, n) on opts.jobs workers. fn must commit its
/// results by index (slot per sweep point); emit the table afterwards in
/// index order and the output is byte-identical to --jobs 1.
void for_each_cell(const BenchOptions& opts, std::size_t n,
                   const std::function<void(std::size_t)>& fn);

/// Prints the per-run parallel telemetry footer (suppressed under --csv).
void print_parallel_summary(const BenchOptions& opts);

}  // namespace bbrnash::bench
