// Shared scaffolding for the figure-regeneration benches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/fabric.hpp"
#include "exp/fidelity.hpp"
#include "exp/sweeps.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bbrnash::bench {

/// Parsed command line common to all benches:
///   [--csv] [--seed N] [--fidelity quick|default|full] [--jobs N]
///   [--audit] [--chaos SEED] [--workers N] [--lease-ms MS]
///   [--max-worker-retries N] [--fabric-stats]
struct BenchOptions {
  bool csv = false;
  std::uint64_t seed = 1;
  Fidelity fidelity = Fidelity::kDefault;
  /// Sweep workers: 0 (default) = one per hardware thread, 1 = serial.
  /// Output is bit-identical for every value (see exp/parallel.hpp).
  int jobs = 0;
  /// Conservation audit on every trial (--audit). Read-only sampling, so
  /// the figures are identical with or without it.
  bool audit = false;
  /// Deterministic fault injection (--chaos SEED); 0 = off. Every fault
  /// is retried with the same trial seed, so figures stay bit-identical.
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  /// Fabric mode (--workers N, N >= 1): shard sweep cells across forked
  /// worker processes (exp/fabric.hpp) instead of in-process threads.
  /// 0 = in-process (the default). Output is bit-identical either way.
  int workers = 0;
  double lease_ms = 2000.0;      ///< --lease-ms: heartbeat deadline
  int max_worker_retries = 3;    ///< --max-worker-retries: per-cell budget
  bool fabric_stats = false;     ///< --fabric-stats: JSON stats record
};

/// Strict parser: an unknown flag or malformed value prints a diagnosis
/// and exits 2 — a typo'd knob must never silently run the default sweep.
/// `--checkpoint PATH` is recognised (and skipped) here because some
/// benches parse it themselves from the raw argv.
BenchOptions parse_options(int argc, char** argv);

/// Prints the figure banner: what is being reproduced and at what fidelity.
void print_banner(const BenchOptions& opts, const std::string& figure,
                  const std::string& description);

/// Emits the table in the selected format.
void emit(const BenchOptions& opts, const Table& table);

/// Trial config at the chosen fidelity (carries opts.jobs).
TrialConfig trial_config(const BenchOptions& opts);

/// Runs fn(i) for i in [0, n) on opts.jobs workers. fn must commit its
/// results by index (slot per sweep point); emit the table afterwards in
/// index order and the output is byte-identical to --jobs 1.
void for_each_cell(const BenchOptions& opts, std::size_t n,
                   const std::function<void(std::size_t)>& fn);

/// Prints the per-run parallel telemetry footer (suppressed under --csv).
void print_parallel_summary(const BenchOptions& opts);

/// FabricConfig mirroring the fabric-mode flags (workers, lease, retry
/// budget, chaos injector). Meaningful when opts.workers >= 1.
FabricConfig fabric_config(const BenchOptions& opts);

/// Prints the fabric footer: a human summary line, plus the
/// bbrnash-fabric-stats-v1 JSON record when --fabric-stats was given
/// (the record prints even under --csv; the summary line does not).
void print_fabric_summary(const BenchOptions& opts, const FabricStats& stats);

}  // namespace bbrnash::bench
