// Shared scaffolding for the figure-regeneration benches.
#pragma once

#include <string>
#include <vector>

#include "exp/fidelity.hpp"
#include "exp/sweeps.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bbrnash::bench {

/// Parsed command line common to all benches: [--csv] [--seed N].
struct BenchOptions {
  bool csv = false;
  std::uint64_t seed = 1;
  Fidelity fidelity = Fidelity::kDefault;
};

BenchOptions parse_options(int argc, char** argv);

/// Prints the figure banner: what is being reproduced and at what fidelity.
void print_banner(const BenchOptions& opts, const std::string& figure,
                  const std::string& description);

/// Emits the table in the selected format.
void emit(const BenchOptions& opts, const Table& table);

/// Trial config at the chosen fidelity.
TrialConfig trial_config(const BenchOptions& opts);

}  // namespace bbrnash::bench
