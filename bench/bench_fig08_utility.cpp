// Figure 8 (a, b): why throughput, not delay, drives switching. For the
// 10-flow / 100 Mbps / 2 BDP / 40 ms evolution experiment, print (a) the
// average per-flow throughput of CUBIC and of BBR, and (b) the shared
// average queuing delay, for every distribution.
//
// The paper's point: throughput is strongly asymmetric between the two
// algorithms while queuing delay is virtually flat until every flow is
// BBR — so throughput is the metric with switching incentive.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace bbrnash;
using namespace bbrnash::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_banner(opts, "Figure 8",
               "throughput asymmetry vs shared queuing delay, 10 flows, "
               "2 BDP, 40 ms");

  const NetworkParams net = make_params(100.0, 40.0, 2.0);
  const TrialConfig trial = trial_config(opts);
  const int step = opts.fidelity == Fidelity::kQuick ? 2 : 1;

  std::vector<int> ks;
  for (int k = 0; k <= 10; k += step) ks.push_back(k);

  // Distributions are independent: run them as parallel cells, then build
  // the table and the delay summary in k order.
  struct Row {
    double cubic = 0, bbr = 0, delay = 0;
  };
  std::vector<Row> rows(ks.size());
  for_each_cell(opts, ks.size(), [&](std::size_t i) {
    const int k = ks[i];
    const MixOutcome m = run_mix_trials(net, 10 - k, k, CcKind::kBbr, trial);
    rows[i] = {m.per_flow_cubic_mbps, m.per_flow_other_mbps,
               m.avg_queue_delay_ms};
  });

  Table table({"num_bbr", "cubic_mbps", "bbr_mbps", "queue_delay_ms"});
  double delay_mixed_min = 1e9;
  double delay_mixed_max = 0.0;
  double delay_all_bbr = 0.0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const int k = ks[i];
    const Row& r = rows[i];
    table.add_row({static_cast<double>(k), r.cubic, r.bbr, r.delay});
    if (k == 10) {
      delay_all_bbr = r.delay;
    } else {
      delay_mixed_min = std::min(delay_mixed_min, r.delay);
      delay_mixed_max = std::max(delay_mixed_max, r.delay);
    }
  }
  emit(opts, table);
  if (!opts.csv) {
    std::printf(
        "queuing delay across mixed distributions: %.1f..%.1f ms (flat); "
        "all-BBR: %.1f ms\n",
        delay_mixed_min, delay_mixed_max, delay_all_bbr);
  }
  print_parallel_summary(opts);
  return 0;
}
