// mice_and_elephants: what the paper's model does NOT cover — short flows.
//
// The paper's §5 notes that real workloads mix long flows with short,
// latency-sensitive transfers, and leaves them to future work. This
// example measures the flow-completion time (FCT) of short "mice" (web
// object sized transfers) sharing a bottleneck with long-running
// CUBIC/BBR "elephants", as the elephants' congestion-control mix varies
// — the operational question behind the paper's queuing-delay argument
// (Fig. 8b): a CUBIC-dominated bottleneck keeps the buffer full, so every
// mouse pays the standing queue.
//
//   usage: mice_and_elephants [capacity_mbps] [rtt_ms] [buffer_bdp]
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "exp/cli_flags.hpp"
#include "exp/scenario_runner.hpp"
#include "util/stats.hpp"

using namespace bbrnash;

namespace {

struct FctResult {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  int completed = 0;
  int total = 0;
  double queue_delay_ms = 0.0;
};

FctResult run_mix(const NetworkParams& net, int cubic_elephants,
                  int bbr_elephants, CcKind mouse_cc, int mice,
                  Bytes mouse_bytes) {
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.duration = from_sec(40);
  s.warmup = from_sec(10);

  for (int i = 0; i < cubic_elephants; ++i) {
    s.flows.push_back({CcKind::kCubic, net.base_rtt});
  }
  for (int i = 0; i < bbr_elephants; ++i) {
    s.flows.push_back({CcKind::kBbr, net.base_rtt});
  }
  // Mice start after warm-up, staggered 2 s apart.
  std::vector<std::size_t> mouse_ids;
  for (int i = 0; i < mice; ++i) {
    FlowSpec mouse;
    mouse.cc = mouse_cc;
    mouse.base_rtt = net.base_rtt;
    mouse.transfer_bytes = mouse_bytes;
    mouse.start_at = s.warmup + from_sec(2) * i;
    mouse_ids.push_back(s.flows.size());
    s.flows.push_back(mouse);
  }

  const RunResult r = run_scenario(s);
  FctResult out;
  out.total = mice;
  out.queue_delay_ms = r.avg_queue_delay_ms;
  std::vector<double> fct_ms;
  for (std::size_t idx = 0; idx < mouse_ids.size(); ++idx) {
    const FlowResult& f = r.flows[mouse_ids[idx]];
    if (f.stats.completed_at == kTimeNone) continue;
    const TimeNs started = s.flows[mouse_ids[idx]].start_at;
    fct_ms.push_back(to_ms(f.stats.completed_at - started));
    ++out.completed;
  }
  out.mean_ms = mean_of(fct_ms);
  out.p95_ms = percentile(fct_ms, 0.95);
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const double cap =
      argc > 1 ? parse_double_strict("cap", argv[1]) : 50.0;
  const double rtt =
      argc > 2 ? parse_double_strict("rtt", argv[2]) : 40.0;
  const double bdp =
      argc > 3 ? parse_double_strict("bdp", argv[3]) : 5.0;
  const NetworkParams net = make_params(cap, rtt, bdp);
  const Bytes mouse_bytes = 200 * 1024;  // a 200 kB web object
  const int mice = 10;

  std::printf("Mice (%d x 200 kB transfers) among 6 elephants on "
              "%.0f Mbps / %.0f ms / %.0f BDP\n\n",
              mice, cap, rtt, bdp);
  std::printf("%-22s %-10s %12s %12s %12s %14s\n", "elephant mix",
              "mouse CC", "FCT mean", "FCT p95", "completed",
              "queue delay");

  for (const auto& [nc, nb] : std::vector<std::pair<int, int>>{
           {6, 0}, {4, 2}, {2, 4}, {0, 6}}) {
    for (const CcKind mouse_cc : {CcKind::kCubic, CcKind::kBbr}) {
      const FctResult r = run_mix(net, nc, nb, mouse_cc, mice, mouse_bytes);
      std::printf("%d cubic + %d bbr        %-10s %9.0f ms %9.0f ms %9d/%-2d %11.0f ms\n",
                  nc, nb, to_string(mouse_cc), r.mean_ms, r.p95_ms,
                  r.completed, r.total, r.queue_delay_ms);
    }
  }
  std::printf(
      "\nReading: mouse FCT is dominated by the standing queue the\n"
      "elephants maintain. A BBR-heavy elephant mix keeps the buffer\n"
      "shorter, so every short transfer finishes faster — the delay\n"
      "dimension the paper's throughput-only game sets aside.\n");
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "mice_and_elephants: invalid configuration: %s\n", e.what());
  return 2;
}
