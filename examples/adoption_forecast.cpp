// adoption_forecast: "are we heading towards a BBR-dominant Internet?"
//
// The paper's title question, answered with its own machinery: simulate
// adoption as repeated best-response — websites switch congestion control
// whenever switching improves their throughput — starting from today's
// rough landscape (a minority of BBR flows), and watch where the
// population stops. The model predicts the same fixed point analytically
// via Eq. 25.
//
//   usage: adoption_forecast [capacity_mbps] [rtt_ms] [buffer_bdp] [flows]
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "exp/cli_flags.hpp"
#include "exp/nash_search.hpp"
#include "model/nash.hpp"

using namespace bbrnash;

int main(int argc, char** argv) try {
  const double cap_mbps =
      argc > 1 ? parse_double_strict("cap_mbps", argv[1]) : 100.0;
  const double rtt_ms =
      argc > 2 ? parse_double_strict("rtt_ms", argv[2]) : 40.0;
  const double buffer_bdp =
      argc > 3 ? parse_double_strict("buffer_bdp", argv[3]) : 5.0;
  const int flows = argc > 4 ? parse_int_strict("flows", argv[4]) : 20;

  const NetworkParams net = make_params(cap_mbps, rtt_ms, buffer_bdp);

  std::printf("Adoption forecast at one bottleneck: %.0f Mbps, %.0f ms, "
              "%.0f BDP, %d websites\n\n",
              cap_mbps, rtt_ms, buffer_bdp, flows);

  NashSearchConfig cfg;
  cfg.trial.duration = from_sec(40);
  cfg.trial.warmup = from_sec(10);
  cfg.trial.trials = 1;

  // Start from ~30% BBR (the landscape the paper cites circa 2019) and let
  // websites defect one at a time to whichever CCA pays more.
  int k = flows * 3 / 10;
  std::printf("step 0: %d/%d flows on BBR (assumed current landscape)\n", k,
              flows);
  const EmpiricalPayoffs p = measure_payoffs(net, flows, cfg);
  SymmetricGame game{flows, p.cubic_mbps, p.other_mbps};
  const double fair = to_mbps(net.capacity) / flows;
  const int rest = game.best_response_path(k, 0.05 * fair);

  // Narrate the path.
  int cur = k;
  int step = 1;
  while (cur != rest) {
    const int next = cur < rest ? cur + 1 : cur - 1;
    std::printf("step %d: a %s flow switches -> %d/%d on BBR "
                "(BBR pays %.2f, CUBIC pays %.2f Mbps)\n",
                step++, cur < rest ? "CUBIC" : "BBR", next, flows,
                p.other_mbps[static_cast<std::size_t>(next)],
                p.cubic_mbps[static_cast<std::size_t>(next)]);
    cur = next;
  }

  std::printf("\nPopulation settles at %d/%d BBR flows.\n", rest, flows);
  const auto region = predict_nash_region(net, flows);
  if (region) {
    std::printf("Model's Eq. 25 prediction: %.1f-%.1f BBR flows.\n",
                static_cast<double>(flows) - region->cubic_high(),
                static_cast<double>(flows) - region->cubic_low());
  }
  const std::vector<int> all_ne = game.equilibria(0.05 * fair);
  std::printf("All empirical equilibria (5%% tolerance):");
  for (const int ne : all_ne) std::printf(" %d", ne);
  std::printf("\n\nVerdict: %s\n",
              rest == flows
                  ? "BBR takes over this bottleneck."
                  : "a mixed CUBIC/BBR population is stable — BBR does NOT "
                    "take over (the paper's 'bold prediction').");
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "adoption_forecast: invalid configuration: %s\n", e.what());
  return 2;
}
