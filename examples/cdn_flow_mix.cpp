// cdn_flow_mix: should a CDN operator switch its flows to BBR?
//
// The scenario the paper's introduction motivates: a website served through
// a CDN shares a local bottleneck with competitors. This example takes the
// operator's view: given the *current* mix at the bottleneck, what
// throughput would one of my flows get as CUBIC vs as BBR — and does the
// answer still favour BBR once everyone else has drawn the same
// conclusion?
//
//   usage: cdn_flow_mix [capacity_mbps] [rtt_ms] [buffer_bdp] [flows]
#include <cstdio>
#include <stdexcept>

#include "exp/cli_flags.hpp"
#include "exp/scenario_runner.hpp"
#include "exp/sweeps.hpp"
#include "model/nash.hpp"

using namespace bbrnash;

int main(int argc, char** argv) try {
  const double cap_mbps =
      argc > 1 ? parse_double_strict("cap_mbps", argv[1]) : 100.0;
  const double rtt_ms =
      argc > 2 ? parse_double_strict("rtt_ms", argv[2]) : 40.0;
  const double buffer_bdp =
      argc > 3 ? parse_double_strict("buffer_bdp", argv[3]) : 5.0;
  const int flows = argc > 4 ? parse_int_strict("flows", argv[4]) : 10;

  const NetworkParams net = make_params(cap_mbps, rtt_ms, buffer_bdp);
  const double fair = to_mbps(net.capacity) / flows;

  std::printf("Bottleneck: %.0f Mbps, %.0f ms RTT, %.0f-BDP buffer, %d flows"
              " (fair share %.1f Mbps)\n\n",
              cap_mbps, rtt_ms, buffer_bdp, flows, fair);
  std::printf("%-28s %-16s %-16s %s\n", "current mix (#BBR of all)",
              "your flow as CUBIC", "your flow as BBR", "advice");

  TrialConfig cfg;
  cfg.duration = from_sec(40);
  cfg.warmup = from_sec(10);
  cfg.trials = 1;

  for (int k = 0; k < flows; k += flows / 5 > 0 ? flows / 5 : 1) {
    // You are one of the `flows` senders; the other flows' split is fixed.
    // As CUBIC you join (flows-k-1) CUBIC + k BBR; as BBR, (flows-k-1)
    // CUBIC + (k+1) BBR.
    const MixOutcome as_cubic =
        run_mix_trials(net, flows - k, k, CcKind::kBbr, cfg);
    const MixOutcome as_bbr =
        run_mix_trials(net, flows - k - 1, k + 1, CcKind::kBbr, cfg);
    const double cubic_mbps = as_cubic.per_flow_cubic_mbps;
    const double bbr_mbps = as_bbr.per_flow_other_mbps;
    std::printf("%-28d %-16.2f %-16.2f %s\n", k, cubic_mbps, bbr_mbps,
                bbr_mbps > cubic_mbps * 1.05   ? "switch to BBR"
                : cubic_mbps > bbr_mbps * 1.05 ? "stay on CUBIC"
                                               : "indifferent");
  }

  const auto region = predict_nash_region(net, flows);
  if (region) {
    std::printf(
        "\nModel's equilibrium: the mix stabilizes around %.1f-%.1f CUBIC "
        "flows of %d —\nonce the population reaches it, switching buys "
        "nothing (the paper's core claim).\n",
        region->cubic_low(), region->cubic_high(), flows);
  }
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "cdn_flow_mix: invalid configuration: %s\n", e.what());
  return 2;
}
