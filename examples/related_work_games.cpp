// related_work_games: the older congestion-control games the paper's §6
// cites, replayed with this library.
//
//   (1) Reno vs Vegas (Akella et al. 2002, Trinh & Molnár 2004): a 2-flow
//       game where loss-based Reno starves delay-based Vegas, so "both
//       play Reno" is the equilibrium — the historical reason delay-based
//       CC never took over.
//   (2) NewReno vs CUBIC: the transition the paper's introduction uses as
//       its precedent — CUBIC wins at every distribution on a high-BDP
//       path, so unlike BBR it had a strictly dominant incentive.
//
//   usage: related_work_games [capacity_mbps] [rtt_ms] [buffer_bdp]
#include <cstdio>
#include <stdexcept>

#include "exp/cli_flags.hpp"
#include "exp/scenario_runner.hpp"
#include "exp/sweeps.hpp"
#include "model/nash.hpp"

using namespace bbrnash;

namespace {

void two_by_two_game(const NetworkParams& net, CcKind a, CcKind b,
                     const char* name_a, const char* name_b) {
  // Payoffs for each of the 3 distributions of 2 flows over {a, b}.
  TrialConfig cfg;
  cfg.duration = from_sec(40);
  cfg.warmup = from_sec(10);
  cfg.trials = 1;

  const MixOutcome both_a = run_mix_trials(net, 0, 2, a, cfg);
  const MixOutcome both_b = run_mix_trials(net, 0, 2, b, cfg);

  Scenario mixed = make_mix_scenario(net, 0, 0);
  mixed.flows.push_back({a, net.base_rtt});
  mixed.flows.push_back({b, net.base_rtt});
  mixed.duration = cfg.duration;
  mixed.warmup = cfg.warmup;
  const RunResult r = run_scenario(mixed);
  const double a_in_mix = to_mbps(r.flows[0].stats.goodput_bps);
  const double b_in_mix = to_mbps(r.flows[1].stats.goodput_bps);

  std::printf("  payoff matrix (row = your choice, column = rival's):\n");
  std::printf("              %12s %12s\n", name_a, name_b);
  std::printf("  %-10s %9.2f    %9.2f\n", name_a,
              both_a.per_flow_other_mbps, a_in_mix);
  std::printf("  %-10s %9.2f    %9.2f\n", name_b, b_in_mix,
              both_b.per_flow_other_mbps);

  const bool a_dominant =
      both_a.per_flow_other_mbps >= b_in_mix && a_in_mix >= both_b.per_flow_other_mbps;
  const bool b_dominant =
      both_b.per_flow_other_mbps >= a_in_mix && b_in_mix >= both_a.per_flow_other_mbps;
  if (a_dominant && !b_dominant) {
    std::printf("  -> %s dominates: everyone plays %s at equilibrium.\n\n",
                name_a, name_a);
  } else if (b_dominant && !a_dominant) {
    std::printf("  -> %s dominates: everyone plays %s at equilibrium.\n\n",
                name_b, name_b);
  } else {
    std::printf("  -> no dominant strategy: a mixed population can be "
                "stable.\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) try {
  const double cap =
      argc > 1 ? parse_double_strict("cap", argv[1]) : 50.0;
  const double rtt =
      argc > 2 ? parse_double_strict("rtt", argv[2]) : 40.0;
  const double bdp =
      argc > 3 ? parse_double_strict("bdp", argv[3]) : 4.0;
  const NetworkParams net = make_params(cap, rtt, bdp);

  std::printf("Historical congestion-control games on %.0f Mbps / %.0f ms / "
              "%.0f BDP (per-flow Mbps)\n\n",
              cap, rtt, bdp);

  std::printf("(1) Reno vs Vegas — why delay-based CC lost the 2000s:\n");
  two_by_two_game(net, CcKind::kReno, CcKind::kVegas, "reno", "vegas");

  std::printf("(2) NewReno vs CUBIC — the precedent the paper starts from:\n");
  two_by_two_game(net, CcKind::kReno, CcKind::kCubic, "reno", "cubic");

  std::printf(
      "(3) CUBIC vs BBR — the paper's game: see bench_fig05/fig09 for the\n"
      "    full population sweeps; unlike (1) and (2), neither strategy\n"
      "    dominates and the population settles at a mixed equilibrium.\n");
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "related_work_games: invalid configuration: %s\n", e.what());
  return 2;
}
