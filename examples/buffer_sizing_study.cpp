// buffer_sizing_study: how does bottleneck buffer sizing shape the
// CUBIC/BBR equilibrium?
//
// The paper's §5 ("Implications on Internet Buffer Sizing") warns that the
// classic buffer-sizing rules assumed loss-based flows, while BBR keeps
// 2xBDP in flight. This example sweeps the buffer from 1 to 50 BDP and
// reports, per size: the model's predicted split of the link between a
// CUBIC and a BBR flow, the queueing delay the mix induces, and where the
// 50-flow Nash Equilibrium falls — the quantities an operator would weigh
// when provisioning buffers.
//
//   usage: buffer_sizing_study [capacity_mbps] [rtt_ms]
#include <cstdio>
#include <stdexcept>

#include "exp/cli_flags.hpp"
#include "exp/scenario_runner.hpp"
#include "model/mishra_model.hpp"
#include "model/nash.hpp"
#include "util/table.hpp"

using namespace bbrnash;

int main(int argc, char** argv) try {
  const double cap_mbps =
      argc > 1 ? parse_double_strict("cap_mbps", argv[1]) : 50.0;
  const double rtt_ms =
      argc > 2 ? parse_double_strict("rtt_ms", argv[2]) : 40.0;

  std::printf("Buffer-sizing study: %.0f Mbps, %.0f ms base RTT\n\n", cap_mbps,
              rtt_ms);
  std::printf("%-10s %-12s %-12s %-14s %-22s\n", "buffer", "BBR share",
              "CUBIC share", "queue delay*", "50-flow NE (#CUBIC)");
  std::printf("%-10s %-12s %-12s %-14s %-22s\n", "(BDP)", "(model)",
              "(model)", "(simulated)", "(model region)");

  for (const double bdp : {1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 30.0, 50.0}) {
    const NetworkParams net = make_params(cap_mbps, rtt_ms, bdp);
    const auto pred = two_flow_prediction(net);
    const auto region = predict_nash_region(net, 50);

    // One short simulation for the delay column.
    Scenario s = make_mix_scenario(net, 1, 1);
    s.duration = from_sec(30);
    s.warmup = from_sec(8);
    const RunResult r = run_scenario(s);

    std::printf("%-10.0f %-12s %-12s %-14s %-22s\n", bdp,
                pred ? (format_double(100.0 * pred->lambda_bbr / net.capacity,
                                      0) + "%")
                           .c_str()
                     : "n/a",
                pred ? (format_double(100.0 * pred->lambda_cubic / net.capacity,
                                      0) + "%")
                           .c_str()
                     : "n/a",
                (format_double(r.avg_queue_delay_ms, 0) + " ms").c_str(),
                region ? (format_double(region->cubic_low(), 0) + " - " +
                          format_double(region->cubic_high(), 0))
                             .c_str()
                       : "n/a");
  }

  std::printf(
      "\n* 1 CUBIC vs 1 BBR mix. Takeaways (matching the paper): deeper\n"
      "  buffers push the equilibrium toward CUBIC but cost queueing delay;\n"
      "  shallow buffers hand BBR most of the link. Neither the old\n"
      "  'loss-based only' sizing rules nor a BBR-only analysis describes\n"
      "  the mixed equilibrium the Internet is heading to.\n");
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "buffer_sizing_study: invalid configuration: %s\n", e.what());
  return 2;
}
