// flow_timeline: watch a CUBIC/BBR contest unfold second by second.
//
// Uses the telemetry API to sample every flow's congestion state and the
// bottleneck queue, then prints a human-readable timeline (or full CSV
// with --csv) — the view behind the paper's narrative: CUBIC's sawtooth,
// BBR's ProbeRTT dips every ~10 s, and the queue they share.
//
//   usage: flow_timeline [capacity_mbps] [rtt_ms] [buffer_bdp] [secs] [--csv]
#include <cstdio>
#include <stdexcept>
#include <cstring>
#include <iostream>

#include "exp/cli_flags.hpp"
#include "exp/scenario_runner.hpp"

using namespace bbrnash;

int main(int argc, char** argv) try {
  double cap_mbps = 50.0;
  double rtt_ms = 40.0;
  double buffer_bdp = 4.0;
  double secs = 40.0;
  bool csv = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
      continue;
    }
    const double v = parse_double_strict("positional arg", argv[i]);
    switch (positional++) {
      case 0: cap_mbps = v; break;
      case 1: rtt_ms = v; break;
      case 2: buffer_bdp = v; break;
      case 3: secs = v; break;
      default: break;
    }
  }

  const NetworkParams net = make_params(cap_mbps, rtt_ms, buffer_bdp);
  Scenario s = make_mix_scenario(net, 1, 1);
  s.duration = from_sec(secs);
  s.warmup = from_sec(secs / 5);
  s.sample_period = from_sec(1);

  SnapshotLog log;
  s.on_sample = log.sink();
  (void)run_scenario(s);

  if (csv) {
    log.write_csv(std::cout);
    return 0;
  }

  std::printf("CUBIC vs BBR on %.0f Mbps / %.0f ms / %.0f BDP\n\n", cap_mbps,
              rtt_ms, buffer_bdp);
  std::printf("%5s  %21s  %21s  %8s\n", "", "CUBIC", "BBR", "queue");
  std::printf("%5s  %10s %10s  %10s %10s  %8s\n", "t(s)", "Mbps", "cwnd_pk",
              "Mbps", "cwnd_pk", "%full");
  const auto& snaps = log.snapshots();
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    const Snapshot& s2 = snaps[i];
    std::printf("%5.0f  %10.2f %10lld  %10.2f %10lld  %7.0f%%\n",
                to_sec(s2.t), to_mbps(log.goodput_between(i, 0)),
                static_cast<long long>(s2.flows[0].cwnd / kDefaultMss),
                to_mbps(log.goodput_between(i, 1)),
                static_cast<long long>(s2.flows[1].cwnd / kDefaultMss),
                100.0 * static_cast<double>(s2.queue_bytes) /
                    static_cast<double>(net.buffer_bytes));
  }
  std::printf(
      "\nLook for: CUBIC's sawtooth (cwnd climbs, collapses ~0.7x on loss),\n"
      "BBR's ProbeRTT dips (cwnd -> 4 packets roughly every 10 s), and the\n"
      "queue hovering near full whenever CUBIC holds a large share.\n");
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "flow_timeline: invalid configuration: %s\n", e.what());
  return 2;
}
