// Quickstart: predict and simulate one CUBIC flow competing with one BBR
// flow, then locate the Nash Equilibrium mix for a 10-flow population.
//
//   $ ./quickstart
//
// This walks the three layers of the library:
//   1. the analytical model (src/model) — instant predictions,
//   2. the packet-level simulator (src/exp + src/sim/net/cc/flow),
//   3. the game-theoretic layer — where does the CUBIC/BBR mix stabilize?
#include <cstdio>

#include "exp/scenario_runner.hpp"
#include "model/mishra_model.hpp"
#include "model/nash.hpp"
#include "model/ware_model.hpp"

using namespace bbrnash;

int main() {
  // A 50 Mbps bottleneck, 40 ms base RTT, 5-BDP drop-tail buffer.
  const NetworkParams net = make_params(/*capacity_mbps=*/50.0,
                                        /*rtt_ms=*/40.0,
                                        /*buffer_bdp=*/5.0);

  std::printf("== 1. Analytical prediction (Mishra et al., IMC'22) ==\n");
  const auto pred = two_flow_prediction(net);
  if (!pred) {
    std::fprintf(stderr, "network outside the model's validity domain\n");
    return 1;
  }
  std::printf("BBR   predicted: %6.2f Mbps\n", to_mbps(pred->lambda_bbr));
  std::printf("CUBIC predicted: %6.2f Mbps\n", to_mbps(pred->lambda_cubic));

  const WarePrediction ware = ware_prediction(net);
  std::printf("(Ware et al.'19 baseline predicts BBR at %.2f Mbps)\n\n",
              to_mbps(ware.lambda_bbr));

  std::printf("== 2. Packet-level simulation ==\n");
  Scenario s = make_mix_scenario(net, /*num_cubic=*/1, /*num_other=*/1);
  s.duration = from_sec(40);
  s.warmup = from_sec(8);
  const RunResult r = run_scenario(s);
  std::printf("BBR   measured:  %6.2f Mbps\n",
              r.avg_goodput_mbps(CcKind::kBbr));
  std::printf("CUBIC measured:  %6.2f Mbps\n",
              r.avg_goodput_mbps(CcKind::kCubic));
  std::printf("avg queuing delay: %.1f ms, link utilization: %.1f%%\n\n",
              r.avg_queue_delay_ms, 100.0 * r.link_utilization);

  std::printf("== 3. Where does a 10-flow population stabilize? ==\n");
  const auto region = predict_nash_region(net, /*total_flows=*/10);
  if (region) {
    std::printf(
        "Nash region: between %.1f and %.1f CUBIC flows out of 10\n"
        "(CUBIC-synchronized vs de-synchronized bounds)\n",
        region->cubic_low(), region->cubic_high());
    std::printf(
        "=> a mixed CUBIC/BBR population is the equilibrium: BBR is not\n"
        "   expected to take over this bottleneck.\n");
  }
  return 0;
}
