// Developer tool: one-shot mix measurement vs model bounds.
// Usage: debug_mix <cap_mbps> <rtt_ms> <buf_bdp> <n_cubic> <n_other> [cc] [dur_s] [trials]
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "exp/cli_flags.hpp"
#include "exp/sweeps.hpp"
#include "model/mishra_model.hpp"

using namespace bbrnash;

int main(int argc, char** argv) try {
  const double cap = argc > 1 ? parse_double_strict("cap_mbps", argv[1]) : 100.0;
  const double rtt = argc > 2 ? parse_double_strict("rtt_ms", argv[2]) : 40.0;
  const double bdp = argc > 3 ? parse_double_strict("buf_bdp", argv[3]) : 3.0;
  const int nc = argc > 4 ? parse_int_strict("n_cubic", argv[4]) : 5;
  const int nb = argc > 5 ? parse_int_strict("n_other", argv[5]) : 5;
  CcKind kind = CcKind::kBbr;
  if (argc > 6) {
    if (!std::strcmp(argv[6], "bbrv2")) kind = CcKind::kBbrV2;
    if (!std::strcmp(argv[6], "copa")) kind = CcKind::kCopa;
    if (!std::strcmp(argv[6], "vivace")) kind = CcKind::kVivace;
    if (!std::strcmp(argv[6], "reno")) kind = CcKind::kReno;
    if (!std::strcmp(argv[6], "cubic")) kind = CcKind::kCubic;
  }
  const double dur = argc > 7 ? parse_double_strict("dur_s", argv[7]) : 60.0;
  const int trials = argc > 8 ? parse_int_strict("trials", argv[8]) : 1;

  const NetworkParams net = make_params(cap, rtt, bdp);
  TrialConfig cfg;
  cfg.duration = from_sec(dur);
  cfg.warmup = from_sec(dur / 5);
  cfg.trials = trials;
  const MixOutcome m = run_mix_trials(net, nc, nb, kind, cfg);

  std::printf("sim: per-flow cubic %.2f Mbps, other %.2f Mbps | util %.3f "
              "qdelay %.1f ms | b_c avg %.0f kB min %.0f kB, b_other %.0f kB\n",
              m.per_flow_cubic_mbps, m.per_flow_other_mbps,
              m.link_utilization, m.avg_queue_delay_ms,
              m.cubic_buffer_avg / 1e3, m.cubic_buffer_min / 1e3,
              m.noncubic_buffer_avg / 1e3);

  if (nc >= 1 && nb >= 1) {
    const auto iv = prediction_interval(net, nc, nb);
    if (iv) {
      std::printf("model: per-flow other sync %.2f / desync %.2f Mbps, "
                  "cubic sync %.2f / desync %.2f Mbps, b_b sync %.0f kB\n",
                  to_mbps(iv->sync.per_flow_bbr),
                  to_mbps(iv->desync.per_flow_bbr),
                  to_mbps(iv->sync.per_flow_cubic),
                  to_mbps(iv->desync.per_flow_cubic),
                  iv->sync.aggregate.bbr_buffer_bytes / 1e3);
    }
  }
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "debug_mix: invalid configuration: %s\n", e.what());
  return 2;
}
