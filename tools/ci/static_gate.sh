#!/bin/sh
# static_gate.sh — the whole static-analysis gate in one command:
#
#   1. bbrnash-lint over the real tree (per-file rules + the semantic
#      passes: include-graph layering, signal-safety, schema-registry),
#   2. the clang-tidy baseline gate (skips cleanly when clang-tidy is not
#      installed),
#   3. a warning-hardened build (-Wall -Wextra -Wpedantic -Wconversion …
#      promoted to errors via BBRNASH_WERROR=ON).
#
# Usage:
#   tools/ci/static_gate.sh [<source-root>]                 # CI mode
#   tools/ci/static_gate.sh <source-root> --reuse-build DIR # ctest mode
#
# CI mode configures a fresh Debug+Werror build in
# <source-root>/build-static-gate (so a stale cache can't hide a
# warning) and builds everything. ctest mode — how the `static_gate`
# test runs it — reuses an existing build tree: it builds the lint
# binary there, runs the lint and the clang-tidy gate against it, and
# re-drives the build with the tree's existing settings, failing on any
# compiler warning in the output. That keeps the inner-loop test cheap
# while CI keeps the fresh hardened build.
#
# Exit codes: 0 gate passed, 1 violations/warnings, 2 usage or build
# failure.
set -u

SRC_ROOT=${1:-.}
SRC_ROOT=$(cd "$SRC_ROOT" && pwd) || exit 2
shift $(( $# > 0 ? 1 : 0 ))

REUSE_DIR=""
if [ "$#" -eq 2 ] && [ "$1" = "--reuse-build" ]; then
  REUSE_DIR=$(cd "$2" && pwd) || exit 2
elif [ "$#" -ne 0 ]; then
  echo "usage: $0 [<source-root>] [--reuse-build <build-dir>]" >&2
  exit 2
fi

fail=0

if [ -n "$REUSE_DIR" ]; then
  BUILD_DIR=$REUSE_DIR
  echo "== static_gate: reusing build tree $BUILD_DIR =="
  cmake --build "$BUILD_DIR" --target bbrnash_lint -j >/dev/null || exit 2
else
  BUILD_DIR="$SRC_ROOT/build-static-gate"
  echo "== static_gate: fresh warning-hardened build in $BUILD_DIR =="
  cmake -S "$SRC_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Debug \
        -DBBRNASH_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null || exit 2
  cmake --build "$BUILD_DIR" --target bbrnash_lint -j >/dev/null || exit 2
fi

echo "== static_gate: bbrnash-lint (per-file rules + semantic passes) =="
LINT_BIN=$(find "$BUILD_DIR" -name bbrnash-lint -type f | head -n 1)
if [ -z "$LINT_BIN" ]; then
  echo "static_gate: bbrnash-lint binary not found under $BUILD_DIR" >&2
  exit 2
fi
if ! "$LINT_BIN" --root "$SRC_ROOT" --no-suppressions; then
  fail=1
fi

echo "== static_gate: clang-tidy baseline gate =="
"$SRC_ROOT/tools/lint/clang_tidy_gate.sh" "$SRC_ROOT" "$BUILD_DIR"
tidy_rc=$?
if [ "$tidy_rc" -eq 77 ]; then
  echo "static_gate: clang-tidy unavailable; gate step skipped"
elif [ "$tidy_rc" -ne 0 ]; then
  fail=1
fi

echo "== static_gate: warning-clean build =="
BUILD_LOG=$(mktemp) || exit 2
trap 'rm -f "$BUILD_LOG"' EXIT
if ! cmake --build "$BUILD_DIR" -j > "$BUILD_LOG" 2>&1; then
  cat "$BUILD_LOG"
  echo "static_gate: build failed" >&2
  exit 2
fi
if grep -E 'warning:|error:' "$BUILD_LOG" > /dev/null; then
  grep -E 'warning:|error:' "$BUILD_LOG"
  echo "static_gate: compiler diagnostics in the build output" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "static_gate: PASS"
else
  echo "static_gate: FAIL" >&2
fi
exit "$fail"
