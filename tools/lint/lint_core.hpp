// bbrnash-lint: project-specific determinism & safety lint.
//
// The dynamic suites (jobs=1-vs-8 equivalence, chaos redo assertions,
// conservation audits) enforce bit-identical reproducibility at run time,
// but only probabilistically: a refactor that sneaks in a wall-clock read
// or an unordered-iteration order dependence passes until a run happens to
// exercise it. This tool makes the repo invariants a *lint-time* property.
//
// Since the cross-file semantic gate landed, the tool is a TWO-PHASE
// analyzer:
//
//   phase 1 (per-file scan)   — each *.cpp/*.hpp under the scanned dirs is
//       stripped of comments and string/char literals, the line-local
//       rules run on the stripped view, and a `FileFacts` record is
//       collected: `#include "..."` edges, function definitions with the
//       calls inside them, signal-handler registrations, and the contents
//       of every string literal.
//   phase 2 (semantic passes) — whole-tree passes over the collected
//       facts (tools/lint/lint_passes.cpp): include-graph layering and
//       cycle detection, async-signal-safety of registered handlers, and
//       the `bbrnash-*-vN` schema registry checks.
//
// Suppression syntax (a line comment; covers its own line through the
// next line carrying code, so it can sit on the offending line or in a
// possibly multi-line comment immediately above it — continuation comment
// lines are folded into the justification):
//
//     allow(<rule>) -- <one-line justification>
//
// prefixed by the tool name and a colon (spelled out in DESIGN.md; not
// written literally here so this header stays clean under self-scan).
// Every suppression is parsed, counted, and listed in the report; a
// suppression that masks nothing is itself a violation
// (`unused-suppression`), so stale allows can't accumulate. Semantic-pass
// findings ride the same syntax: the annotation lives in the file the
// finding is attributed to (the includer, the unsafe call site, the
// registry entry).
//
// Matching runs on a comment- and string-literal-stripped view of each
// file, so prose and log messages can name banned identifiers freely —
// which is also what keeps this tool's own sources (full of rule patterns
// in string literals) clean under the tree scan.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace bbrnash::lint {

/// One rule violation. `rule` is the stable kebab-case rule name that the
/// suppression syntax and the fixture tests key on. `pass_name` is empty
/// for the per-file scan rules and names the semantic pass family
/// otherwise ("include-graph", "signal-safety", "schema-registry").
struct Finding {
  std::string rule;
  std::string file;  ///< path relative to the scan root
  int line = 0;      ///< 1-based
  std::string detail;
  std::string pass_name;
};

/// One parsed allow-annotation.
struct Suppression {
  std::string rule;
  std::string file;
  int line = 0;
  std::string reason;
  bool used = false;  ///< did it mask at least one finding?
};

// --- Phase-1 facts for the semantic passes ---------------------------------

/// One `#include "target"` directive (quoted form only; angle includes are
/// system headers and carry no layering information).
struct IncludeFact {
  std::string target;  ///< verbatim include target, e.g. "util/units.hpp"
  int line = 0;
};

/// One call site inside a function body: `callee(...)` as a free or
/// namespace-qualified call (member calls through `.`/`->` are excluded —
/// the signal-safety pass reasons about free functions).
struct CallFact {
  std::string callee;
  int line = 0;
};

/// One function definition found by the heuristic single-TU parser, with
/// the calls made anywhere in its body (including inside nested blocks
/// and lambdas, which is deliberately conservative for signal safety).
struct FunctionFact {
  std::string name;  ///< unqualified name (last `::` component)
  int line = 0;      ///< line of the opening brace
  std::vector<CallFact> calls;
};

/// One signal-handler registration: `signal(SIG..., fn)` /
/// `sa.sa_handler = fn` / `sa.sa_sigaction = fn` with a named function
/// (SIG_IGN / SIG_DFL / SIG_ERR / nullptr are ignored).
struct HandlerFact {
  std::string handler;
  int line = 0;
};

/// One string literal's raw contents (escape sequences unexpanded). Raw
/// strings record their opening line.
struct StringFact {
  std::string value;
  int line = 0;
};

struct FileFacts {
  std::vector<IncludeFact> includes;
  std::vector<FunctionFact> functions;
  std::vector<HandlerFact> handlers;
  std::vector<StringFact> strings;
};

/// Everything phase 1 learns about one file: the raw and stripped line
/// views (the suppression-cover logic and the schema-registry usage scan
/// both need them), the parsed suppressions (reasons folded, file field
/// set), the collected facts, and the per-file rule findings — candidates
/// until `finalize_report` applies the suppressions.
struct ScanUnit {
  std::string relpath;
  std::vector<std::string> raw;
  std::vector<std::string> code;  ///< literals/comments blanked to spaces
  FileFacts facts;
  std::vector<Suppression> suppressions;
  std::vector<Finding> candidates;
};

struct TreeReport {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
  int files_scanned = 0;
};

/// Names of every rule, for help text and fixture tests.
[[nodiscard]] std::vector<std::string> rule_names();

/// Phase 1 for a single file: strip, collect facts, run the per-file
/// rules. Findings land in `candidates` (suppressions NOT yet applied).
[[nodiscard]] ScanUnit scan_unit(const std::filesystem::path& path,
                                 std::string_view relpath);

/// Applies suppressions to every unit's candidates (per-file and semantic
/// alike), emits `unused-suppression` findings, and renders the final
/// deterministically ordered report: findings sorted by (file, line,
/// rule, detail), suppressions by (file, line, rule) — independent of
/// directory traversal order and of the order passes appended candidates.
[[nodiscard]] TreeReport finalize_report(std::vector<ScanUnit> units);

/// Scans `dirs` (relative to `root`) recursively for *.cpp / *.hpp files:
/// phase 1 on every file (deduplicated, sorted), then the semantic passes
/// (lint_passes.hpp) over the collected facts, then finalize. Paths
/// containing the fixture corpus (`tests/lint/fixtures`) are skipped:
/// fixtures hold deliberate violations.
[[nodiscard]] TreeReport scan_tree(const std::filesystem::path& root,
                                   const std::vector<std::string>& dirs);

/// Scans a single file as `relpath` (the path rules key on) and applies
/// its suppressions. Per-file rules only — semantic passes need the whole
/// tree. Exposed for the fixture tests.
void scan_file(const std::filesystem::path& path, std::string_view relpath,
               TreeReport& out);

/// Renders the human-readable report (suppressions first, then findings,
/// then a one-line summary). Returns the process exit code: 0 clean,
/// 1 violations found.
[[nodiscard]] int render_report(const TreeReport& report, std::string& out,
                                bool list_suppressions);

/// Renders the machine-readable JSON report (schema
/// `bbrnash-lint-report-v1`: rule, file, line, pass, detail for every
/// violation plus the full suppression inventory). Same exit-code
/// contract as render_report.
[[nodiscard]] int render_json(const TreeReport& report, std::string& out);

}  // namespace bbrnash::lint
