// bbrnash-lint: project-specific determinism & safety lint.
//
// The dynamic suites (jobs=1-vs-8 equivalence, chaos redo assertions,
// conservation audits) enforce bit-identical reproducibility at run time,
// but only probabilistically: a refactor that sneaks in a wall-clock read
// or an unordered-iteration order dependence passes until a run happens to
// exercise it. This tool makes the repo invariants a *lint-time* property:
// it scans src/, bench/, tools/, and tests/ for constructs that are banned
// by contract, with a scoped suppression syntax for the handful of
// legitimate sites.
//
// Suppression syntax (a line comment; covers its own line through the
// next line carrying code, so it can sit on the offending line or in a
// possibly multi-line comment immediately above it — continuation comment
// lines are folded into the justification):
//
//     allow(<rule>) -- <one-line justification>
//
// prefixed by the tool name and a colon (spelled out in DESIGN.md; not
// written literally here so this header stays clean under self-scan).
// Every suppression is parsed, counted, and listed in the report; a
// suppression that masks nothing is itself a violation
// (`unused-suppression`), so stale allows can't accumulate.
//
// Matching runs on a comment- and string-literal-stripped view of each
// file, so prose and log messages can mention banned identifiers freely —
// which is also what keeps this tool's own sources (full of rule patterns
// in string literals) clean under the tree scan.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace bbrnash::lint {

/// One rule violation. `rule` is the stable kebab-case rule name that the
/// suppression syntax and the fixture tests key on.
struct Finding {
  std::string rule;
  std::string file;  ///< path relative to the scan root
  int line = 0;      ///< 1-based
  std::string detail;
};

/// One parsed allow-annotation.
struct Suppression {
  std::string rule;
  std::string file;
  int line = 0;
  std::string reason;
  bool used = false;  ///< did it mask at least one finding?
};

struct TreeReport {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
  int files_scanned = 0;
};

/// Names of every rule, for help text and fixture tests.
[[nodiscard]] std::vector<std::string> rule_names();

/// Scans `dirs` (relative to `root`) recursively for *.cpp / *.hpp files
/// and appends findings + suppressions. Paths containing the fixture
/// corpus (`tests/lint/fixtures`) are skipped: fixtures hold deliberate
/// violations. Findings are reported in deterministic (path, line) order.
[[nodiscard]] TreeReport scan_tree(const std::filesystem::path& root,
                                   const std::vector<std::string>& dirs);

/// Scans a single file as `relpath` (the path rules key on). Exposed for
/// the fixture tests.
void scan_file(const std::filesystem::path& path, std::string_view relpath,
               TreeReport& out);

/// Renders the human-readable report (suppressions first, then findings,
/// then a one-line summary). Returns the process exit code: 0 clean,
/// 1 violations found.
[[nodiscard]] int render_report(const TreeReport& report, std::string& out,
                                bool list_suppressions);

}  // namespace bbrnash::lint
