#!/bin/sh
# clang-tidy gate with a checked-in baseline.
#
# Usage: clang_tidy_gate.sh <source-root> <build-dir> [--write-baseline]
#
# Runs clang-tidy (config: <source-root>/.clang-tidy) over every
# translation unit under src/ using the build tree's
# compile_commands.json, normalizes the findings to stable
# `relative/path.cpp:line: warning-name` triples, and diffs them against
# tools/lint/clang_tidy_baseline.txt. Only NEW findings fail the gate, so
# the bar can be adopted incrementally: fixing an old finding just means
# deleting its baseline line.
#
# --write-baseline regenerates tools/lint/clang_tidy_baseline.txt from
# the current findings (preserving its comment header) instead of
# diffing. Use it after a deliberate clang-tidy or toolchain bump, then
# review the baseline diff like any other code change.
#
# Exit codes: 0 clean (no new findings), 1 new findings, 77 skipped
# (clang-tidy or compile_commands.json unavailable — ctest maps 77 to
# SKIP via SKIP_RETURN_CODE), 2 usage error.
set -u

WRITE_BASELINE=0
if [ "$#" -eq 3 ] && [ "$3" = "--write-baseline" ]; then
  WRITE_BASELINE=1
elif [ "$#" -ne 2 ]; then
  echo "usage: $0 <source-root> <build-dir> [--write-baseline]" >&2
  exit 2
fi
# Canonicalize: clang-tidy prints absolute paths, and the normalization
# below strips the "$SRC_ROOT/" prefix, so a relative argument would
# silently match nothing.
SRC_ROOT=$(cd "$1" && pwd) || exit 2
BUILD_DIR=$(cd "$2" && pwd) || exit 2
BASELINE="$SRC_ROOT/tools/lint/clang_tidy_baseline.txt"

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "clang_tidy_gate: '$TIDY' not found; skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 77
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "clang_tidy_gate: $BUILD_DIR/compile_commands.json missing; skipping (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 77
fi

TMP_DIR=$(mktemp -d) || exit 2
trap 'rm -rf "$TMP_DIR"' EXIT

# Scope: the library sources. Tests/bench/tools are covered by
# bbrnash-lint; clang-tidy on gtest TUs is slow and noisy.
find "$SRC_ROOT/src" -name '*.cpp' | LC_ALL=C sort > "$TMP_DIR/files" || exit 2
if [ ! -s "$TMP_DIR/files" ]; then
  echo "clang_tidy_gate: no sources found under $SRC_ROOT/src" >&2
  exit 2
fi

# clang-tidy exits non-zero when it emits warnings; the gate's verdict is
# the baseline diff, so ignore its exit status and parse the output.
xargs "$TIDY" -p "$BUILD_DIR" --quiet < "$TMP_DIR/files" \
  > "$TMP_DIR/raw" 2> "$TMP_DIR/err" || true

# Normalize to `relative/path:line: [check-name]`. Column numbers are
# dropped so unrelated edits on the same line don't churn the baseline.
sed -n 's|^'"$SRC_ROOT"'/\(.*\):\([0-9]*\):[0-9]*: warning: .*\[\(.*\)\]$|\1:\2: [\3]|p' \
  "$TMP_DIR/raw" | LC_ALL=C sort -u > "$TMP_DIR/current"

if [ "$WRITE_BASELINE" -eq 1 ]; then
  if [ -f "$BASELINE" ]; then
    grep '^[[:space:]]*#' "$BASELINE" > "$TMP_DIR/header" || true
  else
    : > "$TMP_DIR/header"
  fi
  cat "$TMP_DIR/header" "$TMP_DIR/current" > "$BASELINE"
  echo "clang_tidy_gate: wrote $(wc -l < "$TMP_DIR/current") finding(s) to $BASELINE"
  exit 0
fi

# Baseline lines, comments and blanks stripped.
if [ -f "$BASELINE" ]; then
  grep -v '^[[:space:]]*#' "$BASELINE" | grep -v '^[[:space:]]*$' \
    | LC_ALL=C sort -u > "$TMP_DIR/baseline"
else
  : > "$TMP_DIR/baseline"
fi

# New findings = current minus baseline.
comm -23 "$TMP_DIR/current" "$TMP_DIR/baseline" > "$TMP_DIR/new"

N_CURRENT=$(wc -l < "$TMP_DIR/current")
N_NEW=$(wc -l < "$TMP_DIR/new")
if [ "$N_NEW" -gt 0 ]; then
  echo "clang_tidy_gate: $N_NEW NEW finding(s) not in $BASELINE:"
  cat "$TMP_DIR/new"
  echo "clang_tidy_gate: fix them, or (with justification) append the lines above to the baseline."
  exit 1
fi
echo "clang_tidy_gate: clean ($N_CURRENT finding(s), all baselined)"
exit 0
