// Phase-2 semantic passes for bbrnash-lint (see lint_core.hpp for the
// two-phase architecture). Each pass walks the whole-tree `ScanUnit`
// facts and appends candidate findings to the unit the finding is
// attributed to, so the ordinary suppression machinery applies:
//
//   include-graph   — layering (declared order util → {model, sim} → net
//                     → cc → flow → exp, everything outside src/ on top)
//                     and include-cycle detection over the resolved
//                     `#include "..."` graph. Rules: `include-layering`,
//                     `include-cycle`.
//   signal-safety   — functions registered as signal handlers
//                     (signal() / sa_handler / sa_sigaction) are walked
//                     to a single-TU call-graph fixpoint; any reachable
//                     call outside the async-signal-safe allowlist
//                     (tools/lint/signal_safe_allowlist.txt, built-in
//                     defaults when the file is absent) is flagged with
//                     the full call chain. Rule: `signal-unsafe-call`.
//   schema-registry — `src/util/schemas.hpp` is the single registry of
//                     `bbrnash-*-vN` wire/persistence schema strings.
//                     A raw schema literal in any other file under src/
//                     or bench/ (`schema-literal`), and a duplicate or
//                     registered-but-unused registry entry
//                     (`schema-registry`), are violations. Tests are
//                     exempt from `schema-literal`: they deliberately pin
//                     wire bytes.
#pragma once

#include <filesystem>
#include <string_view>
#include <vector>

#include "lint_core.hpp"

namespace bbrnash::lint {

/// Runs every semantic pass over the phase-1 units of one tree scan.
/// `root` is the scan root (used to load the signal-safe allowlist).
/// Findings are appended to the attributed unit's `candidates`.
void run_semantic_passes(const std::filesystem::path& root,
                         std::vector<ScanUnit>& units);

/// The machine-readable report's own schema tag (kSchemaLintReport from
/// util/schemas.hpp — re-exported here so lint_core.cpp does not need the
/// src/ include path at every call site).
[[nodiscard]] std::string_view lint_report_schema();

/// The built-in async-signal-safe allowlist used when
/// `tools/lint/signal_safe_allowlist.txt` is absent under the scan root
/// (fixture mini-trees). Exposed for tests.
[[nodiscard]] std::vector<std::string_view> default_signal_safe_allowlist();

}  // namespace bbrnash::lint
