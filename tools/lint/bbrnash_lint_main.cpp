// bbrnash-lint driver. Usage:
//
//   bbrnash-lint [--root DIR] [--dirs a,b,c] [--no-suppressions] [--json]
//
// Scans DIR (default: current directory) under the given subdirectories
// (default: src,bench,tools,tests) — the per-file rules plus the
// whole-tree semantic passes (include-graph layering, signal-safety,
// schema-registry) — and prints every rule violation as
// `file:line: [rule] detail` plus the list of active suppressions.
// `--json` emits the machine-readable report (schema
// bbrnash-lint-report-v1) instead. Exit codes: 0 clean, 1 violations
// found, 2 bad invocation.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> dirs = {"src", "bench", "tools", "tests"};
  bool list_suppressions = true;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--dirs" && i + 1 < argc) {
      dirs = split_csv(argv[++i]);
    } else if (arg == "--no-suppressions") {
      list_suppressions = false;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bbrnash-lint [--root DIR] [--dirs a,b,c] "
          "[--no-suppressions] [--json]\nrules:");
      for (const std::string& r : bbrnash::lint::rule_names()) {
        std::printf(" %s", r.c_str());
      }
      std::printf("\n");
      return 0;
    } else {
      std::fprintf(stderr, "bbrnash-lint: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  try {
    const bbrnash::lint::TreeReport report =
        bbrnash::lint::scan_tree(root, dirs);
    std::string text;
    const int rc =
        json ? bbrnash::lint::render_json(report, text)
             : bbrnash::lint::render_report(report, text, list_suppressions);
    std::fputs(text.c_str(), stdout);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bbrnash-lint: %s\n", e.what());
    return 2;
  }
}
