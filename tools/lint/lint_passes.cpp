#include "lint_passes.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "util/schemas.hpp"

namespace bbrnash::lint {

namespace {

constexpr std::string_view kRegistryPath = "src/util/schemas.hpp";
constexpr std::string_view kAllowlistPath =
    "tools/lint/signal_safe_allowlist.txt";

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// True when `line` contains `tok` with identifier boundaries.
bool contains_token(const std::string& line, std::string_view tok) {
  std::size_t at = line.find(tok);
  while (at != std::string::npos) {
    const bool left_ok = at == 0 || !is_ident_char(line[at - 1]);
    const std::size_t after = at + tok.size();
    const bool right_ok = after >= line.size() || !is_ident_char(line[after]);
    if (left_ok && right_ok) return true;
    at = line.find(tok, at + 1);
  }
  return false;
}

void add_finding(ScanUnit& unit, std::string rule, int line,
                 std::string detail, std::string pass) {
  unit.candidates.push_back(Finding{std::move(rule), unit.relpath, line,
                                    std::move(detail), std::move(pass)});
}

// ---------------------------------------------------------------------------
// Pass: include-graph layering + cycle detection.
// ---------------------------------------------------------------------------

/// Declared layer order (DESIGN.md §8). Higher rank may include lower or
/// same-layer; an include whose target ranks higher — or ranks equal in a
/// *different* layer (the model/sim siblings) — is a back-edge.
int layer_rank(std::string_view layer) {
  if (layer == "util") return 0;
  if (layer == "model" || layer == "sim") return 1;
  if (layer == "net") return 2;
  if (layer == "cc") return 3;
  if (layer == "flow") return 4;
  if (layer == "exp") return 5;
  return 6;  // "top": tools, tests, bench, examples
}

constexpr std::string_view kDeclaredOrder =
    "util -> {model, sim} -> net -> cc -> flow -> exp -> "
    "top(tools/tests/bench)";

/// Layer of a scanned file. Everything outside src/ is "top"; a src/
/// subdirectory outside the declared order has no layer (empty) and is
/// reported once per file.
std::string layer_of(std::string_view relpath) {
  if (!starts_with(relpath, "src/")) return "top";
  const std::string_view rest = relpath.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return std::string{};
  const std::string dir{rest.substr(0, slash)};
  if (dir == "util" || dir == "model" || dir == "sim" || dir == "net" ||
      dir == "cc" || dir == "flow" || dir == "exp") {
    return dir;
  }
  return std::string{};
}

/// Resolves a quoted include target to the relpath of a scanned unit, or
/// "" when it names nothing in the scan set (system-style quoted include,
/// generated file, prose in a comment fixture).
std::string resolve_include(const std::set<std::string>& known,
                            std::string_view includer,
                            const std::string& target) {
  std::vector<std::string> candidates;
  const std::size_t slash = includer.rfind('/');
  if (slash != std::string_view::npos) {
    candidates.push_back(std::string{includer.substr(0, slash + 1)} + target);
  }
  for (const std::string_view prefix :
       {"src/", "tests/", "bench/", "tools/", "tools/lint/", "examples/",
        ""}) {
    candidates.push_back(std::string{prefix} + target);
  }
  for (const std::string& c : candidates) {
    const std::string norm =
        std::filesystem::path{c}.lexically_normal().generic_string();
    if (known.count(norm) != 0) return norm;
  }
  return std::string{};
}

void pass_include_graph(std::vector<ScanUnit>& units) {
  std::set<std::string> known;
  std::map<std::string, ScanUnit*> by_path;
  for (ScanUnit& u : units) {
    known.insert(u.relpath);
    by_path[u.relpath] = &u;
  }

  // Resolved edge list: includer relpath -> (resolved target, line).
  std::map<std::string, std::vector<std::pair<std::string, int>>> graph;
  for (ScanUnit& u : units) {
    const std::string from_layer = layer_of(u.relpath);
    if (from_layer.empty()) {
      add_finding(u, "include-layering", 1,
                  "src/ subdirectory is not in the declared layer order (" +
                      std::string{kDeclaredOrder} +
                      "); add the new layer to DESIGN.md SS8 and "
                      "tools/lint/lint_passes.cpp first",
                  "include-graph");
      continue;
    }
    for (const IncludeFact& inc : u.facts.includes) {
      const std::string target = resolve_include(known, u.relpath, inc.target);
      if (target.empty()) continue;
      graph[u.relpath].emplace_back(target, inc.line);
      const std::string to_layer = layer_of(target);
      if (to_layer.empty()) continue;  // reported on the target itself
      const int from_rank = layer_rank(from_layer);
      const int to_rank = layer_rank(to_layer);
      const bool back_edge =
          to_rank > from_rank || (to_rank == from_rank && to_layer != from_layer);
      if (back_edge) {
        add_finding(u, "include-layering", inc.line,
                    "back-edge " + u.relpath + " (layer " + from_layer +
                        ") -> " + target + " (layer " + to_layer +
                        ") violates the declared order " +
                        std::string{kDeclaredOrder},
                    "include-graph");
      }
    }
  }

  // Cycle detection: iterative colored DFS over the resolved graph, in
  // sorted node order so reports are deterministic. Each cycle is
  // reported once, keyed by its canonical rotation, and attributed to the
  // include directive that closes it.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::set<std::vector<std::string>> reported;
  std::vector<std::string> stack;

  struct Frame {
    std::string node;
    std::size_t next_edge = 0;
  };

  auto report_cycle = [&](const std::vector<std::string>& chain,
                          const std::string& closer, int line) {
    // chain = path from the gray node back to `closer` (inclusive);
    // canonicalize by rotating the smallest element to the front.
    std::vector<std::string> key = chain;
    std::rotate(key.begin(), std::min_element(key.begin(), key.end()),
                key.end());
    if (!reported.insert(key).second) return;
    std::string rendered;
    for (const std::string& n : chain) rendered += n + " -> ";
    rendered += chain.front();
    ScanUnit* owner = by_path[closer];
    add_finding(*owner, "include-cycle", line,
                "include cycle: " + rendered, "include-graph");
  };

  for (const auto& [start, edges] : graph) {
    (void)edges;
    if (color[start] != 0) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{start});
    color[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto it = graph.find(f.node);
      if (it == graph.end() || f.next_edge >= it->second.size()) {
        color[f.node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const auto& [target, line] = it->second[f.next_edge];
      ++f.next_edge;
      if (color[target] == 1) {
        // Back edge to a gray node: the cycle is the stack suffix from
        // `target` through f.node.
        const auto at = std::find(stack.begin(), stack.end(), target);
        report_cycle(std::vector<std::string>{at, stack.end()}, f.node, line);
      } else if (color[target] == 0) {
        color[target] = 1;
        stack.push_back(target);
        frames.push_back(Frame{target});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: async-signal-safety.
// ---------------------------------------------------------------------------

std::set<std::string> load_allowlist(const std::filesystem::path& root) {
  std::set<std::string> allow;
  std::ifstream in{root / kAllowlistPath};
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::string tok;
      for (const char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
          if (!tok.empty()) allow.insert(tok);
          tok.clear();
        } else {
          tok.push_back(c);
        }
      }
      if (!tok.empty()) allow.insert(tok);
    }
  } else {
    for (const std::string_view fn : default_signal_safe_allowlist()) {
      allow.insert(std::string{fn});
    }
  }
  return allow;
}

void pass_signal_safety(const std::filesystem::path& root,
                        std::vector<ScanUnit>& units) {
  const std::set<std::string> allow = load_allowlist(root);
  for (ScanUnit& u : units) {
    if (u.facts.handlers.empty()) continue;
    // Single-TU function index: name -> every definition in this unit.
    std::map<std::string, std::vector<const FunctionFact*>> defs;
    for (const FunctionFact& fn : u.facts.functions) {
      defs[fn.name].push_back(&fn);
    }
    std::set<std::string> handler_names;
    for (const HandlerFact& h : u.facts.handlers) {
      handler_names.insert(h.handler);
    }
    for (const std::string& handler : handler_names) {
      if (defs.count(handler) == 0) continue;  // defined in another TU
      // Fixpoint walk: visit every function reachable from the handler,
      // carrying the call chain for the report.
      std::set<std::string> visited;
      std::vector<std::pair<std::string, std::string>> todo;  // (fn, chain)
      todo.emplace_back(handler, handler);
      visited.insert(handler);
      while (!todo.empty()) {
        const auto [name, chain] = todo.back();
        todo.pop_back();
        for (const FunctionFact* fn : defs[name]) {
          for (const CallFact& call : fn->calls) {
            if (allow.count(call.callee) != 0) continue;
            if (defs.count(call.callee) != 0) {
              if (visited.insert(call.callee).second) {
                todo.emplace_back(call.callee, chain + " -> " + call.callee);
              }
              continue;
            }
            add_finding(u, "signal-unsafe-call", call.line,
                        "'" + call.callee +
                            "' is not on the async-signal-safe allowlist (" +
                            std::string{kAllowlistPath} +
                            ") but is reachable from signal handler '" +
                            handler + "' via " + chain + " -> " + call.callee,
                        "signal-safety");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: schema registry.
// ---------------------------------------------------------------------------

/// Extracts every `bbrnash-<words>-vN` schema token embedded in a string
/// literal's contents.
std::vector<std::string> schema_tokens(const std::string& s) {
  constexpr std::string_view kPrefix = "bbrnash-";
  std::vector<std::string> out;
  std::size_t at = s.find(kPrefix);
  while (at != std::string::npos) {
    std::size_t end = at;
    while (end < s.size() &&
           (std::islower(static_cast<unsigned char>(s[end])) != 0 ||
            std::isdigit(static_cast<unsigned char>(s[end])) != 0 ||
            s[end] == '-')) {
      ++end;
    }
    const std::string run = s.substr(at, end - at);
    // Qualifies iff the run ends in "-v<digits>" with a nonempty middle.
    const std::size_t vdash = run.rfind("-v");
    if (vdash != std::string::npos && vdash > kPrefix.size() &&
        vdash + 2 < run.size() &&
        std::all_of(run.begin() + static_cast<std::ptrdiff_t>(vdash) + 2,
                    run.end(), [](char c) {
                      return std::isdigit(static_cast<unsigned char>(c)) != 0;
                    })) {
      out.push_back(run);
    }
    at = s.find(kPrefix, end > at ? end : at + 1);
  }
  return out;
}

/// The constant name a registry string literal is bound to: the last
/// identifier before the '=' on the literal's (stripped) line.
std::string bound_constant(const std::string& code_line) {
  const std::size_t eq = code_line.find('=');
  if (eq == std::string::npos) return std::string{};
  std::size_t j = eq;
  while (j > 0 &&
         std::isspace(static_cast<unsigned char>(code_line[j - 1])) != 0) {
    --j;
  }
  const std::size_t end = j;
  while (j > 0 && is_ident_char(code_line[j - 1])) --j;
  return code_line.substr(j, end - j);
}

void pass_schema_registry(std::vector<ScanUnit>& units) {
  ScanUnit* registry = nullptr;
  for (ScanUnit& u : units) {
    if (u.relpath == kRegistryPath) registry = &u;
  }

  struct Entry {
    std::string name;    // kSchemaFoo
    std::string schema;  // bbrnash-foo-v1
    int line = 0;
  };
  std::vector<Entry> entries;
  if (registry != nullptr) {
    std::set<std::string> seen_schema;
    for (const StringFact& s : registry->facts.strings) {
      const std::vector<std::string> toks = schema_tokens(s.value);
      if (toks.empty()) continue;
      // The '=' binding may sit on the literal's own line or, for a
      // wrapped declaration, up to two lines above it.
      std::string name;
      for (int l = s.line; l >= 1 && l >= s.line - 2 && name.empty(); --l) {
        name = bound_constant(registry->code[static_cast<std::size_t>(l - 1)]);
      }
      for (const std::string& tok : toks) {
        if (!seen_schema.insert(tok).second) {
          add_finding(*registry, "schema-registry", s.line,
                      "duplicate registry entry for schema '" + tok +
                          "'; bump the version instead of re-registering",
                      "schema-registry");
          continue;
        }
        entries.push_back(Entry{name, tok, s.line});
      }
    }
  }

  // Raw schema literals outside the registry. Scope: src/ and bench/ —
  // the wire/persistence writers. Tests pin wire bytes deliberately and
  // tools (this lint, CI scripts) reason *about* schemas.
  for (ScanUnit& u : units) {
    if (&u == registry) continue;
    if (!starts_with(u.relpath, "src/") && !starts_with(u.relpath, "bench/")) {
      continue;
    }
    for (const StringFact& s : u.facts.strings) {
      for (const std::string& tok : schema_tokens(s.value)) {
        std::string hint;
        for (const Entry& e : entries) {
          if (e.schema == tok && !e.name.empty()) hint = e.name;
        }
        add_finding(u, "schema-literal", s.line,
                    "raw schema literal '" + tok + "' outside " +
                        std::string{kRegistryPath} + "; use " +
                        (hint.empty() ? "a registered constant" : hint) +
                        " so readers and writers cannot drift",
                    "schema-registry");
      }
    }
  }

  // Registered-but-unused entries: the constant's name must appear in at
  // least one other scanned file.
  if (registry != nullptr) {
    for (const Entry& e : entries) {
      if (e.name.empty()) {
        add_finding(*registry, "schema-registry", e.line,
                    "schema '" + e.schema +
                        "' is not bound to a named constant; registry "
                        "entries must be usable from writers",
                    "schema-registry");
        continue;
      }
      bool used = false;
      for (const ScanUnit& u : units) {
        if (&u == registry || used) continue;
        for (const std::string& line : u.code) {
          if (contains_token(line, e.name)) {
            used = true;
            break;
          }
        }
      }
      if (!used) {
        add_finding(*registry, "schema-registry", e.line,
                    "registered schema constant '" + e.name + "' ('" +
                        e.schema +
                        "') has no user in the scanned tree; delete the "
                        "entry or migrate its writer",
                    "schema-registry");
      }
    }
  }
}

}  // namespace

std::vector<std::string_view> default_signal_safe_allowlist() {
  // Mirrors tools/lint/signal_safe_allowlist.txt (POSIX.1-2017
  // async-signal-safe subset this codebase plausibly touches). Used for
  // fixture mini-trees, which do not carry the checked-in list.
  return {"_exit",       "_Exit",      "abort",       "write",
          "read",        "close",      "open",        "dup",
          "dup2",        "fsync",      "fdatasync",   "unlink",
          "kill",        "raise",      "signal",      "sigaction",
          "sigemptyset", "sigfillset", "sigaddset",   "sigdelset",
          "sigismember", "getpid",     "getppid",     "alarm",
          "time",        "umask",      "sem_post",    "send",
          "recv",        "accept",     "pipe",        "poll",
          "clock_gettime"};
}

std::string_view lint_report_schema() { return kSchemaLintReport; }

void run_semantic_passes(const std::filesystem::path& root,
                         std::vector<ScanUnit>& units) {
  pass_include_graph(units);
  pass_signal_safety(root, units);
  pass_schema_registry(units);
}

}  // namespace bbrnash::lint
