#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "lint_passes.hpp"

namespace bbrnash::lint {

namespace {

// The annotation marker. It lives in a string literal, and rule matching
// runs on literal-stripped text, so this file stays clean under self-scan;
// annotation extraction runs on comment text only, where the marker is
// matched verbatim.
constexpr std::string_view kAllowMarker = "bbrnash-lint: allow(";

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string{s.substr(b, e - b)};
}

// ---------------------------------------------------------------------------
// Pass 1a: strip comments and string/char literals (preserving line and
// column structure), extracting allow-annotations from comment text and
// recording every string literal's contents as a StringFact.
// ---------------------------------------------------------------------------

struct StrippedFile {
  std::vector<std::string> raw;   ///< original lines
  std::vector<std::string> code;  ///< literals/comments blanked to spaces
  std::vector<Suppression> annotations;  ///< file field left empty
  std::vector<StringFact> strings;
};

void parse_annotation(const std::string& comment, int line,
                      std::vector<Suppression>& out) {
  std::size_t at = comment.find(kAllowMarker);
  while (at != std::string::npos) {
    const std::size_t rule_begin = at + kAllowMarker.size();
    const std::size_t rule_end = comment.find(')', rule_begin);
    if (rule_end == std::string::npos) break;
    Suppression s;
    s.rule = trim(comment.substr(rule_begin, rule_end - rule_begin));
    s.line = line;
    const std::size_t dash = comment.find("--", rule_end);
    if (dash != std::string::npos) s.reason = trim(comment.substr(dash + 2));
    if (!s.rule.empty()) out.push_back(std::move(s));
    at = comment.find(kAllowMarker, rule_end);
  }
}

StrippedFile strip_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"bbrnash-lint: cannot open " + path.string()};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  StrippedFile out;
  std::string raw_line;
  std::string code_line;
  std::string comment_text;  // accumulated text of the comment in progress
  int comment_start_line = 0;
  std::string string_text;  // accumulated contents of the literal in progress
  int string_start_line = 0;
  int line = 1;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: the )delim" terminator

  auto end_line = [&] {
    out.raw.push_back(raw_line);
    out.code.push_back(code_line);
    raw_line.clear();
    code_line.clear();
    ++line;
  };
  auto flush_comment = [&] {
    parse_annotation(comment_text, comment_start_line, out.annotations);
    comment_text.clear();
  };
  auto flush_string = [&] {
    out.strings.push_back(StringFact{string_text, string_start_line});
    string_text.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      }
      if (state == State::kRawString) string_text.push_back('\n');
      end_line();
      continue;
    }
    raw_line.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_start_line = line;
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_start_line = line;
          code_line.push_back(' ');
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — raw string if preceded by a bare R.
          const bool raw_prefix =
              !code_line.empty() && code_line.back() == 'R' &&
              (code_line.size() < 2 || !is_ident_char(code_line[code_line.size() - 2]));
          if (raw_prefix) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '\n') {
              delim.push_back(text[j]);
              ++j;
            }
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          string_start_line = line;
          code_line.push_back(' ');
        } else if (c == '\'') {
          // Distinguish digit separators (1'000) from char literals.
          const bool separator =
              !code_line.empty() &&
              std::isdigit(static_cast<unsigned char>(code_line.back())) != 0 &&
              std::isdigit(static_cast<unsigned char>(next)) != 0;
          if (separator) {
            code_line.push_back(c);
          } else {
            state = State::kChar;
            code_line.push_back(' ');
          }
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        comment_text.push_back(c);
        code_line.push_back(' ');
        break;
      case State::kBlockComment:
        comment_text.push_back(c);
        code_line.push_back(' ');
        if (c == '*' && next == '*') break;
        if (c == '*' && next == '/') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
          flush_comment();
          state = State::kCode;
        }
        break;
      case State::kString:
        code_line.push_back(' ');
        if (c == '\\' && next != '\0' && next != '\n') {
          string_text.push_back(c);
          string_text.push_back(next);
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          flush_string();
          state = State::kCode;
        } else {
          string_text.push_back(c);
        }
        break;
      case State::kChar:
        code_line.push_back(' ');
        if (c == '\\' && next != '\0' && next != '\n') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        code_line.push_back(' ');
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            raw_line.push_back(text[i + k]);
            code_line.push_back(' ');
          }
          i += raw_delim.size() - 1;
          flush_string();
          state = State::kCode;
        } else {
          string_text.push_back(c);
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    flush_comment();
  }
  if (state == State::kString || state == State::kRawString) flush_string();
  if (!raw_line.empty() || !code_line.empty()) end_line();
  return out;
}

// ---------------------------------------------------------------------------
// Matching helpers (identifier-boundary token search on stripped lines).
// ---------------------------------------------------------------------------

/// Calls fn(pos) for each occurrence of `tok` in `line` with identifier
/// boundaries on both sides.
template <typename Fn>
void for_each_token(const std::string& line, std::string_view tok, Fn&& fn) {
  std::size_t at = line.find(tok);
  while (at != std::string::npos) {
    const bool left_ok = at == 0 || !is_ident_char(line[at - 1]);
    const std::size_t after = at + tok.size();
    const bool right_ok = after >= line.size() || !is_ident_char(line[after]);
    if (left_ok && right_ok) fn(at);
    at = line.find(tok, at + 1);
  }
}

/// True when the token at `pos` is written as a function call: next
/// non-space char is '('. Member calls (obj.name(...) / ptr->name(...))
/// do not count; qualified calls (std::name) do.
bool is_free_call(const std::string& line, std::size_t pos,
                  std::string_view tok) {
  std::size_t after = pos + tok.size();
  while (after < line.size() &&
         std::isspace(static_cast<unsigned char>(line[after])) != 0) {
    ++after;
  }
  if (after >= line.size() || line[after] != '(') return false;
  if (pos > 0 && line[pos - 1] == '.') return false;
  if (pos > 1 && line[pos - 2] == '-' && line[pos - 1] == '>') return false;
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_preprocessor_line(const std::string& raw) {
  const std::string t = trim(raw);
  return !t.empty() && t[0] == '#';
}

/// A token that parses as a floating-point literal: starts with a digit or
/// '.', and contains a '.' or an exponent. "1.25", ".5", "2.", "1e9" yes;
/// "100", "x2", "0xFF" no.
bool is_float_literal(std::string_view tok) {
  if (tok.empty()) return false;
  if (tok[0] != '.' && std::isdigit(static_cast<unsigned char>(tok[0])) == 0) {
    return false;
  }
  if (tok.size() > 1 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    return false;
  }
  bool has_dot = false;
  bool has_exp = false;
  for (std::size_t i = 0; i < tok.size(); ++i) {
    const char c = tok[i];
    if (c == '.') {
      has_dot = true;
    } else if ((c == 'e' || c == 'E') && i > 0) {
      has_exp = true;
    } else if (c == '+' || c == '-') {
      if (i == 0 || (tok[i - 1] != 'e' && tok[i - 1] != 'E')) return false;
    } else if (c == 'f' || c == 'F' || c == 'l' || c == 'L') {
      if (i + 1 != tok.size()) return false;
    } else if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return false;
    }
  }
  return has_dot || has_exp;
}

// ---------------------------------------------------------------------------
// Pass 1b: fact extraction for the semantic passes — includes, function
// definitions with their call sites, and signal-handler registrations.
// The function parser is a deliberate heuristic (a brace/paren tracker
// over the stripped token stream, not a C++ front end); it is tuned to
// this codebase's style and covered by the fixture corpus.
// ---------------------------------------------------------------------------

void collect_includes(const StrippedFile& f, FileFacts& facts) {
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    const std::string t = trim(f.raw[i]);
    if (t.empty() || t[0] != '#') continue;
    std::size_t j = 1;
    while (j < t.size() && std::isspace(static_cast<unsigned char>(t[j])) != 0) {
      ++j;
    }
    if (t.compare(j, 7, "include") != 0) continue;
    const std::size_t open = t.find('"', j + 7);
    if (open == std::string::npos) continue;
    const std::size_t close = t.find('"', open + 1);
    if (close == std::string::npos) continue;
    facts.includes.push_back(IncludeFact{
        t.substr(open + 1, close - open - 1), static_cast<int>(i + 1)});
  }
}

struct Tok {
  std::string text;
  int line = 0;
  bool ident = false;
};

/// Tokenizes the stripped code view into identifiers and punctuation
/// ("::" and "->" kept as single tokens); numbers are consumed and
/// dropped, preprocessor lines are skipped entirely (a `#define` body
/// could otherwise unbalance the brace tracker).
std::vector<Tok> tokenize(const StrippedFile& f) {
  std::vector<Tok> toks;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (is_preprocessor_line(f.raw[i])) continue;
    const std::string& l = f.code[i];
    const int line = static_cast<int>(i + 1);
    std::size_t j = 0;
    while (j < l.size()) {
      const char c = l[j];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++j;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t e = j;
        while (e < l.size() && is_ident_char(l[e])) ++e;
        toks.push_back(Tok{l.substr(j, e - j), line, true});
        j = e;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t e = j;
        while (e < l.size() && (is_ident_char(l[e]) || l[e] == '.')) ++e;
        j = e;  // numeric literal: dropped
      } else if (c == ':' && j + 1 < l.size() && l[j + 1] == ':') {
        toks.push_back(Tok{"::", line, false});
        j += 2;
      } else if (c == '-' && j + 1 < l.size() && l[j + 1] == '>') {
        toks.push_back(Tok{"->", line, false});
        j += 2;
      } else {
        toks.push_back(Tok{std::string(1, c), line, false});
        ++j;
      }
    }
  }
  return toks;
}

bool is_control_keyword(const std::string& s) {
  static const std::string_view kControl[] = {"if", "for", "while", "switch",
                                              "catch", "return", "do"};
  for (const std::string_view k : kControl) {
    if (s == k) return true;
  }
  return false;
}

/// Identifiers that look like calls syntactically but are operators,
/// casts, builtin-type conversions, or declaration noise.
bool is_call_noise(const std::string& s) {
  static const std::string_view kNoise[] = {
      "if",       "for",      "while",    "switch",     "catch",
      "return",   "sizeof",   "alignof",  "alignas",    "decltype",
      "noexcept", "throw",    "new",      "delete",     "static_assert",
      "defined",  "typeid",   "void",     "bool",       "char",
      "int",      "long",     "short",    "unsigned",   "signed",
      "float",    "double",   "auto",     "explicit",   "operator",
      "assert"};
  for (const std::string_view k : kNoise) {
    if (s == k) return true;
  }
  return false;
}

bool is_sig_disposition(const std::string& s) {
  return s == "SIG_IGN" || s == "SIG_DFL" || s == "SIG_ERR" ||
         s == "nullptr" || s == "NULL";
}

void collect_functions_and_handlers(const StrippedFile& f, FileFacts& facts) {
  const std::vector<Tok> toks = tokenize(f);

  enum class ScopeKind { kNamespace, kType, kFunction, kBlock };
  struct Scope {
    ScopeKind kind;
    int fn = -1;  ///< index into facts.functions for kFunction scopes
  };
  std::vector<Scope> scopes;
  std::vector<Tok> window;  // tokens since the last ';' / '{' / '}'

  auto innermost_function = [&]() -> int {
    for (std::size_t s = scopes.size(); s > 0; --s) {
      if (scopes[s - 1].kind == ScopeKind::kFunction) return scopes[s - 1].fn;
      if (scopes[s - 1].kind == ScopeKind::kNamespace) break;
    }
    return -1;
  };

  // Classifies the scope a '{' opens from its statement-head window.
  auto classify = [&](const std::vector<Tok>& w) -> Scope {
    for (const Tok& t : w) {
      if (t.ident && t.text == "namespace") return Scope{ScopeKind::kNamespace};
    }
    if (!w.empty()) {
      const std::string& last = w.back().text;
      if (last == "=" || last == "," || last == "(" || last == "return") {
        return Scope{ScopeKind::kBlock};  // braced initializer
      }
    }
    // Walk back over trailing specifiers (const, noexcept, override, a
    // trailing return type...) to the parameter list's ')'.
    std::size_t i = w.size();
    while (i > 0) {
      const Tok& t = w[i - 1];
      if (t.text == ")") break;
      if (t.ident || t.text == "::" || t.text == "->" || t.text == "<" ||
          t.text == ">" || t.text == "*" || t.text == "&") {
        --i;
        continue;
      }
      break;
    }
    if (i == 0 || w[i - 1].text != ")") {
      bool has_type_key = false;
      for (const Tok& t : w) {
        if (t.ident && (t.text == "class" || t.text == "struct" ||
                        t.text == "union" || t.text == "enum")) {
          has_type_key = true;
        }
      }
      return Scope{has_type_key ? ScopeKind::kType : ScopeKind::kBlock};
    }
    // Match the ')' at w[i-1] back to its '('.
    int depth = 0;
    std::size_t open = i - 1;
    for (std::size_t k = i; k > 0; --k) {
      const std::string& s = w[k - 1].text;
      if (s == ")") ++depth;
      if (s == "(" && --depth == 0) {
        open = k - 1;
        break;
      }
    }
    if (depth != 0 || open == 0) return Scope{ScopeKind::kBlock};
    const Tok& name = w[open - 1];
    if (!name.ident || is_control_keyword(name.text) ||
        name.text == "noexcept") {
      return Scope{ScopeKind::kBlock};
    }
    facts.functions.push_back(
        FunctionFact{name.text, w[open - 1].line, {}});
    return Scope{ScopeKind::kFunction,
                 static_cast<int>(facts.functions.size()) - 1};
  };

  for (std::size_t k = 0; k < toks.size(); ++k) {
    const Tok& t = toks[k];
    if (t.text == "{") {
      Scope s = classify(window);
      if (s.kind == ScopeKind::kFunction) {
        facts.functions[static_cast<std::size_t>(s.fn)].line = t.line;
      }
      scopes.push_back(s);
      window.clear();
      continue;
    }
    if (t.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
      window.clear();
      continue;
    }
    if (t.text == ";") {
      window.clear();
      continue;
    }
    window.push_back(t);

    // Handler registration: `sa_handler = fn` / `sa_sigaction = fn`.
    if (t.ident && (t.text == "sa_handler" || t.text == "sa_sigaction") &&
        k + 1 < toks.size() && toks[k + 1].text == "=") {
      std::size_t a = k + 2;
      if (a < toks.size() && toks[a].text == "&") ++a;
      if (a < toks.size() && toks[a].ident &&
          !is_sig_disposition(toks[a].text)) {
        facts.handlers.push_back(HandlerFact{toks[a].text, toks[a].line});
      }
    }
    // Handler registration: `signal(SIG..., fn)` (free or std::-qualified).
    if (t.ident && t.text == "signal" && k + 1 < toks.size() &&
        toks[k + 1].text == "(") {
      int depth = 0;
      for (std::size_t a = k + 1; a < toks.size(); ++a) {
        const std::string& s = toks[a].text;
        if (s == "(") ++depth;
        if (s == ")" && --depth == 0) break;
        if (s == "," && depth == 1) {
          std::size_t h = a + 1;
          while (h < toks.size() &&
                 (toks[h].text == "&" || toks[h].text == "+")) {
            ++h;
          }
          if (h < toks.size() && toks[h].ident &&
              !is_sig_disposition(toks[h].text)) {
            facts.handlers.push_back(HandlerFact{toks[h].text, toks[h].line});
          }
          break;
        }
      }
    }
    // Call sites inside function bodies: `callee(` as a free or
    // namespace-qualified call.
    const int fn = innermost_function();
    if (fn >= 0 && t.ident && k + 1 < toks.size() &&
        toks[k + 1].text == "(" && !is_call_noise(t.text)) {
      // Walk back over a `ns::ns::` qualification chain to the receiver.
      std::size_t head = k;
      while (head >= 2 && toks[head - 1].text == "::" &&
             toks[head - 2].ident) {
        head -= 2;
      }
      const bool member =
          head > 0 &&
          (toks[head - 1].text == "." || toks[head - 1].text == "->");
      if (!member) {
        facts.functions[static_cast<std::size_t>(fn)].calls.push_back(
            CallFact{t.text, t.line});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file rules. Each appends candidate findings; suppressions are
// applied after the semantic passes, in finalize_report.
// ---------------------------------------------------------------------------

struct FileContext {
  std::string_view relpath;
  const StrippedFile& f;
  std::vector<Finding>& out;

  void add(const std::string& rule, int line, std::string detail) const {
    out.push_back(Finding{rule, std::string{relpath}, line, std::move(detail),
                          std::string{}});
  }
};

void rule_wall_clock(const FileContext& ctx) {
  // The two watchdog/telemetry translation units are the only places the
  // experiment layer may consult wall time (watchdog backstops, worker
  // telemetry); everything else must run on simulated time.
  if (ctx.relpath == "src/exp/scenario_runner.cpp" ||
      ctx.relpath == "src/exp/parallel.cpp") {
    return;
  }
  static const std::string_view kClocks[] = {"steady_clock", "system_clock",
                                             "high_resolution_clock"};
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    for (const std::string_view clk : kClocks) {
      for_each_token(ctx.f.code[i], clk, [&](std::size_t) {
        ctx.add("wall-clock", static_cast<int>(i + 1),
                std::string{clk} +
                    ": wall-clock reads are banned outside the allowlisted "
                    "watchdog/telemetry sites (src/exp/scenario_runner.cpp, "
                    "src/exp/parallel.cpp)");
      });
    }
  }
}

void rule_nondeterminism(const FileContext& ctx) {
  static const std::string_view kCalls[] = {"rand", "srand", "time", "clock",
                                            "getenv"};
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for (const std::string_view fn : kCalls) {
      for_each_token(line, fn, [&](std::size_t pos) {
        if (!is_free_call(line, pos, fn)) return;
        ctx.add("nondeterminism", static_cast<int>(i + 1),
                std::string{fn} +
                    "(): ambient nondeterminism source; results must be a "
                    "function of (scenario, seed) only");
      });
    }
    for_each_token(line, "random_device", [&](std::size_t) {
      ctx.add("nondeterminism", static_cast<int>(i + 1),
              "std::random_device: entropy source breaks seed "
              "reproducibility; use util/rng.hpp");
    });
  }
}

void rule_unordered(const FileContext& ctx) {
  static const std::string_view kContainers[] = {"unordered_map",
                                                 "unordered_set"};
  // Pass 1: every non-preprocessor mention of an unordered container must
  // be annotated (lookup-only is fine, but must say so); collect declared
  // identifier names along the way.
  std::vector<std::string> declared;
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    if (is_preprocessor_line(ctx.f.raw[i])) continue;
    for (const std::string_view tpl : kContainers) {
      for_each_token(line, tpl, [&](std::size_t pos) {
        ctx.add("unordered-container", static_cast<int>(i + 1),
                std::string{tpl} +
                    ": hash containers have platform-dependent order; a "
                    "lookup-only use needs a justifying allow annotation");
        // Declaration form: container<Args...> name — skip the template
        // argument list (single line), then read the declared identifier.
        std::size_t j = pos + tpl.size();
        if (j >= line.size() || line[j] != '<') return;
        int depth = 0;
        for (; j < line.size(); ++j) {
          if (line[j] == '<') ++depth;
          if (line[j] == '>' && --depth == 0) {
            ++j;
            break;
          }
        }
        while (j < line.size() &&
               (std::isspace(static_cast<unsigned char>(line[j])) != 0 ||
                line[j] == '&')) {
          ++j;
        }
        std::string name;
        while (j < line.size() && is_ident_char(line[j])) {
          name.push_back(line[j]);
          ++j;
        }
        if (!name.empty()) declared.push_back(std::move(name));
      });
    }
  }
  // Pass 2: iterating one of the declared containers is order-dependent by
  // construction and cannot hide behind the declaration's annotation.
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for (const std::string& name : declared) {
      for_each_token(line, name, [&](std::size_t pos) {
        // Range-for: `for (... : name)`.
        std::size_t before = pos;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(line[before - 1])) !=
                   0) {
          --before;
        }
        bool fired = false;
        if (before > 0 && line[before - 1] == ':' &&
            (before < 2 || line[before - 2] != ':')) {
          bool in_for = false;
          for_each_token(line.substr(0, before), "for",
                         [&](std::size_t) { in_for = true; });
          if (in_for) fired = true;
        }
        // Explicit iteration: name.begin() / name.cbegin().
        std::size_t after = pos + name.size();
        if (!fired && after < line.size() && line[after] == '.') {
          const std::string rest = line.substr(after + 1);
          if (starts_with(rest, "begin") || starts_with(rest, "cbegin")) {
            fired = true;
          }
        }
        if (fired) {
          ctx.add("unordered-iteration", static_cast<int>(i + 1),
                  "iteration over hash container '" + name +
                      "' is order-dependent; use an ordered container or "
                      "sort before iterating");
        }
      });
    }
  }
}

void rule_casts(const FileContext& ctx) {
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    for_each_token(ctx.f.code[i], "const_cast", [&](std::size_t) {
      ctx.add("const-cast", static_cast<int>(i + 1),
              "const_cast: mutating through a const view invites the "
              "priority_queue-era UB back; redesign the ownership instead");
    });
    for_each_token(ctx.f.code[i], "reinterpret_cast", [&](std::size_t) {
      ctx.add("reinterpret-cast", static_cast<int>(i + 1),
              "reinterpret_cast outside the annotated pooled-storage "
              "sites");
    });
  }
}

void rule_raw_parse(const FileContext& ctx) {
  // The strict whole-token parsers live here; everything else goes
  // through them so malformed tokens fail loudly.
  if (ctx.relpath == "src/exp/cli_flags.cpp") return;
  static const std::string_view kParsers[] = {
      "atoi",  "atof",  "atol",  "atoll",   "strtod", "strtof", "strtold",
      "strtol", "strtoll", "strtoul", "strtoull", "stod",   "stof",
      "stold", "stoi",  "stol",  "stoll",   "stoul",  "stoull"};
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for (const std::string_view fn : kParsers) {
      for_each_token(line, fn, [&](std::size_t pos) {
        if (!is_free_call(line, pos, fn)) return;
        ctx.add("raw-parse", static_cast<int>(i + 1),
                std::string{fn} +
                    "(): silently accepts garbage/partial tokens; use "
                    "parse_double_strict / parse_int_strict / "
                    "parse_u64_strict (src/exp/cli_flags.hpp)");
      });
    }
  }
}

void rule_float(const FileContext& ctx) {
  // Model equations and CC state machines are double-only: float narrows
  // intermediates platform-dependently under FMA/x87 contraction.
  if (!starts_with(ctx.relpath, "src/model/") &&
      !starts_with(ctx.relpath, "src/cc/")) {
    return;
  }
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for_each_token(line, "float", [&](std::size_t) {
      ctx.add("float-type", static_cast<int>(i + 1),
              "float: model/CC arithmetic is double-only (see DESIGN.md); "
              "float intermediates drift across platforms");
    });
    for (std::size_t pos = 0; pos + 1 < line.size(); ++pos) {
      const bool eq = line[pos] == '=' && line[pos + 1] == '=';
      const bool ne = line[pos] == '!' && line[pos + 1] == '=';
      if (!eq && !ne) continue;
      if (pos + 2 < line.size() && line[pos + 2] == '=') continue;
      if (eq && pos > 0 &&
          std::string_view{"<>!=+-*/%&|^"}.find(line[pos - 1]) !=
              std::string_view::npos) {
        continue;
      }
      // Extract the operand tokens on both sides.
      auto read_right = [&] {
        std::size_t j = pos + 2;
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        if (j < line.size() && line[j] == '-') ++j;
        std::string tok;
        while (j < line.size() &&
               (is_ident_char(line[j]) || line[j] == '.' ||
                ((line[j] == '+' || line[j] == '-') && !tok.empty() &&
                 (tok.back() == 'e' || tok.back() == 'E')))) {
          tok.push_back(line[j]);
          ++j;
        }
        return tok;
      };
      auto read_left = [&] {
        std::size_t j = pos;
        while (j > 0 &&
               std::isspace(static_cast<unsigned char>(line[j - 1])) != 0) {
          --j;
        }
        std::size_t end = j;
        while (j > 0 && (is_ident_char(line[j - 1]) || line[j - 1] == '.')) {
          --j;
        }
        return line.substr(j, end - j);
      };
      if (is_float_literal(read_right()) || is_float_literal(read_left())) {
        ctx.add("float-equality", static_cast<int>(i + 1),
                "exact ==/!= against a floating-point literal; compare "
                "with an explicit tolerance or an integer/enum state");
      }
    }
  }
}

void rule_process_control(const FileContext& ctx) {
  // Forking, signalling, reaping or replacing processes — and, since the
  // serve daemon landed, raw socket/signal-disposition/unlink syscalls —
  // make results depend on OS scheduling and host process state. The
  // sweep fabric (src/exp/fabric.cpp) and the socket wrapper
  // (src/util/ipc.cpp) concentrate every such call into annotated shims;
  // anywhere else the call needs its own justifying annotation.
  static const std::string_view kCalls[] = {
      "fork",   "vfork",  "waitpid",   "wait",   "kill",   "raise",
      "system", "popen",  "_exit",     "_Exit",  "execv",  "execve",
      "execvp", "execl",  "socket",    "bind",   "listen", "accept",
      "connect", "sigaction", "signal", "unlink"};
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for (const std::string_view fn : kCalls) {
      for_each_token(line, fn, [&](std::size_t pos) {
        if (!is_free_call(line, pos, fn)) return;
        ctx.add("process-control", static_cast<int>(i + 1),
                std::string{fn} +
                    "(): process/socket/signal control outside the "
                    "annotated shims; route through src/exp/fabric.cpp or "
                    "src/util/ipc.cpp, or justify with an allow annotation");
      });
    }
  }
}

void rule_cc_virtual(const FileContext& ctx) {
  // The CC hot path is devirtualized (CcVariant, see DESIGN.md §6a): a new
  // `virtual` member under src/cc/ silently reopens the indirect-dispatch
  // cost the variant removed, and — worse — a virtual added to a concrete
  // CCA would be invisible through the variant's direct dispatch. The
  // CongestionControl interface itself and the variant adapter around it
  // are the two sanctioned homes for virtual dispatch; anywhere else needs
  // a justifying allow annotation.
  if (!starts_with(ctx.relpath, "src/cc/")) return;
  if (ctx.relpath == "src/cc/congestion_control.hpp") return;
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    for_each_token(ctx.f.code[i], "virtual", [&](std::size_t) {
      ctx.add("cc-virtual", static_cast<int>(i + 1),
              "virtual member under src/cc/: the CC hot path is "
              "devirtualized (cc_variant.hpp); extend the variant instead, "
              "or justify the virtual with an allow annotation");
    });
  }
}

void rule_pragma_once(const FileContext& ctx) {
  if (ctx.relpath.size() < 4 ||
      ctx.relpath.substr(ctx.relpath.size() - 4) != ".hpp") {
    return;
  }
  for (const std::string& raw : ctx.f.raw) {
    if (trim(raw) == "#pragma once") return;
  }
  ctx.add("pragma-once", 1, "header is missing #pragma once");
}

// ---------------------------------------------------------------------------
// Suppression application (shared by scan_file and finalize_report).
// ---------------------------------------------------------------------------

void apply_suppressions(ScanUnit& unit, TreeReport& out) {
  const int n_lines = static_cast<int>(unit.code.size());
  auto line_has_code = [&](int line1) {
    return unit.code[static_cast<std::size_t>(line1 - 1)].find_first_not_of(
               " \t\r") != std::string::npos;
  };
  // A suppression covers its own line through the next line carrying any
  // code, so it can sit on the offending line or in a (possibly
  // multi-line) comment immediately above it.
  auto cover_end = [&](const Suppression& s) {
    int l = s.line + 1;
    while (l <= n_lines && !line_has_code(l)) ++l;
    return std::min(l, n_lines);
  };
  for (Finding& fd : unit.candidates) {
    bool masked = false;
    for (Suppression& s : unit.suppressions) {
      if (s.rule == fd.rule && s.line <= fd.line && fd.line <= cover_end(s)) {
        s.used = true;
        masked = true;
      }
    }
    if (!masked) out.findings.push_back(std::move(fd));
  }
  for (const Suppression& s : unit.suppressions) {
    if (!s.used) {
      out.findings.push_back(
          Finding{"unused-suppression", s.file, s.line,
                  "allow(" + s.rule + ") masks nothing; remove the stale "
                  "annotation",
                  std::string{}});
    }
  }
  out.suppressions.insert(out.suppressions.end(), unit.suppressions.begin(),
                          unit.suppressions.end());
  ++out.files_scanned;
}

void sort_report(TreeReport& report) {
  // Deterministic (file, line) order regardless of directory traversal
  // order and of which pass appended a finding; `detail` participates so
  // two same-rule findings on one line render in a stable order too.
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.detail) <
                     std::tie(b.file, b.line, b.rule, b.detail);
            });
  std::sort(report.suppressions.begin(), report.suppressions.end(),
            [](const Suppression& a, const Suppression& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> rule_names() {
  return {"wall-clock",       "nondeterminism",      "unordered-container",
          "unordered-iteration", "const-cast",       "reinterpret-cast",
          "raw-parse",        "float-type",          "float-equality",
          "pragma-once",      "process-control",     "cc-virtual",
          "include-layering", "include-cycle",       "signal-unsafe-call",
          "schema-literal",   "schema-registry",     "unused-suppression"};
}

ScanUnit scan_unit(const std::filesystem::path& path,
                   std::string_view relpath) {
  StrippedFile f = strip_file(path);

  ScanUnit unit;
  unit.relpath = std::string{relpath};
  unit.facts.strings = f.strings;
  collect_includes(f, unit.facts);
  collect_functions_and_handlers(f, unit.facts);

  const FileContext ctx{relpath, f, unit.candidates};
  rule_wall_clock(ctx);
  rule_nondeterminism(ctx);
  rule_unordered(ctx);
  rule_casts(ctx);
  rule_raw_parse(ctx);
  rule_float(ctx);
  rule_process_control(ctx);
  rule_cc_virtual(ctx);
  rule_pragma_once(ctx);

  unit.suppressions = std::move(f.annotations);
  const int n_lines = static_cast<int>(f.code.size());
  auto line_has_code = [&](int line1) {
    return f.code[static_cast<std::size_t>(line1 - 1)].find_first_not_of(
               " \t\r") != std::string::npos;
  };
  auto is_comment_only = [&](int line1) {
    return !line_has_code(line1) &&
           starts_with(trim(f.raw[static_cast<std::size_t>(line1 - 1)]), "//");
  };
  for (Suppression& s : unit.suppressions) {
    s.file = std::string{relpath};
    // Merge continuation comment lines into the justification.
    for (int l = s.line + 1; l <= n_lines && is_comment_only(l); ++l) {
      const std::string raw = trim(f.raw[static_cast<std::size_t>(l - 1)]);
      std::size_t at = 0;
      while (at < raw.size() && raw[at] == '/') ++at;
      const std::string cont = trim(raw.substr(at));
      if (cont.find(kAllowMarker) != std::string::npos) break;
      if (!cont.empty()) s.reason += (s.reason.empty() ? "" : " ") + cont;
    }
  }

  unit.raw = std::move(f.raw);
  unit.code = std::move(f.code);
  return unit;
}

TreeReport finalize_report(std::vector<ScanUnit> units) {
  TreeReport report;
  for (ScanUnit& unit : units) apply_suppressions(unit, report);
  sort_report(report);
  return report;
}

void scan_file(const std::filesystem::path& path, std::string_view relpath,
               TreeReport& out) {
  ScanUnit unit = scan_unit(path, relpath);
  apply_suppressions(unit, out);
}

TreeReport scan_tree(const std::filesystem::path& root,
                     const std::vector<std::string>& dirs) {
  std::vector<std::pair<std::string, std::filesystem::path>> files;
  for (const std::string& dir : dirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::string rel =
          std::filesystem::relative(entry.path(), root).generic_string();
      // The fixture corpus holds deliberate violations for the lint's own
      // tests; never treat it as part of the tree under audit.
      if (rel.find("tests/lint/fixtures") != std::string::npos) continue;
      files.emplace_back(std::move(rel), entry.path());
    }
  }
  // Sort AND deduplicate: overlapping --dirs entries (e.g. "src,src/sim")
  // must not scan — and report — a file twice.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              files.end());

  std::vector<ScanUnit> units;
  units.reserve(files.size());
  for (const auto& [rel, path] : files) units.push_back(scan_unit(path, rel));

  run_semantic_passes(root, units);

  return finalize_report(std::move(units));
}

int render_report(const TreeReport& report, std::string& out,
                  bool list_suppressions) {
  std::ostringstream os;
  if (list_suppressions) {
    for (const Suppression& s : report.suppressions) {
      os << "bbrnash-lint: suppression " << s.file << ":" << s.line << " ["
         << s.rule << "]"
         << (s.reason.empty() ? "" : " -- " + s.reason) << "\n";
    }
  }
  for (const Finding& f : report.findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.detail
       << "\n";
  }
  os << "bbrnash-lint: " << report.findings.size() << " violation"
     << (report.findings.size() == 1 ? "" : "s") << ", "
     << report.suppressions.size() << " suppression"
     << (report.suppressions.size() == 1 ? "" : "s") << ", "
     << report.files_scanned << " files scanned\n";
  out = os.str();
  return report.findings.empty() ? 0 : 1;
}

int render_json(const TreeReport& report, std::string& out) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << lint_report_schema() << "\",\n";
  os << "  \"files_scanned\": " << report.files_scanned << ",\n";
  os << "  \"violations\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
       << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"pass\": \""
       << (f.pass_name.empty() ? "scan" : json_escape(f.pass_name))
       << "\", \"detail\": \"" << json_escape(f.detail) << "\"}";
  }
  os << (report.findings.empty() ? "],\n" : "\n  ],\n");
  os << "  \"suppressions\": [";
  for (std::size_t i = 0; i < report.suppressions.size(); ++i) {
    const Suppression& s = report.suppressions[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"rule\": \"" << json_escape(s.rule) << "\", \"file\": \""
       << json_escape(s.file) << "\", \"line\": " << s.line
       << ", \"used\": " << (s.used ? "true" : "false")
       << ", \"reason\": \"" << json_escape(s.reason) << "\"}";
  }
  os << (report.suppressions.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  out = os.str();
  return report.findings.empty() ? 0 : 1;
}

}  // namespace bbrnash::lint
