#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bbrnash::lint {

namespace {

// The annotation marker. It lives in a string literal, and rule matching
// runs on literal-stripped text, so this file stays clean under self-scan;
// annotation extraction runs on comment text only, where the marker is
// matched verbatim.
constexpr std::string_view kAllowMarker = "bbrnash-lint: allow(";

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string{s.substr(b, e - b)};
}

// ---------------------------------------------------------------------------
// Pass 1: strip comments and string/char literals (preserving line and
// column structure), extracting allow-annotations from comment text.
// ---------------------------------------------------------------------------

struct StrippedFile {
  std::vector<std::string> raw;   ///< original lines
  std::vector<std::string> code;  ///< literals/comments blanked to spaces
  std::vector<Suppression> annotations;  ///< file field left empty
};

void parse_annotation(const std::string& comment, int line,
                      std::vector<Suppression>& out) {
  std::size_t at = comment.find(kAllowMarker);
  while (at != std::string::npos) {
    const std::size_t rule_begin = at + kAllowMarker.size();
    const std::size_t rule_end = comment.find(')', rule_begin);
    if (rule_end == std::string::npos) break;
    Suppression s;
    s.rule = trim(comment.substr(rule_begin, rule_end - rule_begin));
    s.line = line;
    const std::size_t dash = comment.find("--", rule_end);
    if (dash != std::string::npos) s.reason = trim(comment.substr(dash + 2));
    if (!s.rule.empty()) out.push_back(std::move(s));
    at = comment.find(kAllowMarker, rule_end);
  }
}

StrippedFile strip_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"bbrnash-lint: cannot open " + path.string()};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  StrippedFile out;
  std::string raw_line;
  std::string code_line;
  std::string comment_text;  // accumulated text of the comment in progress
  int comment_start_line = 0;
  int line = 1;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: the )delim" terminator

  auto end_line = [&] {
    out.raw.push_back(raw_line);
    out.code.push_back(code_line);
    raw_line.clear();
    code_line.clear();
    ++line;
  };
  auto flush_comment = [&] {
    parse_annotation(comment_text, comment_start_line, out.annotations);
    comment_text.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      }
      end_line();
      continue;
    }
    raw_line.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_start_line = line;
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_start_line = line;
          code_line.push_back(' ');
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — raw string if preceded by a bare R.
          const bool raw_prefix =
              !code_line.empty() && code_line.back() == 'R' &&
              (code_line.size() < 2 || !is_ident_char(code_line[code_line.size() - 2]));
          if (raw_prefix) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '\n') {
              delim.push_back(text[j]);
              ++j;
            }
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          code_line.push_back(' ');
        } else if (c == '\'') {
          // Distinguish digit separators (1'000) from char literals.
          const bool separator =
              !code_line.empty() &&
              std::isdigit(static_cast<unsigned char>(code_line.back())) != 0 &&
              std::isdigit(static_cast<unsigned char>(next)) != 0;
          if (separator) {
            code_line.push_back(c);
          } else {
            state = State::kChar;
            code_line.push_back(' ');
          }
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        comment_text.push_back(c);
        code_line.push_back(' ');
        break;
      case State::kBlockComment:
        comment_text.push_back(c);
        code_line.push_back(' ');
        if (c == '*' && next == '*') break;
        if (c == '*' && next == '/') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
          flush_comment();
          state = State::kCode;
        }
        break;
      case State::kString:
        code_line.push_back(' ');
        if (c == '\\' && next != '\0' && next != '\n') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        code_line.push_back(' ');
        if (c == '\\' && next != '\0' && next != '\n') {
          raw_line.push_back(next);
          code_line.push_back(' ');
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        code_line.push_back(' ');
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            raw_line.push_back(text[i + k]);
            code_line.push_back(' ');
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    flush_comment();
  }
  if (!raw_line.empty() || !code_line.empty()) end_line();
  return out;
}

// ---------------------------------------------------------------------------
// Matching helpers (identifier-boundary token search on stripped lines).
// ---------------------------------------------------------------------------

/// Calls fn(pos) for each occurrence of `tok` in `line` with identifier
/// boundaries on both sides.
template <typename Fn>
void for_each_token(const std::string& line, std::string_view tok, Fn&& fn) {
  std::size_t at = line.find(tok);
  while (at != std::string::npos) {
    const bool left_ok = at == 0 || !is_ident_char(line[at - 1]);
    const std::size_t after = at + tok.size();
    const bool right_ok = after >= line.size() || !is_ident_char(line[after]);
    if (left_ok && right_ok) fn(at);
    at = line.find(tok, at + 1);
  }
}

/// True when the token at `pos` is written as a function call: next
/// non-space char is '('. Member calls (obj.name(...) / ptr->name(...))
/// do not count; qualified calls (std::name) do.
bool is_free_call(const std::string& line, std::size_t pos,
                  std::string_view tok) {
  std::size_t after = pos + tok.size();
  while (after < line.size() &&
         std::isspace(static_cast<unsigned char>(line[after])) != 0) {
    ++after;
  }
  if (after >= line.size() || line[after] != '(') return false;
  if (pos > 0 && line[pos - 1] == '.') return false;
  if (pos > 1 && line[pos - 2] == '-' && line[pos - 1] == '>') return false;
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_preprocessor_line(const std::string& raw) {
  const std::string t = trim(raw);
  return !t.empty() && t[0] == '#';
}

/// A token that parses as a floating-point literal: starts with a digit or
/// '.', and contains a '.' or an exponent. "1.25", ".5", "2.", "1e9" yes;
/// "100", "x2", "0xFF" no.
bool is_float_literal(std::string_view tok) {
  if (tok.empty()) return false;
  if (tok[0] != '.' && std::isdigit(static_cast<unsigned char>(tok[0])) == 0) {
    return false;
  }
  if (tok.size() > 1 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
    return false;
  }
  bool has_dot = false;
  bool has_exp = false;
  for (std::size_t i = 0; i < tok.size(); ++i) {
    const char c = tok[i];
    if (c == '.') {
      has_dot = true;
    } else if ((c == 'e' || c == 'E') && i > 0) {
      has_exp = true;
    } else if (c == '+' || c == '-') {
      if (i == 0 || (tok[i - 1] != 'e' && tok[i - 1] != 'E')) return false;
    } else if (c == 'f' || c == 'F' || c == 'l' || c == 'L') {
      if (i + 1 != tok.size()) return false;
    } else if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return false;
    }
  }
  return has_dot || has_exp;
}

// ---------------------------------------------------------------------------
// Rules. Each appends candidate findings; suppressions are applied after.
// ---------------------------------------------------------------------------

struct FileContext {
  std::string_view relpath;
  const StrippedFile& f;
  std::vector<Finding>& out;

  void add(const std::string& rule, int line, std::string detail) const {
    out.push_back(Finding{rule, std::string{relpath}, line, std::move(detail)});
  }
};

void rule_wall_clock(const FileContext& ctx) {
  // The two watchdog/telemetry translation units are the only places the
  // experiment layer may consult wall time (watchdog backstops, worker
  // telemetry); everything else must run on simulated time.
  if (ctx.relpath == "src/exp/scenario_runner.cpp" ||
      ctx.relpath == "src/exp/parallel.cpp") {
    return;
  }
  static const std::string_view kClocks[] = {"steady_clock", "system_clock",
                                             "high_resolution_clock"};
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    for (const std::string_view clk : kClocks) {
      for_each_token(ctx.f.code[i], clk, [&](std::size_t) {
        ctx.add("wall-clock", static_cast<int>(i + 1),
                std::string{clk} +
                    ": wall-clock reads are banned outside the allowlisted "
                    "watchdog/telemetry sites (src/exp/scenario_runner.cpp, "
                    "src/exp/parallel.cpp)");
      });
    }
  }
}

void rule_nondeterminism(const FileContext& ctx) {
  static const std::string_view kCalls[] = {"rand", "srand", "time", "clock",
                                            "getenv"};
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for (const std::string_view fn : kCalls) {
      for_each_token(line, fn, [&](std::size_t pos) {
        if (!is_free_call(line, pos, fn)) return;
        ctx.add("nondeterminism", static_cast<int>(i + 1),
                std::string{fn} +
                    "(): ambient nondeterminism source; results must be a "
                    "function of (scenario, seed) only");
      });
    }
    for_each_token(line, "random_device", [&](std::size_t) {
      ctx.add("nondeterminism", static_cast<int>(i + 1),
              "std::random_device: entropy source breaks seed "
              "reproducibility; use util/rng.hpp");
    });
  }
}

void rule_unordered(const FileContext& ctx) {
  static const std::string_view kContainers[] = {"unordered_map",
                                                 "unordered_set"};
  // Pass 1: every non-preprocessor mention of an unordered container must
  // be annotated (lookup-only is fine, but must say so); collect declared
  // identifier names along the way.
  std::vector<std::string> declared;
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    if (is_preprocessor_line(ctx.f.raw[i])) continue;
    for (const std::string_view tpl : kContainers) {
      for_each_token(line, tpl, [&](std::size_t pos) {
        ctx.add("unordered-container", static_cast<int>(i + 1),
                std::string{tpl} +
                    ": hash containers have platform-dependent order; a "
                    "lookup-only use needs a justifying allow annotation");
        // Declaration form: container<Args...> name — skip the template
        // argument list (single line), then read the declared identifier.
        std::size_t j = pos + tpl.size();
        if (j >= line.size() || line[j] != '<') return;
        int depth = 0;
        for (; j < line.size(); ++j) {
          if (line[j] == '<') ++depth;
          if (line[j] == '>' && --depth == 0) {
            ++j;
            break;
          }
        }
        while (j < line.size() &&
               (std::isspace(static_cast<unsigned char>(line[j])) != 0 ||
                line[j] == '&')) {
          ++j;
        }
        std::string name;
        while (j < line.size() && is_ident_char(line[j])) {
          name.push_back(line[j]);
          ++j;
        }
        if (!name.empty()) declared.push_back(std::move(name));
      });
    }
  }
  // Pass 2: iterating one of the declared containers is order-dependent by
  // construction and cannot hide behind the declaration's annotation.
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for (const std::string& name : declared) {
      for_each_token(line, name, [&](std::size_t pos) {
        // Range-for: `for (... : name)`.
        std::size_t before = pos;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(line[before - 1])) !=
                   0) {
          --before;
        }
        bool fired = false;
        if (before > 0 && line[before - 1] == ':' &&
            (before < 2 || line[before - 2] != ':')) {
          bool in_for = false;
          for_each_token(line.substr(0, before), "for",
                         [&](std::size_t) { in_for = true; });
          if (in_for) fired = true;
        }
        // Explicit iteration: name.begin() / name.cbegin().
        std::size_t after = pos + name.size();
        if (!fired && after < line.size() && line[after] == '.') {
          const std::string rest = line.substr(after + 1);
          if (starts_with(rest, "begin") || starts_with(rest, "cbegin")) {
            fired = true;
          }
        }
        if (fired) {
          ctx.add("unordered-iteration", static_cast<int>(i + 1),
                  "iteration over hash container '" + name +
                      "' is order-dependent; use an ordered container or "
                      "sort before iterating");
        }
      });
    }
  }
}

void rule_casts(const FileContext& ctx) {
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    for_each_token(ctx.f.code[i], "const_cast", [&](std::size_t) {
      ctx.add("const-cast", static_cast<int>(i + 1),
              "const_cast: mutating through a const view invites the "
              "priority_queue-era UB back; redesign the ownership instead");
    });
    for_each_token(ctx.f.code[i], "reinterpret_cast", [&](std::size_t) {
      ctx.add("reinterpret-cast", static_cast<int>(i + 1),
              "reinterpret_cast outside the annotated pooled-storage "
              "sites");
    });
  }
}

void rule_raw_parse(const FileContext& ctx) {
  // The strict whole-token parsers live here; everything else goes
  // through them so malformed tokens fail loudly.
  if (ctx.relpath == "src/exp/cli_flags.cpp") return;
  static const std::string_view kParsers[] = {
      "atoi",  "atof",  "atol",  "atoll",   "strtod", "strtof", "strtold",
      "strtol", "strtoll", "strtoul", "strtoull", "stod",   "stof",
      "stold", "stoi",  "stol",  "stoll",   "stoul",  "stoull"};
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for (const std::string_view fn : kParsers) {
      for_each_token(line, fn, [&](std::size_t pos) {
        if (!is_free_call(line, pos, fn)) return;
        ctx.add("raw-parse", static_cast<int>(i + 1),
                std::string{fn} +
                    "(): silently accepts garbage/partial tokens; use "
                    "parse_double_strict / parse_int_strict / "
                    "parse_u64_strict (src/exp/cli_flags.hpp)");
      });
    }
  }
}

void rule_float(const FileContext& ctx) {
  // Model equations and CC state machines are double-only: float narrows
  // intermediates platform-dependently under FMA/x87 contraction.
  if (!starts_with(ctx.relpath, "src/model/") &&
      !starts_with(ctx.relpath, "src/cc/")) {
    return;
  }
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for_each_token(line, "float", [&](std::size_t) {
      ctx.add("float-type", static_cast<int>(i + 1),
              "float: model/CC arithmetic is double-only (see DESIGN.md); "
              "float intermediates drift across platforms");
    });
    for (std::size_t pos = 0; pos + 1 < line.size(); ++pos) {
      const bool eq = line[pos] == '=' && line[pos + 1] == '=';
      const bool ne = line[pos] == '!' && line[pos + 1] == '=';
      if (!eq && !ne) continue;
      if (pos + 2 < line.size() && line[pos + 2] == '=') continue;
      if (eq && pos > 0 &&
          std::string_view{"<>!=+-*/%&|^"}.find(line[pos - 1]) !=
              std::string_view::npos) {
        continue;
      }
      // Extract the operand tokens on both sides.
      auto read_right = [&] {
        std::size_t j = pos + 2;
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        if (j < line.size() && line[j] == '-') ++j;
        std::string tok;
        while (j < line.size() &&
               (is_ident_char(line[j]) || line[j] == '.' ||
                ((line[j] == '+' || line[j] == '-') && !tok.empty() &&
                 (tok.back() == 'e' || tok.back() == 'E')))) {
          tok.push_back(line[j]);
          ++j;
        }
        return tok;
      };
      auto read_left = [&] {
        std::size_t j = pos;
        while (j > 0 &&
               std::isspace(static_cast<unsigned char>(line[j - 1])) != 0) {
          --j;
        }
        std::size_t end = j;
        while (j > 0 && (is_ident_char(line[j - 1]) || line[j - 1] == '.')) {
          --j;
        }
        return line.substr(j, end - j);
      };
      if (is_float_literal(read_right()) || is_float_literal(read_left())) {
        ctx.add("float-equality", static_cast<int>(i + 1),
                "exact ==/!= against a floating-point literal; compare "
                "with an explicit tolerance or an integer/enum state");
      }
    }
  }
}

void rule_process_control(const FileContext& ctx) {
  // Forking, signalling, reaping or replacing processes — and, since the
  // serve daemon landed, raw socket/signal-disposition/unlink syscalls —
  // make results depend on OS scheduling and host process state. The
  // sweep fabric (src/exp/fabric.cpp) and the socket wrapper
  // (src/util/ipc.cpp) concentrate every such call into annotated shims;
  // anywhere else the call needs its own justifying annotation.
  static const std::string_view kCalls[] = {
      "fork",   "vfork",  "waitpid",   "wait",   "kill",   "raise",
      "system", "popen",  "_exit",     "_Exit",  "execv",  "execve",
      "execvp", "execl",  "socket",    "bind",   "listen", "accept",
      "connect", "sigaction", "signal", "unlink"};
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    const std::string& line = ctx.f.code[i];
    for (const std::string_view fn : kCalls) {
      for_each_token(line, fn, [&](std::size_t pos) {
        if (!is_free_call(line, pos, fn)) return;
        ctx.add("process-control", static_cast<int>(i + 1),
                std::string{fn} +
                    "(): process/socket/signal control outside the "
                    "annotated shims; route through src/exp/fabric.cpp or "
                    "src/util/ipc.cpp, or justify with an allow annotation");
      });
    }
  }
}

void rule_cc_virtual(const FileContext& ctx) {
  // The CC hot path is devirtualized (CcVariant, see DESIGN.md §6a): a new
  // `virtual` member under src/cc/ silently reopens the indirect-dispatch
  // cost the variant removed, and — worse — a virtual added to a concrete
  // CCA would be invisible through the variant's direct dispatch. The
  // CongestionControl interface itself and the variant adapter around it
  // are the two sanctioned homes for virtual dispatch; anywhere else needs
  // a justifying allow annotation.
  if (!starts_with(ctx.relpath, "src/cc/")) return;
  if (ctx.relpath == "src/cc/congestion_control.hpp") return;
  for (std::size_t i = 0; i < ctx.f.code.size(); ++i) {
    for_each_token(ctx.f.code[i], "virtual", [&](std::size_t) {
      ctx.add("cc-virtual", static_cast<int>(i + 1),
              "virtual member under src/cc/: the CC hot path is "
              "devirtualized (cc_variant.hpp); extend the variant instead, "
              "or justify the virtual with an allow annotation");
    });
  }
}

void rule_pragma_once(const FileContext& ctx) {
  if (ctx.relpath.size() < 4 ||
      ctx.relpath.substr(ctx.relpath.size() - 4) != ".hpp") {
    return;
  }
  for (const std::string& raw : ctx.f.raw) {
    if (trim(raw) == "#pragma once") return;
  }
  ctx.add("pragma-once", 1, "header is missing #pragma once");
}

}  // namespace

std::vector<std::string> rule_names() {
  return {"wall-clock",       "nondeterminism",      "unordered-container",
          "unordered-iteration", "const-cast",       "reinterpret-cast",
          "raw-parse",        "float-type",          "float-equality",
          "pragma-once",      "process-control",     "cc-virtual",
          "unused-suppression"};
}

void scan_file(const std::filesystem::path& path, std::string_view relpath,
               TreeReport& out) {
  const StrippedFile f = strip_file(path);
  std::vector<Finding> candidates;
  const FileContext ctx{relpath, f, candidates};
  rule_wall_clock(ctx);
  rule_nondeterminism(ctx);
  rule_unordered(ctx);
  rule_casts(ctx);
  rule_raw_parse(ctx);
  rule_float(ctx);
  rule_process_control(ctx);
  rule_cc_virtual(ctx);
  rule_pragma_once(ctx);

  std::vector<Suppression> sups = f.annotations;
  const int n_lines = static_cast<int>(f.code.size());
  auto line_has_code = [&](int line1) {
    return f.code[static_cast<std::size_t>(line1 - 1)].find_first_not_of(
               " \t\r") != std::string::npos;
  };
  auto is_comment_only = [&](int line1) {
    return !line_has_code(line1) &&
           starts_with(trim(f.raw[static_cast<std::size_t>(line1 - 1)]), "//");
  };
  for (Suppression& s : sups) {
    s.file = std::string{relpath};
    // Merge continuation comment lines into the justification.
    for (int l = s.line + 1; l <= n_lines && is_comment_only(l); ++l) {
      const std::string raw = trim(f.raw[static_cast<std::size_t>(l - 1)]);
      std::size_t at = 0;
      while (at < raw.size() && raw[at] == '/') ++at;
      const std::string cont = trim(raw.substr(at));
      if (cont.find(kAllowMarker) != std::string::npos) break;
      if (!cont.empty()) s.reason += (s.reason.empty() ? "" : " ") + cont;
    }
  }

  // A suppression covers its own line through the next line carrying any
  // code, so it can sit on the offending line or in a (possibly
  // multi-line) comment immediately above it.
  auto cover_end = [&](const Suppression& s) {
    int l = s.line + 1;
    while (l <= n_lines && !line_has_code(l)) ++l;
    return std::min(l, n_lines);
  };
  for (Finding& fd : candidates) {
    bool masked = false;
    for (Suppression& s : sups) {
      if (s.rule == fd.rule && s.line <= fd.line &&
          fd.line <= cover_end(s)) {
        s.used = true;
        masked = true;
      }
    }
    if (!masked) out.findings.push_back(std::move(fd));
  }
  for (const Suppression& s : sups) {
    if (!s.used) {
      out.findings.push_back(
          Finding{"unused-suppression", s.file, s.line,
                  "allow(" + s.rule + ") masks nothing; remove the stale "
                  "annotation"});
    }
  }
  out.suppressions.insert(out.suppressions.end(), sups.begin(), sups.end());
  ++out.files_scanned;
}

TreeReport scan_tree(const std::filesystem::path& root,
                     const std::vector<std::string>& dirs) {
  TreeReport report;
  std::vector<std::pair<std::string, std::filesystem::path>> files;
  for (const std::string& dir : dirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::string rel =
          std::filesystem::relative(entry.path(), root).generic_string();
      // The fixture corpus holds deliberate violations for the lint's own
      // tests; never treat it as part of the tree under audit.
      if (rel.find("tests/lint/fixtures") != std::string::npos) continue;
      files.emplace_back(std::move(rel), entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& [rel, path] : files) scan_file(path, rel, report);

  auto by_site = [](const auto& a, const auto& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  };
  std::sort(report.findings.begin(), report.findings.end(), by_site);
  std::sort(report.suppressions.begin(), report.suppressions.end(), by_site);
  return report;
}

int render_report(const TreeReport& report, std::string& out,
                  bool list_suppressions) {
  std::ostringstream os;
  if (list_suppressions) {
    for (const Suppression& s : report.suppressions) {
      os << "bbrnash-lint: suppression " << s.file << ":" << s.line << " ["
         << s.rule << "]"
         << (s.reason.empty() ? "" : " -- " + s.reason) << "\n";
    }
  }
  for (const Finding& f : report.findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.detail
       << "\n";
  }
  os << "bbrnash-lint: " << report.findings.size() << " violation"
     << (report.findings.size() == 1 ? "" : "s") << ", "
     << report.suppressions.size() << " suppression"
     << (report.suppressions.size() == 1 ? "" : "s") << ", "
     << report.files_scanned << " files scanned\n";
  out = os.str();
  return report.findings.empty() ? 0 : 1;
}

}  // namespace bbrnash::lint
