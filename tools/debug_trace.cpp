// Developer tool: trace per-second state of a 1v1 CUBIC/BBR run.
// Not part of the shipped benches; used to validate CC dynamics.
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "exp/cli_flags.hpp"
#include "flow/receiver.hpp"
#include "flow/sender.hpp"
#include "net/bottleneck_link.hpp"
#include "net/delay_line.hpp"
#include "sim/simulator.hpp"

using namespace bbrnash;

int main(int argc, char** argv) try {
  const double cap_mbps =
      argc > 1 ? parse_double_strict("cap_mbps", argv[1]) : 50.0;
  const double rtt_ms = argc > 2 ? parse_double_strict("rtt_ms", argv[2]) : 40.0;
  const double buf_bdp =
      argc > 3 ? parse_double_strict("buf_bdp", argv[3]) : 4.0;
  const double dur_s = argc > 4 ? parse_double_strict("dur_s", argv[4]) : 40.0;

  Simulator sim;
  const BytesPerSec cap = mbps(cap_mbps);
  const TimeNs rtt = from_ms(rtt_ms);
  const auto buffer = static_cast<Bytes>(buf_bdp * cap * to_sec(rtt));
  BottleneckLink link{sim, cap, buffer, 2};

  struct Endpoint {
    std::unique_ptr<Sender> snd;
    std::unique_ptr<Receiver> rcv;
    std::unique_ptr<DelayLine<Packet>> fwd;
    std::unique_ptr<DelayLine<Ack>> rev;
  };
  std::vector<Endpoint> eps(2);

  for (FlowId i = 0; i < 2; ++i) {
    auto& ep = eps[i];
    ep.rcv = std::make_unique<Receiver>(i);
    ep.fwd = std::make_unique<DelayLine<Packet>>(sim, rtt / 2);
    ep.rev = std::make_unique<DelayLine<Ack>>(sim, rtt / 2);
    std::unique_ptr<CongestionControl> cc;
    if (i == 0) {
      cc = std::make_unique<Cubic>();
    } else {
      cc = std::make_unique<Bbr>();
    }
    ep.snd = std::make_unique<Sender>(sim, i, SenderConfig{}, std::move(cc),
                                      [&link](const Packet& p) { link.send(p); });
    ep.fwd->set_sink([&eps, i](const Packet& p) { eps[i].rcv->on_packet(p, 0); });
    ep.rcv->set_ack_sink([&eps, i](const Ack& a) { eps[i].rev->send(a); });
    ep.rev->set_sink([&eps, i](const Ack& a) { eps[i].snd->on_ack(a); });
  }
  link.set_sink([&eps](const Packet& p) { eps[p.flow].fwd->send(p); });

  eps[0].snd->start(0);
  eps[1].snd->start(from_ms(50));

  std::printf(
      "t cubic_mbps bbr_mbps cubic_cwnd_pk bbr_cwnd_pk bbr_state bbr_btlbw "
      "bbr_rtprop_ms q_pct q_cubic q_bbr retx_c retx_b rtos_c rtos_b\n");
  Bytes last_del[2] = {0, 0};
  for (double t = 1.0; t <= dur_s; t += 1.0) {
    sim.schedule_at(from_sec(t), [&, t] {
      const auto* bbr = dynamic_cast<const Bbr*>(&eps[1].snd->cc());
      const char* st = "?";
      switch (bbr->state()) {
        case Bbr::State::kStartup: st = "STARTUP"; break;
        case Bbr::State::kDrain: st = "DRAIN"; break;
        case Bbr::State::kProbeBw: st = "PROBEBW"; break;
        case Bbr::State::kProbeRtt: st = "PROBERTT"; break;
      }
      const double d0 = to_mbps(static_cast<double>(eps[0].snd->delivered_bytes() - last_del[0]));
      const double d1 = to_mbps(static_cast<double>(eps[1].snd->delivered_bytes() - last_del[1]));
      last_del[0] = eps[0].snd->delivered_bytes();
      last_del[1] = eps[1].snd->delivered_bytes();
      std::printf(
          "%5.0f %7.2f %7.2f %7ld %7ld %-8s %7.2f %7.2f %5.1f %8ld %8ld %5lu %5lu %3lu %3lu\n",
          t, d0, d1, eps[0].snd->cc().cwnd() / kDefaultMss,
          eps[1].snd->cc().cwnd() / kDefaultMss, st, to_mbps(bbr->btlbw()),
          to_ms(bbr->rtprop()),
          100.0 * static_cast<double>(link.queue().occupied_bytes()) /
              static_cast<double>(buffer),
          link.queue().flow_occupancy(0) / 1500,
          link.queue().flow_occupancy(1) / 1500,
          eps[0].snd->retransmit_count(), eps[1].snd->retransmit_count(),
          eps[0].snd->rto_count(), eps[1].snd->rto_count());
    });
  }
  sim.run_until(from_sec(dur_s) + 1);
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "debug_trace: invalid configuration: %s\n", e.what());
  return 2;
}
