// bbrnash — command-line front end to the simulator and the model.
//
//   bbrnash run   --capacity 100 --rtt 40 --buffer-bdp 5
//                 --flows cubic:4,bbr:2 [--duration 60] [--warmup 15]
//                 [--seed 1] [--aqm droptail|red|codel] [--csv]
//                 [--loss P] [--ack-loss P] [--ge-p-gb P --ge-p-bg P
//                  --ge-loss-bad P] [--reorder P --reorder-delay-ms MS]
//                 [--duplicate P] [--jitter-ms MS]
//                 [--flap-period-s S --flap-down-s S --flap-down-mbps M]
//                 [--max-events N] [--max-wall-s S] [--retries N]
//   bbrnash model --capacity 100 --rtt 40 --buffer-bdp 5
//                 [--cubic 5 --bbr 5]
//   bbrnash nash  --capacity 100 --rtt 40 --buffer-bdp 5 --flows-total 50
//                 [--empirical] [--trials N] [--duration S] [--warmup S]
//                 [--seed N] [--jobs N] [--challenger bbr|bbrv2|...]
//                 [--tolerance F] [--checkpoint PATH]
//   bbrnash sweep --capacity 100 --rtt 40 --buffer-bdp 5 --flows-total 20
//                 [--workers N] [--lease-ms MS] [--max-worker-retries N]
//                 [--checkpoint PATH] [--fabric-stats] [--trials N]
//                 [--duration S] [--warmup S] [--seed N] [--jobs N]
//                 [--challenger CC] [--tolerance F] [--audit] [--chaos SEED]
//   bbrnash oracle --capacity 100 --rtt 40 --buffer-bdp 5 --cubic 3 --other 2
//                 [--challenger CC] [--trials N] [--duration S] [--warmup S]
//                 [--seed N] [--jobs N] [--cache PATH] [--hydrate P1,P2,...]
//                 [--batch FILE] [--no-compute] [--no-interpolate]
//                 [--no-model] [--max-band-dev F] [--workers N]
//                 [--lease-ms MS] [--max-worker-retries N] [--oracle-stats]
//   bbrnash serve --socket PATH [--cache PATH] [--hydrate P1,P2,...]
//                 [--deadline-ms MS] [--shed-limit N] [--compute-threads N]
//                 [--write-stall-ms MS] [--no-compute] [--no-interpolate]
//                 [--no-model] [--max-band-dev F] [--chaos SEED] [--smoke]
//   bbrnash query --connect SOCKET [--batch FILE] [--retries N]
//                 [--backoff-ms MS] [--jitter-seed N] [--timeout-ms MS]
//                 [query knobs: --capacity --rtt --buffer-bdp --cubic
//                  --other --challenger --trials --duration --warmup
//                  --seed --jobs]
//
// `oracle` answers payoff queries through the three-tier cache front end
// (exp/oracle.hpp): exact memo hit from --cache/--hydrate JSONL logs,
// bounded interpolation between cached cells, else compute (in-process, or
// on the fabric with --workers N) — or kPending under --no-compute. A
// --batch FILE holds one query per line as `key=value` tokens (same names
// as the flags, no leading --) overriding the command-line base query.
// Exit codes mirror sweep: 0 every query answered, 1 hard error, 2 usage,
// 3 some queries pending/failed.
//
// `run` simulates a scenario and prints per-flow results; `model` prints
// the analytical prediction; `nash` prints the predicted Nash region —
// with `--empirical` it also runs the crossing search on the simulator
// (`--jobs N` fans the per-distribution trials out over N worker threads;
// the result is bit-identical to --jobs 1). `sweep` measures the full
// payoff grid k = 0..N; with `--workers N` the cells are sharded across N
// forked worker processes via the crash-tolerant fabric (exp/fabric.hpp),
// bit-identical to the in-process run. Sweep exit codes: 0 complete,
// 1 hard error, 2 usage, 3 partial results (some cells failed after
// retries), 130 interrupted by SIGINT/SIGTERM (resume with the same
// --checkpoint).
// `serve` runs the crash-tolerant oracle daemon (exp/serve.hpp) on a
// Unix-domain socket until SIGTERM (graceful drain: finish in-flight,
// flush the cache, remove the socket); `--smoke` instead self-hosts the
// daemon on a thread, round-trips a client query, and exits. `query` is
// the matching client: deterministic backoff retries, `--batch` with the
// same token grammar as `oracle`, exit 0 all answered / 1 connection
// failure / 2 usage / 3 some replies pending/failed.
// Unknown flags are rejected with a non-zero exit so a typo'd knob can
// never silently run the default experiment.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/chaos.hpp"
#include "exp/checkpoint.hpp"
#include "exp/cli_flags.hpp"
#include "exp/fabric.hpp"
#include "exp/nash_search.hpp"
#include "exp/oracle.hpp"
#include "exp/parallel.hpp"
#include "exp/scenario_runner.hpp"
#include "exp/serve.hpp"
#include "model/mishra_model.hpp"
#include "model/nash.hpp"
#include "model/ware_model.hpp"
#include "util/table.hpp"

using namespace bbrnash;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  bool csv = false;
  bool empirical = false;
  bool audit = false;
  bool fabric_stats = false;
  bool no_compute = false;
  bool no_interpolate = false;
  bool no_model = false;
  bool oracle_stats = false;
  bool smoke = false;

  // All numeric lookups parse strictly: the whole token must be a finite
  // number of the right shape, or the command exits 2 via the
  // invalid_argument handler in main. `--seed 1e9` and `--trials 3x`
  // must never silently run a different experiment.
  double num(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    return parse_double_strict("--" + key, it->second);
  }
  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    return parse_u64_strict("--" + key, it->second);
  }
  int integer(const std::string& key, int fallback) const {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    return parse_int_strict("--" + key, it->second);
  }
  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  bool has(const std::string& key) const { return kv.count(key) != 0; }
};

std::optional<CcKind> parse_cc(const std::string& name) {
  for (const CcKind k : {CcKind::kCubic, CcKind::kReno, CcKind::kBbr,
                         CcKind::kBbrV2, CcKind::kCopa, CcKind::kVivace,
                         CcKind::kVegas}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bbrnash <run|model|nash> --capacity MBPS --rtt MS "
      "--buffer-bdp N [options]\n"
      "  run:   --flows cubic:4,bbr:2 [--duration S] [--warmup S] "
      "[--seed N] [--aqm droptail|red|codel] [--csv]\n"
      "         impairments: [--loss P] [--ack-loss P] [--ge-p-gb P "
      "--ge-p-bg P --ge-loss-bad P]\n"
      "                      [--reorder P --reorder-delay-ms MS] "
      "[--duplicate P] [--jitter-ms MS]\n"
      "         capacity:    [--flap-period-s S --flap-down-s S "
      "--flap-down-mbps M]\n"
      "         watchdog:    [--max-events N] [--max-wall-s S] "
      "[--retries N]\n"
      "         robustness:  [--audit] [--chaos SEED]\n"
      "  model: [--cubic N --bbr N] [--duration S]\n"
      "  nash:  --flows-total N [--empirical] [--trials N] [--duration S]\n"
      "         [--warmup S] [--seed N] [--jobs N] [--challenger CC]\n"
      "         [--tolerance F] [--checkpoint PATH] [--audit] "
      "[--chaos SEED]\n"
      "  sweep: --flows-total N [--workers N] [--lease-ms MS]\n"
      "         [--max-worker-retries N] [--checkpoint PATH] "
      "[--fabric-stats]\n"
      "         [--trials N] [--duration S] [--warmup S] [--seed N] "
      "[--jobs N]\n"
      "         [--challenger CC] [--tolerance F] [--audit] [--chaos SEED]\n"
      "         exit: 0 complete, 1 error, 2 usage, 3 partial, "
      "130 interrupted\n"
      "  oracle: --cubic N --other N [--challenger CC] [--trials N]\n"
      "         [--duration S] [--warmup S] [--seed N] [--jobs N]\n"
      "         [--cache PATH] [--hydrate P1,P2,...] [--batch FILE]\n"
      "         [--no-compute] [--no-interpolate] [--no-model]\n"
      "         [--max-band-dev F] [--workers N] [--lease-ms MS]\n"
      "         [--max-worker-retries N] [--oracle-stats]\n"
      "         exit: 0 all answered, 1 error, 2 usage, 3 pending/failed\n"
      "  serve: --socket PATH [--cache PATH] [--hydrate P1,P2,...]\n"
      "         [--deadline-ms MS] [--shed-limit N] [--compute-threads N]\n"
      "         [--write-stall-ms MS] [--no-compute] [--no-interpolate]\n"
      "         [--no-model] [--max-band-dev F] [--chaos SEED] [--smoke]\n"
      "         runs until SIGTERM/SIGINT (graceful drain); --smoke\n"
      "         self-hosts a daemon thread, round-trips a query, exits\n"
      "  query: --connect SOCKET [--batch FILE] [--retries N]\n"
      "         [--backoff-ms MS] [--jitter-seed N] [--timeout-ms MS]\n"
      "         [--cubic N --other N --capacity MBPS --rtt MS ...]\n"
      "         exit: 0 all answered, 1 connect/disconnect, 2 usage,\n"
      "         3 pending/failed replies\n");
  return 2;
}

/// Flags each command accepts; anything else is an error, not a no-op.
const std::vector<std::string>& allowed_keys(const std::string& cmd) {
  static const std::vector<std::string> run_keys = {
      "capacity",     "rtt",      "buffer-bdp",       "flows",
      "duration",     "warmup",   "seed",             "aqm",
      "loss",         "ack-loss", "ge-p-gb",          "ge-p-bg",
      "ge-loss-good", "ge-loss-bad", "reorder",       "reorder-delay-ms",
      "duplicate",    "jitter-ms",   "flap-period-s", "flap-down-s",
      "flap-down-mbps", "max-events", "max-wall-s",   "retries",
      "chaos"};
  static const std::vector<std::string> model_keys = {
      "capacity", "rtt", "buffer-bdp", "cubic", "bbr", "duration"};
  static const std::vector<std::string> nash_keys = {
      "capacity", "rtt",  "buffer-bdp", "flows-total", "trials",
      "duration", "warmup", "seed",     "jobs",        "challenger",
      "tolerance", "checkpoint", "chaos"};
  static const std::vector<std::string> sweep_keys = {
      "capacity", "rtt",  "buffer-bdp", "flows-total", "trials",
      "duration", "warmup", "seed",     "jobs",        "challenger",
      "tolerance", "checkpoint", "chaos", "workers",   "lease-ms",
      "max-worker-retries"};
  static const std::vector<std::string> oracle_keys = {
      "capacity", "rtt",  "buffer-bdp", "cubic",   "other",
      "challenger", "trials", "duration", "warmup", "seed",
      "jobs",     "cache", "hydrate",    "batch",   "max-band-dev",
      "workers",  "lease-ms", "max-worker-retries"};
  static const std::vector<std::string> serve_keys = {
      "socket",        "cache",           "hydrate", "max-band-dev",
      "deadline-ms",   "shed-limit",      "compute-threads",
      "write-stall-ms", "chaos"};
  static const std::vector<std::string> query_keys = {
      "connect",  "batch",      "retries", "backoff-ms", "jitter-seed",
      "timeout-ms", "capacity", "rtt",     "buffer-bdp", "cubic",
      "other",    "challenger", "trials",  "duration",   "warmup",
      "seed",     "jobs"};
  static const std::vector<std::string> none;
  if (cmd == "run") return run_keys;
  if (cmd == "model") return model_keys;
  if (cmd == "nash") return nash_keys;
  if (cmd == "sweep") return sweep_keys;
  if (cmd == "oracle") return oracle_keys;
  if (cmd == "serve") return serve_keys;
  if (cmd == "query") return query_keys;
  return none;
}

/// Satellite of the fabric work: a resumed run must never silently absorb
/// checkpoint corruption. Prints the end-of-run checkpoint summary and a
/// distinct warning line when the log had torn/unparseable lines.
void print_checkpoint_summary(const std::string& path, std::size_t records,
                              std::size_t torn) {
  if (path.empty()) return;
  std::printf("checkpoint: %zu record(s) in %s\n", records, path.c_str());
  if (torn > 0) {
    std::fprintf(stderr,
                 "bbrnash: warning: checkpoint log %s had %zu torn/"
                 "unparseable line(s); the affected cells re-ran this run\n",
                 path.c_str(), torn);
  }
}

int cmd_run(const Args& args) {
  const NetworkParams net =
      make_params(args.num("capacity", 100), args.num("rtt", 40),
                  args.num("buffer-bdp", 5));
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.duration = from_sec(args.num("duration", 60));
  s.warmup = from_sec(args.num("warmup", args.num("duration", 60) / 4));
  s.seed = args.u64("seed", 1);
  s.audit.enabled = args.audit;

  const auto aqm = parse_aqm(args.str("aqm", "droptail"));
  if (!aqm) {
    std::fprintf(stderr, "unknown aqm '%s'\n",
                 args.str("aqm", "").c_str());
    return usage();
  }
  s.aqm = *aqm;

  // Data-path / ACK-path impairments.
  s.impairments.loss_rate = args.num("loss", 0);
  s.impairments.gilbert.p_good_to_bad = args.num("ge-p-gb", 0);
  s.impairments.gilbert.p_bad_to_good = args.num("ge-p-bg", 1);
  s.impairments.gilbert.loss_good = args.num("ge-loss-good", 0);
  s.impairments.gilbert.loss_bad = args.num("ge-loss-bad", 1);
  s.impairments.reorder_rate = args.num("reorder", 0);
  s.impairments.reorder_delay = from_ms(args.num("reorder-delay-ms", 0));
  s.impairments.duplicate_rate = args.num("duplicate", 0);
  s.impairments.jitter = from_ms(args.num("jitter-ms", 0));
  s.ack_impairments.loss_rate = args.num("ack-loss", 0);

  // --flows cubic:4,bbr:2,vegas:1
  std::stringstream flows{args.str("flows", "cubic:1,bbr:1")};
  std::string part;
  while (std::getline(flows, part, ',')) {
    const auto colon = part.find(':');
    const std::string name = part.substr(0, colon);
    const int count = colon == std::string::npos
                          ? 1
                          : parse_int_strict("--flows", part.substr(colon + 1));
    const auto kind = parse_cc(name);
    if (!kind || count < 0) {
      std::fprintf(stderr, "bad --flows entry '%s'\n", part.c_str());
      return usage();
    }
    for (int i = 0; i < count; ++i) s.flows.push_back({*kind, net.base_rtt});
  }
  if (s.flows.empty()) return usage();

  // Knob validation: a bad value (e.g. --loss 1.5 or --flap-down-s >=
  // --flap-period-s) must exit with a clean one-line diagnosis, never an
  // uncaught exception.
  try {
    if (args.has("flap-period-s")) {
      s.capacity_schedule = make_flap_schedule(
          from_sec(args.num("flap-period-s", 0)),
          from_sec(args.num("flap-down-s", 1)), s.capacity,
          mbps(args.num("flap-down-mbps", to_mbps(s.capacity) / 10)),
          s.duration);
    }
    s.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 2;
  }

  GuardConfig guard;
  guard.watchdog.max_events = args.u64("max-events", 0);
  guard.watchdog.max_wall_seconds = args.num("max-wall-s", 0);
  guard.max_attempts = 1 + args.integer("retries", 0);
  if (args.has("chaos")) {
    guard.chaos = std::make_shared<ChaosInjector>(args.u64("chaos", 0));
  }

  const RunOutcome o = run_scenario_guarded(s, guard);
  if (!o.ok()) {
    std::fprintf(stderr,
                 "run failed: %s (%s)\n  seed %llu, %d attempt(s), "
                 "%llu events, reached t=%.2f s\n",
                 to_string(o.status), o.diagnostics.message.c_str(),
                 static_cast<unsigned long long>(o.seed_used), o.attempts,
                 static_cast<unsigned long long>(
                     o.diagnostics.events_executed),
                 to_sec(o.diagnostics.sim_time_reached));
    return 1;
  }
  if (guard.chaos) {
    std::fprintf(stderr, "%s\n", guard.chaos->describe().c_str());
  }
  const RunResult& r = o.result;

  Table table({"flow", "cc", "goodput_mbps", "avg_rtt_ms", "retransmits",
               "avg_queue_kB"});
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    const auto& f = r.flows[i];
    table.add_row({std::to_string(i), to_string(f.cc),
                   format_double(to_mbps(f.stats.goodput_bps), 2),
                   format_double(f.stats.avg_rtt_ms, 1),
                   std::to_string(f.stats.retransmits),
                   format_double(f.stats.avg_queue_occupancy_bytes / 1e3, 0)});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
    std::printf(
        "\nlink utilization %.1f%%, avg queue delay %.1f ms, drops %llu, "
        "aqm %s\n",
        100.0 * r.link_utilization, r.avg_queue_delay_ms,
        static_cast<unsigned long long>(r.total_drops), to_string(s.aqm));
    if (r.data_impairments.offered > 0 || r.ack_impairments.offered > 0) {
      std::printf(
          "impairments: data %llu/%llu dropped (%llu dup, %llu reordered), "
          "ack %llu/%llu dropped\n",
          static_cast<unsigned long long>(r.data_impairments.dropped),
          static_cast<unsigned long long>(r.data_impairments.offered),
          static_cast<unsigned long long>(r.data_impairments.duplicated),
          static_cast<unsigned long long>(r.data_impairments.reordered),
          static_cast<unsigned long long>(r.ack_impairments.dropped),
          static_cast<unsigned long long>(r.ack_impairments.offered));
    }
  }
  return 0;
}

int cmd_model(const Args& args) {
  const NetworkParams net =
      make_params(args.num("capacity", 100), args.num("rtt", 40),
                  args.num("buffer-bdp", 5));
  const int nc = args.integer("cubic", 1);
  const int nb = args.integer("bbr", 1);

  const WarePrediction ware = ware_prediction(
      net, WareInputs{nb, args.num("duration", 120), 1500});
  std::printf("network: %.0f Mbps, %.0f ms, %.1f BDP (%lld bytes buffer)\n",
              to_mbps(net.capacity), to_ms(net.base_rtt), net.buffer_in_bdp(),
              static_cast<long long>(net.buffer_bytes));
  if (nc >= 1 && nb >= 1) {
    const auto iv = prediction_interval(net, nc, nb);
    if (!iv) {
      std::printf("outside the model's validity domain (need B >= 1 BDP)\n");
      return 1;
    }
    std::printf("%d CUBIC vs %d BBR (per-flow Mbps):\n", nc, nb);
    std::printf("  BBR   : %.2f (sync) .. %.2f (desync)\n",
                to_mbps(iv->sync.per_flow_bbr),
                to_mbps(iv->desync.per_flow_bbr));
    std::printf("  CUBIC : %.2f (desync) .. %.2f (sync)\n",
                to_mbps(iv->desync.per_flow_cubic),
                to_mbps(iv->sync.per_flow_cubic));
  }
  std::printf("Ware et al. baseline: BBR aggregate %.2f Mbps (%.0f%%)\n",
              to_mbps(ware.lambda_bbr), 100.0 * ware.bbr_fraction);
  return 0;
}

int cmd_nash(const Args& args) {
  const NetworkParams net =
      make_params(args.num("capacity", 100), args.num("rtt", 40),
                  args.num("buffer-bdp", 5));
  const int total = args.integer("flows-total", 50);
  const auto region = predict_nash_region(net, total);
  if (!region && !args.empirical) {
    std::printf("outside the model's validity domain\n");
    return 1;
  }
  if (region) {
    std::printf(
        "Nash region for %d same-RTT flows on %.0f Mbps / %.0f ms / %.1f "
        "BDP:\n"
        "  CUBIC flows at NE: %.1f (desync bound) .. %.1f (sync bound)\n"
        "  BBR flows at NE:   %.1f .. %.1f\n",
        total, to_mbps(net.capacity), to_ms(net.base_rtt), net.buffer_in_bdp(),
        region->cubic_low(), region->cubic_high(),
        static_cast<double>(total) - region->cubic_high(),
        static_cast<double>(total) - region->cubic_low());
  } else {
    std::printf("model prediction: outside the validity domain\n");
  }
  if (!args.empirical) return 0;

  NashSearchConfig cfg;
  const auto challenger = parse_cc(args.str("challenger", "bbr"));
  if (!challenger) {
    std::fprintf(stderr, "unknown challenger '%s'\n",
                 args.str("challenger", "").c_str());
    return usage();
  }
  cfg.challenger = *challenger;
  cfg.trial.trials = args.integer("trials", 3);
  cfg.trial.duration = from_sec(args.num("duration", 30));
  cfg.trial.warmup = from_sec(args.num("warmup", args.num("duration", 30) / 4));
  cfg.trial.seed = args.u64("seed", 1);
  cfg.trial.jobs = args.integer("jobs", 0);
  cfg.tolerance_frac = args.num("tolerance", cfg.tolerance_frac);
  cfg.checkpoint_path = args.str("checkpoint", "");
  cfg.trial.audit.enabled = args.audit;
  if (args.has("chaos")) {
    cfg.trial.guard.chaos =
        std::make_shared<ChaosInjector>(args.u64("chaos", 0));
  }

  // Probe the checkpoint before the search so the end-of-run summary can
  // report what was resumed and whether the log carried torn lines.
  std::size_t torn_lines = 0;
  if (!cfg.checkpoint_path.empty()) {
    const CheckpointLog probe{cfg.checkpoint_path};
    torn_lines = probe.skipped_lines();
  }

  const int k_ne = find_ne_crossing(net, total, cfg);
  std::printf(
      "empirical NE (crossing search, %d trials x %.0f s per distribution):\n"
      "  %d CUBIC / %d %s flows\n",
      cfg.trial.trials, to_sec(cfg.trial.duration), total - k_ne, k_ne,
      to_string(cfg.challenger));
  std::printf("%s\n", describe(parallel_telemetry()).c_str());
  if (!cfg.checkpoint_path.empty()) {
    const CheckpointLog done{cfg.checkpoint_path};
    print_checkpoint_summary(cfg.checkpoint_path, done.size(), torn_lines);
  }
  if (cfg.trial.guard.chaos) {
    std::fprintf(stderr, "%s\n", cfg.trial.guard.chaos->describe().c_str());
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const NetworkParams net =
      make_params(args.num("capacity", 100), args.num("rtt", 40),
                  args.num("buffer-bdp", 5));
  const int total = args.integer("flows-total", 20);
  if (total < 1) {
    std::fprintf(stderr, "--flows-total must be >= 1\n");
    return usage();
  }

  NashSearchConfig cfg;
  const auto challenger = parse_cc(args.str("challenger", "bbr"));
  if (!challenger) {
    std::fprintf(stderr, "unknown challenger '%s'\n",
                 args.str("challenger", "").c_str());
    return usage();
  }
  cfg.challenger = *challenger;
  cfg.trial.trials = args.integer("trials", 3);
  cfg.trial.duration = from_sec(args.num("duration", 30));
  cfg.trial.warmup = from_sec(args.num("warmup", args.num("duration", 30) / 4));
  cfg.trial.seed = args.u64("seed", 1);
  cfg.trial.jobs = args.integer("jobs", 1);
  cfg.tolerance_frac = args.num("tolerance", cfg.tolerance_frac);
  cfg.checkpoint_path = args.str("checkpoint", "");
  cfg.trial.audit.enabled = args.audit;
  std::shared_ptr<ChaosInjector> chaos;
  if (args.has("chaos")) {
    chaos = std::make_shared<ChaosInjector>(args.u64("chaos", 0));
  }

  const int workers = args.integer("workers", 0);
  const auto print_payoffs = [&](const EmpiricalPayoffs& p,
                                 const std::vector<int>& failed_k) {
    Table table({"k", "cubic_per_flow_mbps",
                 std::string{to_string(cfg.challenger)} + "_per_flow_mbps"});
    for (std::size_t k = 0; k < p.cubic_mbps.size(); ++k) {
      const bool failed =
          std::find(failed_k.begin(), failed_k.end(),
                    static_cast<int>(k)) != failed_k.end();
      table.add_row({std::to_string(k),
                     failed ? "failed" : format_double(p.cubic_mbps[k], 3),
                     failed ? "failed" : format_double(p.other_mbps[k], 3)});
    }
    table.print_aligned(std::cout);
    if (failed_k.empty()) {
      const double fair_mbps = to_mbps(net.capacity) / total;
      SymmetricGame game{total, p.cubic_mbps, p.other_mbps};
      const std::vector<int> ne = game.equilibria(cfg.tolerance_frac * fair_mbps);
      std::string nes;
      for (const int k : ne) {
        if (!nes.empty()) nes += ", ";
        nes += std::to_string(k);
      }
      std::printf("equilibria (k = %s flows on %s)\n", nes.c_str(),
                  to_string(cfg.challenger));
    }
  };

  if (workers <= 0) {
    // In-process reference path (the fabric's bit-identity baseline).
    cfg.trial.guard.chaos = chaos;
    std::size_t torn_lines = 0;
    if (!cfg.checkpoint_path.empty()) {
      const CheckpointLog probe{cfg.checkpoint_path};
      torn_lines = probe.skipped_lines();
    }
    const EmpiricalPayoffs p = measure_payoffs(net, total, cfg);
    print_payoffs(p, {});
    std::printf("%s\n", describe(parallel_telemetry()).c_str());
    if (!cfg.checkpoint_path.empty()) {
      const CheckpointLog done{cfg.checkpoint_path};
      print_checkpoint_summary(cfg.checkpoint_path, done.size(), torn_lines);
    }
    if (chaos) std::fprintf(stderr, "%s\n", chaos->describe().c_str());
    return 0;
  }

  FabricConfig fab;
  fab.workers = workers;
  fab.lease_ms = args.num("lease-ms", 2000.0);
  fab.max_worker_retries = args.integer("max-worker-retries", 3);
  fab.checkpoint_path = cfg.checkpoint_path;
  fab.chaos = chaos;

  FabricSweepOutcome out = run_fabric_sweep(net, total, cfg, fab);
  // A chaos'd supervisor crash-before-commit is resumable by construction
  // (fire-once per commit site): re-run against the same checkpoint until
  // the drill stops firing. The bound is a backstop, not a retry budget.
  for (int redo = 0;
       out.status == FabricStatus::kSupervisorCrashed && redo < 4; ++redo) {
    std::fprintf(stderr, "bbrnash: %s; resuming\n", out.message.c_str());
    out = run_fabric_sweep(net, total, cfg, fab);
  }

  print_payoffs(out.payoffs, out.failed_k);
  const FabricStats& s = out.stats;
  std::printf(
      "fabric: %s — %llu/%llu cells committed (%llu resumed from "
      "checkpoint, %llu failed), %d workers, %llu deaths, %llu hangs, "
      "%llu reassignments, %.1f cells/s\n",
      to_string(out.status),
      static_cast<unsigned long long>(s.cells_committed),
      static_cast<unsigned long long>(s.cells_total),
      static_cast<unsigned long long>(s.cells_from_checkpoint),
      static_cast<unsigned long long>(s.cells_failed), workers,
      static_cast<unsigned long long>(s.worker_deaths),
      static_cast<unsigned long long>(s.worker_hangs),
      static_cast<unsigned long long>(s.cells_reassigned),
      s.cells_per_second);
  if (args.fabric_stats) {
    std::printf("%s\n", fabric_stats_to_record(s).encode().c_str());
  }
  if (!cfg.checkpoint_path.empty()) {
    print_checkpoint_summary(cfg.checkpoint_path,
                             s.cells_from_checkpoint + s.cells_committed,
                             s.checkpoint_skipped_lines);
  }
  if (chaos) std::fprintf(stderr, "%s\n", chaos->describe().c_str());
  if (!out.message.empty()) {
    std::fprintf(stderr, "bbrnash: %s\n", out.message.c_str());
  }

  switch (out.status) {
    case FabricStatus::kComplete:
      return 0;
    case FabricStatus::kPartial:
      return 3;
    case FabricStatus::kInterrupted:
      return 130;
    case FabricStatus::kSupervisorCrashed:
      return 1;
  }
  return 1;
}

/// One oracle query built from a flat key=value map (the command line, or
/// one --batch line overlaid on it). Throws std::invalid_argument on any
/// malformed value — callers turn that into exit 2.
OracleQuery build_oracle_query(const std::map<std::string, std::string>& kv) {
  const auto num = [&kv](const std::string& key, double fallback) {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    return parse_double_strict(key, it->second);
  };
  const auto integer = [&kv](const std::string& key, int fallback) {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    return parse_int_strict(key, it->second);
  };
  OracleQuery q;
  q.net = make_params(num("capacity", 100), num("rtt", 40),
                      num("buffer-bdp", 5));
  q.num_cubic = integer("cubic", 1);
  q.num_other = integer("other", 1);
  if (q.num_cubic < 0 || q.num_other < 0) {
    throw std::invalid_argument{"cubic/other flow counts must be >= 0"};
  }
  const auto cit = kv.find("challenger");
  if (cit != kv.end()) {
    const auto challenger = parse_cc(cit->second);
    if (!challenger) {
      throw std::invalid_argument{"unknown challenger '" + cit->second + "'"};
    }
    q.challenger = *challenger;
  }
  q.trial.trials = integer("trials", 3);
  q.trial.duration = from_sec(num("duration", 30));
  q.trial.warmup = from_sec(num("warmup", num("duration", 30) / 4));
  const auto sit = kv.find("seed");
  if (sit != kv.end()) q.trial.seed = parse_u64_strict("seed", sit->second);
  q.trial.jobs = integer("jobs", 1);
  return q;
}

int cmd_oracle(const Args& args) {
  OracleConfig cfg;
  cfg.cache_path = args.str("cache", "");
  cfg.allow_interpolation = !args.no_interpolate;
  cfg.allow_model = !args.no_model;
  cfg.no_compute = args.no_compute;
  cfg.max_band_deviation = args.num("max-band-dev", cfg.max_band_deviation);
  cfg.fabric_workers = args.integer("workers", 0);
  cfg.fabric.lease_ms = args.num("lease-ms", cfg.fabric.lease_ms);
  cfg.fabric.max_worker_retries =
      args.integer("max-worker-retries", cfg.fabric.max_worker_retries);
  {
    std::stringstream paths{args.str("hydrate", "")};
    std::string p;
    while (std::getline(paths, p, ',')) {
      if (!p.empty()) cfg.hydrate_paths.push_back(p);
    }
  }

  // The command-line knobs are the base query; each --batch line overlays
  // `key=value` tokens (same names, no leading --) on a copy of it.
  std::vector<OracleQuery> queries;
  if (args.has("batch")) {
    std::ifstream in{args.str("batch", "")};
    if (!in) {
      std::fprintf(stderr, "cannot open batch file '%s'\n",
                   args.str("batch", "").c_str());
      return 1;
    }
    const std::vector<std::string>& allowed = allowed_keys("oracle");
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::map<std::string, std::string> kv = args.kv;
      std::stringstream tokens{line};
      std::string tok;
      while (tokens >> tok) {
        const auto eq = tok.find('=');
        const std::string key = tok.substr(0, eq);
        if (eq == std::string::npos ||
            std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
          std::fprintf(stderr, "%s:%zu: bad batch token '%s'\n",
                       args.str("batch", "").c_str(), lineno, tok.c_str());
          return 2;
        }
        kv[key] = tok.substr(eq + 1);
      }
      queries.push_back(build_oracle_query(kv));
    }
    if (queries.empty()) {
      std::fprintf(stderr, "batch file '%s' holds no queries\n",
                   args.str("batch", "").c_str());
      return 2;
    }
  } else {
    queries.push_back(build_oracle_query(args.kv));
  }

  PayoffOracle oracle{cfg};
  const std::vector<OracleAnswer> answers = oracle.query_batch(queries);
  oracle.flush();

  Table table({"q", "cubic", "other", "buf_bdp", "fidelity", "status",
               "cubic_mbps", "other_mbps", "band_dev"});
  int pending_or_failed = 0;
  for (std::size_t i = 0; i < answers.size(); ++i) {
    const OracleAnswer& a = answers[i];
    const OracleQuery& q = queries[i];
    if (!a.ok()) ++pending_or_failed;
    table.add_row(
        {std::to_string(i), std::to_string(q.num_cubic),
         std::to_string(q.num_other), format_double(q.net.buffer_in_bdp(), 1),
         to_string(a.fidelity), to_string(a.status),
         a.ok() ? format_double(a.outcome.per_flow_cubic_mbps, 3) : "-",
         a.ok() ? format_double(a.outcome.per_flow_other_mbps, 3) : "-",
         a.band_deviation < 0 ? "n/a" : format_double(a.band_deviation, 3)});
  }
  table.print_aligned(std::cout);
  for (std::size_t i = 0; i < answers.size(); ++i) {
    if (!answers[i].message.empty()) {
      std::fprintf(stderr, "query %zu: %s\n", i, answers[i].message.c_str());
    }
  }

  const OracleStats s = oracle.stats();
  if (args.oracle_stats) {
    std::printf(
        "oracle: %llu queries — %llu exact, %llu interpolated, %llu "
        "model-only, %llu computed, %llu pending, %llu failed; hydrated "
        "%llu cell(s), %llu torn line(s) skipped; interp fell through %llu "
        "(no bounds) + %llu (model-band reject)\n",
        static_cast<unsigned long long>(s.queries),
        static_cast<unsigned long long>(s.exact_hits),
        static_cast<unsigned long long>(s.interpolated),
        static_cast<unsigned long long>(s.model_only),
        static_cast<unsigned long long>(s.computed),
        static_cast<unsigned long long>(s.pending),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(s.hydrated_cells),
        static_cast<unsigned long long>(s.hydrate_skipped_lines),
        static_cast<unsigned long long>(s.interp_no_bounds),
        static_cast<unsigned long long>(s.interp_band_rejected));
  }
  if (!cfg.cache_path.empty()) {
    std::printf("oracle cache: %zu cell(s) in %s\n", oracle.cache_size(),
                cfg.cache_path.c_str());
  }
  return pending_or_failed > 0 ? 3 : 0;
}

ServeConfig build_serve_config(const Args& args) {
  ServeConfig cfg;
  cfg.socket_path = args.str("socket", "");
  cfg.oracle.cache_path = args.str("cache", "");
  cfg.oracle.allow_interpolation = !args.no_interpolate;
  cfg.oracle.allow_model = !args.no_model;
  cfg.oracle.no_compute = args.no_compute;
  cfg.oracle.max_band_deviation =
      args.num("max-band-dev", cfg.oracle.max_band_deviation);
  {
    std::stringstream paths{args.str("hydrate", "")};
    std::string p;
    while (std::getline(paths, p, ',')) {
      if (!p.empty()) cfg.oracle.hydrate_paths.push_back(p);
    }
  }
  cfg.request_deadline_ms =
      args.num("deadline-ms", cfg.request_deadline_ms);
  cfg.shed_queue_limit = static_cast<std::size_t>(args.integer(
      "shed-limit", static_cast<int>(cfg.shed_queue_limit)));
  cfg.compute_threads = args.integer("compute-threads", cfg.compute_threads);
  cfg.write_stall_ms = args.num("write-stall-ms", cfg.write_stall_ms);
  if (args.has("chaos")) {
    cfg.chaos = std::make_shared<ChaosInjector>(args.u64("chaos", 0));
  }
  return cfg;
}

// --smoke: self-host a daemon thread, round-trip a tiny compute query plus
// its exact re-read through a real socket client, and exit — the basis of
// the `serve_smoke` ctest.
int cmd_serve_smoke(ServeConfig cfg) {
  if (cfg.socket_path.empty()) {
    cfg.socket_path = "bbrnash-serve-smoke.sock";
  }
  OracleDaemon daemon{cfg};
  std::thread host{[&daemon] { (void)daemon.run(); }};
  for (int i = 0; i < 500 && !daemon.serving(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  int rc = 1;
  if (!daemon.serving()) {
    std::fprintf(stderr, "serve --smoke: daemon failed to start: %s\n",
                 daemon.error().c_str());
  } else {
    ClientConfig cc;
    cc.socket_path = cfg.socket_path;
    OracleClient client{cc};
    const std::string cell =
        "capacity=20 rtt=20 buffer-bdp=2 cubic=1 other=1 trials=1 "
        "duration=2 warmup=0.5 seed=1";
    std::vector<ServeReply> replies;
    const ClientStatus st = client.query_lines({cell, cell}, &replies);
    if (st != ClientStatus::kOk) {
      std::fprintf(stderr, "serve --smoke: client status %s\n",
                   to_string(st));
    } else if (replies[0].record.get_string("status") != "ok" ||
               replies[1].raw != replies[0].raw) {
      std::fprintf(stderr,
                   "serve --smoke: bad replies (status '%s', identical=%d)\n",
                   replies[0].record.get_string("status").c_str(),
                   static_cast<int>(replies[1].raw == replies[0].raw));
    } else {
      std::printf("serve --smoke: ok — fidelity %s then %s, bit-identical "
                  "re-read\n",
                  replies[0].record.get_string("fidelity").c_str(),
                  replies[1].record.get_string("fidelity").c_str());
      rc = 0;
    }
  }
  daemon.request_stop();
  host.join();
  const ServeStats s = daemon.stats();
  std::printf(
      "serve --smoke: %llu request(s), %llu inline, %llu computed, "
      "%llu shed, %llu timeout(s), %llu incident(s)\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.answered_inline),
      static_cast<unsigned long long>(s.computed),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.timeouts),
      static_cast<unsigned long long>(s.incidents));
  return rc;
}

int cmd_serve(const Args& args) {
  ServeConfig cfg = build_serve_config(args);
  if (args.smoke) return cmd_serve_smoke(std::move(cfg));
  if (cfg.socket_path.empty()) {
    std::fprintf(stderr, "serve requires --socket PATH\n");
    return usage();
  }
  cfg.handle_signals = true;
  OracleDaemon daemon{cfg};
  std::printf("bbrnash serve: listening on %s (cache: %s)\n",
              cfg.socket_path.c_str(),
              cfg.oracle.cache_path.empty() ? "<in-memory>"
                                            : cfg.oracle.cache_path.c_str());
  const bool clean = daemon.run();
  if (!clean) {
    std::fprintf(stderr, "bbrnash serve: %s\n", daemon.error().c_str());
    return 1;
  }
  const ServeStats s = daemon.stats();
  std::printf(
      "bbrnash serve: drained — %llu client(s), %llu request(s), %llu "
      "inline, %llu computed, %llu shed, %llu timeout(s), %llu "
      "incident(s)\n",
      static_cast<unsigned long long>(s.clients_accepted),
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.answered_inline),
      static_cast<unsigned long long>(s.computed),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.timeouts),
      static_cast<unsigned long long>(s.incidents));
  return 0;
}

int cmd_query(const Args& args) {
  ClientConfig cc;
  cc.socket_path = args.str("connect", "");
  if (cc.socket_path.empty()) {
    std::fprintf(stderr, "query requires --connect SOCKET\n");
    return usage();
  }
  cc.max_attempts = args.integer("retries", cc.max_attempts);
  cc.backoff_base_ms = args.num("backoff-ms", cc.backoff_base_ms);
  cc.jitter_seed = args.u64("jitter-seed", cc.jitter_seed);
  cc.reply_timeout_ms = args.num("timeout-ms", cc.reply_timeout_ms);

  // The query knobs on the command line form the base token map; each
  // --batch line overlays its own tokens (the `oracle` grammar) on a copy.
  std::map<std::string, std::string> base;
  for (const std::string& key : serve_query_keys()) {
    const auto it = args.kv.find(key);
    if (it != args.kv.end()) base[key] = it->second;
  }
  const auto to_line = [](const std::map<std::string, std::string>& kv) {
    std::string line;
    for (const auto& [k, v] : kv) {
      if (!line.empty()) line += ' ';
      line += k + "=" + v;
    }
    return line.empty() ? "cubic=1 other=1" : line;
  };
  std::vector<std::string> lines;
  if (args.has("batch")) {
    std::ifstream in{args.str("batch", "")};
    if (!in) {
      std::fprintf(stderr, "cannot open batch file '%s'\n",
                   args.str("batch", "").c_str());
      return 1;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::map<std::string, std::string> kv = base;
      try {
        for (const auto& [k, v] : parse_query_tokens(line)) kv[k] = v;
        (void)oracle_query_from_tokens(kv);  // validate before sending
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s:%zu: %s\n", args.str("batch", "").c_str(),
                     lineno, e.what());
        return 2;
      }
      lines.push_back(to_line(kv));
    }
    if (lines.empty()) {
      std::fprintf(stderr, "batch file '%s' holds no queries\n",
                   args.str("batch", "").c_str());
      return 2;
    }
  } else {
    (void)oracle_query_from_tokens(base);  // may throw -> usage via main
    lines.push_back(to_line(base));
  }

  OracleClient client{cc};
  std::vector<ServeReply> replies;
  const ClientStatus st = client.query_lines(lines, &replies);
  if (st != ClientStatus::kOk) {
    std::fprintf(stderr, "bbrnash query: %s (after %d reconnect(s))\n",
                 to_string(st), client.reconnects());
    return 1;
  }

  Table table({"q", "fidelity", "status", "reason", "cubic_mbps",
               "other_mbps", "band_dev"});
  int pending_or_failed = 0;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const JsonlRecord& r = replies[i].record;
    const bool is_ok = r.get_string("status") == "ok";
    if (!is_ok) ++pending_or_failed;
    table.add_row(
        {std::to_string(i), r.get_string("fidelity", "-"),
         r.get_string("status", "-"), r.get_string("reason", "-"),
         is_ok ? format_double(r.get_double("per_flow_cubic_mbps"), 3) : "-",
         is_ok ? format_double(r.get_double("per_flow_other_mbps"), 3) : "-",
         r.has("band_dev") ? format_double(r.get_double("band_dev"), 3)
                           : "n/a"});
  }
  table.print_aligned(std::cout);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const std::string msg = replies[i].record.get_string("message");
    if (!msg.empty()) std::fprintf(stderr, "query %zu: %s\n", i, msg.c_str());
  }
  if (client.reconnects() > 0) {
    std::fprintf(stderr, "bbrnash query: recovered over %d reconnect(s)\n",
                 client.reconnects());
  }
  return pending_or_failed > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::vector<std::string>& allowed = allowed_keys(cmd);
  if (allowed.empty()) {
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return usage();
  }

  Args args;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      if (cmd != "run") {
        std::fprintf(stderr, "unknown flag '--csv' for '%s'\n", cmd.c_str());
        return usage();
      }
      args.csv = true;
      continue;
    }
    if (std::strcmp(argv[i], "--empirical") == 0) {
      if (cmd != "nash") {
        std::fprintf(stderr, "unknown flag '--empirical' for '%s'\n",
                     cmd.c_str());
        return usage();
      }
      args.empirical = true;
      continue;
    }
    if (std::strcmp(argv[i], "--audit") == 0) {
      if (cmd == "model") {
        std::fprintf(stderr, "unknown flag '--audit' for '%s'\n", cmd.c_str());
        return usage();
      }
      args.audit = true;
      continue;
    }
    if (std::strcmp(argv[i], "--fabric-stats") == 0) {
      if (cmd != "sweep") {
        std::fprintf(stderr, "unknown flag '--fabric-stats' for '%s'\n",
                     cmd.c_str());
        return usage();
      }
      args.fabric_stats = true;
      continue;
    }
    if (std::strcmp(argv[i], "--smoke") == 0) {
      if (cmd != "serve") {
        std::fprintf(stderr, "unknown flag '--smoke' for '%s'\n", cmd.c_str());
        return usage();
      }
      args.smoke = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-compute") == 0 ||
        std::strcmp(argv[i], "--no-interpolate") == 0 ||
        std::strcmp(argv[i], "--no-model") == 0 ||
        std::strcmp(argv[i], "--oracle-stats") == 0) {
      const bool oracle_only = std::strcmp(argv[i], "--oracle-stats") == 0;
      if (cmd != "oracle" && (oracle_only || cmd != "serve")) {
        std::fprintf(stderr, "unknown flag '%s' for '%s'\n", argv[i],
                     cmd.c_str());
        return usage();
      }
      if (std::strcmp(argv[i], "--no-compute") == 0) args.no_compute = true;
      if (std::strcmp(argv[i], "--no-interpolate") == 0) {
        args.no_interpolate = true;
      }
      if (std::strcmp(argv[i], "--no-model") == 0) args.no_model = true;
      if (std::strcmp(argv[i], "--oracle-stats") == 0) {
        args.oracle_stats = true;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      const std::string key = argv[i] + 2;
      if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
        std::fprintf(stderr, "unknown flag '--%s' for '%s'\n", key.c_str(),
                     cmd.c_str());
        return usage();
      }
      args.kv[key] = argv[i + 1];
      ++i;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      return usage();
    }
  }

  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "model") return cmd_model(args);
    if (cmd == "nash") return cmd_nash(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "oracle") return cmd_oracle(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "query") return cmd_query(args);
  } catch (const std::invalid_argument& e) {
    // A malformed flag value is user error, not a crash: diagnose, show
    // the usage text, and exit 2 like every other bad-flag path.
    std::fprintf(stderr, "invalid flag value: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
