#include "util/units.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_EQ(from_ms(40), 40'000'000);
  EXPECT_EQ(from_sec(2), 2'000'000'000);
  EXPECT_EQ(from_us(3), 3'000);
  EXPECT_DOUBLE_EQ(to_ms(from_ms(40)), 40.0);
  EXPECT_DOUBLE_EQ(to_sec(from_sec(120)), 120.0);
  EXPECT_DOUBLE_EQ(to_us(from_us(7)), 7.0);
}

TEST(Units, FractionalInputs) {
  EXPECT_EQ(from_ms(0.5), 500'000);
  EXPECT_EQ(from_sec(0.001), 1'000'000);
}

TEST(Units, MbpsConversion) {
  // 50 Mbps = 6.25 MB/s.
  EXPECT_DOUBLE_EQ(mbps(50.0), 6.25e6);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(123.0)), 123.0);
}

TEST(Units, BdpBytesMatchesHandComputation) {
  // 100 Mbps * 40 ms = 12.5 MB/s * 0.04 s = 500 kB.
  EXPECT_EQ(bdp_bytes(mbps(100.0), from_ms(40)), 500'000);
}

TEST(Units, SerializationTimeExactWhenDivisible) {
  // 1250 bytes at 1.25 MB/s = exactly 1 ms.
  EXPECT_EQ(serialization_time(1250, 1.25e6), from_ms(1));
}

TEST(Units, SerializationTimeRoundsUp) {
  // 1 byte at 3 bytes/sec = 333333333.33.. ns -> must round UP.
  EXPECT_EQ(serialization_time(1, 3.0), 333'333'334);
}

TEST(Units, SerializationTimeZeroBytes) {
  EXPECT_EQ(serialization_time(0, 1e6), 0);
}

TEST(Units, SerializationTimeMonotoneInSize) {
  TimeNs prev = 0;
  for (Bytes n = 1; n <= 3000; n += 123) {
    const TimeNs t = serialization_time(n, mbps(50));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Units, SentinelsAreDistinct) {
  EXPECT_LT(kTimeNone, 0);
  EXPECT_GT(kTimeInf, from_sec(1e9));
}

}  // namespace
}  // namespace bbrnash
