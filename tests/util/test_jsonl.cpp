#include "util/jsonl.hpp"

#include <cstdio>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(JsonlRecord, TypedSetAndGet) {
  JsonlRecord rec;
  rec.set("s", "hello");
  rec.set("d", 2.5);
  rec.set("u", std::uint64_t{123});
  EXPECT_TRUE(rec.has("s"));
  EXPECT_FALSE(rec.has("missing"));
  EXPECT_EQ(rec.get_string("s"), "hello");
  EXPECT_EQ(rec.get_double("d"), 2.5);
  EXPECT_EQ(rec.get_u64("u"), 123u);
  // Integers coerce to double; strings do not.
  EXPECT_EQ(rec.get_double("u"), 123.0);
  EXPECT_EQ(rec.get_double("s", -1.0), -1.0);
  EXPECT_EQ(rec.get_u64("missing", 9), 9u);
}

TEST(JsonlRecord, IntOverloadRejectsNegativeValues) {
  JsonlRecord rec;
  rec.set("n", 7);  // non-negative ints are counters and store fine
  EXPECT_EQ(rec.get_u64("n"), 7u);
  EXPECT_THROW(rec.set("n", -1), std::invalid_argument);
  EXPECT_EQ(rec.get_u64("n"), 7u);  // failed set left the record untouched
}

TEST(JsonlRecord, EncodeParseRoundTrip) {
  JsonlRecord rec;
  rec.set("name", R"(quote " backslash \ newline
tab	done)");
  rec.set("third", 1.0 / 3.0);
  rec.set("tiny", 5e-324);  // smallest subnormal
  rec.set("neg", -0.125);
  rec.set("big", std::numeric_limits<std::uint64_t>::max());
  rec.set("zero", std::uint64_t{0});

  const auto back = JsonlRecord::parse(rec.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == rec);
  EXPECT_EQ(back->get_double("third"), 1.0 / 3.0);
  EXPECT_EQ(back->get_double("tiny"), 5e-324);
  EXPECT_EQ(back->get_u64("big"), std::numeric_limits<std::uint64_t>::max());
}

TEST(JsonlRecord, ParseRejectsMalformedLines) {
  EXPECT_FALSE(JsonlRecord::parse("").has_value());
  EXPECT_FALSE(JsonlRecord::parse("not json").has_value());
  EXPECT_FALSE(JsonlRecord::parse(R"({"a":1)").has_value());       // torn
  EXPECT_FALSE(JsonlRecord::parse(R"({"a":})").has_value());
  EXPECT_FALSE(JsonlRecord::parse(R"({"a":"unterminated)").has_value());
  EXPECT_FALSE(JsonlRecord::parse(R"({"a":1} trailing)").has_value());
  EXPECT_FALSE(JsonlRecord::parse(R"({"a":1,,"b":2})").has_value());
  EXPECT_TRUE(JsonlRecord::parse("{}").has_value());
  EXPECT_TRUE(JsonlRecord::parse(R"(  {"a":1}  )").has_value());
}

TEST(Jsonl, AppendAndReadBack) {
  const std::string path = testing::TempDir() + "jsonl_rw.jsonl";
  std::remove(path.c_str());

  EXPECT_TRUE(read_jsonl(path).empty());  // missing file is fine

  JsonlRecord a;
  a.set("i", std::uint64_t{1});
  JsonlRecord b;
  b.set("i", std::uint64_t{2});
  append_jsonl_line(path, a.encode());
  append_jsonl_line(path, b.encode());

  const auto records = read_jsonl(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].get_u64("i"), 1u);
  EXPECT_EQ(records[1].get_u64("i"), 2u);
}

TEST(Jsonl, ReadSkipsCorruptLines) {
  const std::string path = testing::TempDir() + "jsonl_corrupt.jsonl";
  std::remove(path.c_str());
  {
    std::ofstream out{path};
    out << R"({"ok":1})" << '\n';
    out << "garbage line\n";
    out << R"({"ok":2})" << '\n';
    out << R"({"torn":)";  // no newline, no close — crash mid-write
  }
  const auto records = read_jsonl(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].get_u64("ok"), 1u);
  EXPECT_EQ(records[1].get_u64("ok"), 2u);
}

}  // namespace
}  // namespace bbrnash
