#include "util/filters.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bbrnash {
namespace {

TEST(WindowedFilter, EmptyReturnsDefault) {
  WindowedFilter<double> f{FilterKind::kMax, 100, -1.0};
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.best(), -1.0);
  EXPECT_EQ(f.best_time(), kTimeNone);
}

TEST(WindowedFilter, TracksMaxWithinWindow) {
  WindowedFilter<double> f{FilterKind::kMax, 100, 0.0};
  f.update(0, 5);
  f.update(10, 3);
  f.update(20, 8);
  f.update(30, 1);
  EXPECT_DOUBLE_EQ(f.best(), 8.0);
  EXPECT_EQ(f.best_time(), 20);
}

TEST(WindowedFilter, ExpiresOldMaximum) {
  WindowedFilter<double> f{FilterKind::kMax, 100, 0.0};
  f.update(0, 9);
  f.update(50, 4);
  f.update(101, 2);  // t=0 sample now out of window
  EXPECT_DOUBLE_EQ(f.best(), 4.0);
  f.update(151, 1);  // t=50 out too
  EXPECT_DOUBLE_EQ(f.best(), 2.0);
}

TEST(WindowedFilter, AdvanceExpiresWithoutSample) {
  WindowedFilter<double> f{FilterKind::kMax, 100, -1.0};
  f.update(0, 9);
  f.advance(200);
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.best(), -1.0);
}

TEST(WindowedFilter, MinVariantTracksMinimum) {
  WindowedFilter<TimeNs> f{FilterKind::kMin, from_sec(10), kTimeInf};
  f.update(from_sec(1), from_ms(50));
  f.update(from_sec(2), from_ms(40));
  f.update(from_sec(3), from_ms(60));
  EXPECT_EQ(f.best(), from_ms(40));
  // Minimum expires after its window passes.
  f.update(from_sec(12) + 1, from_ms(55));
  EXPECT_EQ(f.best(), from_ms(55));
}

TEST(WindowedFilter, EqualValuesKeepNewest) {
  // A new equal sample replaces the old so the window extends.
  WindowedFilter<double> f{FilterKind::kMax, 100, 0.0};
  f.update(0, 5);
  f.update(90, 5);
  f.update(150, 1);  // t=0 expired, but the t=90 five remains
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
}

TEST(WindowedFilter, SetWindowShrinksRetroactively) {
  WindowedFilter<double> f{FilterKind::kMax, 1000, 0.0};
  f.update(0, 9);
  f.update(500, 5);
  f.advance(600);
  f.set_window(100);
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
}

TEST(WindowedFilter, ResetEmpties) {
  WindowedFilter<double> f{FilterKind::kMax, 100, 0.0};
  f.update(0, 9);
  f.reset();
  EXPECT_TRUE(f.empty());
}

// Property sweep: the exact filter agrees with a brute-force recomputation
// over random sample streams.
struct FilterSweepParam {
  FilterKind kind;
  TimeNs window;
  std::uint64_t seed;
};

class WindowedFilterProperty
    : public ::testing::TestWithParam<FilterSweepParam> {};

TEST_P(WindowedFilterProperty, MatchesBruteForce) {
  const auto p = GetParam();
  WindowedFilter<double> f{p.kind, p.window, -1e18};
  Rng rng{p.seed};

  std::vector<std::pair<TimeNs, double>> samples;
  TimeNs now = 0;
  for (int i = 0; i < 500; ++i) {
    now += static_cast<TimeNs>(rng.next_below(40));
    const double v = rng.uniform(0, 1000);
    samples.emplace_back(now, v);
    f.update(now, v);

    double best = -1e18;
    bool any = false;
    for (const auto& [t, x] : samples) {
      if (t + p.window < now) continue;
      if (!any) {
        best = x;
        any = true;
      } else if (p.kind == FilterKind::kMax ? x > best : x < best) {
        best = x;
      }
    }
    ASSERT_TRUE(any);
    ASSERT_DOUBLE_EQ(f.best(), best) << "at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowedFilterProperty,
    ::testing::Values(FilterSweepParam{FilterKind::kMax, 100, 1},
                      FilterSweepParam{FilterKind::kMax, 37, 2},
                      FilterSweepParam{FilterKind::kMin, 100, 3},
                      FilterSweepParam{FilterKind::kMin, 5, 4},
                      FilterSweepParam{FilterKind::kMax, 1000, 5},
                      FilterSweepParam{FilterKind::kMin, 1, 6}));

TEST(KernelMinmaxFilter, TracksRisingMax) {
  KernelMinmaxFilter<double> f{100, 0.0};
  f.update_max(0, 1);
  f.update_max(10, 5);
  f.update_max(20, 3);
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
}

TEST(KernelMinmaxFilter, ForgetsStaleMax) {
  KernelMinmaxFilter<double> f{100, 0.0};
  f.update_max(0, 100);
  for (TimeNs t = 10; t <= 300; t += 10) f.update_max(t, 10);
  // After several windows the 100 must be gone.
  EXPECT_DOUBLE_EQ(f.best(), 10.0);
}

TEST(KernelMinmaxFilter, RisingSampleAlwaysAdopted) {
  // Whatever the slot state, a sample >= the current best replaces it.
  KernelMinmaxFilter<double> kernel{50, 0.0};
  Rng rng{7};
  TimeNs now = 0;
  double top = 0.0;
  for (int i = 0; i < 300; ++i) {
    now += static_cast<TimeNs>(rng.next_below(9));
    const double v = rng.uniform(0, 100);
    kernel.update_max(now, v);
    top = std::max(top, v);
    if (v >= top) {
      EXPECT_DOUBLE_EQ(kernel.best(), v);
    }
    // The reported best is never above the all-time max and never below
    // the newest sample (which is always inside the window).
    EXPECT_LE(kernel.best(), top + 1e-9);
    EXPECT_GE(kernel.best() + 1e-9, v);
  }
}

// Direct transliteration of the kernel's lib/minmax.c running-max (slots
// named s[0..2], same strict comparisons, same win/4 and win/2 subwindow
// thresholds), used as the oracle for the differential test below. Times
// are int64 nanoseconds instead of the kernel's wrapping u32 jiffies —
// the simulator never wraps.
struct MinmaxRef {
  struct S {
    TimeNs t = 0;
    double v = 0;
  };
  S s[3];
  bool empty = true;

  double reset(TimeNs t, double meas) {
    s[0] = s[1] = s[2] = S{t, meas};
    empty = false;
    return s[0].v;
  }

  double subwin_update(TimeNs win, TimeNs t, double meas) {
    const TimeNs dt = t - s[0].t;
    if (dt > win) {
      s[0] = s[1];
      s[1] = s[2];
      s[2] = S{t, meas};
      if (t - s[0].t > win) {
        s[0] = s[1];
        s[1] = s[2];
      }
    } else if (s[1].t == s[0].t && dt > win / 4) {
      s[2] = s[1] = S{t, meas};
    } else if (s[2].t == s[1].t && dt > win / 2) {
      s[2] = S{t, meas};
    }
    return s[0].v;
  }

  double running_max(TimeNs win, TimeNs t, double meas) {
    if (empty || meas >= s[0].v || t - s[2].t > win) {
      return reset(t, meas);
    }
    if (meas >= s[1].v) {
      s[2] = s[1] = S{t, meas};
    } else if (meas >= s[2].v) {
      s[2] = S{t, meas};
    }
    return subwin_update(win, t, meas);
  }
};

// Differential test: KernelMinmaxFilter must match the lib/minmax.c
// transliteration sample-for-sample, under adversarial timestamp gaps that
// sit exactly on every boundary the algorithm branches on — most
// importantly the window edge (now - s[2].t == window, which must NOT
// reset: the kernel's staleness test is strictly greater-than) — and it
// must stay bounded by the exact WindowedFilter.
TEST(KernelMinmaxFilter, DifferentialMatchesLinuxMinmaxC) {
  constexpr TimeNs kWin = 1000;
  // Gap menu hits every comparison edge: 0 (same timestamp), the win/4 and
  // win/2 subwindow thresholds (and their +-1 neighbours), the exact
  // window edge kWin (kept) and kWin + 1 (stale -> reset), plus a huge
  // jump far past the window.
  constexpr TimeNs kGaps[] = {0,        1,         kWin / 4, kWin / 4 + 1,
                              kWin / 2, kWin / 2 + 1, kWin - 1, kWin,
                              kWin + 1, 3 * kWin};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    KernelMinmaxFilter<double> kernel{kWin, 0.0};
    MinmaxRef ref;
    WindowedFilter<double> exact{FilterKind::kMax, kWin, 0.0};
    Rng rng{seed};
    TimeNs now = 0;
    for (int i = 0; i < 2000; ++i) {
      // Half the steps draw from the adversarial menu, half are random.
      const TimeNs gap = (i % 2 == 0)
                             ? kGaps[rng.next_below(std::size(kGaps))]
                             : static_cast<TimeNs>(rng.next_below(kWin / 3));
      now += gap;
      // Coarse values make ties (the >= branches) common.
      const double v = static_cast<double>(rng.next_below(12));
      const double want = ref.running_max(kWin, now, v);
      kernel.update_max(now, v);
      exact.update(now, v);
      ASSERT_DOUBLE_EQ(kernel.best(), want)
          << "diverged from lib/minmax.c at step " << i << " seed " << seed
          << " now " << now << " gap " << gap << " v " << v;
      // The 3-slot approximation keeps real in-window samples, so it can
      // only under-estimate the exact windowed max, and never falls below
      // the newest sample.
      ASSERT_LE(kernel.best(), exact.best())
          << "over-estimated the true max at step " << i;
      ASSERT_GE(kernel.best(), v);
    }
  }
}

// The exact window edge, pinned deterministically: a sample aged exactly
// `window` is still in the window (strict > staleness test). One
// nanosecond later it is stale and the filter resets to the new sample.
TEST(KernelMinmaxFilter, ExactWindowEdgeDoesNotReset) {
  constexpr TimeNs kWin = 1000;
  KernelMinmaxFilter<double> f{kWin, 0.0};
  f.update_max(0, 100.0);   // fills all three slots at t = 0
  f.update_max(kWin, 1.0);  // now - s[2].t == window: NOT stale
  EXPECT_DOUBLE_EQ(f.best(), 100.0);

  KernelMinmaxFilter<double> g{kWin, 0.0};
  g.update_max(0, 100.0);
  g.update_max(kWin + 1, 1.0);  // one past the edge: everything expired
  EXPECT_DOUBLE_EQ(g.best(), 1.0);
}

}  // namespace
}  // namespace bbrnash
