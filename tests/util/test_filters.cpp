#include "util/filters.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bbrnash {
namespace {

TEST(WindowedFilter, EmptyReturnsDefault) {
  WindowedFilter<double> f{FilterKind::kMax, 100, -1.0};
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.best(), -1.0);
  EXPECT_EQ(f.best_time(), kTimeNone);
}

TEST(WindowedFilter, TracksMaxWithinWindow) {
  WindowedFilter<double> f{FilterKind::kMax, 100, 0.0};
  f.update(0, 5);
  f.update(10, 3);
  f.update(20, 8);
  f.update(30, 1);
  EXPECT_DOUBLE_EQ(f.best(), 8.0);
  EXPECT_EQ(f.best_time(), 20);
}

TEST(WindowedFilter, ExpiresOldMaximum) {
  WindowedFilter<double> f{FilterKind::kMax, 100, 0.0};
  f.update(0, 9);
  f.update(50, 4);
  f.update(101, 2);  // t=0 sample now out of window
  EXPECT_DOUBLE_EQ(f.best(), 4.0);
  f.update(151, 1);  // t=50 out too
  EXPECT_DOUBLE_EQ(f.best(), 2.0);
}

TEST(WindowedFilter, AdvanceExpiresWithoutSample) {
  WindowedFilter<double> f{FilterKind::kMax, 100, -1.0};
  f.update(0, 9);
  f.advance(200);
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.best(), -1.0);
}

TEST(WindowedFilter, MinVariantTracksMinimum) {
  WindowedFilter<TimeNs> f{FilterKind::kMin, from_sec(10), kTimeInf};
  f.update(from_sec(1), from_ms(50));
  f.update(from_sec(2), from_ms(40));
  f.update(from_sec(3), from_ms(60));
  EXPECT_EQ(f.best(), from_ms(40));
  // Minimum expires after its window passes.
  f.update(from_sec(12) + 1, from_ms(55));
  EXPECT_EQ(f.best(), from_ms(55));
}

TEST(WindowedFilter, EqualValuesKeepNewest) {
  // A new equal sample replaces the old so the window extends.
  WindowedFilter<double> f{FilterKind::kMax, 100, 0.0};
  f.update(0, 5);
  f.update(90, 5);
  f.update(150, 1);  // t=0 expired, but the t=90 five remains
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
}

TEST(WindowedFilter, SetWindowShrinksRetroactively) {
  WindowedFilter<double> f{FilterKind::kMax, 1000, 0.0};
  f.update(0, 9);
  f.update(500, 5);
  f.advance(600);
  f.set_window(100);
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
}

TEST(WindowedFilter, ResetEmpties) {
  WindowedFilter<double> f{FilterKind::kMax, 100, 0.0};
  f.update(0, 9);
  f.reset();
  EXPECT_TRUE(f.empty());
}

// Property sweep: the exact filter agrees with a brute-force recomputation
// over random sample streams.
struct FilterSweepParam {
  FilterKind kind;
  TimeNs window;
  std::uint64_t seed;
};

class WindowedFilterProperty
    : public ::testing::TestWithParam<FilterSweepParam> {};

TEST_P(WindowedFilterProperty, MatchesBruteForce) {
  const auto p = GetParam();
  WindowedFilter<double> f{p.kind, p.window, -1e18};
  Rng rng{p.seed};

  std::vector<std::pair<TimeNs, double>> samples;
  TimeNs now = 0;
  for (int i = 0; i < 500; ++i) {
    now += static_cast<TimeNs>(rng.next_below(40));
    const double v = rng.uniform(0, 1000);
    samples.emplace_back(now, v);
    f.update(now, v);

    double best = -1e18;
    bool any = false;
    for (const auto& [t, x] : samples) {
      if (t + p.window < now) continue;
      if (!any) {
        best = x;
        any = true;
      } else if (p.kind == FilterKind::kMax ? x > best : x < best) {
        best = x;
      }
    }
    ASSERT_TRUE(any);
    ASSERT_DOUBLE_EQ(f.best(), best) << "at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowedFilterProperty,
    ::testing::Values(FilterSweepParam{FilterKind::kMax, 100, 1},
                      FilterSweepParam{FilterKind::kMax, 37, 2},
                      FilterSweepParam{FilterKind::kMin, 100, 3},
                      FilterSweepParam{FilterKind::kMin, 5, 4},
                      FilterSweepParam{FilterKind::kMax, 1000, 5},
                      FilterSweepParam{FilterKind::kMin, 1, 6}));

TEST(KernelMinmaxFilter, TracksRisingMax) {
  KernelMinmaxFilter<double> f{100, 0.0};
  f.update_max(0, 1);
  f.update_max(10, 5);
  f.update_max(20, 3);
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
}

TEST(KernelMinmaxFilter, ForgetsStaleMax) {
  KernelMinmaxFilter<double> f{100, 0.0};
  f.update_max(0, 100);
  for (TimeNs t = 10; t <= 300; t += 10) f.update_max(t, 10);
  // After several windows the 100 must be gone.
  EXPECT_DOUBLE_EQ(f.best(), 10.0);
}

TEST(KernelMinmaxFilter, RisingSampleAlwaysAdopted) {
  // Whatever the slot state, a sample >= the current best replaces it.
  KernelMinmaxFilter<double> kernel{50, 0.0};
  Rng rng{7};
  TimeNs now = 0;
  double top = 0.0;
  for (int i = 0; i < 300; ++i) {
    now += static_cast<TimeNs>(rng.next_below(9));
    const double v = rng.uniform(0, 100);
    kernel.update_max(now, v);
    top = std::max(top, v);
    if (v >= top) {
      EXPECT_DOUBLE_EQ(kernel.best(), v);
    }
    // The reported best is never above the all-time max and never below
    // the newest sample (which is always inside the window).
    EXPECT_LE(kernel.best(), top + 1e-9);
    EXPECT_GE(kernel.best() + 1e-9, v);
  }
}

}  // namespace
}  // namespace bbrnash
