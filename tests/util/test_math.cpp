#include "util/math.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(FindRootBisect, FindsSimpleLinearRoot) {
  const auto root = find_root_bisect([](double x) { return x - 3.0; }, 0, 10);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, 3.0, 1e-8);
}

TEST(FindRootBisect, FindsQuadraticRootInsideBracket) {
  const auto root =
      find_root_bisect([](double x) { return x * x - 2.0; }, 0, 2);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, std::sqrt(2.0), 1e-8);
}

TEST(FindRootBisect, AcceptsReversedBracket) {
  const auto root = find_root_bisect([](double x) { return x - 3.0; }, 10, 0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, 3.0, 1e-8);
}

TEST(FindRootBisect, ReturnsEndpointWhenRootAtBoundary) {
  const auto at_lo = find_root_bisect([](double x) { return x; }, 0, 5);
  ASSERT_TRUE(at_lo.has_value());
  EXPECT_DOUBLE_EQ(*at_lo, 0.0);

  const auto at_hi = find_root_bisect([](double x) { return x - 5.0; }, 0, 5);
  ASSERT_TRUE(at_hi.has_value());
  EXPECT_DOUBLE_EQ(*at_hi, 5.0);
}

TEST(FindRootBisect, RejectsNonStraddlingBracket) {
  EXPECT_FALSE(
      find_root_bisect([](double x) { return x + 1.0; }, 0, 5).has_value());
  EXPECT_FALSE(
      find_root_bisect([](double x) { return -x - 1.0; }, 0, 5).has_value());
}

TEST(FindRootBisect, HonoursTolerance) {
  RootOptions opts;
  opts.tolerance = 1e-3;
  const auto root =
      find_root_bisect([](double x) { return x - 1.0 / 3.0; }, 0, 1, opts);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, 1.0 / 3.0, 1e-3);
}

TEST(FindRootBisect, SteepFunctionStillConverges) {
  const auto root = find_root_bisect(
      [](double x) { return std::exp(30 * x) - std::exp(15.0); }, 0, 1);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, 0.5, 1e-7);
}

TEST(InverseLerp, MapsLinearly) {
  EXPECT_DOUBLE_EQ(inverse_lerp(0, 10, 5), 0.5);
  EXPECT_DOUBLE_EQ(inverse_lerp(10, 20, 10), 0.0);
  EXPECT_DOUBLE_EQ(inverse_lerp(10, 20, 20), 1.0);
}

TEST(InverseLerp, ClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(inverse_lerp(0, 10, -5), 0.0);
  EXPECT_DOUBLE_EQ(inverse_lerp(0, 10, 15), 1.0);
}

TEST(InverseLerp, DegenerateRangeIsZero) {
  EXPECT_DOUBLE_EQ(inverse_lerp(3, 3, 3), 0.0);
}

TEST(NearlyEqual, AbsoluteForSmallNumbers) {
  EXPECT_TRUE(nearly_equal(1e-12, 0.0, 1e-9));
  EXPECT_FALSE(nearly_equal(1e-6, 0.0, 1e-9));
}

TEST(NearlyEqual, RelativeForLargeNumbers) {
  EXPECT_TRUE(nearly_equal(1e9, 1e9 * (1 + 1e-10), 1e-9));
  EXPECT_FALSE(nearly_equal(1e9, 1e9 * 1.01, 1e-9));
}

}  // namespace
}  // namespace bbrnash
