#include "util/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({std::string{"1"}, std::string{"x"}});
  t.add_row({std::string{"2"}, std::string{"y"}});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n2,y\n");
}

TEST(Table, DoubleRowsAreFormatted) {
  Table t({"v"});
  t.add_row(std::vector<double>{1.23456}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n1.23\n");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({std::string{"1"}});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(Table, LongRowsAreTruncatedToHeaderWidth) {
  Table t({"a"});
  t.add_row({std::string{"1"}, std::string{"extra"}});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n1\n");
}

TEST(Table, AlignedOutputHasRuleAndColumns) {
  Table t({"col", "x"});
  t.add_row({std::string{"value"}, std::string{"1"}});
  std::ostringstream os;
  t.print_aligned(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);  // widest cell is "value"
  EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b"});
  EXPECT_EQ(t.column_count(), 2u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({std::string{"1"}, std::string{"2"}});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace bbrnash
