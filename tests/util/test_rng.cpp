#include "util/rng.hpp"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedReproduces) {
  Rng r{5};
  const auto first = r.next_u64();
  r.next_u64();
  r.reseed(5);
  EXPECT_EQ(r.next_u64(), first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r{9};
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r{11};
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroAndOneAreZero) {
  Rng r{13};
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r{17};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformRange) {
  Rng r{19};
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-5.0, 5.0);
    ASSERT_GE(x, -5.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r{23};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r{29};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.fork();
  // Child stream should not replay the parent's continuation.
  Rng parent_copy{31};
  parent_copy.next_u64();  // account for the fork draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += child.next_u64() == parent_copy.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng r{37};
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace bbrnash
