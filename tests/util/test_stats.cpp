#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance (n-1 denominator) of this classic sample is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(TimeWeightedAverage, ConstantSignal) {
  TimeWeightedAverage a;
  a.update(0.0, 5.0);
  a.update(10.0, 5.0);
  EXPECT_DOUBLE_EQ(a.average(), 5.0);
  EXPECT_DOUBLE_EQ(a.observed_span(), 10.0);
}

TEST(TimeWeightedAverage, PiecewiseConstantSignal) {
  TimeWeightedAverage a;
  a.update(0.0, 10.0);  // 10 for t in [0, 2)
  a.update(2.0, 0.0);   // 0 for t in [2, 6)
  a.update(6.0, 5.0);   // 5 for t in [6, 10)
  a.update(10.0, 0.0);
  // (10*2 + 0*4 + 5*4) / 10 = 4.
  EXPECT_DOUBLE_EQ(a.average(), 4.0);
}

TEST(TimeWeightedAverage, FirstUpdateOnlyAnchors) {
  TimeWeightedAverage a;
  a.update(5.0, 100.0);
  EXPECT_DOUBLE_EQ(a.average(), 0.0);  // no span observed yet
  a.update(6.0, 0.0);
  EXPECT_DOUBLE_EQ(a.average(), 100.0);
}

TEST(TimeWeightedAverage, IgnoresNonPositiveDt) {
  TimeWeightedAverage a;
  a.update(1.0, 10.0);
  a.update(1.0, 20.0);  // same instant: value replaced, no integration
  a.update(2.0, 0.0);
  EXPECT_DOUBLE_EQ(a.average(), 20.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // Quartile of {1,2,3,4}: numpy-style linear interpolation gives 1.75.
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.25), 1.75);
}

TEST(Percentile, ExtremesAreMinAndMax) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 1.0), 9.0);
}

TEST(Percentile, ClampsQuantile) {
  EXPECT_DOUBLE_EQ(percentile({1, 2}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2}, 2.0), 2.0);
}

TEST(MeanOf, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
}

TEST(JainFairness, TotallyUnfair) {
  // One flow hogs everything: index -> 1/n.
  EXPECT_NEAR(jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZeroAreFairByConvention) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
}

}  // namespace
}  // namespace bbrnash
