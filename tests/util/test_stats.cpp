#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance (n-1 denominator) of this classic sample is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(TimeWeightedAverage, ConstantSignal) {
  TimeWeightedAverage a;
  a.update(0.0, 5.0);
  a.update(10.0, 5.0);
  EXPECT_DOUBLE_EQ(a.average(), 5.0);
  EXPECT_DOUBLE_EQ(a.observed_span(), 10.0);
}

TEST(TimeWeightedAverage, PiecewiseConstantSignal) {
  TimeWeightedAverage a;
  a.update(0.0, 10.0);  // 10 for t in [0, 2)
  a.update(2.0, 0.0);   // 0 for t in [2, 6)
  a.update(6.0, 5.0);   // 5 for t in [6, 10)
  a.update(10.0, 0.0);
  // (10*2 + 0*4 + 5*4) / 10 = 4.
  EXPECT_DOUBLE_EQ(a.average(), 4.0);
}

TEST(TimeWeightedAverage, FirstUpdateOnlyAnchors) {
  TimeWeightedAverage a;
  a.update(5.0, 100.0);
  EXPECT_DOUBLE_EQ(a.average(), 0.0);  // no span observed yet
  a.update(6.0, 0.0);
  EXPECT_DOUBLE_EQ(a.average(), 100.0);
}

TEST(TimeWeightedAverage, IgnoresNonPositiveDt) {
  TimeWeightedAverage a;
  a.update(1.0, 10.0);
  a.update(1.0, 20.0);  // same instant: value replaced, no integration
  a.update(2.0, 0.0);
  EXPECT_DOUBLE_EQ(a.average(), 20.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // Quartile of {1,2,3,4}: numpy-style linear interpolation gives 1.75.
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.25), 1.75);
}

TEST(Percentile, ExtremesAreMinAndMax) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 1.0), 9.0);
}

TEST(Percentile, ClampsQuantile) {
  EXPECT_DOUBLE_EQ(percentile({1, 2}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2}, 2.0), 2.0);
}

// Small-sample pins: bench_oracle_queries carried its own truncating
// percentile (idx = size_t(p * (n-1)), no interpolation) whose p99 of <100
// samples silently collapsed to a lower rank. These pin the shared
// implementation's behaviour at exactly the sizes where that bug bit.
TEST(Percentile, SingleSampleIsThatSampleAtEveryQuantile) {
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.99), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 1.0), 7.5);
}

TEST(Percentile, TwoSamplesInterpolateLinearly) {
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile({20, 10}, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 0.99), 19.9);  // truncation gave 10
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 1.0), 20.0);
}

TEST(Percentile, ThreeSamplesHitAndBracketRanks) {
  // pos = q * 2: q=0.5 lands exactly on the middle rank, q=0.25/0.75
  // bracket it, q=0.99 must stay between the top two samples (the
  // truncating version returned the median for every q in [0.5, 1)).
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 0.25), 15.0);
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 0.75), 25.0);
  EXPECT_DOUBLE_EQ(percentile({30, 10, 20}, 0.99), 29.8);
}

TEST(Percentile, ExactRankBoundariesNeedNoInterpolation) {
  // With 5 samples, q in {0, .25, .5, .75, 1} lands exactly on a rank;
  // the interpolation term must vanish (frac == 0) rather than bleed into
  // the neighbour.
  const std::vector<double> s{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(s, 0.00), 1.0);
  EXPECT_DOUBLE_EQ(percentile(s, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(s, 0.50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(s, 0.75), 4.0);
  EXPECT_DOUBLE_EQ(percentile(s, 1.00), 5.0);
}

TEST(Percentile, P99NeverIndexesPastTheEnd) {
  // 99 samples: pos = 0.99 * 98 = 97.02 — lo=97, hi=98 (the last valid
  // index). The interpolated value must stay within [sample 98, sample 99].
  std::vector<double> s;
  for (int i = 1; i <= 99; ++i) s.push_back(static_cast<double>(i));
  const double p99 = percentile(s, 0.99);
  EXPECT_GE(p99, 98.0);
  EXPECT_LE(p99, 99.0);
  EXPECT_DOUBLE_EQ(p99, 98.02);
}

TEST(MeanOf, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
}

TEST(JainFairness, TotallyUnfair) {
  // One flow hogs everything: index -> 1/n.
  EXPECT_NEAR(jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZeroAreFairByConvention) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
}

}  // namespace
}  // namespace bbrnash
