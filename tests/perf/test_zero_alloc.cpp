// Zero-allocation assertion for the simulator hot path.
//
// This binary links `bbrnash_alloccount`, which replaces the global
// allocation functions with counting versions (src/util/alloc_counter.*).
// The test wires a dumbbell directly onto the simulator — same shape as
// bench_perf_simcore, scaled down to test size — pre-sizes every pool,
// runs past warmup, and then requires that the steady-state window
// performs *zero* operator new / delete calls. Steady-state allocation
// counts depend only on the simulated workload (never on wall-clock
// timing), so the exact-zero assertion is deterministic and CI-safe, and
// it holds in sanitizer builds too: the sanitize/tsan presets run this
// test, so a pooling regression fails loudly everywhere.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cc/congestion_control.hpp"
#include "flow/receiver.hpp"
#include "flow/sender.hpp"
#include "net/bottleneck_link.hpp"
#include "net/delay_line.hpp"
#include "net/impairment.hpp"
#include "sim/simulator.hpp"
#include "util/alloc_counter.hpp"
#include "util/units.hpp"

namespace bbrnash {
namespace {

struct Delivery {
  Packet pkt;
  TimeNs sojourn;
};

struct SteadyAllocs {
  std::uint64_t news = 0;
  std::uint64_t deletes = 0;
  std::uint64_t events = 0;
};

/// Runs `bbr_flows` + `cubic_flows` over a shared bottleneck and returns
/// the allocation counts observed between `warmup` and `duration`.
SteadyAllocs run_dumbbell(int bbr_flows, int cubic_flows, BytesPerSec capacity,
                          double buffer_bdps, const ImpairmentConfig& impair,
                          TimeNs warmup, TimeNs duration) {
  const auto n = static_cast<std::uint32_t>(bbr_flows + cubic_flows);
  const TimeNs rtt = from_ms(40);
  Simulator sim;
  const Bytes bdp = bdp_bytes(capacity, rtt);
  const Bytes buffer = std::max<Bytes>(
      3 * (kDefaultMss + kHeaderBytes),
      static_cast<Bytes>(static_cast<double>(bdp) * buffer_bdps));
  BottleneckLink link{sim, capacity, buffer, n};

  // Same pre-sizing policy as the perf harness: every pool past its
  // expected high-water mark, so steady state never grows one.
  const auto total_window_pkts = static_cast<std::size_t>(
      (bdp + buffer) / (kDefaultMss + kHeaderBytes) + 1);
  const std::size_t per_flow_pkts = 4 * total_window_pkts / n + 512;
  sim.reserve_events(16 * total_window_pkts + 4096);

  std::vector<std::unique_ptr<Sender>> senders;
  std::vector<std::unique_ptr<Receiver>> receivers;
  std::vector<std::unique_ptr<DelayLine<Delivery>>> fwd;
  std::vector<std::unique_ptr<DelayLine<Ack>>> rev;
  std::vector<std::unique_ptr<ImpairmentStage<Packet>>> stages(n);
  senders.reserve(n);
  receivers.reserve(n);
  fwd.reserve(n);
  rev.reserve(n);

  for (std::uint32_t i = 0; i < n; ++i) {
    receivers.push_back(std::make_unique<Receiver>(i));
    fwd.push_back(std::make_unique<DelayLine<Delivery>>(sim, rtt / 2));
    rev.push_back(std::make_unique<DelayLine<Ack>>(sim, rtt - rtt / 2));
    if (impair.any()) {
      stages[i] = std::make_unique<ImpairmentStage<Packet>>(sim, impair,
                                                            1000 + i);
      stages[i]->set_sink([&link](const Packet& p) { link.send(p); });
    }

    CcConfig cfg;
    cfg.seed = 77 + i;
    const CcKind kind = i < static_cast<std::uint32_t>(bbr_flows)
                            ? CcKind::kBbr
                            : CcKind::kCubic;
    ImpairmentStage<Packet>* stage = stages[i].get();
    senders.push_back(std::make_unique<Sender>(
        sim, i, SenderConfig{}, make_congestion_control(kind, cfg),
        [&link, stage](const Packet& p) {
          if (stage != nullptr) {
            stage->send(p);
          } else {
            link.send(p);
          }
        }));
    senders.back()->reserve_windows(per_flow_pkts);
    receivers.back()->reserve_reorder(per_flow_pkts);

    fwd[i]->set_sink([&receivers, i](const Delivery& d) {
      receivers[i]->on_packet(d.pkt, d.sojourn);
    });
    receivers[i]->set_ack_sink(
        [&rev, i](const Ack& ack) { rev[i]->send(ack); });
    rev[i]->set_sink(
        [&senders, i](const Ack& ack) { senders[i]->on_ack(ack); });
  }
  link.set_sink([&sim, &fwd](const Packet& pkt) {
    const TimeNs sojourn =
        pkt.enqueued_at == kTimeNone ? 0 : sim.now() - pkt.enqueued_at;
    fwd[pkt.flow]->send(Delivery{pkt, sojourn});
  });

  for (std::uint32_t i = 0; i < n; ++i) {
    senders[i]->start(static_cast<TimeNs>(i) * (rtt / std::max(1u, n)));
  }

  sim.run_until(warmup);
  const std::uint64_t warm_events = sim.events_executed();
  const std::uint64_t warm_news = allocs::news();
  const std::uint64_t warm_deletes = allocs::deletes();
  sim.run_until(duration);

  SteadyAllocs out;
  out.news = allocs::news() - warm_news;
  out.deletes = allocs::deletes() - warm_deletes;
  out.events = sim.events_executed() - warm_events;
  return out;
}

// The paper's Fig. 3 shape: one BBR vs one CUBIC flow. After warmup the
// entire event loop — heap maintenance, slot pool, packet rings, CC state,
// pacing — must run without touching the allocator.
TEST(ZeroAlloc, TwoFlowSteadyStateAllocatesNothing) {
  const SteadyAllocs a =
      run_dumbbell(1, 1, mbps(50), 1.0, ImpairmentConfig{}, from_sec(2),
                   from_sec(5));
  EXPECT_GT(a.events, 10000u) << "scenario too small to be meaningful";
  EXPECT_EQ(a.news, 0u) << "steady-state hot path allocated";
  EXPECT_EQ(a.deletes, 0u) << "steady-state hot path freed";
}

// Many flows: per-flow pools and the shared event heap all at their
// high-water marks simultaneously.
TEST(ZeroAlloc, TenFlowSteadyStateAllocatesNothing) {
  const SteadyAllocs a =
      run_dumbbell(5, 5, mbps(100), 1.0, ImpairmentConfig{}, from_sec(2),
                   from_sec(4));
  EXPECT_GT(a.events, 10000u);
  EXPECT_EQ(a.news, 0u) << "steady-state hot path allocated";
  EXPECT_EQ(a.deletes, 0u) << "steady-state hot path freed";
}

// Loss + jitter + reordering drives the retransmit and out-of-order
// reassembly paths, which historically hid per-packet allocations.
TEST(ZeroAlloc, ImpairedSteadyStateAllocatesNothing) {
  ImpairmentConfig impair;
  impair.loss_rate = 0.005;
  impair.jitter = from_ms(2);
  impair.reorder_rate = 0.001;
  impair.reorder_delay = from_ms(5);
  const SteadyAllocs a =
      run_dumbbell(1, 1, mbps(50), 1.0, impair, from_sec(2), from_sec(5));
  EXPECT_GT(a.events, 10000u);
  EXPECT_EQ(a.news, 0u) << "steady-state hot path allocated";
  EXPECT_EQ(a.deletes, 0u) << "steady-state hot path freed";
}

}  // namespace
}  // namespace bbrnash
