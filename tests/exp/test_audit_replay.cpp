// Audit-enabled golden replay: re-runs the simulator at the operating
// points the paper's figures sweep (100 Mbps / 40 ms, 1..30 BDP buffers,
// read from the checked-in golden tables) with the conservation audit on,
// and requires every run to finish RunStatus::kOk — i.e. zero ledger
// violations, zero queue-bound breaches, zero NaN/Inf model outputs —
// across clean, impaired, and capacity-varying scenarios, 1v1 and 5v5.
//
// The audit asserts *internal* consistency, so this is the complement of
// the golden model pins: those freeze outputs, this proves the dynamics
// that produce them conserve every byte on the way.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/run_outcome.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_runner.hpp"
#include "model/network_params.hpp"
#include "util/jsonl.hpp"
#include "util/units.hpp"

namespace bbrnash {
namespace {

constexpr double kCapacityMbps = 100.0;
constexpr double kRttMs = 40.0;

/// The buffer sizes (in BDP) the golden figure tables sweep, recovered
/// from the checked-in table itself so replay and pins cannot drift apart.
std::vector<double> golden_buffer_bdps() {
  const std::string path =
      std::string{BBRNASH_GOLDEN_DIR} + "/mishra_two_flow.jsonl";
  std::vector<double> bdps;
  for (const JsonlRecord& rec : read_jsonl(path)) {
    bdps.push_back(rec.get_double("buffer_bdp"));
  }
  return bdps;
}

Scenario audited_scenario(double buffer_bdp, int cubic, int bbr) {
  const NetworkParams net = make_params(kCapacityMbps, kRttMs, buffer_bdp);
  Scenario s = make_mix_scenario(net, cubic, bbr);
  s.duration = from_sec(10);
  s.warmup = from_sec(2);
  s.audit.enabled = true;
  return s;
}

void expect_clean(const Scenario& s, const std::string& label) {
  const RunOutcome out = run_scenario_guarded(s);
  EXPECT_EQ(out.status, RunStatus::kOk) << label << ": "
                                        << out.diagnostics.message;
  EXPECT_TRUE(out.diagnostics.message.empty()) << label;
  EXPECT_EQ(out.attempts, 1) << label;
}

TEST(AuditReplay, GoldenTableCoversTheFigureSweep) {
  const std::vector<double> bdps = golden_buffer_bdps();
  ASSERT_EQ(bdps.size(), 30u);
  EXPECT_EQ(bdps.front(), 1.0);
  EXPECT_EQ(bdps.back(), 30.0);
}

TEST(AuditReplay, OneVsOneCleanAcrossBufferSweep) {
  const std::vector<double> bdps = golden_buffer_bdps();
  // Every 6th point plus the deep-buffer edge: shallow, knee, and deep
  // regimes of the figures without replaying all 30 under sanitizers.
  for (std::size_t i = 0; i < bdps.size(); i += 6) {
    expect_clean(audited_scenario(bdps[i], 1, 1),
                 "1v1 bdp=" + std::to_string(bdps[i]));
  }
  expect_clean(audited_scenario(bdps.back(), 1, 1), "1v1 bdp=30");
}

TEST(AuditReplay, FiveVsFiveCleanAtShallowAndDeepBuffers) {
  expect_clean(audited_scenario(2.0, 5, 5), "5v5 bdp=2");
  expect_clean(audited_scenario(16.0, 5, 5), "5v5 bdp=16");
}

TEST(AuditReplay, ImpairedPathStaysConservative) {
  // Loss + duplication + jitter on data, loss on ACKs: exercises every
  // stage counter the ledger folds in (drops, duplicates, in-flight
  // stage occupancy) plus the reverse-path equation.
  Scenario s = audited_scenario(3.0, 2, 2);
  s.impairments.loss_rate = 0.005;
  s.impairments.duplicate_rate = 0.002;
  s.impairments.jitter = from_ms(2);
  s.ack_impairments.loss_rate = 0.01;
  expect_clean(s, "impaired 2v2 bdp=3");
}

TEST(AuditReplay, CapacityScheduleRespectsPeakBound) {
  // Mid-run capacity drop to 40%: the queue bound and the goodput-vs-peak
  // bound must both hold through the transition.
  Scenario s = audited_scenario(4.0, 1, 1);
  s.capacity_schedule.push_back(
      RateChange{from_sec(5), mbps(0.4 * kCapacityMbps)});
  expect_clean(s, "rate-change 1v1 bdp=4");
}

}  // namespace
}  // namespace bbrnash
