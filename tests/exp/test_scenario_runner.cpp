#include "exp/scenario_runner.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

Scenario small_scenario(int nc, int nb, double buffer_bdp = 3.0) {
  const NetworkParams net = make_params(20, 20, buffer_bdp);
  Scenario s = make_mix_scenario(net, nc, nb);
  s.duration = from_sec(12);
  s.warmup = from_sec(4);
  return s;
}

TEST(ScenarioRunner, RejectsEmptyScenario) {
  Scenario s;
  s.buffer_bytes = 10000;
  EXPECT_THROW(run_scenario(s), std::invalid_argument);
}

TEST(ScenarioRunner, RejectsWarmupBeyondDuration) {
  Scenario s = small_scenario(1, 1);
  s.warmup = s.duration;
  EXPECT_THROW(run_scenario(s), std::invalid_argument);
}

TEST(ScenarioRunner, MakeMixScenarioComposition) {
  const NetworkParams net = make_params(20, 20, 3);
  const Scenario s = make_mix_scenario(net, 3, 2, CcKind::kBbrV2);
  EXPECT_EQ(s.flows.size(), 5u);
  EXPECT_EQ(s.count(CcKind::kCubic), 3);
  EXPECT_EQ(s.count(CcKind::kBbrV2), 2);
  EXPECT_EQ(s.capacity, net.capacity);
  EXPECT_EQ(s.buffer_bytes, net.buffer_bytes);
}

TEST(ScenarioRunner, SingleCubicFlowSaturatesLink) {
  const RunResult r = run_scenario(small_scenario(1, 0));
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_GT(r.link_utilization, 0.9);
  EXPECT_NEAR(r.avg_goodput_mbps(CcKind::kCubic), 20.0, 2.5);
}

TEST(ScenarioRunner, SingleBbrFlowSaturatesLink) {
  const RunResult r = run_scenario(small_scenario(0, 1));
  EXPECT_GT(r.avg_goodput_mbps(CcKind::kBbr), 17.0);
}

TEST(ScenarioRunner, GoodputNeverExceedsCapacity) {
  const RunResult r = run_scenario(small_scenario(2, 2));
  EXPECT_LE(r.total_goodput_all_mbps(), 20.0 * 1.02);
}

TEST(ScenarioRunner, QueueDelayBoundedByBufferDrainTime) {
  const Scenario s = small_scenario(2, 2, 4.0);
  const RunResult r = run_scenario(s);
  const double max_delay_ms =
      to_ms(static_cast<TimeNs>(static_cast<double>(s.buffer_bytes) /
                                s.capacity * kNsPerSec));
  EXPECT_LE(r.avg_queue_delay_ms, max_delay_ms + 1e-9);
  EXPECT_GT(r.avg_queue_delay_ms, 0.0);
}

TEST(ScenarioRunner, PerFlowStatsPopulated) {
  const RunResult r = run_scenario(small_scenario(1, 1));
  for (const auto& f : r.flows) {
    EXPECT_GT(f.stats.goodput_bps, 0.0);
    EXPECT_GT(f.stats.avg_rtt_ms, 19.0);  // >= base RTT
    EXPECT_GE(f.stats.max_queue_occupancy_bytes,
              f.stats.min_queue_occupancy_bytes);
    EXPECT_GT(f.stats.avg_inflight_bytes, 0.0);
  }
}

TEST(ScenarioRunner, CubicAggregateBufferTracked) {
  const RunResult r = run_scenario(small_scenario(2, 1));
  EXPECT_GT(r.cubic_buffer_avg, 0.0);
  EXPECT_GE(r.cubic_buffer_max, r.cubic_buffer_min);
  EXPECT_GT(r.noncubic_buffer_avg, 0.0);
}

TEST(ScenarioRunner, DeterministicForSameSeed) {
  Scenario s = small_scenario(1, 1);
  s.seed = 77;
  const RunResult a = run_scenario(s);
  const RunResult b = run_scenario(s);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].stats.goodput_bps,
                     b.flows[i].stats.goodput_bps);
    EXPECT_EQ(a.flows[i].stats.retransmits, b.flows[i].stats.retransmits);
  }
  EXPECT_DOUBLE_EQ(a.avg_queue_delay_ms, b.avg_queue_delay_ms);
}

TEST(ScenarioRunner, DifferentSeedsDiffer) {
  Scenario s = small_scenario(2, 2);
  s.seed = 1;
  const RunResult a = run_scenario(s);
  s.seed = 2;
  const RunResult b = run_scenario(s);
  // Throughputs should not be bit-identical across seeds.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    if (a.flows[i].stats.goodput_bps != b.flows[i].stats.goodput_bps) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioRunner, MultiRttFlowsSupported) {
  Scenario s;
  const NetworkParams net = make_params(20, 20, 5);
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.flows.push_back({CcKind::kCubic, from_ms(10)});
  s.flows.push_back({CcKind::kBbr, from_ms(50)});
  s.duration = from_sec(12);
  s.warmup = from_sec(4);
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.flows[0].stats.goodput_bps, 0.0);
  EXPECT_GT(r.flows[1].stats.goodput_bps, 0.0);
  // Base RTT respected per flow.
  EXPECT_GE(r.flows[0].stats.min_rtt_ms, 9.9);
  EXPECT_GE(r.flows[1].stats.min_rtt_ms, 49.9);
  EXPECT_LT(r.flows[0].stats.min_rtt_ms, r.flows[1].stats.min_rtt_ms);
}

TEST(ScenarioValidate, RejectsNonPositiveCoreParameters) {
  const Scenario good = small_scenario(1, 1);
  EXPECT_NO_THROW(good.validate());

  Scenario s = good;
  s.capacity = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = good;
  s.buffer_bytes = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = good;
  s.mss = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = good;
  s.duration = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = good;
  s.warmup = -1;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = good;
  s.flows[0].base_rtt = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = good;
  s.bbr_cwnd_gain = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsBadImpairmentsAndSchedules) {
  Scenario s = small_scenario(1, 1);
  s.impairments.loss_rate = -0.1;
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = small_scenario(1, 1);
  s.flows[0].impairments = ImpairmentConfig{};
  s.flows[0].impairments->duplicate_rate = 2.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = small_scenario(1, 1);
  s.capacity_schedule = {{from_sec(1), 0}};  // zero rate pins the server
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = small_scenario(1, 1);
  s.capacity_schedule = {{-1, mbps(10)}};
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ScenarioRunner, AqmNamesRoundTrip) {
  for (const AqmKind k : kAllAqmKinds) {
    const auto parsed = parse_aqm(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_aqm("droptial").has_value());
  EXPECT_FALSE(parse_aqm("").has_value());
}

TEST(ScenarioRunner, FlapScheduleShape) {
  const auto sched = make_flap_schedule(from_sec(10), from_sec(2), mbps(100),
                                        mbps(10), from_sec(25));
  // Flaps at t = 8..10 and t = 18..20; t = 28 is beyond `until`.
  ASSERT_EQ(sched.size(), 4u);
  EXPECT_EQ(sched[0].at, from_sec(8));
  EXPECT_EQ(sched[0].rate, mbps(10));
  EXPECT_EQ(sched[1].at, from_sec(10));
  EXPECT_EQ(sched[1].rate, mbps(100));
  EXPECT_EQ(sched[2].at, from_sec(18));
  EXPECT_EQ(sched[3].at, from_sec(20));

  EXPECT_THROW(make_flap_schedule(0, 0, mbps(1), mbps(1), from_sec(1)),
               std::invalid_argument);
  EXPECT_THROW(
      make_flap_schedule(from_sec(1), from_sec(2), mbps(1), mbps(1),
                         from_sec(10)),
      std::invalid_argument);
  EXPECT_THROW(
      make_flap_schedule(from_sec(10), from_sec(1), mbps(1), 0, from_sec(10)),
      std::invalid_argument);
}

TEST(ScenarioRunner, PeakCapacityTracksSchedule) {
  Scenario s = small_scenario(1, 1);
  EXPECT_EQ(s.peak_capacity(), s.capacity);
  s.capacity_schedule = {{from_sec(1), s.capacity / 2},
                         {from_sec(2), s.capacity * 3}};
  EXPECT_EQ(s.peak_capacity(), s.capacity * 3);
}

TEST(ScenarioRunner, RunResultAggregators) {
  RunResult r;
  FlowResult f1;
  f1.cc = CcKind::kCubic;
  f1.stats.goodput_bps = mbps(10);
  FlowResult f2;
  f2.cc = CcKind::kBbr;
  f2.stats.goodput_bps = mbps(30);
  r.flows = {f1, f2};
  EXPECT_DOUBLE_EQ(r.avg_goodput_mbps(CcKind::kCubic), 10.0);
  EXPECT_DOUBLE_EQ(r.avg_goodput_mbps(CcKind::kBbr), 30.0);
  EXPECT_DOUBLE_EQ(r.avg_goodput_mbps(CcKind::kCopa), 0.0);
  EXPECT_DOUBLE_EQ(r.total_goodput_all_mbps(), 40.0);
}

}  // namespace
}  // namespace bbrnash
