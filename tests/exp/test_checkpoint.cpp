// Crash-safe checkpointing: append/lookup/reload, torn-write tolerance,
// and the acceptance property — a killed-then-resumed sweep or NE search
// reproduces the uninterrupted numbers exactly.
#include "exp/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/nash_search.hpp"
#include "exp/parallel.hpp"

namespace bbrnash {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

NashSearchConfig quick_cfg() {
  NashSearchConfig cfg;
  cfg.trial.duration = from_sec(8);
  cfg.trial.warmup = from_sec(2);
  cfg.trial.trials = 1;
  cfg.tolerance_frac = 0.10;
  return cfg;
}

TEST(CheckpointLog, RecordLookupAndReload) {
  const std::string path = temp_path("ckpt_basic.jsonl");
  std::remove(path.c_str());
  {
    CheckpointLog log{path};
    EXPECT_EQ(log.size(), 0u);
    EXPECT_FALSE(log.lookup("a").has_value());
    JsonlRecord rec;
    rec.set("x", 0.1 + 0.2);  // not representable exactly in decimal
    rec.set("n", std::uint64_t{42});
    log.record("a", rec);
    JsonlRecord rec2;
    rec2.set("x", -1.5e-300);
    log.record("b", rec2);
    EXPECT_EQ(log.size(), 2u);
  }
  CheckpointLog reloaded{path};
  EXPECT_EQ(reloaded.size(), 2u);
  const auto a = reloaded.lookup("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->get_double("x"), 0.1 + 0.2);  // bit-exact round trip
  EXPECT_EQ(a->get_u64("n"), 42u);
  const auto b = reloaded.lookup("b");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->get_double("x"), -1.5e-300);
}

TEST(CheckpointLog, LastWriteWinsOnDuplicateKeys) {
  const std::string path = temp_path("ckpt_dup.jsonl");
  std::remove(path.c_str());
  CheckpointLog log{path};
  JsonlRecord r1;
  r1.set("v", 1.0);
  log.record("k", r1);
  JsonlRecord r2;
  r2.set("v", 2.0);
  log.record("k", r2);
  log.flush();  // appends are queued; reach the file before re-reading it
  CheckpointLog reloaded{path};
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.lookup("k")->get_double("v"), 2.0);
}

TEST(CheckpointLog, TornTrailingWriteIsSkipped) {
  const std::string path = temp_path("ckpt_torn.jsonl");
  std::remove(path.c_str());
  {
    CheckpointLog log{path};
    JsonlRecord rec;
    rec.set("v", 7.0);
    log.record("good", rec);
  }
  // Simulate a crash mid-append: an unterminated record at EOF.
  std::ofstream out{path, std::ios::app};
  out << R"({"key":"bad","v":3.1)";
  out.close();

  CheckpointLog reloaded{path};
  EXPECT_EQ(reloaded.size(), 1u);
  ASSERT_TRUE(reloaded.lookup("good").has_value());
  EXPECT_FALSE(reloaded.lookup("bad").has_value());
}

// Satellite: N workers hammer one log with interleaved lookups and
// appends; a resume then round-trips every cell entry-for-entry, survives
// a torn trailing write, and repairs the file on the next append.
TEST(CheckpointLog, ConcurrentHammerThenResumeRoundTrips) {
  const std::string path = temp_path("ckpt_hammer.jsonl");
  std::remove(path.c_str());
  constexpr std::size_t kKeys = 32;
  constexpr std::size_t kOps = 256;
  const auto key_of = [](std::size_t k) {
    return "cell " + std::to_string(k);
  };

  std::vector<JsonlRecord> snapshot;
  {
    CheckpointLog log{path};
    TrialPool pool{8};
    pool.parallel_for(kOps, [&](std::size_t i) {
      const std::size_t k = i % kKeys;
      (void)log.lookup(key_of(k));             // interleaved reads...
      (void)log.lookup(key_of((k + 7) % kKeys));
      JsonlRecord rec;
      rec.set("op", static_cast<std::uint64_t>(i));
      rec.set("v", 0.1 * static_cast<double>(i) + 1e-13);
      log.record(key_of(k), rec);              // ...and writes
      const auto back = log.lookup(key_of(k));
      EXPECT_TRUE(back.has_value());           // own write is visible
    });
    log.flush();
    EXPECT_EQ(log.size(), kKeys);
    // The in-memory view the workers were served is the ground truth the
    // reload must reproduce (record keeps map order == file order per key).
    for (std::size_t k = 0; k < kKeys; ++k) {
      const auto rec = log.lookup(key_of(k));
      ASSERT_TRUE(rec.has_value()) << key_of(k);
      snapshot.push_back(*rec);
    }
  }

  // Crash mid-append: unterminated garbage at EOF.
  {
    std::ofstream out{path, std::ios::app};
    out << R"({"key":"torn","v":1.2)";
  }

  CheckpointLog resumed{path};
  EXPECT_EQ(resumed.size(), kKeys);
  for (std::size_t k = 0; k < kKeys; ++k) {
    const auto rec = resumed.lookup(key_of(k));
    ASSERT_TRUE(rec.has_value()) << key_of(k);
    EXPECT_TRUE(*rec == snapshot[k]) << key_of(k);  // entry-for-entry
  }

  // The next append repairs the file: the torn line is terminated and
  // skipped, the new record parses, nothing else is lost.
  JsonlRecord extra;
  extra.set("v", 9.0);
  resumed.record("extra", extra);
  resumed.flush();
  CheckpointLog repaired{path};
  EXPECT_EQ(repaired.size(), kKeys + 1);
  ASSERT_TRUE(repaired.lookup("extra").has_value());
  EXPECT_EQ(repaired.lookup("extra")->get_double("v"), 9.0);
}

TEST(Checkpoint, KeyCoversEveryOutcomeChangingKnob) {
  const NetworkParams net = make_params(20, 20, 3);
  const TrialConfig base;
  const auto key = [&](const TrialConfig& cfg) {
    return mix_checkpoint_key(net, 1, 1, CcKind::kBbr, cfg);
  };

  // Each variant flips exactly one knob that changes measured numbers; a
  // sweep over any of them must never collide with the pristine cell or
  // with each other.
  std::vector<std::string> keys = {key(base)};
  const auto add_variant = [&](const auto& mutate) {
    TrialConfig c = base;
    mutate(c);
    keys.push_back(key(c));
  };
  add_variant([](TrialConfig& c) { c.impairments.loss_rate = 0.01; });
  add_variant([](TrialConfig& c) { c.impairments.reorder_rate = 0.01; });
  add_variant([](TrialConfig& c) { c.impairments.reorder_delay = from_ms(5); });
  add_variant([](TrialConfig& c) { c.impairments.duplicate_rate = 0.01; });
  add_variant([](TrialConfig& c) { c.impairments.jitter = from_ms(2); });
  add_variant([](TrialConfig& c) {
    c.impairments.spikes = {from_ms(100), from_ms(10), from_ms(3)};
  });
  add_variant([](TrialConfig& c) { c.ack_impairments.loss_rate = 0.01; });
  add_variant([](TrialConfig& c) { c.ack_impairments.reorder_rate = 0.01; });
  add_variant([](TrialConfig& c) { c.ack_impairments.jitter = from_ms(2); });
  add_variant([](TrialConfig& c) { c.guard.watchdog.max_events = 1000; });
  add_variant([](TrialConfig& c) { c.guard.watchdog.max_wall_seconds = 2.0; });
  add_variant([](TrialConfig& c) { c.guard.max_attempts = 3; });
  add_variant([](TrialConfig& c) { c.guard.seed_bump = 7; });
  add_variant(
      [&](TrialConfig& c) { c.guard.inject_failure_seeds = {base.seed}; });
  add_variant([](TrialConfig& c) {
    c.capacity_schedule = {{from_sec(1), mbps(10)}};
  });
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << "variants " << i << " and " << j;
    }
  }

  // Two Gilbert-Elliott chains with the same stationary loss rate but
  // different burstiness measure differently, so they must key differently.
  TrialConfig g1 = base;
  TrialConfig g2 = base;
  g1.impairments.gilbert = {0.01, 0.09, 0.0, 1.0};
  g2.impairments.gilbert = {0.02, 0.18, 0.0, 1.0};
  ASSERT_DOUBLE_EQ(g1.impairments.gilbert.expected_loss_rate(),
                   g2.impairments.gilbert.expected_loss_rate());
  EXPECT_NE(key(g1), key(g2));

  // Capacity schedules of equal length but different flap times or rates.
  TrialConfig s1 = base;
  TrialConfig s2 = base;
  TrialConfig s3 = base;
  s1.capacity_schedule = {{from_sec(1), mbps(10)}};
  s2.capacity_schedule = {{from_sec(2), mbps(10)}};
  s3.capacity_schedule = {{from_sec(1), mbps(5)}};
  EXPECT_NE(key(s1), key(s2));
  EXPECT_NE(key(s1), key(s3));
}

TEST(Checkpoint, FailureListRoundTripsEntryForEntry) {
  MixOutcome m;
  m.trials_completed = 1;
  m.trials_failed = 2;
  m.failures = {"trial 0 (seed 1, 2 attempts): invariant-violation: q > B",
                "trial 2 (seed 9, 1 attempts): error: boom"};
  const MixOutcome back = mix_from_record(mix_to_record(m));
  ASSERT_EQ(back.failures.size(), m.failures.size());
  EXPECT_EQ(back.failures[0], m.failures[0]);
  EXPECT_EQ(back.failures[1], m.failures[1]);
  const MixOutcome clean = mix_from_record(mix_to_record(MixOutcome{}));
  EXPECT_TRUE(clean.failures.empty());
}

TEST(Checkpoint, MixOutcomeRoundTripsExactly) {
  const NetworkParams net = make_params(20, 20, 3);
  TrialConfig cfg;
  cfg.duration = from_sec(8);
  cfg.warmup = from_sec(2);
  cfg.trials = 1;
  const MixOutcome m = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg);
  const MixOutcome back = mix_from_record(mix_to_record(m));
  EXPECT_EQ(back.per_flow_cubic_mbps, m.per_flow_cubic_mbps);
  EXPECT_EQ(back.per_flow_other_mbps, m.per_flow_other_mbps);
  EXPECT_EQ(back.total_cubic_mbps, m.total_cubic_mbps);
  EXPECT_EQ(back.avg_queue_delay_ms, m.avg_queue_delay_ms);
  EXPECT_EQ(back.link_utilization, m.link_utilization);
  EXPECT_EQ(back.cubic_buffer_avg, m.cubic_buffer_avg);
  EXPECT_EQ(back.trials_completed, m.trials_completed);
}

TEST(Checkpoint, ResumedPayoffMeasurementMatchesUninterrupted) {
  const NetworkParams net = make_params(20, 20, 3);
  const int total_flows = 3;
  NashSearchConfig cfg = quick_cfg();

  // Ground truth: uninterrupted, no checkpoint.
  const EmpiricalPayoffs truth = measure_payoffs(net, total_flows, cfg);

  // First pass fills the checkpoint; then "crash": drop the last finished
  // cell AND leave a torn half-record behind.
  const std::string path = temp_path("ckpt_payoffs.jsonl");
  std::remove(path.c_str());
  cfg.checkpoint_path = path;
  (void)measure_payoffs(net, total_flows, cfg);

  std::vector<std::string> lines;
  {
    std::ifstream in{path};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(total_flows) + 1);
  {
    std::ofstream out{path, std::ios::trunc};
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) out << lines[i] << '\n';
    out << lines.back().substr(0, lines.back().size() / 2);  // torn write
  }

  const EmpiricalPayoffs resumed = measure_payoffs(net, total_flows, cfg);
  ASSERT_EQ(resumed.cubic_mbps.size(), truth.cubic_mbps.size());
  for (std::size_t k = 0; k < truth.cubic_mbps.size(); ++k) {
    EXPECT_EQ(resumed.cubic_mbps[k], truth.cubic_mbps[k]) << "k=" << k;
    EXPECT_EQ(resumed.other_mbps[k], truth.other_mbps[k]) << "k=" << k;
  }
  // The re-run repaired the log: every cell is recorded again.
  CheckpointLog repaired{path};
  EXPECT_EQ(repaired.size(), static_cast<std::size_t>(total_flows) + 1);
}

TEST(Checkpoint, ResumedCrossingSearchFindsSameNe) {
  const NetworkParams net = make_params(20, 20, 5);
  const int total_flows = 4;
  NashSearchConfig cfg = quick_cfg();

  const int truth = find_ne_crossing(net, total_flows, cfg);

  const std::string path = temp_path("ckpt_crossing.jsonl");
  std::remove(path.c_str());
  cfg.checkpoint_path = path;
  EXPECT_EQ(find_ne_crossing(net, total_flows, cfg), truth);

  // Kill after partial progress: keep only the first checkpointed cell.
  std::vector<std::string> lines;
  {
    std::ifstream in{path};
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u);
  {
    std::ofstream out{path, std::ios::trunc};
    out << lines.front() << '\n';
  }
  EXPECT_EQ(find_ne_crossing(net, total_flows, cfg), truth);
}

TEST(Checkpoint, NullLogFallsThroughToPlainRun) {
  const NetworkParams net = make_params(20, 20, 3);
  TrialConfig cfg;
  cfg.duration = from_sec(8);
  cfg.warmup = from_sec(2);
  cfg.trials = 1;
  const MixOutcome a = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg);
  const MixOutcome b =
      run_mix_trials_checkpointed(net, 1, 1, CcKind::kBbr, cfg, nullptr);
  EXPECT_EQ(a.per_flow_cubic_mbps, b.per_flow_cubic_mbps);
  EXPECT_EQ(a.per_flow_other_mbps, b.per_flow_other_mbps);
}

}  // namespace
}  // namespace bbrnash
