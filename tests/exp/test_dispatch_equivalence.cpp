// jobs x dispatch equivalence: the devirtualized CcVariant hot path and the
// virtual-dispatch CongestionControl adapter are the SAME algorithms behind
// two calling conventions, so every observable of a run must be
// bit-identical between them — executed event counts, per-flow goodput,
// full RunOutcome serializations — across the golden 1-30 BDP grid and an
// impaired scenario, and for every --jobs value (dispatch mode and worker
// count must both be execution details, never semantics knobs).
// Checkpoint keys deliberately exclude the dispatch mode, so a log written
// under one mode resumes bit-identically under the other; that contract is
// pinned here too.
#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "exp/checkpoint.hpp"
#include "exp/scenario_runner.hpp"
#include "exp/sweeps.hpp"
#include "model/network_params.hpp"

namespace bbrnash {
namespace {

// The golden figures' operating points (100 Mbps / 40 ms, 1-30 BDP), at
// quick fidelity so the full grid stays cheap under sanitizers.
constexpr double kCapacityMbps = 100.0;
constexpr double kRttMs = 40.0;
constexpr int kMinBdp = 1;
constexpr int kMaxBdp = 30;

Scenario grid_scenario(int bdp, bool virtual_dispatch) {
  Scenario s = make_mix_scenario(make_params(kCapacityMbps, kRttMs, bdp),
                                 /*num_cubic=*/2, /*num_other=*/2);
  s.duration = from_sec(4);
  s.warmup = from_sec(1);
  s.seed = 7 + static_cast<std::uint64_t>(bdp);
  s.virtual_cc_dispatch = virtual_dispatch;
  return s;
}

void append(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g,", v);
  out += buf;
}

void append(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += ',';
}

/// %.17g serialization of every field of a RunOutcome — doubles round-trip
/// bit-exactly, so string equality IS bit-identity.
std::string encode(const RunOutcome& o) {
  std::string out;
  out += to_string(o.status);
  out += '|';
  append(out, o.seed_used);
  append(out, static_cast<std::uint64_t>(o.attempts));
  append(out, o.diagnostics.events_executed);
  append(out, o.diagnostics.pending_events);
  append(out, static_cast<std::uint64_t>(o.diagnostics.sim_time_reached));
  out += '|';
  const RunResult& r = o.result;
  append(out, r.avg_queue_delay_ms);
  append(out, r.avg_queue_bytes);
  append(out, r.link_utilization);
  append(out, r.total_drops);
  append(out, r.cubic_buffer_avg);
  append(out, static_cast<std::uint64_t>(r.cubic_buffer_min));
  append(out, static_cast<std::uint64_t>(r.cubic_buffer_max));
  append(out, r.noncubic_buffer_avg);
  for (const ImpairmentCounters& c : {r.data_impairments, r.ack_impairments}) {
    append(out, c.offered);
    append(out, c.dropped);
    append(out, c.duplicated);
    append(out, c.reordered);
  }
  for (const FlowResult& f : r.flows) {
    out += '|';
    out += to_string(f.cc);
    out += ',';
    append(out, static_cast<std::uint64_t>(f.base_rtt));
    append(out, f.stats.goodput_bps);
    append(out, f.stats.avg_rtt_ms);
    append(out, f.stats.min_rtt_ms);
    append(out, f.stats.max_rtt_ms);
    append(out, f.stats.retransmits);
    append(out, f.stats.rtos);
    append(out, f.stats.avg_inflight_bytes);
    append(out, static_cast<std::uint64_t>(f.stats.completed_at));
    append(out, f.stats.avg_queue_occupancy_bytes);
    append(out, static_cast<std::uint64_t>(f.stats.min_queue_occupancy_bytes));
    append(out, static_cast<std::uint64_t>(f.stats.max_queue_occupancy_bytes));
  }
  return out;
}

std::string encode(const MixOutcome& m) { return mix_to_record(m).encode(); }

TEST(DispatchEquivalence, GoldenGridRunOutcomesBitIdentical) {
  for (int bdp = kMinBdp; bdp <= kMaxBdp; ++bdp) {
    const RunOutcome variant =
        run_scenario_guarded(grid_scenario(bdp, false), {});
    const RunOutcome adapter =
        run_scenario_guarded(grid_scenario(bdp, true), {});
    ASSERT_TRUE(variant.ok()) << "bdp " << bdp;
    // Event counts are the sharpest observable: one extra or reordered
    // event anywhere in the run diverges them immediately.
    EXPECT_EQ(variant.diagnostics.events_executed,
              adapter.diagnostics.events_executed)
        << "bdp " << bdp;
    EXPECT_EQ(encode(variant), encode(adapter)) << "bdp " << bdp;
  }
}

TEST(DispatchEquivalence, ImpairedScenarioBitIdentical) {
  Scenario s = grid_scenario(/*bdp=*/3, /*virtual_dispatch=*/false);
  s.impairments.loss_rate = 0.02;
  s.impairments.jitter = from_ms(2);
  s.ack_impairments.loss_rate = 0.01;
  s.capacity_schedule = {{from_sec(2), mbps(60)}, {from_sec(3), mbps(100)}};
  const RunOutcome variant = run_scenario_guarded(s, {});
  s.virtual_cc_dispatch = true;
  const RunOutcome adapter = run_scenario_guarded(s, {});
  ASSERT_TRUE(variant.ok());
  // The impairments must actually bite, or this pin is vacuous.
  EXPECT_GT(variant.result.data_impairments.dropped, 0u);
  EXPECT_EQ(encode(variant), encode(adapter));
}

// --- jobs x dispatch matrix ----------------------------------------------

TrialConfig quick_trials(int jobs, bool virtual_dispatch) {
  TrialConfig cfg;
  cfg.duration = from_sec(6);
  cfg.warmup = from_sec(2);
  cfg.trials = 4;
  cfg.jobs = jobs;
  cfg.virtual_cc_dispatch = virtual_dispatch;
  return cfg;
}

TEST(DispatchEquivalence, JobsByDispatchMatrixBitIdentical) {
  const NetworkParams net = make_params(kCapacityMbps, kRttMs, 3);
  const std::string reference = encode(
      run_mix_trials(net, 2, 2, CcKind::kBbr, quick_trials(1, false)));
  for (const int jobs : {1, 8}) {
    for (const bool virtual_dispatch : {false, true}) {
      const std::string got = encode(run_mix_trials(
          net, 2, 2, CcKind::kBbr, quick_trials(jobs, virtual_dispatch)));
      EXPECT_EQ(reference, got)
          << "jobs=" << jobs << " virtual=" << virtual_dispatch;
    }
  }
}

TEST(DispatchEquivalence, CheckpointKeysIgnoreDispatchMode) {
  const NetworkParams net = make_params(kCapacityMbps, kRttMs, 3);
  // The key encodes everything that determines the measured numbers; the
  // dispatch mode is not one of those things, so the keys must collide...
  EXPECT_EQ(mix_checkpoint_key(net, 2, 2, CcKind::kBbr, quick_trials(1, false)),
            mix_checkpoint_key(net, 2, 2, CcKind::kBbr, quick_trials(8, true)));

  // ...and a log filled by the virtual adapter must resume bit-identically
  // under variant dispatch (the recorded cell is reused, not re-run).
  const std::string path = testing::TempDir() + "dispatch_ckpt.jsonl";
  std::remove(path.c_str());
  std::string recorded;
  {
    CheckpointLog log{path};
    recorded = encode(run_mix_trials_checkpointed(net, 2, 2, CcKind::kBbr,
                                                  quick_trials(1, true), &log));
  }
  {
    CheckpointLog log{path};
    EXPECT_EQ(recorded,
              encode(run_mix_trials_checkpointed(net, 2, 2, CcKind::kBbr,
                                                 quick_trials(8, false), &log)));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbrnash
