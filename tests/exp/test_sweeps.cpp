#include "exp/sweeps.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TrialConfig quick_trials(int n = 1) {
  TrialConfig cfg;
  cfg.duration = from_sec(12);
  cfg.warmup = from_sec(4);
  cfg.trials = n;
  return cfg;
}

TEST(Sweeps, SingleTrialMatchesDirectRun) {
  const NetworkParams net = make_params(20, 20, 3);
  const MixOutcome m = run_mix_trials(net, 1, 1, CcKind::kBbr, quick_trials());
  EXPECT_GT(m.per_flow_cubic_mbps, 0.0);
  EXPECT_GT(m.per_flow_other_mbps, 0.0);
  EXPECT_GT(m.link_utilization, 0.85);
}

TEST(Sweeps, DeterministicForSameConfig) {
  const NetworkParams net = make_params(20, 20, 3);
  const MixOutcome a = run_mix_trials(net, 1, 1, CcKind::kBbr, quick_trials(2));
  const MixOutcome b = run_mix_trials(net, 1, 1, CcKind::kBbr, quick_trials(2));
  EXPECT_DOUBLE_EQ(a.per_flow_cubic_mbps, b.per_flow_cubic_mbps);
  EXPECT_DOUBLE_EQ(a.per_flow_other_mbps, b.per_flow_other_mbps);
}

TEST(Sweeps, TotalsAreCountTimesPerFlow) {
  const NetworkParams net = make_params(20, 20, 3);
  const MixOutcome m = run_mix_trials(net, 2, 2, CcKind::kBbr, quick_trials());
  EXPECT_NEAR(m.total_cubic_mbps, 2 * m.per_flow_cubic_mbps, 1e-9);
  EXPECT_NEAR(m.total_other_mbps, 2 * m.per_flow_other_mbps, 1e-9);
}

TEST(Sweeps, ZeroCountSidesReportZero) {
  const NetworkParams net = make_params(20, 20, 3);
  const MixOutcome all_bbr =
      run_mix_trials(net, 0, 2, CcKind::kBbr, quick_trials());
  EXPECT_DOUBLE_EQ(all_bbr.per_flow_cubic_mbps, 0.0);
  EXPECT_GT(all_bbr.per_flow_other_mbps, 0.0);
  const MixOutcome all_cubic =
      run_mix_trials(net, 2, 0, CcKind::kBbr, quick_trials());
  EXPECT_DOUBLE_EQ(all_cubic.per_flow_other_mbps, 0.0);
}

TEST(Sweeps, OtherKindRouting) {
  const NetworkParams net = make_params(20, 20, 3);
  const MixOutcome m =
      run_mix_trials(net, 1, 1, CcKind::kBbrV2, quick_trials());
  EXPECT_GT(m.per_flow_other_mbps, 0.0);  // measured under the right kind
}

TEST(Sweeps, TrialsAreAveraged) {
  const NetworkParams net = make_params(20, 20, 3);
  // The 3-trial average must lie within the min/max of individual trials;
  // cheap sanity: it is finite and positive, and differs from trial 1 when
  // seeds differ.
  const MixOutcome one = run_mix_trials(net, 1, 1, CcKind::kBbr, quick_trials(1));
  const MixOutcome three =
      run_mix_trials(net, 1, 1, CcKind::kBbr, quick_trials(3));
  EXPECT_GT(three.per_flow_other_mbps, 0.0);
  // Not bit-identical to a single trial (unless degenerate).
  EXPECT_NE(one.per_flow_other_mbps, three.per_flow_other_mbps);
}

TEST(Sweeps, FailuresAreSortedByTrialIndex) {
  const NetworkParams net = make_params(20, 20, 3);
  TrialConfig cfg = quick_trials(4);
  // Fail trials 3, 1, and 0 (single attempt each). However the trials are
  // scheduled — serial or any --jobs fan-out — the diagnostics list must
  // come back sorted by trial index, so parallel runs and checkpoint
  // resumes compare equal entry-for-entry.
  cfg.guard.inject_failure_seeds = {cfg.seed + 3 * 1000003ULL,
                                    cfg.seed + 1 * 1000003ULL, cfg.seed};
  for (const int jobs : {1, 8}) {
    cfg.jobs = jobs;
    const MixOutcome m = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg);
    ASSERT_EQ(m.trials_failed, 3) << "jobs=" << jobs;
    ASSERT_EQ(m.failures.size(), 3u) << "jobs=" << jobs;
    EXPECT_EQ(m.failures[0].rfind("trial 0 ", 0), 0u) << m.failures[0];
    EXPECT_EQ(m.failures[1].rfind("trial 1 ", 0), 0u) << m.failures[1];
    EXPECT_EQ(m.failures[2].rfind("trial 3 ", 0), 0u) << m.failures[2];
  }
}

}  // namespace
}  // namespace bbrnash
