// The chaos drills: every fault class the injector can provoke — forced
// trial exceptions, event-loop stalls, wall-clock stalls, checkpoint
// write failures, torn checkpoint records, transient NE payoff cells —
// must be survived by the recovery machinery it targets, and the
// recovered numbers must be bit-identical to a fault-free run at the same
// experiment seeds (chaos faults are environmental: they may cost wall
// time, never results). Also the flight recorder's failure-path contract:
// one parseable JSONL dump per trigger class.
#include "exp/chaos.hpp"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/checkpoint.hpp"
#include "exp/nash_search.hpp"
#include "exp/scenario_runner.hpp"
#include "exp/sweeps.hpp"
#include "sim/flight_recorder.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {
namespace {

Scenario small_scenario(int nc, int nb) {
  const NetworkParams net = make_params(20, 20, 3.0);
  Scenario s = make_mix_scenario(net, nc, nb);
  s.duration = from_sec(8);
  s.warmup = from_sec(2);
  return s;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].stats.goodput_bps,
                     b.flows[i].stats.goodput_bps);
    EXPECT_DOUBLE_EQ(a.flows[i].stats.avg_rtt_ms, b.flows[i].stats.avg_rtt_ms);
    EXPECT_EQ(a.flows[i].stats.retransmits, b.flows[i].stats.retransmits);
  }
  EXPECT_DOUBLE_EQ(a.avg_queue_delay_ms, b.avg_queue_delay_ms);
  EXPECT_DOUBLE_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.total_drops, b.total_drops);
}

std::string temp_path(const char* name) {
  return std::string{::testing::TempDir()} + name;
}

// --- The injector itself -------------------------------------------------

TEST(ChaosInjector, DeterministicFireOncePerSite) {
  ChaosInjector a{7};
  ChaosInjector b{7};
  const char* sites[] = {"site-one", "site-two", "site-three"};
  for (const char* site : sites) {
    // Same seed, same site => same decision (rate 1.0 fires everything).
    EXPECT_EQ(a.should_fire(ChaosClass::kTrialException, site),
              b.should_fire(ChaosClass::kTrialException, site));
    // Fire-once: the second ask at the same (class, site) never fires.
    EXPECT_FALSE(a.should_fire(ChaosClass::kTrialException, site));
  }
  // The same site under a different class is a distinct fault.
  EXPECT_TRUE(a.should_fire(ChaosClass::kEventStall, "site-one"));
  EXPECT_EQ(a.fired(ChaosClass::kTrialException), 3u);
  EXPECT_EQ(a.fired(ChaosClass::kEventStall), 1u);
  EXPECT_EQ(a.total_fired(), 4u);
  EXPECT_NE(a.describe().find("seed=7"), std::string::npos);
}

TEST(ChaosInjector, RateZeroNeverFiresAndBadRateThrows) {
  ChaosInjector off{1, 0.0};
  EXPECT_FALSE(off.should_fire(ChaosClass::kTrialException, "any"));
  EXPECT_EQ(off.total_fired(), 0u);
  EXPECT_THROW(ChaosInjector(1, -0.1), std::invalid_argument);
  EXPECT_THROW(ChaosInjector(1, 1.5), std::invalid_argument);
}

TEST(ChaosInjector, MaybeThrowCarriesClassAndSite) {
  ChaosInjector chaos{3};
  try {
    chaos.maybe_throw(ChaosClass::kNeCell, "ne-cell nc=1 no=1");
    FAIL() << "expected ChaosFault";
  } catch (const ChaosFault& e) {
    EXPECT_EQ(e.cls(), ChaosClass::kNeCell);
    EXPECT_NE(std::string{e.what()}.find("ne-cell nc=1 no=1"),
              std::string::npos);
  }
}

// --- Fault class 1: forced trial exception -------------------------------

TEST(ChaosRecovery, TrialExceptionRecoversBitIdentical) {
  const Scenario s = small_scenario(1, 1);
  const RunOutcome clean = run_scenario_guarded(s);
  ASSERT_TRUE(clean.ok());

  GuardConfig guard;  // no watchdogs: only the exception class is eligible
  guard.chaos = std::make_shared<ChaosInjector>(11);
  const RunOutcome chaotic = run_scenario_guarded(s, guard);
  ASSERT_TRUE(chaotic.ok()) << chaotic.diagnostics.message;
  EXPECT_EQ(guard.chaos->fired(ChaosClass::kTrialException), 1u);
  // Environmental fault: the redo must not consume a retry attempt.
  EXPECT_EQ(chaotic.attempts, clean.attempts);
  EXPECT_EQ(chaotic.seed_used, clean.seed_used);
  expect_identical(clean.result, chaotic.result);
}

// --- Fault class 2: event-loop stall (must trip the event watchdog) ------

TEST(ChaosRecovery, EventStallTripsWatchdogAndRecoversBitIdentical) {
  const Scenario s = small_scenario(1, 1);
  const RunOutcome probe = run_scenario_guarded(s);
  ASSERT_TRUE(probe.ok());

  GuardConfig guard;
  // Generous budget: far above the fault-free event count, so only the
  // injected spinner can exhaust it.
  guard.watchdog.max_events = probe.diagnostics.events_executed * 2 + 100000;
  const RunOutcome clean = run_scenario_guarded(s, guard);
  ASSERT_TRUE(clean.ok());

  GuardConfig chaos_guard = guard;
  chaos_guard.chaos = std::make_shared<ChaosInjector>(13);
  const RunOutcome chaotic = run_scenario_guarded(s, chaos_guard);
  ASSERT_TRUE(chaotic.ok()) << chaotic.diagnostics.message;
  // Attempt 1 throws the trial exception, attempt 2 stalls the event loop
  // until the budget watchdog fires, attempt 3 runs clean.
  EXPECT_EQ(chaos_guard.chaos->fired(ChaosClass::kTrialException), 1u);
  EXPECT_EQ(chaos_guard.chaos->fired(ChaosClass::kEventStall), 1u);
  EXPECT_EQ(chaotic.attempts, clean.attempts);
  expect_identical(clean.result, chaotic.result);
}

// --- Fault class 3: wall-clock stall (must trip the wall watchdog) -------

TEST(ChaosRecovery, WallStallTripsWatchdogAndRecoversBitIdentical) {
  Scenario s = small_scenario(1, 1);
  s.duration = from_sec(4);
  s.warmup = from_sec(1);
  GuardConfig guard;
  // Generous enough for the clean run even under sanitizers; the injected
  // stall sleeps past it regardless.
  guard.watchdog.max_wall_seconds = 3.0;
  const RunOutcome clean = run_scenario_guarded(s, guard);
  ASSERT_TRUE(clean.ok()) << "scenario must fit the wall budget: "
                          << clean.diagnostics.message;

  GuardConfig chaos_guard = guard;
  chaos_guard.chaos = std::make_shared<ChaosInjector>(17);
  const RunOutcome chaotic = run_scenario_guarded(s, chaos_guard);
  ASSERT_TRUE(chaotic.ok()) << chaotic.diagnostics.message;
  EXPECT_EQ(chaos_guard.chaos->fired(ChaosClass::kWallStall), 1u);
  EXPECT_EQ(chaotic.attempts, clean.attempts);
  expect_identical(clean.result, chaotic.result);
}

// --- Fault classes 4+5: checkpoint write failure and torn record ---------

TEST(ChaosRecovery, CheckpointDamageRecoversOnResume) {
  const std::string path = temp_path("chaos_ckpt.jsonl");
  std::remove(path.c_str());
  JsonlRecord value;
  value.set("key", std::string{"unset"});
  value.set("v", 1.25);

  ChaosInjector chaos{19};
  {
    CheckpointLog log{path, &chaos};
    for (int k = 0; k < 4; ++k) {
      JsonlRecord rec = value;
      const std::string key = "cell-" + std::to_string(k);
      rec.set("key", key);
      rec.set("v", 1.25 * (k + 1));
      log.record(key, rec);
      // The damage hits only the file: the in-memory view (this run's
      // numbers) must be unaffected.
      ASSERT_TRUE(log.lookup(key).has_value());
      EXPECT_DOUBLE_EQ(log.lookup(key)->get_double("v"), 1.25 * (k + 1));
    }
    log.flush();
  }
  EXPECT_EQ(chaos.fired(ChaosClass::kCheckpointWriteFail), 1u);
  EXPECT_EQ(chaos.fired(ChaosClass::kCheckpointTorn), 1u);

  // Resume: the dropped append and the torn record are simply missing /
  // skipped; re-running those cells restores the identical final state.
  CheckpointLog resumed{path};
  EXPECT_EQ(resumed.skipped_lines(), 1u);  // the torn half-line
  int missing = 0;
  for (int k = 0; k < 4; ++k) {
    const std::string key = "cell-" + std::to_string(k);
    const auto hit = resumed.lookup(key);
    if (!hit) {
      ++missing;
      JsonlRecord rec = value;
      rec.set("key", key);
      rec.set("v", 1.25 * (k + 1));  // the re-run reproduces the number
      resumed.record(key, rec);
    }
  }
  EXPECT_EQ(missing, 2);  // one dropped + one torn
  resumed.flush();
  for (int k = 0; k < 4; ++k) {
    const std::string key = "cell-" + std::to_string(k);
    ASSERT_TRUE(resumed.lookup(key).has_value()) << key;
    EXPECT_DOUBLE_EQ(resumed.lookup(key)->get_double("v"), 1.25 * (k + 1));
  }
}

// --- Fault class 6: transient NE payoff cell -----------------------------

TEST(ChaosRecovery, NeCellFailureRecoversBitIdentical) {
  const NetworkParams net = make_params(20, 20, 3.0);
  NashSearchConfig cfg;
  cfg.trial.trials = 1;
  cfg.trial.duration = from_sec(6);
  cfg.trial.warmup = from_sec(2);
  cfg.trial.seed = 5;
  const int total = 3;

  const EmpiricalPayoffs clean = measure_payoffs(net, total, cfg);
  const int clean_ne = find_ne_crossing(net, total, cfg);

  NashSearchConfig chaos_cfg = cfg;
  chaos_cfg.trial.guard.chaos = std::make_shared<ChaosInjector>(23);
  const EmpiricalPayoffs chaotic = measure_payoffs(net, total, chaos_cfg);
  EXPECT_GE(chaos_cfg.trial.guard.chaos->fired(ChaosClass::kNeCell), 1u);
  ASSERT_EQ(clean.cubic_mbps.size(), chaotic.cubic_mbps.size());
  for (std::size_t k = 0; k < clean.cubic_mbps.size(); ++k) {
    EXPECT_DOUBLE_EQ(clean.cubic_mbps[k], chaotic.cubic_mbps[k]) << k;
    EXPECT_DOUBLE_EQ(clean.other_mbps[k], chaotic.other_mbps[k]) << k;
  }

  NashSearchConfig chaos_cfg2 = cfg;
  chaos_cfg2.trial.guard.chaos = std::make_shared<ChaosInjector>(29);
  EXPECT_EQ(find_ne_crossing(net, total, chaos_cfg2), clean_ne);
}

// --- Flight recorder: one dump per failure trigger -----------------------

TEST(FlightRecorderDump, InvariantTripDumpsTheRing) {
  const std::string path = temp_path("dump_invariant.jsonl");
  std::remove(path.c_str());
  Scenario s = small_scenario(1, 1);
  s.audit.enabled = true;
  s.audit.fail_at = s.warmup;  // audit self-test trips mid-run
  s.audit.recorder_events = 128;
  s.audit.recorder_path = path;
  const RunOutcome o = run_scenario_guarded(s);
  EXPECT_EQ(o.status, RunStatus::kInvariantViolation);
  EXPECT_NE(o.diagnostics.message.find("self-test"), std::string::npos);

  const std::vector<JsonlRecord> lines = read_jsonl(path);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].get_string("type"), "meta");
  EXPECT_EQ(lines[0].get_string("trigger"), "invariant-violation");
  EXPECT_NE(lines[0].get_string("reason").find("self-test"),
            std::string::npos);
  EXPECT_EQ(lines[0].get_u64("seed"), s.seed);
  // The ring captured real traffic, and the violation marker is the
  // newest event.
  EXPECT_EQ(lines.back().get_string("kind"), "violation");
}

TEST(FlightRecorderDump, WatchdogFireDumpsTheRing) {
  const std::string path = temp_path("dump_watchdog.jsonl");
  std::remove(path.c_str());
  Scenario s = small_scenario(1, 1);
  s.audit.recorder_events = 64;  // recorder without the ledger
  s.audit.recorder_path = path;
  GuardConfig guard;
  guard.watchdog.max_events = 20000;
  const RunOutcome o = run_scenario_guarded(s, guard);
  EXPECT_EQ(o.status, RunStatus::kAbortedEventBudget);

  const std::vector<JsonlRecord> lines = read_jsonl(path);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].get_string("trigger"), "aborted-event-budget");
  EXPECT_EQ(lines[0].get_u64("ring_capacity"), 64u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].get_string("type"), "event");
  }
}

TEST(FlightRecorderDump, UncaughtExceptionDumpsTheRing) {
  const std::string path = temp_path("dump_exception.jsonl");
  std::remove(path.c_str());
  Scenario s = small_scenario(1, 1);
  s.audit.recorder_events = 64;
  s.audit.recorder_path = path;
  GuardConfig guard;
  guard.chaos = std::make_shared<ChaosInjector>(31);  // forces one throw
  const RunOutcome o = run_scenario_guarded(s, guard);
  ASSERT_TRUE(o.ok());  // the run recovered...

  // ...but the failed attempt left its post-mortem behind (the clean redo
  // does not dump, so the exception dump survives).
  const std::vector<JsonlRecord> lines = read_jsonl(path);
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0].get_string("trigger"), "exception");
  EXPECT_NE(lines[0].get_string("reason").find("chaos fault"),
            std::string::npos);
}

}  // namespace
}  // namespace bbrnash
