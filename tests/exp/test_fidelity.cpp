#include "exp/fidelity.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* value) {
    if (value == nullptr) {
      unsetenv("BBRNASH_FIDELITY");
    } else {
      setenv("BBRNASH_FIDELITY", value, 1);
    }
  }
  ~EnvGuard() { unsetenv("BBRNASH_FIDELITY"); }
};

TEST(Fidelity, DefaultsWhenUnset) {
  EnvGuard g{nullptr};
  EXPECT_EQ(fidelity_from_env(), Fidelity::kDefault);
}

TEST(Fidelity, ParsesQuickAndFull) {
  {
    EnvGuard g{"quick"};
    EXPECT_EQ(fidelity_from_env(), Fidelity::kQuick);
  }
  {
    EnvGuard g{"full"};
    EXPECT_EQ(fidelity_from_env(), Fidelity::kFull);
  }
  {
    EnvGuard g{"garbage"};
    EXPECT_EQ(fidelity_from_env(), Fidelity::kDefault);
  }
}

TEST(Fidelity, DurationsOrdered) {
  EXPECT_LT(experiment_duration(Fidelity::kQuick),
            experiment_duration(Fidelity::kDefault));
  EXPECT_LT(experiment_duration(Fidelity::kDefault),
            experiment_duration(Fidelity::kFull));
  EXPECT_EQ(experiment_duration(Fidelity::kFull), from_sec(120));
}

TEST(Fidelity, WarmupShorterThanDuration) {
  for (const auto f :
       {Fidelity::kQuick, Fidelity::kDefault, Fidelity::kFull}) {
    EXPECT_LT(experiment_warmup(f), experiment_duration(f));
  }
}

TEST(Fidelity, TrialsMatchPaperAtFull) {
  EXPECT_EQ(experiment_trials(Fidelity::kFull), 10);
  EXPECT_GE(experiment_trials(Fidelity::kQuick), 1);
}

TEST(Fidelity, Names) {
  EXPECT_STREQ(to_string(Fidelity::kQuick), "quick");
  EXPECT_STREQ(to_string(Fidelity::kDefault), "default");
  EXPECT_STREQ(to_string(Fidelity::kFull), "full");
}

}  // namespace
}  // namespace bbrnash
