#include "exp/workload.hpp"

#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"

namespace bbrnash {
namespace {

TEST(Workload, ParetoSizesBounded) {
  Rng rng{1};
  for (int i = 0; i < 5000; ++i) {
    const Bytes s = pareto_size(rng, 1.2, 1000, 100000);
    ASSERT_GE(s, 1000);
    ASSERT_LE(s, 100000);
  }
}

TEST(Workload, ParetoIsHeavyTailed) {
  Rng rng{2};
  int small = 0;
  int large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Bytes s = pareto_size(rng, 1.2, 1000, 1000000);
    if (s < 5000) ++small;
    if (s > 100000) ++large;
  }
  // Most mass near the minimum, but a real tail exists.
  EXPECT_GT(small, n / 2);
  // P(X > 100 kB) ~ (L/x)^alpha ~ 0.4%: expect ~80 of 20000.
  EXPECT_GT(large, n / 500);
}

TEST(Workload, ParetoValidatesParameters) {
  Rng rng{3};
  EXPECT_THROW((void)pareto_size(rng, 0.0, 1000, 2000), std::invalid_argument);
  EXPECT_THROW((void)pareto_size(rng, 1.2, 0, 2000), std::invalid_argument);
  EXPECT_THROW((void)pareto_size(rng, 1.2, 3000, 2000), std::invalid_argument);
}

TEST(Workload, ArrivalsWithinWindowAndOrdered) {
  WorkloadConfig cfg;
  cfg.arrivals_per_sec = 5.0;
  cfg.start = from_sec(10);
  cfg.end = from_sec(40);
  const auto flows = generate_workload(cfg);
  ASSERT_FALSE(flows.empty());
  TimeNs prev = 0;
  for (const auto& f : flows) {
    EXPECT_GE(f.start_at, cfg.start);
    EXPECT_LT(f.start_at, cfg.end);
    EXPECT_GE(f.start_at, prev);
    prev = f.start_at;
    EXPECT_GT(f.transfer_bytes, 0);
  }
}

TEST(Workload, ArrivalCountNearExpectation) {
  WorkloadConfig cfg;
  cfg.arrivals_per_sec = 10.0;
  cfg.start = 0;
  cfg.end = from_sec(100);
  const auto flows = generate_workload(cfg);
  // Poisson(1000): 5 sigma ~ 160.
  EXPECT_NEAR(static_cast<double>(flows.size()), 1000.0, 160.0);
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadConfig cfg;
  cfg.seed = 42;
  const auto a = generate_workload(cfg);
  const auto b = generate_workload(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_at, b[i].start_at);
    EXPECT_EQ(a[i].transfer_bytes, b[i].transfer_bytes);
  }
  cfg.seed = 43;
  const auto c = generate_workload(cfg);
  EXPECT_TRUE(a.size() != c.size() ||
              a.front().start_at != c.front().start_at);
}

TEST(Workload, OfferedLoadScalesWithArrivalRate) {
  WorkloadConfig cfg;
  cfg.arrivals_per_sec = 1.0;
  const double one = offered_load(cfg, mbps(100));
  cfg.arrivals_per_sec = 4.0;
  EXPECT_NEAR(offered_load(cfg, mbps(100)), 4.0 * one, 1e-9);
  EXPECT_GT(one, 0.0);
}

TEST(Workload, RunsEndToEndOnScenario) {
  const NetworkParams net = make_params(20, 20, 3);
  Scenario s = make_mix_scenario(net, 1, 1);  // two elephants
  s.duration = from_sec(20);
  s.warmup = from_sec(4);
  WorkloadConfig cfg;
  cfg.arrivals_per_sec = 1.0;
  cfg.min_size = 20 * 1024;
  cfg.max_size = 200 * 1024;
  cfg.base_rtt = net.base_rtt;
  cfg.start = from_sec(4);
  cfg.end = from_sec(15);
  add_workload(s, cfg);
  ASSERT_GT(s.flows.size(), 2u);

  const RunResult r = run_scenario(s);
  int completed = 0;
  for (std::size_t i = 2; i < r.flows.size(); ++i) {
    if (r.flows[i].stats.completed_at != kTimeNone) ++completed;
  }
  // Light load on a 20 Mbps link: the majority of mice finish in-run.
  EXPECT_GT(completed, static_cast<int>(s.flows.size() - 2) / 2);
}

}  // namespace
}  // namespace bbrnash
