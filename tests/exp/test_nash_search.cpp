#include "exp/nash_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

NashSearchConfig quick_cfg() {
  NashSearchConfig cfg;
  cfg.trial.duration = from_sec(15);
  cfg.trial.warmup = from_sec(5);
  cfg.trial.trials = 1;
  cfg.tolerance_frac = 0.10;
  return cfg;
}

TEST(NashSearch, PayoffTablesHaveExpectedShape) {
  const NetworkParams net = make_params(20, 20, 3);
  const EmpiricalPayoffs p = measure_payoffs(net, 4, quick_cfg());
  ASSERT_EQ(p.cubic_mbps.size(), 5u);
  ASSERT_EQ(p.other_mbps.size(), 5u);
  EXPECT_DOUBLE_EQ(p.other_mbps[0], 0.0);   // no BBR flows at k=0
  EXPECT_DOUBLE_EQ(p.cubic_mbps[4], 0.0);   // no CUBIC flows at k=n
  EXPECT_GT(p.cubic_mbps[0], 0.0);
  EXPECT_GT(p.other_mbps[4], 0.0);
}

TEST(NashSearch, CrossingAgreesWithEnumerationOnSmallGame) {
  const NetworkParams net = make_params(20, 20, 4);
  const NashSearchConfig cfg = quick_cfg();
  const std::vector<int> enumerated = find_ne_enumerate(net, 4, cfg);
  const int crossing = find_ne_crossing(net, 4, cfg);
  ASSERT_FALSE(enumerated.empty());
  // The crossing NE must be one of (or adjacent to) the enumerated set —
  // adjacency allowed because the two searches use different trial seeds
  // along the way.
  int best_dist = 100;
  for (const int k : enumerated) {
    best_dist = std::min(best_dist, std::abs(k - crossing));
  }
  EXPECT_LE(best_dist, 1);
}

TEST(NashSearch, CrossingRequiresTwoFlows) {
  const NetworkParams net = make_params(20, 20, 3);
  EXPECT_THROW((void)find_ne_crossing(net, 1, quick_cfg()),
               std::invalid_argument);
}

TEST(NashSearch, CellWithZeroCompletedTrialsAbortsWithDiagnostics) {
  const NetworkParams net = make_params(20, 20, 3);
  NashSearchConfig cfg = quick_cfg();
  // One trial, one attempt, and that attempt's seed on the injection list:
  // every cell completes zero trials. The search must surface the failure
  // instead of treating the all-zero averages as 0 Mbps payoffs.
  cfg.trial.guard.max_attempts = 1;
  cfg.trial.guard.inject_failure_seeds = {cfg.trial.seed};
  try {
    (void)measure_payoffs(net, 2, cfg);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("zero trials"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("injected failure"),
              std::string::npos);
  }
  EXPECT_THROW((void)find_ne_crossing(net, 2, cfg), std::runtime_error);
}

TEST(NashSearch, ShallowBufferPushesNeTowardBbr) {
  const NetworkParams net_shallow = make_params(20, 20, 1.5);
  const NetworkParams net_deep = make_params(20, 20, 12);
  const int k_shallow = find_ne_crossing(net_shallow, 6, quick_cfg());
  const int k_deep = find_ne_crossing(net_deep, 6, quick_cfg());
  EXPECT_GE(k_shallow, k_deep);
}

TEST(NashSearch, MultiRttProfileValidation) {
  const std::vector<RttGroup> groups = {{from_ms(10), 2}, {from_ms(30), 2}};
  GroupProfile bad;
  bad.cubic_per_group = {1};
  EXPECT_THROW(
      find_multi_rtt_ne(mbps(20), 500000, groups, bad, quick_cfg()),
      std::invalid_argument);
}

TEST(NashSearch, MultiRttBestResponseConverges) {
  const std::vector<RttGroup> groups = {{from_ms(10), 2}, {from_ms(40), 2}};
  GroupProfile start;
  start.cubic_per_group = {1, 1};
  const auto buffer = static_cast<Bytes>(5.0 * mbps(20) * 0.010);
  const MultiRttNe ne =
      find_multi_rtt_ne(mbps(20), buffer, groups, start, quick_cfg());
  EXPECT_TRUE(ne.converged);
  EXPECT_LE(ne.profile.total_cubic(), 4);
  EXPECT_GE(ne.profile.total_cubic(), 0);
  ASSERT_EQ(ne.group_cubic_mbps.size(), 2u);
}

TEST(NashSearch, GroupProfileTotals) {
  GroupProfile p;
  p.cubic_per_group = {3, 0, 7};
  EXPECT_EQ(p.total_cubic(), 10);
}

}  // namespace
}  // namespace bbrnash
