#include "exp/telemetry.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "exp/cli_flags.hpp"
#include "exp/scenario_runner.hpp"

namespace bbrnash {
namespace {

Scenario sampled_scenario(TimeNs period) {
  const NetworkParams net = make_params(20, 20, 3);
  Scenario s = make_mix_scenario(net, 1, 1);
  s.duration = from_sec(10);
  s.warmup = from_sec(3);
  s.sample_period = period;
  return s;
}

TEST(Telemetry, SamplesAtRequestedCadence) {
  Scenario s = sampled_scenario(from_sec(1));
  SnapshotLog log;
  s.on_sample = log.sink();
  (void)run_scenario(s);
  ASSERT_EQ(log.snapshots().size(), 10u);
  for (std::size_t i = 0; i < log.snapshots().size(); ++i) {
    EXPECT_EQ(log.snapshots()[i].t, from_sec(1) * static_cast<TimeNs>(i + 1));
    EXPECT_EQ(log.snapshots()[i].flows.size(), 2u);
  }
}

TEST(Telemetry, NoSamplerMeansNoOverhead) {
  Scenario s = sampled_scenario(0);
  EXPECT_NO_THROW(run_scenario(s));
}

TEST(Telemetry, SnapshotsAreMonotoneWhereExpected) {
  Scenario s = sampled_scenario(from_ms(500));
  SnapshotLog log;
  s.on_sample = log.sink();
  (void)run_scenario(s);
  const auto& snaps = log.snapshots();
  ASSERT_GE(snaps.size(), 4u);
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GE(snaps[i].bytes_served, snaps[i - 1].bytes_served);
    EXPECT_GE(snaps[i].total_drops, snaps[i - 1].total_drops);
    for (std::size_t f = 0; f < snaps[i].flows.size(); ++f) {
      EXPECT_GE(snaps[i].flows[f].delivered, snaps[i - 1].flows[f].delivered);
      EXPECT_GE(snaps[i].flows[f].retransmits,
                snaps[i - 1].flows[f].retransmits);
    }
  }
}

TEST(Telemetry, GoodputBetweenMatchesDeliveredDelta) {
  Scenario s = sampled_scenario(from_sec(1));
  SnapshotLog log;
  s.on_sample = log.sink();
  (void)run_scenario(s);
  const auto& snaps = log.snapshots();
  const double g = log.goodput_between(3, 0);
  const double expect =
      static_cast<double>(snaps[3].flows[0].delivered -
                          snaps[2].flows[0].delivered) /
      to_sec(snaps[3].t - snaps[2].t);
  EXPECT_DOUBLE_EQ(g, expect);
}

TEST(Telemetry, GoodputBetweenValidatesIndex) {
  SnapshotLog log;
  EXPECT_THROW((void)log.goodput_between(0, 0), std::out_of_range);
  EXPECT_THROW((void)log.goodput_between(1, 0), std::out_of_range);
}

TEST(Telemetry, CsvHasHeaderAndRows) {
  Scenario s = sampled_scenario(from_sec(2));
  SnapshotLog log;
  s.on_sample = log.sink();
  (void)run_scenario(s);
  std::ostringstream os;
  log.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("t_sec,flow,cc"), std::string::npos);
  // 5 snapshots x 2 flows + header = 11 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 11);
}

// Pins full round-trip precision for the double-valued CSV columns. The
// old default ostream precision (6 significant digits) quantized t_sec to
// 100 ms once a run passed t = 100 s and collapsed nearby pacing rates.
TEST(Telemetry, CsvWritesFullRoundTripPrecision) {
  SnapshotLog log;
  Snapshot s;
  s.t = from_sec(100) + 1;  // 100.000000001 s: dies at 6 digits
  FlowSnapshot fs;
  fs.pacing_rate = 12345678.901234567;
  fs.smoothed_rtt = 12345678;  // 12.345678 ms
  s.flows.push_back(fs);
  log.sink()(s);

  std::ostringstream os;
  log.write_csv(os);
  const std::string out = os.str();
  const std::string row = out.substr(out.find('\n') + 1);
  ASSERT_FALSE(row.empty());

  // Column 0: t_sec. Parse it back and require exact equality with the
  // original double — %.17g round-trips any IEEE-754 value.
  const std::string t_field = row.substr(0, row.find(','));
  EXPECT_EQ(parse_double_strict("t_sec", t_field), to_sec(s.t));
  EXPECT_NE(t_field, "100");  // the 6-digit output this test pins against

  // Column 4: pacing_bps.
  std::vector<std::string> fields;
  std::istringstream is(row);
  for (std::string f; std::getline(is, f, ',');) fields.push_back(f);
  ASSERT_GE(fields.size(), 11u);
  EXPECT_EQ(parse_double_strict("pacing_bps", fields[4]), fs.pacing_rate);
  // Column 10: srtt_ms.
  EXPECT_EQ(parse_double_strict("srtt_ms", fields[10]), to_ms(fs.smoothed_rtt));
}

// A delivered counter that decreases between snapshots (flow restart,
// corrupt log) must be an explicit error — the old unsigned subtraction
// wrapped it into an astronomically large goodput.
TEST(Telemetry, GoodputBetweenRejectsCounterDecrease) {
  SnapshotLog log;
  Snapshot a;
  a.t = from_sec(1);
  a.flows.push_back(FlowSnapshot{});
  a.flows[0].delivered = 1'000'000;
  Snapshot b = a;
  b.t = from_sec(2);
  b.flows[0].delivered = 500;  // restarted flow: counter went backwards
  log.sink()(a);
  log.sink()(b);
  EXPECT_THROW((void)log.goodput_between(1, 0), std::invalid_argument);

  // And the non-decreasing case still computes in double space.
  SnapshotLog ok;
  b.flows[0].delivered = 3'000'000;
  ok.sink()(a);
  ok.sink()(b);
  EXPECT_DOUBLE_EQ(ok.goodput_between(1, 0), 2'000'000.0);
}

TEST(Telemetry, SnapshotsSeeBothCcKinds) {
  Scenario s = sampled_scenario(from_sec(5));
  SnapshotLog log;
  s.on_sample = log.sink();
  (void)run_scenario(s);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.snapshots()[0].flows[0].cc, CcKind::kCubic);
  EXPECT_EQ(log.snapshots()[0].flows[1].cc, CcKind::kBbr);
  // The unpaced CUBIC flow reports kNoPacing; BBR reports a finite rate.
  EXPECT_GE(log.snapshots().back().flows[0].pacing_rate, kNoPacing);
  EXPECT_LT(log.snapshots().back().flows[1].pacing_rate, kNoPacing);
}

}  // namespace
}  // namespace bbrnash
