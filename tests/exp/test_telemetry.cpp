#include "exp/telemetry.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"

namespace bbrnash {
namespace {

Scenario sampled_scenario(TimeNs period) {
  const NetworkParams net = make_params(20, 20, 3);
  Scenario s = make_mix_scenario(net, 1, 1);
  s.duration = from_sec(10);
  s.warmup = from_sec(3);
  s.sample_period = period;
  return s;
}

TEST(Telemetry, SamplesAtRequestedCadence) {
  Scenario s = sampled_scenario(from_sec(1));
  SnapshotLog log;
  s.on_sample = log.sink();
  run_scenario(s);
  ASSERT_EQ(log.snapshots().size(), 10u);
  for (std::size_t i = 0; i < log.snapshots().size(); ++i) {
    EXPECT_EQ(log.snapshots()[i].t, from_sec(1) * static_cast<TimeNs>(i + 1));
    EXPECT_EQ(log.snapshots()[i].flows.size(), 2u);
  }
}

TEST(Telemetry, NoSamplerMeansNoOverhead) {
  Scenario s = sampled_scenario(0);
  EXPECT_NO_THROW(run_scenario(s));
}

TEST(Telemetry, SnapshotsAreMonotoneWhereExpected) {
  Scenario s = sampled_scenario(from_ms(500));
  SnapshotLog log;
  s.on_sample = log.sink();
  run_scenario(s);
  const auto& snaps = log.snapshots();
  ASSERT_GE(snaps.size(), 4u);
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GE(snaps[i].bytes_served, snaps[i - 1].bytes_served);
    EXPECT_GE(snaps[i].total_drops, snaps[i - 1].total_drops);
    for (std::size_t f = 0; f < snaps[i].flows.size(); ++f) {
      EXPECT_GE(snaps[i].flows[f].delivered, snaps[i - 1].flows[f].delivered);
      EXPECT_GE(snaps[i].flows[f].retransmits,
                snaps[i - 1].flows[f].retransmits);
    }
  }
}

TEST(Telemetry, GoodputBetweenMatchesDeliveredDelta) {
  Scenario s = sampled_scenario(from_sec(1));
  SnapshotLog log;
  s.on_sample = log.sink();
  run_scenario(s);
  const auto& snaps = log.snapshots();
  const double g = log.goodput_between(3, 0);
  const double expect =
      static_cast<double>(snaps[3].flows[0].delivered -
                          snaps[2].flows[0].delivered) /
      to_sec(snaps[3].t - snaps[2].t);
  EXPECT_DOUBLE_EQ(g, expect);
}

TEST(Telemetry, GoodputBetweenValidatesIndex) {
  SnapshotLog log;
  EXPECT_THROW((void)log.goodput_between(0, 0), std::out_of_range);
  EXPECT_THROW((void)log.goodput_between(1, 0), std::out_of_range);
}

TEST(Telemetry, CsvHasHeaderAndRows) {
  Scenario s = sampled_scenario(from_sec(2));
  SnapshotLog log;
  s.on_sample = log.sink();
  run_scenario(s);
  std::ostringstream os;
  log.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("t_sec,flow,cc"), std::string::npos);
  // 5 snapshots x 2 flows + header = 11 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 11);
}

TEST(Telemetry, SnapshotsSeeBothCcKinds) {
  Scenario s = sampled_scenario(from_sec(5));
  SnapshotLog log;
  s.on_sample = log.sink();
  run_scenario(s);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.snapshots()[0].flows[0].cc, CcKind::kCubic);
  EXPECT_EQ(log.snapshots()[0].flows[1].cc, CcKind::kBbr);
  // The unpaced CUBIC flow reports kNoPacing; BBR reports a finite rate.
  EXPECT_GE(log.snapshots().back().flows[0].pacing_rate, kNoPacing);
  EXPECT_LT(log.snapshots().back().flows[1].pacing_rate, kNoPacing);
}

}  // namespace
}  // namespace bbrnash
