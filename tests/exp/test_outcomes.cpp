// Guarded-run hardening: watchdogs, typed outcomes, seed-bump retry, and
// the determinism of impaired scenarios (the acceptance property for the
// impairment layer: same scenario + same seed => byte-identical results).
#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"
#include "exp/sweeps.hpp"

namespace bbrnash {
namespace {

Scenario small_scenario(int nc, int nb, double buffer_bdp = 3.0) {
  const NetworkParams net = make_params(20, 20, buffer_bdp);
  Scenario s = make_mix_scenario(net, nc, nb);
  s.duration = from_sec(12);
  s.warmup = from_sec(4);
  return s;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].stats.goodput_bps,
                     b.flows[i].stats.goodput_bps);
    EXPECT_DOUBLE_EQ(a.flows[i].stats.avg_rtt_ms, b.flows[i].stats.avg_rtt_ms);
    EXPECT_EQ(a.flows[i].stats.retransmits, b.flows[i].stats.retransmits);
  }
  EXPECT_DOUBLE_EQ(a.avg_queue_delay_ms, b.avg_queue_delay_ms);
  EXPECT_DOUBLE_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.total_drops, b.total_drops);
  EXPECT_EQ(a.data_impairments.offered, b.data_impairments.offered);
  EXPECT_EQ(a.data_impairments.dropped, b.data_impairments.dropped);
  EXPECT_EQ(a.data_impairments.duplicated, b.data_impairments.duplicated);
  EXPECT_EQ(a.data_impairments.reordered, b.data_impairments.reordered);
  EXPECT_EQ(a.ack_impairments.dropped, b.ack_impairments.dropped);
}

TEST(RunOutcome, StatusNamesRoundTrip) {
  EXPECT_STREQ(to_string(RunStatus::kOk), "ok");
  EXPECT_STREQ(to_string(RunStatus::kAbortedEventBudget),
               "aborted-event-budget");
  EXPECT_STREQ(to_string(RunStatus::kAbortedWallClock), "aborted-wall-clock");
  EXPECT_STREQ(to_string(RunStatus::kInvariantViolation),
               "invariant-violation");
  EXPECT_STREQ(to_string(RunStatus::kError), "error");
}

TEST(GuardedRun, CleanRunMatchesUnguardedExactly) {
  const Scenario s = small_scenario(1, 1);
  const RunResult direct = run_scenario(s);
  const RunOutcome guarded = run_scenario_guarded(s);
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.attempts, 1);
  EXPECT_EQ(guarded.seed_used, s.seed);
  expect_identical(direct, guarded.result);
  EXPECT_GT(guarded.diagnostics.events_executed, 0u);
  EXPECT_EQ(guarded.diagnostics.sim_time_reached, s.duration);
}

TEST(GuardedRun, EventBudgetAbortsDeterministically) {
  const Scenario s = small_scenario(2, 2);
  GuardConfig guard;
  guard.watchdog.max_events = 20000;

  const RunOutcome a = run_scenario_guarded(s, guard);
  const RunOutcome b = run_scenario_guarded(s, guard);
  EXPECT_EQ(a.status, RunStatus::kAbortedEventBudget);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.diagnostics.events_executed, guard.watchdog.max_events);
  EXPECT_LT(a.diagnostics.sim_time_reached, s.duration);
  EXPECT_NE(a.diagnostics.message.find("event budget"), std::string::npos);
  // Determinism: the abort lands on the same event both times.
  EXPECT_EQ(a.diagnostics.sim_time_reached, b.diagnostics.sim_time_reached);
  EXPECT_EQ(a.diagnostics.events_executed, b.diagnostics.events_executed);
}

TEST(GuardedRun, WallClockBackstopAborts) {
  const Scenario s = small_scenario(2, 2);
  GuardConfig guard;
  guard.watchdog.max_wall_seconds = 1e-9;  // trips at the first slice check
  const RunOutcome o = run_scenario_guarded(s, guard);
  EXPECT_EQ(o.status, RunStatus::kAbortedWallClock);
  EXPECT_LT(o.diagnostics.sim_time_reached, s.duration);
  EXPECT_GT(o.diagnostics.wall_seconds, 0.0);
}

TEST(GuardedRun, InjectedFailureIsRecordedWithoutRetry) {
  Scenario s = small_scenario(1, 1);
  s.seed = 42;
  GuardConfig guard;
  guard.inject_failure_seeds = {42};
  const RunOutcome o = run_scenario_guarded(s, guard);
  EXPECT_EQ(o.status, RunStatus::kInvariantViolation);
  EXPECT_EQ(o.attempts, 1);
  EXPECT_EQ(o.seed_used, 42u);
  EXPECT_NE(o.diagnostics.message.find("injected"), std::string::npos);
}

TEST(GuardedRun, SeedBumpRetryIsByteIdentical) {
  Scenario s = small_scenario(1, 1);
  s.seed = 42;
  GuardConfig guard;
  guard.max_attempts = 2;
  guard.inject_failure_seeds = {42};  // first attempt fails, retry runs

  const RunOutcome o = run_scenario_guarded(s, guard);
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o.attempts, 2);
  EXPECT_EQ(o.seed_used, 42u + guard.seed_bump);

  // The retried attempt is exactly the scenario rerun at the bumped seed.
  Scenario bumped = s;
  bumped.seed = 42u + guard.seed_bump;
  expect_identical(run_scenario(bumped), o.result);
}

TEST(GuardedRun, ConfigErrorReportedNotThrown) {
  Scenario s;  // no flows, zero buffer
  const RunOutcome o = run_scenario_guarded(s);
  EXPECT_EQ(o.status, RunStatus::kError);
  EXPECT_FALSE(o.diagnostics.message.empty());
}

TEST(ImpairedScenario, DeterministicUnderFixedSeed) {
  Scenario s = small_scenario(2, 2);
  s.seed = 7;
  s.impairments.loss_rate = 0.01;
  s.impairments.jitter = from_ms(1);
  s.impairments.duplicate_rate = 0.002;
  s.impairments.reorder_rate = 0.005;
  s.impairments.reorder_delay = from_ms(3);
  s.impairments.gilbert.p_good_to_bad = 0.001;
  s.impairments.gilbert.p_bad_to_good = 0.2;
  s.ack_impairments.loss_rate = 0.005;
  s.capacity_schedule = make_flap_schedule(from_sec(4), from_sec(1),
                                           s.capacity, s.capacity / 4,
                                           s.duration);
  const RunResult a = run_scenario(s);
  const RunResult b = run_scenario(s);
  expect_identical(a, b);
  EXPECT_GT(a.data_impairments.dropped, 0u);
  EXPECT_GT(a.ack_impairments.dropped, 0u);
}

TEST(ImpairedScenario, PristineRunReportsNoImpairments) {
  const RunResult r = run_scenario(small_scenario(1, 1));
  EXPECT_EQ(r.data_impairments.offered, 0u);
  EXPECT_EQ(r.ack_impairments.offered, 0u);
}

TEST(ImpairedScenario, RandomLossHurtsCubicMoreThanBbr) {
  Scenario clean = small_scenario(1, 1);
  Scenario lossy = clean;
  lossy.impairments.loss_rate = 0.02;
  const RunResult rc = run_scenario(clean);
  const RunResult rl = run_scenario(lossy);
  // CUBIC backs off on every loss; 2% random loss must cost it throughput.
  EXPECT_LT(rl.avg_goodput_mbps(CcKind::kCubic),
            rc.avg_goodput_mbps(CcKind::kCubic));
  // And BBR should now hold the larger share.
  EXPECT_GT(rl.avg_goodput_mbps(CcKind::kBbr),
            rl.avg_goodput_mbps(CcKind::kCubic));
}

TEST(ImpairedScenario, PerFlowOverrideBeatsGlobalConfig) {
  Scenario s = small_scenario(2, 0);
  s.impairments.loss_rate = 0.05;
  ImpairmentConfig clean;
  s.flows[0].impairments = clean;  // flow 0 opts out of the global loss
  const RunResult r = run_scenario(s);
  // Only flow 1's stage rolls loss, so drops < offered for one flow only
  // and flow 0's packets are all offered-and-forwarded.
  EXPECT_GT(r.data_impairments.dropped, 0u);
  EXPECT_GT(r.flows[0].stats.goodput_bps, r.flows[1].stats.goodput_bps);
}

TEST(CapacitySchedule, FlapReducesDeliveredGoodput) {
  Scenario steady = small_scenario(1, 1);
  Scenario flapping = steady;
  // Down to C/10 for 1 s out of every 3 s.
  flapping.capacity_schedule = make_flap_schedule(
      from_sec(3), from_sec(1), steady.capacity, steady.capacity / 10,
      flapping.duration);
  const RunResult rs = run_scenario(steady);
  const RunResult rf = run_scenario(flapping);
  EXPECT_LT(rf.total_goodput_all_mbps(), rs.total_goodput_all_mbps() * 0.95);
  EXPECT_GT(rf.total_goodput_all_mbps(), 0.0);
}

TEST(Sweeps, InjectedFailingTrialRetriesAndCompletes) {
  const NetworkParams net = make_params(20, 20, 3);
  TrialConfig cfg;
  cfg.duration = from_sec(8);
  cfg.warmup = from_sec(2);
  cfg.trials = 2;
  cfg.seed = 5;
  // Fail trial 1's first attempt (seed 5 + 1000003).
  cfg.guard.inject_failure_seeds = {5 + 1000003ULL};
  cfg.guard.max_attempts = 2;

  const MixOutcome m = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg);
  EXPECT_EQ(m.trials_completed, 2);
  EXPECT_EQ(m.trials_retried, 1);
  EXPECT_EQ(m.trials_failed, 0);
  EXPECT_TRUE(m.failures.empty());
  EXPECT_GT(m.per_flow_cubic_mbps, 0.0);
}

TEST(Sweeps, UnretriedFailureIsRecordedAndExcluded) {
  const NetworkParams net = make_params(20, 20, 3);
  TrialConfig cfg;
  cfg.duration = from_sec(8);
  cfg.warmup = from_sec(2);
  cfg.trials = 2;
  cfg.seed = 5;
  cfg.guard.inject_failure_seeds = {5 + 1000003ULL};  // max_attempts stays 1

  const MixOutcome m = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg);
  EXPECT_EQ(m.trials_completed, 1);
  EXPECT_EQ(m.trials_failed, 1);
  ASSERT_EQ(m.failures.size(), 1u);
  EXPECT_NE(m.failures[0].find("invariant-violation"), std::string::npos);
  // The surviving trial still produced sane averages.
  EXPECT_GT(m.per_flow_cubic_mbps, 0.0);
}

}  // namespace
}  // namespace bbrnash
