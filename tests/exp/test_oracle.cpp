// Payoff-oracle differential battery.
//
// The oracle's whole value is that its cheap tiers are *indistinguishable*
// from running the simulator (exact tier) or honestly labelled as
// approximations (interpolated / model-only). This suite proves that
// differentially:
//   * exact answers are bit-identical to a direct run_mix_trials call,
//     whether computed this process, hydrated from a checkpoint/fabric
//     JSONL, or re-served after a kill-and-resume of the cache log;
//   * the model-only tier reproduces the prediction_interval midpoint
//     arithmetic bit-for-bit across the golden 1..30 BDP grid;
//   * interpolation is convex (never outside the corner cells), never
//     extrapolates outside the cached hull, reproduces multilinear
//     functions exactly on synthetic lattices, and tracks the real
//     simulator within a pinned tolerance at midpoint queries;
//   * canonical keys are injective under knob fuzz and survive a
//     value -> %.17g text -> value round trip unchanged (the satellite
//     fix: capacities and scheduled rates are no longer integer-truncated);
//   * no_compute NEVER fabricates numbers, corrupted cache records never
//     become answers, and a shared oracle stays correct under a
//     multi-threaded query hammer (this file carries the tsan label).
#include "exp/oracle.hpp"

#include <cstdio>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/checkpoint.hpp"
#include "exp/cli_flags.hpp"
#include "model/mishra_model.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TrialConfig quick_trial() {
  TrialConfig t;
  t.duration = from_sec(5);
  t.warmup = from_sec(1);
  t.trials = 1;
  t.seed = 1;
  t.jobs = 1;
  return t;
}

OracleQuery make_oq(double buffer_bdp, int nc, int no,
                    const TrialConfig& trial) {
  OracleQuery q;
  q.net = make_params(100, 40, buffer_bdp);
  q.num_cubic = nc;
  q.num_other = no;
  q.trial = trial;
  return q;
}

void expect_same_snapshot(
    const std::vector<std::pair<std::string, MixOutcome>>& a,
    const std::vector<std::pair<std::string, MixOutcome>>& b);

void expect_same_outcome(const MixOutcome& a, const MixOutcome& b) {
  EXPECT_EQ(a.per_flow_cubic_mbps, b.per_flow_cubic_mbps);
  EXPECT_EQ(a.per_flow_other_mbps, b.per_flow_other_mbps);
  EXPECT_EQ(a.total_cubic_mbps, b.total_cubic_mbps);
  EXPECT_EQ(a.total_other_mbps, b.total_other_mbps);
  EXPECT_EQ(a.avg_queue_delay_ms, b.avg_queue_delay_ms);
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  EXPECT_EQ(a.cubic_buffer_avg, b.cubic_buffer_avg);
  EXPECT_EQ(a.cubic_buffer_min, b.cubic_buffer_min);
  EXPECT_EQ(a.noncubic_buffer_avg, b.noncubic_buffer_avg);
  EXPECT_EQ(a.trials_completed, b.trials_completed);
  EXPECT_EQ(a.trials_retried, b.trials_retried);
  EXPECT_EQ(a.trials_failed, b.trials_failed);
  EXPECT_EQ(a.failures, b.failures);
}

void expect_same_snapshot(
    const std::vector<std::pair<std::string, MixOutcome>>& a,
    const std::vector<std::pair<std::string, MixOutcome>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    expect_same_outcome(a[i].second, b[i].second);
  }
}

// --- satellite: float canonicalization in keys ---------------------------

TEST(CanonicalDouble, RoundTripsThroughTextExactly) {
  // Subnormals (e.g. 4.9e-324) are deliberately absent: glibc strtod flags
  // them ERANGE and parse_double_strict rejects ERANGE outright, so they can
  // never appear in a key that came through the strict parsers. 1e-300 is
  // the small-magnitude probe that stays in normal range.
  const std::vector<double> values = {
      0.1 + 0.2,      1.0 / 3.0, 3.141592653589793, 1e-300,
      12500000.0,     12500000.25, 1e308,           -0.0,   42.0,
      1e9 + 1e-3};
  for (const double v : values) {
    const std::string text = canonical_double(v);
    const double back = parse_double_strict("roundtrip", text);
    EXPECT_EQ(back, v) << text;
    // Idempotent: re-canonicalizing the parsed value changes nothing, so a
    // key rebuilt after a log round trip is the same string.
    EXPECT_EQ(canonical_double(back), text);
  }
}

TEST(CanonicalDouble, KeysDistinguishSubByteCapacities) {
  const TrialConfig trial = quick_trial();
  NetworkParams a = make_params(100, 40, 4);
  NetworkParams b = a;
  // Below 1 byte/sec apart: the old static_cast<long long> truncation
  // collapsed these into one cell key.
  b.capacity = a.capacity + 0.25;
  EXPECT_NE(mix_checkpoint_key(a, 1, 1, CcKind::kBbr, trial),
            mix_checkpoint_key(b, 1, 1, CcKind::kBbr, trial));
}

TEST(CanonicalDouble, KeyPinnedForReferenceConfig) {
  // The full canonical key for a plain 1v1 cell. This string is shared by
  // sweeps, fabric leases ("lease " + key) and the oracle cache; changing
  // it orphans every existing checkpoint, so the change must be deliberate
  // (update this pin AND bump the cache schema note in DESIGN.md).
  const NetworkParams net = make_params(100, 40, 4);
  const std::string key =
      mix_checkpoint_key(net, 1, 1, CcKind::kBbr, TrialConfig{});
  EXPECT_EQ(key,
            "mix c=12500000 b=2000000 r=40000000 nc=1 no=1 cc=bbr "
            "d=40000000000 w=8000000000 t=3 s=1 di.l=0 di.gpgb=0 di.gpbg=1 "
            "di.glg=0 di.glb=1 di.ro=0 di.rod=0 di.dup=0 di.j=0 di.spp=0 "
            "di.spw=0 di.spm=0 ai.l=0 ai.gpgb=0 ai.gpbg=1 ai.glg=0 "
            "ai.glb=1 ai.ro=0 ai.rod=0 ai.dup=0 ai.j=0 ai.spp=0 ai.spw=0 "
            "ai.spm=0 g.ev=0 g.wall=0 g.att=1 g.bump=2654435769");
  // Resume equivalence: the key rebuilt from a capacity that round-tripped
  // through the log's %.17g encoding is the same string.
  NetworkParams resumed = net;
  resumed.capacity =
      parse_double_strict("cap", canonical_double(net.capacity));
  EXPECT_EQ(mix_checkpoint_key(resumed, 1, 1, CcKind::kBbr, TrialConfig{}),
            key);
}

TEST(OracleKey, InjectiveUnderKnobFuzz) {
  // Every generated config differs from every other in at least one knob;
  // all keys must be distinct. Exercises ints, floats and the schedule.
  std::set<std::string> keys;
  int generated = 0;
  for (int i = 0; i < 60; ++i) {
    OracleQuery q = make_oq(2 + (i % 5), 1 + (i % 3), 1 + (i / 3) % 2,
                            quick_trial());
    q.trial.seed = 1 + static_cast<std::uint64_t>(i / 15);
    q.trial.impairments.loss_rate = (i % 2 == 0) ? 0.0 : 1e-3 * (1 + i);
    if (i % 7 == 0) {
      q.trial.capacity_schedule.push_back(
          RateChange{from_sec(1 + i), q.net.capacity * (0.5 + 0.001 * i)});
    }
    keys.insert(oracle_key(q));
    ++generated;
  }
  EXPECT_EQ(static_cast<int>(keys.size()), generated);
}

TEST(OracleKey, AxesRoundTripAndGarbageRejected) {
  const OracleQuery q = make_oq(6, 3, 2, quick_trial());
  const std::string key = oracle_key(q);
  const auto axes = parse_mix_key_axes(key);
  ASSERT_TRUE(axes.has_value());
  EXPECT_EQ(axes->buffer, q.net.buffer_bytes);
  EXPECT_EQ(axes->num_cubic, 3);
  EXPECT_EQ(axes->num_other, 2);
  EXPECT_EQ(axes->base.find(" b="), std::string::npos);
  EXPECT_EQ(axes->base.find(" nc="), std::string::npos);
  EXPECT_EQ(axes->base.find(" no="), std::string::npos);
  // Two cells differing only in the lattice axes share a base.
  const auto axes2 = parse_mix_key_axes(oracle_key(make_oq(9, 1, 5,
                                                           quick_trial())));
  ASSERT_TRUE(axes2.has_value());
  EXPECT_EQ(axes->base, axes2->base);

  // Corrupt or foreign keys never yield lattice coordinates.
  EXPECT_FALSE(parse_mix_key_axes("nash c=1 b=2").has_value());
  EXPECT_FALSE(parse_mix_key_axes(lease_key(key)).has_value());
  std::string bad = key;
  bad.replace(bad.find("nc=3"), 4, "nc=3x");
  EXPECT_FALSE(parse_mix_key_axes(bad).has_value());
  std::string missing = key;
  missing.erase(missing.find(" b="), std::string{" b=2000000"}.size());
  EXPECT_FALSE(parse_mix_key_axes(missing).has_value());
}

// --- model-only tier: differential vs the closed forms -------------------

TEST(OracleModelTier, MatchesPredictionIntervalMidpointOnGoldenGrid) {
  // The golden grid (tests/golden/mishra_two_flow.jsonl) spans B = 1..30
  // BDP at 100 Mbps / 40 ms. For every point, the oracle's model-only
  // answer must equal the midpoint arithmetic over prediction_interval
  // bit-for-bit — the tier is a relabelling of the model, never a fudge.
  const std::string golden =
      std::string{BBRNASH_GOLDEN_DIR} + "/mishra_two_flow.jsonl";
  const std::vector<JsonlRecord> rows = read_jsonl(golden);
  ASSERT_GE(rows.size(), 30u);

  OracleConfig cfg;
  cfg.no_compute = true;  // the model tier must answer without simulating
  PayoffOracle oracle{cfg};
  for (const JsonlRecord& row : rows) {
    const double bdp = row.get_double("buffer_bdp");
    const NetworkParams net = make_params(row.get_double("capacity_mbps"),
                                          row.get_double("rtt_ms"), bdp);
    const OracleAnswer a = oracle.query(make_oq(bdp, 1, 1, TrialConfig{}));
    ASSERT_TRUE(a.ok()) << "bdp " << bdp;
    EXPECT_EQ(a.fidelity, OracleFidelity::kModelOnly);

    const auto iv = prediction_interval(net, 1, 1);
    ASSERT_TRUE(iv.has_value());
    EXPECT_EQ(a.outcome.per_flow_cubic_mbps,
              to_mbps(0.5 * (iv->sync.per_flow_cubic +
                             iv->desync.per_flow_cubic)));
    EXPECT_EQ(a.outcome.per_flow_other_mbps,
              to_mbps(0.5 * (iv->sync.per_flow_bbr +
                             iv->desync.per_flow_bbr)));
    EXPECT_EQ(a.outcome.total_cubic_mbps,
              to_mbps(0.5 * (iv->sync.aggregate.lambda_cubic +
                             iv->desync.aggregate.lambda_cubic)));
    EXPECT_EQ(a.outcome.noncubic_buffer_avg,
              0.5 * (iv->sync.aggregate.bbr_buffer_bytes +
                     iv->desync.aggregate.bbr_buffer_bytes));
    // A model answer is visibly synthetic: no trials ran.
    EXPECT_EQ(a.outcome.trials_completed, 0);
    EXPECT_EQ(a.outcome.trials_failed, 0);
  }
  EXPECT_EQ(oracle.stats().model_only, oracle.stats().queries);
}

// --- exact tier: differential vs run_mix_trials --------------------------

TEST(OracleExactTier, BitIdenticalToDirectRun) {
  const TrialConfig trial = quick_trial();
  const std::string cache = temp_path("oracle_exact.jsonl");
  std::remove(cache.c_str());

  struct Cell {
    double bdp;
    int nc, no;
  };
  const std::vector<Cell> cells = {{2, 1, 1}, {4, 1, 1}, {4, 2, 1}};

  OracleConfig cfg;
  cfg.cache_path = cache;
  PayoffOracle oracle{cfg};
  for (const Cell& c : cells) {
    const OracleQuery q = make_oq(c.bdp, c.nc, c.no, trial);
    const MixOutcome direct =
        run_mix_trials(q.net, c.nc, c.no, CcKind::kBbr, trial);

    const OracleAnswer computed = oracle.query(q);
    ASSERT_TRUE(computed.ok());
    EXPECT_EQ(computed.fidelity, OracleFidelity::kExact);
    expect_same_outcome(computed.outcome, direct);

    const OracleAnswer hit = oracle.query(q);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(hit.fidelity, OracleFidelity::kExact);
    expect_same_outcome(hit.outcome, direct);
  }
  const OracleStats s = oracle.stats();
  EXPECT_EQ(s.computed, cells.size());
  EXPECT_EQ(s.exact_hits, cells.size());
  EXPECT_EQ(oracle.cache_size(), cells.size());
}

TEST(OracleExactTier, ColdHydratedAndResumedCachesAgreeEntryForEntry) {
  const TrialConfig trial = quick_trial();
  const std::string cold_cache = temp_path("oracle_cold.jsonl");
  const std::string torn_cache = temp_path("oracle_torn.jsonl");
  std::remove(cold_cache.c_str());
  std::remove(torn_cache.c_str());

  const std::vector<double> bdps = {2, 3, 4};

  // Cold start: every cell computes.
  std::vector<std::pair<std::string, MixOutcome>> cold_snap;
  {
    OracleConfig cfg;
    cfg.cache_path = cold_cache;
    PayoffOracle cold{cfg};
    for (const double bdp : bdps) {
      ASSERT_TRUE(cold.query(make_oq(bdp, 1, 1, trial)).ok());
    }
    cold.flush();
    cold_snap = cold.snapshot();
    ASSERT_EQ(cold_snap.size(), bdps.size());
  }

  // Hydrated from the cold oracle's log (as a read-only side file): the
  // memo matches entry-for-entry before a single query runs.
  {
    OracleConfig cfg;
    cfg.hydrate_paths = {cold_cache};
    cfg.no_compute = true;
    cfg.allow_model = false;
    PayoffOracle hydrated{cfg};
    expect_same_snapshot(hydrated.snapshot(), cold_snap);
    for (const double bdp : bdps) {
      const OracleAnswer a = hydrated.query(make_oq(bdp, 1, 1, trial));
      ASSERT_TRUE(a.ok());
      EXPECT_EQ(a.fidelity, OracleFidelity::kExact);
    }
    EXPECT_EQ(hydrated.stats().exact_hits, bdps.size());
  }

  // Kill-and-resume: replay the log with its tail torn mid-append (the
  // crash left half a line). The resumed oracle serves the surviving
  // cells, recomputes the lost one, and converges to the same memo.
  {
    std::ifstream in{cold_cache};
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), bdps.size());
    std::ofstream out{torn_cache, std::ios::trunc};
    out << lines[0] << '\n' << lines[1] << '\n'
        << lines[2].substr(0, lines[2].size() / 2);  // no newline: torn
  }
  {
    OracleConfig cfg;
    cfg.cache_path = torn_cache;
    PayoffOracle resumed{cfg};
    EXPECT_EQ(resumed.cache_size(), bdps.size() - 1);
    EXPECT_GE(resumed.stats().hydrate_skipped_lines, 1u);
    for (const double bdp : bdps) {
      ASSERT_TRUE(resumed.query(make_oq(bdp, 1, 1, trial)).ok());
    }
    EXPECT_EQ(resumed.stats().computed, 1u);  // only the torn cell re-ran
    expect_same_snapshot(resumed.snapshot(), cold_snap);
  }

  // Checkpoint logs from the sweep machinery hydrate identically: the
  // oracle shares their key space, so a finished sweep IS a warm cache.
  {
    const std::string sweep_log = temp_path("oracle_sweeplog.jsonl");
    std::remove(sweep_log.c_str());
    {
      CheckpointLog log{sweep_log};
      const OracleQuery q = make_oq(2, 1, 1, trial);
      (void)run_mix_trials_checkpointed(q.net, 1, 1, CcKind::kBbr, trial,
                                        &log);
      log.flush();
    }
    OracleConfig cfg;
    cfg.hydrate_paths = {sweep_log};
    cfg.no_compute = true;
    cfg.allow_model = false;
    PayoffOracle from_sweep{cfg};
    const OracleAnswer a = from_sweep.query(make_oq(2, 1, 1, trial));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.fidelity, OracleFidelity::kExact);
    expect_same_outcome(a.outcome, cold_snap[0].second);
  }
}

// --- interpolated tier ---------------------------------------------------

TEST(OracleInterpolation, MidpointIsConvexAndTracksTheSimulator) {
  TrialConfig trial = quick_trial();
  trial.duration = from_sec(8);
  trial.warmup = from_sec(2);

  OracleConfig cfg;
  cfg.max_band_deviation = 1e9;  // the band gate is tested separately
  PayoffOracle oracle{cfg};
  const OracleAnswer lo = oracle.query(make_oq(2, 1, 1, trial));
  const OracleAnswer hi = oracle.query(make_oq(4, 1, 1, trial));
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());

  const OracleQuery mid_q = make_oq(3, 1, 1, trial);
  const OracleAnswer mid = oracle.query(mid_q);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.fidelity, OracleFidelity::kInterpolated);
  // 3 BDP sits exactly halfway between 2 and 4: the blend is the exact
  // arithmetic midpoint of the corner cells, field for field.
  EXPECT_EQ(mid.outcome.per_flow_cubic_mbps,
            0.5 * lo.outcome.per_flow_cubic_mbps +
                0.5 * hi.outcome.per_flow_cubic_mbps);
  EXPECT_EQ(mid.outcome.per_flow_other_mbps,
            0.5 * lo.outcome.per_flow_other_mbps +
                0.5 * hi.outcome.per_flow_other_mbps);
  EXPECT_EQ(mid.outcome.link_utilization,
            0.5 * lo.outcome.link_utilization +
                0.5 * hi.outcome.link_utilization);
  // The blend is not an empirical measurement and must not claim trials.
  EXPECT_EQ(mid.outcome.trials_completed, 0);

  // Pinned tolerance vs actually simulating the midpoint cell: per-flow
  // throughputs within 35% of the link rate. The bound is deliberately
  // loose — it pins "the blend is about the dynamics", not statistics.
  const MixOutcome direct =
      run_mix_trials(mid_q.net, 1, 1, CcKind::kBbr, trial);
  EXPECT_NEAR(mid.outcome.per_flow_cubic_mbps, direct.per_flow_cubic_mbps,
              35.0);
  EXPECT_NEAR(mid.outcome.per_flow_other_mbps, direct.per_flow_other_mbps,
              35.0);
  EXPECT_EQ(oracle.stats().interpolated, 1u);
}

/// Synthetic lattice cell with every field a linear function of the
/// coordinates — multilinear interpolation must reproduce it exactly.
MixOutcome synth_outcome(int nc, int no, double buffer_mb) {
  MixOutcome m;
  m.per_flow_cubic_mbps = 100.0 + 3.0 * nc + 5.0 * no + 7.0 * buffer_mb;
  m.per_flow_other_mbps = 50.0 + 2.0 * nc + 1.0 * no + 3.0 * buffer_mb;
  m.total_cubic_mbps = 10.0 * nc + buffer_mb;
  m.total_other_mbps = 20.0 * no + buffer_mb;
  m.avg_queue_delay_ms = 1.0 + buffer_mb;
  m.link_utilization = 0.5 + 0.01 * nc;
  m.cubic_buffer_avg = 1000.0 * buffer_mb;
  m.cubic_buffer_min = 100.0 * buffer_mb;
  m.noncubic_buffer_avg = 500.0 * buffer_mb;
  m.trials_completed = 1;
  return m;
}

std::string write_synth_lattice(const std::string& name,
                                const std::vector<int>& ncs,
                                const std::vector<int>& nos,
                                const std::vector<double>& bdps,
                                const TrialConfig& trial) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  CheckpointLog log{path};
  for (const int nc : ncs) {
    for (const int no : nos) {
      for (const double bdp : bdps) {
        const NetworkParams net = make_params(100, 40, bdp);
        const MixOutcome m =
            synth_outcome(nc, no, static_cast<double>(net.buffer_bytes) / 1e6);
        log.record(mix_checkpoint_key(net, nc, no, CcKind::kBbr, trial),
                   mix_to_record(m));
      }
    }
  }
  log.flush();
  return path;
}

TEST(OracleInterpolation, FuzzNeverExtrapolatesAndReproducesLinearFields) {
  const TrialConfig trial = quick_trial();
  const std::vector<int> ncs = {1, 2, 4};
  const std::vector<int> nos = {1, 2};
  const std::vector<double> bdps = {2, 4, 8};
  const std::string lattice =
      write_synth_lattice("oracle_synth.jsonl", ncs, nos, bdps, trial);

  OracleConfig cfg;
  cfg.hydrate_paths = {lattice};
  cfg.no_compute = true;
  cfg.allow_model = false;   // isolate the interpolation tier
  cfg.max_band_deviation = 1e9;
  PayoffOracle oracle{cfg};
  EXPECT_EQ(oracle.cache_size(), ncs.size() * nos.size() * bdps.size());

  std::mt19937_64 rng{42};  // seeded: failures reproduce exactly
  std::uniform_int_distribution<int> nc_d(0, 6), no_d(0, 3);
  std::uniform_real_distribution<double> bdp_d(0.5, 10.0);
  int interpolated = 0, pending = 0;
  for (int i = 0; i < 400; ++i) {
    const int nc = nc_d(rng);
    const int no = no_d(rng);
    const double bdp = bdp_d(rng);
    const OracleQuery q = make_oq(bdp, nc, no, trial);
    const OracleAnswer a = oracle.query(q);

    const bool inside = nc >= 1 && nc <= 4 && no >= 1 && no <= 2 &&
                        q.net.buffer_bytes >= make_params(100, 40, 2).buffer_bytes &&
                        q.net.buffer_bytes <= make_params(100, 40, 8).buffer_bytes;
    if (!inside) {
      // Outside the cached hull (or crossing the zero-flow boundary):
      // refusing is the contract; numbers would be extrapolation.
      if (a.status == OracleStatus::kOk &&
          a.fidelity == OracleFidelity::kExact) {
        continue;  // landed exactly on a lattice point
      }
      EXPECT_EQ(a.status, OracleStatus::kPending) << "nc=" << nc
                                                  << " no=" << no
                                                  << " bdp=" << bdp;
      ++pending;
      continue;
    }
    ASSERT_TRUE(a.ok());
    if (a.fidelity == OracleFidelity::kExact) continue;  // lattice point
    EXPECT_EQ(a.fidelity, OracleFidelity::kInterpolated);
    ++interpolated;

    // Multilinear interpolation of multilinear data is exact (mod fp
    // noise), and automatically inside the corner hull.
    const MixOutcome want = synth_outcome(
        nc, no, static_cast<double>(q.net.buffer_bytes) / 1e6);
    EXPECT_NEAR(a.outcome.per_flow_cubic_mbps, want.per_flow_cubic_mbps,
                1e-6 * want.per_flow_cubic_mbps);
    EXPECT_NEAR(a.outcome.per_flow_other_mbps, want.per_flow_other_mbps,
                1e-6 * want.per_flow_other_mbps);
    EXPECT_NEAR(a.outcome.link_utilization, want.link_utilization, 1e-9);
  }
  EXPECT_GT(interpolated, 50);
  EXPECT_GT(pending, 50);
  EXPECT_EQ(oracle.stats().interp_band_rejected, 0u);
}

TEST(OracleInterpolation, ZeroFlowBoundaryNeverBlends) {
  // Lattice holds nc = 0 and nc = 2 rows. A query at nc = 1 must NOT
  // average a no-CUBIC cell with a CUBIC one — per-flow throughput of an
  // absent class is a different regime, not a small number.
  const TrialConfig trial = quick_trial();
  const std::string lattice = write_synth_lattice(
      "oracle_zero.jsonl", {0, 2}, {1}, {2, 4}, trial);
  OracleConfig cfg;
  cfg.hydrate_paths = {lattice};
  cfg.no_compute = true;
  cfg.allow_model = false;
  PayoffOracle oracle{cfg};

  EXPECT_EQ(oracle.query(make_oq(3, 1, 1, trial)).status,
            OracleStatus::kPending);
  // Exactly on the zero row the axis collapses: that IS cached data.
  const OracleAnswer zero = oracle.query(make_oq(3, 0, 1, trial));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.fidelity, OracleFidelity::kInterpolated);
}

TEST(OracleInterpolation, FailedCellsArePoisonNotCorners) {
  // A cached cell whose every trial failed (trials_completed == 0) must
  // serve its failure on exact hit and never participate in a blend.
  const TrialConfig trial = quick_trial();
  const std::string path = temp_path("oracle_failed.jsonl");
  std::remove(path.c_str());
  {
    CheckpointLog log{path};
    const std::vector<double> cell_bdps = {2.0, 4.0};
    for (std::size_t i = 0; i < cell_bdps.size(); ++i) {
      const NetworkParams net = make_params(100, 40, cell_bdps[i]);
      MixOutcome m;
      if (i == 0) {
        m = synth_outcome(1, 1, static_cast<double>(net.buffer_bytes) / 1e6);
      } else {
        m.trials_failed = 1;
        m.failures = {"trial 0 (seed 1, 1 attempts): watchdog: wedged"};
      }
      log.record(mix_checkpoint_key(net, 1, 1, CcKind::kBbr, trial),
                 mix_to_record(m));
    }
    log.flush();
  }
  OracleConfig cfg;
  cfg.hydrate_paths = {path};
  cfg.no_compute = true;
  cfg.allow_model = false;
  PayoffOracle oracle{cfg};

  const OracleAnswer failed = oracle.query(make_oq(4, 1, 1, trial));
  EXPECT_EQ(failed.status, OracleStatus::kFailed);
  EXPECT_FALSE(failed.message.empty());
  // The midpoint needs the failed cell as its upper corner: refuse.
  EXPECT_EQ(oracle.query(make_oq(3, 1, 1, trial)).status,
            OracleStatus::kPending);
}

TEST(OracleInterpolation, CorruptedRecordsNeverBecomeAnswers) {
  const TrialConfig trial = quick_trial();
  const std::string clean = write_synth_lattice(
      "oracle_clean.jsonl", {1, 2}, {1}, {2, 4}, trial);
  const std::string dirty = temp_path("oracle_dirty.jsonl");
  std::remove(dirty.c_str());
  {
    std::ifstream in{clean};
    std::ofstream out{dirty, std::ios::trunc};
    out << in.rdbuf();
    // Garbage that must be ignored: a lease record, a key with a mangled
    // axis, a non-mix key, and a torn line.
    const NetworkParams net = make_params(100, 40, 2);
    const std::string key =
        mix_checkpoint_key(net, 1, 1, CcKind::kBbr, trial);
    JsonlRecord rec = mix_to_record(synth_outcome(9, 9, 999));
    rec.set("key", lease_key(key));
    out << rec.encode() << '\n';
    std::string mangled = key;
    mangled.replace(mangled.find("nc=1"), 4, "nc=1z");
    rec.set("key", mangled);
    out << rec.encode() << '\n';
    rec.set("key", "nash something");
    out << rec.encode() << '\n';
    out << "{\"key\": \"mix c=12500000 b=";  // torn
  }

  const auto run_queries = [&trial](const std::string& path) {
    OracleConfig cfg;
    cfg.hydrate_paths = {path};
    cfg.no_compute = true;
    cfg.allow_model = false;
    cfg.max_band_deviation = 1e9;
    PayoffOracle oracle{cfg};
    std::vector<OracleAnswer> out;
    std::mt19937_64 rng{7};
    std::uniform_real_distribution<double> bdp_d(1.0, 6.0);
    for (int i = 0; i < 100; ++i) {
      out.push_back(
          oracle.query(make_oq(bdp_d(rng), 1 + i % 3, 1, trial)));
    }
    return out;
  };
  const std::vector<OracleAnswer> want = run_queries(clean);
  const std::vector<OracleAnswer> got = run_queries(dirty);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].status, want[i].status);
    EXPECT_EQ(got[i].fidelity, want[i].fidelity);
    expect_same_outcome(got[i].outcome, want[i].outcome);
  }
}

// --- no_compute contract -------------------------------------------------

TEST(OracleNoCompute, NeverFabricatesNumbers) {
  OracleConfig cfg;
  cfg.no_compute = true;
  cfg.allow_model = false;
  PayoffOracle oracle{cfg};
  const MixOutcome zero;
  std::mt19937_64 rng{11};
  std::uniform_int_distribution<int> n_d(0, 8);
  std::uniform_real_distribution<double> bdp_d(0.2, 40.0);
  for (int i = 0; i < 200; ++i) {
    const OracleAnswer a =
        oracle.query(make_oq(bdp_d(rng), n_d(rng), n_d(rng), quick_trial()));
    EXPECT_EQ(a.status, OracleStatus::kPending);
    EXPECT_EQ(a.reason, "no-compute");  // pinned: the serve protocol
                                        // forwards this tag verbatim
    EXPECT_FALSE(a.message.empty());
    expect_same_outcome(a.outcome, zero);  // all zeros: nothing invented
  }
  EXPECT_EQ(oracle.stats().pending, 200u);
  EXPECT_EQ(oracle.cache_size(), 0u);
}

// Pending answers carry a typed `reason` tag: "no-compute" (policy),
// "shed" (daemon load shedding), "timeout" (deadline expiry). The tags are
// pinned here because the serve wire protocol and its tests key off them.
TEST(OracleNoCompute, PendingReasonsAreTypedAndNeverFabricate) {
  OracleConfig cfg;
  cfg.allow_model = false;
  PayoffOracle oracle{cfg};
  const MixOutcome zero;
  const OracleQuery q = make_oq(7, 2, 2, quick_trial());
  for (const char* reason : {"shed", "timeout"}) {
    const OracleAnswer a = oracle.answer_without_compute(q, reason);
    EXPECT_EQ(a.status, OracleStatus::kPending);
    EXPECT_EQ(a.reason, reason);
    EXPECT_FALSE(a.message.empty());
    expect_same_outcome(a.outcome, zero);
  }
  // Where the model applies, a degraded answer upgrades to model-only
  // instead of pending — honestly tagged, never invented.
  OracleConfig model_cfg;
  PayoffOracle model_oracle{model_cfg};
  const OracleAnswer m = model_oracle.answer_without_compute(q, "shed");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.fidelity, OracleFidelity::kModelOnly);
  EXPECT_TRUE(m.reason.empty());
}

TEST(OracleNoCompute, ModelTierOnlyWhereTheModelApplies) {
  OracleConfig cfg;
  cfg.no_compute = true;
  PayoffOracle oracle{cfg};
  // Pristine BBR mix inside the validity domain: model-only answer.
  const OracleAnswer ok = oracle.query(make_oq(5, 2, 3, quick_trial()));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.fidelity, OracleFidelity::kModelOnly);
  // No CUBIC flows: the closed forms don't cover it — pending, not a guess.
  EXPECT_EQ(oracle.query(make_oq(5, 0, 3, quick_trial())).status,
            OracleStatus::kPending);
  // Impaired path: ditto.
  OracleQuery impaired = make_oq(5, 2, 3, quick_trial());
  impaired.trial.impairments.loss_rate = 0.01;
  EXPECT_EQ(oracle.query(impaired).status, OracleStatus::kPending);
  // Non-BBR challenger: ditto.
  OracleQuery copa = make_oq(5, 2, 3, quick_trial());
  copa.challenger = CcKind::kCopa;
  EXPECT_EQ(oracle.query(copa).status, OracleStatus::kPending);
}

// --- batch + concurrency -------------------------------------------------

TEST(OracleBatch, MatchesSingleQueriesInOrder) {
  const TrialConfig trial = quick_trial();
  const std::vector<int> ncs = {1, 2};
  const std::string lattice = write_synth_lattice(
      "oracle_batch.jsonl", ncs, {1}, {2, 4}, trial);

  const auto make_queries = [&trial] {
    std::vector<OracleQuery> qs;
    qs.push_back(make_oq(2, 1, 1, trial));  // exact hit
    qs.push_back(make_oq(3, 1, 1, trial));  // interpolated
    qs.push_back(make_oq(9, 1, 1, trial));  // outside hull -> model/pending
    qs.push_back(make_oq(2, 1, 1, trial));  // duplicate of [0]
    return qs;
  };

  OracleConfig cfg;
  cfg.hydrate_paths = {lattice};
  cfg.no_compute = true;
  cfg.max_band_deviation = 1e9;
  PayoffOracle batch_oracle{cfg};
  PayoffOracle single_oracle{cfg};

  const std::vector<OracleAnswer> batch =
      batch_oracle.query_batch(make_queries());
  ASSERT_EQ(batch.size(), 4u);
  const std::vector<OracleQuery> qs = make_queries();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const OracleAnswer want = single_oracle.query(qs[i]);
    EXPECT_EQ(batch[i].status, want.status) << i;
    EXPECT_EQ(batch[i].fidelity, want.fidelity) << i;
    EXPECT_EQ(batch[i].key, want.key) << i;
    expect_same_outcome(batch[i].outcome, want.outcome);
  }
}

TEST(OracleConcurrency, HammerSharedOracleAcrossThreads) {
  // Real computes racing on the same 4 cells from 8 threads: every thread
  // must see bit-identical answers (cells are pure functions of keys), the
  // memo must converge to exactly 4 entries, and tsan must stay silent.
  TrialConfig trial = quick_trial();
  trial.duration = from_sec(2);
  trial.warmup = from_sec(1) / 2;

  OracleConfig cfg;
  cfg.cache_path = temp_path("oracle_hammer.jsonl");
  std::remove(cfg.cache_path.c_str());
  cfg.allow_interpolation = false;  // force every miss through compute
  PayoffOracle oracle{cfg};

  const std::vector<double> bdps = {1, 2, 3, 4};
  std::vector<MixOutcome> reference(bdps.size());
  for (std::size_t c = 0; c < bdps.size(); ++c) {
    const OracleQuery q = make_oq(bdps[c], 1, 1, trial);
    reference[c] = run_mix_trials(q.net, 1, 1, CcKind::kBbr, trial);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t c = 0; c < bdps.size(); ++c) {
          // Stagger so different threads race different cells first.
          const std::size_t idx = (c + static_cast<std::size_t>(t)) %
                                  bdps.size();
          const OracleAnswer a =
              oracle.query(make_oq(bdps[idx], 1, 1, trial));
          if (!a.ok() || a.fidelity != OracleFidelity::kExact ||
              a.outcome.per_flow_cubic_mbps !=
                  reference[idx].per_flow_cubic_mbps ||
              a.outcome.per_flow_other_mbps !=
                  reference[idx].per_flow_other_mbps) {
            ++mismatches[t];
          }
        }
        (void)oracle.cache_size();
        (void)oracle.stats();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;
  EXPECT_EQ(oracle.cache_size(), bdps.size());
  oracle.flush();
  // Whatever the race schedule, the persisted cache replays to the same
  // memo (duplicate appends are last-write-wins of identical bits).
  OracleConfig replay_cfg;
  replay_cfg.hydrate_paths = {cfg.cache_path};
  replay_cfg.no_compute = true;
  replay_cfg.allow_model = false;
  PayoffOracle replay{replay_cfg};
  expect_same_snapshot(replay.snapshot(), oracle.snapshot());
}

}  // namespace
}  // namespace bbrnash
