// Oracle-daemon drill suite (exp/serve.hpp): every row of the serve
// failure matrix, executed for real.
//
//   * an 8-client hammer against one daemon: every reply bit-identical to
//     a fresh reference daemon serving the same cells;
//   * a genuine `kill -9` mid-batch, then a restart over the stale socket:
//     the re-hydrated daemon's answers are bit-identical strings to an
//     uninterrupted daemon's (the headline acceptance gate);
//   * SIGTERM drain: every request the daemon had received is answered,
//     the cache is flushed, the socket file is unlinked, exit 0;
//   * all three daemon chaos classes — kClientDisconnect (client retry
//     converges), kServeCrash (_Exit(42) mid-compute, restart recovers),
//     kSlowClient (stalled client dropped, others unharmed) — each leaving
//     a typed incident record in <cache>.incidents.jsonl;
//   * load shedding (pending reason=shed, or honest model-only downgrade),
//     per-request deadlines (pending reason=timeout, compute still lands
//     in the memo), bad-request error frames, and live-daemon bind
//     refusal.
//
// Forks real daemon processes, so — like test_fabric — this suite is NOT
// run under ThreadSanitizer; the serve preset configures ASan.
#include "exp/serve.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/chaos.hpp"
#include "exp/oracle.hpp"
#include "util/ipc.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// One tiny compute cell (~1 s of wall clock): 10 Mbps, 20 ms, 1 trial.
std::string cell_line(double buffer_bdp, int nc, int no, std::uint64_t seed,
                      double duration_s = 2.0) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "capacity=10 rtt=20 buffer-bdp=%g cubic=%d other=%d "
                "trials=1 duration=%g warmup=0.5 seed=%llu",
                buffer_bdp, nc, no, duration_s,
                static_cast<unsigned long long>(seed));
  return buf;
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in{path};
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

std::vector<JsonlRecord> read_records(const std::string& path) {
  std::vector<JsonlRecord> out;
  std::ifstream in{path};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto rec = JsonlRecord::parse(line)) out.push_back(*rec);
  }
  return out;
}

// ifstream cannot open a socket file, so existence checks go through
// access(2) — the kill drills assert on the stale socket file itself.
bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// A heavier cell (~0.3 s Release, seconds under ASan): the unit for drills
// that must land a signal or a deadline MID-compute.
std::string heavy_cell_line(int nc, int no, std::uint64_t seed) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "capacity=200 rtt=40 buffer-bdp=8 cubic=%d other=%d "
                "trials=1 duration=60 warmup=10 seed=%llu",
                nc, no, static_cast<unsigned long long>(seed));
  return buf;
}

// Daemon hosted on a thread inside the test process (the --smoke shape):
// request_stop() instead of signals, full access to stats().
struct HostedDaemon {
  explicit HostedDaemon(ServeConfig cfg) : daemon(std::move(cfg)) {
    host = std::thread{[this] { clean = daemon.run(); }};
    for (int i = 0; i < 1000 && !daemon.serving(); ++i) sleep_ms(10);
  }
  ~HostedDaemon() { stop(); }
  void stop() {
    if (host.joinable()) {
      daemon.request_stop();
      host.join();
    }
  }

  OracleDaemon daemon;
  std::thread host;
  bool clean = false;
};

// Daemon in a real child process — the unit a SIGKILL/SIGTERM drill needs.
pid_t spawn_daemon_process(const ServeConfig& cfg) {
  // bbrnash-lint: allow(process-control) -- the kill/drain drills need a
  // daemon that is a real process, not a thread.
  const pid_t pid = fork();
  if (pid == 0) {
    OracleDaemon daemon{cfg};
    const bool clean = daemon.run();
    // bbrnash-lint: allow(process-control) -- a fork child of the gtest
    // process must leave via _exit (no duplicated atexit/flush state).
    _exit(clean ? 0 : 1);
  }
  return pid;
}

void wait_listening(const std::string& socket_path) {
  for (int i = 0; i < 1000; ++i) {
    std::string err;
    const int fd = ipc_connect(socket_path, &err);
    if (fd >= 0) {
      ipc_close(fd);
      return;
    }
    sleep_ms(10);
  }
  FAIL() << "daemon on " << socket_path << " never started listening";
}

ServeConfig base_config(const std::string& tag) {
  ServeConfig cfg;
  cfg.socket_path = temp_path(tag + ".sock");
  cfg.oracle.cache_path = temp_path(tag + ".jsonl");
  // Heavy cells run seconds under ASan; with the production 10 s deadline a
  // slow machine would answer some REFERENCE cells model-only and the
  // bit-identity drills would compare against a timing-dependent string.
  // Only the deadline drill wants timeouts, and it overrides this.
  cfg.request_deadline_ms = 600000.0;
  std::remove(cfg.socket_path.c_str());
  std::remove(cfg.oracle.cache_path.c_str());
  std::remove((cfg.oracle.cache_path + ".incidents.jsonl").c_str());
  return cfg;
}

ClientConfig client_config(const std::string& socket_path,
                           int max_attempts = 4) {
  ClientConfig cc;
  cc.socket_path = socket_path;
  cc.max_attempts = max_attempts;
  cc.backoff_base_ms = 10.0;
  cc.backoff_cap_ms = 100.0;
  return cc;
}

// Reference answers: a fresh daemon on its own cache serving the same
// cells. Raw reply strings are the unit of comparison — JsonlRecord sorts
// keys, so equal answers MUST be equal strings.
std::vector<std::string> reference_replies(
    const std::string& tag, const std::vector<std::string>& lines) {
  ServeConfig cfg = base_config(tag);
  HostedDaemon ref{cfg};
  OracleClient client{client_config(cfg.socket_path)};
  std::vector<ServeReply> replies;
  EXPECT_EQ(client.query_lines(lines, &replies), ClientStatus::kOk);
  std::vector<std::string> raw;
  raw.reserve(replies.size());
  for (const ServeReply& r : replies) raw.push_back(r.raw);
  return raw;
}

// --- basic round trip + stats verb ----------------------------------------

TEST(ServeRoundTrip, ComputesThenServesTheMemoBitIdentically) {
  ServeConfig cfg = base_config("serve_smoke");
  HostedDaemon hosted{cfg};
  ASSERT_TRUE(hosted.daemon.serving()) << hosted.daemon.error();

  // Two *sequential* round trips for the same cell: the first is a tier-3
  // compute, the second must come straight from the memo — and the wire
  // string must not change. (Pipelining the same cell twice instead may
  // legitimately compute both: the second arrives mid-compute.)
  OracleClient client{client_config(cfg.socket_path)};
  const std::string cell = cell_line(2, 1, 1, 1);
  std::vector<ServeReply> replies;
  ASSERT_EQ(client.query_lines({cell}, &replies), ClientStatus::kOk);
  ASSERT_EQ(replies.size(), 1u);
  const ServeReply first = replies[0];
  EXPECT_EQ(first.record.get_string("status"), "ok");
  EXPECT_EQ(first.record.get_string("fidelity"), "exact");
  ASSERT_EQ(client.query_lines({cell}, &replies), ClientStatus::kOk);
  EXPECT_EQ(replies[0].raw, first.raw);

  // The reply is the same record a direct PayoffOracle query would build.
  OracleConfig direct_cfg;
  PayoffOracle direct{direct_cfg};
  const OracleAnswer direct_ans =
      direct.query(oracle_query_from_tokens(parse_query_tokens(cell)));
  EXPECT_EQ(first.raw, serve_answer_record(direct_ans).encode());

  JsonlRecord stats;
  ASSERT_EQ(client.fetch_stats(&stats), ClientStatus::kOk);
  EXPECT_EQ(stats.get_string("schema"), "bbrnash-serve-stats-v1");
  EXPECT_EQ(stats.get_u64("requests"), 2u);
  EXPECT_EQ(stats.get_u64("computed"), 1u);
  EXPECT_EQ(stats.get_u64("answered_inline"), 1u);

  hosted.stop();
  EXPECT_TRUE(hosted.clean) << hosted.daemon.error();
  // Clean drain: cache flushed, socket unlinked.
  EXPECT_EQ(count_lines(cfg.oracle.cache_path), 1u);
  EXPECT_FALSE(file_exists(cfg.socket_path));
}

TEST(ServeRoundTrip, BadRequestsGetErrorFramesNotDisconnects) {
  ServeConfig cfg = base_config("serve_bad");
  HostedDaemon hosted{cfg};
  ASSERT_TRUE(hosted.daemon.serving()) << hosted.daemon.error();

  std::string err;
  const int fd = ipc_connect(cfg.socket_path, &err);
  ASSERT_GE(fd, 0) << err;
  ipc_set_nonblocking(fd);
  IpcLineReader reader;
  const auto read_line = [&]() -> std::string {
    std::vector<std::string> lines;
    for (int i = 0; i < 500; ++i) {
      struct pollfd pfd{fd, POLLIN, 0};
      (void)poll(&pfd, 1, 10);
      if (!reader.drain(fd, &lines)) break;
      if (!lines.empty()) return lines.front();
    }
    return lines.empty() ? std::string{} : lines.front();
  };

  ASSERT_TRUE(ipc_write_line(fd, "bogus 7 capacity=10"));
  EXPECT_EQ(read_line().rfind("error 7 ", 0), 0u);
  ASSERT_TRUE(ipc_write_line(fd, "query 8 capacity=nope"));
  EXPECT_EQ(read_line().rfind("error 8 ", 0), 0u);
  // The session survives its own bad requests.
  ASSERT_TRUE(ipc_write_line(fd, "ping 9"));
  EXPECT_EQ(read_line(), "pong 9");
  ipc_close(fd);

  for (int i = 0; i < 200 && hosted.daemon.stats().bad_requests < 2; ++i) {
    sleep_ms(10);
  }
  EXPECT_EQ(hosted.daemon.stats().bad_requests, 2u);
}

TEST(ServeRoundTrip, LiveDaemonRefusesASecondBind) {
  ServeConfig cfg = base_config("serve_live");
  HostedDaemon hosted{cfg};
  ASSERT_TRUE(hosted.daemon.serving()) << hosted.daemon.error();

  OracleDaemon second{cfg};
  EXPECT_FALSE(second.run());
  EXPECT_FALSE(second.error().empty());

  // The incumbent is unharmed.
  OracleClient client{client_config(cfg.socket_path)};
  JsonlRecord stats;
  EXPECT_EQ(client.fetch_stats(&stats), ClientStatus::kOk);
}

// --- concurrency: 8 clients share one daemon ------------------------------

TEST(ServeHammer, EightClientsGetBitIdenticalAnswers) {
  const std::vector<std::string> cells = {
      cell_line(2, 1, 1, 1),
      cell_line(4, 1, 1, 2),
      cell_line(2, 2, 1, 3),
      cell_line(4, 1, 2, 4),
  };
  const std::vector<std::string> want =
      reference_replies("serve_hammer_ref", cells);
  ASSERT_EQ(want.size(), cells.size());

  ServeConfig cfg = base_config("serve_hammer");
  cfg.compute_threads = 2;
  HostedDaemon hosted{cfg};
  ASSERT_TRUE(hosted.daemon.serving()) << hosted.daemon.error();

  constexpr int kClients = 8;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      OracleClient client{client_config(cfg.socket_path)};
      std::vector<ServeReply> replies;
      const ClientStatus st = client.query_lines(cells, &replies);
      EXPECT_EQ(st, ClientStatus::kOk) << "client " << c;
      for (const ServeReply& r : replies) got[c].push_back(r.raw);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), want.size()) << "client " << c;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[c][i], want[i]) << "client " << c << " cell " << i;
    }
  }
  const ServeStats s = hosted.daemon.stats();
  EXPECT_EQ(s.clients_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kClients) * cells.size());
  // Every request was answered honestly: either straight from the memo or
  // via a (possibly duplicated, but deterministic) compute — nothing shed,
  // nothing timed out, nobody dropped.
  EXPECT_EQ(s.answered_inline + s.computed, s.requests);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.slow_clients_dropped, 0u);
}

// --- kill -9 mid-batch, restart over the stale socket ---------------------

TEST(ServeKillDrill, KillNineMidBatchThenRestartIsBitIdentical) {
  const std::vector<std::string> cells = {
      heavy_cell_line(1, 1, 11),
      heavy_cell_line(2, 1, 12),
      heavy_cell_line(1, 2, 13),
      heavy_cell_line(2, 2, 14),
  };
  const std::vector<std::string> want =
      reference_replies("serve_kill9_ref", cells);

  ServeConfig cfg = base_config("serve_kill9");
  const pid_t pid = spawn_daemon_process(cfg);
  ASSERT_GE(pid, 0);
  wait_listening(cfg.socket_path);

  // A client works through the batch on its own thread while the main
  // thread waits for the first cell to reach the cache log — then SIGKILLs
  // the daemon mid-batch, exactly like an OOM killer.
  std::thread batch{[&] {
    OracleClient client{client_config(cfg.socket_path, 2)};
    std::vector<ServeReply> replies;
    (void)client.query_lines(cells, &replies);
  }};
  for (int i = 0; i < 3000 && count_lines(cfg.oracle.cache_path) == 0; ++i) {
    sleep_ms(10);
  }
  ASSERT_GE(count_lines(cfg.oracle.cache_path), 1u);
  // bbrnash-lint: allow(process-control) -- the genuine kill -9 the serve
  // restart path claims to survive.
  kill(pid, SIGKILL);
  int status = 0;
  // bbrnash-lint: allow(process-control) -- reap the killed daemon.
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  batch.join();

  // SIGKILL leaves the socket file behind: the restart must detect the
  // stale endpoint, rebind, and re-hydrate everything that reached disk.
  EXPECT_TRUE(file_exists(cfg.socket_path));
  HostedDaemon restarted{cfg};
  ASSERT_TRUE(restarted.daemon.serving()) << restarted.daemon.error();

  OracleClient client{client_config(cfg.socket_path)};
  std::vector<ServeReply> replies;
  ASSERT_EQ(client.query_lines(cells, &replies), ClientStatus::kOk);
  ASSERT_EQ(replies.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(replies[i].raw, want[i]) << "cell " << i;
  }
  // At least the pre-kill cell came straight from the re-hydrated memo.
  EXPECT_GE(restarted.daemon.stats().answered_inline, 1u);
}

// --- SIGTERM: graceful drain ----------------------------------------------

TEST(ServeDrain, SigtermAnswersEverythingFlushesAndUnlinks) {
  const std::vector<std::string> cells = {
      heavy_cell_line(1, 1, 21),
      heavy_cell_line(2, 1, 22),
      heavy_cell_line(1, 2, 23),
  };

  ServeConfig cfg = base_config("serve_drain");
  cfg.handle_signals = true;
  const pid_t pid = spawn_daemon_process(cfg);
  ASSERT_GE(pid, 0);
  wait_listening(cfg.socket_path);

  // The client pipelines the whole batch at connect, so once the first
  // reply lands every request has been *received* — the drain contract
  // covers all of them.
  std::vector<ServeReply> replies;
  ClientStatus st = ClientStatus::kConnectFailed;
  std::thread batch{[&] {
    OracleClient client{client_config(cfg.socket_path)};
    st = client.query_lines(cells, &replies);
  }};
  for (int i = 0; i < 3000 && count_lines(cfg.oracle.cache_path) == 0; ++i) {
    sleep_ms(10);
  }
  ASSERT_GE(count_lines(cfg.oracle.cache_path), 1u);
  // bbrnash-lint: allow(process-control) -- the SIGTERM drain drill.
  kill(pid, SIGTERM);
  batch.join();

  // Every request got its answer before the daemon closed the session.
  EXPECT_EQ(st, ClientStatus::kOk);
  ASSERT_EQ(replies.size(), cells.size());
  for (std::size_t i = 0; i < replies.size(); ++i) {
    EXPECT_EQ(replies[i].record.get_string("status"), "ok") << "cell " << i;
  }
  int status = 0;
  // bbrnash-lint: allow(process-control) -- reap the drained daemon.
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // Drained: cache flushed to disk, socket file removed.
  EXPECT_EQ(count_lines(cfg.oracle.cache_path), cells.size());
  EXPECT_FALSE(file_exists(cfg.socket_path));
}

// --- chaos drills ---------------------------------------------------------

TEST(ServeChaos, ClientDisconnectDrillConvergesViaRetry) {
  const std::string cell = cell_line(2, 1, 1, 31);
  const std::vector<std::string> want =
      reference_replies("serve_chaos_cd_ref", {cell});

  ServeConfig cfg = base_config("serve_chaos_cd");
  cfg.chaos = std::make_shared<ChaosInjector>(7);
  cfg.chaos_serve_crash = false;
  cfg.chaos_slow_client = false;
  HostedDaemon hosted{cfg};
  ASSERT_TRUE(hosted.daemon.serving()) << hosted.daemon.error();

  OracleClient client{client_config(cfg.socket_path)};
  std::vector<ServeReply> replies;
  ASSERT_EQ(client.query_lines({cell}, &replies), ClientStatus::kOk);
  // The drill severed the first session mid-request; the bounded-backoff
  // retry reconnected, resent, and converged on the fault-free answer.
  EXPECT_GE(client.reconnects(), 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].raw, want[0]);
  EXPECT_EQ(cfg.chaos->fired(ChaosClass::kClientDisconnect), 1u);

  const auto incidents =
      read_records(cfg.oracle.cache_path + ".incidents.jsonl");
  ASSERT_GE(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].get_string("type"), "bbrnash-serve-v1");
  EXPECT_EQ(incidents[0].get_string("trigger"), "client-disconnect");
  EXPECT_FALSE(incidents[0].get_string("cell_key").empty());
  EXPECT_GE(hosted.daemon.stats().incidents, 1u);
}

TEST(ServeChaos, ServeCrashDrillDiesMidComputeAndRestartRecovers) {
  const std::string cell = cell_line(2, 1, 1, 41);
  const std::vector<std::string> want =
      reference_replies("serve_chaos_crash_ref", {cell});

  ServeConfig cfg = base_config("serve_chaos_crash");
  cfg.chaos = std::make_shared<ChaosInjector>(7);
  cfg.chaos_client_disconnect = false;
  cfg.chaos_slow_client = false;
  const pid_t pid = spawn_daemon_process(cfg);
  ASSERT_GE(pid, 0);
  wait_listening(cfg.socket_path);

  // The drill _Exit(42)s the daemon mid-compute: this client's bounded
  // retry runs out against the stale socket.
  OracleClient doomed{client_config(cfg.socket_path, 2)};
  std::vector<ServeReply> replies;
  EXPECT_NE(doomed.query_lines({cell}, &replies), ClientStatus::kOk);
  int status = 0;
  // bbrnash-lint: allow(process-control) -- reap the crashed daemon.
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42);

  // The one breadcrumb a mid-compute crash leaves: a typed incident,
  // written BEFORE the memo commit (the cell must not be in the cache).
  const auto incidents =
      read_records(cfg.oracle.cache_path + ".incidents.jsonl");
  ASSERT_GE(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].get_string("trigger"), "serve-crash");
  EXPECT_EQ(count_lines(cfg.oracle.cache_path), 0u);

  // Restart (no chaos) over the stale socket: the answer a retrying client
  // finally gets is bit-identical to a never-crashed daemon's.
  cfg.chaos.reset();
  HostedDaemon restarted{cfg};
  ASSERT_TRUE(restarted.daemon.serving()) << restarted.daemon.error();
  OracleClient client{client_config(cfg.socket_path)};
  ASSERT_EQ(client.query_lines({cell}, &replies), ClientStatus::kOk);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].raw, want[0]);
}

TEST(ServeChaos, SlowClientDrillDropsTheStalledSessionOnly) {
  const std::string cell = cell_line(2, 1, 1, 51);
  const std::vector<std::string> want =
      reference_replies("serve_chaos_slow_ref", {cell});

  ServeConfig cfg = base_config("serve_chaos_slow");
  cfg.chaos = std::make_shared<ChaosInjector>(7);
  cfg.chaos_client_disconnect = false;
  cfg.chaos_serve_crash = false;
  cfg.write_stall_ms = 100.0;  // trip the stall detector fast
  HostedDaemon hosted{cfg};
  ASSERT_TRUE(hosted.daemon.serving()) << hosted.daemon.error();

  // The drill pins this client's reply in the daemon's write buffer until
  // the no-progress deadline drops the session; the retry reconnects and
  // the memoized cell answers instantly (the drill fires once per site).
  OracleClient client{client_config(cfg.socket_path)};
  std::vector<ServeReply> replies;
  ASSERT_EQ(client.query_lines({cell}, &replies), ClientStatus::kOk);
  EXPECT_GE(client.reconnects(), 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].raw, want[0]);

  const ServeStats s = hosted.daemon.stats();
  EXPECT_EQ(s.slow_clients_dropped, 1u);
  const auto incidents =
      read_records(cfg.oracle.cache_path + ".incidents.jsonl");
  ASSERT_GE(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].get_string("trigger"), "slow-client");
}

// --- load shedding + deadlines --------------------------------------------

TEST(ServePressure, ShedRequestsCarryTypedReasonsAndNeverFabricate) {
  // With the model tier disabled, a shed miss must be pending(reason=shed).
  ServeConfig cfg = base_config("serve_shed");
  cfg.shed_queue_limit = 0;  // everything sheds
  cfg.oracle.allow_model = false;
  HostedDaemon hosted{cfg};
  ASSERT_TRUE(hosted.daemon.serving()) << hosted.daemon.error();

  OracleClient client{client_config(cfg.socket_path)};
  std::vector<ServeReply> replies;
  ASSERT_EQ(client.query_lines({cell_line(2, 1, 1, 61)}, &replies),
            ClientStatus::kOk);
  EXPECT_EQ(replies[0].record.get_string("status"), "pending");
  EXPECT_EQ(replies[0].record.get_string("reason"), "shed");
  EXPECT_FALSE(replies[0].record.get_string("message").empty());
  EXPECT_EQ(hosted.daemon.stats().shed, 1u);
  EXPECT_EQ(hosted.daemon.stats().computed, 0u);
  hosted.stop();

  // With the model tier allowed and applicable, shedding downgrades to an
  // honestly-tagged model-only answer instead.
  ServeConfig model_cfg = base_config("serve_shed_model");
  model_cfg.shed_queue_limit = 0;
  HostedDaemon model_hosted{model_cfg};
  ASSERT_TRUE(model_hosted.daemon.serving()) << model_hosted.daemon.error();
  OracleClient model_client{client_config(model_cfg.socket_path)};
  ASSERT_EQ(model_client.query_lines({cell_line(2, 1, 1, 61)}, &replies),
            ClientStatus::kOk);
  EXPECT_EQ(replies[0].record.get_string("status"), "ok");
  EXPECT_EQ(replies[0].record.get_string("fidelity"), "model-only");
}

TEST(ServePressure, DeadlineTimeoutIsTypedAndTheComputeStillLands) {
  ServeConfig cfg = base_config("serve_deadline");
  cfg.request_deadline_ms = 30.0;  // well under the heavy cell's compute
  cfg.oracle.allow_model = false;
  HostedDaemon hosted{cfg};
  ASSERT_TRUE(hosted.daemon.serving()) << hosted.daemon.error();

  const std::string cell = heavy_cell_line(3, 3, 71);
  OracleClient client{client_config(cfg.socket_path)};
  std::vector<ServeReply> replies;
  ASSERT_EQ(client.query_lines({cell}, &replies), ClientStatus::kOk);
  EXPECT_EQ(replies[0].record.get_string("status"), "pending");
  EXPECT_EQ(replies[0].record.get_string("reason"), "timeout");
  EXPECT_GE(hosted.daemon.stats().timeouts, 1u);

  // The timed-out compute keeps running and is memoized: retrying the same
  // cell converges on the exact answer.
  bool converged = false;
  for (int i = 0; i < 300 && !converged; ++i) {
    sleep_ms(100);
    ASSERT_EQ(client.query_lines({cell}, &replies), ClientStatus::kOk);
    converged = replies[0].record.get_string("status") == "ok";
  }
  ASSERT_TRUE(converged) << "timed-out compute never reached the memo";
  EXPECT_EQ(replies[0].record.get_string("fidelity"), "exact");
}

}  // namespace
}  // namespace bbrnash
