// Randomized property tests for the two user-facing input surfaces:
//
//   * Scenario::validate() — a scenario with any combination of corrupted
//     knobs must be rejected with std::invalid_argument (the CLI turns
//     that into a clean exit 2), never accepted and never crash deeper in
//     the stack.
//   * the strict CLI parsers (exp/cli_flags.hpp) — arbitrary garbage
//     tokens must either parse to the exact value strtod/strtoull would
//     produce for a fully-consumed token, or throw std::invalid_argument;
//     nothing may crash, and nothing half-numeric may slip through.
//
// Seeded std::mt19937_64 throughout: a failure reproduces by seed.
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/cli_flags.hpp"
#include "exp/scenario.hpp"
#include "model/network_params.hpp"

namespace bbrnash {
namespace {

Scenario valid_scenario() {
  const NetworkParams net = make_params(50, 30, 3.0);
  Scenario s = make_mix_scenario(net, 2, 2);
  s.duration = from_sec(20);
  s.warmup = from_sec(5);
  return s;
}

/// Applies one randomly chosen corruption to `s`; every branch makes the
/// scenario invalid in a way validate() documents.
void corrupt(Scenario& s, std::mt19937_64& rng) {
  switch (rng() % 12) {
    case 0:
      s.duration = 0;
      break;
    case 1:
      s.duration = -from_sec(5);
      break;
    case 2:
      s.warmup = s.duration;  // warmup must be < duration
      break;
    case 3:
      s.capacity = 0;
      break;
    case 4:
      s.buffer_bytes = -1;
      break;
    case 5:
      s.flows.clear();
      break;
    case 6:
      s.mss = 0;
      break;
    case 7:
      s.impairments.loss_rate = 1.5;
      break;
    case 8:
      s.ack_impairments.loss_rate = -0.25;
      break;
    case 9:
      s.capacity_schedule.push_back(RateChange{from_sec(1), 0});
      break;
    case 10:
      s.audit.enabled = true;
      s.audit.sample_period = 0;
      break;
    default:
      s.audit.goodput_slack = 0.0;
      break;
  }
}

TEST(ScenarioFuzz, CorruptedScenariosAlwaysThrowInvalidArgument) {
  std::mt19937_64 rng{0xB0B5EEDULL};
  for (int iter = 0; iter < 500; ++iter) {
    Scenario s = valid_scenario();
    // One to three stacked corruptions: combinations must not mask the
    // rejection or turn it into a different exception type.
    const int corruptions = 1 + static_cast<int>(rng() % 3);
    for (int c = 0; c < corruptions; ++c) corrupt(s, rng);
    try {
      s.validate();
      FAIL() << "corrupted scenario accepted at iter " << iter;
    } catch (const std::invalid_argument&) {
      // expected
    } catch (const std::exception& e) {
      FAIL() << "wrong exception type at iter " << iter << ": " << e.what();
    }
  }
}

TEST(ScenarioFuzz, ValidScenarioStaysValid) {
  EXPECT_NO_THROW(valid_scenario().validate());
}

// --- Strict flag parsers -------------------------------------------------

/// Random token from a printable alphabet biased toward numeric shapes, so
/// the fuzz covers both near-misses ("1e", "0x1f", "1.2.3", "7 ") and
/// genuine numbers.
std::string random_token(std::mt19937_64& rng) {
  static const char alphabet[] = "0123456789.eE+-xXaf_ ,\t";
  const std::size_t len = rng() % 10;
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out += alphabet[rng() % (sizeof alphabet - 1)];
  }
  return out;
}

TEST(CliFlagsFuzz, ParseDoubleNeverCrashesOrHalfParses) {
  std::mt19937_64 rng{0xD0D0FEEDULL};
  for (int iter = 0; iter < 5000; ++iter) {
    const std::string token = random_token(rng);
    try {
      const double v = parse_double_strict("--fuzz", token);
      // Accepted: the whole token must be a finite number — re-parsing
      // with strtod must consume every byte and agree.
      char* end = nullptr;
      // bbrnash-lint: allow(raw-parse) -- differential reference: the
      // fuzz oracle the strict parser is checked against.
      const double ref = std::strtod(token.c_str(), &end);
      EXPECT_EQ(end, token.c_str() + token.size()) << "'" << token << "'";
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_EQ(v, ref) << "'" << token << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("--fuzz"), std::string::npos);
    }
  }
}

TEST(CliFlagsFuzz, ParseU64NeverCrashesOrAcceptsSigns) {
  std::mt19937_64 rng{0xFACEULL};
  for (int iter = 0; iter < 5000; ++iter) {
    const std::string token = random_token(rng);
    try {
      const std::uint64_t v = parse_u64_strict("--fuzz", token);
      // Accepted tokens are pure decimal digit strings.
      ASSERT_FALSE(token.empty());
      for (const char c : token) {
        EXPECT_TRUE(c >= '0' && c <= '9') << "'" << token << "'";
      }
      // bbrnash-lint: allow(raw-parse) -- differential reference oracle.
      EXPECT_EQ(v, std::strtoull(token.c_str(), nullptr, 10));
    } catch (const std::invalid_argument&) {
      // expected for everything else
    }
  }
}

TEST(CliFlagsFuzz, KnownGoodAndBadTokens) {
  EXPECT_EQ(parse_double_strict("--x", "2.5"), 2.5);
  EXPECT_EQ(parse_double_strict("--x", "1e3"), 1000.0);
  EXPECT_EQ(parse_u64_strict("--x", "18446744073709551615"),
            18446744073709551615ULL);
  EXPECT_EQ(parse_int_strict("--x", "2147483647"), 2147483647);
  EXPECT_THROW((void)parse_double_strict("--x", ""), std::invalid_argument);
  EXPECT_THROW((void)parse_double_strict("--x", "1.5x"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_double_strict("--x", "nan"), std::invalid_argument);
  EXPECT_THROW((void)parse_double_strict("--x", "inf"), std::invalid_argument);
  EXPECT_THROW((void)parse_double_strict("--x", "1e999"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_u64_strict("--x", "-3"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64_strict("--x", "+3"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64_strict("--x", "3.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64_strict("--x", "18446744073709551616"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_int_strict("--x", "2147483648"),
               std::invalid_argument);
}

}  // namespace
}  // namespace bbrnash
