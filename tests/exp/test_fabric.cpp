// The sweep fabric's contract, drilled end to end with REAL processes:
//
//   * any claim/crash/reassignment schedule yields numbers bit-identical
//     to a serial run_mix_trials loop (the fabric must never change
//     results, only survive the environment);
//   * each process-level chaos class — worker SIGKILL mid-cell, worker
//     heartbeat stall, supervisor crash-before-commit — recovers to the
//     fault-free numbers, with the lease/incident audit trail to prove
//     the failure actually happened;
//   * a supervisor killed with SIGKILL (a genuine `kill -9`, not a drill)
//     leaves a checkpoint a fresh supervisor resumes to completion;
//   * degradation is typed (kPartial + failed-cell list), never an abort;
//   * the checkpoint round-trips entry-for-entry, and the fabric-stats
//     record's schema stays pinned.
#include "exp/fabric.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exp/chaos.hpp"
#include "exp/checkpoint.hpp"
#include "exp/nash_search.hpp"
#include "exp/oracle.hpp"
#include "exp/sweeps.hpp"
#include "model/network_params.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {
namespace {

NetworkParams small_net() { return make_params(20, 20, 3.0); }

TrialConfig small_trial() {
  TrialConfig t;
  t.duration = from_sec(3);
  t.warmup = from_sec(1);
  t.trials = 1;
  t.seed = 1;
  t.jobs = 1;
  return t;
}

std::vector<FabricCell> small_cells() {
  return {FabricCell{2, 0}, FabricCell{1, 1}, FabricCell{0, 2}};
}

/// Fresh per-test file pair under the gtest temp dir (checkpoint +
/// incident log), removed up front so reruns of the binary start clean.
std::string temp_path(const std::string& name) {
  const std::string path = std::string{::testing::TempDir()} + name;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".incidents.jsonl", ec);
  return path;
}

/// Serial reference: the exact numbers the fabric must reproduce.
std::vector<MixOutcome> serial_truth(const NetworkParams& net,
                                     const std::vector<FabricCell>& cells,
                                     const TrialConfig& trial) {
  std::vector<MixOutcome> truth;
  truth.reserve(cells.size());
  for (const FabricCell& c : cells) {
    truth.push_back(
        run_mix_trials(net, c.num_cubic, c.num_other, CcKind::kBbr, trial));
  }
  return truth;
}

/// Bit-identity through the checkpoint encoding: every field of every
/// cell, compared after the same %.17g round-trip both sides take.
void expect_cells_identical(const FabricOutcome& out,
                            const std::vector<MixOutcome>& truth) {
  ASSERT_EQ(out.cells.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ASSERT_TRUE(out.cells[i].has_value()) << "cell " << i << " missing";
    EXPECT_EQ(mix_to_record(*out.cells[i]).encode(),
              mix_to_record(truth[i]).encode())
        << "cell " << i << " diverged";
  }
}

/// All records in `path` whose key is the lease record for `cell_key`,
/// in append order (read_jsonl keeps every line, not last-write-wins).
std::vector<JsonlRecord> lease_trail(const std::string& path,
                                     const std::string& cell_key) {
  std::vector<JsonlRecord> out;
  for (const JsonlRecord& rec : read_jsonl(path)) {
    if (rec.has("key") && rec.get_string("key") == lease_key(cell_key)) {
      out.push_back(rec);
    }
  }
  return out;
}

std::size_t count_lease_state(const std::vector<JsonlRecord>& trail,
                              const std::string& state,
                              const std::string& why = "") {
  std::size_t n = 0;
  for (const JsonlRecord& rec : trail) {
    if (rec.get_string("lease") != state) continue;
    if (!why.empty() &&
        (!rec.has("why") || rec.get_string("why") != why)) {
      continue;
    }
    ++n;
  }
  return n;
}

std::vector<JsonlRecord> incident_records(const std::string& checkpoint) {
  return read_jsonl(checkpoint + ".incidents.jsonl");
}

std::size_t count_incidents(const std::vector<JsonlRecord>& incidents,
                            const std::string& trigger) {
  std::size_t n = 0;
  for (const JsonlRecord& rec : incidents) {
    EXPECT_EQ(rec.get_string("type"), "bbrnash-fabric-v1");
    if (rec.get_string("trigger") == trigger) ++n;
  }
  return n;
}

// --- Bit-identity without faults -----------------------------------------

TEST(Fabric, CellsBitIdenticalToSerialRun) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = small_cells();
  const std::vector<MixOutcome> truth = serial_truth(net, cells, trial);

  FabricConfig fab;
  fab.workers = 2;
  fab.checkpoint_path = temp_path("fabric_basic.jsonl");
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);

  EXPECT_EQ(out.status, FabricStatus::kComplete);
  EXPECT_TRUE(out.complete());
  EXPECT_TRUE(out.failed_cells.empty());
  EXPECT_TRUE(out.message.empty());
  expect_cells_identical(out, truth);
  EXPECT_EQ(out.stats.cells_total, cells.size());
  EXPECT_EQ(out.stats.cells_committed, cells.size());
  EXPECT_EQ(out.stats.worker_deaths, 0u);
  EXPECT_EQ(out.stats.incidents, 0u);
}

TEST(Fabric, SweepEquivalentAcrossWorkersAndJobs) {
  const NetworkParams net = small_net();
  const int total = 2;
  NashSearchConfig cfg;
  cfg.trial = small_trial();
  const EmpiricalPayoffs truth = measure_payoffs(net, total, cfg);

  // The jobs x workers equivalence grid: threads inside each worker and
  // processes across cells must both be invisible in the numbers.
  const std::pair<int, int> grid[] = {{1, 1}, {2, 1}, {3, 1}, {2, 2}};
  for (const auto& [workers, jobs] : grid) {
    NashSearchConfig c = cfg;
    c.trial.jobs = jobs;
    FabricConfig fab;
    fab.workers = workers;
    fab.checkpoint_path =
        temp_path("fabric_grid_" + std::to_string(workers) + "_" +
                  std::to_string(jobs) + ".jsonl");
    const FabricSweepOutcome out = run_fabric_sweep(net, total, c, fab);
    ASSERT_EQ(out.status, FabricStatus::kComplete)
        << workers << " workers, " << jobs << " jobs: " << out.message;
    ASSERT_EQ(out.payoffs.cubic_mbps.size(), truth.cubic_mbps.size());
    for (std::size_t k = 0; k < truth.cubic_mbps.size(); ++k) {
      EXPECT_DOUBLE_EQ(out.payoffs.cubic_mbps[k], truth.cubic_mbps[k])
          << "k=" << k << " workers=" << workers << " jobs=" << jobs;
      EXPECT_DOUBLE_EQ(out.payoffs.other_mbps[k], truth.other_mbps[k])
          << "k=" << k << " workers=" << workers << " jobs=" << jobs;
    }
  }
}

// --- Checkpoint round-trip and the lease audit trail ----------------------

TEST(Fabric, CheckpointRoundTripsEntryForEntry) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = small_cells();
  const std::vector<MixOutcome> truth = serial_truth(net, cells, trial);
  const std::string checkpoint = temp_path("fabric_roundtrip.jsonl");

  FabricConfig fab;
  fab.workers = 2;
  fab.checkpoint_path = checkpoint;
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
  ASSERT_EQ(out.status, FabricStatus::kComplete);

  // Entry for entry: the committed record for every cell equals the serial
  // truth's encoding exactly (the checkpoint IS the coordination log, so
  // this also proves a resumed run reloads the same numbers).
  const CheckpointLog log{checkpoint};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string key = mix_checkpoint_key(
        net, cells[i].num_cubic, cells[i].num_other, CcKind::kBbr, trial);
    const auto hit = log.lookup(key);
    ASSERT_TRUE(hit.has_value()) << "cell " << i << " not in checkpoint";
    JsonlRecord expected = mix_to_record(truth[i]);
    expected.set("key", key);
    // Encoded-line equality, not operator==: the disk copy went through
    // parse(), which types every number by shape rather than by origin.
    EXPECT_EQ(hit->encode(), expected.encode()) << "cell " << i;
    // Clean run: exactly one claim and one commit, nothing expired.
    const auto trail = lease_trail(checkpoint, key);
    EXPECT_EQ(count_lease_state(trail, "claim"), 1u) << "cell " << i;
    EXPECT_EQ(count_lease_state(trail, "commit"), 1u) << "cell " << i;
    EXPECT_EQ(count_lease_state(trail, "expired"), 0u) << "cell " << i;
  }
  EXPECT_EQ(log.skipped_lines(), 0u);

  // Resume with everything already committed: nothing re-runs.
  const FabricOutcome resumed =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
  EXPECT_EQ(resumed.status, FabricStatus::kComplete);
  EXPECT_EQ(resumed.stats.cells_from_checkpoint, cells.size());
  EXPECT_EQ(resumed.stats.cells_committed, 0u);
  expect_cells_identical(resumed, truth);
}

TEST(Fabric, StaleClaimFromDeadSupervisorIsExpiredOnResume) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = small_cells();
  const std::string checkpoint = temp_path("fabric_stale.jsonl");
  const std::string key = mix_checkpoint_key(
      net, cells[1].num_cubic, cells[1].num_other, CcKind::kBbr, trial);

  // Forge what a supervisor that died mid-cell leaves behind: a claim with
  // no commit (the claiming pid is long gone).
  JsonlRecord claim;
  claim.set("key", lease_key(key));
  claim.set("lease", "claim");
  claim.set("worker", 0);
  claim.set("pid", std::uint64_t{999999});
  claim.set("epoch", std::uint64_t{1});
  append_jsonl_line(checkpoint, claim.encode());

  FabricConfig fab;
  fab.workers = 2;
  fab.checkpoint_path = checkpoint;
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);

  EXPECT_EQ(out.status, FabricStatus::kComplete);
  expect_cells_identical(out, serial_truth(net, cells, trial));
  EXPECT_GE(out.stats.leases_expired, 1u);
  const auto trail = lease_trail(checkpoint, key);
  EXPECT_EQ(count_lease_state(trail, "expired", "stale-on-resume"), 1u);
  EXPECT_EQ(count_lease_state(trail, "commit"), 1u);
}

// --- Chaos class 1: worker SIGKILL mid-cell -------------------------------

TEST(FabricChaos, WorkerKillRecoversBitIdentical) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = small_cells();
  const std::string checkpoint = temp_path("fabric_kill.jsonl");

  FabricConfig fab;
  fab.workers = 2;
  fab.checkpoint_path = checkpoint;
  fab.chaos = std::make_shared<ChaosInjector>(17);
  fab.chaos_worker_hang = false;
  fab.chaos_supervisor_crash = false;
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);

  // Every cell's worker was SIGKILLed exactly once (rate-1.0 injector,
  // fire-once per cell), then the reassignment ran clean.
  EXPECT_EQ(out.status, FabricStatus::kComplete) << out.message;
  expect_cells_identical(out, serial_truth(net, cells, trial));
  EXPECT_EQ(fab.chaos->fired(ChaosClass::kWorkerKill), cells.size());
  EXPECT_EQ(out.stats.worker_deaths, cells.size());
  EXPECT_EQ(out.stats.cells_reassigned, cells.size());
  EXPECT_EQ(out.stats.worker_hangs, 0u);
  EXPECT_EQ(out.stats.workers_retired, 0u);

  // The audit trail proves the failure was real: each cell has two claims
  // (original + reassignment) and a worker-signal expiry; the incident log
  // carries one bbrnash-fabric-v1 record per kill, with the signal number.
  for (const FabricCell& c : cells) {
    const std::string key =
        mix_checkpoint_key(net, c.num_cubic, c.num_other, CcKind::kBbr, trial);
    const auto trail = lease_trail(checkpoint, key);
    EXPECT_EQ(count_lease_state(trail, "claim"), 2u);
    EXPECT_EQ(count_lease_state(trail, "expired", "worker-signal"), 1u);
    EXPECT_EQ(count_lease_state(trail, "commit"), 1u);
  }
  const auto incidents = incident_records(checkpoint);
  EXPECT_EQ(count_incidents(incidents, "worker-signal"), cells.size());
  EXPECT_EQ(out.stats.incidents, incidents.size());
  for (const JsonlRecord& rec : incidents) {
    if (rec.get_string("trigger") == "worker-signal") {
      EXPECT_EQ(rec.get_u64("signal"), static_cast<std::uint64_t>(SIGKILL));
    }
  }
}

// --- Chaos class 2: worker heartbeat stall --------------------------------

TEST(FabricChaos, WorkerHangExpiresLeaseAndRecoversBitIdentical) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  // Two cells keep the (serialized, ~lease_ms each) expiries off the
  // test-suite critical path.
  const std::vector<FabricCell> cells = {FabricCell{1, 1}, FabricCell{0, 2}};
  const std::string checkpoint = temp_path("fabric_hang.jsonl");

  FabricConfig fab;
  fab.workers = 2;
  fab.lease_ms = 250.0;
  fab.checkpoint_path = checkpoint;
  fab.chaos = std::make_shared<ChaosInjector>(23);
  fab.chaos_worker_kill = false;
  fab.chaos_supervisor_crash = false;
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);

  EXPECT_EQ(out.status, FabricStatus::kComplete) << out.message;
  expect_cells_identical(out, serial_truth(net, cells, trial));
  EXPECT_EQ(fab.chaos->fired(ChaosClass::kWorkerHang), cells.size());
  EXPECT_EQ(out.stats.worker_hangs, cells.size());
  EXPECT_EQ(out.stats.cells_reassigned, cells.size());
  EXPECT_EQ(out.stats.workers_retired, 0u);

  for (const FabricCell& c : cells) {
    const std::string key =
        mix_checkpoint_key(net, c.num_cubic, c.num_other, CcKind::kBbr, trial);
    const auto trail = lease_trail(checkpoint, key);
    EXPECT_EQ(count_lease_state(trail, "expired", "heartbeat-stale"), 1u);
    EXPECT_EQ(count_lease_state(trail, "commit"), 1u);
  }
  EXPECT_EQ(count_incidents(incident_records(checkpoint), "worker-hang"),
            cells.size());
}

// --- Chaos class 3: supervisor crash before commit ------------------------

TEST(FabricChaos, SupervisorCrashResumesBitIdentical) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = small_cells();
  const std::string checkpoint = temp_path("fabric_crash.jsonl");

  FabricConfig fab;
  fab.workers = 2;
  fab.checkpoint_path = checkpoint;
  fab.chaos = std::make_shared<ChaosInjector>(29);
  fab.chaos_worker_kill = false;
  fab.chaos_worker_hang = false;

  FabricOutcome out = run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
  EXPECT_EQ(out.status, FabricStatus::kSupervisorCrashed);
  EXPECT_FALSE(out.complete());
  EXPECT_NE(out.message.find("re-run"), std::string::npos) << out.message;
  EXPECT_EQ(out.stats.supervisor_crashes, 1u);

  // Each re-run burns at most one fresh crash site (fire-once in the
  // caller-owned injector), so recovery converges within cells+1 reruns.
  int reruns = 0;
  while (out.status == FabricStatus::kSupervisorCrashed) {
    ASSERT_LT(reruns, static_cast<int>(cells.size()) + 1) << out.message;
    ++reruns;
    out = run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
  }
  EXPECT_GE(reruns, 1);
  EXPECT_EQ(out.status, FabricStatus::kComplete) << out.message;
  expect_cells_identical(out, serial_truth(net, cells, trial));
  EXPECT_GE(count_incidents(incident_records(checkpoint), "supervisor-crash"),
            1u);
}

TEST(FabricChaos, AllThreeClassesTogetherRecoverBitIdentical) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = small_cells();

  FabricConfig fab;
  fab.workers = 2;
  fab.lease_ms = 250.0;
  fab.checkpoint_path = temp_path("fabric_all_chaos.jsonl");
  fab.chaos = std::make_shared<ChaosInjector>(7);

  FabricOutcome out = run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
  int reruns = 0;
  while (out.status == FabricStatus::kSupervisorCrashed) {
    ASSERT_LT(reruns, static_cast<int>(cells.size()) + 1) << out.message;
    ++reruns;
    out = run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
  }
  EXPECT_EQ(out.status, FabricStatus::kComplete) << out.message;
  expect_cells_identical(out, serial_truth(net, cells, trial));
  EXPECT_GT(fab.chaos->total_fired(), 0u);
}

// --- Degradation: typed partial outcomes, never aborts --------------------

TEST(FabricDegrade, RetriesExhaustedYieldsTypedPartialOutcome) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = {FabricCell{1, 1}, FabricCell{0, 2}};

  FabricConfig fab;
  fab.workers = 2;
  fab.max_worker_retries = 0;  // any lost lease is final
  fab.checkpoint_path = temp_path("fabric_partial.jsonl");
  fab.chaos = std::make_shared<ChaosInjector>(31);
  fab.chaos_worker_hang = false;
  fab.chaos_supervisor_crash = false;
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);

  EXPECT_EQ(out.status, FabricStatus::kPartial);
  EXPECT_FALSE(out.complete());
  EXPECT_EQ(out.failed_cells.size(), cells.size());
  EXPECT_EQ(out.stats.retries_exhausted, cells.size());
  EXPECT_FALSE(out.message.empty());
  for (const auto& cell : out.cells) EXPECT_FALSE(cell.has_value());
}

TEST(FabricDegrade, ZeroTrialCellCommitsItsDiagnostics) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  // A 0+0-flow cell fails scenario validation in every trial: the worker
  // still reports it (done, trials_completed == 0) so the diagnosis is
  // committed instead of wedging or crashing the pool.
  const std::vector<FabricCell> cells = {FabricCell{1, 1}, FabricCell{0, 0}};

  FabricConfig fab;
  fab.workers = 2;
  fab.checkpoint_path = temp_path("fabric_zerotrial.jsonl");
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);

  EXPECT_EQ(out.status, FabricStatus::kComplete);
  ASSERT_TRUE(out.cells[1].has_value());
  EXPECT_EQ(out.cells[1]->trials_completed, 0);
  EXPECT_EQ(out.cells[1]->trials_failed, 1);
  ASSERT_EQ(out.cells[1]->failures.size(), 1u);
}

TEST(FabricDegrade, SweepDowngradesZeroTrialCellsToPartial) {
  const NetworkParams net = small_net();
  const int total = 2;
  NashSearchConfig cfg;
  cfg.trial = small_trial();
  // Injected failure on the (single) trial seed: every cell completes zero
  // trials, so the sweep must downgrade to kPartial with every k listed —
  // the typed analogue of measure_payoffs' throw.
  cfg.trial.guard.inject_failure_seeds = {cfg.trial.seed};

  FabricConfig fab;
  fab.workers = 2;
  fab.checkpoint_path = temp_path("fabric_sweep_partial.jsonl");
  const FabricSweepOutcome out = run_fabric_sweep(net, total, cfg, fab);

  EXPECT_EQ(out.status, FabricStatus::kPartial);
  EXPECT_FALSE(out.complete());
  EXPECT_EQ(out.failed_k.size(), static_cast<std::size_t>(total) + 1);
  EXPECT_NE(out.message.find("zero completed trials"), std::string::npos)
      << out.message;
}

TEST(Fabric, IllFormedConfigThrows) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = small_cells();
  FabricConfig fab;

  fab.workers = 0;
  EXPECT_THROW(run_fabric_cells(net, cells, CcKind::kBbr, trial, fab),
               std::invalid_argument);
  fab.workers = 2;
  fab.lease_ms = 0.0;
  EXPECT_THROW(run_fabric_cells(net, cells, CcKind::kBbr, trial, fab),
               std::invalid_argument);
  fab.lease_ms = 2000.0;
  fab.max_worker_retries = -1;
  EXPECT_THROW(run_fabric_cells(net, cells, CcKind::kBbr, trial, fab),
               std::invalid_argument);
  fab.max_worker_retries = 3;
  EXPECT_THROW(run_fabric_cells(net, {}, CcKind::kBbr, trial, fab),
               std::invalid_argument);
  EXPECT_THROW(run_fabric_sweep(net, 0, NashSearchConfig{}, fab),
               std::invalid_argument);
}

// --- Real supervisor death (`kill -9`, not a drill) -----------------------

TEST(FabricCrash, SigkilledSupervisorResumesFromCheckpoint) {
  const NetworkParams net = small_net();
  TrialConfig trial = small_trial();
  trial.duration = from_sec(20);  // cells cost real wall time, so the
  trial.warmup = from_sec(4);     // SIGKILL lands mid-run
  const std::vector<FabricCell> cells = small_cells();
  const std::string checkpoint = temp_path("fabric_kill9.jsonl");

  FabricConfig fab;
  fab.workers = 1;
  fab.checkpoint_path = checkpoint;

  // bbrnash-lint: allow(process-control) -- the test IS the process drill:
  // fork a whole fabric run, then SIGKILL it mid-sweep like an OOM killer.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const FabricOutcome child_out =
        run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
    (void)child_out;
    // bbrnash-lint: allow(process-control) -- a fork child of the gtest
    // process must leave via _exit (no duplicated atexit/flush state).
    _exit(0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // bbrnash-lint: allow(process-control) -- the genuine kill -9 the
  // checkpoint log claims to survive.
  kill(pid, SIGKILL);
  int status = 0;
  // bbrnash-lint: allow(process-control) -- reap the killed supervisor.
  ASSERT_EQ(waitpid(pid, &status, 0), pid);

  // Whether the child died mid-cell, mid-append, or after finishing, a
  // fresh supervisor on the same checkpoint must converge to the serial
  // numbers. (A torn trailing line from the SIGKILL is legal input here —
  // the log self-heals and the affected cell re-runs.)
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
  EXPECT_EQ(out.status, FabricStatus::kComplete) << out.message;
  expect_cells_identical(out, serial_truth(net, cells, trial));
}

// --- SIGTERM/SIGINT: interrupted sweeps flush and resume ------------------

TEST(FabricSignals, SigtermInterruptsFlushesAndResumes) {
  const NetworkParams net = small_net();
  TrialConfig trial = small_trial();
  trial.duration = from_sec(20);
  trial.warmup = from_sec(4);
  const std::vector<FabricCell> cells = small_cells();
  const std::string checkpoint = temp_path("fabric_sigterm.jsonl");

  FabricConfig fab;
  fab.workers = 1;  // serialize cells so the signal lands mid-run
  fab.checkpoint_path = checkpoint;

  // Park SIGTERM on SIG_IGN around the run: if the timed signal lands
  // after the fabric restored the previous handler, it must be ignored,
  // not kill the test binary.
  struct sigaction ign;
  std::memset(&ign, 0, sizeof ign);
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  struct sigaction old_term;
  // bbrnash-lint: allow(process-control) -- park SIGTERM on SIG_IGN so the
  // restored-handler delivery cannot kill the test binary.
  sigaction(SIGTERM, &ign, &old_term);

  std::thread signaller{[] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // bbrnash-lint: allow(process-control) -- delivers the ctrl-C/SIGTERM
    // this satellite exists to survive.
    kill(getpid(), SIGTERM);
  }};
  const FabricOutcome out =
      run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
  signaller.join();
  // bbrnash-lint: allow(process-control) -- restore the default SIGTERM
  // disposition now that the delivery window has passed.
  sigaction(SIGTERM, &old_term, nullptr);

  if (out.status == FabricStatus::kInterrupted) {
    // The headline satellite property: everything committed before the
    // signal is on disk, the incident log says why the run stopped, and a
    // rerun finishes the job bit-identically.
    EXPECT_NE(out.message.find("re-run"), std::string::npos) << out.message;
    EXPECT_GE(count_incidents(incident_records(checkpoint), "interrupted"),
              1u);
    const FabricOutcome resumed =
        run_fabric_cells(net, cells, CcKind::kBbr, trial, fab);
    EXPECT_EQ(resumed.status, FabricStatus::kComplete) << resumed.message;
    EXPECT_GE(resumed.stats.cells_from_checkpoint, out.stats.cells_committed);
    expect_cells_identical(resumed, serial_truth(net, cells, trial));
  } else {
    // The run outraced the timer — then it must simply be complete.
    EXPECT_EQ(out.status, FabricStatus::kComplete) << out.message;
    expect_cells_identical(out, serial_truth(net, cells, trial));
  }
}

// --- Payoff oracle: fabric-backed tier-3 compute --------------------------
// Lives here rather than in test_oracle.cpp because the fabric forks real
// worker processes, which the tsan-labelled oracle suite cannot do.

TEST(FabricOracle, BatchComputeBitIdenticalToSerialAndCached) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  const std::vector<FabricCell> cells = small_cells();
  const std::vector<MixOutcome> truth = serial_truth(net, cells, trial);
  const std::string cache = temp_path("fabric_oracle.jsonl");
  {
    std::error_code ec;
    std::filesystem::remove(cache + ".fabric.jsonl", ec);
    std::filesystem::remove(cache + ".fabric.jsonl.incidents.jsonl", ec);
  }

  std::vector<OracleQuery> queries;
  for (const FabricCell& c : cells) {
    OracleQuery q;
    q.net = net;
    q.num_cubic = c.num_cubic;
    q.num_other = c.num_other;
    q.challenger = CcKind::kBbr;
    q.trial = trial;
    queries.push_back(q);
  }
  queries.push_back(queries[1]);  // duplicate: must dedup into one cell

  OracleConfig cfg;
  cfg.cache_path = cache;
  cfg.allow_interpolation = false;
  cfg.allow_model = false;
  cfg.fabric_workers = 2;
  PayoffOracle oracle{cfg};
  const std::vector<OracleAnswer> answers = oracle.query_batch(queries);
  oracle.flush();

  // The fabric-computed answers are bit-identical to the serial loop —
  // the oracle's compute tier must never change numbers, only schedule
  // them — and the duplicate rode its twin's cell.
  ASSERT_EQ(answers.size(), queries.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(answers[i].ok()) << "query " << i << ": " << answers[i].message;
    EXPECT_EQ(answers[i].fidelity, OracleFidelity::kExact);
    EXPECT_EQ(mix_to_record(answers[i].outcome).encode(),
              mix_to_record(truth[i]).encode())
        << "query " << i << " diverged from serial truth";
  }
  EXPECT_EQ(answers[3].key, answers[1].key);
  EXPECT_EQ(mix_to_record(answers[3].outcome).encode(),
            mix_to_record(answers[1].outcome).encode());
  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(stats.computed, cells.size());  // dedup: 3 cells for 4 queries
  EXPECT_EQ(oracle.cache_size(), cells.size());

  // The batch went through ONE fabric run on <cache>.fabric.jsonl: every
  // cell has a clean claim/commit lease trail there.
  for (const FabricCell& c : cells) {
    const std::string key =
        mix_checkpoint_key(net, c.num_cubic, c.num_other, CcKind::kBbr, trial);
    const auto trail = lease_trail(cache + ".fabric.jsonl", key);
    EXPECT_EQ(count_lease_state(trail, "claim"), 1u);
    EXPECT_EQ(count_lease_state(trail, "commit"), 1u);
  }

  // Cache round-trip: a fresh oracle on the same cache file serves every
  // cell as an exact hit under no_compute, entry-for-entry identical.
  OracleConfig cold = cfg;
  cold.no_compute = true;
  cold.fabric_workers = 0;
  PayoffOracle rehydrated{cold};
  EXPECT_EQ(rehydrated.cache_size(), cells.size());
  const std::vector<OracleAnswer> replay = rehydrated.query_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(replay[i].ok()) << "replay " << i << ": " << replay[i].message;
    EXPECT_EQ(replay[i].fidelity, OracleFidelity::kExact);
    EXPECT_EQ(mix_to_record(replay[i].outcome).encode(),
              mix_to_record(answers[i].outcome).encode())
        << "replay " << i;
  }
  EXPECT_EQ(rehydrated.stats().exact_hits, queries.size());
  ASSERT_EQ(oracle.snapshot().size(), rehydrated.snapshot().size());
}

// --- The fabric-stats record schema ---------------------------------------

/// Keys of a flat JSONL object in encode() order.
std::vector<std::string> record_keys(const std::string& encoded) {
  std::vector<std::string> keys;
  bool in_str = false;
  std::string cur;
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (!in_str) {
      if (c == '"') {
        in_str = true;
        cur.clear();
      }
      continue;
    }
    if (c == '\\') {
      cur.push_back(encoded[++i]);
    } else if (c == '"') {
      in_str = false;
      if (i + 1 < encoded.size() && encoded[i + 1] == ':') {
        keys.push_back(cur);
      }
    } else {
      cur.push_back(c);
    }
  }
  return keys;
}

TEST(FabricStats, RecordSchemaIsPinned) {
  const NetworkParams net = small_net();
  const TrialConfig trial = small_trial();
  FabricConfig fab;
  fab.workers = 2;
  fab.checkpoint_path = temp_path("fabric_stats.jsonl");
  const FabricOutcome out =
      run_fabric_cells(net, small_cells(), CcKind::kBbr, trial, fab);
  ASSERT_EQ(out.status, FabricStatus::kComplete);

  const JsonlRecord rec = fabric_stats_to_record(out.stats);
  EXPECT_EQ(rec.get_string("type"), "bbrnash-fabric-stats-v1");
  // The schema contract (--fabric-stats consumers key on these): extend
  // the record, never rename or drop. Keys appear in encode() sort order.
  const std::vector<std::string> expected = {
      "backoff_seconds_total",
      "cells_committed",
      "cells_failed",
      "cells_from_checkpoint",
      "cells_per_second",
      "cells_reassigned",
      "cells_total",
      "checkpoint_skipped_lines",
      "incidents",
      "leases_expired",
      "retries_exhausted",
      "supervisor_crashes",
      "type",
      "w0.claimed",
      "w0.committed",
      "w0.expired",
      "w0.spawns",
      "w1.claimed",
      "w1.committed",
      "w1.expired",
      "w1.spawns",
      "wall_seconds",
      "worker_deaths",
      "worker_hangs",
      "worker_respawns",
      "workers",
      "workers_retired",
  };
  EXPECT_EQ(record_keys(rec.encode()), expected);

  // And it must be a parseable JSONL line like every other record.
  const auto reparsed = JsonlRecord::parse(rec.encode());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->encode(), rec.encode());
  EXPECT_EQ(rec.get_u64("cells_total"), 3u);
  EXPECT_EQ(rec.get_u64("workers"), 2u);
}

}  // namespace
}  // namespace bbrnash
