// The parallel sweep engine's contract: --jobs N is an execution detail,
// never a semantics knob. run_mix_trials and measure_payoffs must be
// byte-identical (via %.17g serialization) between jobs=1 and jobs=8 —
// including runs with impairments, capacity schedules, retried trials,
// and failed cells — and the pool itself must run every index exactly
// once, propagate the smallest-index exception, and run nested regions
// inline.
#include "exp/parallel.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/checkpoint.hpp"
#include "exp/nash_search.hpp"
#include "exp/sweeps.hpp"

namespace bbrnash {
namespace {

TrialConfig quick_trials(int n, int jobs) {
  TrialConfig cfg;
  cfg.duration = from_sec(8);
  cfg.warmup = from_sec(2);
  cfg.trials = n;
  cfg.jobs = jobs;
  return cfg;
}

/// %.17g serialization of a full MixOutcome — doubles round-trip
/// bit-exactly, so string equality IS bit-identity.
std::string encode(const MixOutcome& m) { return mix_to_record(m).encode(); }

std::string encode(const EmpiricalPayoffs& p) {
  std::string out;
  char buf[40];
  for (const double v : p.cubic_mbps) {
    std::snprintf(buf, sizeof buf, "%.17g,", v);
    out += buf;
  }
  out += '|';
  for (const double v : p.other_mbps) {
    std::snprintf(buf, sizeof buf, "%.17g,", v);
    out += buf;
  }
  return out;
}

// --- Pool mechanics ------------------------------------------------------

TEST(TrialPool, RunsEveryIndexExactlyOnce) {
  TrialPool pool{8};
  EXPECT_EQ(pool.jobs(), 8);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(TrialPool, ReusableAcrossRegionsAndEmptyRangeIsNoop) {
  TrialPool pool{4};
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "n==0 must not call"; });
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(17, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 5 * 17);
}

TEST(TrialPool, PropagatesSmallestIndexException) {
  TrialPool pool{8};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 3 || i == 10 || i == 57) {
        throw std::runtime_error{"boom " + std::to_string(i)};
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // The serial loop would have hit index 3 first; parallel must agree.
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(TrialPool, NestedParallelForRunsInlineOnTheWorker) {
  TrialPool pool{4};
  std::vector<bool> nested_inline(4, false);
  pool.parallel_for(4, [&](std::size_t i) {
    EXPECT_TRUE(TrialPool::in_parallel_region());
    const auto outer_thread = std::this_thread::get_id();
    bool all_same_thread = true;
    parallel_for(8, 16, [&](std::size_t) {
      if (std::this_thread::get_id() != outer_thread) all_same_thread = false;
    });
    nested_inline[i] = all_same_thread;
  });
  EXPECT_FALSE(TrialPool::in_parallel_region());
  for (std::size_t i = 0; i < nested_inline.size(); ++i) {
    EXPECT_TRUE(nested_inline[i]) << "outer task " << i;
  }
}

TEST(TrialPool, JobsResolution) {
  EXPECT_GE(hardware_jobs(), 1);
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());
  EXPECT_EQ(resolve_jobs(-3), hardware_jobs());
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_EQ(TrialPool{1}.jobs(), 1);
}

TEST(TrialPool, TelemetryCountsCellsAndWorkers) {
  reset_parallel_telemetry();
  TrialPool pool{3};
  pool.parallel_for(10, [](std::size_t) {});
  std::uint64_t worker_cells = 0;
  for (const WorkerTelemetry& w : pool.worker_telemetry()) {
    worker_cells += w.cells_run;
  }
  EXPECT_EQ(worker_cells, 10u);
  const ParallelTelemetry t = parallel_telemetry();
  EXPECT_EQ(t.regions, 1u);
  EXPECT_EQ(t.cells_run, 10u);
  EXPECT_EQ(t.max_workers, 3);
  EXPECT_GE(t.wall_seconds, 0.0);
  EXPECT_FALSE(describe(t).empty());
}

// --- Serial equivalence: run_mix_trials ----------------------------------

void expect_mix_equivalent(const NetworkParams& net, int num_cubic,
                           int num_other, TrialConfig cfg) {
  cfg.jobs = 1;
  const std::string serial =
      encode(run_mix_trials(net, num_cubic, num_other, CcKind::kBbr, cfg));
  cfg.jobs = 8;
  const std::string parallel =
      encode(run_mix_trials(net, num_cubic, num_other, CcKind::kBbr, cfg));
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelEquivalence, PlainMixTrials) {
  expect_mix_equivalent(make_params(20, 20, 3), 2, 2, quick_trials(4, 1));
}

TEST(ParallelEquivalence, MixTrialsWithImpairments) {
  TrialConfig cfg = quick_trials(3, 1);
  cfg.impairments.loss_rate = 0.02;
  cfg.impairments.jitter = from_ms(2);
  cfg.ack_impairments.loss_rate = 0.01;
  expect_mix_equivalent(make_params(20, 20, 3), 1, 2, cfg);
}

TEST(ParallelEquivalence, MixTrialsWithCapacitySchedule) {
  TrialConfig cfg = quick_trials(3, 1);
  cfg.capacity_schedule = {{from_sec(3), mbps(12)}, {from_sec(6), mbps(20)}};
  expect_mix_equivalent(make_params(20, 20, 3), 2, 1, cfg);
}

TEST(ParallelEquivalence, MixTrialsWithRetriesAndFailures) {
  TrialConfig cfg = quick_trials(4, 1);
  cfg.guard.max_attempts = 2;
  // Trial 1's first attempt fails and is retried with a bumped seed;
  // trial 2 fails both attempts and lands in the failures list.
  const std::uint64_t t1 = cfg.seed + 1 * 1000003ULL;
  const std::uint64_t t2 = cfg.seed + 2 * 1000003ULL;
  cfg.guard.inject_failure_seeds = {t1, t2, t2 + cfg.guard.seed_bump};

  cfg.jobs = 1;
  const MixOutcome serial =
      run_mix_trials(make_params(20, 20, 3), 1, 1, CcKind::kBbr, cfg);
  ASSERT_EQ(serial.trials_retried, 1);
  ASSERT_EQ(serial.trials_failed, 1);
  ASSERT_EQ(serial.failures.size(), 1u);

  cfg.jobs = 8;
  const MixOutcome parallel =
      run_mix_trials(make_params(20, 20, 3), 1, 1, CcKind::kBbr, cfg);
  EXPECT_EQ(encode(serial), encode(parallel));
}

// --- Serial equivalence: measure_payoffs ---------------------------------

TEST(ParallelEquivalence, MeasurePayoffs) {
  const NetworkParams net = make_params(20, 20, 3);
  NashSearchConfig cfg;
  cfg.trial = quick_trials(2, 1);
  const std::string serial = encode(measure_payoffs(net, 3, cfg));
  cfg.trial.jobs = 8;
  const std::string parallel = encode(measure_payoffs(net, 3, cfg));
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelEquivalence, MeasurePayoffsFailedCellsThrowTheSameError) {
  const NetworkParams net = make_params(20, 20, 3);
  NashSearchConfig cfg;
  cfg.trial = quick_trials(1, 1);
  // Every cell derives trial 0's seed the same way, so injecting it fails
  // every cell; the surfaced error must be the lowest-k cell's either way.
  cfg.trial.guard.inject_failure_seeds = {cfg.trial.seed};

  std::string serial_msg;
  try {
    (void)measure_payoffs(net, 3, cfg);
    FAIL() << "expected zero-trial cells to throw";
  } catch (const std::runtime_error& e) {
    serial_msg = e.what();
  }
  cfg.trial.jobs = 8;
  try {
    (void)measure_payoffs(net, 3, cfg);
    FAIL() << "expected zero-trial cells to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(serial_msg, e.what());
  }
}

TEST(ParallelEquivalence, CheckpointedPayoffsMatchAcrossJobsAndResume) {
  const NetworkParams net = make_params(20, 20, 3);
  NashSearchConfig cfg;
  cfg.trial = quick_trials(1, 1);
  const std::string serial = encode(measure_payoffs(net, 3, cfg));

  // Parallel run fills a checkpoint (cells land in completion order)...
  const std::string path = testing::TempDir() + "parallel_ckpt.jsonl";
  std::remove(path.c_str());
  cfg.trial.jobs = 8;
  cfg.checkpoint_path = path;
  EXPECT_EQ(serial, encode(measure_payoffs(net, 3, cfg)));
  // ...and a serial resume replays those cells to the same numbers.
  cfg.trial.jobs = 1;
  EXPECT_EQ(serial, encode(measure_payoffs(net, 3, cfg)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbrnash
