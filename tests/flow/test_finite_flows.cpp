#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"

namespace bbrnash {
namespace {

TEST(FiniteFlows, ShortTransferCompletesAndStamps) {
  const NetworkParams net = make_params(20, 20, 3);
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  FlowSpec f;
  f.cc = CcKind::kCubic;
  f.base_rtt = net.base_rtt;
  f.transfer_bytes = 100 * kDefaultMss;
  f.start_at = from_sec(1);
  s.flows.push_back(f);
  s.duration = from_sec(10);
  s.warmup = from_sec(1);
  const RunResult r = run_scenario(s);
  ASSERT_NE(r.flows[0].stats.completed_at, kTimeNone);
  EXPECT_GT(r.flows[0].stats.completed_at, from_sec(1));
  EXPECT_LT(r.flows[0].stats.completed_at, from_sec(3));
}

TEST(FiniteFlows, DeliversExactlyTheRequestedBytes) {
  const NetworkParams net = make_params(20, 20, 3);
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  FlowSpec f;
  f.cc = CcKind::kBbr;
  f.base_rtt = net.base_rtt;
  f.transfer_bytes = 50 * kDefaultMss;
  f.start_at = 0;
  s.flows.push_back(f);
  s.duration = from_sec(8);
  s.warmup = from_sec(1);
  s.start_jitter = 0;
  const RunResult r = run_scenario(s);
  // Goodput window [warmup, end] excludes pre-warmup delivery; instead
  // check via the completion stamp and no runaway delivery.
  ASSERT_NE(r.flows[0].stats.completed_at, kTimeNone);
}

TEST(FiniteFlows, UnboundedFlowNeverCompletes) {
  const NetworkParams net = make_params(20, 20, 3);
  Scenario s = make_mix_scenario(net, 1, 0);
  s.duration = from_sec(8);
  s.warmup = from_sec(2);
  const RunResult r = run_scenario(s);
  EXPECT_EQ(r.flows[0].stats.completed_at, kTimeNone);
}

TEST(FiniteFlows, ExplicitStartTimeHonoured) {
  const NetworkParams net = make_params(20, 20, 3);
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  FlowSpec bulk;
  bulk.cc = CcKind::kCubic;
  bulk.base_rtt = net.base_rtt;
  s.flows.push_back(bulk);
  FlowSpec late;
  late.cc = CcKind::kCubic;
  late.base_rtt = net.base_rtt;
  late.transfer_bytes = 10 * kDefaultMss;
  late.start_at = from_sec(5);
  s.flows.push_back(late);
  s.duration = from_sec(10);
  s.warmup = from_sec(1);
  const RunResult r = run_scenario(s);
  ASSERT_NE(r.flows[1].stats.completed_at, kTimeNone);
  EXPECT_GT(r.flows[1].stats.completed_at, from_sec(5));
}

TEST(FiniteFlows, MiceSlowerUnderFullerQueues) {
  // The mice_and_elephants observation, as a regression test: a mouse
  // completing against a CUBIC elephant (standing queue ~full) takes
  // longer than against a BBR elephant (short queue), in deep buffers.
  const NetworkParams net = make_params(20, 20, 8);
  const auto fct_with = [&](CcKind elephant) {
    Scenario s;
    s.capacity = net.capacity;
    s.buffer_bytes = net.buffer_bytes;
    FlowSpec big;
    big.cc = elephant;
    big.base_rtt = net.base_rtt;
    s.flows.push_back(big);
    FlowSpec mouse;
    mouse.cc = CcKind::kCubic;
    mouse.base_rtt = net.base_rtt;
    mouse.transfer_bytes = 30 * kDefaultMss;
    mouse.start_at = from_sec(12);
    s.flows.push_back(mouse);
    s.duration = from_sec(25);
    s.warmup = from_sec(2);
    const RunResult r = run_scenario(s);
    return r.flows[1].stats.completed_at == kTimeNone
               ? from_sec(100)
               : r.flows[1].stats.completed_at - from_sec(12);
  };
  EXPECT_GT(fct_with(CcKind::kCubic), fct_with(CcKind::kBbr));
}

}  // namespace
}  // namespace bbrnash
