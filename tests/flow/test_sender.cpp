// Sender transport-mechanics tests, using a scripted congestion control and
// a hand-driven "network" (transmitted packets are captured; ACKs are fed
// back manually at chosen times).
#include "flow/sender.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "flow/receiver.hpp"

namespace bbrnash {
namespace {

/// A congestion control with externally fixed cwnd and pacing, recording
/// every callback it receives.
class ScriptedCc final : public CongestionControl {
 public:
  void on_start(TimeNs) override {}
  void on_ack(const AckEvent& ev) override { acks.push_back(ev); }
  void on_congestion_event(const LossEvent& ev) override {
    congestion_events.push_back(ev);
  }
  void on_packet_lost(TimeNs, Bytes lost, Bytes) override {
    lost_bytes += lost;
  }
  void on_rto(TimeNs) override { ++rtos; }
  [[nodiscard]] Bytes cwnd() const override { return cwnd_bytes; }
  [[nodiscard]] BytesPerSec pacing_rate() const override { return pacing; }
  [[nodiscard]] std::string name() const override { return "scripted"; }

  Bytes cwnd_bytes = 10 * kDefaultMss;
  BytesPerSec pacing = kNoPacing;
  std::vector<AckEvent> acks;
  std::vector<LossEvent> congestion_events;
  Bytes lost_bytes = 0;
  int rtos = 0;
};

struct Harness {
  Simulator sim;
  ScriptedCc* cc = nullptr;  // owned by sender
  std::unique_ptr<Sender> sender;
  std::vector<Packet> wire;

  explicit Harness(SenderConfig cfg = {}) {
    auto cc_owned = std::make_unique<ScriptedCc>();
    cc = cc_owned.get();
    sender = std::make_unique<Sender>(
        sim, 0, cfg, std::move(cc_owned),
        [this](const Packet& p) { wire.push_back(p); });
  }

  // Delivers an ACK for `seq` with cumulative `cum` at sim-now + delta.
  void ack(SeqNo seq, SeqNo cum, TimeNs at) {
    sim.schedule_at(at, [this, seq, cum] {
      sender->on_ack(Ack{0, seq, cum, 0});
    });
  }
};

TEST(Sender, SendsInitialWindowOnStart) {
  Harness h;
  h.sender->start(0);
  h.sim.run_until(from_ms(1));
  EXPECT_EQ(h.wire.size(), 10u);  // 10 * MSS / MSS
  for (SeqNo s = 0; s < 10; ++s) EXPECT_EQ(h.wire[s].seq, s);
  EXPECT_EQ(h.sender->inflight_bytes(), 10 * kDefaultMss);
}

TEST(Sender, CwndGatesTransmission) {
  Harness h;
  h.cc->cwnd_bytes = 3 * kDefaultMss;
  h.sender->start(0);
  h.sim.run_until(from_ms(1));
  EXPECT_EQ(h.wire.size(), 3u);
}

TEST(Sender, AckReleasesNewData) {
  Harness h;
  h.cc->cwnd_bytes = 2 * kDefaultMss;
  h.sender->start(0);
  h.ack(0, 1, from_ms(10));
  h.sim.run_until(from_ms(11));
  ASSERT_EQ(h.wire.size(), 3u);
  EXPECT_EQ(h.wire[2].seq, 2u);
  EXPECT_EQ(h.sender->delivered_bytes(), kDefaultMss);
}

TEST(Sender, PacingSpacesPackets) {
  SenderConfig cfg;
  cfg.pacing_quantum_segments = 1;  // exact per-packet spacing
  Harness h{cfg};
  // 1.5 MB/s pacing: one 1500-byte wire packet per ms.
  h.cc->pacing = 1.5e6;
  h.cc->cwnd_bytes = 100 * kDefaultMss;
  h.sender->start(0);
  h.sim.run_until(from_ms(3) + from_us(500));
  EXPECT_EQ(h.wire.size(), 4u);  // t = 0, 1, 2, 3 ms
}

TEST(Sender, PacingQuantumBursts) {
  SenderConfig cfg;
  cfg.pacing_quantum_segments = 4;  // token bucket of depth 4
  Harness h{cfg};
  h.cc->pacing = 1.5e6;  // 1 ms per packet
  h.cc->cwnd_bytes = 100 * kDefaultMss;
  h.sender->start(0);
  h.sim.run_until(from_us(100));
  // An idle bucket releases one full burst immediately...
  EXPECT_EQ(h.wire.size(), 4u);
  // ...then reverts to the long-run rate: ~1 packet/ms afterwards.
  h.sim.run_until(from_ms(10) + from_us(500));
  EXPECT_EQ(h.wire.size(), 14u);
}

TEST(Sender, RttSampleReachesCc) {
  Harness h;
  h.sender->start(0);
  h.ack(0, 1, from_ms(40));
  h.sim.run_until(from_ms(41));
  ASSERT_FALSE(h.cc->acks.empty());
  EXPECT_EQ(h.cc->acks[0].rtt, from_ms(40));
  EXPECT_EQ(h.sender->smoothed_rtt(), from_ms(40));
}

TEST(Sender, DeliveryRateSampleIsSane) {
  Harness h;
  h.cc->cwnd_bytes = 4 * kDefaultMss;
  h.sender->start(0);
  // Four acks spaced 1 ms, starting at t=40ms.
  for (SeqNo s = 0; s < 4; ++s) {
    h.ack(s, s + 1, from_ms(40) + from_ms(1) * static_cast<TimeNs>(s));
  }
  h.sim.run_until(from_ms(50));
  ASSERT_EQ(h.cc->acks.size(), 4u);
  // Later samples: ~1 MSS per ms = 1.448 MB/s, but never wildly above.
  const double rate = h.cc->acks[3].delivery_rate;
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 3e6);
}

TEST(Sender, ThreeLaterDeliveriesMarkLoss) {
  Harness h;
  h.cc->cwnd_bytes = 10 * kDefaultMss;
  h.sender->start(0);
  // Packet 0 is lost; packets 1..3 are delivered (cum stays 0).
  h.ack(1, 0, from_ms(40));
  h.ack(2, 0, from_ms(41));
  h.ack(3, 0, from_ms(42));
  h.sim.run_until(from_ms(43));
  ASSERT_EQ(h.cc->congestion_events.size(), 1u);
  EXPECT_EQ(h.cc->lost_bytes, kDefaultMss);
  // The retransmission of seq 0 must have been sent.
  bool retx_seen = false;
  for (const auto& p : h.wire) {
    if (p.seq == 0 && p.is_retransmit) retx_seen = true;
  }
  EXPECT_TRUE(retx_seen);
  EXPECT_EQ(h.sender->retransmit_count(), 1u);
}

TEST(Sender, TwoLaterDeliveriesDoNotMarkLoss) {
  Harness h;
  h.sender->start(0);
  h.ack(1, 0, from_ms(40));
  h.ack(2, 0, from_ms(41));
  h.sim.run_until(from_ms(42));
  EXPECT_TRUE(h.cc->congestion_events.empty());
  EXPECT_EQ(h.sender->retransmit_count(), 0u);
}

TEST(Sender, OneCongestionEventPerLossRound) {
  Harness h;
  h.cc->cwnd_bytes = 10 * kDefaultMss;
  h.sender->start(0);
  // Packets 0 and 1 both lost; 2..5 delivered.
  h.ack(2, 0, from_ms(40));
  h.ack(3, 0, from_ms(41));
  h.ack(4, 0, from_ms(42));
  h.ack(5, 0, from_ms(43));
  h.sim.run_until(from_ms(44));
  EXPECT_EQ(h.cc->congestion_events.size(), 1u);
  EXPECT_EQ(h.cc->lost_bytes, 2 * kDefaultMss);
  EXPECT_EQ(h.sender->retransmit_count(), 2u);
}

TEST(Sender, RecoveryExitsAfterPostEpisodeDelivery) {
  Harness h;
  h.cc->cwnd_bytes = 10 * kDefaultMss;
  h.sender->start(0);
  h.ack(1, 0, from_ms(40));
  h.ack(2, 0, from_ms(41));
  h.ack(3, 0, from_ms(42));  // loss of 0 declared here, retx sent
  h.ack(4, 0, from_ms(43));
  h.sim.run_until(from_ms(44));
  ASSERT_GE(h.cc->acks.size(), 4u);
  EXPECT_TRUE(h.cc->acks[3].in_recovery);  // seq 4 was sent pre-episode
  // The retransmit of 0 was sent after the episode began; its delivery
  // (plus cum advance) ends recovery.
  const SeqNo retx_order_seq = 0;
  h.ack(retx_order_seq, 10, from_ms(80));
  h.sim.run_until(from_ms(81));
  EXPECT_FALSE(h.cc->acks.back().in_recovery);
}

TEST(Sender, RtoFiresWithoutAcks) {
  SenderConfig cfg;
  cfg.initial_rto = from_ms(500);
  Harness h{cfg};
  h.sender->start(0);
  h.sim.run_until(from_sec(2));
  EXPECT_GE(h.cc->rtos, 1);
  EXPECT_GE(h.sender->rto_count(), 1u);
  // Everything was marked lost and immediately retransmitted (the scripted
  // window allows it), so the packets are back in flight as retransmits.
  EXPECT_EQ(h.sender->inflight_bytes(), 10 * kDefaultMss);
  EXPECT_GE(h.sender->retransmit_count(), 10u);
}

TEST(Sender, RtoBacksOffExponentially) {
  SenderConfig cfg;
  cfg.initial_rto = from_ms(300);
  Harness h{cfg};
  h.cc->cwnd_bytes = kDefaultMss;  // single packet, never acked
  h.sender->start(0);
  h.sim.run_until(from_sec(3));
  // With 300 ms initial RTO and doubling: fires at ~0.3, 0.9, 2.1 s.
  EXPECT_EQ(h.sender->rto_count(), 3u);
}

TEST(Sender, RetransmissionsHavePriorityOverNewData) {
  Harness h;
  h.cc->cwnd_bytes = 4 * kDefaultMss;
  h.sender->start(0);
  h.ack(1, 0, from_ms(40));
  h.ack(2, 0, from_ms(41));
  h.ack(3, 0, from_ms(42));  // marks 0 lost
  h.sim.run_until(from_ms(43));
  // Timeline: cwnd 4 sends 0..3; acks of 1 and 2 release 4 and 5; the ack
  // of 3 marks 0 lost — the very next transmission must be the seq-0
  // retransmit, ahead of new data (seq 6).
  ASSERT_GE(h.wire.size(), 7u);
  EXPECT_EQ(h.wire[6].seq, 0u);
  EXPECT_TRUE(h.wire[6].is_retransmit);
}

TEST(Sender, MeasurementMarksSnapshotCounters) {
  Harness h;
  h.sender->start(0);
  h.ack(0, 1, from_ms(40));
  h.sim.run_until(from_ms(41));
  h.sender->begin_measurement();
  EXPECT_EQ(h.sender->delivered_at_measurement_start(), kDefaultMss);
  h.ack(1, 2, from_ms(50));
  h.sim.run_until(from_ms(51));
  EXPECT_EQ(h.sender->delivered_bytes() -
                h.sender->delivered_at_measurement_start(),
            kDefaultMss);
}

TEST(Sender, PriorDeliveredSnapshotsDriveRoundCounting) {
  Harness h;
  h.cc->cwnd_bytes = 2 * kDefaultMss;
  h.sender->start(0);
  h.ack(0, 1, from_ms(40));
  h.ack(1, 2, from_ms(41));
  h.sim.run_until(from_ms(45));
  ASSERT_EQ(h.cc->acks.size(), 2u);
  EXPECT_EQ(h.cc->acks[0].prior_delivered, 0);
  EXPECT_EQ(h.cc->acks[0].delivered, kDefaultMss);
  EXPECT_EQ(h.cc->acks[1].prior_delivered, 0);  // sent before any delivery
  EXPECT_EQ(h.cc->acks[1].delivered, 2 * kDefaultMss);
}

}  // namespace
}  // namespace bbrnash
