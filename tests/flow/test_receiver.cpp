#include "flow/receiver.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

Packet make_packet(SeqNo seq) {
  Packet p;
  p.flow = 0;
  p.seq = seq;
  return p;
}

TEST(Receiver, AcksEveryPacket) {
  Receiver r{0};
  std::vector<Ack> acks;
  r.set_ack_sink([&](const Ack& a) { acks.push_back(a); });
  r.on_packet(make_packet(0), 0);
  r.on_packet(make_packet(1), 0);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[0].acked_seq, 0u);
  EXPECT_EQ(acks[0].cum_ack, 1u);
  EXPECT_EQ(acks[1].cum_ack, 2u);
}

TEST(Receiver, HoleFreezesCumAck) {
  Receiver r{0};
  std::vector<Ack> acks;
  r.set_ack_sink([&](const Ack& a) { acks.push_back(a); });
  r.on_packet(make_packet(0), 0);
  r.on_packet(make_packet(2), 0);  // 1 missing
  r.on_packet(make_packet(3), 0);
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(acks[1].cum_ack, 1u);
  EXPECT_EQ(acks[1].acked_seq, 2u);  // SACK-equivalent info
  EXPECT_EQ(acks[2].cum_ack, 1u);
  EXPECT_EQ(r.reorder_buffer_size(), 2u);
}

TEST(Receiver, HoleFillDrainsBuffer) {
  Receiver r{0};
  Ack last;
  r.set_ack_sink([&](const Ack& a) { last = a; });
  r.on_packet(make_packet(0), 0);
  r.on_packet(make_packet(2), 0);
  r.on_packet(make_packet(3), 0);
  r.on_packet(make_packet(1), 0);  // fills the hole
  EXPECT_EQ(last.cum_ack, 4u);
  EXPECT_EQ(r.reorder_buffer_size(), 0u);
}

TEST(Receiver, DuplicateIsAckedButNotCounted) {
  Receiver r{0};
  std::vector<Ack> acks;
  r.set_ack_sink([&](const Ack& a) { acks.push_back(a); });
  r.on_packet(make_packet(0), 0);
  r.on_packet(make_packet(0), 0);  // spurious retransmit
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[1].cum_ack, 1u);
  EXPECT_EQ(r.cumulative_next(), 1u);
}

TEST(Receiver, DuplicateAboveCumIgnoredByBuffer) {
  Receiver r{0};
  r.set_ack_sink([](const Ack&) {});
  r.on_packet(make_packet(5), 0);
  r.on_packet(make_packet(5), 0);
  EXPECT_EQ(r.reorder_buffer_size(), 1u);  // std::set dedups
}

TEST(Receiver, EchoesQueueDelay) {
  Receiver r{0};
  Ack last;
  r.set_ack_sink([&](const Ack& a) { last = a; });
  r.on_packet(make_packet(0), from_ms(12));
  EXPECT_EQ(last.queue_delay_echo, from_ms(12));
}

TEST(Receiver, CountsPacketsIncludingDuplicates) {
  Receiver r{0};
  r.set_ack_sink([](const Ack&) {});
  r.on_packet(make_packet(0), 0);
  r.on_packet(make_packet(0), 0);
  r.on_packet(make_packet(1), 0);
  EXPECT_EQ(r.packets_received(), 3u);
}

TEST(Receiver, LongOutOfOrderRun) {
  Receiver r{0};
  r.set_ack_sink([](const Ack&) {});
  // Deliver 1..99, then 0.
  for (SeqNo s = 1; s < 100; ++s) r.on_packet(make_packet(s), 0);
  EXPECT_EQ(r.cumulative_next(), 0u);
  r.on_packet(make_packet(0), 0);
  EXPECT_EQ(r.cumulative_next(), 100u);
  EXPECT_EQ(r.reorder_buffer_size(), 0u);
}

}  // namespace
}  // namespace bbrnash
