// Build-pipeline smoke tests: one touch per library.
#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"
#include "model/mishra_model.hpp"
#include "model/ware_model.hpp"

namespace bbrnash {
namespace {

TEST(Smoke, ModelSolves) {
  const NetworkParams net = make_params(50.0, 40.0, 5.0);
  const auto pred = two_flow_prediction(net);
  ASSERT_TRUE(pred.has_value());
  EXPECT_GT(pred->lambda_bbr, 0.0);
  EXPECT_GT(pred->lambda_cubic, 0.0);
  EXPECT_NEAR(pred->lambda_bbr + pred->lambda_cubic, net.capacity, 1.0);
}

TEST(Smoke, WareSolves) {
  const NetworkParams net = make_params(50.0, 40.0, 5.0);
  const WarePrediction w = ware_prediction(net);
  EXPECT_GE(w.bbr_fraction, 0.0);
  EXPECT_LE(w.bbr_fraction, 1.0);
}

TEST(Smoke, SimulatorRunsOneCubicVsOneBbr) {
  const NetworkParams net = make_params(20.0, 20.0, 3.0);
  Scenario s = make_mix_scenario(net, 1, 1);
  s.duration = from_sec(10);
  s.warmup = from_sec(3);
  const RunResult r = run_scenario(s);
  ASSERT_EQ(r.flows.size(), 2u);
  // The link should be essentially saturated by two bulk flows.
  EXPECT_GT(r.link_utilization, 0.8);
}

}  // namespace
}  // namespace bbrnash
