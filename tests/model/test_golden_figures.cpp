// Golden-value pins for the paper's analytical models at the operating
// points its figures sweep (1–30 BDP buffers at 100 Mbps / 40 ms):
//   * Mishra 2-flow solution (Eq. 14 / §2.3)      -> mishra_two_flow.jsonl
//   * CUBIC-synchronized multi-flow (Eq. 21)      -> mishra_sync.jsonl
//   * CUBIC-desynchronized multi-flow (Eq. 22)    -> mishra_desync.jsonl
//   * Ware et al. baseline (Eqs. 2–4)             -> ware_baseline.jsonl
//
// Every value is stored with %.17g round-trip precision and compared
// bit-exactly: the solvers are pure arithmetic + bisection, so any drift
// is a real change in model output, not noise. The tables live in
// tests/golden/ and are CHECKED IN.
//
// Regenerating after an intentional model change:
//   BBRNASH_REGEN_GOLDEN=1 ./test_model --gtest_filter='GoldenFigures.*'
// then inspect the diff of tests/golden/*.jsonl and commit it. The tests
// PASS (after rewriting) in regeneration mode, so forgetting to unset the
// variable cannot mask a regression in CI where the env var is absent.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/mishra_model.hpp"
#include "model/ware_model.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {
namespace {

constexpr double kCapacityMbps = 100.0;
constexpr double kRttMs = 40.0;
constexpr int kMinBdp = 1;
constexpr int kMaxBdp = 30;  // the figures' deep-buffer edge

std::string golden_path(const std::string& name) {
  return std::string{BBRNASH_GOLDEN_DIR} + "/" + name + ".jsonl";
}

// bbrnash-lint: allow(nondeterminism) -- explicit regen knob: flips the
// suite from asserting against golden files to rewriting them.
bool regen_mode() { return std::getenv("BBRNASH_REGEN_GOLDEN") != nullptr; }

/// Emits one record per operating point via `fill` (which appends the
/// model's outputs), then either rewrites the table or compares against
/// it field-for-field, bit-exactly.
void check_golden(
    const std::string& name,
    const std::function<void(const NetworkParams&, JsonlRecord&)>& fill) {
  std::vector<JsonlRecord> fresh;
  for (int bdp = kMinBdp; bdp <= kMaxBdp; ++bdp) {
    const NetworkParams net = make_params(kCapacityMbps, kRttMs, bdp);
    JsonlRecord rec;
    rec.set("capacity_mbps", kCapacityMbps);
    rec.set("rtt_ms", kRttMs);
    rec.set("buffer_bdp", static_cast<std::uint64_t>(bdp));
    fill(net, rec);
    fresh.push_back(std::move(rec));
  }

  const std::string path = golden_path(name);
  if (regen_mode()) {
    std::remove(path.c_str());
    for (const JsonlRecord& rec : fresh) {
      append_jsonl_line(path, rec.encode());
    }
  }

  const std::vector<JsonlRecord> golden = read_jsonl(path);
  ASSERT_EQ(golden.size(), fresh.size())
      << path << " missing or stale; see the regeneration note in "
      << __FILE__;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    // Compare canonical encodings: doubles print at %.17g (bit-exact
    // round trip), and an integral-looking double reprints identically
    // whether reloaded as u64 or double.
    EXPECT_EQ(golden[i].encode(), fresh[i].encode()) << name << " row " << i;
  }
}

TEST(GoldenFigures, MishraTwoFlow) {
  check_golden("mishra_two_flow", [](const NetworkParams& net,
                                     JsonlRecord& rec) {
    const auto p = two_flow_prediction(net);
    ASSERT_TRUE(p.has_value());
    rec.set("bbr_buffer_bytes", p->bbr_buffer_bytes);
    rec.set("cubic_min_buffer", p->cubic_min_buffer);
    rec.set("lambda_cubic", p->lambda_cubic);
    rec.set("lambda_bbr", p->lambda_bbr);
    rec.set("kappa", p->kappa);
  });
}

void fill_multi_flow(CubicSyncBound bound, const NetworkParams& net,
                     JsonlRecord& rec) {
  // The paper's Fig. 4 population: 5 CUBIC vs 5 BBR flows.
  const auto p = multi_flow_prediction(net, 5, 5, bound);
  ASSERT_TRUE(p.has_value());
  rec.set("kappa", p->aggregate.kappa);
  rec.set("bbr_buffer_bytes", p->aggregate.bbr_buffer_bytes);
  rec.set("lambda_cubic", p->aggregate.lambda_cubic);
  rec.set("lambda_bbr", p->aggregate.lambda_bbr);
  rec.set("per_flow_cubic", p->per_flow_cubic);
  rec.set("per_flow_bbr", p->per_flow_bbr);
}

TEST(GoldenFigures, MishraCubicSynchronized) {
  check_golden("mishra_sync", [](const NetworkParams& net, JsonlRecord& rec) {
    fill_multi_flow(CubicSyncBound::kSynchronized, net, rec);
  });
}

TEST(GoldenFigures, MishraCubicDesynchronized) {
  check_golden("mishra_desync",
               [](const NetworkParams& net, JsonlRecord& rec) {
                 fill_multi_flow(CubicSyncBound::kDesynchronized, net, rec);
               });
}

TEST(GoldenFigures, WareBaseline) {
  check_golden("ware_baseline", [](const NetworkParams& net,
                                   JsonlRecord& rec) {
    WareInputs in;
    in.num_bbr_flows = 5;  // matches the multi-flow tables above
    const WarePrediction p = ware_prediction(net, in);
    rec.set("cubic_fraction", p.cubic_fraction);
    rec.set("probe_time_sec", p.probe_time_sec);
    rec.set("bbr_fraction", p.bbr_fraction);
    rec.set("lambda_bbr", p.lambda_bbr);
    rec.set("lambda_cubic", p.lambda_cubic);
  });
}

}  // namespace
}  // namespace bbrnash
