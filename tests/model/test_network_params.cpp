#include "model/network_params.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(NetworkParams, MakeParamsComputesBufferFromBdp) {
  // 100 Mbps * 40 ms = 500 kB BDP; 4 BDP = 2 MB.
  const NetworkParams net = make_params(100, 40, 4);
  EXPECT_DOUBLE_EQ(net.capacity, mbps(100));
  EXPECT_EQ(net.base_rtt, from_ms(40));
  EXPECT_EQ(net.buffer_bytes, 2'000'000);
}

TEST(NetworkParams, BdpHelper) {
  const NetworkParams net = make_params(100, 40, 4);
  EXPECT_DOUBLE_EQ(net.bdp(), 500'000.0);
  EXPECT_DOUBLE_EQ(net.buffer_in_bdp(), 4.0);
}

TEST(NetworkParams, ValidateRejectsNonPositive) {
  NetworkParams p;
  p.capacity = mbps(10);
  p.base_rtt = from_ms(10);
  p.buffer_bytes = 1000;
  EXPECT_NO_THROW(p.validate());

  NetworkParams bad = p;
  bad.capacity = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.buffer_bytes = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.base_rtt = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(NetworkParams, MakeParamsValidates) {
  EXPECT_THROW(make_params(0, 40, 4), std::invalid_argument);
  EXPECT_THROW(make_params(100, 0, 4), std::invalid_argument);
  EXPECT_THROW(make_params(100, 40, 0), std::invalid_argument);
}

TEST(NetworkParams, FractionalBdpBuffers) {
  const NetworkParams net = make_params(50, 40, 0.5);
  EXPECT_EQ(net.buffer_bytes, 125'000);
  EXPECT_DOUBLE_EQ(net.buffer_in_bdp(), 0.5);
}

}  // namespace
}  // namespace bbrnash
