#include "model/nash.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

// --- SymmetricGame -------------------------------------------------------

SymmetricGame make_crossing_game() {
  // 4 players. BBR payoff decays with k, CUBIC payoff rises with k; the
  // crossing sits between k = 2 and k = 3.
  //              k:        0    1    2    3    4
  std::vector<double> a = {10, 12, 15, 20, 0};   // CUBIC per-flow
  std::vector<double> b = {0, 40, 22, 14, 10};   // BBR per-flow
  return SymmetricGame{4, a, b};
}

TEST(SymmetricGame, ValidatesTableSizes) {
  EXPECT_THROW(SymmetricGame(3, {1, 2}, {1, 2, 3, 4}), std::invalid_argument);
  EXPECT_THROW(SymmetricGame(0, {1}, {1}), std::invalid_argument);
}

TEST(SymmetricGame, DetectsInteriorEquilibrium) {
  const SymmetricGame g = make_crossing_game();
  // k=2: CUBIC at 15 would get payoff_b[3]=14 by switching (no), BBR at 22
  // would get payoff_a[1]=12 by switching (no) -> NE.
  EXPECT_TRUE(g.is_equilibrium(2));
  // k=1: a CUBIC flow switching gets payoff_b[2]=22 > payoff_a[1]=12 -> not NE.
  EXPECT_FALSE(g.is_equilibrium(1));
  // k=3: a BBR flow switching gets payoff_a[2]=15 > payoff_b[3]=14 -> not NE.
  EXPECT_FALSE(g.is_equilibrium(3));
}

TEST(SymmetricGame, EnumerationFindsExactlyTheNe) {
  const SymmetricGame g = make_crossing_game();
  EXPECT_EQ(g.equilibria(), (std::vector<int>{2}));
}

TEST(SymmetricGame, ToleranceWidensTheNeSet) {
  const SymmetricGame g = make_crossing_game();
  const auto ne = g.equilibria(1.5);  // absorbs the 14-vs-15 margin at k=3
  EXPECT_NE(std::find(ne.begin(), ne.end(), 3), ne.end());
}

TEST(SymmetricGame, AllBDominantGame) {
  // Strategy B always pays more: the only NE is everyone-plays-B.
  std::vector<double> a = {1, 1, 1, 1};
  std::vector<double> b = {0, 5, 5, 5};
  const SymmetricGame g{3, a, b};
  EXPECT_EQ(g.equilibria(), (std::vector<int>{3}));
}

TEST(SymmetricGame, AllADominantGame) {
  std::vector<double> a = {9, 9, 9, 0};
  std::vector<double> b = {0, 2, 2, 2};
  const SymmetricGame g{3, a, b};
  EXPECT_EQ(g.equilibria(), (std::vector<int>{0}));
}

TEST(SymmetricGame, BestResponseWalksToEquilibrium) {
  const SymmetricGame g = make_crossing_game();
  EXPECT_EQ(g.best_response_path(0), 2);
  EXPECT_EQ(g.best_response_path(4), 2);
  EXPECT_EQ(g.best_response_path(2), 2);
}

TEST(SymmetricGame, BoundsChecking) {
  const SymmetricGame g = make_crossing_game();
  EXPECT_THROW((void)g.is_equilibrium(-1), std::out_of_range);
  EXPECT_THROW((void)g.is_equilibrium(5), std::out_of_range);
}

// --- Model-driven NE prediction ------------------------------------------

TEST(NashPredictor, RejectsTrivialPopulations) {
  const NetworkParams net = make_params(100, 40, 5);
  EXPECT_FALSE(
      predict_nash(net, 1, CubicSyncBound::kSynchronized).has_value());
}

TEST(NashPredictor, RejectsInvalidDomain) {
  const NetworkParams net = make_params(100, 40, 0.5);
  EXPECT_FALSE(
      predict_nash(net, 10, CubicSyncBound::kSynchronized).has_value());
}

TEST(NashPredictor, OneBdpBufferIsAllBbr) {
  // BBR takes the whole link at 1 BDP: the fair-share line is never
  // crossed; NE at N_b = N (paper's Case 1).
  const NetworkParams net = make_params(100, 40, 1.0);
  const auto ne = predict_nash(net, 10, CubicSyncBound::kSynchronized);
  ASSERT_TRUE(ne.has_value());
  EXPECT_NEAR(ne->num_bbr, 10.0, 1e-6);
  EXPECT_NEAR(ne->num_cubic, 0.0, 1e-6);
}

TEST(NashPredictor, MixedEquilibriumInModerateBuffers) {
  const NetworkParams net = make_params(100, 40, 5.0);
  const auto ne = predict_nash(net, 10, CubicSyncBound::kSynchronized);
  ASSERT_TRUE(ne.has_value());
  EXPECT_GT(ne->num_cubic, 1.0);
  EXPECT_LT(ne->num_cubic, 9.0);
}

TEST(NashPredictor, SyncCrossingMatchesClosedForm) {
  // Under the sync bound lambda_b is independent of the split, so Eq. 25
  // yields N_b* = N * lambda_b / C exactly.
  const NetworkParams net = make_params(100, 40, 5.0);
  const auto agg = solve_mishra(net, 0.7);
  const auto ne = predict_nash(net, 20, CubicSyncBound::kSynchronized);
  ASSERT_TRUE(agg && ne);
  EXPECT_NEAR(ne->num_bbr, 20.0 * agg->lambda_bbr / net.capacity, 0.05);
}

TEST(NashPredictor, DeeperBuffersHaveMoreCubicAtNe) {
  double prev = -1.0;
  for (const double bdp : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const NetworkParams net = make_params(100, 40, bdp);
    const auto ne = predict_nash(net, 50, CubicSyncBound::kSynchronized);
    ASSERT_TRUE(ne.has_value());
    EXPECT_GE(ne->num_cubic, prev) << "at " << bdp << " BDP";
    prev = ne->num_cubic;
  }
}

TEST(NashPredictor, RegionScaleInvariantAcrossLinks) {
  // The paper's Fig. 9 observation: with buffers in BDP units the region
  // is identical across capacities and RTTs.
  const auto a = predict_nash_region(make_params(50, 20, 10), 50);
  const auto b = predict_nash_region(make_params(100, 80, 10), 50);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(a->sync.num_cubic, b->sync.num_cubic, 0.01);
  EXPECT_NEAR(a->desync.num_cubic, b->desync.num_cubic, 0.2);
}

TEST(NashPredictor, RegionBoundsAreOrderedConsistently) {
  const auto region = predict_nash_region(make_params(100, 40, 10), 50);
  ASSERT_TRUE(region.has_value());
  EXPECT_LE(region->cubic_low(), region->cubic_high());
  // Desync gives BBR more throughput -> the fair-share crossing happens at
  // a larger N_b -> fewer CUBIC flows at NE than the sync bound.
  EXPECT_LE(region->desync.num_cubic, region->sync.num_cubic + 1e-9);
}

}  // namespace
}  // namespace bbrnash
