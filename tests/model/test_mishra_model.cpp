#include "model/mishra_model.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(MishraModel, RejectsBufferBelowOneBdp) {
  const NetworkParams net = make_params(50, 40, 0.5);
  EXPECT_FALSE(two_flow_prediction(net).has_value());
}

TEST(MishraModel, RejectsBadKappa) {
  const NetworkParams net = make_params(50, 40, 5);
  EXPECT_FALSE(solve_mishra(net, 0.4).has_value());
  EXPECT_FALSE(solve_mishra(net, 1.2).has_value());
}

TEST(MishraModel, ConservesCapacity) {
  for (const double bdp : {1.5, 3.0, 10.0, 30.0}) {
    const NetworkParams net = make_params(100, 40, bdp);
    const auto p = two_flow_prediction(net);
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(p->lambda_bbr + p->lambda_cubic, net.capacity, 1.0);
    EXPECT_GE(p->lambda_bbr, 0.0);
    EXPECT_GE(p->lambda_cubic, 0.0);
  }
}

TEST(MishraModel, OneBdpBufferGivesBbrEverything) {
  // Degenerate boundary: b_cmin = 0 -> root at b_b = B -> lambda_c = 0.
  const NetworkParams net = make_params(50, 40, 1.0);
  const auto p = two_flow_prediction(net);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->lambda_bbr, net.capacity, net.capacity * 0.01);
}

TEST(MishraModel, BbrShareDecreasesWithBufferDepth) {
  double prev = 1e18;
  for (const double bdp : {1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 30.0}) {
    const NetworkParams net = make_params(50, 40, bdp);
    const auto p = two_flow_prediction(net);
    ASSERT_TRUE(p.has_value());
    EXPECT_LT(p->lambda_bbr, prev);
    prev = p->lambda_bbr;
  }
}

TEST(MishraModel, DeepBufferAsymptoteNearTwoSevenths) {
  // For B >> BDP the fixed point tends to lambda_b/C -> ~0.286 (see the
  // derivation: b_b -> B(1 - 1/(2*0.7))).
  const NetworkParams net = make_params(50, 40, 500);
  const auto p = two_flow_prediction(net);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->lambda_bbr / net.capacity, 2.0 / 7.0, 0.02);
}

TEST(MishraModel, ScaleInvariantInBdpUnits) {
  // Normalized by BDP, the predicted *fractions* depend only on B/BDP —
  // the paper's Fig. 9 observation.
  const auto a = two_flow_prediction(make_params(50, 40, 7));
  const auto b = two_flow_prediction(make_params(100, 80, 7));
  const auto c = two_flow_prediction(make_params(200, 10, 7));
  ASSERT_TRUE(a && b && c);
  EXPECT_NEAR(a->lambda_bbr / mbps(50), b->lambda_bbr / mbps(100), 1e-6);
  EXPECT_NEAR(a->lambda_bbr / mbps(50), c->lambda_bbr / mbps(200), 1e-6);
}

TEST(MishraModel, BufferOccupancySolutionInRange) {
  const NetworkParams net = make_params(100, 40, 8);
  const auto p = two_flow_prediction(net);
  ASSERT_TRUE(p.has_value());
  EXPECT_GT(p->bbr_buffer_bytes, 0.0);
  EXPECT_LT(p->bbr_buffer_bytes, static_cast<double>(net.buffer_bytes));
  EXPECT_NEAR(p->cubic_min_buffer,
              (static_cast<double>(net.buffer_bytes) - net.bdp()) / 2.0, 1.0);
}

TEST(MishraModel, KappaMonotonicity) {
  // Larger kappa (less synchronized CUBIC) -> CUBIC holds more buffer at
  // backoff -> BBR gets a larger share.
  const NetworkParams net = make_params(100, 40, 8);
  const auto sync = solve_mishra(net, 0.7);
  const auto desync = solve_mishra(net, 0.97);
  ASSERT_TRUE(sync && desync);
  EXPECT_GT(desync->lambda_bbr, sync->lambda_bbr);
}

TEST(MishraModel, BackoffKappaValues) {
  EXPECT_DOUBLE_EQ(backoff_kappa(CubicSyncBound::kSynchronized, 5), 0.7);
  EXPECT_DOUBLE_EQ(backoff_kappa(CubicSyncBound::kDesynchronized, 1), 0.7);
  EXPECT_DOUBLE_EQ(backoff_kappa(CubicSyncBound::kDesynchronized, 10),
                   9.7 / 10.0);
  // More CUBIC flows -> closer to 1.
  EXPECT_GT(backoff_kappa(CubicSyncBound::kDesynchronized, 100),
            backoff_kappa(CubicSyncBound::kDesynchronized, 2));
}

TEST(MishraModel, MultiFlowPerFlowDivision) {
  const NetworkParams net = make_params(100, 40, 8);
  const auto p =
      multi_flow_prediction(net, 4, 2, CubicSyncBound::kSynchronized);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->per_flow_cubic * 4, p->aggregate.lambda_cubic, 1e-6);
  EXPECT_NEAR(p->per_flow_bbr * 2, p->aggregate.lambda_bbr, 1e-6);
}

TEST(MishraModel, MultiFlowRequiresBothSides) {
  const NetworkParams net = make_params(100, 40, 8);
  EXPECT_FALSE(multi_flow_prediction(net, 0, 5, CubicSyncBound::kSynchronized)
                   .has_value());
  EXPECT_FALSE(multi_flow_prediction(net, 5, 0, CubicSyncBound::kSynchronized)
                   .has_value());
}

TEST(MishraModel, PredictionIntervalOrdering) {
  for (const double bdp : {2.0, 5.0, 15.0, 30.0}) {
    const NetworkParams net = make_params(100, 40, bdp);
    const auto iv = prediction_interval(net, 5, 5);
    ASSERT_TRUE(iv.has_value());
    EXPECT_LE(iv->sync.per_flow_bbr, iv->desync.per_flow_bbr)
        << "sync must be the lower BBR bound at " << bdp << " BDP";
  }
}

TEST(MishraModel, SyncBoundIndependentOfFlowCounts) {
  // Under the synchronized bound kappa = 0.7 regardless of N_c, so the
  // aggregate split matches the 2-flow model.
  const NetworkParams net = make_params(100, 40, 8);
  const auto two = two_flow_prediction(net);
  const auto multi =
      multi_flow_prediction(net, 9, 1, CubicSyncBound::kSynchronized);
  ASSERT_TRUE(two && multi);
  EXPECT_NEAR(two->lambda_bbr, multi->aggregate.lambda_bbr, 1.0);
}

// Property sweep across the full validity domain.
class MishraDomainSweep : public ::testing::TestWithParam<double> {};

TEST_P(MishraDomainSweep, SolutionWellFormed) {
  const double bdp = GetParam();
  for (const double kappa : {0.7, 0.8, 0.9, 0.97}) {
    const NetworkParams net = make_params(100, 40, bdp);
    const auto p = solve_mishra(net, kappa);
    ASSERT_TRUE(p.has_value()) << bdp << " " << kappa;
    EXPECT_GE(p->bbr_buffer_bytes, 0.0);
    EXPECT_LE(p->bbr_buffer_bytes,
              static_cast<double>(net.buffer_bytes) + 1.0);
    EXPECT_NEAR(p->lambda_bbr + p->lambda_cubic, net.capacity, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(BufferDepths, MishraDomainSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0,
                                           20.0, 30.0, 50.0, 100.0));

}  // namespace
}  // namespace bbrnash
