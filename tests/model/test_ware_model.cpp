#include "model/ware_model.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(WareModel, FractionsBounded) {
  for (const double bdp : {1.0, 2.0, 10.0, 50.0}) {
    const WarePrediction p = ware_prediction(make_params(50, 40, bdp));
    EXPECT_GE(p.bbr_fraction, 0.0);
    EXPECT_LE(p.bbr_fraction, 1.0);
    EXPECT_GE(p.cubic_fraction, 0.0);
    EXPECT_LE(p.cubic_fraction, 1.0);
  }
}

TEST(WareModel, ConservesCapacity) {
  const NetworkParams net = make_params(50, 40, 10);
  const WarePrediction p = ware_prediction(net);
  EXPECT_NEAR(p.lambda_bbr + p.lambda_cubic, net.capacity, 1e-6);
}

TEST(WareModel, ShallowBufferGivesBbrAlmostEverything) {
  // X = 1 BDP: p = 1/2 - 1/2 - eps <= 0, clamped to 0.
  const WarePrediction p = ware_prediction(make_params(50, 40, 1));
  EXPECT_DOUBLE_EQ(p.cubic_fraction, 0.0);
  EXPECT_GT(p.bbr_fraction, 0.9);
}

TEST(WareModel, MatchesPaperFigure1Endpoints) {
  // Fig. 1: 50 Mbps / 40 ms, 2-minute flows. At 1 BDP Ware predicts
  // ~48.6 Mbps for BBR; around 50 BDP it has fallen to ~20 Mbps.
  const WareInputs in{1, 120.0, 1500};
  const WarePrediction shallow = ware_prediction(make_params(50, 40, 1), in);
  EXPECT_NEAR(to_mbps(shallow.lambda_bbr), 48.6, 1.0);
  const WarePrediction deep = ware_prediction(make_params(50, 40, 50), in);
  EXPECT_NEAR(to_mbps(deep.lambda_bbr), 20.0, 2.0);
}

TEST(WareModel, ProbeTimeGrowsWithBuffer) {
  const WareInputs in{1, 120.0, 1500};
  const WarePrediction a = ware_prediction(make_params(50, 40, 5), in);
  const WarePrediction b = ware_prediction(make_params(50, 40, 50), in);
  EXPECT_GT(b.probe_time_sec, a.probe_time_sec);
}

TEST(WareModel, MoreBbrFlowsShiftShareTowardBbr) {
  // The 4N/q term: each BBR flow's 4-packet ProbeRTT residue reduces
  // CUBIC's predicted fraction.
  const NetworkParams net = make_params(50, 40, 3);
  const WarePrediction one = ware_prediction(net, WareInputs{1, 120.0, 1500});
  const WarePrediction ten = ware_prediction(net, WareInputs{10, 120.0, 1500});
  EXPECT_LT(ten.cubic_fraction, one.cubic_fraction);
}

TEST(WareModel, FixedShareRegardlessOfCubicCount) {
  // The paper's criticism: Ware's BBR share does not depend on the number
  // of CUBIC flows at all (no such parameter exists in Eqs. 2-4).
  const NetworkParams net = make_params(50, 40, 10);
  const WarePrediction p = ware_prediction(net, WareInputs{2, 120.0, 1500});
  // Nothing to vary: this test documents the model's structure.
  EXPECT_GT(p.lambda_bbr, 0.0);
}

TEST(WareModel, ExtremeDurationDominatedByProbeTime) {
  // If Probe_time exceeds the duration, the active fraction clamps at 0.
  const WarePrediction p =
      ware_prediction(make_params(50, 40, 300), WareInputs{1, 10.0, 1500});
  EXPECT_DOUBLE_EQ(p.bbr_fraction, 0.0);
}

}  // namespace
}  // namespace bbrnash
