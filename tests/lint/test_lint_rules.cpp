// Fixture tests for bbrnash-lint: one deliberate violation per rule and one
// exercised allow-annotation per suppressible rule live under
// tests/lint/fixtures/ (a mini repo root with src/sim, src/model, src/exp,
// src/cc subtrees so the scoped rules and path allowlists are all reachable).
// These tests pin the EXACT rule name and file:line of every finding, the
// suppression bookkeeping, and the driver binary's exit-code contract
// (0 clean / 1 violations / 2 usage error).
//
// The fixture corpus is data, not code: it is never compiled, and
// scan_tree() skips any path containing tests/lint/fixtures so the
// deliberate violations stay invisible to the real tree gate.
#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.hpp"

namespace {

using bbrnash::lint::Finding;
using bbrnash::lint::Suppression;
using bbrnash::lint::TreeReport;

TreeReport scan_fixtures() {
  return bbrnash::lint::scan_tree(BBRNASH_LINT_FIXTURES, {"src"});
}

// Exit code of `bbrnash-lint <argv_tail>`, with output discarded.
int run_lint(const std::string& argv_tail) {
  const std::string cmd =
      std::string{BBRNASH_LINT_BIN} + " " + argv_tail + " > /dev/null 2>&1";
  // bbrnash-lint: allow(process-control) -- std::system drives the driver
  // binary's exit-code contract, the very thing this test pins.
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WEXITSTATUS(status);
}

bool has_finding(const TreeReport& r, const std::string& rule,
                 const std::string& file, int line) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.file == file &&
                              f.line == line;
                     });
}

TEST(LintFixtures, EveryRuleFiresAtItsExactSite) {
  const TreeReport r = scan_fixtures();
  const std::vector<std::tuple<std::string, std::string, int>> expected = {
      {"wall-clock", "src/sim/fx_wall_clock.cpp", 5},
      {"nondeterminism", "src/sim/fx_nondeterminism.cpp", 5},
      {"unordered-container", "src/sim/fx_unordered.cpp", 5},
      {"unordered-iteration", "src/sim/fx_unordered.cpp", 7},
      {"const-cast", "src/sim/fx_const_cast.cpp", 3},
      {"reinterpret-cast", "src/sim/fx_reinterpret_cast.cpp", 3},
      {"raw-parse", "src/exp/fx_raw_parse.cpp", 5},
      {"float-type", "src/model/fx_float.cpp", 3},
      {"float-equality", "src/model/fx_float.cpp", 4},
      {"pragma-once", "src/sim/fx_missing_pragma.hpp", 1},
      {"process-control", "src/sim/fx_process.cpp", 5},
      {"cc-virtual", "src/cc/fx_cc_virtual.cpp", 4},
      {"unused-suppression", "src/sim/fx_unused_suppression.cpp", 2},
  };
  for (const auto& [rule, file, line] : expected) {
    EXPECT_TRUE(has_finding(r, rule, file, line))
        << "expected [" << rule << "] at " << file << ":" << line;
  }
  // The corpus triggers each per-file rule exactly once — nothing extra
  // fires (the semantic-pass rules have their own mini-trees below).
  EXPECT_EQ(r.findings.size(), expected.size());
}

TEST(LintFixtures, PathAllowlistsExemptTheDesignatedFiles) {
  const TreeReport r = scan_fixtures();
  // src/exp/cli_flags.cpp holds a raw strtod, src/exp/scenario_runner.cpp a
  // steady_clock read, and src/cc/congestion_control.hpp two virtuals; all
  // three are allowlisted, so none may appear.
  for (const Finding& f : r.findings) {
    EXPECT_NE(f.file, "src/exp/cli_flags.cpp") << f.rule;
    EXPECT_NE(f.file, "src/exp/scenario_runner.cpp") << f.rule;
    EXPECT_NE(f.file, "src/cc/congestion_control.hpp") << f.rule;
  }
}

TEST(LintFixtures, AllowAnnotationsMaskAndAreListed) {
  const TreeReport r = scan_fixtures();
  const std::vector<std::tuple<std::string, std::string, int>> expected = {
      {"wall-clock", "src/sim/fx_allow_wall_clock.cpp", 5},
      {"nondeterminism", "src/sim/fx_allow_nondeterminism.cpp", 5},
      {"unordered-container", "src/sim/fx_allow_unordered.cpp", 5},
      {"reinterpret-cast", "src/sim/fx_allow_reinterpret.cpp", 7},
      {"raw-parse", "src/exp/fx_allow_raw_parse.cpp", 5},
      {"float-equality", "src/model/fx_allow_float_eq.cpp", 3},
      {"process-control", "src/sim/fx_allow_process.cpp", 5},
      {"cc-virtual", "src/cc/fx_allow_cc_virtual.cpp", 5},
  };
  for (const auto& [rule, file, line] : expected) {
    const auto it = std::find_if(
        r.suppressions.begin(), r.suppressions.end(), [&](const Suppression& s) {
          return s.rule == rule && s.file == file && s.line == line;
        });
    ASSERT_NE(it, r.suppressions.end())
        << "missing suppression [" << rule << "] at " << file << ":" << line;
    EXPECT_TRUE(it->used) << file << ":" << line;
    EXPECT_FALSE(it->reason.empty()) << file << ":" << line;
    // A used suppression means the masked construct produced no finding.
    EXPECT_FALSE(has_finding(r, rule, file, line + 1))
        << "suppression failed to mask " << file;
  }
  // 8 used annotations + the deliberately stale one.
  EXPECT_EQ(r.suppressions.size(), expected.size() + 1);
}

TEST(LintFixtures, MultiLineJustificationIsFoldedIntoTheReason) {
  const TreeReport r = scan_fixtures();
  const auto it = std::find_if(
      r.suppressions.begin(), r.suppressions.end(), [](const Suppression& s) {
        return s.file == "src/sim/fx_allow_reinterpret.cpp";
      });
  ASSERT_NE(it, r.suppressions.end());
  EXPECT_NE(it->reason.find("fixture for pooled storage;"), std::string::npos)
      << it->reason;
  EXPECT_NE(it->reason.find("spans a second comment line"), std::string::npos)
      << "continuation comment line was not folded: " << it->reason;
}

TEST(LintFixtures, StaleSuppressionIsItselfAViolation) {
  const TreeReport r = scan_fixtures();
  EXPECT_TRUE(has_finding(r, "unused-suppression",
                          "src/sim/fx_unused_suppression.cpp", 2));
  const auto it = std::find_if(
      r.suppressions.begin(), r.suppressions.end(), [](const Suppression& s) {
        return s.file == "src/sim/fx_unused_suppression.cpp";
      });
  ASSERT_NE(it, r.suppressions.end());
  EXPECT_EQ(it->rule, "const-cast");
  EXPECT_FALSE(it->used);
}

TEST(LintFixtures, ReportRendersSitesAndSummary) {
  const TreeReport r = scan_fixtures();
  std::string out;
  EXPECT_EQ(bbrnash::lint::render_report(r, out, /*list_suppressions=*/true), 1);
  EXPECT_NE(out.find("src/sim/fx_wall_clock.cpp:5: [wall-clock]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("13 violations"), std::string::npos) << out;
  EXPECT_NE(out.find("9 suppressions"), std::string::npos) << out;

  // Clean tree: exit 0, nothing to report.
  const TreeReport clean = bbrnash::lint::scan_tree(
      std::string{BBRNASH_LINT_FIXTURES} + "/clean_tree", {"src"});
  EXPECT_EQ(clean.files_scanned, 2);
  std::string clean_out;
  EXPECT_EQ(bbrnash::lint::render_report(clean, clean_out, true), 0);
  EXPECT_NE(clean_out.find("0 violations"), std::string::npos) << clean_out;
}

TEST(LintBinary, ExitCodeContract) {
  // 1: the fixture corpus has violations.
  EXPECT_EQ(run_lint("--root " + std::string{BBRNASH_LINT_FIXTURES}), 1);
  // 1: semantic-pass violations alone also fail the gate, --json included.
  EXPECT_EQ(run_lint("--root " + std::string{BBRNASH_LINT_FIXTURES} +
                     "/layering --dirs src"),
            1);
  EXPECT_EQ(run_lint("--root " + std::string{BBRNASH_LINT_FIXTURES} +
                     "/layering --dirs src --json"),
            1);
  // 0: the clean mini-tree passes.
  EXPECT_EQ(
      run_lint("--root " + std::string{BBRNASH_LINT_FIXTURES} + "/clean_tree"),
      0);
  // 2: usage error on an unknown flag.
  EXPECT_EQ(run_lint("--no-such-flag"), 2);
}

// --- Semantic passes (phase 2) ---------------------------------------------

TreeReport scan_mini_tree(const std::string& name) {
  return bbrnash::lint::scan_tree(
      std::string{BBRNASH_LINT_FIXTURES} + "/" + name, {"src"});
}

const Finding* find_one(const TreeReport& r, const std::string& rule,
                        const std::string& file, int line) {
  for (const Finding& f : r.findings) {
    if (f.rule == rule && f.file == file && f.line == line) return &f;
  }
  return nullptr;
}

TEST(LintSemantic, LayeringBackEdgeFiresAtTheOffendingInclude) {
  const TreeReport r = scan_mini_tree("layering");
  const Finding* f =
      find_one(r, "include-layering", "src/net/fx_backedge.hpp", 5);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pass_name, "include-graph");
  // The report names both ends of the edge with their layers.
  EXPECT_NE(f->detail.find("layer net"), std::string::npos) << f->detail;
  EXPECT_NE(f->detail.find("src/exp/fx_top.hpp (layer exp)"),
            std::string::npos)
      << f->detail;
}

TEST(LintSemantic, IncludeCycleReportsTheFullChain) {
  const TreeReport r = scan_mini_tree("layering");
  const Finding* f = find_one(r, "include-cycle", "src/sim/fx_cycle_b.hpp", 5);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->detail.find("src/sim/fx_cycle_a.hpp -> src/sim/fx_cycle_b.hpp "
                           "-> src/sim/fx_cycle_a.hpp"),
            std::string::npos)
      << f->detail;
  // The back-edge and the cycle are the tree's ONLY violations: the
  // annotated sibling include (model -> sim) is masked, and its
  // suppression is listed as used.
  EXPECT_EQ(r.findings.size(), 2U);
  const auto it = std::find_if(
      r.suppressions.begin(), r.suppressions.end(), [](const Suppression& s) {
        return s.file == "src/model/fx_allow_layering.hpp" && s.line == 6;
      });
  ASSERT_NE(it, r.suppressions.end());
  EXPECT_EQ(it->rule, "include-layering");
  EXPECT_TRUE(it->used);
}

TEST(LintSemantic, SignalUnsafeCallInHandlerBody) {
  const TreeReport r = scan_mini_tree("signal");
  const Finding* f =
      find_one(r, "signal-unsafe-call", "src/sim/fx_handler_unsafe.cpp", 10);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pass_name, "signal-safety");
  EXPECT_NE(f->detail.find("fx_unsafe_handler -> printf"), std::string::npos)
      << f->detail;
}

TEST(LintSemantic, SignalUnsafeCallReachedTransitively) {
  const TreeReport r = scan_mini_tree("signal");
  const Finding* f = find_one(r, "signal-unsafe-call",
                              "src/sim/fx_handler_transitive.cpp", 10);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(
      f->detail.find("fx_transitive_handler -> fx_helper -> malloc"),
      std::string::npos)
      << f->detail;
  // The flag-and-write(2) handler and the annotated handler stay clean:
  // exactly the two unsafe sites fire across the whole mini-tree.
  EXPECT_EQ(r.findings.size(), 2U);
  const auto it = std::find_if(
      r.suppressions.begin(), r.suppressions.end(), [](const Suppression& s) {
        return s.rule == "signal-unsafe-call";
      });
  ASSERT_NE(it, r.suppressions.end());
  EXPECT_EQ(it->file, "src/sim/fx_allow_signal.cpp");
  EXPECT_TRUE(it->used);
}

TEST(LintSemantic, SchemaRegistryFlagsRawDuplicateAndUnused) {
  const TreeReport r = scan_mini_tree("schema");
  const Finding* raw =
      find_one(r, "schema-literal", "src/exp/fx_writer.cpp", 14);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->pass_name, "schema-registry");
  EXPECT_NE(raw->detail.find("bbrnash-fx-raw-v2"), std::string::npos)
      << raw->detail;

  const Finding* dup =
      find_one(r, "schema-registry", "src/util/schemas.hpp", 12);
  ASSERT_NE(dup, nullptr);
  EXPECT_NE(dup->detail.find("duplicate"), std::string::npos) << dup->detail;
  EXPECT_NE(dup->detail.find("bbrnash-fx-good-v1"), std::string::npos)
      << dup->detail;

  const Finding* unused =
      find_one(r, "schema-registry", "src/util/schemas.hpp", 14);
  ASSERT_NE(unused, nullptr);
  EXPECT_NE(unused->detail.find("kSchemaUnused"), std::string::npos)
      << unused->detail;
  EXPECT_NE(unused->detail.find("no user"), std::string::npos)
      << unused->detail;

  // The constant-based writer use is legal: exactly these three fire.
  EXPECT_EQ(r.findings.size(), 3U);
}

TEST(LintSemantic, EveryRuleFiresSomewhereAcrossTheCorpora) {
  // Union coverage: each rule in rule_names() is exercised by at least
  // one fixture tree, so no rule can silently stop firing.
  std::vector<std::string> fired;
  for (const TreeReport& r :
       {scan_fixtures(), scan_mini_tree("layering"), scan_mini_tree("signal"),
        scan_mini_tree("schema")}) {
    for (const Finding& f : r.findings) fired.push_back(f.rule);
  }
  for (const std::string& rule : bbrnash::lint::rule_names()) {
    EXPECT_NE(std::find(fired.begin(), fired.end(), rule), fired.end())
        << "no fixture exercises rule '" << rule << "'";
  }
}

// --- Deterministic report order --------------------------------------------

TEST(LintDeterminism, ViolationOrderIsIndependentOfTraversalOrder) {
  // The same corpus scanned via differently-ordered (and overlapping)
  // --dirs lists must render byte-identical reports: findings are sorted
  // by (file, line, rule, detail) and the file list is deduplicated.
  const std::string root{BBRNASH_LINT_FIXTURES};
  const TreeReport a = bbrnash::lint::scan_tree(root, {"src"});
  const TreeReport b = bbrnash::lint::scan_tree(
      root, {"src/sim", "src/exp", "src/model", "src/cc"});
  const TreeReport c =
      bbrnash::lint::scan_tree(root, {"src", "src/sim", "src/model"});

  std::string out_a;
  std::string out_b;
  std::string out_c;
  EXPECT_EQ(bbrnash::lint::render_report(a, out_a, true), 1);
  EXPECT_EQ(bbrnash::lint::render_report(b, out_b, true), 1);
  EXPECT_EQ(bbrnash::lint::render_report(c, out_c, true), 1);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(out_a, out_c);
  EXPECT_EQ(a.files_scanned, c.files_scanned) << "overlapping dirs rescanned";

  // And the sort key itself: every adjacent pair is non-decreasing.
  for (std::size_t i = 1; i < a.findings.size(); ++i) {
    const Finding& p = a.findings[i - 1];
    const Finding& q = a.findings[i];
    EXPECT_LE(std::tie(p.file, p.line, p.rule, p.detail),
              std::tie(q.file, q.line, q.rule, q.detail));
  }
}

// --- Machine-readable output -----------------------------------------------

TEST(LintJson, ReportCarriesSchemaRuleFileLinePassAndSuppressions) {
  const TreeReport r = scan_mini_tree("layering");
  std::string out;
  EXPECT_EQ(bbrnash::lint::render_json(r, out), 1);
  EXPECT_NE(out.find("\"schema\": \"bbrnash-lint-report-v1\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"rule\": \"include-layering\", "
                     "\"file\": \"src/net/fx_backedge.hpp\", \"line\": 5, "
                     "\"pass\": \"include-graph\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"rule\": \"include-layering\", "
                     "\"file\": \"src/model/fx_allow_layering.hpp\", "
                     "\"line\": 6, \"used\": true"),
            std::string::npos)
      << "suppression inventory missing: " << out;

  // Per-file scan findings carry pass "scan".
  const TreeReport corpus = scan_fixtures();
  std::string corpus_out;
  EXPECT_EQ(bbrnash::lint::render_json(corpus, corpus_out), 1);
  EXPECT_NE(corpus_out.find("\"pass\": \"scan\""), std::string::npos);

  // A clean tree renders exit 0 with empty arrays.
  const TreeReport clean = bbrnash::lint::scan_tree(
      std::string{BBRNASH_LINT_FIXTURES} + "/clean_tree", {"src"});
  std::string clean_out;
  EXPECT_EQ(bbrnash::lint::render_json(clean, clean_out), 0);
  EXPECT_NE(clean_out.find("\"violations\": []"), std::string::npos)
      << clean_out;
}

}  // namespace
