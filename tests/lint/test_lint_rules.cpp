// Fixture tests for bbrnash-lint: one deliberate violation per rule and one
// exercised allow-annotation per suppressible rule live under
// tests/lint/fixtures/ (a mini repo root with src/sim, src/model, src/exp,
// src/cc subtrees so the scoped rules and path allowlists are all reachable).
// These tests pin the EXACT rule name and file:line of every finding, the
// suppression bookkeeping, and the driver binary's exit-code contract
// (0 clean / 1 violations / 2 usage error).
//
// The fixture corpus is data, not code: it is never compiled, and
// scan_tree() skips any path containing tests/lint/fixtures so the
// deliberate violations stay invisible to the real tree gate.
#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.hpp"

namespace {

using bbrnash::lint::Finding;
using bbrnash::lint::Suppression;
using bbrnash::lint::TreeReport;

TreeReport scan_fixtures() {
  return bbrnash::lint::scan_tree(BBRNASH_LINT_FIXTURES, {"src"});
}

// Exit code of `bbrnash-lint <argv_tail>`, with output discarded.
int run_lint(const std::string& argv_tail) {
  const std::string cmd =
      std::string{BBRNASH_LINT_BIN} + " " + argv_tail + " > /dev/null 2>&1";
  // bbrnash-lint: allow(process-control) -- std::system drives the driver
  // binary's exit-code contract, the very thing this test pins.
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WEXITSTATUS(status);
}

bool has_finding(const TreeReport& r, const std::string& rule,
                 const std::string& file, int line) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.file == file &&
                              f.line == line;
                     });
}

TEST(LintFixtures, EveryRuleFiresAtItsExactSite) {
  const TreeReport r = scan_fixtures();
  const std::vector<std::tuple<std::string, std::string, int>> expected = {
      {"wall-clock", "src/sim/fx_wall_clock.cpp", 5},
      {"nondeterminism", "src/sim/fx_nondeterminism.cpp", 5},
      {"unordered-container", "src/sim/fx_unordered.cpp", 5},
      {"unordered-iteration", "src/sim/fx_unordered.cpp", 7},
      {"const-cast", "src/sim/fx_const_cast.cpp", 3},
      {"reinterpret-cast", "src/sim/fx_reinterpret_cast.cpp", 3},
      {"raw-parse", "src/exp/fx_raw_parse.cpp", 5},
      {"float-type", "src/model/fx_float.cpp", 3},
      {"float-equality", "src/model/fx_float.cpp", 4},
      {"pragma-once", "src/sim/fx_missing_pragma.hpp", 1},
      {"process-control", "src/sim/fx_process.cpp", 5},
      {"cc-virtual", "src/cc/fx_cc_virtual.cpp", 4},
      {"unused-suppression", "src/sim/fx_unused_suppression.cpp", 2},
  };
  for (const auto& [rule, file, line] : expected) {
    EXPECT_TRUE(has_finding(r, rule, file, line))
        << "expected [" << rule << "] at " << file << ":" << line;
  }
  // The corpus triggers each rule exactly once — nothing extra fires.
  EXPECT_EQ(r.findings.size(), expected.size());
  EXPECT_EQ(r.findings.size(), bbrnash::lint::rule_names().size());
}

TEST(LintFixtures, PathAllowlistsExemptTheDesignatedFiles) {
  const TreeReport r = scan_fixtures();
  // src/exp/cli_flags.cpp holds a raw strtod, src/exp/scenario_runner.cpp a
  // steady_clock read, and src/cc/congestion_control.hpp two virtuals; all
  // three are allowlisted, so none may appear.
  for (const Finding& f : r.findings) {
    EXPECT_NE(f.file, "src/exp/cli_flags.cpp") << f.rule;
    EXPECT_NE(f.file, "src/exp/scenario_runner.cpp") << f.rule;
    EXPECT_NE(f.file, "src/cc/congestion_control.hpp") << f.rule;
  }
}

TEST(LintFixtures, AllowAnnotationsMaskAndAreListed) {
  const TreeReport r = scan_fixtures();
  const std::vector<std::tuple<std::string, std::string, int>> expected = {
      {"wall-clock", "src/sim/fx_allow_wall_clock.cpp", 5},
      {"nondeterminism", "src/sim/fx_allow_nondeterminism.cpp", 5},
      {"unordered-container", "src/sim/fx_allow_unordered.cpp", 5},
      {"reinterpret-cast", "src/sim/fx_allow_reinterpret.cpp", 7},
      {"raw-parse", "src/exp/fx_allow_raw_parse.cpp", 5},
      {"float-equality", "src/model/fx_allow_float_eq.cpp", 3},
      {"process-control", "src/sim/fx_allow_process.cpp", 5},
      {"cc-virtual", "src/cc/fx_allow_cc_virtual.cpp", 5},
  };
  for (const auto& [rule, file, line] : expected) {
    const auto it = std::find_if(
        r.suppressions.begin(), r.suppressions.end(), [&](const Suppression& s) {
          return s.rule == rule && s.file == file && s.line == line;
        });
    ASSERT_NE(it, r.suppressions.end())
        << "missing suppression [" << rule << "] at " << file << ":" << line;
    EXPECT_TRUE(it->used) << file << ":" << line;
    EXPECT_FALSE(it->reason.empty()) << file << ":" << line;
    // A used suppression means the masked construct produced no finding.
    EXPECT_FALSE(has_finding(r, rule, file, line + 1))
        << "suppression failed to mask " << file;
  }
  // 8 used annotations + the deliberately stale one.
  EXPECT_EQ(r.suppressions.size(), expected.size() + 1);
}

TEST(LintFixtures, MultiLineJustificationIsFoldedIntoTheReason) {
  const TreeReport r = scan_fixtures();
  const auto it = std::find_if(
      r.suppressions.begin(), r.suppressions.end(), [](const Suppression& s) {
        return s.file == "src/sim/fx_allow_reinterpret.cpp";
      });
  ASSERT_NE(it, r.suppressions.end());
  EXPECT_NE(it->reason.find("fixture for pooled storage;"), std::string::npos)
      << it->reason;
  EXPECT_NE(it->reason.find("spans a second comment line"), std::string::npos)
      << "continuation comment line was not folded: " << it->reason;
}

TEST(LintFixtures, StaleSuppressionIsItselfAViolation) {
  const TreeReport r = scan_fixtures();
  EXPECT_TRUE(has_finding(r, "unused-suppression",
                          "src/sim/fx_unused_suppression.cpp", 2));
  const auto it = std::find_if(
      r.suppressions.begin(), r.suppressions.end(), [](const Suppression& s) {
        return s.file == "src/sim/fx_unused_suppression.cpp";
      });
  ASSERT_NE(it, r.suppressions.end());
  EXPECT_EQ(it->rule, "const-cast");
  EXPECT_FALSE(it->used);
}

TEST(LintFixtures, ReportRendersSitesAndSummary) {
  const TreeReport r = scan_fixtures();
  std::string out;
  EXPECT_EQ(bbrnash::lint::render_report(r, out, /*list_suppressions=*/true), 1);
  EXPECT_NE(out.find("src/sim/fx_wall_clock.cpp:5: [wall-clock]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("13 violations"), std::string::npos) << out;
  EXPECT_NE(out.find("9 suppressions"), std::string::npos) << out;

  // Clean tree: exit 0, nothing to report.
  const TreeReport clean = bbrnash::lint::scan_tree(
      std::string{BBRNASH_LINT_FIXTURES} + "/clean_tree", {"src"});
  EXPECT_EQ(clean.files_scanned, 2);
  std::string clean_out;
  EXPECT_EQ(bbrnash::lint::render_report(clean, clean_out, true), 0);
  EXPECT_NE(clean_out.find("0 violations"), std::string::npos) << clean_out;
}

TEST(LintBinary, ExitCodeContract) {
  // 1: the fixture corpus has violations.
  EXPECT_EQ(run_lint("--root " + std::string{BBRNASH_LINT_FIXTURES}), 1);
  // 0: the clean mini-tree passes.
  EXPECT_EQ(
      run_lint("--root " + std::string{BBRNASH_LINT_FIXTURES} + "/clean_tree"),
      0);
  // 2: usage error on an unknown flag.
  EXPECT_EQ(run_lint("--no-such-flag"), 2);
}

}  // namespace
