// Fixture: a writer that uses the registered constant (legal) and then
// spells a raw schema string (schema-literal violation).
#include <string>

#include "util/schemas.hpp"

namespace fx {

std::string good_record() {
  return std::string{kSchemaGood};
}

std::string raw_record() {
  return "bbrnash-fx-raw-v2";
}

}  // namespace fx
