// Fixture registry: one good entry (used by fx_writer.cpp), one
// duplicate registration of the same schema string, one entry nothing
// uses — the latter two must be schema-registry violations.
#pragma once

#include <string_view>

namespace fx {

inline constexpr std::string_view kSchemaGood = "bbrnash-fx-good-v1";

inline constexpr std::string_view kSchemaDup = "bbrnash-fx-good-v1";

inline constexpr std::string_view kSchemaUnused = "bbrnash-fx-unused-v3";

}  // namespace fx
