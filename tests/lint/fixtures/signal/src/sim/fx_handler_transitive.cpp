// Fixture: the handler itself looks clean, but a helper it calls reaches
// malloc — the single-TU fixpoint walk must flag the transitive call with
// the full chain in the detail.
#include <csignal>
#include <cstdlib>

namespace fx {

void* fx_helper() {
  return malloc(16);
}

void fx_transitive_handler(int) {
  fx_helper();
}

void fx_install_transitive() {
  // bbrnash-lint: allow(process-control) -- fixture: registration under test.
  std::signal(SIGTERM, fx_transitive_handler);
}

}  // namespace fx
