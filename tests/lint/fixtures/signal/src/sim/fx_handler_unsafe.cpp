// Fixture: a signal handler that calls printf directly — stdio is not
// async-signal-safe, so the call inside the handler body must be a
// signal-unsafe-call violation.
#include <csignal>
#include <cstdio>

namespace fx {

void fx_unsafe_handler(int) {
  printf("stop\n");
}

void fx_install_unsafe() {
  // bbrnash-lint: allow(process-control) -- fixture: registration under test.
  std::signal(SIGINT, fx_unsafe_handler);
}

}  // namespace fx
