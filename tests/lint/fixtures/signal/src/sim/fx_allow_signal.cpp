// Fixture: an unsafe call inside a handler masked by a justified allow
// annotation — the signal-safety pass rides the suppression machinery.
#include <csignal>
#include <cstdio>

namespace fx {

void fx_annotated_handler(int) {
  // bbrnash-lint: allow(signal-unsafe-call) -- fixture: justified unsafe call.
  snprintf(nullptr, 0, "x");
}

void fx_install_annotated() {
  // bbrnash-lint: allow(process-control) -- fixture: registration under test.
  std::signal(SIGHUP, fx_annotated_handler);
}

}  // namespace fx
