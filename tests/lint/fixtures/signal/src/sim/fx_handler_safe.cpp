// Fixture: the sanctioned handler shape — set a volatile flag, emit via
// write(2) (on the async-signal-safe allowlist), return. Must scan clean.
#include <csignal>
#include <unistd.h>

namespace fx {

volatile std::sig_atomic_t g_fx_stop = 0;

void fx_safe_handler(int) {
  g_fx_stop = 1;
  write(2, "stop\n", 5);
}

void fx_install_safe() {
  struct sigaction sa {};
  sa.sa_handler = fx_safe_handler;
  // bbrnash-lint: allow(process-control) -- fixture: registration under test.
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace fx
