// Fixture: model -> sim is a sibling back-edge (both rank 1), but the
// annotation below masks it — semantic passes ride the same suppression
// machinery as the per-file rules.
#pragma once

// bbrnash-lint: allow(include-layering) -- fixture: justified sibling include.
#include "sim/fx_cycle_a.hpp"

namespace fx {
inline int allow_value() { return cycle_a_value(); }
}  // namespace fx
