// Fixture: layering back-edge — net (rank 2) reaching up into exp
// (rank 5) must be an include-layering violation.
#pragma once

#include "exp/fx_top.hpp"

namespace fx {
inline int backedge_value() { return top_value(); }
}  // namespace fx
