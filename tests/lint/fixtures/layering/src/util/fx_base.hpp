// Fixture: bottom-layer header; legal target for every other layer.
#pragma once

namespace fx {
inline int base_value() { return 1; }
}  // namespace fx
