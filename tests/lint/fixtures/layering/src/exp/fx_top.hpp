// Fixture: top-of-src layer; including downward is legal.
#pragma once

#include "util/fx_base.hpp"

namespace fx {
inline int top_value() { return base_value() + 1; }
}  // namespace fx
