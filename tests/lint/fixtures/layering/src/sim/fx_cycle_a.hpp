// Fixture: half of a same-layer include cycle (a -> b -> a).
#pragma once

#include "sim/fx_cycle_b.hpp"

namespace fx {
inline int cycle_a_value() { return 1; }
}  // namespace fx
