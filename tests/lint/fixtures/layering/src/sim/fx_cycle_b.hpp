// Fixture: the closing edge of the include cycle; the include-cycle
// finding is attributed to the directive below.
#pragma once

#include "sim/fx_cycle_a.hpp"

namespace fx {
inline int cycle_b_value() { return 2; }
}  // namespace fx
