// Fixture: this path is the allowlisted strict-parser home, so raw
// numeric parsing here must NOT be flagged.
#include <cstdlib>

double fx_allowlisted_parse(const char* s) {
  return strtod(s, nullptr);
}
