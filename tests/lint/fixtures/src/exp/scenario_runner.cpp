// Fixture: this path is allowlisted for wall-clock reads (watchdog timing),
// so steady_clock here must NOT be flagged.
#include <chrono>

void fx_allowlisted_clock() {
  auto deadline = std::chrono::steady_clock::now();
  (void)deadline;
}
