// Fixture: raw numeric parse outside the strict-parser home.
#include <cstdlib>

int fx_raw_parse(const char* s) {
  int v = atoi(s);
  return v;
}
