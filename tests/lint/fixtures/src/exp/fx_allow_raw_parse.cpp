// Fixture: annotated raw parse outside cli_flags — suppressed.
#include <cstdlib>

double fx_allow_raw_parse(const char* s) {
  // bbrnash-lint: allow(raw-parse) -- fixture for a vetted differential oracle
  return strtod(s, nullptr);
}
