// Fixture: annotated virtual under src/cc/ — suppressed, listed, not a
// violation.
class FxAllowCcVirtual {
 public:
  // bbrnash-lint: allow(cc-virtual) -- fixture exercises the suppression path
  virtual void on_ack() = 0;
};
