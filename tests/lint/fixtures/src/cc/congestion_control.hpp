#pragma once
// Fixture named after the real interface header: cc-virtual's path allowlist
// exempts src/cc/congestion_control.hpp — virtual dispatch lives here by
// design (the thin adapter seam behind CcVariant), so none of these fire.
class FxCongestionControl {
 public:
  virtual ~FxCongestionControl() = default;
  virtual void on_ack() = 0;
};
