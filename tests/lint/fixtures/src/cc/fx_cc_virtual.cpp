// Fixture: virtual member under src/cc/ outside the sanctioned interface.
class FxCcVirtual {
 public:
  virtual void on_ack() = 0;
};
