// Fixture: float arithmetic and bare floating-point comparison in model code.
double fx_float(double gain) {
  float truncated = 0.5f;
  if (gain == 1.25) return 2.0;
  return static_cast<double>(truncated);
}
