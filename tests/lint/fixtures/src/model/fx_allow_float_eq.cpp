// Fixture: annotated exact-table floating comparison in model code.
double fx_allow_float_eq(double gain) {
  // bbrnash-lint: allow(float-equality) -- exact-match dispatch on table value
  if (gain == 0.75) return 1.0;
  return gain;
}
