// Fixture: an allow annotation that masks nothing must itself be flagged.
// bbrnash-lint: allow(const-cast) -- stale justification, nothing here casts
int fx_unused_suppression(int x) {
  return x + 1;
}
