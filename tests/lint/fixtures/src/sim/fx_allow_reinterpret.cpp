// Fixture: annotated pooled-storage reinterpret_cast with a two-line
// justification comment — suppression must cover the next code line and the
// continuation line must fold into the recorded reason.
#include <cstddef>

int fx_allow_reinterpret(std::byte* storage) {
  // bbrnash-lint: allow(reinterpret-cast) -- fixture for pooled storage;
  // the continuation of this justification spans a second comment line
  return *reinterpret_cast<int*>(storage);
}
