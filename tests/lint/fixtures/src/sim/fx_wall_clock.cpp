// Fixture: wall-clock read outside the allowlisted sites.
#include <chrono>

void fx_wall_clock() {
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
}
