// Fixture: unannotated hash container, plus iteration over it.
#include <unordered_map>

int fx_unordered() {
  std::unordered_map<int, int> table;
  int sum = 0;
  for (const auto& kv : table) sum += kv.second;
  return sum;
}
