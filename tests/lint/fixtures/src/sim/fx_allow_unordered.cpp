// Fixture: annotated lookup-only hash set — suppressed, not a violation.
#include <unordered_set>

bool fx_allow_unordered(int key) {
  // bbrnash-lint: allow(unordered-container) -- lookup-only, never iterated
  static std::unordered_set<int> seen;
  return seen.count(key) != 0;
}
