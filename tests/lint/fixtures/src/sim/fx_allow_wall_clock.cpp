// Fixture: annotated wall-clock read — suppressed, listed, not a violation.
#include <chrono>

void fx_allow_wall_clock() {
  // bbrnash-lint: allow(wall-clock) -- fixture exercises the suppression path
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
}
