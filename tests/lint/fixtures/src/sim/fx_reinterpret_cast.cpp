// Fixture: reinterpret_cast without a pooled-storage annotation.
void fx_reinterpret(void* p) {
  auto* q = reinterpret_cast<int*>(p);
  *q = 0;
}
