// Fixture: const_cast is banned outright.
void fx_const_cast(const int* p) {
  int* q = const_cast<int*>(p);
  *q = 0;
}
