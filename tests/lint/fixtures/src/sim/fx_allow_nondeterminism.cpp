// Fixture: annotated getenv — suppressed, listed, not a violation.
#include <cstdlib>

const char* fx_allow_nondeterminism() {
  // bbrnash-lint: allow(nondeterminism) -- fixture exercises the suppression path
  return getenv("FX_FIXTURE");
}
