// Fixture: process control outside the fabric's annotated shims.
#include <unistd.h>

int fx_process() {
  return fork();
}
