// Fixture: annotated process-control call — suppressed, listed, clean.
#include <unistd.h>

int fx_allow_process() {
  // bbrnash-lint: allow(process-control) -- fixture exercises the suppression
  return fork();
}
