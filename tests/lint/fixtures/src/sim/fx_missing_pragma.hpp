// Fixture: header without an include guard pragma.
struct FxMissingPragma {
  int value = 0;
};
