// Fixture: ambient nondeterminism sources in simulation code.
#include <cstdlib>

int fx_nondeterminism() {
  int noise = rand();
  return noise;
}
