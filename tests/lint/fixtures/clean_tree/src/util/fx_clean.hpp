#pragma once

// Fixture: a fully clean mini-tree; the scanner must exit 0 on it.
struct FxClean {
  double value = 0.0;
};
