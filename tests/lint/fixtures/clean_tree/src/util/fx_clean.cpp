// Fixture: clean translation unit — no findings, no suppressions.
#include <map>

int fx_clean() {
  std::map<int, int> ordered;
  ordered[1] = 2;
  int total = 0;
  for (const auto& kv : ordered) total += kv.second;
  return total;
}
