#include "net/delay_line.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace bbrnash {
namespace {

TEST(DelayLine, DeliversAfterExactDelay) {
  Simulator sim;
  DelayLine<int> line{sim, from_ms(25)};
  TimeNs delivered_at = kTimeNone;
  line.set_sink([&](const int&) { delivered_at = sim.now(); });
  sim.schedule_at(from_ms(10), [&] { line.send(7); });
  sim.run();
  EXPECT_EQ(delivered_at, from_ms(35));
}

TEST(DelayLine, PreservesOrder) {
  Simulator sim;
  DelayLine<int> line{sim, from_ms(5)};
  std::vector<int> got;
  line.set_sink([&](const int& v) { got.push_back(v); });
  line.send(1);
  line.send(2);
  sim.schedule_at(from_ms(1), [&] { line.send(3); });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(DelayLine, ZeroDelayStillAsynchronous) {
  Simulator sim;
  DelayLine<int> line{sim, 0};
  bool delivered = false;
  line.set_sink([&](const int&) { delivered = true; });
  line.send(1);
  EXPECT_FALSE(delivered);  // delivery happens via the event loop
  sim.run();
  EXPECT_TRUE(delivered);
}

TEST(DelayLine, CarriesPayloadByValue) {
  Simulator sim;
  DelayLine<Packet> line{sim, from_ms(1)};
  Packet got;
  line.set_sink([&](const Packet& p) { got = p; });
  Packet p;
  p.flow = 3;
  p.seq = 42;
  line.send(p);
  p.seq = 999;  // mutating the original must not affect the in-flight copy
  sim.run();
  EXPECT_EQ(got.flow, 3u);
  EXPECT_EQ(got.seq, 42u);
}

TEST(DelayLine, NoSinkIsSafe) {
  Simulator sim;
  DelayLine<int> line{sim, from_ms(1)};
  line.send(5);
  EXPECT_NO_THROW(sim.run());
}

TEST(DelayLine, ManyItemsInFlight) {
  Simulator sim;
  DelayLine<int> line{sim, from_ms(10)};
  int count = 0;
  line.set_sink([&](const int&) { ++count; });
  for (int i = 0; i < 1000; ++i) line.send(i);
  sim.run();
  EXPECT_EQ(count, 1000);
  EXPECT_EQ(sim.now(), from_ms(10));
}

}  // namespace
}  // namespace bbrnash
