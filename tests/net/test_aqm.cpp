#include "net/aqm.hpp"

#include <gtest/gtest.h>

#include "net/bottleneck_link.hpp"

namespace bbrnash {
namespace {

TEST(RedPolicy, NeverDropsBelowMinThreshold) {
  RedPolicy red;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(red.drop_on_enqueue(0, 1000, 100000, 1500));
  }
}

TEST(RedPolicy, AlwaysDropsAboveMaxThresholdOnceAverageCatchesUp) {
  RedConfig cfg;
  cfg.ewma_weight = 1.0;  // instant average for the test
  RedPolicy red{cfg};
  EXPECT_TRUE(red.drop_on_enqueue(0, 70000, 100000, 1500));
}

TEST(RedPolicy, ProbabilisticInGentleRegion) {
  RedConfig cfg;
  cfg.ewma_weight = 1.0;
  cfg.max_p = 0.5;
  RedPolicy red{cfg};
  int drops = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    drops += red.drop_on_enqueue(0, 40000, 100000, 1500) ? 1 : 0;
  }
  EXPECT_GT(drops, n / 20);  // clearly above zero
  EXPECT_LT(drops, n);       // clearly below certainty
}

TEST(RedPolicy, EwmaSmoothsBursts) {
  RedPolicy red;  // default weight 0.002
  // One instant of a full queue must not flip the average.
  red.drop_on_enqueue(0, 100000, 100000, 1500);
  EXPECT_LT(red.avg_queue_bytes(), 1000.0);
}

TEST(CoDelPolicy, NoDropsWhileSojournBelowTarget) {
  CoDelPolicy codel;
  for (TimeNs t = 0; t < from_sec(2); t += from_ms(10)) {
    EXPECT_FALSE(codel.drop_on_dequeue(t, from_ms(2)));
  }
  EXPECT_EQ(codel.drops(), 0u);
}

TEST(CoDelPolicy, DropsAfterSustainedHighSojourn) {
  CoDelPolicy codel;
  bool dropped = false;
  for (TimeNs t = 0; t < from_ms(300); t += from_ms(5)) {
    dropped = codel.drop_on_dequeue(t, from_ms(20)) || dropped;
  }
  EXPECT_TRUE(dropped);  // target 5 ms exceeded for > 100 ms interval
}

TEST(CoDelPolicy, StopsDroppingWhenQueueDrains) {
  CoDelPolicy codel;
  for (TimeNs t = 0; t < from_ms(300); t += from_ms(5)) {
    codel.drop_on_dequeue(t, from_ms(20));
  }
  const auto drops_before = codel.drops();
  for (TimeNs t = from_ms(300); t < from_ms(600); t += from_ms(5)) {
    EXPECT_FALSE(codel.drop_on_dequeue(t, from_ms(1)));
  }
  EXPECT_EQ(codel.drops(), drops_before);
}

TEST(CoDelPolicy, DropRateAcceleratesWhileAbove) {
  CoDelPolicy codel;
  std::vector<TimeNs> drop_times;
  for (TimeNs t = 0; t < from_sec(3); t += from_ms(2)) {
    if (codel.drop_on_dequeue(t, from_ms(30))) drop_times.push_back(t);
  }
  ASSERT_GE(drop_times.size(), 4u);
  // Successive gaps shrink (the 1/sqrt(count) control law).
  const TimeNs gap1 = drop_times[1] - drop_times[0];
  const TimeNs gap_late = drop_times.back() - drop_times[drop_times.size() - 2];
  EXPECT_LT(gap_late, gap1);
}

TEST(BottleneckAqm, RedPolicyDropsAreAccounted) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 150000, 1};
  RedConfig cfg;
  cfg.ewma_weight = 1.0;
  cfg.min_thresh_frac = 0.0;
  cfg.max_thresh_frac = 0.0001;  // force-drop region almost immediately
  link.set_aqm(std::make_unique<RedPolicy>(cfg));
  Packet p;
  p.flow = 0;
  p.wire_bytes = 1500;
  EXPECT_TRUE(link.send(p));   // queue empty, avg 0 -> min region... first
  link.send(p);
  link.send(p);
  EXPECT_GT(link.queue().total_drops(), 0u);
}

TEST(BottleneckAqm, CoDelHeadDropStillServesQueue) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 1000000, 1};
  CoDelConfig cfg;
  cfg.target = from_us(100);
  cfg.interval = from_ms(1);
  link.set_aqm(std::make_unique<CoDelPolicy>(cfg));
  int delivered = 0;
  link.set_sink([&](const Packet&) { ++delivered; });
  for (int i = 0; i < 200; ++i) {
    Packet p;
    p.flow = 0;
    p.seq = static_cast<SeqNo>(i);
    p.wire_bytes = 1500;
    link.send(p);
  }
  sim.run();
  EXPECT_GT(delivered, 0);
  EXPECT_GT(link.queue().total_drops(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered) + link.queue().total_drops(),
            200u);
}

TEST(BottleneckAqm, NullPolicyIsPureDropTail) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 3000, 1};
  Packet p;
  p.flow = 0;
  p.wire_bytes = 1500;
  EXPECT_TRUE(link.send(p));
  EXPECT_TRUE(link.send(p));
  EXPECT_FALSE(link.send(p));
  EXPECT_EQ(link.queue().total_drops(), 1u);
}

}  // namespace
}  // namespace bbrnash
