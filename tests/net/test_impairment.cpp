#include "net/impairment.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

// Drives `n` integers through a stage and returns what came out.
struct StageHarness {
  Simulator sim;
  ImpairmentStage<int> stage;
  std::vector<int> received;
  std::vector<TimeNs> arrival_times;

  StageHarness(const ImpairmentConfig& cfg, std::uint64_t seed)
      : stage(sim, cfg, seed) {
    stage.set_sink([this](const int& v) {
      received.push_back(v);
      arrival_times.push_back(sim.now());
    });
  }

  void drive(int n, TimeNs spacing = from_ms(1)) {
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<TimeNs>(i) * spacing,
                      [this, i] { stage.send(i); });
    }
    sim.run();
  }
};

TEST(ImpairmentConfig, PristineByDefault) {
  const ImpairmentConfig cfg;
  EXPECT_FALSE(cfg.any());
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_DOUBLE_EQ(cfg.gilbert.expected_loss_rate(), 0.0);
}

TEST(ImpairmentConfig, ValidateRejectsBadKnobs) {
  ImpairmentConfig cfg;
  cfg.loss_rate = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.reorder_rate = 0.1;  // no reorder_delay
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.gilbert.p_good_to_bad = 0.1;
  cfg.gilbert.p_bad_to_good = 0.0;  // absorbing bad state
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.spikes.period = from_ms(10);
  cfg.spikes.width = from_ms(20);  // width > period
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ImpairmentStage, PristineConfigPassesEverythingSynchronously) {
  StageHarness h{{}, 42};
  h.drive(100);
  EXPECT_EQ(h.received.size(), 100u);
  EXPECT_EQ(h.stage.counters().offered, 100u);
  EXPECT_EQ(h.stage.counters().dropped, 0u);
  // Zero extra delay forwards at the send time itself.
  for (std::size_t i = 0; i < h.arrival_times.size(); ++i) {
    EXPECT_EQ(h.arrival_times[i], static_cast<TimeNs>(i) * from_ms(1));
  }
}

TEST(ImpairmentStage, IidLossRateWithinTolerance) {
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.1;
  StageHarness h{cfg, 7};
  const int n = 20000;
  h.drive(n);
  const double observed =
      static_cast<double>(h.stage.counters().dropped) / n;
  // 3-sigma band for a Bernoulli(0.1) sample of 20k.
  const double sigma = std::sqrt(0.1 * 0.9 / n);
  EXPECT_NEAR(observed, 0.1, 3.0 * sigma);
  EXPECT_EQ(h.received.size(), n - h.stage.counters().dropped);
}

TEST(ImpairmentStage, GilbertElliottLossMatchesStationaryRate) {
  ImpairmentConfig cfg;
  cfg.gilbert.p_good_to_bad = 0.02;
  cfg.gilbert.p_bad_to_good = 0.18;
  cfg.gilbert.loss_good = 0.0;
  cfg.gilbert.loss_bad = 0.5;
  // pi_bad = 0.02/0.20 = 0.1; expected loss = 0.1 * 0.5 = 0.05.
  ASSERT_DOUBLE_EQ(cfg.gilbert.expected_loss_rate(), 0.05);

  StageHarness h{cfg, 11};
  const int n = 60000;
  h.drive(n);
  const double observed =
      static_cast<double>(h.stage.counters().dropped) / n;
  // Burst losses are correlated, so the sample variance is inflated by
  // roughly the mean burst length; use a generous 5x Bernoulli sigma.
  const double sigma = std::sqrt(0.05 * 0.95 / n);
  EXPECT_NEAR(observed, 0.05, 5.0 * sigma);
}

TEST(ImpairmentStage, GilbertElliottLossIsBurstier) {
  // Same long-run loss rate, i.i.d. vs bursty: the burst model must show
  // longer runs of consecutive drops.
  const auto max_drop_run = [](const ImpairmentConfig& cfg) {
    ImpairmentDice dice{cfg, 99};
    int run = 0;
    int max_run = 0;
    for (int i = 0; i < 50000; ++i) {
      if (dice.roll_loss()) {
        max_run = std::max(max_run, ++run);
      } else {
        run = 0;
      }
    }
    return max_run;
  };

  ImpairmentConfig iid;
  iid.loss_rate = 0.05;
  ImpairmentConfig burst;
  burst.gilbert.p_good_to_bad = 0.005;
  burst.gilbert.p_bad_to_good = 0.095;
  burst.gilbert.loss_bad = 1.0;  // pi_bad = 0.05 -> same long-run rate
  EXPECT_GT(max_drop_run(burst), max_drop_run(iid));
}

TEST(ImpairmentStage, DeterministicUnderFixedSeed) {
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.05;
  cfg.jitter = from_ms(2);
  cfg.duplicate_rate = 0.02;
  cfg.reorder_rate = 0.03;
  cfg.reorder_delay = from_ms(5);

  StageHarness a{cfg, 123};
  StageHarness b{cfg, 123};
  a.drive(5000);
  b.drive(5000);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.arrival_times, b.arrival_times);
  EXPECT_EQ(a.stage.counters().dropped, b.stage.counters().dropped);
  EXPECT_EQ(a.stage.counters().duplicated, b.stage.counters().duplicated);
  EXPECT_EQ(a.stage.counters().reordered, b.stage.counters().reordered);

  StageHarness c{cfg, 124};
  c.drive(5000);
  EXPECT_NE(a.arrival_times, c.arrival_times);
}

TEST(ImpairmentStage, DuplicationProducesExtraCopies) {
  ImpairmentConfig cfg;
  cfg.duplicate_rate = 0.25;
  StageHarness h{cfg, 5};
  h.drive(4000);
  EXPECT_GT(h.stage.counters().duplicated, 0u);
  EXPECT_EQ(h.received.size(), 4000u + h.stage.counters().duplicated);
}

TEST(ImpairmentStage, ReorderingActuallyReorders) {
  ImpairmentConfig cfg;
  cfg.reorder_rate = 0.1;
  cfg.reorder_delay = from_ms(10);  // >> the 1 ms send spacing
  StageHarness h{cfg, 3};
  h.drive(2000);
  ASSERT_GT(h.stage.counters().reordered, 0u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < h.received.size(); ++i) {
    if (h.received[i] < h.received[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(ImpairmentStage, DelaySpikesHitInsideTheWindow) {
  ImpairmentConfig cfg;
  cfg.spikes.period = from_ms(100);
  cfg.spikes.width = from_ms(10);
  cfg.spikes.magnitude = from_ms(50);
  StageHarness h{cfg, 1};
  // One packet inside the spike window, one outside.
  h.sim.schedule_at(from_ms(5), [&] { h.stage.send(0); });
  h.sim.schedule_at(from_ms(50), [&] { h.stage.send(1); });
  h.sim.run();
  ASSERT_EQ(h.received.size(), 2u);
  // Packet 1 (outside the spike) forwards synchronously at 50 ms and so
  // arrives before packet 0, whose spike delay lands it at 5 + 50 ms.
  EXPECT_EQ(h.received, (std::vector<int>{1, 0}));
  EXPECT_EQ(h.arrival_times[0], from_ms(50));  // untouched
  EXPECT_EQ(h.arrival_times[1], from_ms(55));  // 5 + 50 spike
}

}  // namespace
}  // namespace bbrnash
