#include "net/bottleneck_link.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

Packet make_packet(FlowId flow, SeqNo seq, Bytes wire = 1500) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.wire_bytes = wire;
  p.payload_bytes = wire - kHeaderBytes;
  return p;
}

TEST(BottleneckLink, ServesAtLinkRate) {
  Simulator sim;
  // 1.5 MB/s: a 1500-byte packet serializes in exactly 1 ms.
  BottleneckLink link{sim, 1.5e6, 100000, 1};
  std::vector<TimeNs> exits;
  link.set_sink([&](const Packet&) { exits.push_back(sim.now()); });
  link.send(make_packet(0, 1));
  link.send(make_packet(0, 2));
  link.send(make_packet(0, 3));
  sim.run();
  ASSERT_EQ(exits.size(), 3u);
  EXPECT_EQ(exits[0], from_ms(1));
  EXPECT_EQ(exits[1], from_ms(2));
  EXPECT_EQ(exits[2], from_ms(3));
}

TEST(BottleneckLink, IdleThenBusyRestartsService) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 100000, 1};
  std::vector<TimeNs> exits;
  link.set_sink([&](const Packet&) { exits.push_back(sim.now()); });
  link.send(make_packet(0, 1));
  sim.run();
  // Second packet arrives after an idle gap.
  sim.schedule_at(from_ms(10), [&] { link.send(make_packet(0, 2)); });
  sim.run();
  ASSERT_EQ(exits.size(), 2u);
  EXPECT_EQ(exits[0], from_ms(1));
  EXPECT_EQ(exits[1], from_ms(11));
}

TEST(BottleneckLink, PreservesFifoAcrossFlows) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 100000, 2};
  std::vector<std::pair<FlowId, SeqNo>> order;
  link.set_sink(
      [&](const Packet& p) { order.emplace_back(p.flow, p.seq); });
  link.send(make_packet(0, 1));
  link.send(make_packet(1, 1));
  link.send(make_packet(0, 2));
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], (std::pair<FlowId, SeqNo>{0, 1}));
  EXPECT_EQ(order[1], (std::pair<FlowId, SeqNo>{1, 1}));
  EXPECT_EQ(order[2], (std::pair<FlowId, SeqNo>{0, 2}));
}

TEST(BottleneckLink, DropHookFiresOnOverflow) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 1500, 1};  // room for one packet
  int drops = 0;
  link.set_drop_hook([&](const Packet&) { ++drops; });
  EXPECT_TRUE(link.send(make_packet(0, 1)));
  EXPECT_FALSE(link.send(make_packet(0, 2)));
  EXPECT_EQ(drops, 1);
}

TEST(BottleneckLink, QueueIncludesInServicePacket) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 3000, 1};
  link.send(make_packet(0, 1));
  link.send(make_packet(0, 2));
  // Both fit (head is still accounted while serializing).
  EXPECT_EQ(link.queue().occupied_bytes(), 3000);
  EXPECT_FALSE(link.send(make_packet(0, 3)));
}

TEST(BottleneckLink, CountsBytesServedAndBusyTime) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 100000, 1};
  link.set_sink([](const Packet&) {});
  link.send(make_packet(0, 1));
  link.send(make_packet(0, 2));
  sim.run();
  EXPECT_EQ(link.bytes_served(), 3000);
  EXPECT_EQ(link.busy_time(), from_ms(2));
}

TEST(BottleneckLink, UtilizationUnderHalfLoad) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 100000, 1};
  link.set_sink([](const Packet&) {});
  // One packet every 2 ms against a 1 ms service time: 50% utilization.
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(from_ms(2 * i), [&link, i] {
      link.send(make_packet(0, static_cast<SeqNo>(i)));
    });
  }
  sim.run();
  EXPECT_EQ(link.busy_time(), from_ms(10));
  EXPECT_EQ(sim.now(), from_ms(19));
}

TEST(BottleneckLink, VariablePacketSizes) {
  Simulator sim;
  BottleneckLink link{sim, 1.5e6, 100000, 1};
  std::vector<TimeNs> exits;
  link.set_sink([&](const Packet&) { exits.push_back(sim.now()); });
  link.send(make_packet(0, 1, 750));   // 0.5 ms
  link.send(make_packet(0, 2, 3000));  // 2 ms
  sim.run();
  ASSERT_EQ(exits.size(), 2u);
  EXPECT_EQ(exits[0], from_us(500));
  EXPECT_EQ(exits[1], from_us(2500));
}

}  // namespace
}  // namespace bbrnash
