#include "net/drop_tail_queue.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

Packet make_packet(FlowId flow, SeqNo seq, Bytes wire = 1500) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.payload_bytes = wire - kHeaderBytes;
  p.wire_bytes = wire;
  return p;
}

TEST(DropTailQueue, RejectsNonPositiveCapacity) {
  EXPECT_THROW(DropTailQueue(0, 1), std::invalid_argument);
  EXPECT_THROW(DropTailQueue(-5, 1), std::invalid_argument);
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q{10000, 1};
  q.enqueue(make_packet(0, 1), 0);
  q.enqueue(make_packet(0, 2), 1);
  q.enqueue(make_packet(0, 3), 2);
  EXPECT_EQ(q.dequeue(3).seq, 1u);
  EXPECT_EQ(q.dequeue(4).seq, 2u);
  EXPECT_EQ(q.dequeue(5).seq, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, ByteAccounting) {
  DropTailQueue q{10000, 2};
  q.enqueue(make_packet(0, 1, 1500), 0);
  q.enqueue(make_packet(1, 1, 500), 0);
  EXPECT_EQ(q.occupied_bytes(), 2000);
  EXPECT_EQ(q.flow_occupancy(0), 1500);
  EXPECT_EQ(q.flow_occupancy(1), 500);
  q.dequeue(1);
  EXPECT_EQ(q.occupied_bytes(), 500);
  EXPECT_EQ(q.flow_occupancy(0), 0);
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q{3000, 1};
  EXPECT_TRUE(q.enqueue(make_packet(0, 1), 0));
  EXPECT_TRUE(q.enqueue(make_packet(0, 2), 0));
  EXPECT_FALSE(q.enqueue(make_packet(0, 3), 0));  // 4500 > 3000
  EXPECT_EQ(q.total_drops(), 1u);
  EXPECT_EQ(q.drops(0), 1u);
  EXPECT_EQ(q.packet_count(), 2u);
}

TEST(DropTailQueue, ExactFitAccepted) {
  DropTailQueue q{3000, 1};
  EXPECT_TRUE(q.enqueue(make_packet(0, 1), 0));
  EXPECT_TRUE(q.enqueue(make_packet(0, 2), 0));  // exactly 3000
  EXPECT_EQ(q.occupied_bytes(), 3000);
}

TEST(DropTailQueue, StampsEnqueueTime) {
  DropTailQueue q{10000, 1};
  q.enqueue(make_packet(0, 1), from_ms(7));
  EXPECT_EQ(q.front().enqueued_at, from_ms(7));
}

TEST(DropTailQueue, RejectsUnknownFlow) {
  DropTailQueue q{10000, 2};
  EXPECT_THROW(q.enqueue(make_packet(5, 1), 0), std::out_of_range);
}

TEST(DropTailQueue, DequeueEmptyThrows) {
  DropTailQueue q{10000, 1};
  EXPECT_THROW(q.dequeue(0), std::logic_error);
}

TEST(DropTailQueue, TimeWeightedTotalAverage) {
  DropTailQueue q{100000, 1};
  // 1500 bytes from t=0s to t=1s, 3000 from 1s to 2s, drain at 2s.
  q.enqueue(make_packet(0, 1), from_sec(0));
  q.enqueue(make_packet(0, 2), from_sec(1));
  q.dequeue(from_sec(2));
  q.dequeue(from_sec(2));
  q.finalize(from_sec(2));
  EXPECT_NEAR(q.avg_occupied_bytes(), (1500.0 + 3000.0) / 2.0, 1.0);
}

TEST(DropTailQueue, PerFlowAverageIsolated) {
  DropTailQueue q{100000, 2};
  q.enqueue(make_packet(0, 1), from_sec(0));  // flow 0: 1500 for 2s
  q.enqueue(make_packet(1, 1), from_sec(1));  // flow 1: 1500 for 1s
  q.dequeue(from_sec(2));
  q.dequeue(from_sec(2));
  q.finalize(from_sec(2));
  EXPECT_NEAR(q.avg_flow_occupancy(0), 1500.0, 1.0);
  EXPECT_NEAR(q.avg_flow_occupancy(1), 750.0, 1.0);
}

TEST(DropTailQueue, MinMaxPerFlowTracking) {
  DropTailQueue q{100000, 1};
  q.begin_measurement(0);
  q.enqueue(make_packet(0, 1), 1);
  q.enqueue(make_packet(0, 2), 2);
  q.dequeue(3);
  q.dequeue(4);
  EXPECT_EQ(q.min_flow_occupancy(0), 0);
  EXPECT_EQ(q.max_flow_occupancy(0), 3000);
}

TEST(DropTailQueue, BeginMeasurementResetsExtremes) {
  DropTailQueue q{100000, 1};
  q.enqueue(make_packet(0, 1), 0);
  q.enqueue(make_packet(0, 2), 1);
  q.begin_measurement(2);
  // After reset, extremes re-seed from current state (3000 bytes).
  EXPECT_EQ(q.min_flow_occupancy(0), 3000);
  EXPECT_EQ(q.max_flow_occupancy(0), 3000);
  q.dequeue(3);
  EXPECT_EQ(q.min_flow_occupancy(0), 1500);
}

TEST(DropTailQueue, GroupTracking) {
  DropTailQueue q{100000, 3};
  q.track_group({0, 2});
  q.enqueue(make_packet(0, 1), 0);
  q.enqueue(make_packet(1, 1), 0);  // not in group
  q.enqueue(make_packet(2, 1), 0);
  EXPECT_EQ(q.group_max_occupancy(), 3000);
  // The group minimum starts at the occupancy when track_group was called
  // (zero here); begin_measurement() re-seeds it for measurement windows.
  EXPECT_EQ(q.group_min_occupancy(), 0);
  q.begin_measurement(1);
  q.dequeue(1);  // flow 0 leaves
  q.dequeue(1);  // flow 1 leaves (no group change)
  EXPECT_EQ(q.group_min_occupancy(), 1500);
}

TEST(DropTailQueue, GroupAverageMatchesHandComputation) {
  DropTailQueue q{100000, 2};
  q.track_group({1});
  q.enqueue(make_packet(1, 1), from_sec(0));
  q.dequeue(from_sec(4));
  q.finalize(from_sec(4));
  EXPECT_NEAR(q.group_avg_occupancy(), 1500.0, 1.0);
}

TEST(DropTailQueue, DropsDoNotPerturbOccupancy) {
  DropTailQueue q{1500, 1};
  q.enqueue(make_packet(0, 1), 0);
  const Bytes before = q.occupied_bytes();
  q.enqueue(make_packet(0, 2), 1);  // dropped
  EXPECT_EQ(q.occupied_bytes(), before);
  EXPECT_EQ(q.total_drops(), 1u);
}

}  // namespace
}  // namespace bbrnash
