// The conservation-audit ledger in isolation: a consistent sample must
// pass every invariant, and each class of corruption — lost packet,
// phantom ACK, queue over capacity, sRTT under the propagation floor,
// non-monotone counters, NaN control state — must trip exactly the right
// check with a message naming it. The glue that fills samples from live
// components is covered by exp/test_audit_replay.cpp and exp/test_chaos.cpp.
#include "sim/audit.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace bbrnash {
namespace {

AuditConfig enabled_config() {
  AuditConfig cfg;
  cfg.enabled = true;
  return cfg;
}

/// Fills the audit's sample buffer with a self-consistent single-flow
/// ledger at time `t`: 10 injected, 7 delivered (and ACKed back), 2
/// queued, 1 on the forward delay line, 2 ACKs still in flight.
void fill_consistent(ConservationAudit& audit, TimeNs t) {
  AuditSample& s = audit.sample_buffer();
  s.t = t;
  s.queue_bytes = 3000;
  s.queue_flow_bytes_sum = 3000;
  s.buffer_bytes = 150000;
  s.bytes_served = 100000;
  FlowAuditSample& f = s.flows.at(0);
  f = FlowAuditSample{};
  f.injected = audit.injected(0);
  f.access_pending = audit.access_pending(0);
  f.delivered = 7;
  f.queue_packets = 2;
  f.fwd_pending = 1;
  f.acks_emitted = 7;
  f.acks_received = 5;
  f.rev_pending = 2;
  f.cwnd = 10 * 1500;
  f.pacing_rate = 12.5e6;
  f.srtt = from_ms(44);
  f.base_rtt = from_ms(40);
  f.cum_next = 7;
  f.delivered_bytes = 7 * 1448;
}

/// An audit whose wrapper counters say 10 packets entered and left the
/// access path.
ConservationAudit make_audit() {
  ConservationAudit audit{enabled_config(), 1};
  for (int i = 0; i < 10; ++i) audit.note_injected(0);
  for (int i = 0; i < 10; ++i) audit.note_access_exit(0);
  return audit;
}

TEST(AuditConfig, ValidateRejectsBadKnobs) {
  AuditConfig cfg = enabled_config();
  cfg.sample_period = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = enabled_config();
  cfg.goodput_slack = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = enabled_config();
  cfg.fail_at = -5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(enabled_config().validate());
  // A disabled audit with a recorder is still a valid configuration.
  AuditConfig rec;
  rec.recorder_events = 256;
  EXPECT_TRUE(rec.active());
  EXPECT_NO_THROW(rec.validate());
  EXPECT_FALSE(AuditConfig{}.active());
}

TEST(ConservationAudit, ConsistentLedgerPasses) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  EXPECT_FALSE(audit.check());
  fill_consistent(audit, from_ms(200));
  EXPECT_FALSE(audit.check());
  EXPECT_FALSE(audit.violated());
  EXPECT_EQ(audit.samples_checked(), 2u);
  EXPECT_EQ(audit.first_violation(), "");
}

TEST(ConservationAudit, LostPacketTripsDataConservation) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  audit.sample_buffer().flows[0].delivered -= 1;  // one packet vanished
  audit.sample_buffer().flows[0].acks_emitted -= 1;
  audit.sample_buffer().flows[0].acks_received -= 1;
  EXPECT_TRUE(audit.check());
  EXPECT_TRUE(audit.violated());
  EXPECT_NE(audit.first_violation().find("data-path conservation"),
            std::string::npos)
      << audit.first_violation();
}

TEST(ConservationAudit, PhantomAckTripsAckConservation) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  audit.sample_buffer().flows[0].acks_received += 1;  // ACK from nowhere
  EXPECT_TRUE(audit.check());
  EXPECT_NE(audit.first_violation().find("ACK-path conservation"),
            std::string::npos)
      << audit.first_violation();
}

TEST(ConservationAudit, DuplicatesBalanceTheEquation) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  // A duplicated packet adds one to both sides: still consistent.
  audit.sample_buffer().flows[0].stage_duplicated = 1;
  audit.sample_buffer().flows[0].delivered += 1;
  audit.sample_buffer().flows[0].acks_emitted += 1;
  audit.sample_buffer().flows[0].acks_received += 1;
  EXPECT_FALSE(audit.check());
}

TEST(ConservationAudit, QueueOverCapacityTrips) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  audit.sample_buffer().queue_bytes = 200000;
  audit.sample_buffer().queue_flow_bytes_sum = 200000;
  EXPECT_TRUE(audit.check());
  EXPECT_NE(audit.first_violation().find("exceeds buffer"), std::string::npos)
      << audit.first_violation();
}

TEST(ConservationAudit, PerFlowSumMismatchTrips) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  audit.sample_buffer().queue_flow_bytes_sum += 1;
  EXPECT_TRUE(audit.check());
  EXPECT_NE(audit.first_violation().find("do not sum"), std::string::npos);
}

TEST(ConservationAudit, SrttBelowPropagationFloorTrips) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  audit.sample_buffer().flows[0].srtt = from_ms(39);  // < 40 ms base
  EXPECT_TRUE(audit.check());
  EXPECT_NE(audit.first_violation().find("propagation floor"),
            std::string::npos);
}

TEST(ConservationAudit, UnmeasuredSrttIsNotAViolation) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  audit.sample_buffer().flows[0].srtt = kTimeNone;  // nothing measured yet
  EXPECT_FALSE(audit.check());
}

TEST(ConservationAudit, NonMonotoneClockTrips) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(200));
  EXPECT_FALSE(audit.check());
  fill_consistent(audit, from_ms(100));  // clock went backwards
  EXPECT_TRUE(audit.check());
  EXPECT_NE(audit.first_violation().find("non-monotone"), std::string::npos);
}

TEST(ConservationAudit, DecreasingCumulativeCounterTrips) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  EXPECT_FALSE(audit.check());
  fill_consistent(audit, from_ms(200));
  AuditSample& s = audit.sample_buffer();
  s.flows[0].delivered = 6;  // fewer than last sample
  s.flows[0].acks_emitted = 6;
  s.flows[0].acks_received = 4;
  s.flows[0].queue_packets = 3;  // keep conservation balanced
  EXPECT_TRUE(audit.check());
  EXPECT_NE(audit.first_violation().find("counter decreased"),
            std::string::npos)
      << audit.first_violation();
}

TEST(ConservationAudit, NanPacingRateTrips) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  audit.sample_buffer().flows[0].pacing_rate =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(audit.check());
  EXPECT_NE(audit.first_violation().find("pacing"), std::string::npos);
}

TEST(ConservationAudit, NonPositiveCwndTrips) {
  ConservationAudit audit = make_audit();
  fill_consistent(audit, from_ms(100));
  audit.sample_buffer().flows[0].cwnd = 0;
  EXPECT_TRUE(audit.check());
  EXPECT_NE(audit.first_violation().find("cwnd"), std::string::npos);
}

TEST(ConservationAudit, FinalGoodputBound) {
  ConservationAudit audit = make_audit();
  const double peak = 12.5e6;  // 100 Mbps in bytes/sec
  audit.check_final_goodput(0, peak * 1.02, peak);  // inside the 5% slack
  EXPECT_FALSE(audit.violated());
  audit.check_final_goodput(0, peak * 2.0, peak);
  EXPECT_TRUE(audit.violated());
  EXPECT_NE(audit.first_violation().find("goodput"), std::string::npos);
  ConservationAudit nan_audit = make_audit();
  nan_audit.check_final_goodput(0, std::numeric_limits<double>::infinity(),
                                peak);
  EXPECT_TRUE(nan_audit.violated());
}

TEST(ConservationAudit, SelfTestFailAtFiresOnce) {
  AuditConfig cfg = enabled_config();
  cfg.fail_at = from_ms(150);
  ConservationAudit audit{cfg, 1};
  for (int i = 0; i < 10; ++i) audit.note_injected(0);
  for (int i = 0; i < 10; ++i) audit.note_access_exit(0);
  fill_consistent(audit, from_ms(100));
  EXPECT_FALSE(audit.check()) << "before fail_at";
  fill_consistent(audit, from_ms(200));
  EXPECT_TRUE(audit.check()) << "first sample at/after fail_at";
  EXPECT_NE(audit.first_violation().find("self-test"), std::string::npos);
  const std::size_t count = audit.violations().size();
  fill_consistent(audit, from_ms(300));
  EXPECT_FALSE(audit.check()) << "self-test must fire exactly once";
  EXPECT_EQ(audit.violations().size(), count);
}

TEST(ConservationAudit, ViolationListIsCapped) {
  ConservationAudit audit = make_audit();
  for (int round = 0; round < 40; ++round) {
    fill_consistent(audit, from_ms(100 * (round + 1)));
    audit.sample_buffer().flows[0].acks_received += 1;
    (void)audit.check();
  }
  EXPECT_TRUE(audit.violated());
  EXPECT_LE(audit.violations().size(), 16u);
}

}  // namespace
}  // namespace bbrnash
