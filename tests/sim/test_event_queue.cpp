#include "sim/event_queue.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeInf);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, MixedTimesAndTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] { order.push_back(1); });
  q.schedule(5, [&] { order.push_back(2); });
  q.schedule(1, [&] { order.push_back(0); });
  q.schedule(9, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue q;
  q.schedule(77, [] {});
  EXPECT_EQ(q.next_time(), 77);
  auto ev = q.pop();
  EXPECT_EQ(ev.when, 77);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_cancellable(10, [&] { ++fired; });
  q.schedule(20, [&] { fired += 100; });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 100);
}

TEST(EventQueue, CancelledHeadDoesNotBlockNextTime) {
  EventQueue q;
  const EventId id = q.schedule_cancellable(10, [] {});
  q.schedule(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(5, [] {});
  q.cancel(9999);
  EXPECT_FALSE(q.empty());
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_cancellable(1, [&] { ++fired; });
  q.pop().fn();
  q.cancel(id);  // already fired
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, AllCancelledMeansEmpty) {
  EventQueue q;
  const EventId a = q.schedule_cancellable(1, [] {});
  const EventId b = q.schedule_cancellable(2, [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] {
    order.push_back(1);
    q.schedule(15, [&] { order.push_back(2); });
  });
  q.schedule(20, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, LargeVolumeStaysOrdered) {
  EventQueue q;
  TimeNs last = -1;
  for (int i = 0; i < 10000; ++i) {
    q.schedule((i * 7919) % 1000, [] {});
  }
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.when, last);
    last = ev.when;
  }
}

// Regression for the std::priority_queue-era pop(): it const_cast the
// container's top() and moved out of it (UB). The replacement heap must
// survive a dense interleaving of cancellable and non-cancellable events —
// including cancellations that leave dead entries at the heap top — with
// clean ASan/UBSan runs (the sanitize preset executes this test).
TEST(EventQueue, InterleavedCancellablePopsCleanly) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    const TimeNs when = (i * 37) % 50;
    if (i % 2 == 0) {
      ids.push_back(q.schedule_cancellable(when, [&fired, i] {
        fired.push_back(i);
      }));
    } else {
      q.schedule(when, [&fired, i] { fired.push_back(i); });
    }
  }
  // Cancel every other cancellable event, including ones at the heap top.
  for (std::size_t k = 0; k < ids.size(); k += 2) q.cancel(ids[k]);

  TimeNs last = -1;
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.when, last);
    last = ev.when;
    ev.fn();
  }
  // 100 non-cancellable + 50 surviving cancellable events fire.
  EXPECT_EQ(fired.size(), 150u);
  for (const int i : fired) {
    if (i % 2 == 0) {
      EXPECT_EQ((i / 2) % 2, 1) << "cancelled event " << i << " fired";
    }
  }
}

// size() must report only live events — watchdog diagnostics were
// overreporting the backlog by counting lazily-cancelled dead entries.
// raw_size() keeps the old occupied-slots meaning.
TEST(EventQueue, SizeExcludesCancelledRawSizeIncludes) {
  EventQueue q;
  const EventId a = q.schedule_cancellable(10, [] {});
  q.schedule_cancellable(20, [] {});
  q.schedule(30, [] {});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.raw_size(), 3u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 2u);      // live events only
  EXPECT_EQ(q.raw_size(), 3u);  // the dead record still occupies a slot
  // Popping past the dead entry reconciles both counts.
  q.pop().fn();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.raw_size(), 1u);
}

TEST(EventQueue, RunOneRespectsDeadline) {
  EventQueue q;
  int fired = 0;
  TimeNs clock = 0;
  q.schedule(10, [&] { ++fired; });
  q.schedule(30, [&] { fired += 10; });
  EXPECT_TRUE(q.run_one(20, clock));
  EXPECT_EQ(clock, 10);
  EXPECT_EQ(fired, 1);
  // The 30ns event is past the deadline: untouched, clock unchanged.
  EXPECT_FALSE(q.run_one(20, clock));
  EXPECT_EQ(clock, 10);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.run_one(30, clock));
  EXPECT_EQ(clock, 30);
  EXPECT_EQ(fired, 11);
}

TEST(EventQueue, RunOneSkipsCancelledHead) {
  EventQueue q;
  int fired = 0;
  TimeNs clock = 0;
  const EventId id = q.schedule_cancellable(5, [&] { fired = -1; });
  q.schedule(10, [&] { fired = 1; });
  q.cancel(id);
  EXPECT_TRUE(q.run_one(kTimeInf, clock));
  EXPECT_EQ(clock, 10);
  EXPECT_EQ(fired, 1);
}

// Callables that are too large or not trivially copyable fall back to the
// boxed (heap-allocated) path; they must fire and be released both when
// invoked and when destroyed unfired (no leaks under ASan).
TEST(EventQueue, BoxedCallablesFireAndRelease) {
  std::vector<int> sink;
  {
    EventQueue q;
    std::vector<int> payload{1, 2, 3};  // not trivially copyable
    q.schedule(1, [payload, &sink] { sink = payload; });
    q.schedule(2, [payload, &sink] { sink.push_back(99); });
    q.pop().fn();
    // The second boxed event is dropped unfired: its dtor must free the box.
  }
  EXPECT_EQ(sink, (std::vector<int>{1, 2, 3}));
}

// Steady-state schedule/pop cycles recycle pooled slots instead of growing:
// raw_size() returns to zero and ordering stays exact across many refills.
TEST(EventQueue, PoolRecyclingKeepsOrderingExact) {
  EventQueue q;
  TimeNs now = 0;
  std::vector<TimeNs> fired;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 16; ++i) {
      q.schedule(now + 1 + (i * 13) % 7, [&fired] { fired.push_back(0); });
    }
    while (!q.empty()) {
      auto ev = q.pop();
      EXPECT_GE(ev.when, now);
      now = ev.when;
      ev.fn();
    }
    EXPECT_EQ(q.raw_size(), 0u);
  }
  EXPECT_EQ(fired.size(), 50u * 16u);
}

// --- cancel() audit pins (double-cancel / stale-id) ----------------------

// Cancelling the same id repeatedly must count the kill exactly once:
// the dead_ counter is guarded by the pending-set erase, so size() (n_ -
// dead_) cannot underflow no matter how many times an id is replayed.
TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  const EventId a = q.schedule_cancellable(10, [] {});
  q.schedule_cancellable(20, [] {});
  q.schedule(30, [] {});
  q.cancel(a);
  q.cancel(a);
  q.cancel(a);
  EXPECT_EQ(q.size(), 2u);      // would be 0 if each cancel() decremented
  EXPECT_EQ(q.raw_size(), 3u);
  int fired = 0;
  while (!q.empty()) {
    q.pop().fn();
    ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.raw_size(), 0u);
}

// A stale EventId whose pool slot has been recycled to a NEW event must
// not kill the new event: ids are the globally unique schedule sequence,
// never the slot index.
TEST(EventQueue, StaleIdAfterSlotRecycleIsInert) {
  EventQueue q;
  int first = 0;
  const EventId old_id = q.schedule_cancellable(1, [&] { ++first; });
  q.pop().fn();  // fires and frees the slot
  EXPECT_EQ(first, 1);
  EXPECT_EQ(q.raw_size(), 0u);

  // The next schedule reuses the freed slot (LIFO free list) — the stale
  // id must not reach it.
  int second = 0;
  q.schedule_cancellable(2, [&] { ++second; });
  q.cancel(old_id);  // stale: already fired
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_EQ(second, 1);
}

// Same recycle scenario through the lazy-deletion path: the old event is
// cancelled (its corpse still occupies a slot), drains away, and a new
// event takes over the slot. Replaying the old id must stay a no-op.
TEST(EventQueue, StaleIdAfterLazyDrainAndRecycleIsInert) {
  EventQueue q;
  const EventId old_id = q.schedule_cancellable(1, [] { FAIL(); });
  q.schedule(2, [] {});
  q.cancel(old_id);
  q.pop().fn();  // drains past the corpse, freeing its slot
  EXPECT_EQ(q.raw_size(), 0u);

  int fired = 0;
  q.schedule_cancellable(3, [&] { ++fired; });
  q.cancel(old_id);  // replay of an already-counted cancel
  q.cancel(old_id);
  EXPECT_EQ(q.size(), 1u);  // size() must not have underflowed
  q.pop().fn();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.size(), 0u);
}

// --- timing-wheel front-end ordering pins --------------------------------
//
// The wheel covers a ~67 ms near horizon (16384 buckets x 4096 ns); events
// beyond it wait in the overflow heap and migrate inward as the cursor
// advances. These constants exercise every boundary without depending on
// the exact bucket math.

TEST(EventQueue, FarHorizonEventsMigrateInOrder) {
  EventQueue q;
  std::vector<int> order;
  const TimeNs far = from_ms(500);  // deep in heap territory
  q.schedule(far + 30, [&] { order.push_back(5); });
  q.schedule(3, [&] { order.push_back(0); });
  q.schedule(far + 10, [&] { order.push_back(3); });
  q.schedule(from_ms(40), [&] { order.push_back(1); });  // in-wheel
  q.schedule(far + 20, [&] { order.push_back(4); });
  q.schedule(from_ms(90), [&] { order.push_back(2); });  // past horizon
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueue, SameInstantFifoAcrossHeapMigration) {
  EventQueue q;
  std::vector<int> order;
  const TimeNs t = from_ms(300);  // beyond the wheel horizon at schedule time
  for (int i = 0; i < 32; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  q.schedule(1, [&] { order.push_back(-1); });
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 33u);
  EXPECT_EQ(order[0], -1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i + 1)], i);
  }
}

// An empty wheel rebases straight to the heap's top bucket instead of
// scanning through every intermediate empty bucket.
TEST(EventQueue, EmptyWheelRebasesToHeapTop) {
  EventQueue q;
  std::vector<TimeNs> when;
  for (int i = 9; i >= 0; --i) {
    q.schedule(from_sec(10) * (i + 1), [&when, i] {
      when.push_back(from_sec(10) * (i + 1));
    });
  }
  TimeNs last = 0;
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GT(ev.when, last);
    last = ev.when;
    ev.fn();
  }
  EXPECT_EQ(when.size(), 10u);
}

// Handlers scheduling at the *current* instant (zero-delay chains, e.g. a
// link handing off to a delay line) must run after every event already
// queued for that instant — FIFO extends to insertions made mid-drain.
TEST(EventQueue, MidDrainSameInstantInsertKeepsFifo) {
  EventQueue q;
  std::vector<int> order;
  TimeNs clock = 0;
  q.schedule(100, [&] {
    order.push_back(0);
    q.schedule(100, [&] { order.push_back(2); });
  });
  q.schedule(100, [&] { order.push_back(1); });
  while (q.run_one(kTimeInf, clock)) {
  }
  EXPECT_EQ(clock, 100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace bbrnash
