#include "sim/event_queue.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeInf);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, MixedTimesAndTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] { order.push_back(1); });
  q.schedule(5, [&] { order.push_back(2); });
  q.schedule(1, [&] { order.push_back(0); });
  q.schedule(9, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue q;
  q.schedule(77, [] {});
  EXPECT_EQ(q.next_time(), 77);
  auto ev = q.pop();
  EXPECT_EQ(ev.when, 77);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_cancellable(10, [&] { ++fired; });
  q.schedule(20, [&] { fired += 100; });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 100);
}

TEST(EventQueue, CancelledHeadDoesNotBlockNextTime) {
  EventQueue q;
  const EventId id = q.schedule_cancellable(10, [] {});
  q.schedule(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(5, [] {});
  q.cancel(9999);
  EXPECT_FALSE(q.empty());
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_cancellable(1, [&] { ++fired; });
  q.pop().fn();
  q.cancel(id);  // already fired
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, AllCancelledMeansEmpty) {
  EventQueue q;
  const EventId a = q.schedule_cancellable(1, [] {});
  const EventId b = q.schedule_cancellable(2, [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] {
    order.push_back(1);
    q.schedule(15, [&] { order.push_back(2); });
  });
  q.schedule(20, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, LargeVolumeStaysOrdered) {
  EventQueue q;
  TimeNs last = -1;
  for (int i = 0; i < 10000; ++i) {
    q.schedule((i * 7919) % 1000, [] {});
  }
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.when, last);
    last = ev.when;
  }
}

}  // namespace
}  // namespace bbrnash
