#include "sim/simulator.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<TimeNs> seen;
  sim.schedule_at(from_ms(5), [&] { seen.push_back(sim.now()); });
  sim.schedule_at(from_ms(9), [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<TimeNs>{from_ms(5), from_ms(9)}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  TimeNs inner = kTimeNone;
  sim.schedule_in(from_ms(10), [&] {
    sim.schedule_in(from_ms(5), [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, from_ms(15));
}

TEST(Simulator, RunUntilExecutesEventsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(from_ms(10), [&] { ++fired; });
  sim.run_until(from_ms(10));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilLeavesFutureEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(from_ms(10), [&] { ++fired; });
  sim.schedule_at(from_ms(20), [&] { ++fired; });
  sim.run_until(from_ms(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), from_ms(15));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(from_sec(3));
  EXPECT_EQ(sim.now(), from_sec(3));
}

TEST(Simulator, StopHaltsImmediately) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, CancellableTimerCanBeRearmed) {
  Simulator sim;
  int fired = 0;
  EventId timer = sim.schedule_cancellable_at(from_ms(10), [&] { fired = 1; });
  sim.schedule_at(from_ms(5), [&] {
    sim.cancel(timer);
    sim.schedule_cancellable_at(from_ms(20), [&] { fired = 2; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
}

// Watchdog pin: the event budget counts EXECUTED events and the reported
// backlog is the LIVE count — a large lazily-cancelled batch must neither
// consume budget nor show up in pending_events(). Cancellation-heavy CCAs
// (timer-churny RTO/pacing patterns) were the motivating case: counting
// the dead entries via raw_size() would trip the budget far too early.
TEST(Simulator, EventBudgetAndBacklogUseLiveCountNotRawSlots) {
  Simulator sim;
  constexpr int kBatch = 1000;
  std::vector<EventId> ids;
  ids.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    ids.push_back(
        sim.schedule_cancellable_at(from_ms(1) + i, [] { FAIL(); }));
  }
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(from_ms(5) + i, [&] { ++fired; });
  }
  for (const EventId id : ids) sim.cancel(id);

  // Live backlog excludes the 1000 corpses; the raw slot count sees them.
  EXPECT_EQ(sim.pending_events(), 10u);
  EXPECT_EQ(sim.pending_events_raw(), 1010u);

  // Budget of 100 dwarfs the 10 live events but not the 1010 raw slots:
  // the run must complete without exhausting it.
  sim.set_event_budget(100);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(sim.budget_exhausted());
  EXPECT_EQ(sim.events_executed(), 10u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.pending_events_raw(), 0u);
}

TEST(Simulator, EventChainSimulatesPeriodicProcess) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) sim.schedule_in(from_ms(1), tick);
  };
  sim.schedule_in(from_ms(1), tick);
  sim.run();
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(sim.now(), from_ms(10));
}

}  // namespace
}  // namespace bbrnash
