// The crash flight recorder: the ring must keep exactly the newest
// `capacity` events, and a dump must be parseable JSONL — one meta record
// naming the trigger, then the retained events oldest-first. The failure
// paths that call dump() are exercised end to end by exp/test_chaos.cpp.
#include "sim/flight_recorder.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/jsonl.hpp"
#include "util/units.hpp"

namespace bbrnash {
namespace {

std::string temp_path(const char* name) {
  return std::string{::testing::TempDir()} + name;
}

TEST(FlightRecorder, RingKeepsNewestEvents) {
  FlightRecorder rec{4};
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 0u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.note(from_ms(static_cast<double>(i)), FlightEventKind::kInject, 0, i);
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.size(), 4u);  // only the newest 4 survive
}

TEST(FlightRecorder, CapacityIsClampedToOne) {
  FlightRecorder rec{0};
  EXPECT_EQ(rec.capacity(), 1u);
  rec.note(0, FlightEventKind::kNote, 0);
  EXPECT_EQ(rec.size(), 1u);
}

TEST(FlightRecorder, DumpIsParseableJsonlWithMetaFirst) {
  const std::string path = temp_path("flight_dump.jsonl");
  std::remove(path.c_str());
  FlightRecorder rec{8, path};
  rec.note(from_ms(1), FlightEventKind::kInject, 0, 100, 0);
  rec.note(from_ms(2), FlightEventKind::kQueueDrop, 1, 100);
  rec.note(from_ms(3), FlightEventKind::kDeliver, 0, 100);
  EXPECT_FALSE(rec.dumped());
  rec.dump("invariant-violation", "queue occupancy exceeds buffer", 42);
  EXPECT_TRUE(rec.dumped());

  const std::vector<JsonlRecord> lines = read_jsonl(path);
  ASSERT_EQ(lines.size(), 4u);  // meta + 3 events
  EXPECT_EQ(lines[0].get_string("type"), "meta");
  EXPECT_EQ(lines[0].get_string("schema"), "bbrnash-flight-v1");
  EXPECT_EQ(lines[0].get_string("trigger"), "invariant-violation");
  EXPECT_EQ(lines[0].get_string("reason"),
            "queue occupancy exceeds buffer");
  EXPECT_EQ(lines[0].get_u64("seed"), 42u);
  EXPECT_EQ(lines[0].get_u64("events_recorded"), 3u);
  EXPECT_EQ(lines[0].get_u64("events_dumped"), 3u);
  EXPECT_EQ(lines[0].get_u64("ring_capacity"), 8u);

  // Events oldest-first, fields intact.
  EXPECT_EQ(lines[1].get_string("type"), "event");
  EXPECT_EQ(lines[1].get_string("kind"), "inject");
  EXPECT_EQ(lines[1].get_u64("t"), static_cast<std::uint64_t>(from_ms(1)));
  EXPECT_EQ(lines[1].get_u64("a"), 100u);
  EXPECT_EQ(lines[2].get_string("kind"), "queue-drop");
  EXPECT_EQ(lines[2].get_u64("flow"), 1u);
  EXPECT_EQ(lines[3].get_string("kind"), "deliver");
}

TEST(FlightRecorder, DumpAfterWrapIsOldestFirst) {
  const std::string path = temp_path("flight_wrap.jsonl");
  std::remove(path.c_str());
  FlightRecorder rec{3, path};
  for (std::uint64_t i = 0; i < 7; ++i) {
    rec.note(static_cast<TimeNs>(i), FlightEventKind::kNote, 0, i);
  }
  rec.dump("exception", "test", 1);
  const std::vector<JsonlRecord> lines = read_jsonl(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].get_u64("events_recorded"), 7u);
  EXPECT_EQ(lines[0].get_u64("events_dumped"), 3u);
  // Survivors are events 4, 5, 6 in that order.
  EXPECT_EQ(lines[1].get_u64("a"), 4u);
  EXPECT_EQ(lines[2].get_u64("a"), 5u);
  EXPECT_EQ(lines[3].get_u64("a"), 6u);
}

TEST(FlightRecorder, DumpTruncatesPreviousDump) {
  const std::string path = temp_path("flight_trunc.jsonl");
  std::remove(path.c_str());
  FlightRecorder first{4, path};
  for (int i = 0; i < 4; ++i) first.note(i, FlightEventKind::kNote, 0);
  first.dump("exception", "first", 1);
  FlightRecorder second{4, path};
  second.note(0, FlightEventKind::kNote, 0);
  second.dump("aborted-event-budget", "second", 2);
  const std::vector<JsonlRecord> lines = read_jsonl(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].get_string("trigger"), "aborted-event-budget");
}

TEST(FlightRecorder, DumpToUnwritablePathDoesNotThrow) {
  FlightRecorder rec{4, "/nonexistent-dir/zzz/flight.jsonl"};
  rec.note(0, FlightEventKind::kNote, 0);
  EXPECT_NO_THROW(rec.dump("exception", "unwritable", 1));
  EXPECT_FALSE(rec.dumped());
}

TEST(FlightRecorder, KindNamesAreStable) {
  EXPECT_STREQ(to_string(FlightEventKind::kInject), "inject");
  EXPECT_STREQ(to_string(FlightEventKind::kQueueDrop), "queue-drop");
  EXPECT_STREQ(to_string(FlightEventKind::kDeliver), "deliver");
  EXPECT_STREQ(to_string(FlightEventKind::kCcSnapshot), "cc-snapshot");
  EXPECT_STREQ(to_string(FlightEventKind::kRateChange), "rate-change");
  EXPECT_STREQ(to_string(FlightEventKind::kViolation), "violation");
  EXPECT_STREQ(to_string(FlightEventKind::kNote), "note");
}

}  // namespace
}  // namespace bbrnash
