// Integration: the qualitative competition phenomena the paper's analysis
// rests on.
#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"
#include "exp/sweeps.hpp"
#include "util/stats.hpp"

namespace bbrnash {
namespace {

TrialConfig cfg(double dur_s = 40, int trials = 1) {
  TrialConfig c;
  c.duration = from_sec(dur_s);
  c.warmup = from_sec(dur_s / 4);
  c.trials = trials;
  return c;
}

TEST(Competition, HomogeneousCubicIsFair) {
  const NetworkParams net = make_params(20, 40, 3);
  Scenario s = make_mix_scenario(net, 4, 0);
  s.duration = from_sec(30);
  s.warmup = from_sec(8);
  const RunResult r = run_scenario(s);
  std::vector<double> shares;
  for (const auto& f : r.flows) shares.push_back(f.stats.goodput_bps);
  EXPECT_GT(jain_fairness(shares), 0.85);
}

TEST(Competition, HomogeneousBbrIsFair) {
  const NetworkParams net = make_params(20, 40, 3);
  Scenario s = make_mix_scenario(net, 0, 4);
  s.duration = from_sec(30);
  s.warmup = from_sec(8);
  const RunResult r = run_scenario(s);
  std::vector<double> shares;
  for (const auto& f : r.flows) shares.push_back(f.stats.goodput_bps);
  EXPECT_GT(jain_fairness(shares), 0.8);
}

TEST(Competition, BbrBeatsFairShareWhenRare) {
  // The disproportionate-share property (paper §4.1's point A): one BBR
  // flow among many CUBIC flows gets far more than 1/n of the link.
  const NetworkParams net = make_params(50, 40, 3);
  const MixOutcome m = run_mix_trials(net, 7, 1, CcKind::kBbr, cfg(60));
  const double fair = 50.0 / 8.0;
  EXPECT_GT(m.per_flow_other_mbps, 1.5 * fair);
}

TEST(Competition, BbrAdvantageShrinksAsBbrGrows) {
  // Diminishing returns (paper Fig. 5): per-flow BBR throughput at k=1
  // exceeds per-flow BBR throughput at k = n-1.
  const NetworkParams net = make_params(50, 40, 3);
  const MixOutcome few = run_mix_trials(net, 7, 1, CcKind::kBbr, cfg(60));
  const MixOutcome many = run_mix_trials(net, 1, 7, CcKind::kBbr, cfg(60));
  EXPECT_GT(few.per_flow_other_mbps, many.per_flow_other_mbps);
}

TEST(Competition, AllBbrConvergesToFairShareAndLowDelay) {
  const NetworkParams net = make_params(50, 40, 3);
  const MixOutcome m = run_mix_trials(net, 0, 8, CcKind::kBbr, cfg(40));
  EXPECT_NEAR(m.per_flow_other_mbps, 50.0 / 8.0, 1.2);
  // Queue stays around the BBR aggregate's extra in-flight: far below the
  // CUBIC-driven near-full level (120 ms for 3 BDP at 40 ms).
  EXPECT_LT(m.avg_queue_delay_ms, 90.0);
}

TEST(Competition, MixedQueueDelayNearBufferFull) {
  // With any CUBIC present the buffer runs near-full (the model's
  // assumption 1 and Fig. 8b's flat-delay observation).
  const NetworkParams net = make_params(50, 40, 3);
  const MixOutcome m = run_mix_trials(net, 4, 4, CcKind::kBbr, cfg(40));
  EXPECT_GT(m.avg_queue_delay_ms, 0.45 * 120.0);
}

TEST(Competition, UtilizationStaysHighAcrossMixes) {
  const NetworkParams net = make_params(20, 40, 3);
  for (const int k : {0, 2, 4}) {
    const MixOutcome m = run_mix_trials(net, 4 - k, k, CcKind::kBbr, cfg(30));
    EXPECT_GT(m.link_utilization, 0.85) << "k=" << k;
  }
}

TEST(Competition, LongRttBbrBeatsShortRttBbr) {
  // BBR's RTT "unfairness": larger-RTT flows hold more in-flight
  // (cwnd ~ 2*bw*rtt) and win — the paper's §4.5 mechanism.
  Scenario s;
  const NetworkParams net = make_params(20, 20, 5);
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.flows.push_back({CcKind::kBbr, from_ms(10)});
  s.flows.push_back({CcKind::kBbr, from_ms(50)});
  s.duration = from_sec(40);
  s.warmup = from_sec(10);
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.flows[1].stats.goodput_bps, r.flows[0].stats.goodput_bps);
}

TEST(Competition, ShortRttCubicBeatsLongRttCubic) {
  // CUBIC's RTT bias is the opposite: quicker feedback wins.
  Scenario s;
  const NetworkParams net = make_params(20, 20, 3);
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.flows.push_back({CcKind::kCubic, from_ms(10)});
  s.flows.push_back({CcKind::kCubic, from_ms(50)});
  s.duration = from_sec(40);
  s.warmup = from_sec(10);
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.flows[0].stats.goodput_bps, r.flows[1].stats.goodput_bps);
}

TEST(Competition, BbrV2GentlerThanBbrTowardCubic) {
  const NetworkParams net = make_params(50, 40, 3);
  const MixOutcome vs_v1 = run_mix_trials(net, 4, 4, CcKind::kBbr, cfg(60));
  const MixOutcome vs_v2 = run_mix_trials(net, 4, 4, CcKind::kBbrV2, cfg(60));
  EXPECT_GT(vs_v2.per_flow_cubic_mbps, 0.85 * vs_v1.per_flow_cubic_mbps);
}

}  // namespace
}  // namespace bbrnash
