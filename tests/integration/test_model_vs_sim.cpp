// Integration: the analytical model against the packet-level simulator.
// Tolerances here are deliberately loose — the simulator substitutes for
// the paper's Linux testbed, and EXPERIMENTS.md records the tighter
// bench-level comparisons; these tests guard against gross regressions
// (sign flips, wrong asymptotes, broken bounds).
#include <gtest/gtest.h>

#include "exp/sweeps.hpp"
#include "model/mishra_model.hpp"
#include "model/nash.hpp"
#include "model/ware_model.hpp"

namespace bbrnash {
namespace {

TrialConfig cfg(double dur_s = 60) {
  TrialConfig c;
  c.duration = from_sec(dur_s);
  c.warmup = from_sec(15);
  c.trials = 1;
  return c;
}

TEST(ModelVsSim, TwoFlowPredictionTracksSimAtModerateBuffers) {
  for (const double bdp : {5.0, 8.0}) {
    const NetworkParams net = make_params(50, 40, bdp);
    const auto model = two_flow_prediction(net);
    ASSERT_TRUE(model.has_value());
    const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg());
    const double model_mbps = to_mbps(model->lambda_bbr);
    EXPECT_NEAR(sim.per_flow_other_mbps, model_mbps, 0.5 * model_mbps)
        << "at " << bdp << " BDP";
  }
}

TEST(ModelVsSim, BothAgreeCubicWinsInDeepBuffers) {
  const NetworkParams net = make_params(50, 40, 20);
  const auto model = two_flow_prediction(net);
  ASSERT_TRUE(model.has_value());
  EXPECT_GT(model->lambda_cubic, model->lambda_bbr);
  const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg());
  EXPECT_GT(sim.per_flow_cubic_mbps, sim.per_flow_other_mbps);
}

TEST(ModelVsSim, BothAgreeBbrWinsInShallowBuffers) {
  const NetworkParams net = make_params(50, 40, 1.2);
  const auto model = two_flow_prediction(net);
  ASSERT_TRUE(model.has_value());
  EXPECT_GT(model->lambda_bbr, model->lambda_cubic);
  const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg());
  EXPECT_GT(sim.per_flow_other_mbps, sim.per_flow_cubic_mbps);
}

TEST(ModelVsSim, OurModelBeatsWareInModerateBuffers) {
  // The paper's headline comparison (Fig. 3): in 5-15 BDP buffers the Ware
  // model grossly over-predicts BBR while ours lands close.
  double our_err = 0;
  double ware_err = 0;
  int n = 0;
  for (const double bdp : {5.0, 10.0, 15.0}) {
    const NetworkParams net = make_params(50, 40, bdp);
    const auto model = two_flow_prediction(net);
    const WarePrediction ware = ware_prediction(net, WareInputs{1, 60.0, 1500});
    const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg());
    ASSERT_TRUE(model.has_value());
    our_err += std::abs(to_mbps(model->lambda_bbr) - sim.per_flow_other_mbps);
    ware_err += std::abs(to_mbps(ware.lambda_bbr) - sim.per_flow_other_mbps);
    ++n;
  }
  EXPECT_LT(our_err / n, ware_err / n);
}

TEST(ModelVsSim, MultiFlowSimNearPredictedRegion) {
  const NetworkParams net = make_params(50, 40, 5);
  const auto region = prediction_interval(net, 3, 3);
  ASSERT_TRUE(region.has_value());
  const MixOutcome sim = run_mix_trials(net, 3, 3, CcKind::kBbr, cfg());
  const double lo = to_mbps(region->sync.per_flow_bbr);
  const double hi = to_mbps(region->desync.per_flow_bbr);
  // Within the region widened by 50% on both sides.
  EXPECT_GT(sim.per_flow_other_mbps, lo * 0.5);
  EXPECT_LT(sim.per_flow_other_mbps, hi * 1.5);
}

TEST(ModelVsSim, MeasuredCubicFloorScalesWithModelBcmin) {
  // The model's b_cmin grows linearly with B; the measured aggregate CUBIC
  // occupancy floor must grow with it (not stay pinned at zero) once
  // buffers are deep enough for CUBIC to be the resident majority.
  const NetworkParams shallow = make_params(50, 40, 6);
  const NetworkParams deep = make_params(50, 40, 16);
  const MixOutcome a = run_mix_trials(shallow, 1, 1, CcKind::kBbr, cfg());
  const MixOutcome b = run_mix_trials(deep, 1, 1, CcKind::kBbr, cfg());
  EXPECT_GT(b.cubic_buffer_min, a.cubic_buffer_min);
}

TEST(ModelVsSim, UltraDeepBufferModelOverestimates) {
  // Fig. 12's regime: at 150+ BDP BBR is no longer cwnd-limited and the
  // model must over-predict its throughput.
  const NetworkParams net = make_params(50, 40, 150);
  const auto model = two_flow_prediction(net);
  ASSERT_TRUE(model.has_value());
  const MixOutcome sim = run_mix_trials(net, 1, 1, CcKind::kBbr, cfg(90));
  EXPECT_GT(to_mbps(model->lambda_bbr), sim.per_flow_other_mbps);
}

}  // namespace
}  // namespace bbrnash
