// Property-based integration sweeps: invariants that must hold for every
// scenario the harness can produce.
#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"
#include "util/stats.hpp"

namespace bbrnash {
namespace {

struct PropertyParam {
  double cap_mbps;
  double rtt_ms;
  double buffer_bdp;
  int num_cubic;
  int num_bbr;
  std::uint64_t seed;
};

class ScenarioProperties : public ::testing::TestWithParam<PropertyParam> {
 protected:
  RunResult run() {
    const auto p = GetParam();
    const NetworkParams net = make_params(p.cap_mbps, p.rtt_ms, p.buffer_bdp);
    Scenario s = make_mix_scenario(net, p.num_cubic, p.num_bbr);
    s.duration = from_sec(15);
    s.warmup = from_sec(5);
    s.seed = p.seed;
    return run_scenario(s);
  }
};

TEST_P(ScenarioProperties, ConservationAndSanity) {
  const auto p = GetParam();
  const RunResult r = run();

  // (1) Goodput conservation: the flows cannot deliver more than the link.
  EXPECT_LE(r.total_goodput_all_mbps(), p.cap_mbps * 1.02);

  // (2) Utilization is a fraction.
  EXPECT_GE(r.link_utilization, 0.0);
  EXPECT_LE(r.link_utilization, 1.02);

  // (3) Queue delay bounded by full-buffer drain time.
  const double full_ms = p.buffer_bdp * p.rtt_ms;
  EXPECT_GE(r.avg_queue_delay_ms, 0.0);
  EXPECT_LE(r.avg_queue_delay_ms, full_ms * 1.001);

  // (4) RTT samples at least the propagation delay.
  for (const auto& f : r.flows) {
    if (f.stats.goodput_bps > 0) {
      EXPECT_GE(f.stats.min_rtt_ms, p.rtt_ms * 0.99);
      EXPECT_GE(f.stats.max_rtt_ms, f.stats.min_rtt_ms);
      EXPECT_GE(f.stats.avg_rtt_ms, f.stats.min_rtt_ms * 0.99);
      EXPECT_LE(f.stats.avg_rtt_ms, f.stats.max_rtt_ms * 1.01);
    }
  }

  // (5) Per-flow queue occupancies are consistent.
  double occupancy_sum = 0.0;
  for (const auto& f : r.flows) {
    EXPECT_GE(f.stats.min_queue_occupancy_bytes, 0);
    EXPECT_LE(f.stats.min_queue_occupancy_bytes,
              f.stats.max_queue_occupancy_bytes);
    occupancy_sum += f.stats.avg_queue_occupancy_bytes;
  }
  EXPECT_NEAR(occupancy_sum, r.avg_queue_bytes,
              0.05 * r.avg_queue_bytes + 1500.0);

  // (6) Aggregate CUBIC occupancy bounds.
  if (p.num_cubic > 0) {
    EXPECT_GE(r.cubic_buffer_min, 0);
    EXPECT_LE(r.cubic_buffer_avg,
              static_cast<double>(r.cubic_buffer_max) + 1.0);
    EXPECT_GE(r.cubic_buffer_avg,
              static_cast<double>(r.cubic_buffer_min) - 1.0);
  }

  // (7) Every active flow made progress.
  for (const auto& f : r.flows) {
    EXPECT_GT(f.stats.goodput_bps, 0.0);
  }
}

TEST_P(ScenarioProperties, DeterministicReplay) {
  const RunResult a = run();
  const RunResult b = run();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.flows[i].stats.goodput_bps,
                     b.flows[i].stats.goodput_bps);
  }
  ASSERT_EQ(a.total_drops, b.total_drops);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScenarioProperties,
    ::testing::Values(PropertyParam{20, 40, 2, 1, 1, 1},
                      PropertyParam{20, 40, 2, 1, 1, 99},
                      PropertyParam{20, 20, 5, 2, 2, 2},
                      PropertyParam{20, 80, 3, 2, 1, 3},
                      PropertyParam{50, 40, 1.5, 3, 3, 4},
                      PropertyParam{50, 40, 10, 1, 3, 5},
                      PropertyParam{20, 40, 4, 4, 0, 6},
                      PropertyParam{20, 40, 4, 0, 4, 7},
                      PropertyParam{10, 40, 3, 1, 2, 8},
                      PropertyParam{50, 10, 3, 2, 2, 9}),
    [](const ::testing::TestParamInfo<PropertyParam>& param_info) {
      const auto& p = param_info.param;
      return std::to_string(static_cast<int>(p.cap_mbps)) + "mbps_" +
             std::to_string(static_cast<int>(p.rtt_ms)) + "ms_" +
             std::to_string(static_cast<int>(p.buffer_bdp * 10)) + "dbdp_" +
             std::to_string(p.num_cubic) + "c" + std::to_string(p.num_bbr) +
             "b_seed" + std::to_string(p.seed);
    });

TEST(ScenarioPropertiesExtra, DropsOnlyWhenBufferStressed) {
  // A huge buffer with one paced BBR flow: no drops at all.
  const NetworkParams net = make_params(20, 40, 50);
  Scenario s = make_mix_scenario(net, 0, 1);
  s.duration = from_sec(10);
  s.warmup = from_sec(3);
  const RunResult r = run_scenario(s);
  EXPECT_EQ(r.total_drops, 0u);
}

TEST(ScenarioPropertiesExtra, CubicAlwaysEventuallyDrops) {
  // Loss-based probing must hit the ceiling of any finite buffer.
  const NetworkParams net = make_params(20, 40, 2);
  Scenario s = make_mix_scenario(net, 1, 0);
  s.duration = from_sec(20);
  s.warmup = from_sec(2);
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.total_drops, 0u);
}

}  // namespace
}  // namespace bbrnash
