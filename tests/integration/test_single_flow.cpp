// Integration: every congestion control, alone on a clean link, must
// achieve high utilization — across capacities, RTTs and buffer depths.
#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"

namespace bbrnash {
namespace {

struct SoloParam {
  CcKind cc;
  double cap_mbps;
  double rtt_ms;
  double buffer_bdp;
  double min_util;
};

class SoloFlow : public ::testing::TestWithParam<SoloParam> {};

TEST_P(SoloFlow, SaturatesCleanLink) {
  const SoloParam p = GetParam();
  const NetworkParams net = make_params(p.cap_mbps, p.rtt_ms, p.buffer_bdp);
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.flows.push_back({p.cc, net.base_rtt});
  s.duration = from_sec(20);
  s.warmup = from_sec(8);
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.link_utilization, p.min_util)
      << to_string(p.cc) << " on " << p.cap_mbps << " Mbps, " << p.rtt_ms
      << " ms, " << p.buffer_bdp << " BDP";
}

INSTANTIATE_TEST_SUITE_P(
    AllCcas, SoloFlow,
    ::testing::Values(
        // Loss-based CCAs keep the buffer full: near-perfect utilization.
        SoloParam{CcKind::kCubic, 20, 40, 2, 0.93},
        SoloParam{CcKind::kCubic, 50, 20, 5, 0.93},
        SoloParam{CcKind::kCubic, 20, 80, 2, 0.90},
        SoloParam{CcKind::kReno, 20, 40, 2, 0.93},
        SoloParam{CcKind::kReno, 20, 20, 5, 0.93},
        // BBR runs the pipe slightly under capacity during drain phases.
        SoloParam{CcKind::kBbr, 20, 40, 2, 0.85},
        SoloParam{CcKind::kBbr, 50, 20, 4, 0.85},
        SoloParam{CcKind::kBbr, 20, 80, 4, 0.85},
        SoloParam{CcKind::kBbrV2, 20, 40, 2, 0.85},
        SoloParam{CcKind::kBbrV2, 50, 20, 4, 0.85},
        // Delay-based Copa holds a small queue.
        SoloParam{CcKind::kCopa, 20, 40, 4, 0.80},
        SoloParam{CcKind::kCopa, 50, 20, 4, 0.80},
        // Vivace converges via probing: allow a longer tail.
        SoloParam{CcKind::kVivace, 20, 40, 2, 0.70},
        SoloParam{CcKind::kVivace, 50, 40, 2, 0.70}),
    [](const ::testing::TestParamInfo<SoloParam>& param_info) {
      return std::string{to_string(param_info.param.cc)} + "_" +
             std::to_string(static_cast<int>(param_info.param.cap_mbps)) +
             "mbps_" +
             std::to_string(static_cast<int>(param_info.param.rtt_ms)) +
             "ms_" +
             std::to_string(static_cast<int>(param_info.param.buffer_bdp)) +
             "bdp";
    });

TEST(SoloFlowDetail, CubicSawtoothVisible) {
  // CUBIC alone must cycle: losses happen, the window shrinks by 0.7 and
  // regrows; retransmissions are therefore non-zero but bounded.
  const NetworkParams net = make_params(20, 40, 2);
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.flows.push_back({CcKind::kCubic, net.base_rtt});
  s.duration = from_sec(30);
  s.warmup = from_sec(5);
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.flows[0].stats.retransmits, 0u);
  EXPECT_LT(static_cast<double>(r.flows[0].stats.retransmits) * kDefaultMss,
            0.05 * mbps(20) * 25.0);  // < 5% loss overall
}

TEST(SoloFlowDetail, BbrKeepsRttNearBase) {
  const NetworkParams net = make_params(20, 40, 10);
  Scenario s;
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.flows.push_back({CcKind::kBbr, net.base_rtt});
  s.duration = from_sec(20);
  s.warmup = from_sec(8);
  const RunResult r = run_scenario(s);
  // Solo BBR: average RTT well below the bloat a loss-based flow causes.
  EXPECT_LT(r.flows[0].stats.avg_rtt_ms, 40.0 * 1.8);
}

TEST(SoloFlowDetail, CubicFillsBufferBbrDoesNot) {
  const NetworkParams net = make_params(20, 40, 6);
  const auto run_kind = [&](CcKind kind) {
    Scenario s;
    s.capacity = net.capacity;
    s.buffer_bytes = net.buffer_bytes;
    s.flows.push_back({kind, net.base_rtt});
    s.duration = from_sec(25);
    s.warmup = from_sec(8);
    return run_scenario(s).avg_queue_bytes;
  };
  EXPECT_GT(run_kind(CcKind::kCubic), 2.0 * run_kind(CcKind::kBbr));
}

}  // namespace
}  // namespace bbrnash
