// Integration: the access-jitter path must never reorder a flow's own
// packets, and clean (drop-free) runs must never retransmit.
#include <gtest/gtest.h>

#include "exp/scenario_runner.hpp"

namespace bbrnash {
namespace {

TEST(Ordering, NoSpuriousRetransmitsOnCleanPath) {
  // A single paced BBR flow in a huge buffer sees no drops — any
  // retransmission would be a reordering artefact of the jittered access
  // path (packets overtaking each other would trip dupack detection).
  const NetworkParams net = make_params(20, 40, 60);
  Scenario s = make_mix_scenario(net, 0, 1);
  s.duration = from_sec(15);
  s.warmup = from_sec(3);
  const RunResult r = run_scenario(s);
  EXPECT_EQ(r.total_drops, 0u);
  EXPECT_EQ(r.flows[0].stats.retransmits, 0u);
  EXPECT_EQ(r.flows[0].stats.rtos, 0u);
}

TEST(Ordering, JitterIsDeterministicPerSeed) {
  const NetworkParams net = make_params(20, 40, 3);
  Scenario s = make_mix_scenario(net, 1, 1);
  s.duration = from_sec(10);
  s.warmup = from_sec(3);
  s.seed = 5;
  const RunResult a = run_scenario(s);
  const RunResult b = run_scenario(s);
  EXPECT_DOUBLE_EQ(a.flows[0].stats.goodput_bps, b.flows[0].stats.goodput_bps);
  EXPECT_EQ(a.total_drops, b.total_drops);
}

TEST(Ordering, ZeroJitterStillWorks) {
  const NetworkParams net = make_params(20, 40, 3);
  Scenario s = make_mix_scenario(net, 1, 1);
  s.duration = from_sec(10);
  s.warmup = from_sec(3);
  s.access_jitter = 0;
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.link_utilization, 0.85);
}

TEST(Ordering, LargeJitterDoesNotBreakTransport) {
  const NetworkParams net = make_params(20, 40, 3);
  Scenario s = make_mix_scenario(net, 1, 1);
  s.duration = from_sec(12);
  s.warmup = from_sec(4);
  s.access_jitter = from_ms(2);  // several packet times
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.link_utilization, 0.8);
}

TEST(Ordering, ShortRttCubicStillFavouredWithJitter) {
  // Regression guard for the drop-tail phase effect: with the default
  // access jitter, two CUBIC flows with different RTTs must favour the
  // short-RTT one (averaged over enough time).
  Scenario s;
  const NetworkParams net = make_params(20, 20, 3);
  s.capacity = net.capacity;
  s.buffer_bytes = net.buffer_bytes;
  s.flows.push_back({CcKind::kCubic, from_ms(10)});
  s.flows.push_back({CcKind::kCubic, from_ms(50)});
  s.duration = from_sec(40);
  s.warmup = from_sec(10);
  const RunResult r = run_scenario(s);
  EXPECT_GT(r.flows[0].stats.goodput_bps, r.flows[1].stats.goodput_bps);
}

}  // namespace
}  // namespace bbrnash
