// Test helper: a minimal single- or multi-flow dumbbell that exposes the
// live congestion-control objects for introspection while the simulation
// runs — used by the CC state-machine tests.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cc/congestion_control.hpp"
#include "flow/receiver.hpp"
#include "flow/sender.hpp"
#include "net/bottleneck_link.hpp"
#include "net/delay_line.hpp"
#include "sim/simulator.hpp"

namespace bbrnash::testing {

class Loopback {
 public:
  /// `make_cc(i)` builds the congestion control for flow i.
  Loopback(BytesPerSec capacity, Bytes buffer_bytes, TimeNs rtt,
           std::size_t flows,
           const std::function<std::unique_ptr<CongestionControl>(std::size_t)>&
               make_cc)
      : link_(sim_, capacity, buffer_bytes,
              static_cast<std::uint32_t>(flows)) {
    endpoints_.reserve(flows);
    for (std::size_t i = 0; i < flows; ++i) {
      auto ep = std::make_unique<Endpoint>();
      ep->receiver = std::make_unique<Receiver>(static_cast<FlowId>(i));
      ep->fwd = std::make_unique<DelayLine<Packet>>(sim_, rtt / 2);
      ep->rev = std::make_unique<DelayLine<Ack>>(sim_, rtt - rtt / 2);
      ep->sender = std::make_unique<Sender>(
          sim_, static_cast<FlowId>(i), SenderConfig{}, make_cc(i),
          [this](const Packet& p) { link_.send(p); });
      Endpoint* raw = ep.get();
      ep->fwd->set_sink(
          [raw](const Packet& p) { raw->receiver->on_packet(p, 0); });
      ep->receiver->set_ack_sink([raw](const Ack& a) { raw->rev->send(a); });
      ep->rev->set_sink([raw](const Ack& a) { raw->sender->on_ack(a); });
      endpoints_.push_back(std::move(ep));
    }
    link_.set_sink([this](const Packet& p) {
      endpoints_[p.flow]->fwd->send(p);
    });
  }

  void start_all() {
    for (auto& ep : endpoints_) ep->sender->start(0);
  }

  Simulator& sim() { return sim_; }
  BottleneckLink& link() { return link_; }
  Sender& sender(std::size_t i) { return *endpoints_.at(i)->sender; }
  CongestionControl& cc(std::size_t i) {
    return endpoints_.at(i)->sender->cc();
  }

  /// Samples `fn` every `period` until `until`.
  void sample(TimeNs period, TimeNs until, std::function<void()> fn) {
    for (TimeNs t = period; t <= until; t += period) {
      sim_.schedule_at(t, fn);
    }
  }

 private:
  struct Endpoint {
    std::unique_ptr<Sender> sender;
    std::unique_ptr<Receiver> receiver;
    std::unique_ptr<DelayLine<Packet>> fwd;
    std::unique_ptr<DelayLine<Ack>> rev;
  };

  Simulator sim_;
  BottleneckLink link_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace bbrnash::testing
