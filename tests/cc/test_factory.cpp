#include <gtest/gtest.h>

#include "cc/congestion_control.hpp"

namespace bbrnash {
namespace {

TEST(CcFactory, CreatesEveryKind) {
  for (const CcKind kind :
       {CcKind::kCubic, CcKind::kReno, CcKind::kBbr, CcKind::kBbrV2,
        CcKind::kCopa, CcKind::kVivace, CcKind::kVegas}) {
    const auto cc = make_congestion_control(kind, CcConfig{});
    ASSERT_NE(cc, nullptr);
    EXPECT_EQ(cc->name(), to_string(kind));
  }
}

TEST(CcFactory, NamesAreStable) {
  EXPECT_STREQ(to_string(CcKind::kCubic), "cubic");
  EXPECT_STREQ(to_string(CcKind::kReno), "reno");
  EXPECT_STREQ(to_string(CcKind::kBbr), "bbr");
  EXPECT_STREQ(to_string(CcKind::kBbrV2), "bbrv2");
  EXPECT_STREQ(to_string(CcKind::kCopa), "copa");
  EXPECT_STREQ(to_string(CcKind::kVivace), "vivace");
}

TEST(CcFactory, HonoursInitialCwnd) {
  CcConfig cfg;
  cfg.initial_cwnd = 4 * kDefaultMss;
  auto cc = make_congestion_control(CcKind::kCubic, cfg);
  cc->on_start(0);
  EXPECT_EQ(cc->cwnd(), 4 * kDefaultMss);
}

TEST(CcFactory, WindowCcasAreUnpaced) {
  for (const CcKind kind : {CcKind::kCubic, CcKind::kReno}) {
    auto cc = make_congestion_control(kind, CcConfig{});
    cc->on_start(0);
    EXPECT_GE(cc->pacing_rate(), kNoPacing);
  }
}

TEST(CcFactory, RateCcasStartPacedOrPrimeable) {
  // BBR paces once its filters are primed; initially it may burst the IW.
  auto bbr = make_congestion_control(CcKind::kBbr, CcConfig{});
  bbr->on_start(0);
  AckEvent ev;
  ev.now = from_ms(40);
  ev.rtt = from_ms(40);
  ev.acked_bytes = kDefaultMss;
  ev.delivered = kDefaultMss;
  ev.delivery_rate = mbps(10);
  ev.inflight = 5 * kDefaultMss;
  bbr->on_ack(ev);
  EXPECT_LT(bbr->pacing_rate(), kNoPacing);
}

TEST(CcFactory, BbrGainKnobApplies) {
  CcConfig cfg;
  cfg.bbr_cwnd_gain = 2.0;
  auto a = make_congestion_control(CcKind::kBbr, cfg);
  cfg.bbr_cwnd_gain = 3.0;
  auto b = make_congestion_control(CcKind::kBbr, cfg);
  // Feed the same primed state; higher gain must produce a larger target.
  for (auto* cc : {a.get(), b.get()}) {
    cc->on_start(0);
    AckEvent ev;
    ev.now = from_ms(40);
    ev.rtt = from_ms(40);
    ev.acked_bytes = kDefaultMss;
    ev.delivered = kDefaultMss;
    ev.delivery_rate = mbps(10);
    ev.inflight = kDefaultMss;
    // Prime filters and push well past startup with many acks.
    for (int i = 0; i < 400; ++i) {
      ev.now += from_ms(10);
      ev.delivered += kDefaultMss;
      ev.prior_delivered = ev.delivered - kDefaultMss;
      cc->on_ack(ev);
    }
  }
  EXPECT_GT(b->cwnd(), a->cwnd());
}

}  // namespace
}  // namespace bbrnash
