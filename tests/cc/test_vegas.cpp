#include "cc/vegas.hpp"

#include <gtest/gtest.h>

#include "cc/reno.hpp"
#include "helpers/loopback.hpp"

namespace bbrnash {
namespace {

using bbrnash::testing::Loopback;

std::unique_ptr<CongestionControl> make_vegas(std::size_t) {
  return std::make_unique<Vegas>();
}

TEST(Vegas, FillsAnEmptyLink) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_vegas};
  lb.start_all();
  lb.sim().run_until(from_sec(15));
  const double goodput =
      to_mbps(static_cast<double>(lb.sender(0).delivered_bytes()) / 15.0);
  EXPECT_GT(goodput, 16.0);
}

TEST(Vegas, HoldsTinyStandingQueue) {
  Loopback lb{mbps(20), 10 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_vegas};
  lb.start_all();
  lb.sim().schedule_at(from_sec(8), [&] {
    lb.link().queue().begin_measurement(lb.sim().now());
  });
  lb.sim().run_until(from_sec(18));
  lb.link().queue().finalize(lb.sim().now());
  // alpha..beta of 2..4 packets: average well under 10 packets.
  EXPECT_LT(lb.link().queue().avg_occupied_bytes(), 10.0 * 1500.0);
}

TEST(Vegas, BaseRttLearned) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_vegas};
  lb.start_all();
  lb.sim().run_until(from_sec(5));
  const auto& vegas = dynamic_cast<const Vegas&>(lb.cc(0));
  EXPECT_NEAR(to_ms(vegas.base_rtt()), 40.0, 2.0);
}

TEST(Vegas, CedesToReno) {
  // The classic result the related-work games rest on: loss-based Reno
  // starves delay-based Vegas in a shared drop-tail queue.
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 2,
              [](std::size_t i) -> std::unique_ptr<CongestionControl> {
                if (i == 0) return std::make_unique<Reno>();
                return std::make_unique<Vegas>();
              }};
  lb.start_all();
  lb.sim().run_until(from_sec(30));
  const auto reno = static_cast<double>(lb.sender(0).delivered_bytes());
  const auto vegas = static_cast<double>(lb.sender(1).delivered_bytes());
  EXPECT_GT(reno, 1.5 * vegas);
}

TEST(Vegas, EstimatorStepsOutsideRounds) {
  Vegas v;
  v.on_start(0);
  const Bytes w0 = v.cwnd();
  // Mid-round acks (prior_delivered below the round target) don't adjust.
  AckEvent ev;
  ev.now = from_ms(50);
  ev.rtt = from_ms(40);
  ev.acked_bytes = kDefaultMss;
  ev.delivered = kDefaultMss;
  ev.prior_delivered = 0;
  v.on_ack(ev);  // first round boundary (next_round_delivered_ starts 0)
  ev.prior_delivered = 0;
  ev.delivered = 2 * kDefaultMss;
  // Now prior_delivered < next_round_delivered: no further action.
  v.on_ack(ev);
  EXPECT_GE(v.cwnd(), w0 / 2);
}

TEST(Vegas, HalvesOnCongestionEvent) {
  Vegas v;
  v.on_start(0);
  const Bytes before = v.cwnd();
  v.on_congestion_event({});
  EXPECT_EQ(v.cwnd(), before / 2);
  EXPECT_FALSE(v.in_slow_start());
}

TEST(Vegas, RtoRestartsSlowStart) {
  Vegas v;
  v.on_start(0);
  v.on_congestion_event({});
  v.on_rto(from_sec(1));
  EXPECT_TRUE(v.in_slow_start());
  EXPECT_EQ(v.cwnd(), 2 * kDefaultMss);
}

TEST(Vegas, FactoryCreatesIt) {
  const auto cc = make_congestion_control(CcKind::kVegas, CcConfig{});
  EXPECT_EQ(cc->name(), "vegas");
  EXPECT_STREQ(to_string(CcKind::kVegas), "vegas");
}

}  // namespace
}  // namespace bbrnash
