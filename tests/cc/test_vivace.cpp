#include "cc/vivace.hpp"

#include <gtest/gtest.h>

#include "helpers/loopback.hpp"

namespace bbrnash {
namespace {

using bbrnash::testing::Loopback;

std::unique_ptr<CongestionControl> make_vivace(std::size_t) {
  return std::make_unique<Vivace>();
}

TEST(Vivace, RampsToLinkRateAlone) {
  Loopback lb{mbps(50), 2 * bdp_bytes(mbps(50), from_ms(40)), from_ms(40), 1,
              make_vivace};
  lb.start_all();
  lb.sim().run_until(from_sec(20));
  const Bytes at_20s = lb.sender(0).delivered_bytes();
  lb.sim().run_until(from_sec(30));
  const double goodput =
      to_mbps(static_cast<double>(lb.sender(0).delivered_bytes() - at_20s) /
              10.0);
  EXPECT_GT(goodput, 40.0);
}

TEST(Vivace, TwoFlowsShareReasonably) {
  Loopback lb{mbps(50), 2 * bdp_bytes(mbps(50), from_ms(40)), from_ms(40), 2,
              make_vivace};
  lb.start_all();
  lb.sim().run_until(from_sec(15));
  const Bytes a0 = lb.sender(0).delivered_bytes();
  const Bytes b0 = lb.sender(1).delivered_bytes();
  lb.sim().run_until(from_sec(45));
  const auto a = static_cast<double>(lb.sender(0).delivered_bytes() - a0);
  const auto b = static_cast<double>(lb.sender(1).delivered_bytes() - b0);
  const double share = a / (a + b);
  EXPECT_GT(share, 0.2);
  EXPECT_LT(share, 0.8);
}

TEST(Vivace, RateFloorHolds) {
  Vivace v;
  v.on_start(0);
  for (int i = 0; i < 20; ++i) v.on_rto(from_sec(i + 1));
  EXPECT_GE(v.rate_mbps(), VivaceConfig{}.min_rate_mbps);
}

TEST(Vivace, CwndFloorKeepsLossDetectionViable) {
  Vivace v;
  v.on_start(0);
  for (int i = 0; i < 20; ++i) v.on_rto(from_sec(i + 1));
  EXPECT_GE(v.cwnd(), 8 * kDefaultMss);
}

TEST(Vivace, PacingFollowsRate) {
  Vivace v;
  v.on_start(0);
  const double r = v.rate_mbps();
  EXPECT_NEAR(to_mbps(v.pacing_rate()), r, r * 0.01);
}

TEST(Vivace, UtilizationHighUnderSelfCompetition) {
  Loopback lb{mbps(50), 2 * bdp_bytes(mbps(50), from_ms(40)), from_ms(40), 3,
              make_vivace};
  lb.start_all();
  lb.sim().run_until(from_sec(30));
  Bytes total = 0;
  for (int i = 0; i < 3; ++i) total += lb.sender(i).delivered_bytes();
  // >= 70% of the link over the whole run including convergence.
  EXPECT_GT(static_cast<double>(total), 0.7 * mbps(50) * 30.0);
}

}  // namespace
}  // namespace bbrnash
