#include "cc/bbrv2.hpp"

#include <gtest/gtest.h>

#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "helpers/loopback.hpp"

namespace bbrnash {
namespace {

using bbrnash::testing::Loopback;

std::unique_ptr<CongestionControl> make_v2(std::size_t) {
  BbrV2Config cfg;
  cfg.seed = 42;
  return std::make_unique<BbrV2>(cfg);
}

const BbrV2& as_v2(const CongestionControl& cc) {
  return dynamic_cast<const BbrV2&>(cc);
}

TEST(BbrV2, FillsAnEmptyLink) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_v2};
  lb.start_all();
  lb.sim().run_until(from_sec(10));
  const double goodput =
      to_mbps(static_cast<double>(lb.sender(0).delivered_bytes()) / 10.0);
  EXPECT_GT(goodput, 17.0);
}

TEST(BbrV2, ReachesProbeBw) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_v2};
  lb.start_all();
  lb.sim().run_until(from_sec(5));
  EXPECT_EQ(as_v2(lb.cc(0)).state(), BbrV2::State::kProbeBw);
}

TEST(BbrV2, LossEventSetsInflightBounds) {
  BbrV2 v2;
  v2.on_start(0);
  EXPECT_GT(v2.inflight_hi(), from_sec(1));  // effectively unbounded
  LossEvent loss;
  loss.now = from_ms(100);
  loss.inflight = 100 * kDefaultMss;
  loss.lost_bytes = 2 * kDefaultMss;
  v2.on_congestion_event(loss);
  EXPECT_LE(v2.inflight_hi(), 102 * kDefaultMss);
  EXPECT_LT(v2.inflight_lo(), 100 * kDefaultMss);
}

TEST(BbrV2, ShortTermBoundIsBetaOfCwnd) {
  BbrV2Config cfg;
  BbrV2 v2{cfg};
  v2.on_start(0);
  const Bytes cwnd = v2.cwnd();
  LossEvent loss;
  loss.inflight = cwnd;
  v2.on_congestion_event(loss);
  EXPECT_NEAR(static_cast<double>(v2.inflight_lo()),
              cfg.beta * static_cast<double>(cwnd),
              static_cast<double>(kDefaultMss));
}

TEST(BbrV2, CwndRespectsInflightHi) {
  BbrV2 v2;
  v2.on_start(0);
  LossEvent loss;
  loss.inflight = 6 * kDefaultMss;
  v2.on_congestion_event(loss);
  EXPECT_LE(v2.cwnd(), 6 * kDefaultMss);
}

TEST(BbrV2, LessAggressiveThanV1AgainstCubic) {
  // 1 CUBIC + 1 BBRv2, then 1 CUBIC + 1 BBRv1: CUBIC must keep more
  // bandwidth against v2 (the paper's Fig. 11 premise).
  const auto run = [](bool v2_flag) {
    Loopback lb{
        mbps(20), 3 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 2,
        [&](std::size_t i) -> std::unique_ptr<CongestionControl> {
          if (i == 0) return std::make_unique<Cubic>();
          if (v2_flag) {
            BbrV2Config c;
            c.seed = 7;
            return std::make_unique<BbrV2>(c);
          }
          BbrConfig c;
          c.seed = 7;
          return std::make_unique<Bbr>(c);
        }};
    lb.start_all();
    lb.sim().run_until(from_sec(40));
    return static_cast<double>(lb.sender(0).delivered_bytes());
  };
  const double cubic_vs_v2 = run(true);
  const double cubic_vs_v1 = run(false);
  EXPECT_GT(cubic_vs_v2, cubic_vs_v1 * 0.9);
}

TEST(BbrV2, RtoCollapsesShortTermBound) {
  BbrV2 v2;
  v2.on_start(0);
  v2.on_rto(from_ms(500));
  EXPECT_EQ(v2.cwnd(), BbrV2Config{}.min_pipe_cwnd);
}

}  // namespace
}  // namespace bbrnash
