// BBR state-machine tests, driven through a real single-flow simulation so
// rounds, delivery-rate samples, and the ack clock are authentic.
#include "cc/bbr.hpp"

#include <set>

#include <gtest/gtest.h>

#include "helpers/loopback.hpp"

namespace bbrnash {
namespace {

using bbrnash::testing::Loopback;

std::unique_ptr<CongestionControl> make_bbr(std::size_t) {
  BbrConfig cfg;
  cfg.seed = 42;
  return std::make_unique<Bbr>(cfg);
}

const Bbr& as_bbr(const CongestionControl& cc) {
  return dynamic_cast<const Bbr&>(cc);
}

TEST(Bbr, StartupFindsBandwidthWithinTwentyRtts) {
  // 20 Mbps, 40 ms: BDP ~ 69 packets. Startup doubles per RTT.
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_bbr};
  lb.start_all();
  lb.sim().run_until(from_ms(40) * 20);
  const auto& bbr = as_bbr(lb.cc(0));
  EXPECT_NEAR(to_mbps(bbr.btlbw()), 20.0, 4.0);
}

TEST(Bbr, ReachesProbeBwAndStaysThere) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_bbr};
  lb.start_all();
  lb.sim().run_until(from_sec(5));
  EXPECT_EQ(as_bbr(lb.cc(0)).state(), Bbr::State::kProbeBw);
}

TEST(Bbr, RtPropMatchesPathRtt) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_bbr};
  lb.start_all();
  lb.sim().run_until(from_sec(5));
  // Base 40 ms plus one serialization time or so.
  EXPECT_NEAR(to_ms(as_bbr(lb.cc(0)).rtprop()), 40.0, 2.0);
}

TEST(Bbr, CwndIsTwiceEstimatedBdpInProbeBw) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_bbr};
  lb.start_all();
  lb.sim().run_until(from_sec(5));
  const auto& bbr = as_bbr(lb.cc(0));
  ASSERT_EQ(bbr.state(), Bbr::State::kProbeBw);
  EXPECT_NEAR(static_cast<double>(bbr.cwnd()),
              2.0 * static_cast<double>(bbr.bdp_estimate()),
              static_cast<double>(bbr.bdp_estimate()) * 0.15);
}

TEST(Bbr, SoloFlowKeepsQueueSmall) {
  // The hallmark of BBR alone: high throughput, ~empty buffer.
  Loopback lb{mbps(20), 10 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_bbr};
  lb.start_all();
  lb.link().queue().begin_measurement(0);
  lb.sim().run_until(from_sec(8));
  lb.link().queue().finalize(lb.sim().now());
  const double avg_queue = lb.link().queue().avg_occupied_bytes();
  // Well under one BDP on average (gain cycling drains its own probes).
  EXPECT_LT(avg_queue, 0.8 * static_cast<double>(
                                 bdp_bytes(mbps(20), from_ms(40))));
}

TEST(Bbr, ProbeRttVisitedOnSchedule) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_bbr};
  lb.start_all();
  bool seen_probe_rtt = false;
  lb.sample(from_ms(20), from_sec(13), [&] {
    if (as_bbr(lb.cc(0)).state() == Bbr::State::kProbeRtt) {
      seen_probe_rtt = true;
    }
  });
  lb.sim().run_until(from_sec(13));
  // min-RTT keeps being refreshed by an uncongested path... but the 10 s
  // expiry still triggers ProbeRTT when the estimate goes stale. With a
  // solo flow the queue is near-empty so new minima keep arriving; allow
  // either outcome but require a ProbeRTT once we add self-queueing.
  // Deterministic variant: a second check below with standing queue.
  (void)seen_probe_rtt;

  // Now with a standing queue (two BBR flows inflate each other's RTT):
  Loopback lb2{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 2,
               make_bbr};
  lb2.start_all();
  bool probe_rtt2 = false;
  lb2.sample(from_ms(20), from_sec(13), [&] {
    if (as_bbr(lb2.cc(0)).state() == Bbr::State::kProbeRtt) probe_rtt2 = true;
  });
  lb2.sim().run_until(from_sec(13));
  EXPECT_TRUE(probe_rtt2);
}

TEST(Bbr, ProbeRttShrinksCwndToFourPackets) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 2,
              make_bbr};
  lb.start_all();
  Bytes min_cwnd_seen = INT64_MAX;
  lb.sample(from_ms(5), from_sec(13), [&] {
    if (as_bbr(lb.cc(0)).state() == Bbr::State::kProbeRtt) {
      min_cwnd_seen = std::min(min_cwnd_seen, lb.cc(0).cwnd());
    }
  });
  lb.sim().run_until(from_sec(13));
  EXPECT_EQ(min_cwnd_seen, 4 * kDefaultMss);
}

TEST(Bbr, GainCyclingVisitsProbeAndDrainPhases) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_bbr};
  lb.start_all();
  std::set<double> gains;
  lb.sample(from_ms(3), from_sec(6), [&] {
    if (as_bbr(lb.cc(0)).state() == Bbr::State::kProbeBw) {
      gains.insert(as_bbr(lb.cc(0)).pacing_gain());
    }
  });
  lb.sim().run_until(from_sec(6));
  EXPECT_TRUE(gains.count(1.25)) << "never probed up";
  EXPECT_TRUE(gains.count(0.75)) << "never drained";
  EXPECT_TRUE(gains.count(1.0)) << "never cruised";
}

TEST(Bbr, TwoFlowsConvergeToFairShare) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 2,
              make_bbr};
  lb.start_all();
  lb.sim().run_until(from_sec(10));
  const Bytes d0 = lb.sender(0).delivered_bytes();
  const Bytes d1 = lb.sender(1).delivered_bytes();
  lb.sim().run_until(from_sec(30));
  const auto r0 = static_cast<double>(lb.sender(0).delivered_bytes() - d0);
  const auto r1 = static_cast<double>(lb.sender(1).delivered_bytes() - d1);
  EXPECT_NEAR(r0 / (r0 + r1), 0.5, 0.12);
}

TEST(Bbr, LossAgnosticWindowSurvivesCongestionEvents) {
  BbrConfig cfg;
  Bbr bbr{cfg};
  bbr.on_start(0);
  // Synthetic: feed a congestion event and per-packet losses without a
  // recovery flag; the model-driven window must not collapse permanently.
  LossEvent loss;
  loss.inflight = 100 * kDefaultMss;
  bbr.on_congestion_event(loss);
  const Bytes during = bbr.cwnd();
  EXPECT_GE(during, cfg.min_pipe_cwnd);
  // After recovery ends (next ack without in_recovery), cwnd restores.
  AckEvent ev;
  ev.now = from_ms(50);
  ev.rtt = from_ms(40);
  ev.acked_bytes = kDefaultMss;
  ev.delivered = kDefaultMss;
  ev.delivery_rate = mbps(10);
  ev.inflight = 50 * kDefaultMss;
  ev.in_recovery = false;
  bbr.on_ack(ev);
  EXPECT_GE(bbr.cwnd(), during);
}

TEST(Bbr, AblationKnobChangesCap) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              [](std::size_t) -> std::unique_ptr<CongestionControl> {
                BbrConfig cfg;
                cfg.cwnd_gain = 3.0;
                return std::make_unique<Bbr>(cfg);
              }};
  lb.start_all();
  lb.sim().run_until(from_sec(5));
  const auto& bbr = as_bbr(lb.cc(0));
  EXPECT_NEAR(static_cast<double>(bbr.cwnd()),
              3.0 * static_cast<double>(bbr.bdp_estimate()),
              static_cast<double>(bbr.bdp_estimate()) * 0.2);
}

}  // namespace
}  // namespace bbrnash
