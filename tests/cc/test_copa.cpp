#include "cc/copa.hpp"

#include <gtest/gtest.h>

#include "cc/cubic.hpp"
#include "helpers/loopback.hpp"

namespace bbrnash {
namespace {

using bbrnash::testing::Loopback;

std::unique_ptr<CongestionControl> make_copa(std::size_t) {
  return std::make_unique<Copa>();
}

TEST(Copa, FillsAnEmptyLink) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_copa};
  lb.start_all();
  lb.sim().run_until(from_sec(10));
  const double goodput =
      to_mbps(static_cast<double>(lb.sender(0).delivered_bytes()) / 10.0);
  EXPECT_GT(goodput, 15.0);
}

TEST(Copa, KeepsQueueShallow) {
  // delta = 0.5 targets ~2 packets of queue per flow.
  Loopback lb{mbps(20), 10 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_copa};
  lb.start_all();
  lb.sim().schedule_at(from_sec(3), [&] {
    lb.link().queue().begin_measurement(lb.sim().now());
  });
  lb.sim().run_until(from_sec(10));
  lb.link().queue().finalize(lb.sim().now());
  EXPECT_LT(lb.link().queue().avg_occupied_bytes(),
            0.5 * static_cast<double>(bdp_bytes(mbps(20), from_ms(40))));
}

TEST(Copa, CedesToCubic) {
  // The paper's §4.2 premise: Copa does not grab a disproportionate share.
  Loopback lb{mbps(20), 3 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 2,
              [](std::size_t i) -> std::unique_ptr<CongestionControl> {
                if (i == 0) return std::make_unique<Cubic>();
                return std::make_unique<Copa>();
              }};
  lb.start_all();
  lb.sim().run_until(from_sec(30));
  const auto cubic = static_cast<double>(lb.sender(0).delivered_bytes());
  const auto copa = static_cast<double>(lb.sender(1).delivered_bytes());
  EXPECT_LT(copa, cubic);
  EXPECT_LT(copa / (copa + cubic), 0.5);
}

TEST(Copa, QueueingDelaySignalComputed) {
  Copa c;
  c.on_start(0);
  AckEvent ev;
  ev.now = from_ms(100);
  ev.rtt = from_ms(40);
  ev.acked_bytes = kDefaultMss;
  c.on_ack(ev);
  EXPECT_EQ(c.queuing_delay(), 0);  // single sample: standing == min
  ev.now = from_ms(140);
  ev.rtt = from_ms(60);
  c.on_ack(ev);
  EXPECT_EQ(c.queuing_delay(), from_ms(20));
}

TEST(Copa, VelocityResetsOnDirectionChange) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_copa};
  lb.start_all();
  lb.sim().run_until(from_sec(10));
  const auto& copa = dynamic_cast<const Copa&>(lb.cc(0));
  // At steady state Copa oscillates around its target: velocity stays low.
  EXPECT_LE(copa.velocity(), 4.0);
}

TEST(Copa, RtoResetsToSlowStart) {
  Copa c;
  c.on_start(0);
  c.on_rto(from_sec(1));
  EXPECT_EQ(c.cwnd(), CopaConfig{}.min_cwnd);
  EXPECT_DOUBLE_EQ(c.velocity(), 1.0);
}

TEST(Copa, PacingTracksWindow) {
  Loopback lb{mbps(20), 4 * bdp_bytes(mbps(20), from_ms(40)), from_ms(40), 1,
              make_copa};
  lb.start_all();
  lb.sim().run_until(from_sec(5));
  const auto& copa = dynamic_cast<const Copa&>(lb.cc(0));
  EXPECT_LT(copa.pacing_rate(), kNoPacing);
  EXPECT_GT(copa.pacing_rate(), 0.0);
}

}  // namespace
}  // namespace bbrnash
