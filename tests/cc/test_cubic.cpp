#include "cc/cubic.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

AckEvent ack_at(TimeNs now, Bytes acked = kDefaultMss,
                TimeNs rtt = from_ms(40)) {
  AckEvent ev;
  ev.now = now;
  ev.rtt = rtt;
  ev.acked_bytes = acked;
  return ev;
}

TEST(Cubic, StartsAtInitialWindowInSlowStart) {
  Cubic c;
  c.on_start(0);
  EXPECT_EQ(c.cwnd(), 10 * kDefaultMss);
  EXPECT_TRUE(c.in_slow_start());
}

TEST(Cubic, SlowStartDoublesPerRtt) {
  Cubic c;
  c.on_start(0);
  const Bytes before = c.cwnd();
  // One cwnd's worth of acks == one round trip in slow start.
  for (Bytes acked = 0; acked < before; acked += kDefaultMss) {
    c.on_ack(ack_at(from_ms(40)));
  }
  EXPECT_EQ(c.cwnd(), 2 * before);
}

TEST(Cubic, BacksOffToBetaTimesCwnd) {
  Cubic c;
  c.on_start(0);
  // Grow a little first.
  for (int i = 0; i < 100; ++i) c.on_ack(ack_at(from_ms(40)));
  const Bytes before = c.cwnd();
  LossEvent loss;
  loss.now = from_ms(100);
  c.on_congestion_event(loss);
  EXPECT_NEAR(static_cast<double>(c.cwnd()),
              0.7 * static_cast<double>(before),
              static_cast<double>(kDefaultMss));
  EXPECT_FALSE(c.in_slow_start());
}

TEST(Cubic, WMaxRecordsPreLossWindow) {
  Cubic c;
  c.on_start(0);
  for (int i = 0; i < 50; ++i) c.on_ack(ack_at(from_ms(40)));
  const double cwnd_seg =
      static_cast<double>(c.cwnd()) / static_cast<double>(kDefaultMss);
  c.on_congestion_event({});
  // First loss: no fast-convergence shrink (cwnd was above old w_max).
  c.on_ack(ack_at(from_ms(50)));  // establishes the epoch
  EXPECT_NEAR(c.w_max_segments(), cwnd_seg, 1.0);
}

TEST(Cubic, FastConvergenceShrinksWmaxOnBackToBackLosses) {
  Cubic c;
  c.on_start(0);
  for (int i = 0; i < 50; ++i) c.on_ack(ack_at(from_ms(40)));
  c.on_congestion_event({});
  const double w_max_1 = c.w_max_segments();
  // Immediate second loss at the reduced window.
  c.on_congestion_event({});
  c.on_ack(ack_at(from_ms(50)));
  EXPECT_LT(c.w_max_segments(), w_max_1);
}

TEST(Cubic, RecoveresTowardWmaxOverKSeconds) {
  Cubic c;
  CubicConfig cfg;
  c = Cubic{cfg};
  c.on_start(0);
  // Build a large window, then lose.
  for (int i = 0; i < 500; ++i) c.on_ack(ack_at(from_ms(40)));
  const Bytes w_max_bytes = c.cwnd();
  c.on_congestion_event({});

  const double w_max_seg =
      static_cast<double>(w_max_bytes) / static_cast<double>(kDefaultMss);
  const double k =
      std::cbrt(w_max_seg * (1.0 - cfg.beta) / cfg.c);  // seconds

  // Feed an ack clock past K: the window must be back near W_max.
  const TimeNs start = from_ms(100);
  const TimeNs step = from_ms(10);
  for (TimeNs t = start; t < start + from_sec(k) + from_sec(1); t += step) {
    c.on_ack(ack_at(t));
  }
  EXPECT_GT(c.cwnd(),
            static_cast<Bytes>(0.90 * static_cast<double>(w_max_bytes)));
}

TEST(Cubic, ConcaveRegionIsSlowNearWmax) {
  Cubic c;
  c.on_start(0);
  for (int i = 0; i < 300; ++i) c.on_ack(ack_at(from_ms(40)));
  c.on_congestion_event({});
  // Right after backoff the growth per ack is modest (no jump to target).
  const Bytes just_after = c.cwnd();
  c.on_ack(ack_at(from_ms(100)));
  c.on_ack(ack_at(from_ms(101)));
  EXPECT_LT(c.cwnd() - just_after, 2 * kDefaultMss);
}

TEST(Cubic, FrozenDuringRecovery) {
  Cubic c;
  c.on_start(0);
  for (int i = 0; i < 20; ++i) c.on_ack(ack_at(from_ms(40)));
  c.on_congestion_event({});
  const Bytes during = c.cwnd();
  AckEvent ev = ack_at(from_ms(60));
  ev.in_recovery = true;
  for (int i = 0; i < 50; ++i) c.on_ack(ev);
  EXPECT_EQ(c.cwnd(), during);
}

TEST(Cubic, RtoCollapsesToOneMss) {
  Cubic c;
  c.on_start(0);
  for (int i = 0; i < 20; ++i) c.on_ack(ack_at(from_ms(40)));
  c.on_rto(from_ms(100));
  EXPECT_EQ(c.cwnd(), kDefaultMss);
  EXPECT_TRUE(c.in_slow_start());  // restart below the new ssthresh
}

TEST(Cubic, TcpFriendlyRegionLiftsWindow) {
  // With a tiny cubic constant, the Reno-emulation window dominates.
  CubicConfig cfg;
  cfg.c = 1e-6;
  cfg.tcp_friendly = true;
  Cubic c{cfg};
  c.on_start(0);
  for (int i = 0; i < 50; ++i) c.on_ack(ack_at(from_ms(40)));
  c.on_congestion_event({});
  const Bytes after_loss = c.cwnd();
  for (int i = 0; i < 2000; ++i) {
    c.on_ack(ack_at(from_ms(100) + from_ms(1) * i));
  }
  EXPECT_GT(c.cwnd(), after_loss + 2 * kDefaultMss);
}

TEST(Cubic, NeverBelowMinCwnd) {
  Cubic c;
  c.on_start(0);
  for (int i = 0; i < 10; ++i) c.on_congestion_event({});
  EXPECT_GE(c.cwnd(), CubicConfig{}.min_cwnd);
}

TEST(CubicHystart, ExitsSlowStartOnRisingRtt) {
  CubicConfig cfg;
  cfg.hystart = true;
  Cubic c{cfg};
  c.on_start(0);
  // Feed rounds whose min RTT climbs by 10 ms each (queue building).
  Bytes delivered = 0;
  Bytes round_start_delivered = 0;
  TimeNs now = 0;
  for (int round = 0; round < 12 && c.in_slow_start(); ++round) {
    const TimeNs rtt = from_ms(40) + from_ms(10) * round;
    const Bytes cwnd = c.cwnd();
    for (Bytes sent = 0; sent < cwnd; sent += kDefaultMss) {
      AckEvent ev;
      now += from_ms(1);
      ev.now = now;
      ev.rtt = rtt;
      ev.acked_bytes = kDefaultMss;
      ev.prior_delivered = round_start_delivered;
      delivered += kDefaultMss;
      ev.delivered = delivered;
      c.on_ack(ev);
    }
    round_start_delivered = delivered;
  }
  EXPECT_FALSE(c.in_slow_start());
}

TEST(CubicHystart, StaysInSlowStartOnFlatRtt) {
  CubicConfig cfg;
  cfg.hystart = true;
  Cubic c{cfg};
  c.on_start(0);
  Bytes delivered = 0;
  Bytes round_start_delivered = 0;
  TimeNs now = 0;
  for (int round = 0; round < 6; ++round) {
    const Bytes cwnd = c.cwnd();
    for (Bytes sent = 0; sent < cwnd; sent += kDefaultMss) {
      AckEvent ev;
      now += from_ms(1);
      ev.now = now;
      ev.rtt = from_ms(40);  // no queue building
      ev.acked_bytes = kDefaultMss;
      ev.prior_delivered = round_start_delivered;
      delivered += kDefaultMss;
      ev.delivered = delivered;
      c.on_ack(ev);
    }
    round_start_delivered = delivered;
  }
  EXPECT_TRUE(c.in_slow_start());
}

TEST(CubicHystart, DisabledByDefault) {
  EXPECT_FALSE(CubicConfig{}.hystart);
}

// Property sweep: beta backoff holds for a range of window sizes.
class CubicBackoffSweep : public ::testing::TestWithParam<int> {};

TEST_P(CubicBackoffSweep, BackoffFactorIsBeta) {
  Cubic c;
  c.on_start(0);
  for (int i = 0; i < GetParam(); ++i) c.on_ack(ack_at(from_ms(40)));
  const auto before = static_cast<double>(c.cwnd());
  c.on_congestion_event({});
  EXPECT_NEAR(static_cast<double>(c.cwnd()) / before, 0.7, 0.01);
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, CubicBackoffSweep,
                         ::testing::Values(10, 50, 100, 400, 1000));

}  // namespace
}  // namespace bbrnash
