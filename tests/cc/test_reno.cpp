#include "cc/reno.hpp"

#include <gtest/gtest.h>

namespace bbrnash {
namespace {

AckEvent ack(Bytes acked = kDefaultMss) {
  AckEvent ev;
  ev.acked_bytes = acked;
  ev.rtt = from_ms(40);
  return ev;
}

TEST(Reno, SlowStartGrowsByAckedBytes) {
  Reno r;
  r.on_start(0);
  const Bytes before = r.cwnd();
  r.on_ack(ack());
  EXPECT_EQ(r.cwnd(), before + kDefaultMss);
}

TEST(Reno, HalvesOnCongestion) {
  Reno r;
  r.on_start(0);
  for (int i = 0; i < 30; ++i) r.on_ack(ack());
  const Bytes before = r.cwnd();
  r.on_congestion_event({});
  EXPECT_EQ(r.cwnd(), before / 2);
  EXPECT_FALSE(r.in_slow_start());
}

TEST(Reno, CongestionAvoidanceAddsOneMssPerRtt) {
  Reno r;
  r.on_start(0);
  for (int i = 0; i < 30; ++i) r.on_ack(ack());
  r.on_congestion_event({});
  const Bytes w = r.cwnd();
  // One window's worth of acked bytes -> exactly +1 MSS.
  Bytes acked = 0;
  while (acked < w) {
    r.on_ack(ack());
    acked += kDefaultMss;
  }
  EXPECT_GE(r.cwnd(), w + kDefaultMss);
  EXPECT_LE(r.cwnd(), w + 2 * kDefaultMss);
}

TEST(Reno, RecoveryFreezesWindow) {
  Reno r;
  r.on_start(0);
  r.on_congestion_event({});
  const Bytes w = r.cwnd();
  AckEvent ev = ack();
  ev.in_recovery = true;
  for (int i = 0; i < 10; ++i) r.on_ack(ev);
  EXPECT_EQ(r.cwnd(), w);
}

TEST(Reno, RtoCollapsesToOneMss) {
  Reno r;
  r.on_start(0);
  for (int i = 0; i < 30; ++i) r.on_ack(ack());
  r.on_rto(0);
  EXPECT_EQ(r.cwnd(), kDefaultMss);
  EXPECT_TRUE(r.in_slow_start());
}

TEST(Reno, MinCwndFloor) {
  Reno r;
  r.on_start(0);
  for (int i = 0; i < 20; ++i) r.on_congestion_event({});
  EXPECT_GE(r.cwnd(), RenoConfig{}.min_cwnd);
}

TEST(Reno, UnpacedByDesign) {
  Reno r;
  EXPECT_GE(r.pacing_rate(), kNoPacing);
}

}  // namespace
}  // namespace bbrnash
