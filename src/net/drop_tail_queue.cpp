#include "net/drop_tail_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbrnash {

DropTailQueue::DropTailQueue(Bytes capacity, std::uint32_t num_flows)
    : capacity_(capacity),
      per_flow_bytes_(num_flows, 0),
      per_flow_packets_(num_flows, 0),
      per_flow_min_(num_flows, 0),
      per_flow_max_(num_flows, 0),
      per_flow_drops_(num_flows, 0),
      per_flow_avg_(num_flows),
      in_group_(num_flows, false) {
  if (capacity <= 0) throw std::invalid_argument{"queue capacity must be > 0"};
  // Pre-size the packet ring for full occupancy at MSS-sized packets (the
  // common case), so steady-state enqueues never grow the ring. Smaller
  // packets just trigger the ring's normal on-demand doubling.
  packets_.reserve(
      static_cast<std::size_t>(capacity / (kDefaultMss + kHeaderBytes)) + 2);
  // Anchor every time-weighted average at t = 0 so empty periods before the
  // first packet are correctly integrated as zero occupancy.
  finalize(0);
}

bool DropTailQueue::enqueue(Packet pkt, TimeNs now) {
  if (pkt.flow >= per_flow_bytes_.size()) {
    throw std::out_of_range{"unregistered flow id"};
  }
  if (occupied_ + pkt.wire_bytes > capacity_) {
    ++per_flow_drops_[pkt.flow];
    ++total_drops_;
    return false;
  }
  occupied_ += pkt.wire_bytes;
  max_occupied_ = std::max(max_occupied_, occupied_);
  per_flow_bytes_[pkt.flow] += pkt.wire_bytes;
  ++per_flow_packets_[pkt.flow];
  bump_extremes(pkt.flow);
  if (group_active_ && in_group_[pkt.flow]) {
    group_bytes_ += pkt.wire_bytes;
    group_max_ = std::max(group_max_, group_bytes_);
  }
  integrate(pkt.flow, now);
  pkt.enqueued_at = now;
  packets_.push_back(pkt);
  return true;
}

Packet DropTailQueue::dequeue(TimeNs now) {
  if (packets_.empty()) throw std::logic_error{"dequeue on empty queue"};
  Packet pkt = packets_.front();
  packets_.pop_front();
  occupied_ -= pkt.wire_bytes;
  per_flow_bytes_[pkt.flow] -= pkt.wire_bytes;
  --per_flow_packets_[pkt.flow];
  bump_extremes(pkt.flow);
  if (group_active_ && in_group_[pkt.flow]) {
    group_bytes_ -= pkt.wire_bytes;
    group_min_ = std::min(group_min_, group_bytes_);
  }
  integrate(pkt.flow, now);
  return pkt;
}

void DropTailQueue::begin_measurement(TimeNs now) {
  total_avg_ = TimeWeightedAverage{};
  for (auto& avg : per_flow_avg_) avg = TimeWeightedAverage{};
  group_avg_ = TimeWeightedAverage{};
  // Re-seed the extreme trackers from the *current* state so warm-up
  // transients (e.g., slow-start overshoot) do not contaminate them.
  for (std::size_t f = 0; f < per_flow_bytes_.size(); ++f) {
    per_flow_min_[f] = per_flow_bytes_[f];
    per_flow_max_[f] = per_flow_bytes_[f];
  }
  group_min_ = group_bytes_;
  group_max_ = group_bytes_;
  finalize(now);
}

void DropTailQueue::track_group(std::vector<FlowId> flows) {
  std::fill(in_group_.begin(), in_group_.end(), false);
  group_bytes_ = 0;
  for (const FlowId f : flows) {
    in_group_.at(f) = true;
    group_bytes_ += per_flow_bytes_[f];
  }
  group_min_ = group_bytes_;
  group_max_ = group_bytes_;
  group_active_ = true;
}

// Each TimeWeightedAverage carries its own last-update time, so it is
// sufficient (and much cheaper) to update a flow's average only when that
// flow's occupancy changes. Called AFTER the mutation: update(t, v)
// integrates the previous value across the elapsed span, then records v.
void DropTailQueue::integrate(FlowId flow, TimeNs now) {
  const auto t = to_sec(now);
  total_avg_.update(t, static_cast<double>(occupied_));
  per_flow_avg_[flow].update(t, static_cast<double>(per_flow_bytes_[flow]));
  if (group_active_ && in_group_[flow]) {
    group_avg_.update(t, static_cast<double>(group_bytes_));
  }
}

void DropTailQueue::finalize(TimeNs now) {
  const auto t = to_sec(now);
  total_avg_.update(t, static_cast<double>(occupied_));
  for (std::size_t f = 0; f < per_flow_avg_.size(); ++f) {
    per_flow_avg_[f].update(t, static_cast<double>(per_flow_bytes_[f]));
  }
  if (group_active_) group_avg_.update(t, static_cast<double>(group_bytes_));
}

void DropTailQueue::bump_extremes(FlowId flow) {
  per_flow_min_[flow] = std::min(per_flow_min_[flow], per_flow_bytes_[flow]);
  per_flow_max_[flow] = std::max(per_flow_max_[flow], per_flow_bytes_[flow]);
}

}  // namespace bbrnash
