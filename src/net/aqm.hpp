// Active Queue Management policies for the bottleneck.
//
// The paper's §5 ("Taming the Zoo", "Implications on Internet Buffer
// Sizing") argues that in-network mechanisms must now cope with a mixed
// CUBIC/BBR population. These policies let the extension bench
// (bench_ext_aqm) ask how the equilibrium shifts when the drop-tail FIFO
// is replaced by RED or CoDel.
//
// Integration: BottleneckLink consults the policy at enqueue (early drop,
// RED-style) and at service start (head drop, CoDel-style). The policy
// never owns packets; it only votes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace bbrnash {

class AqmPolicy {
 public:
  virtual ~AqmPolicy() = default;

  /// Early-drop vote on arrival (before capacity check). `occupied` is the
  /// current queue depth in bytes, `capacity` its limit.
  virtual bool drop_on_enqueue(TimeNs now, Bytes occupied, Bytes capacity,
                               Bytes packet_bytes) = 0;

  /// Head-drop vote when a packet reaches the server. `sojourn` is the
  /// time the packet spent queued.
  virtual bool drop_on_dequeue(TimeNs now, TimeNs sojourn) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Random Early Detection (Floyd & Jacobson 1993): EWMA of queue depth;
/// drop probability ramps from 0 at min_thresh to max_p at max_thresh,
/// force-drop above max_thresh.
struct RedConfig {
  double min_thresh_frac = 0.2;   ///< of capacity
  double max_thresh_frac = 0.6;   ///< of capacity
  double max_p = 0.1;
  double ewma_weight = 0.002;     ///< classic w_q
  std::uint64_t seed = 1;
};

class RedPolicy final : public AqmPolicy {
 public:
  explicit RedPolicy(const RedConfig& cfg = {}) : cfg_(cfg), rng_(cfg.seed) {}

  bool drop_on_enqueue(TimeNs now, Bytes occupied, Bytes capacity,
                       Bytes packet_bytes) override;
  bool drop_on_dequeue(TimeNs, TimeNs) override { return false; }
  [[nodiscard]] std::string name() const override { return "red"; }

  [[nodiscard]] double avg_queue_bytes() const { return avg_; }

 private:
  RedConfig cfg_;
  Rng rng_;
  double avg_ = 0.0;
  int count_since_drop_ = -1;
};

/// CoDel (Nichols & Jacobson 2012): when packet sojourn stays above
/// `target` for a full `interval`, drop the head and shorten the next
/// deadline by 1/sqrt(drop_count) until the sojourn dips below target.
struct CoDelConfig {
  TimeNs target = from_ms(5);
  TimeNs interval = from_ms(100);
};

class CoDelPolicy final : public AqmPolicy {
 public:
  explicit CoDelPolicy(const CoDelConfig& cfg = {}) : cfg_(cfg) {}

  bool drop_on_enqueue(TimeNs, Bytes, Bytes, Bytes) override { return false; }
  bool drop_on_dequeue(TimeNs now, TimeNs sojourn) override;
  [[nodiscard]] std::string name() const override { return "codel"; }

  [[nodiscard]] std::uint64_t drops() const { return drop_count_total_; }

 private:
  [[nodiscard]] TimeNs control_law(TimeNs t, std::uint64_t count) const;

  CoDelConfig cfg_;
  bool dropping_ = false;
  TimeNs first_above_time_ = kTimeNone;
  TimeNs drop_next_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t drop_count_total_ = 0;
};

}  // namespace bbrnash
