// PacketRing: the recycled packet store for network pipeline elements.
//
// Packets in this simulator are small trivially-copyable values, so the
// classic pointer-based free-list pool degenerates into something simpler
// and faster: a ring of packet slots that are recycled in place. A dequeue
// frees the head slot and an enqueue reuses it — the "free list" is the
// unused arc of the ring — so once a queue reaches its high-water
// occupancy (bounded by the buffer size B), the per-packet path performs
// ZERO heap allocations. std::deque, by contrast, allocated and released
// a ~512-byte node for every handful of packets, which showed up as the
// dominant allocation source in the bottleneck hot path.
//
// Used by DropTailQueue (and available to any AQM variant that stores
// packets). DelayLine and ImpairmentStage do not store packets at all:
// their in-flight copies ride inside pooled event records
// (see sim/event_queue.hpp), which is the same recycling idea applied to
// the event heap.
#pragma once

#include "net/packet.hpp"
#include "util/ring_deque.hpp"

namespace bbrnash {

using PacketRing = RingDeque<Packet>;

}  // namespace bbrnash
