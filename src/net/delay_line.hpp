// DelayLine: a fixed-latency, infinite-capacity pipe.
//
// Models propagation delay on an uncongested path segment: everything put
// in comes out `delay` later, in order. Used for the forward path from the
// bottleneck to each receiver and for the entire reverse (ACK) path.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace bbrnash {

template <typename T>
class DelayLine {
 public:
  using Sink = std::function<void(const T&)>;

  DelayLine(Simulator& sim, TimeNs delay) : sim_(sim), delay_(delay) {}

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] TimeNs delay() const noexcept { return delay_; }

  void send(T item) {
    ++pending_;
    sim_.schedule_in(delay_, [this, item = std::move(item)] {
      --pending_;
      if (sink_) sink_(item);
    });
  }

  /// Items currently inside the pipe — the conservation audit's in-flight
  /// term for this path segment.
  [[nodiscard]] std::uint64_t pending() const noexcept { return pending_; }

 private:
  Simulator& sim_;
  TimeNs delay_;
  Sink sink_;
  std::uint64_t pending_ = 0;
};

}  // namespace bbrnash
