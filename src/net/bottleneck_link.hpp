// BottleneckLink: a rate server draining a drop-tail queue.
//
// Packets offered via send() enter the queue (or are dropped). A single
// serialization "server" drains the queue at the link rate; each packet is
// handed to the sink when its last byte has been serialized. Propagation
// delay to the receiver is the next hop's concern (see DelayLine), so this
// class models exactly the paper's bottleneck: capacity C plus buffer B.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "net/aqm.hpp"
#include "net/drop_tail_queue.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace bbrnash {

class BottleneckLink {
 public:
  using Sink = std::function<void(const Packet&)>;
  /// Invoked when a packet is dropped at the tail (for loss diagnostics).
  using DropHook = std::function<void(const Packet&)>;

  BottleneckLink(Simulator& sim, BytesPerSec rate, Bytes buffer_capacity,
                 std::uint32_t num_flows)
      : sim_(sim), rate_(rate), queue_(buffer_capacity, num_flows) {}

  BottleneckLink(const BottleneckLink&) = delete;
  BottleneckLink& operator=(const BottleneckLink&) = delete;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Installs an AQM policy (RED/CoDel/...). Null restores pure drop-tail.
  void set_aqm(std::unique_ptr<AqmPolicy> aqm) { aqm_ = std::move(aqm); }
  [[nodiscard]] const AqmPolicy* aqm() const { return aqm_.get(); }

  /// Offers a packet to the bottleneck. Returns false when the AQM or the
  /// drop-tail capacity check rejected it.
  bool send(const Packet& pkt) {
    if (aqm_ != nullptr &&
        aqm_->drop_on_enqueue(sim_.now(), queue_.occupied_bytes(),
                              queue_.capacity(), pkt.wire_bytes)) {
      queue_.note_policy_drop(pkt.flow);
      if (drop_hook_) drop_hook_(pkt);
      return false;
    }
    if (!queue_.enqueue(pkt, sim_.now())) {
      if (drop_hook_) drop_hook_(pkt);
      return false;
    }
    if (!busy_) start_service();
    return true;
  }

  [[nodiscard]] DropTailQueue& queue() noexcept { return queue_; }
  [[nodiscard]] const DropTailQueue& queue() const noexcept { return queue_; }
  [[nodiscard]] BytesPerSec rate() const noexcept { return rate_; }

  /// Changes the service rate (link flaps, rate schedules). Takes effect at
  /// the next service start: the packet currently being serialized finishes
  /// at the old rate, like a NIC mid-frame. Rates must stay positive —
  /// a packet that starts serializing at rate ~0 would pin the server until
  /// its far-future completion even after the rate recovers, so outages are
  /// modelled as a deep rate reduction (see Scenario::validate).
  void set_rate(BytesPerSec rate) noexcept { rate_ = rate; }

  /// Total bytes fully serialized since construction (link utilization).
  [[nodiscard]] Bytes bytes_served() const noexcept { return bytes_served_; }
  /// Busy time accumulated by the server (for utilization = busy/elapsed).
  [[nodiscard]] TimeNs busy_time() const noexcept { return busy_time_; }

 private:
  void start_service() {
    // CoDel-style head drops happen as packets reach the server.
    while (aqm_ != nullptr && !queue_.empty()) {
      const Packet& head = peek_head();
      const TimeNs sojourn =
          head.enqueued_at == kTimeNone ? 0 : sim_.now() - head.enqueued_at;
      if (!aqm_->drop_on_dequeue(sim_.now(), sojourn)) break;
      Packet dropped = queue_.dequeue(sim_.now());
      queue_.note_policy_drop(dropped.flow);
      if (drop_hook_) drop_hook_(dropped);
    }
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    // Peek the head: it is dequeued at *completion* so that queued bytes
    // include the in-service packet, matching how a NIC ring + tc qdisc
    // accounts buffer occupancy.
    const Packet& head = peek_head();
    const TimeNs tx = serialization_time(head.wire_bytes, rate_);
    busy_time_ += tx;
    sim_.schedule_in(tx, [this] { complete_service(); });
  }

  void complete_service() {
    Packet pkt = queue_.dequeue(sim_.now());
    bytes_served_ += pkt.wire_bytes;
    if (sink_) sink_(pkt);
    if (!queue_.empty()) {
      start_service();
    } else {
      busy_ = false;
    }
  }

  [[nodiscard]] const Packet& peek_head() const { return queue_.front(); }

  Simulator& sim_;
  BytesPerSec rate_;
  DropTailQueue queue_;
  Sink sink_;
  DropHook drop_hook_;
  std::unique_ptr<AqmPolicy> aqm_;
  bool busy_ = false;
  Bytes bytes_served_ = 0;
  TimeNs busy_time_ = 0;
};

}  // namespace bbrnash
