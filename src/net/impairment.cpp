#include "net/impairment.hpp"

#include <stdexcept>
#include <string>

namespace bbrnash {

namespace {

void check_prob(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument{std::string{name} + " must be in [0, 1]"};
  }
}

void check_nonneg(TimeNs t, const char* name) {
  if (t < 0) {
    throw std::invalid_argument{std::string{name} + " must be >= 0"};
  }
}

}  // namespace

void ImpairmentConfig::validate() const {
  check_prob(loss_rate, "impairment loss_rate");
  check_prob(gilbert.p_good_to_bad, "gilbert p_good_to_bad");
  check_prob(gilbert.p_bad_to_good, "gilbert p_bad_to_good");
  check_prob(gilbert.loss_good, "gilbert loss_good");
  check_prob(gilbert.loss_bad, "gilbert loss_bad");
  if (gilbert.enabled() && gilbert.p_bad_to_good <= 0.0) {
    throw std::invalid_argument{
        "gilbert p_bad_to_good must be > 0 when the chain is enabled "
        "(otherwise the bad state is absorbing)"};
  }
  check_prob(reorder_rate, "impairment reorder_rate");
  check_prob(duplicate_rate, "impairment duplicate_rate");
  check_nonneg(reorder_delay, "impairment reorder_delay");
  check_nonneg(jitter, "impairment jitter");
  check_nonneg(spikes.period, "delay-spike period");
  check_nonneg(spikes.width, "delay-spike width");
  check_nonneg(spikes.magnitude, "delay-spike magnitude");
  if (reorder_rate > 0.0 && reorder_delay <= 0) {
    throw std::invalid_argument{
        "impairment reorder_rate needs a positive reorder_delay"};
  }
  if (spikes.period > 0 && spikes.width > spikes.period) {
    throw std::invalid_argument{
        "delay-spike width must not exceed the period"};
  }
}

}  // namespace bbrnash
