// Deterministic network-impairment injection.
//
// The paper's model (Eqs. 18-25) assumes a pristine drop-tail path: no
// random loss, no reordering, a constant-rate bottleneck. Real paths are
// not pristine, and BBR's sharing behaviour is known to shift under random
// loss and non-ideal conditions (Sarpkaya et al.; Tang). ImpairmentStage is
// a composable pipeline element that sits on the access path (data packets,
// sender -> bottleneck) and/or on the ACK path and injects, fully
// deterministically under a fixed seed:
//   * i.i.d. random loss,
//   * Gilbert-Elliott two-state burst loss,
//   * packet reordering (a held-back packet overtaken by its successors),
//   * packet duplication,
//   * per-packet delay jitter and periodic delay spikes.
// Time-varying bottleneck capacity (link flaps, rate schedules) is the
// bottleneck's own concern — see BottleneckLink::set_rate and
// Scenario::capacity_schedule — because serialization happens there.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bbrnash {

/// Two-state Markov loss (Gilbert-Elliott). Each packet first advances the
/// chain, then is dropped with the current state's loss probability. The
/// stationary bad-state share is p_good_to_bad / (p_good_to_bad +
/// p_bad_to_good), so the long-run loss rate is
///   pi_bad * loss_bad + (1 - pi_bad) * loss_good.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.0;  ///< per-packet good->bad transition prob
  double p_bad_to_good = 1.0;  ///< per-packet bad->good transition prob
  double loss_good = 0.0;      ///< drop probability while in the good state
  double loss_bad = 1.0;       ///< drop probability while in the bad state

  [[nodiscard]] bool enabled() const noexcept { return p_good_to_bad > 0.0; }
  /// Stationary long-run loss rate of the chain.
  [[nodiscard]] double expected_loss_rate() const noexcept {
    if (!enabled()) return 0.0;
    const double pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good);
    return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
  }
};

/// Periodic delay spikes: every `period` of simulated time the path's extra
/// delay rises by `magnitude` for `width` (deterministic in sim time — a
/// stand-in for bufferbloat episodes or WiFi retry storms on the access
/// path).
struct DelaySpikeConfig {
  TimeNs period = 0;     ///< 0 disables spikes
  TimeNs width = 0;      ///< spike duration per period
  TimeNs magnitude = 0;  ///< extra delay while inside a spike
};

struct ImpairmentConfig {
  double loss_rate = 0.0;        ///< i.i.d. drop probability
  GilbertElliottConfig gilbert;  ///< burst loss (composes with loss_rate)
  double reorder_rate = 0.0;     ///< probability a packet is held back
  TimeNs reorder_delay = 0;      ///< hold-back time for reordered packets
  double duplicate_rate = 0.0;   ///< probability a packet arrives twice
  TimeNs jitter = 0;             ///< per-packet extra delay ~ U[0, jitter)
  DelaySpikeConfig spikes;

  /// True when any knob deviates from the pristine path.
  [[nodiscard]] bool any() const noexcept {
    return loss_rate > 0.0 || gilbert.enabled() || reorder_rate > 0.0 ||
           duplicate_rate > 0.0 || jitter > 0 || spikes.period > 0;
  }

  /// Throws std::invalid_argument naming the offending knob.
  void validate() const;
};

/// Counters every stage keeps (and RunResult aggregates across stages).
struct ImpairmentCounters {
  std::uint64_t offered = 0;     ///< packets entering the stage
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;  ///< extra copies injected
  std::uint64_t reordered = 0;   ///< packets held back
};

/// Internal loss/markings decision engine, shared by all stage
/// instantiations so the dice-roll order is fixed and testable on its own.
class ImpairmentDice {
 public:
  ImpairmentDice(const ImpairmentConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  /// Advances the loss processes; true = drop this packet.
  [[nodiscard]] bool roll_loss() {
    bool drop = false;
    if (cfg_.gilbert.enabled()) {
      const double flip =
          in_bad_ ? cfg_.gilbert.p_bad_to_good : cfg_.gilbert.p_good_to_bad;
      if (rng_.chance(flip)) in_bad_ = !in_bad_;
      const double p = in_bad_ ? cfg_.gilbert.loss_bad : cfg_.gilbert.loss_good;
      drop = p > 0.0 && rng_.chance(p);
    }
    if (!drop && cfg_.loss_rate > 0.0) drop = rng_.chance(cfg_.loss_rate);
    return drop;
  }

  /// Extra path delay for a surviving packet at simulated time `now`.
  [[nodiscard]] TimeNs roll_delay(TimeNs now, bool* reordered) {
    TimeNs extra = 0;
    if (cfg_.jitter > 0) {
      extra += static_cast<TimeNs>(
          rng_.next_below(static_cast<std::uint64_t>(cfg_.jitter)));
    }
    const auto& sp = cfg_.spikes;
    if (sp.period > 0 && sp.width > 0 && (now % sp.period) < sp.width) {
      extra += sp.magnitude;
    }
    *reordered = cfg_.reorder_rate > 0.0 && rng_.chance(cfg_.reorder_rate);
    if (*reordered) extra += cfg_.reorder_delay;
    return extra;
  }

  [[nodiscard]] bool roll_duplicate() {
    return cfg_.duplicate_rate > 0.0 && rng_.chance(cfg_.duplicate_rate);
  }

  [[nodiscard]] bool in_bad_state() const noexcept { return in_bad_; }

 private:
  ImpairmentConfig cfg_;
  Rng rng_;
  bool in_bad_ = false;  ///< Gilbert-Elliott chain starts in the good state
};

/// A seeded impairment pipeline element for one direction of one flow (T is
/// Packet on the data path, Ack on the reverse path). Items that survive
/// the loss roll are forwarded to the sink after the rolled extra delay;
/// zero extra delay forwards synchronously so the pristine configuration
/// adds no event-queue traffic.
template <typename T>
class ImpairmentStage {
 public:
  using Sink = std::function<void(const T&)>;

  ImpairmentStage(Simulator& sim, const ImpairmentConfig& cfg,
                  std::uint64_t seed)
      : sim_(sim), dice_(cfg, seed) {
    cfg.validate();
  }

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void send(const T& item) {
    ++counters_.offered;
    if (dice_.roll_loss()) {
      ++counters_.dropped;
      return;
    }
    bool reordered = false;
    const TimeNs extra = dice_.roll_delay(sim_.now(), &reordered);
    if (reordered) ++counters_.reordered;
    forward(item, extra);
    if (dice_.roll_duplicate()) {
      ++counters_.duplicated;
      // The copy trails the original by one ns so delivery order (and the
      // same-time FIFO tie-break) is stable.
      forward(item, extra + 1);
    }
  }

  [[nodiscard]] const ImpairmentCounters& counters() const noexcept {
    return counters_;
  }

  /// Items delayed inside the stage and not yet forwarded — the
  /// conservation audit's in-flight term for this stage.
  [[nodiscard]] std::uint64_t pending() const noexcept { return pending_; }

 private:
  void forward(const T& item, TimeNs extra) {
    if (extra <= 0) {
      if (sink_) sink_(item);
      return;
    }
    ++pending_;
    sim_.schedule_in(extra, [this, item] {
      --pending_;
      if (sink_) sink_(item);
    });
  }

  Simulator& sim_;
  ImpairmentDice dice_;
  Sink sink_;
  ImpairmentCounters counters_;
  std::uint64_t pending_ = 0;
};

}  // namespace bbrnash
