// Wire-level packet representation.
//
// The simulator is byte-accurate: `wire_bytes` (payload + header) is what
// occupies queue space and serialization time. Sender-side bookkeeping
// (delivery-rate snapshots, send ordering) lives in the sender, keyed by
// (flow, seq) — packets carry only what a real wire would.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace bbrnash {

using FlowId = std::uint32_t;
using SeqNo = std::uint64_t;

/// Default Ethernet-ish sizing: 1448 B of payload + 52 B TCP/IP header.
inline constexpr Bytes kDefaultMss = 1448;
inline constexpr Bytes kHeaderBytes = 52;

struct Packet {
  FlowId flow = 0;
  SeqNo seq = 0;          ///< packet sequence number (per flow, 0-based)
  Bytes payload_bytes = kDefaultMss;
  Bytes wire_bytes = kDefaultMss + kHeaderBytes;
  TimeNs enqueued_at = kTimeNone;  ///< set by the bottleneck on entry
  bool is_retransmit = false;
};

/// Acknowledgement travelling the reverse path. ACKs are modelled as
/// delay-only (no reverse-path congestion), as in the paper's testbed where
/// the reverse direction was uncongested.
struct Ack {
  FlowId flow = 0;
  SeqNo acked_seq = 0;   ///< the packet that triggered this ACK (SACK-like)
  SeqNo cum_ack = 0;     ///< next in-order sequence expected by receiver
  TimeNs queue_delay_echo = 0;  ///< bottleneck sojourn of the acked packet
};

}  // namespace bbrnash
