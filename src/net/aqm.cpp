#include "net/aqm.hpp"

#include <algorithm>
#include <cmath>

namespace bbrnash {

bool RedPolicy::drop_on_enqueue(TimeNs now, Bytes occupied, Bytes capacity,
                                Bytes packet_bytes) {
  (void)now;
  (void)packet_bytes;
  avg_ = (1.0 - cfg_.ewma_weight) * avg_ +
         cfg_.ewma_weight * static_cast<double>(occupied);

  const double min_th = cfg_.min_thresh_frac * static_cast<double>(capacity);
  const double max_th = cfg_.max_thresh_frac * static_cast<double>(capacity);

  if (avg_ < min_th) {
    count_since_drop_ = -1;
    return false;
  }
  if (avg_ >= max_th) {
    count_since_drop_ = 0;
    return true;
  }
  // Gentle region: probability ramps linearly, spaced-out via the classic
  // count correction so drops are roughly uniform, not bursty.
  ++count_since_drop_;
  const double pb = cfg_.max_p * (avg_ - min_th) / (max_th - min_th);
  const double pa =
      pb / std::max(1e-9, 1.0 - static_cast<double>(count_since_drop_) * pb);
  if (rng_.chance(std::clamp(pa, 0.0, 1.0))) {
    count_since_drop_ = 0;
    return true;
  }
  return false;
}

TimeNs CoDelPolicy::control_law(TimeNs t, std::uint64_t count) const {
  return t + static_cast<TimeNs>(
                 static_cast<double>(cfg_.interval) /
                 std::sqrt(static_cast<double>(std::max<std::uint64_t>(count, 1))));
}

bool CoDelPolicy::drop_on_dequeue(TimeNs now, TimeNs sojourn) {
  const bool below = sojourn < cfg_.target;
  if (below) {
    first_above_time_ = kTimeNone;
    if (dropping_) dropping_ = false;
    return false;
  }

  if (!dropping_) {
    if (first_above_time_ == kTimeNone) {
      first_above_time_ = now + cfg_.interval;
      return false;
    }
    if (now < first_above_time_) return false;
    // Sojourn has been above target for a full interval: start dropping.
    dropping_ = true;
    // Restart count near the last run's value if drops were recent (the
    // CoDel "memory" heuristic, simplified to a fresh start here).
    count_ = count_ > 2 ? count_ - 2 : 1;
    drop_next_ = control_law(now, count_);
    ++drop_count_total_;
    return true;
  }

  if (now >= drop_next_) {
    ++count_;
    ++drop_count_total_;
    drop_next_ = control_law(drop_next_, count_);
    return true;
  }
  return false;
}

}  // namespace bbrnash
