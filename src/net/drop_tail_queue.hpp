// Byte-accurate FIFO drop-tail queue with the instrumentation the paper's
// model reasons about: time-averaged total and per-flow occupancy, per-flow
// minimum/maximum occupancy, and drop accounting.
//
// This class is a pure data structure; service timing is driven by
// BottleneckLink.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace bbrnash {

class DropTailQueue {
 public:
  /// `capacity` is the maximum queued bytes (the paper's B). `num_flows`
  /// sizes the per-flow instrumentation arrays.
  DropTailQueue(Bytes capacity, std::uint32_t num_flows);

  /// Attempts to enqueue; returns false (and records a drop) when the
  /// packet does not fit. `now` drives occupancy integration.
  bool enqueue(Packet pkt, TimeNs now);

  /// Pops the head-of-line packet. Pre: !empty().
  Packet dequeue(TimeNs now);

  [[nodiscard]] bool empty() const noexcept { return packets_.empty(); }
  /// Head-of-line packet (the one in service). Pre: !empty().
  [[nodiscard]] const Packet& front() const { return packets_.front(); }
  [[nodiscard]] Bytes occupied_bytes() const noexcept { return occupied_; }
  /// Largest total occupancy ever reached (drives the always-on
  /// "queue never exceeds B" invariant guard in the experiment layer).
  [[nodiscard]] Bytes max_occupied_bytes() const noexcept {
    return max_occupied_;
  }
  [[nodiscard]] Bytes capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t packet_count() const noexcept { return packets_.size(); }

  [[nodiscard]] Bytes flow_occupancy(FlowId flow) const {
    return per_flow_bytes_.at(flow);
  }
  /// Packets (not bytes) of one flow currently queued — the conservation
  /// audit's in-flight term for the bottleneck buffer.
  [[nodiscard]] std::uint32_t flow_packets(FlowId flow) const {
    return per_flow_packets_.at(flow);
  }

  // --- Instrumentation -------------------------------------------------
  // Occupancy averages are time-weighted and only meaningful after at
  // least one enqueue/dequeue; begin_measurement() restarts the averaging
  // window (used to discard warm-up transients).

  void begin_measurement(TimeNs now);

  /// Flushes all time-weighted integrals up to `now`. Call once before
  /// reading the avg_* accessors at the end of a run.
  void finalize(TimeNs now);

  /// Time-averaged total occupancy (bytes) since begin_measurement().
  [[nodiscard]] double avg_occupied_bytes() const {
    return total_avg_.average();
  }
  /// Time-averaged occupancy of one flow (the model's b_b / per-flow b_c).
  [[nodiscard]] double avg_flow_occupancy(FlowId flow) const {
    return per_flow_avg_.at(flow).average();
  }
  /// Smallest/largest occupancy one flow reached inside the measurement
  /// window (the model's b_cmin / b_cmax when aggregated over CUBIC flows).
  [[nodiscard]] Bytes min_flow_occupancy(FlowId flow) const {
    return per_flow_min_.at(flow);
  }
  [[nodiscard]] Bytes max_flow_occupancy(FlowId flow) const {
    return per_flow_max_.at(flow);
  }

  /// Counts a drop decided outside the capacity check (AQM early/head
  /// drops) so per-flow loss accounting stays complete.
  void note_policy_drop(FlowId flow) {
    ++per_flow_drops_.at(flow);
    ++total_drops_;
  }

  [[nodiscard]] std::uint64_t drops(FlowId flow) const {
    return per_flow_drops_.at(flow);
  }
  [[nodiscard]] std::uint64_t total_drops() const noexcept { return total_drops_; }

  /// Aggregate occupancy extremes for a *set* of flows require sampling the
  /// sum at every transition; expose the current totals so callers can hook
  /// a sampler, and track group minima natively for the common CUBIC-set
  /// case used in model validation.
  void track_group(std::vector<FlowId> flows);
  [[nodiscard]] Bytes group_min_occupancy() const noexcept { return group_min_; }
  [[nodiscard]] Bytes group_max_occupancy() const noexcept { return group_max_; }
  [[nodiscard]] double group_avg_occupancy() const { return group_avg_.average(); }

 private:
  void integrate(FlowId flow, TimeNs now);
  void bump_extremes(FlowId flow);

  Bytes capacity_;
  Bytes occupied_ = 0;
  Bytes max_occupied_ = 0;
  PacketRing packets_;  ///< recycled slots: no allocation at steady state

  std::vector<Bytes> per_flow_bytes_;
  std::vector<std::uint32_t> per_flow_packets_;
  std::vector<Bytes> per_flow_min_;
  std::vector<Bytes> per_flow_max_;
  std::vector<std::uint64_t> per_flow_drops_;
  std::uint64_t total_drops_ = 0;

  TimeWeightedAverage total_avg_;
  std::vector<TimeWeightedAverage> per_flow_avg_;

  std::vector<bool> in_group_;
  Bytes group_bytes_ = 0;
  Bytes group_min_ = 0;
  Bytes group_max_ = 0;
  TimeWeightedAverage group_avg_;
  bool group_active_ = false;
};

}  // namespace bbrnash
