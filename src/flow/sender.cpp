#include "flow/sender.hpp"

#include <algorithm>
#include <cassert>

namespace bbrnash {

namespace {

CcVariant adapt(std::unique_ptr<CongestionControl> cc) {
  assert(cc && "sender requires a congestion control instance");
  return CcVariant{std::move(cc)};
}

}  // namespace

Sender::Sender(Simulator& sim, FlowId flow, SenderConfig cfg, CcVariant cc,
               TransmitFn transmit)
    : sim_(sim),
      flow_(flow),
      cfg_(cfg),
      cc_(std::move(cc)),
      transmit_(std::move(transmit)) {}

Sender::Sender(Simulator& sim, FlowId flow, SenderConfig cfg,
               std::unique_ptr<CongestionControl> cc, TransmitFn transmit)
    : Sender(sim, flow, cfg, adapt(std::move(cc)), std::move(transmit)) {}

void Sender::start(TimeNs at) {
  assert(!started_);
  started_ = true;
  sim_.schedule_at(at, [this] {
    cc_.on_start(sim_.now());
    delivered_time_ = sim_.now();
    maybe_send();
  });
}

void Sender::begin_measurement() {
  measuring_ = true;
  rtt_stats_.reset();
  inflight_avg_ = TimeWeightedAverage{};
  inflight_avg_.update(to_sec(sim_.now()), static_cast<double>(inflight_));
  delivered_mark_ = delivered_;
  retransmits_mark_ = retransmits_;
  rtos_mark_ = rtos_;
}

void Sender::note_inflight_change() {
  if (measuring_) {
    inflight_avg_.update(to_sec(sim_.now()), static_cast<double>(inflight_));
  }
}

Sender::TxRecord* Sender::record_for(SeqNo seq) {
  if (seq < base_seq_) return nullptr;
  const auto idx = static_cast<std::size_t>(seq - base_seq_);
  if (idx >= records_.size()) return nullptr;
  return &records_[idx];
}

void Sender::maybe_send() {
  // Every gate input is loop-invariant: the loop never runs a CC callback
  // and never advances the clock (transmit_ only enqueues/schedules), so
  // cwnd, now, the pacing rate, and the derived burst geometry are read
  // once per dispatch instead of once per packet.
  const Bytes window = cc_.cwnd();
  const TimeNs now = sim_.now();
  const BytesPerSec rate = cc_.pacing_rate();
  const bool paced = rate < kNoPacing;
  TimeNs pkt_time = 0;
  TimeNs burst_ahead = 0;
  if (paced) {
    const Bytes wire = cfg_.mss + cfg_.header_bytes;
    pkt_time = serialization_time(wire, rate);
    const int quantum = std::max(
        1,
        std::min(cfg_.pacing_quantum_segments, cc_.pacing_burst_segments()));
    burst_ahead = pkt_time * (quantum - 1);
  }
  while (true) {
    // Anything to send? Retransmissions take priority over new data.
    const bool have_retx = !retx_queue_.empty();
    // cwnd gate (bytes of payload in flight).
    if (inflight_ + cfg_.mss > window) return;

    // Pacing gate: a token bucket with depth `pacing_quantum_segments`.
    // The pacing clock may run up to (Q-1) packet-times ahead of now, so
    // packets leave in TSO-like bursts of up to Q at the exact long-run
    // rate.
    if (paced && next_send_allowed_ > now + burst_ahead) {
      if (!pacing_timer_armed_) {
        pacing_timer_armed_ = true;
        sim_.schedule_at(next_send_allowed_ - burst_ahead, [this] {
          pacing_timer_armed_ = false;
          maybe_send();
        });
      }
      return;
    }

    SeqNo seq;
    bool is_retx = false;
    if (have_retx) {
      seq = retx_queue_.front();
      retx_queue_.pop_front();
      // The record may have been delivered meanwhile (stale entry) —
      // possible only via cumulative coverage; skip those.
      TxRecord* rec = record_for(seq);
      if (rec == nullptr || rec->state != TxState::kLost) continue;
      is_retx = true;
    } else {
      // Finite application: no new data past the transfer size.
      if (cfg_.transfer_bytes > 0 &&
          static_cast<Bytes>(next_seq_) * cfg_.mss >= cfg_.transfer_bytes) {
        return;
      }
      seq = next_seq_;
    }
    transmit_seq(seq, is_retx);

    if (paced) {
      // Tokens cap at the bucket depth: a long idle period grants at most
      // one full burst, never unbounded catch-up.
      next_send_allowed_ =
          std::max(next_send_allowed_, now - burst_ahead) + pkt_time;
    }
  }
}

void Sender::transmit_seq(SeqNo seq, bool is_retransmit) {
  const TimeNs now = sim_.now();

  if (!is_retransmit) {
    assert(seq == next_seq_);
    ++next_seq_;
    records_.push_back(TxRecord{});
  }
  TxRecord* rec = record_for(seq);
  assert(rec != nullptr);

  // tcp_rate_skb_sent: restart the rate window after an idle pipe so stale
  // timestamps cannot produce bogus intervals.
  if (inflight_ == 0) {
    first_tx_time_ = now;
    delivered_time_ = now;
  }
  rec->send_time = now;
  rec->send_order = next_send_order_++;
  rec->delivered_at_send = delivered_;
  rec->delivered_time_at_send = delivered_time_;
  rec->first_tx_at_send = first_tx_time_;
  rec->state = TxState::kInflight;
  if (is_retransmit) {
    ++rec->retx_count;
    ++retransmits_;
  }
  inflight_by_order_.insert(rec->send_order, seq);
  inflight_ += cfg_.mss;
  note_inflight_change();

  Packet pkt;
  pkt.flow = flow_;
  pkt.seq = seq;
  pkt.payload_bytes = cfg_.mss;
  pkt.wire_bytes = cfg_.mss + cfg_.header_bytes;
  pkt.is_retransmit = is_retransmit;
  transmit_(pkt);

  if (!rto_armed_) arm_rto();
}

void Sender::on_ack(const Ack& ack) {
  const TimeNs now = sim_.now();
  ++acks_received_;

  Bytes newly_acked = 0;
  TimeNs rtt_sample = kTimeNone;
  BytesPerSec rate_sample = 0;
  Bytes prior_delivered = 0;

  TxRecord* rec = record_for(ack.acked_seq);
  if (rec != nullptr && rec->state != TxState::kDelivered) {
    // A lost-marked packet can still be "delivered" here only if the loss
    // marking was spurious; with a FIFO no-reorder network this happens
    // only for the original transmission racing a retransmit, which is
    // harmless — we count the delivery once.
    if (rec->state == TxState::kInflight) {
      inflight_ -= cfg_.mss;
      note_inflight_change();
      inflight_by_order_.erase(rec->send_order);
    }
    rec->state = TxState::kDelivered;
    newly_acked = cfg_.mss;
    delivered_ += cfg_.mss;
    delivered_time_ = now;
    rto_backoff_ = 0;  // forward progress: reset the Karn backoff
    if (completed_at_ == kTimeNone && cfg_.transfer_bytes > 0 &&
        delivered_ >= cfg_.transfer_bytes) {
      completed_at_ = now;
    }

    if (rec->retx_count == 0) {
      rtt_sample = now - rec->send_time;
      update_rtt(rtt_sample);
      if (measuring_) rtt_stats_.add(to_ms(rtt_sample));
    }

    prior_delivered = rec->delivered_at_send;

    // Delivery-rate sample, tcp_rate.c style: the interval is the longer of
    // the send phase (send spacing of the window this packet closes) and
    // the ack phase. Using only the ack phase would wildly over-estimate
    // bandwidth when a retransmitted hole fills and a burst of backlogged
    // deliveries collapses into a few milliseconds.
    const TimeNs snd_interval = rec->send_time - rec->first_tx_at_send;
    const TimeNs ack_interval = now - rec->delivered_time_at_send;
    const TimeNs interval = std::max(snd_interval, ack_interval);
    if (interval > 0) {
      rate_sample = static_cast<double>(delivered_ - rec->delivered_at_send) /
                    to_sec(interval);
    }
    // tcp_rate_skb_delivered: the send phase of the next sample starts at
    // this packet's transmission.
    first_tx_time_ = std::max(first_tx_time_, rec->send_time);

    highest_delivered_order_ =
        std::max(highest_delivered_order_, rec->send_order);
  }

  // Retire fully-covered records from the front.
  while (!records_.empty() && base_seq_ + 1 <= ack.cum_ack &&
         records_.front().state == TxState::kDelivered) {
    records_.pop_front();
    ++base_seq_;
  }

  detect_losses();

  // Exit recovery once a packet sent after the episode began is delivered.
  if (in_recovery_ && highest_delivered_order_ >= recovery_exit_order_) {
    in_recovery_ = false;
    episode_lost_ = 0;
  }

  // Note forward progress for the lazy RTO timer (re-arming the heap timer
  // on every ACK would leave one dead entry per ACK in the event queue).
  last_progress_time_ = now;
  if (!rto_armed_ && !inflight_by_order_.empty()) arm_rto();

  if (newly_acked > 0) {
    AckEvent ev;
    ev.now = now;
    ev.rtt = rtt_sample;
    ev.acked_bytes = newly_acked;
    ev.delivered = delivered_;
    ev.prior_delivered = prior_delivered;
    ev.delivery_rate = rate_sample;
    ev.rate_app_limited = false;
    ev.inflight = inflight_;
    ev.in_recovery = in_recovery_;
    cc_.on_ack(ev);
  }

  maybe_send();
}

void Sender::detect_losses() {
  if (highest_delivered_order_ < static_cast<std::uint64_t>(cfg_.dupthresh)) {
    return;
  }
  const std::uint64_t threshold =
      highest_delivered_order_ - static_cast<std::uint64_t>(cfg_.dupthresh);
  Bytes newly_lost = 0;
  while (!inflight_by_order_.empty() &&
         inflight_by_order_.front_order() <= threshold) {
    mark_lost(inflight_by_order_.front_seq());  // erases the front entry
    newly_lost += cfg_.mss;
  }
  if (newly_lost > 0) enter_recovery_if_needed(newly_lost);
}

void Sender::mark_lost(SeqNo seq) {
  TxRecord* rec = record_for(seq);
  assert(rec != nullptr && rec->state == TxState::kInflight);
  rec->state = TxState::kLost;
  inflight_by_order_.erase(rec->send_order);
  inflight_ -= cfg_.mss;
  note_inflight_change();
  retx_queue_.push_back(seq);
  episode_lost_ += cfg_.mss;
  cc_.on_packet_lost(sim_.now(), cfg_.mss, inflight_);
}

void Sender::enter_recovery_if_needed(Bytes newly_lost) {
  (void)newly_lost;
  if (in_recovery_) return;
  in_recovery_ = true;
  recovery_exit_order_ = next_send_order_;
  LossEvent ev;
  ev.now = sim_.now();
  ev.inflight = inflight_;
  ev.lost_bytes = episode_lost_;
  ev.delivered = delivered_;
  cc_.on_congestion_event(ev);
}

TimeNs Sender::current_rto() const {
  if (srtt_ == kTimeNone) return cfg_.initial_rto;
  return std::max(cfg_.min_rto, srtt_ + 4 * rttvar_);
}

void Sender::arm_rto() {
  assert(!rto_armed_);
  if (inflight_by_order_.empty()) return;
  // Lazy timer, semantics of Linux's tcp_rearm_rto (restart relative to the
  // last forward progress) without a cancel per ACK: the timer fires at the
  // expiry computed when armed, and the handler re-arms instead of firing
  // when progress has pushed the legitimate deadline into the future.
  last_progress_time_ = std::max(last_progress_time_, sim_.now());
  const TimeNs expiry = last_progress_time_ + (current_rto() << rto_backoff_);
  sim_.schedule_at(std::max(expiry, sim_.now() + 1), [this] {
    rto_armed_ = false;
    on_rto_fired();
  });
  rto_armed_ = true;
}

void Sender::on_rto_fired() {
  if (inflight_by_order_.empty()) return;  // everything was delivered
  const TimeNs legitimate =
      last_progress_time_ + (current_rto() << rto_backoff_);
  if (sim_.now() < legitimate) {
    // Progress happened since the timer was armed: not a real timeout.
    arm_rto();
    return;
  }
  ++rtos_;
  if (rto_backoff_ < 6) ++rto_backoff_;
  // Declare everything in flight lost and restart from the oldest hole.
  while (!inflight_by_order_.empty()) {
    mark_lost(inflight_by_order_.front_seq());
  }
  // RTO resets any recovery episode: the CC gets the dedicated signal.
  in_recovery_ = false;
  episode_lost_ = 0;
  cc_.on_rto(sim_.now());
  // Back off the RTT estimator's variance (classic Karn backoff is modelled
  // by simply doubling the smoothed estimate's variance term).
  rttvar_ *= 2;
  maybe_send();
  if (!rto_armed_ && !inflight_by_order_.empty()) arm_rto();
}

void Sender::update_rtt(TimeNs sample) {
  if (srtt_ == kTimeNone) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    return;
  }
  const TimeNs err = std::abs(sample - srtt_);
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + sample) / 8;
}

}  // namespace bbrnash
