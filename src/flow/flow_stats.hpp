// Per-flow measurement results extracted after a simulation run.
#pragma once

#include <cstdint>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace bbrnash {

struct FlowStats {
  double goodput_bps = 0.0;        ///< payload bytes/sec over the window
  double avg_rtt_ms = 0.0;         ///< mean of RTT samples in the window
  double min_rtt_ms = 0.0;
  double max_rtt_ms = 0.0;
  std::uint64_t retransmits = 0;   ///< packets retransmitted in the window
  std::uint64_t rtos = 0;          ///< RTO episodes in the window
  double avg_inflight_bytes = 0.0; ///< time-averaged bytes in flight
  /// Flow completion time for finite transfers (kTimeNone otherwise).
  TimeNs completed_at = kTimeNone;
  double avg_queue_occupancy_bytes = 0.0;  ///< this flow's b (from the queue)
  Bytes min_queue_occupancy_bytes = 0;     ///< this flow's minimum b
  Bytes max_queue_occupancy_bytes = 0;     ///< this flow's maximum b
};

}  // namespace bbrnash
