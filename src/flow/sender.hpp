// Sender: the reliable bulk-transfer transport endpoint.
//
// Responsibilities (mirroring Linux tcp_input/tcp_output):
//   * transmit gating by cwnd and pacing rate (unified engine),
//   * per-packet delivery accounting and delivery-rate samples (tcp_rate.c
//     equivalent — BBR's bandwidth estimator is defined on these),
//   * loss detection by packet threshold (dupthresh = 3 later deliveries,
//     RACK-like) with an RTO fallback,
//   * one congestion notification per recovery episode,
//   * retransmission of lost packets ahead of new data.
//
// The application is an infinite bulk source: there is always new data, so
// flows are never app-limited (matching the paper's 2-minute iperf-style
// transfers).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>

#include "cc/cc_variant.hpp"
#include "cc/congestion_control.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/ring_deque.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace bbrnash {

struct SenderConfig {
  Bytes mss = kDefaultMss;
  Bytes header_bytes = kHeaderBytes;
  int dupthresh = 3;             ///< later deliveries before declaring loss
  TimeNs min_rto = from_ms(200); ///< Linux's TCP_RTO_MIN
  TimeNs initial_rto = from_sec(1);
  /// Pacing releases packets in bursts of up to this many segments, like
  /// Linux's TSO autosizing (tcp_tso_autosize targets ~1 ms of data per
  /// burst). Purely a shaping detail for rate-based CCAs: the average rate
  /// is unchanged, but single-packet pacing into a busy FIFO under-grabs
  /// queue space relative to real stacks.
  int pacing_quantum_segments = 4;

  /// Total payload bytes the application wants to transfer; 0 = unbounded
  /// bulk flow (the paper's 2-minute iperf-style senders). Finite flows
  /// stop producing new data at the limit and report a completion time.
  Bytes transfer_bytes = 0;
};

class Sender {
 public:
  /// `transmit` hands a packet to the network (the bottleneck ingress);
  /// its return value is ignored — drops are discovered via ACKs, exactly
  /// like a real endpoint.
  using TransmitFn = std::function<void(const Packet&)>;

  /// Hot-path constructor: the CC is held by value inside the variant, so
  /// its callbacks inline into the transport loop (see cc_variant.hpp).
  Sender(Simulator& sim, FlowId flow, SenderConfig cfg, CcVariant cc,
         TransmitFn transmit);

  /// Virtual-dispatch adapter for tests, examples, and custom algorithms:
  /// identical behaviour at the old indirect-call cost.
  Sender(Simulator& sim, FlowId flow, SenderConfig cfg,
         std::unique_ptr<CongestionControl> cc, TransmitFn transmit);

  Sender(const Sender&) = delete;
  Sender& operator=(const Sender&) = delete;

  /// Begins transmitting at simulated time `at`.
  void start(TimeNs at);

  /// Pre-sizes the per-packet bookkeeping rings for a window of up to
  /// `packets` tracked packets, so they reach high-water capacity before
  /// the hot path runs instead of growing (allocating) mid-measurement.
  /// Purely a perf knob: the rings still grow on demand past the hint.
  void reserve_windows(std::size_t packets) {
    records_.reserve(packets);
    retx_queue_.reserve(packets);
    inflight_by_order_.reserve(packets);
  }

  /// Delivers an ACK from the reverse path.
  void on_ack(const Ack& ack);

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] FlowId flow() const noexcept { return flow_; }
  [[nodiscard]] Bytes inflight_bytes() const noexcept { return inflight_; }
  [[nodiscard]] Bytes delivered_bytes() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t retransmit_count() const noexcept {
    return retransmits_;
  }
  [[nodiscard]] std::uint64_t rto_count() const noexcept { return rtos_; }
  /// ACK packets handed to on_ack() — the conservation audit's terminal
  /// counter for the reverse path.
  [[nodiscard]] std::uint64_t acks_received() const noexcept {
    return acks_received_;
  }
  /// True once every application byte has been delivered (finite flows).
  [[nodiscard]] bool completed() const noexcept {
    return cfg_.transfer_bytes > 0 && delivered_ >= cfg_.transfer_bytes;
  }
  /// Completion timestamp, or kTimeNone while incomplete/unbounded.
  [[nodiscard]] TimeNs completed_at() const noexcept { return completed_at_; }
  [[nodiscard]] const CongestionControl& cc() const noexcept {
    return cc_.base();
  }
  [[nodiscard]] CongestionControl& cc() noexcept { return cc_.base(); }
  [[nodiscard]] TimeNs smoothed_rtt() const noexcept { return srtt_; }

  /// RTT statistics and inflight time-average accumulate from
  /// begin_measurement() (warm-up exclusion).
  void begin_measurement();
  [[nodiscard]] const RunningStats& rtt_stats() const noexcept {
    return rtt_stats_;
  }
  [[nodiscard]] double avg_inflight_bytes() const {
    return inflight_avg_.average();
  }
  /// Delivered bytes at the last begin_measurement() call.
  [[nodiscard]] Bytes delivered_at_measurement_start() const noexcept {
    return delivered_mark_;
  }
  [[nodiscard]] std::uint64_t retransmits_at_measurement_start() const noexcept {
    return retransmits_mark_;
  }
  [[nodiscard]] std::uint64_t rtos_at_measurement_start() const noexcept {
    return rtos_mark_;
  }

 private:
  enum class TxState : std::uint8_t { kInflight, kDelivered, kLost };

  struct TxRecord {
    TimeNs send_time = kTimeNone;
    std::uint64_t send_order = 0;
    Bytes delivered_at_send = 0;       // delivery-rate snapshot
    TimeNs delivered_time_at_send = 0; // delivery-rate snapshot
    TimeNs first_tx_at_send = 0;       // start of this packet's send phase
    TxState state = TxState::kInflight;
    std::uint8_t retx_count = 0;
  };

  void maybe_send();
  void transmit_seq(SeqNo seq, bool is_retransmit);
  void process_delivery(SeqNo seq);
  void detect_losses();
  void mark_lost(SeqNo seq);
  void enter_recovery_if_needed(Bytes newly_lost);
  void arm_rto();
  void on_rto_fired();
  void update_rtt(TimeNs sample);

  [[nodiscard]] TxRecord* record_for(SeqNo seq);
  [[nodiscard]] TimeNs current_rto() const;
  void note_inflight_change();

  /// The set of in-flight packets keyed by send order (what std::map was
  /// used for). Orders are assigned consecutively at transmit time, so the
  /// ordered map degenerates into a ring indexed by (order - base): insert
  /// is a push at the back, erase tombstones the slot, and the minimum
  /// live order is maintained by advancing the base past tombstones —
  /// O(1) amortized, allocation-free at steady state where the map paid a
  /// node allocation per transmitted packet.
  class OrderWindow {
   public:
    /// Pre: orders arrive consecutively (order == base + size()).
    void insert(std::uint64_t order, SeqNo seq) {
      assert(order == base_ + slots_.size() && "send orders are consecutive");
      (void)order;
      slots_.push_back(seq);
      ++live_;
    }
    /// Erasing an absent order is a no-op, like map::erase by key.
    void erase(std::uint64_t order) {
      if (order < base_) return;
      const auto idx = static_cast<std::size_t>(order - base_);
      if (idx >= slots_.size() || slots_[idx] == kDead) return;
      slots_[idx] = kDead;
      --live_;
      // Keep the front slot live (or the ring empty) so front_*() are O(1).
      while (!slots_.empty() && slots_.front() == kDead) {
        slots_.pop_front();
        ++base_;
      }
    }
    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
    /// Smallest live send order / its sequence number. Pre: !empty().
    [[nodiscard]] std::uint64_t front_order() const {
      assert(live_ > 0);
      return base_;
    }
    [[nodiscard]] SeqNo front_seq() const {
      assert(live_ > 0);
      return slots_.front();
    }
    void reserve(std::size_t n) { slots_.reserve(n); }

   private:
    static constexpr SeqNo kDead = ~SeqNo{0};

    RingDeque<SeqNo> slots_;
    std::uint64_t base_ = 1;  ///< send orders start at 1
    std::size_t live_ = 0;
  };

  Simulator& sim_;
  FlowId flow_;
  SenderConfig cfg_;
  CcVariant cc_;
  TransmitFn transmit_;

  // Sequence space. records_ is indexed by (seq - base_seq_).
  RingDeque<TxRecord> records_;
  SeqNo base_seq_ = 0;   // smallest seq still tracked
  SeqNo next_seq_ = 0;   // next new sequence number to send
  RingDeque<SeqNo> retx_queue_;

  // Delivery / ordering state (tcp_rate.c equivalents).
  Bytes inflight_ = 0;
  Bytes delivered_ = 0;
  TimeNs delivered_time_ = 0;
  TimeNs first_tx_time_ = 0;  ///< send time of the most recently acked pkt
  std::uint64_t next_send_order_ = 1;
  std::uint64_t highest_delivered_order_ = 0;
  OrderWindow inflight_by_order_;

  // Recovery episode state.
  bool in_recovery_ = false;
  std::uint64_t recovery_exit_order_ = 0;
  Bytes episode_lost_ = 0;

  // RTT estimation (RFC 6298).
  TimeNs srtt_ = kTimeNone;
  TimeNs rttvar_ = 0;

  // RTO timer (lazy: re-validated at fire time against last progress).
  bool rto_armed_ = false;
  TimeNs last_progress_time_ = 0;
  int rto_backoff_ = 0;  ///< consecutive-RTO exponential backoff shift

  // Pacing.
  TimeNs next_send_allowed_ = 0;
  bool pacing_timer_armed_ = false;

  bool started_ = false;
  TimeNs completed_at_ = kTimeNone;

  // Counters and measurement.
  std::uint64_t retransmits_ = 0;
  std::uint64_t rtos_ = 0;
  std::uint64_t acks_received_ = 0;
  RunningStats rtt_stats_;
  TimeWeightedAverage inflight_avg_;
  bool measuring_ = false;
  Bytes delivered_mark_ = 0;
  std::uint64_t retransmits_mark_ = 0;
  std::uint64_t rtos_mark_ = 0;
};

}  // namespace bbrnash
