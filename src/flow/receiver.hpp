// Receiver: acknowledges every data packet immediately.
//
// The ACK carries both the triggering packet's sequence number (equivalent
// to SACK information — the sender can mark that exact packet delivered)
// and the cumulative next-expected sequence. There is no delayed ACK; the
// paper's testbed senders were Linux with quickack-like behaviour under
// loss, and per-packet ACKs keep the ACK clock simple and exact.
//
// The reorder buffer is a flag ring indexed relative to the cumulative
// point rather than a std::set: membership of seq s lives at
// ooo_[s - cum_next_ - 1]. Inserting under reordering and draining after a
// hole fills are O(gap) flag flips with no per-packet allocation — the set
// allocated a node per buffered packet, which was one of the last
// allocation sources on the impaired-path hot loop.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "util/ring_deque.hpp"

namespace bbrnash {

class Receiver {
 public:
  using AckSink = std::function<void(const Ack&)>;

  explicit Receiver(FlowId flow) : flow_(flow) {}

  void set_ack_sink(AckSink sink) { ack_sink_ = std::move(sink); }

  /// Pre-sizes the reorder ring for holes spanning up to `packets` (a perf
  /// knob; the ring still grows on demand past the hint).
  void reserve_reorder(std::size_t packets) { ooo_.reserve(packets); }

  /// Consumes a data packet; emits exactly one ACK.
  void on_packet(const Packet& pkt, TimeNs queue_delay) {
    if (pkt.seq == cum_next_) {
      ++cum_next_;
      // Drain buffered packets now in order. The ring's base is pinned at
      // cum_next_ + 1, so each advance consumes exactly the front flag.
      while (!ooo_.empty() && ooo_.front() != 0) {
        ooo_.pop_front();
        --ooo_count_;
        ++cum_next_;
      }
      if (!ooo_.empty()) ooo_.pop_front();  // flag slot for the new hole
    } else if (pkt.seq > cum_next_) {
      const auto idx = static_cast<std::size_t>(pkt.seq - cum_next_ - 1);
      while (ooo_.size() <= idx) ooo_.push_back(0);
      if (ooo_[idx] == 0) {
        ooo_[idx] = 1;
        ++ooo_count_;
      }
    }
    // seq < cum_next_: duplicate (spurious retransmit); still ACK it so the
    // sender's bookkeeping converges.
    ++packets_received_;
    if (ack_sink_) {
      ack_sink_(Ack{flow_, pkt.seq, cum_next_, queue_delay});
    }
  }

  [[nodiscard]] SeqNo cumulative_next() const noexcept { return cum_next_; }
  [[nodiscard]] std::uint64_t packets_received() const noexcept {
    return packets_received_;
  }
  [[nodiscard]] std::size_t reorder_buffer_size() const noexcept {
    return ooo_count_;
  }

 private:
  FlowId flow_;
  AckSink ack_sink_;
  SeqNo cum_next_ = 0;
  /// ooo_[i] != 0 iff packet (cum_next_ + 1 + i) is buffered. Trailing
  /// zeros may linger; ooo_count_ is the buffered-packet count.
  RingDeque<std::uint8_t> ooo_;
  std::size_t ooo_count_ = 0;
  std::uint64_t packets_received_ = 0;
};

}  // namespace bbrnash
