// Receiver: acknowledges every data packet immediately.
//
// The ACK carries both the triggering packet's sequence number (equivalent
// to SACK information — the sender can mark that exact packet delivered)
// and the cumulative next-expected sequence. There is no delayed ACK; the
// paper's testbed senders were Linux with quickack-like behaviour under
// loss, and per-packet ACKs keep the ACK clock simple and exact.
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "net/packet.hpp"

namespace bbrnash {

class Receiver {
 public:
  using AckSink = std::function<void(const Ack&)>;

  explicit Receiver(FlowId flow) : flow_(flow) {}

  void set_ack_sink(AckSink sink) { ack_sink_ = std::move(sink); }

  /// Consumes a data packet; emits exactly one ACK.
  void on_packet(const Packet& pkt, TimeNs queue_delay) {
    if (pkt.seq == cum_next_) {
      ++cum_next_;
      // Drain any buffered out-of-order packets now in order.
      auto it = ooo_.begin();
      while (it != ooo_.end() && *it == cum_next_) {
        ++cum_next_;
        it = ooo_.erase(it);
      }
    } else if (pkt.seq > cum_next_) {
      ooo_.insert(pkt.seq);
    }
    // seq < cum_next_: duplicate (spurious retransmit); still ACK it so the
    // sender's bookkeeping converges.
    ++packets_received_;
    if (ack_sink_) {
      ack_sink_(Ack{flow_, pkt.seq, cum_next_, queue_delay});
    }
  }

  [[nodiscard]] SeqNo cumulative_next() const noexcept { return cum_next_; }
  [[nodiscard]] std::uint64_t packets_received() const noexcept {
    return packets_received_;
  }
  [[nodiscard]] std::size_t reorder_buffer_size() const noexcept {
    return ooo_.size();
  }

 private:
  FlowId flow_;
  AckSink ack_sink_;
  SeqNo cum_next_ = 0;
  std::set<SeqNo> ooo_;
  std::uint64_t packets_received_ = 0;
};

}  // namespace bbrnash
