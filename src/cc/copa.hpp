// Copa (Arun & Balakrishnan, NSDI 2018) — delay-based congestion control.
//
// Copa targets a sending rate of 1/(delta * d_q) packets per second, where
// d_q is the measured queuing delay (RTTstanding - RTTmin). The window
// moves toward the target by v/(delta * cwnd) packets per ACK, where the
// velocity v doubles after the window has moved in the same direction for
// three consecutive RTTs.
//
// The paper (§4.2, Fig. 7) uses Copa as the example of a post-BBR CCA that
// does NOT grab a disproportionate share against CUBIC — a delay-based
// algorithm backs off as loss-based flows fill the buffer — so no Nash
// Equilibrium mixture is expected. We implement Copa's default mode with a
// fixed delta (no TCP-competitive mode switching), which is the behaviour
// that exhibits exactly that property.
#pragma once

#include <string>

#include "cc/congestion_control.hpp"
#include "util/filters.hpp"

namespace bbrnash {

struct CopaConfig {
  Bytes mss = kDefaultMss;
  Bytes initial_cwnd = 10 * kDefaultMss;
  double delta = 0.5;              ///< default-mode delta (1/(2) pkt tradeoff)
  /// Effectively "forever": with a short window the propagation estimate
  /// drifts up to the standing queue level and d_q collapses to ~0, turning
  /// Copa into a rate-blaster. Reference Copa keeps a very long-lived
  /// RTTmin; our paths have a fixed propagation delay, so an hour is
  /// equivalent to forever.
  TimeNs min_rtt_window = from_sec(3600);
  Bytes min_cwnd = 4 * kDefaultMss;
  double max_velocity = 65536.0;
};

class Copa final : public CongestionControl {
 public:
  explicit Copa(const CopaConfig& cfg = {});

  void on_start(TimeNs now) override;
  void on_ack(const AckEvent& ev) override;
  void on_congestion_event(const LossEvent& ev) override;
  void on_rto(TimeNs now) override;

  [[nodiscard]] Bytes cwnd() const override { return cwnd_; }
  [[nodiscard]] BytesPerSec pacing_rate() const override;
  [[nodiscard]] std::string name() const override { return "copa"; }
  [[nodiscard]] int pacing_burst_segments() const override { return 1; }

  [[nodiscard]] double velocity() const { return velocity_; }
  [[nodiscard]] TimeNs queuing_delay() const;

 private:
  void update_velocity(TimeNs now);

  CopaConfig cfg_;
  Bytes cwnd_ = 0;
  double velocity_ = 1.0;

  WindowedFilter<TimeNs> min_rtt_;       ///< long-window propagation estimate
  WindowedFilter<TimeNs> standing_rtt_;  ///< srtt/2-window standing RTT
  TimeNs srtt_ = kTimeNone;

  bool slow_start_ = true;
  // Direction tracking, evaluated once per RTT.
  TimeNs last_direction_check_ = 0;
  Bytes cwnd_at_last_check_ = 0;
  int direction_ = 0;  // +1 up, -1 down, 0 none
  int same_direction_rtts_ = 0;
};

}  // namespace bbrnash
