#include "cc/bbr.hpp"
#include "cc/bbrv2.hpp"
#include "cc/congestion_control.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"
#include "cc/vivace.hpp"

#include <stdexcept>

namespace bbrnash {

const char* to_string(CcKind kind) {
  switch (kind) {
    case CcKind::kCubic:
      return "cubic";
    case CcKind::kReno:
      return "reno";
    case CcKind::kBbr:
      return "bbr";
    case CcKind::kBbrV2:
      return "bbrv2";
    case CcKind::kCopa:
      return "copa";
    case CcKind::kVivace:
      return "vivace";
    case CcKind::kVegas:
      return "vegas";
  }
  return "unknown";
}

std::unique_ptr<CongestionControl> make_congestion_control(CcKind kind,
                                                           const CcConfig& cfg) {
  switch (kind) {
    case CcKind::kCubic: {
      CubicConfig c;
      c.mss = cfg.mss;
      c.initial_cwnd = cfg.initial_cwnd;
      return std::make_unique<Cubic>(c);
    }
    case CcKind::kReno: {
      RenoConfig c;
      c.mss = cfg.mss;
      c.initial_cwnd = cfg.initial_cwnd;
      return std::make_unique<Reno>(c);
    }
    case CcKind::kBbr: {
      BbrConfig c;
      c.mss = cfg.mss;
      c.initial_cwnd = cfg.initial_cwnd;
      c.min_pipe_cwnd = 4 * cfg.mss;
      c.seed = cfg.seed;
      c.cwnd_gain = cfg.bbr_cwnd_gain;
      return std::make_unique<Bbr>(c);
    }
    case CcKind::kBbrV2: {
      BbrV2Config c;
      c.mss = cfg.mss;
      c.initial_cwnd = cfg.initial_cwnd;
      c.min_pipe_cwnd = 4 * cfg.mss;
      c.seed = cfg.seed;
      c.cwnd_gain = cfg.bbr_cwnd_gain;
      return std::make_unique<BbrV2>(c);
    }
    case CcKind::kCopa: {
      CopaConfig c;
      c.mss = cfg.mss;
      c.initial_cwnd = cfg.initial_cwnd;
      c.min_cwnd = 4 * cfg.mss;
      return std::make_unique<Copa>(c);
    }
    case CcKind::kVivace: {
      VivaceConfig c;
      c.mss = cfg.mss;
      c.initial_cwnd = cfg.initial_cwnd;
      return std::make_unique<Vivace>(c);
    }
    case CcKind::kVegas: {
      VegasConfig c;
      c.mss = cfg.mss;
      c.initial_cwnd = cfg.initial_cwnd;
      return std::make_unique<Vegas>(c);
    }
  }
  throw std::invalid_argument{"unknown congestion control kind"};
}

}  // namespace bbrnash
