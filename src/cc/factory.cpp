#include "cc/bbr.hpp"
#include "cc/bbrv2.hpp"
#include "cc/cc_variant.hpp"
#include "cc/congestion_control.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"
#include "cc/vivace.hpp"

#include <stdexcept>

namespace bbrnash {

const char* to_string(CcKind kind) {
  switch (kind) {
    case CcKind::kCubic:
      return "cubic";
    case CcKind::kReno:
      return "reno";
    case CcKind::kBbr:
      return "bbr";
    case CcKind::kBbrV2:
      return "bbrv2";
    case CcKind::kCopa:
      return "copa";
    case CcKind::kVivace:
      return "vivace";
    case CcKind::kVegas:
      return "vegas";
  }
  return "unknown";
}

namespace {

// The single source for CcConfig -> per-algorithm config mapping, shared
// by the virtual and variant factories so the two dispatch paths can
// never drift apart.

CubicConfig cubic_config(const CcConfig& cfg) {
  CubicConfig c;
  c.mss = cfg.mss;
  c.initial_cwnd = cfg.initial_cwnd;
  return c;
}

RenoConfig reno_config(const CcConfig& cfg) {
  RenoConfig c;
  c.mss = cfg.mss;
  c.initial_cwnd = cfg.initial_cwnd;
  return c;
}

BbrConfig bbr_config(const CcConfig& cfg) {
  BbrConfig c;
  c.mss = cfg.mss;
  c.initial_cwnd = cfg.initial_cwnd;
  c.min_pipe_cwnd = 4 * cfg.mss;
  c.seed = cfg.seed;
  c.cwnd_gain = cfg.bbr_cwnd_gain;
  return c;
}

BbrV2Config bbrv2_config(const CcConfig& cfg) {
  BbrV2Config c;
  c.mss = cfg.mss;
  c.initial_cwnd = cfg.initial_cwnd;
  c.min_pipe_cwnd = 4 * cfg.mss;
  c.seed = cfg.seed;
  c.cwnd_gain = cfg.bbr_cwnd_gain;
  return c;
}

CopaConfig copa_config(const CcConfig& cfg) {
  CopaConfig c;
  c.mss = cfg.mss;
  c.initial_cwnd = cfg.initial_cwnd;
  c.min_cwnd = 4 * cfg.mss;
  return c;
}

VivaceConfig vivace_config(const CcConfig& cfg) {
  VivaceConfig c;
  c.mss = cfg.mss;
  c.initial_cwnd = cfg.initial_cwnd;
  return c;
}

VegasConfig vegas_config(const CcConfig& cfg) {
  VegasConfig c;
  c.mss = cfg.mss;
  c.initial_cwnd = cfg.initial_cwnd;
  return c;
}

}  // namespace

std::unique_ptr<CongestionControl> make_congestion_control(CcKind kind,
                                                           const CcConfig& cfg) {
  switch (kind) {
    case CcKind::kCubic:
      return std::make_unique<Cubic>(cubic_config(cfg));
    case CcKind::kReno:
      return std::make_unique<Reno>(reno_config(cfg));
    case CcKind::kBbr:
      return std::make_unique<Bbr>(bbr_config(cfg));
    case CcKind::kBbrV2:
      return std::make_unique<BbrV2>(bbrv2_config(cfg));
    case CcKind::kCopa:
      return std::make_unique<Copa>(copa_config(cfg));
    case CcKind::kVivace:
      return std::make_unique<Vivace>(vivace_config(cfg));
    case CcKind::kVegas:
      return std::make_unique<Vegas>(vegas_config(cfg));
  }
  throw std::invalid_argument{"unknown congestion control kind"};
}

CcVariant make_cc_variant(CcKind kind, const CcConfig& cfg) {
  switch (kind) {
    case CcKind::kCubic:
      return CcVariant{Cubic{cubic_config(cfg)}};
    case CcKind::kReno:
      return CcVariant{Reno{reno_config(cfg)}};
    case CcKind::kBbr:
      return CcVariant{Bbr{bbr_config(cfg)}};
    case CcKind::kBbrV2:
      return CcVariant{BbrV2{bbrv2_config(cfg)}};
    case CcKind::kCopa:
      return CcVariant{Copa{copa_config(cfg)}};
    case CcKind::kVivace:
      return CcVariant{Vivace{vivace_config(cfg)}};
    case CcKind::kVegas:
      return CcVariant{Vegas{vegas_config(cfg)}};
  }
  throw std::invalid_argument{"unknown congestion control kind"};
}

}  // namespace bbrnash
