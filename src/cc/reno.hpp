// TCP NewReno (RFC 5681/6582): the historical baseline CUBIC replaced.
// Included for the paper's §1/§5 narrative (CUBIC-vs-NewReno transition)
// and used by the ablation examples.
#pragma once

#include <string>

#include "cc/congestion_control.hpp"

namespace bbrnash {

struct RenoConfig {
  Bytes mss = kDefaultMss;
  Bytes initial_cwnd = 10 * kDefaultMss;
  Bytes min_cwnd = 2 * kDefaultMss;
};

class Reno final : public CongestionControl {
 public:
  explicit Reno(const RenoConfig& cfg = {});

  void on_start(TimeNs now) override;
  void on_ack(const AckEvent& ev) override;
  void on_congestion_event(const LossEvent& ev) override;
  void on_rto(TimeNs now) override;

  [[nodiscard]] Bytes cwnd() const override { return cwnd_; }
  [[nodiscard]] BytesPerSec pacing_rate() const override { return kNoPacing; }
  [[nodiscard]] std::string name() const override { return "reno"; }

  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  RenoConfig cfg_;
  Bytes cwnd_ = 0;
  Bytes ssthresh_ = 0;
  Bytes ack_credit_ = 0;  ///< congestion-avoidance byte counter
};

}  // namespace bbrnash
