#include "cc/vivace.hpp"

#include <algorithm>
#include <cmath>

namespace bbrnash {

Vivace::Vivace(const VivaceConfig& cfg) : cfg_(cfg) {}

void Vivace::on_start(TimeNs now) {
  (void)now;
  // Initial window paced over a nominal 100 ms RTT (~1 Mbps); slow start
  // doubles from there.
  rate_mbps_ = to_mbps(static_cast<double>(cfg_.initial_cwnd) / 0.100);
  rate_mbps_ = std::max(cfg_.min_rate_mbps, rate_mbps_);
  pacing_now_mbps_ = rate_mbps_;
  phase_ = Phase::kSlowStart;
}

Bytes Vivace::cwnd() const {
  // Vivace is rate-based; the window is a generous safety cap (2 * rate *
  // srtt) so that pacing, not the window, governs in normal operation. The
  // floor keeps enough packets in flight for dupack-based loss detection —
  // reference PCC runs over UDP and never RTO-collapses.
  const TimeNs rtt = srtt_ == kTimeNone ? from_ms(100) : srtt_;
  const auto cap = static_cast<Bytes>(2.0 * mbps(rate_mbps_) * to_sec(rtt));
  return std::max<Bytes>(cap, 8 * cfg_.mss);
}

BytesPerSec Vivace::pacing_rate() const {
  return mbps(pacing_now_mbps_ > 0 ? pacing_now_mbps_ : rate_mbps_);
}

TimeNs Vivace::mi_duration(double rate) const {
  // At least one RTT, and long enough to emit ~10 packets at the probe
  // rate, so goodput quantization noise cannot dominate the comparison.
  const TimeNs rtt = srtt_ == kTimeNone ? from_ms(100) : srtt_;
  const auto ten_packets = static_cast<TimeNs>(
      10.0 * static_cast<double>(cfg_.mss) / mbps(std::max(rate, 0.01)) *
      static_cast<double>(kNsPerSec));
  return std::max(rtt, ten_packets);
}

double Vivace::gradient(const Bucket& b) const {
  const double denom = b.n * b.stt - b.st * b.st;
  if (b.n < 4.0 || denom <= 1e-12) return 0.0;
  const double slope = (b.n * b.sty - b.st * b.sy) / denom;
  return std::fabs(slope) >= cfg_.gradient_deadband ? slope : 0.0;
}

double Vivace::goodput_mbps(const Bucket& b) const {
  if (b.start == kTimeNone || b.end <= b.start) return 0.0;
  return to_mbps(static_cast<double>(b.acked) / to_sec(b.end - b.start));
}

double Vivace::utility(const Bucket& b, double loss_fraction) const {
  const double x = goodput_mbps(b);
  // The NSDI'18 utility's d(RTT)/dT measures RTT change per *monitor
  // interval*, not per second — convert the per-second slope by the MI
  // span. (With a per-second reading, b = 900 makes any competitor-induced
  // queue growth fatal and Vivace capitulates to CUBIC, contradicting the
  // paper's Fig. 7.)
  const double span_sec =
      b.start != kTimeNone && b.end > b.start ? to_sec(b.end - b.start) : 0.0;
  return std::pow(x, cfg_.utility_exponent) -
         cfg_.latency_coeff * x * gradient(b) * span_sec -
         cfg_.loss_coeff * x * loss_fraction;
}

void Vivace::attribute_ack(const AckEvent& ev) {
  if (ev.rtt == kTimeNone) {
    return;
  }
  const TimeNs t_send = ev.now - ev.rtt;
  Bucket* b = nullptr;
  if (up_.contains(t_send)) {
    b = &up_;
  } else if (down_.contains(t_send)) {
    b = &down_;
  } else if (ss_.contains(t_send)) {
    b = &ss_;
  }
  if (b != nullptr) {
    b->acked += ev.acked_bytes;
    b->add_rtt(t_send, ev.rtt);
  }
}

void Vivace::start_epoch(TimeNs now) {
  phase_ = Phase::kUp;
  const double up_rate = rate_mbps_ * (1.0 + cfg_.probe_epsilon);
  const TimeNs d = mi_duration(up_rate);
  up_ = Bucket{};
  up_.start = now;
  up_.end = now + d;
  up_.rate_mbps = up_rate;
  phase_start_ = now;
  phase_end_ = up_.end;
  pacing_now_mbps_ = up_rate;
}

void Vivace::on_ack(const AckEvent& ev) {
  if (ev.rtt != kTimeNone) {
    srtt_ = srtt_ == kTimeNone ? ev.rtt : (7 * srtt_ + ev.rtt) / 8;
  }
  attribute_ack(ev);

  if (phase_start_ == kTimeNone) {
    // First ack: open the slow-start measurement window.
    phase_start_ = ev.now;
    phase_end_ = ev.now + mi_duration(rate_mbps_);
    ss_ = Bucket{};
    ss_.start = phase_start_;
    ss_.end = phase_end_;
    ss_.rate_mbps = rate_mbps_;
    pacing_now_mbps_ = rate_mbps_;
    return;
  }
  if (ev.now < phase_end_) return;

  switch (phase_) {
    case Phase::kSlowStart: {
      // Score the window that just *finished sending*; its acks are mostly
      // in (one-RTT lag tolerated: doubling decisions only need the trend).
      const double total =
          static_cast<double>(ss_.acked + ss_.lost);
      const double loss =
          total > 0 ? static_cast<double>(ss_.lost) / total : 0.0;
      const double u = utility(ss_, loss);
      if ((!has_last_utility_ || u > last_utility_) && loss < cfg_.loss_brake) {
        last_utility_ = u;
        has_last_utility_ = true;
        rate_mbps_ *= 2.0;
        ss_ = Bucket{};
        ss_.start = ev.now;
        ss_.end = ev.now + mi_duration(rate_mbps_);
        ss_.rate_mbps = rate_mbps_;
        phase_start_ = ss_.start;
        phase_end_ = ss_.end;
        pacing_now_mbps_ = rate_mbps_;
      } else {
        // Exit slow start near what the path actually delivered; a loss- or
        // transient-triggered exit must not strand the rate at the floor.
        rate_mbps_ = std::max({cfg_.min_rate_mbps, 0.9 * goodput_mbps(ss_),
                               loss >= cfg_.loss_brake ? 0.0
                                                       : rate_mbps_ / 2.0});
        start_epoch(ev.now);
      }
      break;
    }
    case Phase::kUp: {
      phase_ = Phase::kDown;
      const double down_rate = rate_mbps_ * (1.0 - cfg_.probe_epsilon);
      const TimeNs d = mi_duration(down_rate);
      down_ = Bucket{};
      down_.start = ev.now;
      down_.end = ev.now + d;
      down_.rate_mbps = down_rate;
      phase_start_ = ev.now;
      phase_end_ = down_.end;
      pacing_now_mbps_ = down_rate;
      break;
    }
    case Phase::kDown: {
      // Settle at the base rate while the probe buckets finish collecting
      // acks (one RTT) and loss marks (~another half RTT).
      phase_ = Phase::kSettle;
      const TimeNs rtt = srtt_ == kTimeNone ? from_ms(100) : srtt_;
      phase_start_ = ev.now;
      phase_end_ = ev.now + rtt + rtt / 2;
      pacing_now_mbps_ = rate_mbps_;
      break;
    }
    case Phase::kSettle: {
      decide(ev.now);
      start_epoch(ev.now);
      break;
    }
  }
}

void Vivace::decide(TimeNs now) {
  (void)now;
  const Bytes pair_total = up_.acked + up_.lost + down_.acked + down_.lost;
  const double pair_loss =
      pair_total > 0
          ? static_cast<double>(up_.lost + down_.lost) /
                static_cast<double>(pair_total)
          : 0.0;
  const bool enough_samples =
      pair_total >= cfg_.loss_brake_min_packets * cfg_.mss;
  if (pair_loss > cfg_.loss_brake && enough_samples) {
    // Safety brake: grossly overdriving the path — fall back toward actual
    // delivery, but never collapse by more than ~half per epoch (the
    // measured goodput of a mass-loss MI under-reads badly).
    const double measured =
        0.5 * (goodput_mbps(up_) + goodput_mbps(down_));
    rate_mbps_ = std::max({cfg_.min_rate_mbps, 0.9 * measured,
                           0.55 * rate_mbps_});
    streak_ = 0;
    last_direction_ = 0;
    return;
  }
  const double up_total = static_cast<double>(up_.acked + up_.lost);
  const double down_total = static_cast<double>(down_.acked + down_.lost);
  const double up_loss =
      up_total > 0 ? static_cast<double>(up_.lost) / up_total : 0.0;
  const double down_loss =
      down_total > 0 ? static_cast<double>(down_.lost) / down_total : 0.0;
  const double u_up = utility(up_, up_loss);
  const double u_down = utility(down_, down_loss);
  step_rate(u_up - u_down);
}

void Vivace::step_rate(double grad_direction) {
  const int dir = grad_direction > 0 ? 1 : -1;
  if (dir == last_direction_) {
    streak_ = std::min(streak_ + 1, cfg_.max_confidence);
  } else {
    streak_ = 0;
  }
  last_direction_ = dir;

  // Confidence-amplified, rate-proportional step, bounded to a fraction of
  // the current rate per epoch.
  const double amplifier = static_cast<double>(1 << streak_);
  double step =
      std::max(cfg_.base_step_mbps, 0.08 * rate_mbps_) * amplifier;
  step = std::min(step, cfg_.max_step_fraction * rate_mbps_);
  rate_mbps_ = std::max(cfg_.min_rate_mbps,
                        rate_mbps_ + static_cast<double>(dir) * step);
}

void Vivace::on_congestion_event(const LossEvent& ev) { (void)ev; }

void Vivace::on_packet_lost(TimeNs now, Bytes lost_bytes, Bytes inflight) {
  (void)inflight;
  // Attribute the loss to the MI its packet was (approximately) sent in:
  // detection lags by roughly one smoothed RTT.
  const TimeNs t_send = now - (srtt_ == kTimeNone ? from_ms(100) : srtt_);
  if (up_.contains(t_send)) {
    up_.lost += lost_bytes;
  } else if (down_.contains(t_send)) {
    down_.lost += lost_bytes;
  } else if (ss_.contains(t_send)) {
    ss_.lost += lost_bytes;
  }
}

void Vivace::on_rto(TimeNs now) {
  // Gentle: an RTO in this transport usually means a shared-buffer loss
  // burst, not a Vivace-specific signal; the utility's loss term already
  // punishes the rate.
  rate_mbps_ = std::max(cfg_.min_rate_mbps, rate_mbps_ * 0.7);
  streak_ = 0;
  last_direction_ = 0;
  if (phase_ != Phase::kSlowStart) start_epoch(now);
  pacing_now_mbps_ = rate_mbps_;
}

}  // namespace bbrnash
