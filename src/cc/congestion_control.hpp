// The congestion-control plug-in interface.
//
// The Sender (src/flow/sender.hpp) owns reliability (loss detection,
// retransmission, RTO) and delivery-rate accounting; a CongestionControl
// implementation consumes per-ACK AckEvents and congestion notifications
// and exposes two control outputs:
//   * cwnd()        — bytes allowed in flight (always enforced), and
//   * pacing_rate() — bytes/sec send gate (kNoPacing disables pacing).
// This mirrors how Linux TCP separates tcp_input.c from tcp_cong.c, and it
// lets window-based (CUBIC/Reno), rate-based (BBR, Vivace) and delay-based
// (Copa) algorithms share one transport.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bbrnash {

/// Pacing disabled: the sender may transmit back-to-back up to cwnd.
inline constexpr BytesPerSec kNoPacing = 1e18;

/// Everything a CC algorithm may want to know about one acknowledgement.
/// Field semantics follow the Linux rate-sample infrastructure (tcp_rate.c)
/// that BBR's bandwidth estimation is defined against.
struct AckEvent {
  TimeNs now = 0;
  TimeNs rtt = kTimeNone;          ///< RTT of the newly acked packet; kTimeNone if untimed
  Bytes acked_bytes = 0;           ///< bytes newly delivered by this ACK
  Bytes delivered = 0;             ///< lifetime delivered bytes after this ACK
  Bytes prior_delivered = 0;       ///< `delivered` when the acked packet was sent
                                   ///< (drives BBR's round-trip counting)
  BytesPerSec delivery_rate = 0;   ///< measured delivery rate sample (0 = none)
  bool rate_app_limited = false;   ///< sample taken while app-limited
  Bytes inflight = 0;              ///< bytes in flight after this ACK
  bool in_recovery = false;        ///< sender is in a loss-recovery episode
};

/// A congestion notification. The sender raises exactly one per recovery
/// episode ("loss round"), matching how tcp_input.c invokes ssthresh().
struct LossEvent {
  TimeNs now = 0;
  Bytes inflight = 0;       ///< bytes in flight when the episode began
  Bytes lost_bytes = 0;     ///< bytes declared lost so far in this episode
  Bytes delivered = 0;      ///< lifetime delivered bytes
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Called once before the first transmission.
  virtual void on_start(TimeNs now) = 0;

  /// Called for every incoming ACK.
  virtual void on_ack(const AckEvent& ev) = 0;

  /// Called once when a recovery episode begins (fast retransmit).
  virtual void on_congestion_event(const LossEvent& ev) = 0;

  /// Called per individual lost packet (some CCAs, e.g. BBRv2's inflight_hi
  /// bookkeeping, care about loss volume, not just episodes).
  virtual void on_packet_lost(TimeNs now, Bytes lost_bytes, Bytes inflight) {
    (void)now;
    (void)lost_bytes;
    (void)inflight;
  }

  /// Called when the retransmission timer fires (all inflight presumed lost).
  virtual void on_rto(TimeNs now) = 0;

  /// Congestion window in bytes. The sender enforces
  /// inflight + next_packet <= cwnd().
  [[nodiscard]] virtual Bytes cwnd() const = 0;

  /// Pacing gate in bytes/sec (kNoPacing = unpaced).
  [[nodiscard]] virtual BytesPerSec pacing_rate() const = 0;

  /// Human-readable algorithm name (for tables and traces).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Largest pacing burst (segments) this algorithm tolerates. Kernel TCP
  /// releases TSO-sized bursts (the default); finely-measuring rate-based
  /// schemes (PCC, Copa reference implementations run over UDP) pace per
  /// packet to keep their RTT telemetry clean.
  [[nodiscard]] virtual int pacing_burst_segments() const { return 4; }
};

/// The algorithms this repository implements.
enum class CcKind { kCubic, kReno, kBbr, kBbrV2, kCopa, kVivace, kVegas };

[[nodiscard]] const char* to_string(CcKind kind);

/// Common knobs shared by all algorithms.
struct CcConfig {
  Bytes mss = kDefaultMss;               ///< payload bytes per packet
  Bytes wire_mtu = kDefaultMss + kHeaderBytes;
  Bytes initial_cwnd = 10 * kDefaultMss; ///< RFC 6928 initial window
  std::uint64_t seed = 1;                ///< per-flow RNG stream (BBR cycle phase)
  /// BBR-family ProbeBW cwnd gain. 2.0 is the standard value and the
  /// paper's assumption 2; the inflight-cap ablation bench varies it.
  double bbr_cwnd_gain = 2.0;
};

/// Creates a congestion control instance of the given kind.
std::unique_ptr<CongestionControl> make_congestion_control(CcKind kind,
                                                           const CcConfig& cfg);

}  // namespace bbrnash
