// TCP CUBIC (Ha, Rhee & Xu, 2008; RFC 9438).
//
// The property the paper's model depends on: after a loss, the window
// shrinks to beta = 0.7 of W_max (the paper writes beta_cubic = 0.3 for the
// decrease amount), and the window then grows as a cubic of elapsed time
// anchored at W_max. Parameters match the Linux kernel: C = 0.4, beta = 0.7,
// fast convergence and the TCP-friendly (Reno-emulation) region enabled.
#pragma once

#include <string>

#include "cc/congestion_control.hpp"

namespace bbrnash {

struct CubicConfig {
  Bytes mss = kDefaultMss;
  Bytes initial_cwnd = 10 * kDefaultMss;
  double c = 0.4;          ///< cubic scaling constant (segments/s^3)
  double beta = 0.7;       ///< multiplicative-decrease factor
  bool fast_convergence = true;
  bool tcp_friendly = true;
  /// HyStart (RFC 9406 flavour): leave slow start when the per-round
  /// minimum RTT rises noticeably, instead of blasting until loss. Linux
  /// ships it enabled; here it defaults OFF as a calibration choice — in
  /// this simulator it removes the early loss episodes that BBR exploits
  /// to claim queue share, pushing the CUBIC/BBR split further from the
  /// paper's testbed measurements. Enable for ablations.
  bool hystart = false;
  TimeNs hystart_min_eta = from_ms(4);
  TimeNs hystart_max_eta = from_ms(16);
  Bytes min_cwnd = 2 * kDefaultMss;
};

class Cubic final : public CongestionControl {
 public:
  explicit Cubic(const CubicConfig& cfg = {});

  void on_start(TimeNs now) override;
  void on_ack(const AckEvent& ev) override;
  void on_congestion_event(const LossEvent& ev) override;
  void on_rto(TimeNs now) override;

  [[nodiscard]] Bytes cwnd() const override { return cwnd_; }
  [[nodiscard]] BytesPerSec pacing_rate() const override { return kNoPacing; }
  [[nodiscard]] std::string name() const override { return "cubic"; }

  // Introspection for tests.
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }
  [[nodiscard]] double w_max_segments() const { return w_max_; }
  [[nodiscard]] double k_seconds() const { return k_; }

 private:
  [[nodiscard]] double segments(Bytes b) const {
    return static_cast<double>(b) / static_cast<double>(cfg_.mss);
  }
  [[nodiscard]] Bytes bytes_of(double segs) const {
    return static_cast<Bytes>(segs * static_cast<double>(cfg_.mss));
  }
  void cubic_growth(const AckEvent& ev);

  CubicConfig cfg_;
  Bytes cwnd_ = 0;
  Bytes ssthresh_ = 0;

  // Cubic epoch state (units: segments and seconds, as in the RFC).
  double w_max_ = 0.0;
  double k_ = 0.0;
  TimeNs epoch_start_ = kTimeNone;
  double w_est_ = 0.0;   ///< Reno-emulation window (TCP-friendly region)
  TimeNs last_srtt_ = kTimeNone;

  // HyStart per-round RTT tracking (rounds delimited by delivery counts).
  void hystart_update(const AckEvent& ev);
  Bytes next_round_delivered_ = 0;
  TimeNs round_min_rtt_ = kTimeInf;
  TimeNs last_round_min_rtt_ = kTimeInf;
  Bytes ssthresh_cap_pending_ = 0;
};

}  // namespace bbrnash
