#include "cc/vegas.hpp"

#include <algorithm>

namespace bbrnash {

Vegas::Vegas(const VegasConfig& cfg) : cfg_(cfg) {}

void Vegas::on_start(TimeNs now) {
  (void)now;
  cwnd_ = cfg_.initial_cwnd;
}

void Vegas::on_ack(const AckEvent& ev) {
  if (ev.rtt != kTimeNone) {
    base_rtt_ = std::min(base_rtt_, ev.rtt);
    round_min_rtt_ = std::min(round_min_rtt_, ev.rtt);
  }
  if (ev.in_recovery) return;
  if (ev.prior_delivered < next_round_delivered_) return;

  // Round boundary: run the Vegas estimator once per RTT.
  next_round_delivered_ = ev.delivered;
  const TimeNs rtt = round_min_rtt_;
  round_min_rtt_ = kTimeInf;
  if (rtt == kTimeInf || base_rtt_ == kTimeInf || rtt <= 0) return;

  const double cwnd_pkts =
      static_cast<double>(cwnd_) / static_cast<double>(cfg_.mss);
  const double expected = cwnd_pkts / to_sec(base_rtt_);
  const double actual = cwnd_pkts / to_sec(rtt);
  const double diff_pkts = (expected - actual) * to_sec(base_rtt_);

  if (slow_start_) {
    if (diff_pkts > cfg_.alpha) {
      slow_start_ = false;
      cwnd_ -= cfg_.mss;  // step back out of the overshoot
    } else if (grow_this_round_) {
      cwnd_ *= 2;  // Vegas doubles every other round in slow start
    }
    grow_this_round_ = !grow_this_round_;
  } else {
    if (diff_pkts < cfg_.alpha) {
      cwnd_ += cfg_.mss;
    } else if (diff_pkts > cfg_.beta) {
      cwnd_ -= cfg_.mss;
    }
  }
  cwnd_ = std::max(cwnd_, cfg_.min_cwnd);
}

void Vegas::on_congestion_event(const LossEvent& ev) {
  (void)ev;
  // Vegas halves on loss, like Reno, but rarely reaches loss by itself.
  slow_start_ = false;
  cwnd_ = std::max(cfg_.min_cwnd, cwnd_ / 2);
}

void Vegas::on_rto(TimeNs now) {
  (void)now;
  slow_start_ = true;
  grow_this_round_ = true;
  cwnd_ = std::max(cfg_.min_cwnd, 2 * cfg_.mss);
}

}  // namespace bbrnash
