#include "cc/bbr.hpp"

#include <algorithm>

namespace bbrnash {

Bbr::Bbr(const BbrConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      btlbw_(FilterKind::kMax, /*window=*/cfg.btlbw_window_rounds, 0.0) {
  // Per-ack bandwidth samples: pre-size the monotone ring so the filter
  // never grows (allocates) on the ack hot path mid-run.
  btlbw_.reserve(4096);
}

void Bbr::on_start(TimeNs now) {
  cwnd_ = cfg_.initial_cwnd;
  state_ = State::kStartup;
  pacing_gain_ = cfg_.high_gain;
  cwnd_gain_now_ = cfg_.high_gain;
  rtprop_stamp_ = now;
}

Bytes Bbr::bdp(double gain) const {
  if (!filters_primed()) return cfg_.initial_cwnd;
  const double bdp_bytes = btlbw_.best() * to_sec(rtprop_);
  return static_cast<Bytes>(gain * bdp_bytes);
}

BytesPerSec Bbr::pacing_rate() const {
  if (!filters_primed()) {
    // Nominal pre-estimate rate: initial window per (unknown) RTT — let the
    // initial burst go unpaced; the first RTT sample arms the filters.
    return kNoPacing;
  }
  return pacing_gain_ * btlbw_.best();
}

void Bbr::on_ack(const AckEvent& ev) {
  update_round(ev);
  update_btlbw(ev);
  check_full_pipe(ev);
  check_drain_done(ev);
  if (state_ == State::kProbeBw) update_probe_bw_cycle(ev);
  update_rtprop(ev);
  check_probe_rtt(ev);
  update_cwnd(ev);
}

void Bbr::update_round(const AckEvent& ev) {
  round_start_ = false;
  if (ev.prior_delivered >= next_round_delivered_) {
    next_round_delivered_ = ev.delivered;
    ++round_count_;
    round_start_ = true;
    loss_in_round_ = false;
  }
}

void Bbr::update_btlbw(const AckEvent& ev) {
  if (ev.delivery_rate <= 0) return;
  // The draft only discards app-limited samples that are below the current
  // estimate; our bulk flows are never app-limited.
  if (!ev.rate_app_limited || ev.delivery_rate >= btlbw_.best()) {
    btlbw_.update(static_cast<TimeNs>(round_count_), ev.delivery_rate);
  }
}

void Bbr::update_rtprop(const AckEvent& ev) {
  rtprop_expired_ = ev.now > rtprop_stamp_ + cfg_.rtprop_window;
  if (ev.rtt == kTimeNone) return;
  if (ev.rtt <= rtprop_ || rtprop_expired_) {
    rtprop_ = ev.rtt;
    rtprop_stamp_ = ev.now;
  }
}

void Bbr::check_full_pipe(const AckEvent& ev) {
  (void)ev;
  if (filled_pipe_ || !round_start_) return;
  if (btlbw_.best() >= full_bw_ * 1.25) {
    full_bw_ = btlbw_.best();
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) {
    filled_pipe_ = true;
    if (state_ == State::kStartup) {
      state_ = State::kDrain;
      pacing_gain_ = cfg_.drain_gain;
      cwnd_gain_now_ = cfg_.high_gain;
    }
  }
}

void Bbr::check_drain_done(const AckEvent& ev) {
  if (state_ != State::kDrain) return;
  if (ev.inflight <= bdp(1.0)) enter_probe_bw(ev.now);
}

void Bbr::enter_probe_bw(TimeNs now) {
  state_ = State::kProbeBw;
  cwnd_gain_now_ = cfg_.cwnd_gain;
  // Random initial phase, excluding the draining (0.75) phase, per draft.
  int idx = static_cast<int>(rng_.next_below(7));
  if (idx >= 1) ++idx;
  cycle_index_ = idx % 8;
  pacing_gain_ = kPacingGainCycle[cycle_index_];
  cycle_stamp_ = now;
}

void Bbr::update_probe_bw_cycle(const AckEvent& ev) {
  const TimeNs rtprop = rtprop_ == kTimeInf ? from_ms(10) : rtprop_;
  const bool elapsed = ev.now - cycle_stamp_ > rtprop;
  bool advance = false;
  const double gain = kPacingGainCycle[cycle_index_];
  // bbrnash-lint: allow(float-equality) -- exact-match dispatch on gain
  // values read verbatim from kPacingGainCycle; never computed.
  if (gain == 1.25) {
    // Keep probing until the extra in-flight had a chance to materialize
    // (or losses say the pipe is full).
    advance = elapsed && (loss_in_round_ || ev.inflight >= bdp(1.25));
    // bbrnash-lint: allow(float-equality) -- same exact-table dispatch.
  } else if (gain == 0.75) {
    // Stop draining early once we are back to one BDP.
    advance = elapsed || ev.inflight <= bdp(1.0);
  } else {
    advance = elapsed;
  }
  if (advance) {
    cycle_index_ = (cycle_index_ + 1) % 8;
    pacing_gain_ = kPacingGainCycle[cycle_index_];
    cycle_stamp_ = ev.now;
  }
}

void Bbr::check_probe_rtt(const AckEvent& ev) {
  if (state_ != State::kProbeRtt && rtprop_expired_ && !idle_restart_) {
    state_ = State::kProbeRtt;
    prior_cwnd_ = cwnd_;
    pacing_gain_ = 1.0;
    cwnd_gain_now_ = 1.0;
    probe_rtt_done_stamp_ = kTimeNone;
  }
  if (state_ == State::kProbeRtt) {
    if (probe_rtt_done_stamp_ == kTimeNone &&
        ev.inflight <= cfg_.min_pipe_cwnd) {
      // The pipe is drained to 4 packets: start the 200 ms dwell.
      probe_rtt_done_stamp_ = ev.now + cfg_.probe_rtt_duration;
      probe_rtt_round_done_ = false;
      next_round_delivered_ = ev.delivered;
    } else if (probe_rtt_done_stamp_ != kTimeNone) {
      if (round_start_) probe_rtt_round_done_ = true;
      if (probe_rtt_round_done_ && ev.now >= probe_rtt_done_stamp_) {
        exit_probe_rtt(ev.now);
      }
    }
  }
}

void Bbr::exit_probe_rtt(TimeNs now) {
  rtprop_stamp_ = now;
  cwnd_ = std::max(cwnd_, prior_cwnd_);
  if (filled_pipe_) {
    enter_probe_bw(now);
  } else {
    state_ = State::kStartup;
    pacing_gain_ = cfg_.high_gain;
    cwnd_gain_now_ = cfg_.high_gain;
  }
}

void Bbr::update_cwnd(const AckEvent& ev) {
  if (state_ == State::kProbeRtt) {
    cwnd_ = cfg_.min_pipe_cwnd;
    return;
  }

  // Recovery modulation (draft §4.2.3.4). The first round of a recovery
  // episode observes packet conservation; recovery exit restores the saved
  // window so the bandwidth model, not the loss, decides the rate.
  if (in_loss_recovery_) {
    if (!ev.in_recovery) {
      in_loss_recovery_ = false;
      packet_conservation_ = false;
      cwnd_ = std::max(cwnd_, saved_cwnd_);
    } else {
      if (packet_conservation_ && round_count_ > recovery_start_round_) {
        packet_conservation_ = false;
      }
      if (packet_conservation_) {
        cwnd_ = std::max(cwnd_, ev.inflight + ev.acked_bytes);
        cwnd_ = std::max(cwnd_, cfg_.min_pipe_cwnd);
        return;
      }
    }
  }

  const Bytes target = std::max(bdp(cwnd_gain_now_), cfg_.min_pipe_cwnd);
  if (filled_pipe_) {
    // Post-startup: grow toward the target by at most the acked bytes per
    // ACK (draft's incremental ramp), collapse immediately when above it.
    cwnd_ = cwnd_ < target ? std::min(cwnd_ + ev.acked_bytes, target) : target;
  } else {
    // Startup: never shrink (exponential growth shaped by the gains).
    cwnd_ = std::max(cwnd_, std::min(cwnd_ + ev.acked_bytes, target));
  }
}

void Bbr::on_congestion_event(const LossEvent& ev) {
  // BBR's *model* is loss-agnostic (paper assumption 4), but recovery
  // briefly switches to packet conservation, as in the draft/kernel.
  loss_in_round_ = true;
  if (!in_loss_recovery_) {
    in_loss_recovery_ = true;
    packet_conservation_ = true;
    recovery_start_round_ = round_count_;
    saved_cwnd_ = cwnd_;
    cwnd_ = std::max(ev.inflight, cfg_.min_pipe_cwnd);
  }
}

void Bbr::on_packet_lost(TimeNs now, Bytes lost_bytes, Bytes inflight) {
  (void)now;
  (void)inflight;
  if (in_loss_recovery_) {
    cwnd_ = std::max(cwnd_ - lost_bytes, cfg_.min_pipe_cwnd);
  }
}

void Bbr::on_rto(TimeNs now) {
  (void)now;
  // Conservative restart, as tcp_bbr does via cwnd events: collapse to the
  // minimal pipe but keep the model (filters) intact.
  prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
  cwnd_ = cfg_.min_pipe_cwnd;
}

}  // namespace bbrnash
