#include "cc/bbrv2.hpp"

#include <algorithm>

namespace bbrnash {

BbrV2::BbrV2(const BbrV2Config& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      btlbw_(FilterKind::kMax, cfg.btlbw_window_rounds, 0.0) {
  btlbw_.reserve(4096);  // no filter growth on the ack hot path
}

void BbrV2::on_start(TimeNs now) {
  cwnd_raw_ = cfg_.initial_cwnd;
  state_ = State::kStartup;
  pacing_gain_ = cfg_.high_gain;
  cwnd_gain_now_ = cfg_.high_gain;
  rtprop_stamp_ = now;
}

Bytes BbrV2::bdp(double gain) const {
  if (!filters_primed()) return cfg_.initial_cwnd;
  return static_cast<Bytes>(gain * btlbw_.best() * to_sec(rtprop_));
}

Bytes BbrV2::cwnd() const {
  if (state_ == State::kProbeRtt) return cfg_.min_pipe_cwnd;
  Bytes w = cwnd_raw_;
  w = std::min(w, inflight_hi_);
  w = std::min(w, inflight_lo_);
  return std::max(w, cfg_.min_pipe_cwnd);
}

BytesPerSec BbrV2::pacing_rate() const {
  if (!filters_primed()) return kNoPacing;
  return pacing_gain_ * btlbw_.best();
}

void BbrV2::on_ack(const AckEvent& ev) {
  update_round(ev);
  update_filters(ev);
  advance_state(ev);
  if (round_start_) update_bounds_on_round(ev);

  // Raw window tracks the v1-style target; the loss bounds clamp it.
  const Bytes target = std::max(bdp(cwnd_gain_now_), cfg_.min_pipe_cwnd);
  if (state_ == State::kProbeRtt) return;
  if (filled_pipe_) {
    cwnd_raw_ = cwnd_raw_ < target
                    ? std::min(cwnd_raw_ + ev.acked_bytes, target)
                    : target;
  } else {
    cwnd_raw_ = std::max(cwnd_raw_, std::min(cwnd_raw_ + ev.acked_bytes, target));
  }
}

void BbrV2::update_round(const AckEvent& ev) {
  round_start_ = false;
  if (ev.prior_delivered >= next_round_delivered_) {
    next_round_delivered_ = ev.delivered;
    ++round_count_;
    round_start_ = true;
  }
}

void BbrV2::update_filters(const AckEvent& ev) {
  if (ev.delivery_rate > 0 &&
      (!ev.rate_app_limited || ev.delivery_rate >= btlbw_.best())) {
    btlbw_.update(static_cast<TimeNs>(round_count_), ev.delivery_rate);
  }
  rtprop_expired_ = ev.now > rtprop_stamp_ + cfg_.rtprop_window;
  if (ev.rtt != kTimeNone && (ev.rtt <= rtprop_ || rtprop_expired_)) {
    rtprop_ = ev.rtt;
    rtprop_stamp_ = ev.now;
  }
}

void BbrV2::advance_state(const AckEvent& ev) {
  // Startup / full-pipe detection (identical to v1, but loss also ends
  // startup — BBRv2 exits STARTUP on loss rounds).
  if (!filled_pipe_ && round_start_) {
    if (btlbw_.best() >= full_bw_ * 1.25) {
      full_bw_ = btlbw_.best();
      full_bw_count_ = 0;
    } else if (++full_bw_count_ >= 3) {
      filled_pipe_ = true;
    }
    if (loss_in_round_ && inflight_hi_ != kInfBytes) filled_pipe_ = true;
    if (filled_pipe_ && state_ == State::kStartup) {
      state_ = State::kDrain;
      pacing_gain_ = cfg_.drain_gain;
      cwnd_gain_now_ = cfg_.high_gain;
    }
  }
  if (state_ == State::kDrain && ev.inflight <= bdp(1.0)) {
    enter_probe_bw(ev.now);
  }
  if (state_ == State::kProbeBw) {
    const TimeNs rtprop = rtprop_ == kTimeInf ? from_ms(10) : rtprop_;
    const bool elapsed = ev.now - cycle_stamp_ > rtprop;
    const double gain = kPacingGainCycle[cycle_index_];
    bool advance = false;
    // bbrnash-lint: allow(float-equality) -- exact-match dispatch on gain
    // values read verbatim from kPacingGainCycle; never computed.
    if (gain == 1.25) {
      advance = elapsed && (loss_in_round_ || ev.inflight >= bdp(1.25));
      // bbrnash-lint: allow(float-equality) -- same exact-table dispatch.
    } else if (gain == 0.75) {
      advance = elapsed || ev.inflight <= bdp(1.0);
    } else {
      advance = elapsed;
    }
    if (advance) {
      cycle_index_ = (cycle_index_ + 1) % 8;
      if (cycle_index_ == 0) ++cycles_completed_;
      pacing_gain_ = kPacingGainCycle[cycle_index_];
      cycle_stamp_ = ev.now;
    }
  }
  // ProbeRTT entry/exit (v1 cadence).
  if (state_ != State::kProbeRtt && rtprop_expired_) {
    state_ = State::kProbeRtt;
    prior_cwnd_ = cwnd_raw_;
    pacing_gain_ = 1.0;
    cwnd_gain_now_ = 1.0;
    probe_rtt_done_stamp_ = kTimeNone;
  }
  if (state_ == State::kProbeRtt) {
    if (probe_rtt_done_stamp_ == kTimeNone &&
        ev.inflight <= cfg_.min_pipe_cwnd) {
      probe_rtt_done_stamp_ = ev.now + cfg_.probe_rtt_duration;
      probe_rtt_round_done_ = false;
      next_round_delivered_ = ev.delivered;
    } else if (probe_rtt_done_stamp_ != kTimeNone) {
      if (round_start_) probe_rtt_round_done_ = true;
      if (probe_rtt_round_done_ && ev.now >= probe_rtt_done_stamp_) {
        rtprop_stamp_ = ev.now;
        cwnd_raw_ = std::max(cwnd_raw_, prior_cwnd_);
        if (filled_pipe_) {
          enter_probe_bw(ev.now);
        } else {
          state_ = State::kStartup;
          pacing_gain_ = cfg_.high_gain;
          cwnd_gain_now_ = cfg_.high_gain;
        }
      }
    }
  }
}

void BbrV2::enter_probe_bw(TimeNs now) {
  state_ = State::kProbeBw;
  cwnd_gain_now_ = cfg_.cwnd_gain;
  int idx = static_cast<int>(rng_.next_below(7));
  if (idx >= 1) ++idx;
  cycle_index_ = idx % 8;
  pacing_gain_ = kPacingGainCycle[cycle_index_];
  cycle_stamp_ = now;
}

void BbrV2::update_bounds_on_round(const AckEvent& ev) {
  (void)ev;
  if (!loss_in_round_) {
    // Loss-free round: probe the long-term ceiling back up and, after a
    // full loss-free cycle, release the short-term bound entirely.
    if (inflight_hi_ != kInfBytes) {
      inflight_hi_ = static_cast<Bytes>(
          static_cast<double>(inflight_hi_) * cfg_.probe_up_factor);
      if (inflight_hi_ > bdp(4.0)) inflight_hi_ = kInfBytes;
    }
    if (inflight_lo_ != kInfBytes && cycles_completed_ > lo_release_cycle_) {
      inflight_lo_ = kInfBytes;
    }
  }
  loss_in_round_ = false;
}

void BbrV2::on_congestion_event(const LossEvent& ev) {
  loss_in_round_ = true;
  // Short-term: multiplicative decrease like a loss-based CCA (beta = 0.7).
  const Bytes current = cwnd();
  inflight_lo_ = std::max<Bytes>(
      static_cast<Bytes>(static_cast<double>(current) * cfg_.beta),
      cfg_.min_pipe_cwnd);
  lo_release_cycle_ = cycles_completed_;
  // Long-term: remember the in-flight level where loss appeared.
  inflight_hi_ = std::max(std::min(inflight_hi_, ev.inflight + ev.lost_bytes),
                          cfg_.min_pipe_cwnd);
}

void BbrV2::on_packet_lost(TimeNs now, Bytes lost_bytes, Bytes inflight) {
  (void)now;
  (void)lost_bytes;
  (void)inflight;
  loss_in_round_ = true;
}

void BbrV2::on_rto(TimeNs now) {
  (void)now;
  prior_cwnd_ = std::max(prior_cwnd_, cwnd_raw_);
  cwnd_raw_ = cfg_.min_pipe_cwnd;
  inflight_lo_ = cfg_.min_pipe_cwnd;
}

}  // namespace bbrnash
