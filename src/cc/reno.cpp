#include "cc/reno.hpp"

#include <algorithm>
#include <limits>

namespace bbrnash {

Reno::Reno(const RenoConfig& cfg) : cfg_(cfg) {}

void Reno::on_start(TimeNs now) {
  (void)now;
  cwnd_ = cfg_.initial_cwnd;
  ssthresh_ = std::numeric_limits<Bytes>::max() / 2;
}

void Reno::on_ack(const AckEvent& ev) {
  if (ev.in_recovery) return;
  if (cwnd_ < ssthresh_) {
    cwnd_ += ev.acked_bytes;
    return;
  }
  // Congestion avoidance: one MSS per cwnd's worth of acknowledged bytes
  // (byte-counting variant of cwnd += MSS*MSS/cwnd that is exact across
  // partial windows).
  ack_credit_ += ev.acked_bytes;
  if (ack_credit_ >= cwnd_) {
    ack_credit_ -= cwnd_;
    cwnd_ += cfg_.mss;
  }
}

void Reno::on_congestion_event(const LossEvent& ev) {
  (void)ev;
  ssthresh_ = std::max(cfg_.min_cwnd, cwnd_ / 2);
  cwnd_ = ssthresh_;
  ack_credit_ = 0;
}

void Reno::on_rto(TimeNs now) {
  (void)now;
  ssthresh_ = std::max(cfg_.min_cwnd, cwnd_ / 2);
  cwnd_ = cfg_.mss;
  ack_credit_ = 0;
}

}  // namespace bbrnash
