#include "cc/copa.hpp"

#include <algorithm>

namespace bbrnash {

Copa::Copa(const CopaConfig& cfg)
    : cfg_(cfg),
      min_rtt_(FilterKind::kMin, cfg.min_rtt_window, kTimeInf),
      standing_rtt_(FilterKind::kMin, from_ms(50), kTimeInf) {
  min_rtt_.reserve(4096);  // no filter growth on the ack hot path
  standing_rtt_.reserve(4096);
}

void Copa::on_start(TimeNs now) {
  (void)now;
  cwnd_ = cfg_.initial_cwnd;
}

TimeNs Copa::queuing_delay() const {
  const TimeNs standing = standing_rtt_.best();
  const TimeNs base = min_rtt_.best();
  if (standing == kTimeInf || base == kTimeInf) return 0;
  return std::max<TimeNs>(0, standing - base);
}

BytesPerSec Copa::pacing_rate() const {
  // Copa paces at 2*cwnd/RTTstanding to smooth bursts.
  const TimeNs standing = standing_rtt_.best();
  if (standing == kTimeInf || standing <= 0) return kNoPacing;
  return 2.0 * static_cast<double>(cwnd_) / to_sec(standing);
}

void Copa::on_ack(const AckEvent& ev) {
  if (ev.rtt == kTimeNone) return;

  srtt_ = srtt_ == kTimeNone ? ev.rtt : (7 * srtt_ + ev.rtt) / 8;
  min_rtt_.update(ev.now, ev.rtt);
  // Standing window is srtt/2 — tracks the *recent* low RTT so that
  // self-induced queueing from the last probe does not pollute d_q.
  standing_rtt_.set_window(std::max<TimeNs>(srtt_ / 2, from_ms(1)));
  standing_rtt_.update(ev.now, ev.rtt);

  const TimeNs d_q = queuing_delay();
  const double cwnd_pkts =
      static_cast<double>(cwnd_) / static_cast<double>(cfg_.mss);

  // Target rate 1/(delta*d_q) packets/s; infinite when the queue is empty.
  double target_rate_pps = 1e18;
  if (d_q > 0) target_rate_pps = 1.0 / (cfg_.delta * to_sec(d_q));
  const TimeNs standing = standing_rtt_.best();
  const double current_rate_pps =
      standing > 0 && standing != kTimeInf ? cwnd_pkts / to_sec(standing) : 0.0;

  if (slow_start_) {
    if (current_rate_pps < target_rate_pps) {
      cwnd_ += ev.acked_bytes;  // double per RTT
      return;
    }
    slow_start_ = false;
  }

  update_velocity(ev.now);

  const double step_pkts = velocity_ / (cfg_.delta * cwnd_pkts);
  const auto step_bytes = static_cast<Bytes>(
      step_pkts * static_cast<double>(cfg_.mss) *
      (static_cast<double>(ev.acked_bytes) / static_cast<double>(cfg_.mss)));
  if (current_rate_pps <= target_rate_pps) {
    cwnd_ += std::max<Bytes>(step_bytes, 1);
  } else {
    cwnd_ -= std::max<Bytes>(step_bytes, 1);
  }
  cwnd_ = std::max(cwnd_, cfg_.min_cwnd);
}

void Copa::update_velocity(TimeNs now) {
  if (srtt_ == kTimeNone) return;
  if (now - last_direction_check_ < srtt_) return;

  const int dir = cwnd_ > cwnd_at_last_check_   ? 1
                  : cwnd_ < cwnd_at_last_check_ ? -1
                                                : 0;
  if (dir != 0 && dir == direction_) {
    ++same_direction_rtts_;
    // Velocity doubles only after 3 consistent RTTs (per the Copa paper).
    if (same_direction_rtts_ >= 3) {
      velocity_ = std::min(velocity_ * 2.0, cfg_.max_velocity);
    }
  } else {
    velocity_ = 1.0;
    same_direction_rtts_ = 0;
  }
  direction_ = dir;
  cwnd_at_last_check_ = cwnd_;
  last_direction_check_ = now;
}

void Copa::on_congestion_event(const LossEvent& ev) {
  (void)ev;
  // Default-mode Copa reacts to loss only via the delay signal; a batch
  // loss usually coincides with a delay spike which the target tracks.
  // (Competitive-mode delta adaptation is out of scope; see header.)
}

void Copa::on_rto(TimeNs now) {
  (void)now;
  cwnd_ = cfg_.min_cwnd;
  velocity_ = 1.0;
  same_direction_rtts_ = 0;
  slow_start_ = true;
}

}  // namespace bbrnash
