#include "cc/cubic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bbrnash {

Cubic::Cubic(const CubicConfig& cfg) : cfg_(cfg) {}

void Cubic::on_start(TimeNs now) {
  (void)now;
  cwnd_ = cfg_.initial_cwnd;
  ssthresh_ = std::numeric_limits<Bytes>::max() / 2;
}

void Cubic::on_ack(const AckEvent& ev) {
  if (ev.rtt != kTimeNone) last_srtt_ = ev.rtt;
  // Window is frozen during recovery (standard conservative behaviour;
  // growth resumes once the episode ends).
  if (ev.in_recovery) return;

  if (cwnd_ < ssthresh_) {
    if (cfg_.hystart) hystart_update(ev);
    if (cwnd_ < ssthresh_) {
      cwnd_ += ev.acked_bytes;  // slow start: one MSS per acked MSS
      return;
    }
  }
  cubic_growth(ev);
}

// HyStart delay-based exit (the RFC 9406 mechanism, simplified): when a
// round's minimum RTT exceeds the previous round's by eta =
// clamp(last/8, min_eta, max_eta), congestion is building — stop slow
// start at the current window instead of pushing to loss.
void Cubic::hystart_update(const AckEvent& ev) {
  if (ev.rtt != kTimeNone) {
    round_min_rtt_ = std::min(round_min_rtt_, ev.rtt);
  }
  if (ev.prior_delivered < next_round_delivered_) return;
  // Round boundary.
  next_round_delivered_ = ev.delivered;
  if (round_min_rtt_ != kTimeInf && last_round_min_rtt_ != kTimeInf) {
    const TimeNs eta = std::clamp(last_round_min_rtt_ / 8,
                                  cfg_.hystart_min_eta, cfg_.hystart_max_eta);
    if (round_min_rtt_ >= last_round_min_rtt_ + eta) {
      ssthresh_ = std::max(cwnd_, cfg_.min_cwnd);
    }
  }
  if (round_min_rtt_ != kTimeInf) last_round_min_rtt_ = round_min_rtt_;
  round_min_rtt_ = kTimeInf;
}

void Cubic::cubic_growth(const AckEvent& ev) {
  const double cwnd_seg = segments(cwnd_);

  if (epoch_start_ == kTimeNone) {
    epoch_start_ = ev.now;
    if (w_max_ < cwnd_seg) {
      // We are already past the previous saturation point.
      w_max_ = cwnd_seg;
      k_ = 0.0;
    } else {
      k_ = std::cbrt((w_max_ - cwnd_seg) / cfg_.c);
    }
    if (w_est_ <= 0.0) w_est_ = cwnd_seg;
  }

  const double t = to_sec(ev.now - epoch_start_);
  const double rtt_s = last_srtt_ != kTimeNone ? to_sec(last_srtt_) : 0.0;

  // W_cubic one RTT in the future: the RFC's growth-pacing trick, so the
  // window reaches the cubic curve's value within the next round trip.
  const double dt = t + rtt_s - k_;
  const double target = cfg_.c * dt * dt * dt + w_max_;

  const double acked_seg = segments(ev.acked_bytes);
  double next = cwnd_seg;
  if (target > cwnd_seg) {
    next += (target - cwnd_seg) / cwnd_seg * acked_seg;
  } else {
    // Minimal growth keeps the epoch clock meaningful in the concave tail.
    next += 0.01 * acked_seg / cwnd_seg;
  }

  if (cfg_.tcp_friendly) {
    // RFC 9438 Reno-emulation: alpha = 3 * (1 - beta) / (1 + beta).
    const double alpha = 3.0 * (1.0 - cfg_.beta) / (1.0 + cfg_.beta);
    w_est_ += alpha * acked_seg / cwnd_seg;
    next = std::max(next, w_est_);
  }

  cwnd_ = std::max(cfg_.min_cwnd, bytes_of(next));
}

void Cubic::on_congestion_event(const LossEvent& ev) {
  (void)ev;
  const double cwnd_seg = segments(cwnd_);
  if (cfg_.fast_convergence && cwnd_seg < w_max_) {
    // Release bandwidth early so newcomers converge faster.
    w_max_ = cwnd_seg * (1.0 + cfg_.beta) / 2.0;
  } else {
    w_max_ = cwnd_seg;
  }
  ssthresh_ = std::max(cfg_.min_cwnd,
                       static_cast<Bytes>(static_cast<double>(cwnd_) * cfg_.beta));
  cwnd_ = ssthresh_;
  epoch_start_ = kTimeNone;
  w_est_ = segments(cwnd_);
}

void Cubic::on_rto(TimeNs now) {
  (void)now;
  // Linux semantics: remember the saturation point, collapse to loss-window.
  const double cwnd_seg = segments(cwnd_);
  w_max_ = cwnd_seg;
  ssthresh_ = std::max(cfg_.min_cwnd,
                       static_cast<Bytes>(static_cast<double>(cwnd_) * cfg_.beta));
  cwnd_ = cfg_.mss;
  epoch_start_ = kTimeNone;
  w_est_ = 0.0;
}

}  // namespace bbrnash
