// Devirtualized congestion-control dispatch.
//
// The Sender's hot loop consults its CC several times per ACK (cwnd,
// pacing_rate, pacing_burst_segments, on_ack); through the virtual
// CongestionControl interface each consult is an indirect call the
// compiler cannot inline into the transport. CcVariant closes that gap:
// it holds one of the seven concrete algorithms *by value* in a
// std::variant and dispatches with a switch on the variant index, so
// every member call resolves to a direct (inlinable — all seven classes
// are `final`) call on the concrete type.
//
// The virtual interface stays fully supported as the eighth alternative:
// a std::unique_ptr<CongestionControl> adapter. Tests, examples, and
// custom/mock algorithms keep constructing Senders from unique_ptrs and
// pay exactly the old virtual-dispatch cost; the simulation results are
// bit-identical either way (same algorithm code, same arithmetic — only
// the call mechanics differ), which tests/exp pin via the jobs x dispatch
// equivalence suite.
//
// Adding CCA #8: see DESIGN.md §6a — implement the class (final, derived
// from CongestionControl for introspection), append it to the Var
// alternative list *before* the unique_ptr adapter, add a case label to
// both dispatch() overloads, and extend make_cc_variant in factory.cpp.
#pragma once

#include <memory>
#include <utility>
#include <variant>

#include "cc/bbr.hpp"
#include "cc/bbrv2.hpp"
#include "cc/congestion_control.hpp"
#include "cc/copa.hpp"
#include "cc/cubic.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"
#include "cc/vivace.hpp"

namespace bbrnash {

class CcVariant {
  using Var = std::variant<Cubic, Reno, Bbr, BbrV2, Copa, Vivace, Vegas,
                           std::unique_ptr<CongestionControl>>;

  /// Switch-on-index dispatch (instead of std::visit's function-pointer
  /// table) so each arm is a direct call the optimizer inlines into the
  /// sender hot loop. The adapter arm dereferences to the base class,
  /// which keeps its virtual dispatch. Defined before all uses: the
  /// deduced (decltype(auto)) return type must be resolvable at each call.
  template <typename F>
  decltype(auto) dispatch(F&& f) {
    switch (v_.index()) {
      case 0: return f(*std::get_if<0>(&v_));
      case 1: return f(*std::get_if<1>(&v_));
      case 2: return f(*std::get_if<2>(&v_));
      case 3: return f(*std::get_if<3>(&v_));
      case 4: return f(*std::get_if<4>(&v_));
      case 5: return f(*std::get_if<5>(&v_));
      case 6: return f(*std::get_if<6>(&v_));
      default: return f(**std::get_if<7>(&v_));
    }
  }
  template <typename F>
  decltype(auto) dispatch(F&& f) const {
    switch (v_.index()) {
      case 0: return f(*std::get_if<0>(&v_));
      case 1: return f(*std::get_if<1>(&v_));
      case 2: return f(*std::get_if<2>(&v_));
      case 3: return f(*std::get_if<3>(&v_));
      case 4: return f(*std::get_if<4>(&v_));
      case 5: return f(*std::get_if<5>(&v_));
      case 6: return f(*std::get_if<6>(&v_));
      default: return f(**std::get_if<7>(&v_));
    }
  }

  Var v_;

 public:
  explicit CcVariant(Cubic cc) : v_(std::move(cc)) {}
  explicit CcVariant(Reno cc) : v_(std::move(cc)) {}
  explicit CcVariant(Bbr cc) : v_(std::move(cc)) {}
  explicit CcVariant(BbrV2 cc) : v_(std::move(cc)) {}
  explicit CcVariant(Copa cc) : v_(std::move(cc)) {}
  explicit CcVariant(Vivace cc) : v_(std::move(cc)) {}
  explicit CcVariant(Vegas cc) : v_(std::move(cc)) {}
  /// Virtual-dispatch adapter: wraps any CongestionControl (custom or
  /// scripted test doubles) at the old indirect-call cost.
  explicit CcVariant(std::unique_ptr<CongestionControl> cc)
      : v_(std::move(cc)) {}

  CcVariant(CcVariant&&) = default;
  CcVariant& operator=(CcVariant&&) = default;

  void on_start(TimeNs now) {
    dispatch([&](auto& c) { c.on_start(now); });
  }
  void on_ack(const AckEvent& ev) {
    dispatch([&](auto& c) { c.on_ack(ev); });
  }
  void on_congestion_event(const LossEvent& ev) {
    dispatch([&](auto& c) { c.on_congestion_event(ev); });
  }
  void on_packet_lost(TimeNs now, Bytes lost_bytes, Bytes inflight) {
    dispatch([&](auto& c) { c.on_packet_lost(now, lost_bytes, inflight); });
  }
  void on_rto(TimeNs now) {
    dispatch([&](auto& c) { c.on_rto(now); });
  }
  [[nodiscard]] Bytes cwnd() const {
    return dispatch([](const auto& c) { return c.cwnd(); });
  }
  [[nodiscard]] BytesPerSec pacing_rate() const {
    return dispatch([](const auto& c) { return c.pacing_rate(); });
  }
  [[nodiscard]] int pacing_burst_segments() const {
    return dispatch([](const auto& c) { return c.pacing_burst_segments(); });
  }

  /// The held algorithm as its (virtual) base — for introspection sites
  /// that snapshot state or dynamic_cast to a concrete CCA. The reference
  /// has the true dynamic type in every alternative.
  [[nodiscard]] CongestionControl& base() {
    return dispatch(
        [](auto& c) -> CongestionControl& { return c; });
  }
  [[nodiscard]] const CongestionControl& base() const {
    return dispatch(
        [](const auto& c) -> const CongestionControl& { return c; });
  }
};

/// Creates a devirtualized (by-value) CC instance of the given kind, with
/// the exact same configuration mapping as make_congestion_control.
[[nodiscard]] CcVariant make_cc_variant(CcKind kind, const CcConfig& cfg);

}  // namespace bbrnash
