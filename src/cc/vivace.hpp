// PCC Vivace (Dong et al., NSDI 2018) — online-learning rate control.
//
// Vivace divides time into monitor intervals (MIs) of about one RTT. In
// each probing epoch it tests rate r(1+eps) for one MI and r(1-eps) for the
// next, computes the utility
//
//     U(x) = x^0.9 - b * x * d(RTT)/dt - c * x * L
//
// (x = goodput in Mbps, b = 900, c = 11.35, L = loss fraction — the paper's
// default coefficients) for both, and moves the rate in the direction of
// higher utility with a confidence-amplified gradient step.
//
// Implementation notes (vs the reference UDP implementation):
//   * Measurements are attributed to the MI in which a packet was *sent*
//     (send time reconstructed as ack_time - rtt). Without this, the one-
//     RTT ack lag makes each MI observe the other arm's rate and the
//     gradient sign inverts.
//   * Each probe epoch is up-MI, down-MI, then a settle-MI at the decided
//     base rate, during which the two buckets finish collecting acks.
//   * The RTT gradient is a least-squares slope with a deadband, like the
//     reference implementation's latency filters.
//
// The paper uses Vivace in §4.2 (Fig. 7) as a post-BBR CCA that DOES take a
// disproportionate bandwidth share against CUBIC at small flow counts, so a
// mixed Nash Equilibrium is expected for it too.
#pragma once

#include <string>

#include "cc/congestion_control.hpp"

namespace bbrnash {

struct VivaceConfig {
  Bytes mss = kDefaultMss;
  Bytes initial_cwnd = 10 * kDefaultMss;
  double utility_exponent = 0.9;
  double latency_coeff = 150.0;   ///< b
  double loss_coeff = 11.35;      ///< c
  double probe_epsilon = 0.05;    ///< +/- 5% rate probes
  /// Latency-gradient deadband (s/s): inflation below this is measurement
  /// noise (serialization quanta, ack jitter) and is ignored.
  double gradient_deadband = 0.01;
  double min_rate_mbps = 1.0;
  double max_step_fraction = 0.25;  ///< cap a single step at 25% of rate
  double base_step_mbps = 0.25;     ///< theta0, scaled by confidence
  int max_confidence = 8;
  /// Loss fraction above which the rate snaps back to measured goodput.
  /// Only applied when the probe pair carried enough packets for the
  /// fraction to be meaningful.
  double loss_brake = 0.30;
  int loss_brake_min_packets = 30;
};

class Vivace final : public CongestionControl {
 public:
  explicit Vivace(const VivaceConfig& cfg = {});

  void on_start(TimeNs now) override;
  void on_ack(const AckEvent& ev) override;
  void on_congestion_event(const LossEvent& ev) override;
  void on_packet_lost(TimeNs now, Bytes lost_bytes, Bytes inflight) override;
  void on_rto(TimeNs now) override;

  [[nodiscard]] Bytes cwnd() const override;
  [[nodiscard]] BytesPerSec pacing_rate() const override;
  [[nodiscard]] std::string name() const override { return "vivace"; }
  [[nodiscard]] int pacing_burst_segments() const override { return 1; }

  [[nodiscard]] double rate_mbps() const { return rate_mbps_; }

 private:
  enum class Phase { kSlowStart, kUp, kDown, kSettle };

  /// Measurement bucket for one MI, keyed by packet *send* time.
  struct Bucket {
    TimeNs start = kTimeNone;
    TimeNs end = kTimeNone;  ///< exclusive
    double rate_mbps = 0.0;
    Bytes acked = 0;
    Bytes lost = 0;
    // Least-squares accumulators for RTT-vs-send-time slope.
    double n = 0, st = 0, sy = 0, stt = 0, sty = 0;

    [[nodiscard]] bool contains(TimeNs t) const {
      return start != kTimeNone && t >= start && t < end;
    }
    void add_rtt(TimeNs t_send, TimeNs rtt) {
      const double t = static_cast<double>(t_send - start) * 1e-9;
      const double y = static_cast<double>(rtt) * 1e-9;
      n += 1;
      st += t;
      sy += y;
      stt += t * t;
      sty += t * y;
    }
  };

  [[nodiscard]] TimeNs mi_duration(double rate) const;
  [[nodiscard]] double gradient(const Bucket& b) const;
  [[nodiscard]] double goodput_mbps(const Bucket& b) const;
  [[nodiscard]] double utility(const Bucket& b, double loss_fraction) const;
  void attribute_ack(const AckEvent& ev);
  void decide(TimeNs now);
  void step_rate(double grad_direction);
  void start_epoch(TimeNs now);

  VivaceConfig cfg_;
  double rate_mbps_ = 0.0;
  double pacing_now_mbps_ = 0.0;
  TimeNs srtt_ = kTimeNone;

  Phase phase_ = Phase::kSlowStart;
  TimeNs phase_start_ = kTimeNone;
  TimeNs phase_end_ = kTimeNone;

  Bucket up_;
  Bucket down_;
  Bucket ss_;  ///< slow-start measurement bucket

  int streak_ = 0;
  int last_direction_ = 0;
  double last_utility_ = 0.0;
  bool has_last_utility_ = false;
};

}  // namespace bbrnash
