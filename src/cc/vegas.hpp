// TCP Vegas (Brakmo & Peterson, 1995) — the classic delay-based algorithm.
//
// Vegas compares the expected rate (cwnd / base_rtt) with the actual rate
// (cwnd / observed_rtt) once per RTT. If the difference (in packets of
// standing queue) is below alpha it grows the window by one MSS; above
// beta it shrinks by one MSS; in between it holds.
//
// Included for the related-work corner of the paper (§6 cites the
// Reno-vs-Vegas Nash-equilibrium analyses of Akella et al. and
// Trinh & Molnár); the related_work_games example reproduces that game
// with this implementation.
#pragma once

#include <string>

#include "cc/congestion_control.hpp"

namespace bbrnash {

struct VegasConfig {
  Bytes mss = kDefaultMss;
  Bytes initial_cwnd = 10 * kDefaultMss;
  double alpha = 2.0;  ///< lower standing-queue threshold (packets)
  double beta = 4.0;   ///< upper standing-queue threshold (packets)
  Bytes min_cwnd = 2 * kDefaultMss;
};

class Vegas final : public CongestionControl {
 public:
  explicit Vegas(const VegasConfig& cfg = {});

  void on_start(TimeNs now) override;
  void on_ack(const AckEvent& ev) override;
  void on_congestion_event(const LossEvent& ev) override;
  void on_rto(TimeNs now) override;

  [[nodiscard]] Bytes cwnd() const override { return cwnd_; }
  [[nodiscard]] BytesPerSec pacing_rate() const override { return kNoPacing; }
  [[nodiscard]] std::string name() const override { return "vegas"; }

  [[nodiscard]] bool in_slow_start() const { return slow_start_; }
  [[nodiscard]] TimeNs base_rtt() const { return base_rtt_; }

 private:
  VegasConfig cfg_;
  Bytes cwnd_ = 0;
  bool slow_start_ = true;

  TimeNs base_rtt_ = kTimeInf;
  // Per-round bookkeeping (rounds delimited by delivery counts).
  Bytes next_round_delivered_ = 0;
  TimeNs round_min_rtt_ = kTimeInf;
  bool grow_this_round_ = true;  ///< Vegas doubles every *other* round in SS
};

}  // namespace bbrnash
