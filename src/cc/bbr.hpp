// BBR v1 (Cardwell et al., 2016), after
// draft-cardwell-iccrg-bbr-congestion-control-00.
//
// The mechanisms the paper's model rests on all emerge from this state
// machine:
//   * the 2x bandwidth-delay-product in-flight cap (cwnd_gain = 2 in
//     ProbeBW) — the paper's Eq. 7,
//   * the RTprop (min-RTT) estimate that gets inflated by competing CUBIC
//     traffic that never fully drains during ProbeRTT — the paper's RTT+,
//   * ProbeBW gain cycling [1.25, 0.75, 1x6] and the 10-second ProbeRTT
//     cadence (cwnd = 4 packets for ~200 ms).
// Loss is deliberately ignored (the paper's assumption 4: BBRv1 is
// loss-agnostic); only an RTO resets the in-flight conservatively.
#pragma once

#include <string>

#include "cc/congestion_control.hpp"
#include "util/filters.hpp"
#include "util/rng.hpp"

namespace bbrnash {

struct BbrConfig {
  Bytes mss = kDefaultMss;
  Bytes initial_cwnd = 10 * kDefaultMss;
  double high_gain = 2.0 / 0.6931471805599453;  ///< 2/ln2 ~ 2.885
  double cwnd_gain = 2.0;                        ///< ProbeBW in-flight cap
  double drain_gain = 0.6931471805599453 / 2.0;
  int btlbw_window_rounds = 10;
  TimeNs rtprop_window = from_sec(10);
  TimeNs probe_rtt_interval = from_sec(10);
  TimeNs probe_rtt_duration = from_ms(200);
  Bytes min_pipe_cwnd = 4 * kDefaultMss;
  std::uint64_t seed = 1;  ///< randomizes the initial ProbeBW cycle phase
};

class Bbr final : public CongestionControl {
 public:
  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };

  explicit Bbr(const BbrConfig& cfg = {});

  void on_start(TimeNs now) override;
  void on_ack(const AckEvent& ev) override;
  void on_congestion_event(const LossEvent& ev) override;
  void on_packet_lost(TimeNs now, Bytes lost_bytes, Bytes inflight) override;
  void on_rto(TimeNs now) override;

  [[nodiscard]] Bytes cwnd() const override { return cwnd_; }
  [[nodiscard]] BytesPerSec pacing_rate() const override;
  [[nodiscard]] std::string name() const override { return "bbr"; }

  // Introspection (tests, traces, ablations).
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] BytesPerSec btlbw() const { return btlbw_.best(); }
  [[nodiscard]] TimeNs rtprop() const { return rtprop_; }
  [[nodiscard]] Bytes bdp_estimate() const { return bdp(1.0); }
  [[nodiscard]] double pacing_gain() const { return pacing_gain_; }
  [[nodiscard]] std::uint64_t round_count() const { return round_count_; }

  /// Ablation knob (bench_ablation_inflight_cap): overrides the ProbeBW
  /// cwnd gain the paper assumes to be 2.
  void set_cwnd_gain(double gain) { cfg_.cwnd_gain = gain; }

 private:
  static constexpr double kPacingGainCycle[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};

  void update_round(const AckEvent& ev);
  void update_btlbw(const AckEvent& ev);
  void update_rtprop(const AckEvent& ev);
  void check_full_pipe(const AckEvent& ev);
  void check_drain_done(const AckEvent& ev);
  void update_probe_bw_cycle(const AckEvent& ev);
  void check_probe_rtt(const AckEvent& ev);
  void enter_probe_bw(TimeNs now);
  void exit_probe_rtt(TimeNs now);
  void update_cwnd(const AckEvent& ev);

  [[nodiscard]] Bytes bdp(double gain) const;
  [[nodiscard]] bool filters_primed() const {
    return !btlbw_.empty() && rtprop_ != kTimeInf;
  }

  BbrConfig cfg_;
  Rng rng_;

  State state_ = State::kStartup;
  double pacing_gain_ = 1.0;
  double cwnd_gain_now_ = 1.0;
  Bytes cwnd_ = 0;

  WindowedFilter<BytesPerSec> btlbw_;
  // RTprop is NOT a sliding-window min: per the draft it is an explicit
  // estimate plus the timestamp of its last adoption. A sample is adopted
  // when it improves the estimate OR when the estimate is older than the
  // filter window ("expired"); the expired flag, sampled before adoption,
  // is what triggers ProbeRTT. A sliding min would silently follow queue
  // growth and ProbeRTT would never fire again.
  TimeNs rtprop_ = kTimeInf;
  TimeNs rtprop_stamp_ = 0;  ///< when the estimate was last adopted
  bool rtprop_expired_ = false;
  bool idle_restart_ = false;

  // Round counting (one round = one delivered cwnd's worth).
  Bytes next_round_delivered_ = 0;
  std::uint64_t round_count_ = 0;
  bool round_start_ = false;

  // Startup full-pipe detection.
  BytesPerSec full_bw_ = 0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  // ProbeBW cycle.
  int cycle_index_ = 0;
  TimeNs cycle_stamp_ = 0;
  bool loss_in_round_ = false;

  // ProbeRTT.
  TimeNs probe_rtt_done_stamp_ = kTimeNone;
  bool probe_rtt_round_done_ = false;
  Bytes prior_cwnd_ = 0;

  // Loss-recovery cwnd modulation (draft §4.2.3.4): BBR is loss-agnostic in
  // its *model*, but during recovery it observes packet conservation for
  // one round and restores the saved cwnd on exit. Without this, mass-loss
  // rounds (e.g. after an RTprop re-estimate doubles the window into a full
  // buffer) turn into retransmit storms.
  bool in_loss_recovery_ = false;
  bool packet_conservation_ = false;
  Bytes saved_cwnd_ = 0;
  std::uint64_t recovery_start_round_ = 0;
};

}  // namespace bbrnash
