// BBR v2 (simplified), after the IETF-104 iccrg update by Cardwell et al.
//
// The paper uses BBRv2 only for the qualitative claims in §4.2/§4.6:
// "BBRv2 behaves like BBR, but because it has a variable cwnd, it is able
// to react to packet loss", hence it is less aggressive against CUBIC and
// its Nash Equilibria contain more CUBIC flows (Fig. 11). This class keeps
// BBRv1's filters/state machine and adds the loss-adaptive in-flight
// ceiling that produces exactly that behaviour:
//   * inflight_hi — long-term ceiling, set to the in-flight level at which
//     a loss round occurred and probed back up multiplicatively in
//     loss-free rounds;
//   * inflight_lo — short-term bound, beta=0.7 multiplicative decrease on
//     each loss round (BBRv2's beta), released after a full cycle without
//     loss.
// Full BBRv2 (ECN support, PROBE_UP/DOWN/CRUISE/REFILL sub-states, loss
// thresholds at 2%) is intentionally out of scope; DESIGN.md records the
// substitution.
#pragma once

#include <string>

#include "cc/congestion_control.hpp"
#include "util/filters.hpp"
#include "util/rng.hpp"

namespace bbrnash {

struct BbrV2Config {
  Bytes mss = kDefaultMss;
  Bytes initial_cwnd = 10 * kDefaultMss;
  double high_gain = 2.0 / 0.6931471805599453;
  double cwnd_gain = 2.0;
  double drain_gain = 0.6931471805599453 / 2.0;
  double beta = 0.7;              ///< inflight_lo multiplicative decrease
  double probe_up_factor = 1.08;  ///< inflight_hi growth per loss-free round
  int btlbw_window_rounds = 10;
  TimeNs rtprop_window = from_sec(10);
  TimeNs probe_rtt_interval = from_sec(10);
  /// BBRv2 dwells at 0.75*BDP for a fraction of the interval instead of
  /// collapsing to 4 packets; we keep the v1 drain for model comparability
  /// but shorten it.
  TimeNs probe_rtt_duration = from_ms(200);
  Bytes min_pipe_cwnd = 4 * kDefaultMss;
  std::uint64_t seed = 1;
};

class BbrV2 final : public CongestionControl {
 public:
  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };

  explicit BbrV2(const BbrV2Config& cfg = {});

  void on_start(TimeNs now) override;
  void on_ack(const AckEvent& ev) override;
  void on_congestion_event(const LossEvent& ev) override;
  void on_packet_lost(TimeNs now, Bytes lost_bytes, Bytes inflight) override;
  void on_rto(TimeNs now) override;

  [[nodiscard]] Bytes cwnd() const override;
  [[nodiscard]] BytesPerSec pacing_rate() const override;
  [[nodiscard]] std::string name() const override { return "bbrv2"; }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] BytesPerSec btlbw() const { return btlbw_.best(); }
  [[nodiscard]] TimeNs rtprop() const { return rtprop_; }
  [[nodiscard]] Bytes inflight_hi() const { return inflight_hi_; }
  [[nodiscard]] Bytes inflight_lo() const { return inflight_lo_; }

 private:
  static constexpr double kPacingGainCycle[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
  static constexpr Bytes kInfBytes = INT64_MAX / 4;

  void update_round(const AckEvent& ev);
  void update_filters(const AckEvent& ev);
  void advance_state(const AckEvent& ev);
  void enter_probe_bw(TimeNs now);
  void update_bounds_on_round(const AckEvent& ev);

  [[nodiscard]] Bytes bdp(double gain) const;
  [[nodiscard]] bool filters_primed() const {
    return !btlbw_.empty() && rtprop_ != kTimeInf;
  }

  BbrV2Config cfg_;
  Rng rng_;

  State state_ = State::kStartup;
  double pacing_gain_ = 1.0;
  double cwnd_gain_now_ = 1.0;
  Bytes cwnd_raw_ = 0;

  WindowedFilter<BytesPerSec> btlbw_;
  // Explicit RTprop estimate + adoption stamp (see Bbr for why this must
  // not be a sliding-window min).
  TimeNs rtprop_ = kTimeInf;
  TimeNs rtprop_stamp_ = 0;
  bool rtprop_expired_ = false;

  Bytes next_round_delivered_ = 0;
  std::uint64_t round_count_ = 0;
  bool round_start_ = false;

  BytesPerSec full_bw_ = 0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  int cycle_index_ = 0;
  TimeNs cycle_stamp_ = 0;
  std::uint64_t cycles_completed_ = 0;

  // Loss-adaptive inflight model (the v2 essence).
  Bytes inflight_hi_ = kInfBytes;
  Bytes inflight_lo_ = kInfBytes;
  bool loss_in_round_ = false;
  std::uint64_t lo_release_cycle_ = 0;

  TimeNs probe_rtt_done_stamp_ = kTimeNone;
  bool probe_rtt_round_done_ = false;
  Bytes prior_cwnd_ = 0;
};

}  // namespace bbrnash
