#include "exp/sweeps.hpp"

#include "exp/scenario_runner.hpp"

namespace bbrnash {

MixOutcome run_mix_trials(const NetworkParams& net, int num_cubic,
                          int num_other, CcKind other,
                          const TrialConfig& cfg) {
  MixOutcome avg;
  const int trials = cfg.trials > 0 ? cfg.trials : 1;
  for (int t = 0; t < trials; ++t) {
    Scenario s = make_mix_scenario(net, num_cubic, num_other, other);
    s.duration = cfg.duration;
    s.warmup = cfg.warmup;
    s.seed = cfg.seed + static_cast<std::uint64_t>(t) * 1000003ULL;

    const RunResult r = run_scenario(s);
    avg.per_flow_cubic_mbps += r.avg_goodput_mbps(CcKind::kCubic);
    avg.per_flow_other_mbps += r.avg_goodput_mbps(other);
    avg.total_cubic_mbps += r.total_goodput_mbps(CcKind::kCubic);
    avg.total_other_mbps += r.total_goodput_mbps(other);
    avg.avg_queue_delay_ms += r.avg_queue_delay_ms;
    avg.link_utilization += r.link_utilization;
    avg.cubic_buffer_avg += r.cubic_buffer_avg;
    avg.cubic_buffer_min += static_cast<double>(r.cubic_buffer_min);
    avg.noncubic_buffer_avg += r.noncubic_buffer_avg;
  }
  const auto k = static_cast<double>(trials);
  avg.per_flow_cubic_mbps /= k;
  avg.per_flow_other_mbps /= k;
  avg.total_cubic_mbps /= k;
  avg.total_other_mbps /= k;
  avg.avg_queue_delay_ms /= k;
  avg.link_utilization /= k;
  avg.cubic_buffer_avg /= k;
  avg.cubic_buffer_min /= k;
  avg.noncubic_buffer_avg /= k;
  return avg;
}

}  // namespace bbrnash
