#include "exp/sweeps.hpp"

#include <string>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/scenario_runner.hpp"

namespace bbrnash {

MixOutcome run_mix_trials(const NetworkParams& net, int num_cubic,
                          int num_other, CcKind other,
                          const TrialConfig& cfg) {
  const int trials = cfg.trials > 0 ? cfg.trials : 1;

  // Phase 1: run every trial, committing its outcome into the slot owned
  // by its index. Each trial's seed is a pure function of (cfg, t), so the
  // slots hold the same values no matter how many workers ran them.
  std::vector<RunOutcome> outcomes(static_cast<std::size_t>(trials));
  parallel_for(cfg.jobs, static_cast<std::size_t>(trials),
               [&](std::size_t t) {
                 Scenario s =
                     make_mix_scenario(net, num_cubic, num_other, other);
                 s.duration = cfg.duration;
                 s.warmup = cfg.warmup;
                 s.seed = cfg.seed + static_cast<std::uint64_t>(t) * 1000003ULL;
                 s.impairments = cfg.impairments;
                 s.ack_impairments = cfg.ack_impairments;
                 s.capacity_schedule = cfg.capacity_schedule;
                 s.audit = cfg.audit;
                 s.virtual_cc_dispatch = cfg.virtual_cc_dispatch;
                 outcomes[t] = run_scenario_guarded(s, cfg.guard);
               });

  // Phase 2: reduce in trial order — the exact accumulation sequence of
  // the serial loop, so averages are bit-identical for every jobs value
  // and the failures list is deterministically sorted by trial index.
  MixOutcome avg;
  for (int t = 0; t < trials; ++t) {
    const RunOutcome& o = outcomes[static_cast<std::size_t>(t)];
    if (!o.ok()) {
      ++avg.trials_failed;
      avg.failures.push_back("trial " + std::to_string(t) + " (seed " +
                             std::to_string(o.seed_used) + ", " +
                             std::to_string(o.attempts) + " attempts): " +
                             to_string(o.status) + ": " +
                             o.diagnostics.message);
      continue;
    }
    ++avg.trials_completed;
    if (o.attempts > 1) ++avg.trials_retried;

    const RunResult& r = o.result;
    avg.per_flow_cubic_mbps += r.avg_goodput_mbps(CcKind::kCubic);
    avg.per_flow_other_mbps += r.avg_goodput_mbps(other);
    avg.total_cubic_mbps += r.total_goodput_mbps(CcKind::kCubic);
    avg.total_other_mbps += r.total_goodput_mbps(other);
    avg.avg_queue_delay_ms += r.avg_queue_delay_ms;
    avg.link_utilization += r.link_utilization;
    avg.cubic_buffer_avg += r.cubic_buffer_avg;
    avg.cubic_buffer_min += static_cast<double>(r.cubic_buffer_min);
    avg.noncubic_buffer_avg += r.noncubic_buffer_avg;
  }
  note_trial_outcomes(static_cast<std::uint64_t>(avg.trials_retried),
                      static_cast<std::uint64_t>(avg.trials_failed));
  if (avg.trials_completed == 0) return avg;  // all diagnostics, no data
  const auto k = static_cast<double>(avg.trials_completed);
  avg.per_flow_cubic_mbps /= k;
  avg.per_flow_other_mbps /= k;
  avg.total_cubic_mbps /= k;
  avg.total_other_mbps /= k;
  avg.avg_queue_delay_ms /= k;
  avg.link_utilization /= k;
  avg.cubic_buffer_avg /= k;
  avg.cubic_buffer_min /= k;
  avg.noncubic_buffer_avg /= k;
  return avg;
}

}  // namespace bbrnash
