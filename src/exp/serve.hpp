// `bbrnash serve`: a crash-tolerant payoff-oracle daemon.
//
// One long-lived process owns one PayoffOracle and serves the existing
// batch protocol (key=value lines, `bbrnash-oracle-v1` fidelity tags) to
// concurrent clients over a Unix-domain socket, so a fleet of NE searches
// shares one memo instead of each paying the hydration and compute cost.
//
// Wire protocol (newline-framed text, one message per line):
//
//   client -> daemon
//     query <id> <key=value tokens>   same token grammar as `bbrnash
//                                     oracle --batch` (capacity=, rtt=,
//                                     buffer-bdp=, cubic=, other=,
//                                     challenger=, trials=, duration=,
//                                     warmup=, seed=, jobs=)
//     stats <id>                      daemon + oracle counters
//     ping <id>                       liveness probe
//
//   daemon -> client
//     answer <id> <jsonl>             one bbrnash-oracle-v1 record: status,
//                                     fidelity, key, reason (for pending),
//                                     band_dev, message, and the MixOutcome
//                                     fields when status=ok. JsonlRecord
//                                     encodes keys in sorted order, so two
//                                     answers for the same cell are
//                                     BIT-IDENTICAL strings — the kill-drill
//                                     tests compare them verbatim.
//     stats <id> <jsonl>
//     pong <id>
//     error <id> <message>            malformed request (unknown verb, bad
//                                     tokens); the daemon never disconnects
//                                     a client for a bad request.
//
// Robustness model (each row is drilled in tests/exp/test_serve.cpp):
//
//   failure                  detection              recovery
//   ------------------------ ---------------------- ------------------------
//   queue pressure           compute backlog >=     shed: answer model-only
//                            shed_queue_limit       or kPending(reason=shed)
//                                                   inline — never block,
//                                                   never fabricate
//   slow compute             per-request deadline   answer kPending(reason=
//                                                   timeout); the compute
//                                                   still finishes and is
//                                                   memoized, so a retry
//                                                   gets the exact cell
//   client vanishes          EPIPE/EOF (SIGPIPE is  drop the session, write
//   (kClientDisconnect)      never raised: all      a typed incident record
//                            writes use             to <cache>.incidents.
//                            MSG_NOSIGNAL)          jsonl; in-flight compute
//                                                   still lands in the memo
//   client stops reading     no write progress for  drop + `slow-client`
//   (kSlowClient)            write_stall_ms or      incident; the daemon's
//                            reply buffer over      other clients never
//                            max_reply_buffer       stall behind it
//   SIGTERM                  signal handler sets    drain: finish queued +
//                            stop flag              in-flight requests for
//                                                   data already received,
//                                                   flush the cache, unlink
//                                                   the socket, exit 0
//   kill -9 / kServeCrash    nothing runs           restart: stale-socket
//                                                   detection rebinds the
//                                                   path, the cache re-
//                                                   hydrates every record
//                                                   that reached disk, and
//                                                   resumed answers are
//                                                   bit-identical to an
//                                                   uninterrupted daemon
//
// Client policy: bounded retry with exponential backoff + deterministic
// jitter (seeded — tests replay the exact schedule), reconnect on
// disconnect, and resend of only the unanswered requests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/chaos.hpp"
#include "exp/oracle.hpp"
#include "util/jsonl.hpp"

namespace bbrnash {

struct ServeConfig {
  /// Unix-domain socket path the daemon binds (sun_path-limited, ~107
  /// bytes). Required.
  std::string socket_path;
  /// The daemon's oracle (cache path, tiers, compute policy). The serve
  /// loop itself never fabricates: every degraded answer flows through
  /// PayoffOracle::answer_without_compute with its fidelity tag intact.
  OracleConfig oracle;
  /// Per-request deadline. A miss whose compute has not finished within
  /// this budget is answered kPending(reason=timeout); the compute still
  /// runs to completion and is memoized. <= 0 disables deadlines.
  double request_deadline_ms = 10000.0;
  /// Compute backlog (queued, not yet started or running) beyond which new
  /// misses are shed instead of enqueued.
  std::size_t shed_queue_limit = 64;
  /// Worker threads running tier-3 computes off the poll thread.
  int compute_threads = 1;
  /// A client with pending reply bytes and no write progress for this long
  /// is dropped with a `slow-client` incident. <= 0 disables the check.
  double write_stall_ms = 2000.0;
  /// Hard cap on one client's buffered reply bytes (backstop for the
  /// stall check).
  std::size_t max_reply_buffer = 1u << 20;
  /// Abnormal-session records (fabric incident schema). Empty = derived:
  /// "<cache_path>.incidents.jsonl", or "<socket_path>.incidents.jsonl"
  /// when the oracle is cache-less.
  std::string incident_path;
  /// Fault drills. The daemon owns the injector: fire-once bookkeeping
  /// spans every client retry, so drills converge.
  std::shared_ptr<ChaosInjector> chaos;
  bool chaos_client_disconnect = true;
  bool chaos_serve_crash = true;
  bool chaos_slow_client = true;
  /// Install SIGTERM/SIGINT handlers in run() (the CLI daemon mode). Leave
  /// false when the daemon is hosted on a thread (tests, --smoke, bench):
  /// use request_stop() instead.
  bool handle_signals = false;
};

/// Monotone daemon counters; snapshot via OracleDaemon::stats() or the
/// `stats` wire verb.
struct ServeStats {
  std::uint64_t clients_accepted = 0;
  std::uint64_t clients_disconnected = 0;  ///< EOF/EPIPE before daemon close
  std::uint64_t slow_clients_dropped = 0;
  std::uint64_t requests = 0;
  std::uint64_t answered_inline = 0;  ///< exact/interpolated cache hits
  std::uint64_t computed = 0;         ///< tier-3 answers delivered
  std::uint64_t shed = 0;             ///< misses downgraded under pressure
  std::uint64_t timeouts = 0;         ///< deadline-expired answers
  std::uint64_t bad_requests = 0;
  std::uint64_t incidents = 0;
};

[[nodiscard]] JsonlRecord serve_stats_to_record(const ServeStats& s);

/// The one reply-record builder: every answer the daemon emits — cached,
/// computed, shed, timed out — is encoded by this function, so equal
/// answers are equal STRINGS (JsonlRecord sorts keys). Exposed for the
/// bit-identity assertions in tests.
[[nodiscard]] JsonlRecord serve_answer_record(const OracleAnswer& a);

/// Token keys a `query` wire line (and `bbrnash oracle --batch` line) may
/// carry.
[[nodiscard]] const std::vector<std::string>& serve_query_keys();

/// Parses "k=v k=v ..." tokens (the batch grammar: '#' comments, blank ok)
/// against serve_query_keys(). Throws std::invalid_argument on malformed
/// or unknown tokens.
[[nodiscard]] std::map<std::string, std::string> parse_query_tokens(
    const std::string& line);

/// Builds the OracleQuery a token map describes (defaults: 100 Mbps, 40 ms,
/// 1 BDP buffer, 1v1, BBR challenger). Throws std::invalid_argument on bad
/// values. Shared by the daemon, the client CLI, and `bbrnash oracle`.
[[nodiscard]] OracleQuery oracle_query_from_tokens(
    const std::map<std::string, std::string>& kv);

/// The daemon. Construct, then run() until request_stop()/SIGTERM.
class OracleDaemon {
 public:
  explicit OracleDaemon(ServeConfig cfg);
  ~OracleDaemon();

  OracleDaemon(const OracleDaemon&) = delete;
  OracleDaemon& operator=(const OracleDaemon&) = delete;

  /// Binds the socket (stale-endpoint recovery included) and serves until
  /// stopped. Returns true on a clean drain; false when the socket could
  /// not be bound (error()) — e.g. a LIVE daemon already owns the path.
  bool run();

  /// Thread-safe stop request: run() drains and returns.
  void request_stop();

  /// True once run() has bound the socket and entered its poll loop.
  [[nodiscard]] bool serving() const;

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] OracleStats oracle_stats() const;
  [[nodiscard]] std::string error() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Client-side retry policy. All delays deterministic given jitter_seed.
struct ClientConfig {
  std::string socket_path;
  /// Connect/reconnect attempts per operation (>= 1).
  int max_attempts = 4;
  double backoff_base_ms = 25.0;
  double backoff_cap_ms = 2000.0;
  /// Seeds the jitter hash; attempt k sleeps
  /// min(base * 2^(k-1), cap) * (0.5 + 0.5 * u01(seed, k)).
  std::uint64_t jitter_seed = 1;
  /// Max wait for any single reply before the batch returns kTimeout.
  /// <= 0 waits forever.
  double reply_timeout_ms = 120000.0;
};

enum class ClientStatus : std::uint8_t {
  kOk,             ///< every request got a reply
  kConnectFailed,  ///< no connection after max_attempts
  kTimeout,        ///< a reply outlasted reply_timeout_ms
  kDisconnected,   ///< daemon vanished and reconnect attempts ran out
  kProtocolError,  ///< daemon spoke an unknown frame
};
[[nodiscard]] const char* to_string(ClientStatus s);

/// One reply: the raw jsonl payload exactly as the daemon framed it (the
/// unit of the bit-identity tests) plus its parsed record.
struct ServeReply {
  std::string raw;
  JsonlRecord record;
};

/// Deterministic-backoff client for the serve protocol.
class OracleClient {
 public:
  explicit OracleClient(ClientConfig cfg);
  ~OracleClient();

  OracleClient(const OracleClient&) = delete;
  OracleClient& operator=(const OracleClient&) = delete;

  /// Sends one `query` per entry of `query_lines` (each a "k=v k=v" token
  /// line) and collects the replies in input order. On disconnect the
  /// client reconnects (bounded by max_attempts) and resends only the
  /// still-unanswered requests — answered entries keep their first reply.
  ClientStatus query_lines(const std::vector<std::string>& query_lines,
                           std::vector<ServeReply>* replies);

  /// Fetches the daemon's stats record.
  ClientStatus fetch_stats(JsonlRecord* out);

  /// Reconnections performed so far (drill observability).
  [[nodiscard]] int reconnects() const { return reconnects_; }

 private:
  [[nodiscard]] bool ensure_connected();
  void drop_connection();
  void backoff_sleep(int attempt);

  ClientConfig cfg_;
  int fd_ = -1;
  bool connected_before_ = false;
  int reconnects_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace bbrnash
