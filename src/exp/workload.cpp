#include "exp/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace bbrnash {

Bytes pareto_size(Rng& rng, double alpha, Bytes min_size, Bytes max_size) {
  if (alpha <= 0 || min_size <= 0 || max_size < min_size) {
    throw std::invalid_argument{"bad Pareto parameters"};
  }
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double l = static_cast<double>(min_size);
  const double h = static_cast<double>(max_size);
  const double u = rng.next_double();
  const double la = std::pow(l, alpha);
  const double ha = std::pow(h, alpha);
  const double x =
      std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return static_cast<Bytes>(std::min(std::max(x, l), h));
}

std::vector<FlowSpec> generate_workload(const WorkloadConfig& cfg) {
  if (cfg.arrivals_per_sec <= 0 || cfg.end <= cfg.start) {
    throw std::invalid_argument{"bad workload window"};
  }
  Rng rng{cfg.seed};
  std::vector<FlowSpec> flows;
  // Poisson arrivals: exponential inter-arrival gaps.
  TimeNs t = cfg.start;
  while (true) {
    const double gap_sec =
        -std::log(1.0 - rng.next_double()) / cfg.arrivals_per_sec;
    t += from_sec(gap_sec);
    if (t >= cfg.end) break;
    FlowSpec f;
    f.cc = cfg.cc;
    f.base_rtt = cfg.base_rtt;
    f.transfer_bytes =
        pareto_size(rng, cfg.pareto_alpha, cfg.min_size, cfg.max_size);
    f.start_at = t;
    flows.push_back(f);
  }
  return flows;
}

void add_workload(Scenario& scenario, const WorkloadConfig& cfg) {
  for (const FlowSpec& f : generate_workload(cfg)) {
    scenario.flows.push_back(f);
  }
}

double offered_load(const WorkloadConfig& cfg, BytesPerSec capacity) {
  // Mean of the bounded Pareto.
  const double a = cfg.pareto_alpha;
  const double l = static_cast<double>(cfg.min_size);
  const double h = static_cast<double>(cfg.max_size);
  double mean;
  if (std::abs(a - 1.0) < 1e-9) {
    mean = l * h / (h - l) * std::log(h / l);
  } else {
    mean = (std::pow(l, a) / (1.0 - std::pow(l / h, a))) *
           (a / (a - 1.0)) *
           (1.0 / std::pow(l, a - 1.0) - 1.0 / std::pow(h, a - 1.0));
  }
  return cfg.arrivals_per_sec * mean / capacity;
}

}  // namespace bbrnash
