// Results extracted from one scenario run.
#pragma once

#include <vector>

#include "cc/congestion_control.hpp"
#include "flow/flow_stats.hpp"
#include "net/impairment.hpp"
#include "util/units.hpp"

namespace bbrnash {

struct FlowResult {
  CcKind cc = CcKind::kCubic;
  TimeNs base_rtt = 0;
  FlowStats stats;
};

struct RunResult {
  std::vector<FlowResult> flows;

  double avg_queue_delay_ms = 0.0;   ///< time-avg occupancy / capacity
  double avg_queue_bytes = 0.0;
  double link_utilization = 0.0;     ///< served bytes / (C * window)
  std::uint64_t total_drops = 0;

  // Aggregate CUBIC buffer-occupancy statistics (the model's b_c, b_cmin,
  // b_cmax over the measurement window).
  double cubic_buffer_avg = 0.0;
  Bytes cubic_buffer_min = 0;
  Bytes cubic_buffer_max = 0;
  // And BBR-family aggregate occupancy (the model's b_b).
  double noncubic_buffer_avg = 0.0;

  // Injected-impairment accounting, aggregated over all flows' stages
  // (all-zero for a pristine scenario). Queue drops are NOT included here;
  // those stay in total_drops.
  ImpairmentCounters data_impairments;
  ImpairmentCounters ack_impairments;

  /// Mean per-flow goodput (Mbps) across flows of `kind`; 0 if none.
  [[nodiscard]] double avg_goodput_mbps(CcKind kind) const {
    double sum = 0.0;
    int n = 0;
    for (const auto& f : flows) {
      if (f.cc != kind) continue;
      sum += to_mbps(f.stats.goodput_bps);
      ++n;
    }
    return n ? sum / n : 0.0;
  }

  /// Aggregate goodput (Mbps) across flows of `kind`.
  [[nodiscard]] double total_goodput_mbps(CcKind kind) const {
    double sum = 0.0;
    for (const auto& f : flows) {
      if (f.cc == kind) sum += to_mbps(f.stats.goodput_bps);
    }
    return sum;
  }

  [[nodiscard]] double total_goodput_all_mbps() const {
    double sum = 0.0;
    for (const auto& f : flows) sum += to_mbps(f.stats.goodput_bps);
    return sum;
  }
};

}  // namespace bbrnash
