#include "exp/telemetry.hpp"

#include <ostream>
#include <stdexcept>

namespace bbrnash {

double SnapshotLog::goodput_between(std::size_t i, std::size_t flow) const {
  if (i == 0 || i >= snapshots_.size()) {
    throw std::out_of_range{"snapshot index"};
  }
  const Snapshot& a = snapshots_[i - 1];
  const Snapshot& b = snapshots_[i];
  const double dt = to_sec(b.t - a.t);
  if (dt <= 0) return 0.0;
  return static_cast<double>(b.flows.at(flow).delivered -
                             a.flows.at(flow).delivered) /
         dt;
}

void SnapshotLog::write_csv(std::ostream& os) const {
  os << "t_sec,flow,cc,cwnd_bytes,pacing_bps,inflight_bytes,delivered_bytes,"
        "queue_bytes,retransmits,rtos,srtt_ms,total_queue_bytes,drops\n";
  for (const Snapshot& s : snapshots_) {
    for (std::size_t f = 0; f < s.flows.size(); ++f) {
      const FlowSnapshot& fs = s.flows[f];
      os << to_sec(s.t) << ',' << f << ',' << to_string(fs.cc) << ','
         << fs.cwnd << ','
         << (fs.pacing_rate >= kNoPacing ? -1.0 : fs.pacing_rate) << ','
         << fs.inflight << ',' << fs.delivered << ',' << fs.queue_bytes << ','
         << fs.retransmits << ',' << fs.rtos << ','
         << (fs.smoothed_rtt == kTimeNone ? -1.0 : to_ms(fs.smoothed_rtt))
         << ',' << s.queue_bytes << ',' << s.total_drops << '\n';
    }
  }
}

}  // namespace bbrnash
