#include "exp/telemetry.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace bbrnash {

double SnapshotLog::goodput_between(std::size_t i, std::size_t flow) const {
  if (i == 0 || i >= snapshots_.size()) {
    throw std::out_of_range{"snapshot index"};
  }
  const Snapshot& a = snapshots_[i - 1];
  const Snapshot& b = snapshots_[i];
  const double dt = to_sec(b.t - a.t);
  if (dt <= 0) return 0.0;
  // Subtract each counter in double space: computing the difference on the
  // integer Bytes type first would wrap a counter regression (flow
  // restart/reconnect) into an astronomically large "goodput". A decrease
  // is a corrupt or restarted log — refuse it loudly instead of returning
  // garbage that a sweep would happily average.
  const double delivered_b = static_cast<double>(b.flows.at(flow).delivered);
  const double delivered_a = static_cast<double>(a.flows.at(flow).delivered);
  if (delivered_b < delivered_a) {
    throw std::invalid_argument{
        "goodput_between: delivered counter decreased between snapshots "
        "(flow restart or corrupt log)"};
  }
  return (delivered_b - delivered_a) / dt;
}

// Formats a double at full round-trip precision (%.17g): default ostream
// precision is 6 significant digits, which quantizes t_sec to 100 ms past
// t = 100 s on a 2-minute run and collapses distinct pacing rates. 17
// significant digits reproduce any IEEE-754 double exactly.
static void put_full(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void SnapshotLog::write_csv(std::ostream& os) const {
  os << "t_sec,flow,cc,cwnd_bytes,pacing_bps,inflight_bytes,delivered_bytes,"
        "queue_bytes,retransmits,rtos,srtt_ms,total_queue_bytes,drops\n";
  for (const Snapshot& s : snapshots_) {
    for (std::size_t f = 0; f < s.flows.size(); ++f) {
      const FlowSnapshot& fs = s.flows[f];
      put_full(os, to_sec(s.t));
      os << ',' << f << ',' << to_string(fs.cc) << ',' << fs.cwnd << ',';
      put_full(os, fs.pacing_rate >= kNoPacing ? -1.0 : fs.pacing_rate);
      os << ',' << fs.inflight << ',' << fs.delivered << ',' << fs.queue_bytes
         << ',' << fs.retransmits << ',' << fs.rtos << ',';
      put_full(os,
               fs.smoothed_rtt == kTimeNone ? -1.0 : to_ms(fs.smoothed_rtt));
      os << ',' << s.queue_bytes << ',' << s.total_drops << '\n';
    }
  }
}

}  // namespace bbrnash
