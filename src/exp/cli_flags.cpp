#include "exp/cli_flags.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace bbrnash {

namespace {

[[noreturn]] void fail(std::string_view flag, const std::string& value,
                       const char* why) {
  throw std::invalid_argument{std::string{flag} + ": " + why + " ('" + value +
                              "')"};
}

}  // namespace

double parse_double_strict(std::string_view flag, const std::string& value) {
  if (value.empty()) fail(flag, value, "expected a number, got empty string");
  // strtod silently skips leading whitespace; whole-token means no padding.
  if (std::isspace(static_cast<unsigned char>(value[0]))) {
    fail(flag, value, "not a valid number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) {
    fail(flag, value, "not a valid number");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    fail(flag, value, "number out of range");
  }
  return v;
}

std::uint64_t parse_u64_strict(std::string_view flag,
                               const std::string& value) {
  if (value.empty()) fail(flag, value, "expected an integer, got empty string");
  // strtoull silently accepts a leading '-' (wrapping the value) and skips
  // leading whitespace; reject both.
  if (value[0] == '-' || value[0] == '+') {
    fail(flag, value, "expected a non-negative integer");
  }
  if (std::isspace(static_cast<unsigned char>(value[0]))) {
    fail(flag, value, "not a valid integer");
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size()) {
    fail(flag, value, "not a valid integer");
  }
  if (errno == ERANGE) fail(flag, value, "integer out of range");
  return v;
}

int parse_int_strict(std::string_view flag, const std::string& value) {
  const std::uint64_t v = parse_u64_strict(flag, value);
  if (v > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
    fail(flag, value, "integer out of range");
  }
  return static_cast<int>(v);
}

}  // namespace bbrnash
