// ScenarioRunner: wires a Scenario into a live dumbbell simulation and
// extracts a RunResult.
//
// Topology per flow i (base RTT r_i):
//
//   Sender_i --(instant)--> [BottleneckLink: rate C, drop-tail buffer B]
//            --(serialize)--> DelayLine fwd (r_i/2) --> Receiver_i
//   Receiver_i --ACK--> DelayLine rev (r_i/2) --> Sender_i
//
// All of a flow's propagation delay is split across the two delay lines, so
// the base (congestion-free) RTT is exactly r_i and every queueing byte
// adds sojourn time at the shared bottleneck — the configuration the
// paper's model describes (Fig. 2).
#pragma once

#include "exp/run_outcome.hpp"
#include "exp/run_result.hpp"
#include "exp/scenario.hpp"

namespace bbrnash {

/// Runs the scenario to completion and returns measurements taken over
/// [warmup, duration]. Throws std::invalid_argument for ill-formed
/// scenarios (Scenario::validate) and InvariantViolation when an always-on
/// runtime guard fires (conservation, queue bound, clock monotonicity).
[[nodiscard]] RunResult run_scenario(const Scenario& scenario);

/// Exception-free variant for sweeps: runs under the guard's watchdog
/// (event budget + wall-clock backstop), converts aborts / invariant
/// violations / errors into a typed RunOutcome, and retries degenerate
/// attempts with a bumped seed up to guard.max_attempts times.
[[nodiscard]] RunOutcome run_scenario_guarded(const Scenario& scenario,
                                              const GuardConfig& guard = {});

}  // namespace bbrnash
