// ScenarioRunner: wires a Scenario into a live dumbbell simulation and
// extracts a RunResult.
//
// Topology per flow i (base RTT r_i):
//
//   Sender_i --(instant)--> [BottleneckLink: rate C, drop-tail buffer B]
//            --(serialize)--> DelayLine fwd (r_i/2) --> Receiver_i
//   Receiver_i --ACK--> DelayLine rev (r_i/2) --> Sender_i
//
// All of a flow's propagation delay is split across the two delay lines, so
// the base (congestion-free) RTT is exactly r_i and every queueing byte
// adds sojourn time at the shared bottleneck — the configuration the
// paper's model describes (Fig. 2).
#pragma once

#include "exp/run_result.hpp"
#include "exp/scenario.hpp"

namespace bbrnash {

/// Runs the scenario to completion and returns measurements taken over
/// [warmup, duration].
RunResult run_scenario(const Scenario& scenario);

}  // namespace bbrnash
