#include "exp/checkpoint.hpp"

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "exp/chaos.hpp"

namespace bbrnash {

namespace {

/// Reserved field holding the cell key inside each record.
constexpr const char* kKeyField = "key";

void append_kv(std::string& out, const char* key, double v) {
  out += ' ';
  out += key;
  out += '=';
  out += canonical_double(v);
}

void append_kv(std::string& out, const char* key, long long v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, " %s=%lld", key, v);
  out += buf;
}

void append_kv(std::string& out, const char* key, unsigned long long v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, " %s=%llu", key, v);
  out += buf;
}

/// Every ImpairmentConfig knob, raw (the Gilbert chain is keyed by its four
/// parameters, not its stationary loss rate — two chains with the same
/// long-run rate but different burstiness measure differently).
void append_impairments(std::string& out, const std::string& tag,
                        const ImpairmentConfig& c) {
  append_kv(out, (tag + ".l").c_str(), c.loss_rate);
  append_kv(out, (tag + ".gpgb").c_str(), c.gilbert.p_good_to_bad);
  append_kv(out, (tag + ".gpbg").c_str(), c.gilbert.p_bad_to_good);
  append_kv(out, (tag + ".glg").c_str(), c.gilbert.loss_good);
  append_kv(out, (tag + ".glb").c_str(), c.gilbert.loss_bad);
  append_kv(out, (tag + ".ro").c_str(), c.reorder_rate);
  append_kv(out, (tag + ".rod").c_str(),
            static_cast<long long>(c.reorder_delay));
  append_kv(out, (tag + ".dup").c_str(), c.duplicate_rate);
  append_kv(out, (tag + ".j").c_str(), static_cast<long long>(c.jitter));
  append_kv(out, (tag + ".spp").c_str(),
            static_cast<long long>(c.spikes.period));
  append_kv(out, (tag + ".spw").c_str(),
            static_cast<long long>(c.spikes.width));
  append_kv(out, (tag + ".spm").c_str(),
            static_cast<long long>(c.spikes.magnitude));
}

}  // namespace

std::string canonical_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

CheckpointLog::CheckpointLog(std::string path, ChaosInjector* chaos)
    : path_(std::move(path)), chaos_(chaos) {
  for (auto& rec : read_jsonl(path_, &skipped_lines_)) {
    const std::string key = rec.get_string(kKeyField);
    if (!key.empty()) entries_[key] = std::move(rec);
  }
  if (skipped_lines_ > 0) {
    std::fprintf(stderr,
                 "checkpoint: skipped %zu unparseable line(s) in %s (torn "
                 "write from a crashed run?); resuming from the last "
                 "complete record — affected cells will re-run\n",
                 skipped_lines_, path_.c_str());
  }
}

CheckpointLog::~CheckpointLog() {
  {
    const std::lock_guard<std::mutex> lk{mu_};
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();  // drains pending_ before exiting
}

std::size_t CheckpointLog::size() const {
  const std::lock_guard<std::mutex> lk{mu_};
  return entries_.size();
}

std::optional<JsonlRecord> CheckpointLog::lookup(
    const std::string& key) const {
  const std::lock_guard<std::mutex> lk{mu_};
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void CheckpointLog::record(const std::string& key, JsonlRecord rec) {
  rec.set(kKeyField, key);
  std::string line = rec.encode();
  {
    // One critical section for both the map update and the queue push:
    // for any key, file append order matches in-memory last-write order,
    // so a reload reproduces exactly the state lookup() was serving.
    const std::lock_guard<std::mutex> lk{mu_};
    entries_[key] = std::move(rec);
    pending_.push_back(std::move(line));
    ++accepted_;
    if (!writer_.joinable()) {
      writer_ = std::thread{&CheckpointLog::writer_main, this};
    }
  }
  queue_cv_.notify_one();
}

void CheckpointLog::flush() {
  std::unique_lock<std::mutex> lk{mu_};
  drained_cv_.wait(lk, [&] { return written_ == accepted_; });
}

void CheckpointLog::writer_main() {
  std::unique_lock<std::mutex> lk{mu_};
  while (true) {
    queue_cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    std::vector<std::string> batch;
    batch.swap(pending_);
    lk.unlock();  // file I/O happens outside the lock
    for (const std::string& line : batch) {
      // Chaos drills: simulate the two write-path failures the resume
      // logic claims to survive. Neither touches the in-memory map, so the
      // current run's numbers are unaffected; only a *resumed* run sees
      // the damage — and recovers by re-running the lost cells.
      if (chaos_ != nullptr &&
          chaos_->should_fire(ChaosClass::kCheckpointWriteFail,
                              "checkpoint-write-fail " + path_)) {
        std::fprintf(stderr,
                     "checkpoint: chaos dropped one append to %s\n",
                     path_.c_str());
        continue;
      }
      if (chaos_ != nullptr &&
          chaos_->should_fire(ChaosClass::kCheckpointTorn,
                              "checkpoint-torn " + path_)) {
        // A torn write: half the record, no terminating newline — exactly
        // what a crash mid-append leaves behind. append_jsonl_line
        // self-heals by starting the next record on a fresh line.
        std::ofstream torn{path_, std::ios::app};
        if (torn) {
          torn << line.substr(0, line.size() / 2);
          torn.flush();
        }
        std::fprintf(stderr,
                     "checkpoint: chaos tore one append to %s\n",
                     path_.c_str());
        continue;
      }
      append_jsonl_line(path_, line);
    }
    lk.lock();
    written_ += batch.size();
    drained_cv_.notify_all();
  }
}

std::string mix_checkpoint_key(const NetworkParams& net, int num_cubic,
                               int num_other, CcKind other,
                               const TrialConfig& cfg) {
  std::string key = "mix";
  key.reserve(640);
  // Capacity is a double (bytes/sec); keying it through a long long cast
  // truncated sub-byte/sec differences into collisions and made the key
  // depend on the cast instead of the value. canonical_double round-trips
  // the exact bits — same fix for scheduled rates below.
  append_kv(key, "c", net.capacity);
  append_kv(key, "b", static_cast<long long>(net.buffer_bytes));
  append_kv(key, "r", static_cast<long long>(net.base_rtt));
  append_kv(key, "nc", static_cast<long long>(num_cubic));
  append_kv(key, "no", static_cast<long long>(num_other));
  key += " cc=";
  key += to_string(other);
  append_kv(key, "d", static_cast<long long>(cfg.duration));
  append_kv(key, "w", static_cast<long long>(cfg.warmup));
  append_kv(key, "t", static_cast<long long>(cfg.trials));
  append_kv(key, "s", static_cast<unsigned long long>(cfg.seed));
  append_impairments(key, "di", cfg.impairments);
  append_impairments(key, "ai", cfg.ack_impairments);
  // Full schedule contents: two sweeps with the same number of rate steps
  // but different flap times/rates must not collide.
  for (const RateChange& c : cfg.capacity_schedule) {
    append_kv(key, "sc.at", static_cast<long long>(c.at));
    append_kv(key, "sc.rate", c.rate);
  }
  // Guard policy: watchdog limits change where an aborted trial stops (and
  // so which trials are excluded from the averages), retries and injected
  // failures change which seeds the surviving trials ran with.
  append_kv(key, "g.ev",
            static_cast<unsigned long long>(cfg.guard.watchdog.max_events));
  append_kv(key, "g.wall", cfg.guard.watchdog.max_wall_seconds);
  append_kv(key, "g.att", static_cast<long long>(cfg.guard.max_attempts));
  append_kv(key, "g.bump",
            static_cast<unsigned long long>(cfg.guard.seed_bump));
  for (const std::uint64_t s : cfg.guard.inject_failure_seeds) {
    append_kv(key, "g.inj", static_cast<unsigned long long>(s));
  }
  return key;
}

JsonlRecord mix_to_record(const MixOutcome& m) {
  JsonlRecord rec;
  rec.set("per_flow_cubic_mbps", m.per_flow_cubic_mbps);
  rec.set("per_flow_other_mbps", m.per_flow_other_mbps);
  rec.set("total_cubic_mbps", m.total_cubic_mbps);
  rec.set("total_other_mbps", m.total_other_mbps);
  rec.set("avg_queue_delay_ms", m.avg_queue_delay_ms);
  rec.set("link_utilization", m.link_utilization);
  rec.set("cubic_buffer_avg", m.cubic_buffer_avg);
  rec.set("cubic_buffer_min", m.cubic_buffer_min);
  rec.set("noncubic_buffer_avg", m.noncubic_buffer_avg);
  rec.set("trials_completed", m.trials_completed);
  rec.set("trials_retried", m.trials_retried);
  rec.set("trials_failed", m.trials_failed);
  // One field per failure so a resumed sweep restores the same diagnostics
  // list (entry count included) as the uninterrupted run.
  for (std::size_t i = 0; i < m.failures.size(); ++i) {
    rec.set("failure_" + std::to_string(i), m.failures[i]);
  }
  return rec;
}

MixOutcome mix_from_record(const JsonlRecord& rec) {
  MixOutcome m;
  m.per_flow_cubic_mbps = rec.get_double("per_flow_cubic_mbps");
  m.per_flow_other_mbps = rec.get_double("per_flow_other_mbps");
  m.total_cubic_mbps = rec.get_double("total_cubic_mbps");
  m.total_other_mbps = rec.get_double("total_other_mbps");
  m.avg_queue_delay_ms = rec.get_double("avg_queue_delay_ms");
  m.link_utilization = rec.get_double("link_utilization");
  m.cubic_buffer_avg = rec.get_double("cubic_buffer_avg");
  m.cubic_buffer_min = rec.get_double("cubic_buffer_min");
  m.noncubic_buffer_avg = rec.get_double("noncubic_buffer_avg");
  m.trials_completed = static_cast<int>(rec.get_u64("trials_completed"));
  m.trials_retried = static_cast<int>(rec.get_u64("trials_retried"));
  m.trials_failed = static_cast<int>(rec.get_u64("trials_failed"));
  for (std::size_t i = 0; rec.has("failure_" + std::to_string(i)); ++i) {
    m.failures.push_back(rec.get_string("failure_" + std::to_string(i)));
  }
  return m;
}

namespace {
constexpr const char* kLeasePrefix = "lease ";
}  // namespace

std::string lease_key(const std::string& cell_key) {
  return kLeasePrefix + cell_key;
}

bool is_lease_key(const std::string& key) {
  return key.rfind(kLeasePrefix, 0) == 0;
}

MixOutcome run_mix_trials_checkpointed(const NetworkParams& net,
                                       int num_cubic, int num_other,
                                       CcKind other, const TrialConfig& cfg,
                                       CheckpointLog* log) {
  if (log == nullptr) {
    return run_mix_trials(net, num_cubic, num_other, other, cfg);
  }
  const std::string key =
      mix_checkpoint_key(net, num_cubic, num_other, other, cfg);
  if (const auto hit = log->lookup(key)) {
    return mix_from_record(*hit);
  }
  const MixOutcome m = run_mix_trials(net, num_cubic, num_other, other, cfg);
  log->record(key, mix_to_record(m));
  return m;
}

}  // namespace bbrnash
