#include "exp/checkpoint.hpp"

#include <cstdio>
#include <utility>

namespace bbrnash {

namespace {

/// Reserved field holding the cell key inside each record.
constexpr const char* kKeyField = "key";

}  // namespace

CheckpointLog::CheckpointLog(std::string path) : path_(std::move(path)) {
  for (auto& rec : read_jsonl(path_)) {
    const std::string key = rec.get_string(kKeyField);
    if (!key.empty()) entries_[key] = std::move(rec);
  }
}

const JsonlRecord* CheckpointLog::lookup(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void CheckpointLog::record(const std::string& key, JsonlRecord rec) {
  rec.set(kKeyField, key);
  append_jsonl_line(path_, rec.encode());
  entries_[key] = std::move(rec);
}

std::string mix_checkpoint_key(const NetworkParams& net, int num_cubic,
                               int num_other, CcKind other,
                               const TrialConfig& cfg) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "mix c=%lld b=%lld r=%lld nc=%d no=%d cc=%s d=%lld w=%lld t=%d "
      "s=%llu l=%.17g gl=%.17g al=%.17g agl=%.17g j=%lld sched=%zu "
      "att=%d bump=%llu",
      static_cast<long long>(net.capacity),
      static_cast<long long>(net.buffer_bytes),
      static_cast<long long>(net.base_rtt), num_cubic, num_other,
      to_string(other), static_cast<long long>(cfg.duration),
      static_cast<long long>(cfg.warmup), cfg.trials,
      static_cast<unsigned long long>(cfg.seed), cfg.impairments.loss_rate,
      cfg.impairments.gilbert.expected_loss_rate(),
      cfg.ack_impairments.loss_rate,
      cfg.ack_impairments.gilbert.expected_loss_rate(),
      static_cast<long long>(cfg.impairments.jitter),
      cfg.capacity_schedule.size(), cfg.guard.max_attempts,
      static_cast<unsigned long long>(cfg.guard.seed_bump));
  return buf;
}

JsonlRecord mix_to_record(const MixOutcome& m) {
  JsonlRecord rec;
  rec.set("per_flow_cubic_mbps", m.per_flow_cubic_mbps);
  rec.set("per_flow_other_mbps", m.per_flow_other_mbps);
  rec.set("total_cubic_mbps", m.total_cubic_mbps);
  rec.set("total_other_mbps", m.total_other_mbps);
  rec.set("avg_queue_delay_ms", m.avg_queue_delay_ms);
  rec.set("link_utilization", m.link_utilization);
  rec.set("cubic_buffer_avg", m.cubic_buffer_avg);
  rec.set("cubic_buffer_min", m.cubic_buffer_min);
  rec.set("noncubic_buffer_avg", m.noncubic_buffer_avg);
  rec.set("trials_completed", m.trials_completed);
  rec.set("trials_retried", m.trials_retried);
  rec.set("trials_failed", m.trials_failed);
  std::string log;
  for (const std::string& f : m.failures) {
    if (!log.empty()) log += " | ";
    log += f;
  }
  if (!log.empty()) rec.set("failure_log", log);
  return rec;
}

MixOutcome mix_from_record(const JsonlRecord& rec) {
  MixOutcome m;
  m.per_flow_cubic_mbps = rec.get_double("per_flow_cubic_mbps");
  m.per_flow_other_mbps = rec.get_double("per_flow_other_mbps");
  m.total_cubic_mbps = rec.get_double("total_cubic_mbps");
  m.total_other_mbps = rec.get_double("total_other_mbps");
  m.avg_queue_delay_ms = rec.get_double("avg_queue_delay_ms");
  m.link_utilization = rec.get_double("link_utilization");
  m.cubic_buffer_avg = rec.get_double("cubic_buffer_avg");
  m.cubic_buffer_min = rec.get_double("cubic_buffer_min");
  m.noncubic_buffer_avg = rec.get_double("noncubic_buffer_avg");
  m.trials_completed = static_cast<int>(rec.get_u64("trials_completed"));
  m.trials_retried = static_cast<int>(rec.get_u64("trials_retried"));
  m.trials_failed = static_cast<int>(rec.get_u64("trials_failed"));
  const std::string log = rec.get_string("failure_log");
  if (!log.empty()) m.failures.push_back(log);
  return m;
}

MixOutcome run_mix_trials_checkpointed(const NetworkParams& net,
                                       int num_cubic, int num_other,
                                       CcKind other, const TrialConfig& cfg,
                                       CheckpointLog* log) {
  if (log == nullptr) {
    return run_mix_trials(net, num_cubic, num_other, other, cfg);
  }
  const std::string key =
      mix_checkpoint_key(net, num_cubic, num_other, other, cfg);
  if (const JsonlRecord* hit = log->lookup(key)) {
    return mix_from_record(*hit);
  }
  const MixOutcome m = run_mix_trials(net, num_cubic, num_other, other, cfg);
  log->record(key, mix_to_record(m));
  return m;
}

}  // namespace bbrnash
