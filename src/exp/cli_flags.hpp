// Strict CLI flag parsing shared by the bbrnash tool and the bench
// drivers.
//
// The original parsers used atof/atoll, which silently turn garbage into 0
// — a mistyped `--buffer-bdp 1O` (letter O) would run a nonsense
// experiment instead of failing. These helpers throw std::invalid_argument
// with the flag name on anything that is not a complete, in-range number;
// callers turn that into the standard invalid-configuration exit (2).
// Fuzzed by tests/exp/test_scenario_fuzz.cpp: invalid input must always
// produce the clean diagnostic, never a crash or a silent acceptance.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bbrnash {

/// Parses a double, requiring the whole token to be consumed and the value
/// to be finite. Throws std::invalid_argument naming `flag`.
[[nodiscard]] double parse_double_strict(std::string_view flag,
                                         const std::string& value);

/// Parses a non-negative integer (decimal). Throws std::invalid_argument
/// naming `flag` on sign, garbage, overflow, or empty input.
[[nodiscard]] std::uint64_t parse_u64_strict(std::string_view flag,
                                             const std::string& value);

/// As parse_u64_strict but bounded to int range.
[[nodiscard]] int parse_int_strict(std::string_view flag,
                                   const std::string& value);

}  // namespace bbrnash
