// Trial-averaged mix measurements — the workhorse behind every figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/congestion_control.hpp"
#include "exp/run_outcome.hpp"
#include "exp/run_result.hpp"
#include "exp/scenario.hpp"
#include "model/network_params.hpp"

namespace bbrnash {

struct TrialConfig {
  TimeNs duration = from_sec(40);
  TimeNs warmup = from_sec(8);
  int trials = 3;
  std::uint64_t seed = 1;

  /// Worker threads for the trial loop: 1 (the default) runs serially on
  /// the calling thread — the reference semantics; 0 means one worker per
  /// hardware thread; N means N workers. Per-trial seeds are pure
  /// functions of this config and results are committed by trial index,
  /// so the measured numbers are bit-identical for every value (asserted
  /// by tests/exp/test_parallel.cpp). Nested calls (e.g. inside a
  /// parallel measure_payoffs) run their trials inline regardless.
  int jobs = 1;

  /// Path conditions applied to every trial's scenario (pristine by
  /// default, matching the paper). See Scenario for the semantics.
  ImpairmentConfig impairments;
  ImpairmentConfig ack_impairments;
  std::vector<RateChange> capacity_schedule;

  /// Conservation audit + flight recorder applied to every trial (--audit).
  /// Audited samples are read-only, so results are identical with or
  /// without it; excluded from checkpoint keys for that reason.
  AuditConfig audit;

  /// Watchdog + retry policy per trial. The default (one attempt, no
  /// limits) reproduces the unguarded behaviour exactly.
  GuardConfig guard;

  /// Test-only: route every trial through the virtual-dispatch
  /// CongestionControl adapter instead of the devirtualized CcVariant path
  /// (see Scenario::virtual_cc_dispatch). Bit-identical by construction,
  /// pinned by tests/exp/test_dispatch_equivalence.cpp; excluded from
  /// checkpoint keys for the same reason audit is.
  bool virtual_cc_dispatch = false;
};

/// Averages over trials of a (num_cubic x CUBIC) vs (num_other x `other`)
/// mix through `net`.
struct [[nodiscard]] MixOutcome {
  double per_flow_cubic_mbps = 0.0;   ///< 0 when num_cubic == 0
  double per_flow_other_mbps = 0.0;   ///< 0 when num_other == 0
  double total_cubic_mbps = 0.0;
  double total_other_mbps = 0.0;
  double avg_queue_delay_ms = 0.0;
  double link_utilization = 0.0;
  double cubic_buffer_avg = 0.0;      ///< model's aggregate b_c
  double cubic_buffer_min = 0.0;      ///< model's b_cmin
  double noncubic_buffer_avg = 0.0;   ///< model's b_b

  // Sweep-hardening bookkeeping. Averages above cover completed trials
  // only; a trial that still fails after its retries is excluded and
  // reported here instead of taking the whole sweep down.
  int trials_completed = 0;
  int trials_retried = 0;   ///< completed trials that needed > 1 attempt
  int trials_failed = 0;
  std::vector<std::string> failures;  ///< one diagnosis per failed trial
};

[[nodiscard]] MixOutcome run_mix_trials(const NetworkParams& net,
                                        int num_cubic, int num_other,
                                        CcKind other, const TrialConfig& cfg);

}  // namespace bbrnash
