#include "exp/chaos.hpp"

#include <cstdio>
#include <stdexcept>

namespace bbrnash {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the site name, so textual sites hash stably across runs.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

const char* to_string(ChaosClass cls) {
  switch (cls) {
    case ChaosClass::kTrialException:
      return "trial-exception";
    case ChaosClass::kEventStall:
      return "event-stall";
    case ChaosClass::kWallStall:
      return "wall-stall";
    case ChaosClass::kCheckpointWriteFail:
      return "checkpoint-write-fail";
    case ChaosClass::kCheckpointTorn:
      return "checkpoint-torn";
    case ChaosClass::kNeCell:
      return "ne-cell";
    case ChaosClass::kWorkerKill:
      return "worker-kill";
    case ChaosClass::kWorkerHang:
      return "worker-hang";
    case ChaosClass::kSupervisorCrash:
      return "supervisor-crash";
    case ChaosClass::kClientDisconnect:
      return "client-disconnect";
    case ChaosClass::kServeCrash:
      return "serve-crash";
    case ChaosClass::kSlowClient:
      return "slow-client";
  }
  return "unknown";
}

ChaosInjector::ChaosInjector(std::uint64_t seed, double rate)
    : seed_(seed), rate_(rate) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument{"chaos rate must be in [0, 1]"};
  }
}

bool ChaosInjector::should_fire(ChaosClass cls, std::string_view site) {
  if (rate_ <= 0.0) return false;
  // Hash first (no lock needed): the decision is a pure function of
  // (seed, class, site), so two threads racing on the same site agree.
  const std::uint64_t h =
      mix64(seed_ ^ mix64(static_cast<std::uint64_t>(cls) + 1) ^ fnv1a(site));
  // Map the hash to [0, 1); with the default rate of 1.0 every site fires.
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
  if (u >= rate_) return false;

  std::lock_guard<std::mutex> lock{mu_};
  const auto [it, inserted] = fired_sites_.emplace(
      static_cast<std::uint8_t>(cls), std::string{site});
  if (!inserted) return false;  // fire-once per (class, site)
  ++fired_by_class_[static_cast<std::uint8_t>(cls) & 15];
  return true;
}

std::uint64_t ChaosInjector::fired(ChaosClass cls) const {
  std::lock_guard<std::mutex> lock{mu_};
  return fired_by_class_[static_cast<std::uint8_t>(cls) & 15];
}

std::uint64_t ChaosInjector::total_fired() const {
  std::lock_guard<std::mutex> lock{mu_};
  return static_cast<std::uint64_t>(fired_sites_.size());
}

std::string ChaosInjector::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "chaos seed=%llu rate=%g fired=%llu",
                static_cast<unsigned long long>(seed_), rate_,
                static_cast<unsigned long long>(total_fired()));
  return buf;
}

}  // namespace bbrnash
