// Deterministic chaos injection: a seeded fault schedule for the
// orchestration layer's recovery paths.
//
// PR 1 added watchdogs, seed-bump retries, and crash-safe checkpoints;
// nothing proved they work. The injector provokes exactly the failures
// those mechanisms claim to survive — forced trial exceptions, event- and
// wall-clock stalls that must trip the watchdogs, checkpoint write
// failures, torn trailing JSONL records, transient NE payoff-cell
// failures — at sites chosen purely by hashing (seed, fault class, site
// name). Two properties make the faults testable:
//
//   * Deterministic: whether a site fires depends only on the chaos seed
//     and the site's stable name, never on thread interleaving or wall
//     time, so a chaos run is reproducible under any --jobs.
//   * Fire-once: each (class, site) pair fires at most once per injector,
//     so every recovery loop that retries the same work is guaranteed to
//     converge — tests assert the recovered results are bit-identical to
//     a fault-free run at the same experiment seeds.
//
// Chaos faults are *environmental*: recovery must not consume retry
// attempts, bump seeds, or otherwise perturb the experiment's own
// randomness, or bit-identity is lost.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace bbrnash {

enum class ChaosClass : std::uint8_t {
  kTrialException,      ///< throw ChaosFault from inside execute_scenario
  kEventStall,          ///< spin the event loop until the event budget trips
  kWallStall,           ///< sleep past the wall-clock watchdog deadline
  kCheckpointWriteFail, ///< drop one checkpoint append on the floor
  kCheckpointTorn,      ///< write one checkpoint record torn mid-line
  kNeCell,              ///< fail one NE-search payoff cell transiently
  // Process-level classes (exp/fabric.hpp). The fabric SUPERVISOR owns the
  // injector and arms faults when it assigns a cell, so the fire-once
  // bookkeeping spans reassignments: a cell killed once is not re-killed by
  // the fresh worker process (whose own injector would re-derive the same
  // hash but has no shared fired-set).
  kWorkerKill,          ///< SIGKILL a fabric worker mid-cell
  kWorkerHang,          ///< stall a worker's heartbeat past the lease deadline
  kSupervisorCrash,     ///< crash the fabric supervisor before a commit
  // Daemon classes (exp/serve.hpp). The DAEMON owns the injector, so a
  // drill fires once per daemon lifetime and the client's bounded retry
  // (or a daemon restart, for kServeCrash) converges on the fault-free
  // answer — tests assert bit-identity against an undrilled run.
  kClientDisconnect,    ///< drop a client's connection mid-request
  kServeCrash,          ///< kill the daemon mid-compute (before memoization)
  kSlowClient,          ///< stall writes to one client past the write-stall
                        ///< deadline so the shed/drop path executes
};

[[nodiscard]] const char* to_string(ChaosClass cls);

/// Thrown by chaos-injected failures so recovery code can tell an injected
/// (environmental) fault apart from a genuine error.
class ChaosFault : public std::runtime_error {
 public:
  ChaosFault(ChaosClass cls, const std::string& site)
      : std::runtime_error{std::string{"chaos fault ["} + to_string(cls) +
                           "] at " + site},
        cls_(cls) {}

  [[nodiscard]] ChaosClass cls() const noexcept { return cls_; }

 private:
  ChaosClass cls_;
};

class ChaosInjector {
 public:
  /// `rate` in [0, 1] is the per-site firing probability; the default 1.0
  /// fires every eligible site once, which is what the tests want.
  explicit ChaosInjector(std::uint64_t seed, double rate = 1.0);

  /// True when the fault at (cls, site) should fire now. Decides by
  /// hashing (seed, cls, site) — deterministic across runs and thread
  /// schedules — and marks the site fired so it never fires again.
  /// Thread-safe.
  [[nodiscard]] bool should_fire(ChaosClass cls, std::string_view site);

  /// Fires (as should_fire) and throws ChaosFault when it does.
  void maybe_throw(ChaosClass cls, const std::string& site) {
    if (should_fire(cls, site)) throw ChaosFault{cls, site};
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Count of sites fired for one class / overall. Thread-safe.
  [[nodiscard]] std::uint64_t fired(ChaosClass cls) const;
  [[nodiscard]] std::uint64_t total_fired() const;
  /// "chaos seed=S rate=R fired=N" — for logs and flight-recorder dumps.
  [[nodiscard]] std::string describe() const;

 private:
  std::uint64_t seed_;
  double rate_;
  mutable std::mutex mu_;
  std::set<std::pair<std::uint8_t, std::string>> fired_sites_;
  std::uint64_t fired_by_class_[16] = {};
};

}  // namespace bbrnash
