#include "exp/fabric.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/chaos.hpp"
#include "exp/checkpoint.hpp"
#include "exp/cli_flags.hpp"
#include "util/schemas.hpp"

namespace bbrnash {

namespace {

// bbrnash-lint: allow(wall-clock) -- lease deadlines, heartbeat cadence and
// backoff windows measure the health of real OS processes, which live on
// real time; no simulated quantity flows through this clock.
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// --- Annotated syscall shims ----------------------------------------------
//
// The supervisor's whole job is managing worker processes, so this module
// concentrates every process-control call into one shim each; the rest of
// the file (and the lint scan) sees only these names.

pid_t fork_process() {
  // bbrnash-lint: allow(process-control) -- the fabric's single fork site;
  // workers inherit the sweep inputs by address-space copy.
  return ::fork();
}

pid_t reap_process(pid_t pid, int* status, int flags) {
  // bbrnash-lint: allow(process-control) -- waitpid is how the supervisor
  // detects worker exit and crash (the tentpole failure detector).
  return ::waitpid(pid, status, flags);
}

void send_signal(pid_t pid, int sig) {
  // bbrnash-lint: allow(process-control) -- supervisor-side SIGTERM/SIGKILL
  // for hung workers and teardown; worker-side SIGKILL for the chaos drill.
  ::kill(pid, sig);
}

[[noreturn]] void exit_process(int code) {
  // bbrnash-lint: allow(process-control) -- forked workers must leave via
  // _exit: running atexit/static destructors (twice) in a fork child of a
  // gtest/CLI process corrupts shared state.
  ::_exit(code);
}

// --- Signals ---------------------------------------------------------------

volatile std::sig_atomic_t g_stop = 0;

void on_stop_signal(int /*sig*/) { g_stop = 1; }

/// Installs SIGINT/SIGTERM handlers (no SA_RESTART, so blocking poll/read
/// return EINTR and the supervisor/worker loops notice g_stop promptly);
/// restores the previous handlers on destruction. The cooperative flag is
/// what lets an interrupted sweep flush its lease/commit appends and dump
/// incidents before exiting — a ctrl-C'd sweep resumes cleanly.
class ScopedStopSignals {
 public:
  ScopedStopSignals() {
    g_stop = 0;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = on_stop_signal;
    sigemptyset(&sa.sa_mask);
    // bbrnash-lint: allow(process-control) -- the supervisor's stop-signal
    // shim: ctrl-C/SIGTERM become a graceful interrupt, not a dead sweep.
    sigaction(SIGINT, &sa, &old_int_);
    // bbrnash-lint: allow(process-control) -- stop-signal shim, as above.
    sigaction(SIGTERM, &sa, &old_term_);
    // A worker can die between our liveness check and a command write;
    // that write must come back as EPIPE, not kill the supervisor.
    struct sigaction ign;
    std::memset(&ign, 0, sizeof ign);
    ign.sa_handler = SIG_IGN;
    sigemptyset(&ign.sa_mask);
    // bbrnash-lint: allow(process-control) -- EPIPE-not-SIGPIPE for
    // supervisor writes to dead workers.
    sigaction(SIGPIPE, &ign, &old_pipe_);
  }
  ~ScopedStopSignals() {
    // bbrnash-lint: allow(process-control) -- restore the caller's
    // SIGINT disposition on scope exit.
    sigaction(SIGINT, &old_int_, nullptr);
    // bbrnash-lint: allow(process-control) -- restore, as above.
    sigaction(SIGTERM, &old_term_, nullptr);
    // bbrnash-lint: allow(process-control) -- restore, as above.
    sigaction(SIGPIPE, &old_pipe_, nullptr);
  }
  ScopedStopSignals(const ScopedStopSignals&) = delete;
  ScopedStopSignals& operator=(const ScopedStopSignals&) = delete;

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
  struct sigaction old_pipe_ {};
};

// --- Pipe plumbing ---------------------------------------------------------

bool write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE after supervisor death, etc.
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  return write_all(fd, framed.data(), framed.size());
}

/// Incremental line splitter over a pipe fd. drain() appends every complete
/// line currently readable; returns false once EOF has been seen.
struct LineReader {
  int fd = -1;
  std::string buf;
  bool eof = false;

  bool drain(std::vector<std::string>& lines) {
    char chunk[4096];
    for (;;) {
      const ssize_t r = ::read(fd, chunk, sizeof chunk);
      if (r > 0) {
        buf.append(chunk, static_cast<std::size_t>(r));
        continue;
      }
      if (r == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained for now
    }
    std::size_t at = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', at);
      if (nl == std::string::npos) break;
      lines.push_back(buf.substr(at, nl - at));
      at = nl + 1;
    }
    buf.erase(0, at);
    return !eof;
  }
};

/// One blocking line read (worker side: the command pipe). Returns 1 on a
/// line, 0 on EOF (supervisor died — orphaned workers must exit), -1 on
/// EINTR with no complete line (caller re-checks g_stop).
int read_line_blocking(int fd, std::string& carry, std::string* line) {
  for (;;) {
    const std::size_t nl = carry.find('\n');
    if (nl != std::string::npos) {
      *line = carry.substr(0, nl);
      carry.erase(0, nl + 1);
      return 1;
    }
    char chunk[512];
    const ssize_t r = ::read(fd, chunk, sizeof chunk);
    if (r > 0) {
      carry.append(chunk, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) return 0;
    if (errno == EINTR) return -1;
    return 0;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string sanitize_for_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

/// Cell index out of a protocol message field; nullopt on garbage (a torn
/// pipe write) so the caller can drop the message instead of acting on a
/// bogus index.
std::optional<std::size_t> parse_index(const std::string& tok,
                                       std::size_t limit) {
  try {
    const std::uint64_t v = parse_u64_strict("fabric-index", tok);
    if (v >= limit) return std::nullopt;
    return static_cast<std::size_t>(v);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

// --- Worker process --------------------------------------------------------

/// Command protocol, supervisor -> worker:  "run <cell-index> <fault>"
/// (fault in {none, kill, hang}) or "quit". Worker -> supervisor:
/// "hb <idx>", "done <idx> <jsonl record>", "fail <idx> <message>".
/// Chaos faults are decided by the SUPERVISOR and shipped in the command:
/// the injector's fire-once set lives in one process, so a reassigned cell
/// is never re-faulted (a worker-local injector would re-derive the same
/// hash and kill every respawn forever).
[[noreturn]] void worker_main(int cmd_fd, int res_fd, const NetworkParams& net,
                              const std::vector<FabricCell>& cells,
                              CcKind challenger, const TrialConfig& trial,
                              double heartbeat_ms) {
  // A worker whose supervisor died mid-write must see EPIPE, not die.
  // bbrnash-lint: allow(process-control) -- EPIPE-not-SIGPIPE in workers.
  std::signal(SIGPIPE, SIG_IGN);
  {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = on_stop_signal;
    sigemptyset(&sa.sa_mask);
    // bbrnash-lint: allow(process-control) -- worker stop-signal shim:
    // SIGINT/SIGTERM abort the current cell cleanly.
    sigaction(SIGINT, &sa, nullptr);
    // bbrnash-lint: allow(process-control) -- worker stop-signal shim.
    sigaction(SIGTERM, &sa, nullptr);
  }
  g_stop = 0;

  std::string carry;
  std::mutex out_mu;  // heartbeat thread vs. result writes
  for (;;) {
    if (g_stop != 0) exit_process(0);
    std::string line;
    const int rc = read_line_blocking(cmd_fd, carry, &line);
    if (rc == 0) exit_process(0);  // EOF: supervisor is gone
    if (rc < 0) continue;          // EINTR: re-check g_stop
    if (line == "quit") exit_process(0);

    // "run <idx> <fault>"
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos || line.substr(0, sp1) != "run") {
      continue;  // unknown command: ignore, stay alive
    }
    const auto parsed =
        parse_index(line.substr(sp1 + 1, sp2 - sp1 - 1), cells.size());
    if (!parsed.has_value()) continue;
    const std::size_t idx = *parsed;
    const std::string fault = line.substr(sp2 + 1);

    // First heartbeat right away so the supervisor sees the claim is live.
    {
      const std::lock_guard<std::mutex> lk{out_mu};
      if (!write_line(res_fd, "hb " + std::to_string(idx))) exit_process(0);
    }
    if (fault == "kill") {
      // Chaos drill: die the way a crashed worker dies — no unwinding, no
      // goodbye message, mid-cell from the supervisor's point of view.
      send_signal(::getpid(), SIGKILL);
    }
    if (fault == "hang") {
      // Chaos drill: stay alive but stop heartbeating; the supervisor must
      // expire the lease and put us down.
      for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::atomic<bool> cell_done{false};
    std::thread heartbeat{[&] {
      const auto period =
          std::chrono::duration<double, std::milli>(heartbeat_ms);
      auto next = Clock::now() + period;
      while (!cell_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        if (Clock::now() < next) continue;
        next = Clock::now() + period;
        const std::lock_guard<std::mutex> lk{out_mu};
        if (!write_line(res_fd, "hb " + std::to_string(idx))) return;
      }
    }};

    std::string reply;
    try {
      const MixOutcome m = run_mix_trials(net, cells[idx].num_cubic,
                                          cells[idx].num_other, challenger,
                                          trial);
      reply = "done " + std::to_string(idx) + " " + mix_to_record(m).encode();
    } catch (const std::exception& e) {
      reply = "fail " + std::to_string(idx) + " " +
              sanitize_for_line(e.what());
    }
    cell_done.store(true, std::memory_order_relaxed);
    heartbeat.join();
    const std::lock_guard<std::mutex> lk{out_mu};
    if (!write_line(res_fd, reply)) exit_process(0);
  }
}

// --- Supervisor ------------------------------------------------------------

struct PendingCell {
  std::size_t index = 0;
  int attempts = 0;  ///< completed (failed) assignments so far
  Clock::time_point not_before;
};

struct WorkerSlot {
  int id = 0;
  pid_t pid = -1;  ///< -1: no live process
  int cmd_w = -1;
  int res_r = -1;
  LineReader reader;
  long long cell = -1;  ///< index into cells; -1 idle
  std::uint64_t epoch = 0;
  Clock::time_point last_heartbeat;
  Clock::time_point last_heartbeat_record;
  int spawns = 0;
  bool fault_armed = false;  ///< current assignment carries a chaos drill
  int drill_deaths = 0;      ///< deaths the supervisor itself provoked
  bool retired = false;
  FabricWorkerStats stats;
};

class Supervisor {
 public:
  Supervisor(const NetworkParams& net, const std::vector<FabricCell>& cells,
             CcKind challenger, const TrialConfig& trial,
             const FabricConfig& cfg, std::string checkpoint_path,
             std::string incident_path)
      : net_(net),
        cells_(cells),
        challenger_(challenger),
        trial_(trial),
        cfg_(cfg),
        checkpoint_path_(std::move(checkpoint_path)),
        incident_path_(std::move(incident_path)) {
    cell_keys_.reserve(cells_.size());
    for (const FabricCell& c : cells_) {
      cell_keys_.push_back(mix_checkpoint_key(net_, c.num_cubic, c.num_other,
                                              challenger_, trial_));
    }
    out_.cells.assign(cells_.size(), std::nullopt);
  }

  ~Supervisor() { terminate_workers(/*force=*/true); }
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  FabricOutcome run() {
    const Clock::time_point t0 = Clock::now();
    replay_checkpoint(t0);

    if (!pending_.empty()) {
      const ScopedStopSignals signals;
      const int n_workers = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(cfg_.workers), pending_.size()));
      slots_.resize(static_cast<std::size_t>(n_workers));
      for (int w = 0; w < n_workers; ++w) {
        slots_[static_cast<std::size_t>(w)].id = w;
        slots_[static_cast<std::size_t>(w)].stats.worker = w;
      }
      supervise();
      // After a clean supervise() pass every worker is idle and quits on
      // the pipe EOF; only a crash/interrupt leaves workers mid-cell.
      terminate_workers(/*force=*/crashed_ || interrupted_);
    }

    finalize(t0);
    return std::move(out_);
  }

 private:
  // -- checkpoint & lease records -------------------------------------------

  void replay_checkpoint(Clock::time_point now) {
    const CheckpointLog log{checkpoint_path_};  // lookup-only: no writer
                                                // thread exists when we fork
    out_.stats.checkpoint_skipped_lines = log.skipped_lines();
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (const auto hit = log.lookup(cell_keys_[i])) {
        out_.cells[i] = mix_from_record(*hit);
        ++out_.stats.cells_from_checkpoint;
        continue;
      }
      // A claim without a commit is a lease owned by a process that no
      // longer exists (we are the only supervisor on this log): expire it
      // in the log and take the cell back.
      if (const auto lease = log.lookup(lease_key(cell_keys_[i]))) {
        const std::string state = lease->get_string("lease");
        if (state == "claim" || state == "heartbeat") {
          append_lease(i, "expired", -1, 0, "stale-on-resume");
          ++out_.stats.leases_expired;
        }
      }
      pending_.push_back(PendingCell{i, 0, now});
    }
  }

  void append_lease(std::size_t cell, const char* state, int worker,
                    std::uint64_t epoch, const char* why) {
    JsonlRecord rec;
    rec.set("key", lease_key(cell_keys_[cell]));
    rec.set("lease", state);
    if (worker >= 0) rec.set("worker", worker);
    rec.set("pid", static_cast<std::uint64_t>(
                       worker >= 0 && slots_.size() >
                                          static_cast<std::size_t>(worker)
                           ? slots_[static_cast<std::size_t>(worker)].pid
                           : 0));
    rec.set("epoch", epoch);
    if (why != nullptr && *why != '\0') rec.set("why", why);
    append_jsonl_line(checkpoint_path_, rec.encode());
  }

  void append_commit(std::size_t cell, const JsonlRecord& measurement) {
    JsonlRecord rec = measurement;
    rec.set("key", cell_keys_[cell]);
    append_jsonl_line(checkpoint_path_, rec.encode());
  }

  void write_incident(const char* trigger, const WorkerSlot* slot,
                      long long cell, int wait_status,
                      const std::string& note) {
    JsonlRecord rec;
    rec.set("type", kSchemaFabric);
    rec.set("trigger", trigger);
    if (slot != nullptr) {
      rec.set("worker", slot->id);
      rec.set("pid", static_cast<std::uint64_t>(slot->pid > 0 ? slot->pid : 0));
    }
    if (cell >= 0) {
      rec.set("cell", static_cast<std::uint64_t>(cell));
      rec.set("cell_key", cell_keys_[static_cast<std::size_t>(cell)]);
    }
    if (WIFSIGNALED(wait_status)) {
      rec.set("signal", static_cast<std::uint64_t>(WTERMSIG(wait_status)));
    } else if (WIFEXITED(wait_status)) {
      rec.set("exit_code",
              static_cast<std::uint64_t>(WEXITSTATUS(wait_status)));
    }
    if (!note.empty()) rec.set("note", sanitize_for_line(note));
    if (cfg_.chaos != nullptr) rec.set("chaos", cfg_.chaos->describe());
    try {
      append_jsonl_line(incident_path_, rec.encode());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fabric: cannot write incident record: %s\n",
                   e.what());
    }
    ++out_.stats.incidents;
  }

  // -- worker lifecycle -----------------------------------------------------

  bool spawn(WorkerSlot& slot) {
    int cmd[2];
    int res[2];
    if (::pipe(cmd) != 0) return false;
    if (::pipe(res) != 0) {
      ::close(cmd[0]);
      ::close(cmd[1]);
      return false;
    }
    const pid_t pid = fork_process();
    if (pid < 0) {
      for (const int fd : {cmd[0], cmd[1], res[0], res[1]}) ::close(fd);
      return false;
    }
    if (pid == 0) {
      // Child: drop every supervisor-side descriptor (other workers' pipes
      // included) so a dead supervisor reliably EOFs every worker.
      for (const WorkerSlot& other : slots_) {
        if (other.cmd_w >= 0) ::close(other.cmd_w);
        if (other.res_r >= 0) ::close(other.res_r);
      }
      ::close(cmd[1]);
      ::close(res[0]);
      worker_main(cmd[0], res[1], net_, cells_, challenger_, trial_,
                  std::max(1.0, cfg_.lease_ms / 4.0));
    }
    ::close(cmd[0]);
    ::close(res[1]);
    slot.pid = pid;
    slot.cmd_w = cmd[1];
    slot.res_r = res[0];
    set_nonblocking(slot.res_r);
    slot.reader = LineReader{slot.res_r, std::string{}, false};
    slot.cell = -1;
    ++slot.spawns;
    ++slot.stats.spawns;
    if (slot.spawns > 1) ++out_.stats.worker_respawns;
    return true;
  }

  void close_slot_fds(WorkerSlot& slot) {
    if (slot.cmd_w >= 0) ::close(slot.cmd_w);
    if (slot.res_r >= 0) ::close(slot.res_r);
    slot.cmd_w = -1;
    slot.res_r = -1;
  }

  /// Decides the chaos fault to ship with an assignment. At most one fault
  /// per assignment, priority kill > hang; fire-once per (class, cell)
  /// means a cell survives each class at most once and then runs clean —
  /// the recovery loop provably converges.
  std::string arm_fault(std::size_t cell) {
    if (cfg_.chaos == nullptr) return "none";
    if (cfg_.chaos_worker_kill &&
        cfg_.chaos->should_fire(ChaosClass::kWorkerKill,
                                "fabric-kill " + cell_keys_[cell])) {
      return "kill";
    }
    if (cfg_.chaos_worker_hang &&
        cfg_.chaos->should_fire(ChaosClass::kWorkerHang,
                                "fabric-hang " + cell_keys_[cell])) {
      return "hang";
    }
    return "none";
  }

  bool assign(WorkerSlot& slot, PendingCell cell) {
    const std::string fault = arm_fault(cell.index);
    slot.fault_armed = fault != "none";
    slot.cell = static_cast<long long>(cell.index);
    slot.epoch = ++epoch_counter_;
    slot.last_heartbeat = Clock::now();
    slot.last_heartbeat_record = slot.last_heartbeat;
    attempts_[cell.index] = cell.attempts;
    ++slot.stats.cells_claimed;
    append_lease(cell.index, "claim", slot.id, slot.epoch, "");
    if (!write_line(slot.cmd_w, "run " + std::to_string(cell.index) + " " +
                                    fault)) {
      // The pipe is already broken: the worker died between assignments.
      // Put the cell back; the reaper will notice the corpse.
      slot.cell = -1;
      revoke_lease(slot, cell.index, "worker-exit");
      requeue(cell.index, "assign-write-failed");
      return false;
    }
    return true;
  }

  void revoke_lease(WorkerSlot& slot, std::size_t cell, const char* why) {
    append_lease(cell, "expired", slot.id, slot.epoch, why);
    ++slot.stats.leases_expired;
    ++out_.stats.leases_expired;
  }

  /// Bounded retry + exponential backoff for a cell whose lease was lost.
  void requeue(std::size_t cell, const std::string& why) {
    const int attempts = attempts_[cell] + 1;
    if (attempts > cfg_.max_worker_retries) {
      ++out_.stats.retries_exhausted;
      mark_failed(cell, "retries exhausted after " + why);
      return;
    }
    const double backoff_ms =
        std::min(cfg_.backoff_base_ms *
                     static_cast<double>(1ULL << static_cast<unsigned>(
                                             std::min(attempts - 1, 20))),
                 2000.0);
    out_.stats.backoff_seconds_total += backoff_ms / 1000.0;
    ++out_.stats.cells_reassigned;
    pending_.push_back(PendingCell{
        cell, attempts,
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               backoff_ms))});
  }

  void mark_failed(std::size_t cell, const std::string& reason) {
    ++out_.stats.cells_failed;
    out_.failed_cells.push_back(cell);
    if (!out_.message.empty()) out_.message += "; ";
    out_.message += "cell " + std::to_string(cell) + ": " + reason;
  }

  // -- event handling -------------------------------------------------------

  void handle_line(WorkerSlot& slot, const std::string& line) {
    if (line.rfind("hb ", 0) == 0) {
      slot.last_heartbeat = Clock::now();
      // Lease heartbeats are throttled to one record per lease period so a
      // long cell does not balloon the log.
      if (slot.cell >= 0 &&
          seconds_between(slot.last_heartbeat_record, slot.last_heartbeat) >=
              cfg_.lease_ms / 1000.0) {
        slot.last_heartbeat_record = slot.last_heartbeat;
        append_lease(static_cast<std::size_t>(slot.cell), "heartbeat",
                     slot.id, slot.epoch, "");
      }
      return;
    }
    const bool is_done = line.rfind("done ", 0) == 0;
    const bool is_fail = line.rfind("fail ", 0) == 0;
    if (!is_done && !is_fail) return;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) return;
    const auto parsed =
        parse_index(line.substr(sp1 + 1, sp2 - sp1 - 1), cells_.size());
    if (!parsed.has_value()) return;
    const std::size_t idx = *parsed;
    if (slot.cell != static_cast<long long>(idx)) {
      return;  // stale message from a revoked lease
    }
    const std::string payload = line.substr(sp2 + 1);
    slot.cell = -1;
    slot.fault_armed = false;

    if (is_fail) {
      // A deterministic in-cell error (bad scenario, zero-trial cell):
      // retrying re-runs the identical computation into the identical
      // throw, so fail fast instead of burning the retry budget.
      revoke_lease(slot, idx, "cell-error");
      write_incident("worker-cell-error", &slot, static_cast<long long>(idx),
                     0, payload);
      mark_failed(idx, payload);
      return;
    }

    const auto rec = JsonlRecord::parse(payload);
    if (!rec.has_value()) {
      revoke_lease(slot, idx, "bad-result");
      write_incident("worker-bad-result", &slot, static_cast<long long>(idx),
                     0, payload.substr(0, 120));
      requeue(idx, "unparseable result");
      return;
    }

    // The chaos drill for the third process-level class: the supervisor
    // dies after the worker finished but BEFORE the commit reached the
    // log. We model the crash (tear down the pool, report a typed
    // crash outcome) instead of literally aborting so the caller — and the
    // test suite — can immediately re-run the fabric and watch the resume
    // path re-measure only the uncommitted cell.
    if (cfg_.chaos != nullptr && cfg_.chaos_supervisor_crash &&
        cfg_.chaos->should_fire(ChaosClass::kSupervisorCrash,
                                "fabric-commit " + cell_keys_[idx])) {
      ++out_.stats.supervisor_crashes;
      write_incident("supervisor-crash", &slot, static_cast<long long>(idx),
                     0, "chaos: supervisor crashed before commit");
      crashed_ = true;
      return;
    }

    append_lease(idx, "commit", slot.id, slot.epoch, "");
    append_commit(idx, *rec);
    out_.cells[idx] = mix_from_record(*rec);
    ++slot.stats.cells_committed;
    ++out_.stats.cells_committed;
  }

  void reap_dead_workers() {
    for (WorkerSlot& slot : slots_) {
      if (slot.pid <= 0) continue;
      int status = 0;
      const pid_t r = reap_process(slot.pid, &status, WNOHANG);
      if (r != slot.pid) continue;
      // Harvest any result that made it into the pipe before death.
      drain_slot(slot);
      ++out_.stats.worker_deaths;
      const char* why = WIFSIGNALED(status) ? "worker-signal" : "worker-exit";
      if (slot.cell >= 0) {
        const std::size_t cell = static_cast<std::size_t>(slot.cell);
        slot.cell = -1;
        revoke_lease(slot, cell, why);
        write_incident(why, &slot, static_cast<long long>(cell), status,
                       "worker died holding a lease");
        requeue(cell, why);
      } else {
        write_incident(why, &slot, -1, status, "worker died idle");
      }
      slot.pid = -1;
      close_slot_fds(slot);
      maybe_retire(slot);
    }
  }

  /// A death the supervisor provoked itself (an armed chaos drill) is the
  /// experiment working, not evidence of a bad worker slot: only
  /// *unexplained* deaths burn the respawn budget, otherwise a full-rate
  /// drill would retire the whole pool before recovery could converge.
  void maybe_retire(WorkerSlot& slot) {
    if (slot.fault_armed) {
      ++slot.drill_deaths;
      slot.fault_armed = false;
    }
    if (slot.spawns - slot.drill_deaths > cfg_.max_worker_respawns) {
      slot.retired = true;
      ++out_.stats.workers_retired;
    }
  }

  void expire_stale_leases() {
    const Clock::time_point now = Clock::now();
    for (WorkerSlot& slot : slots_) {
      if (slot.pid <= 0 || slot.cell < 0) continue;
      if (seconds_between(slot.last_heartbeat, now) * 1000.0 < cfg_.lease_ms) {
        continue;
      }
      // Heartbeat deadline breached: the worker is wedged. Expire the
      // lease, put the process down (it cannot be trusted to come back),
      // and let the reaper + requeue path recover the cell.
      ++out_.stats.worker_hangs;
      const std::size_t cell = static_cast<std::size_t>(slot.cell);
      slot.cell = -1;
      revoke_lease(slot, cell, "heartbeat-stale");
      write_incident("worker-hang", &slot, static_cast<long long>(cell), 0,
                     "no heartbeat within the lease deadline");
      send_signal(slot.pid, SIGKILL);
      int status = 0;
      reap_process(slot.pid, &status, 0);  // SIGKILL cannot be refused
      ++out_.stats.worker_deaths;
      slot.pid = -1;
      close_slot_fds(slot);
      requeue(cell, "heartbeat-stale");
      maybe_retire(slot);
    }
  }

  void drain_slot(WorkerSlot& slot) {
    if (slot.res_r < 0) return;
    std::vector<std::string> lines;
    slot.reader.drain(lines);
    for (const std::string& line : lines) {
      handle_line(slot, line);
      if (crashed_) return;
    }
  }

  [[nodiscard]] std::size_t cells_in_flight() const {
    std::size_t n = 0;
    for (const WorkerSlot& slot : slots_) {
      if (slot.pid > 0 && slot.cell >= 0) ++n;
    }
    return n;
  }

  [[nodiscard]] bool pool_exhausted() const {
    for (const WorkerSlot& slot : slots_) {
      if (!slot.retired) return false;
    }
    return true;
  }

  void assign_ready_cells() {
    const Clock::time_point now = Clock::now();
    for (WorkerSlot& slot : slots_) {
      if (pending_.empty()) return;
      if (slot.retired || slot.cell >= 0) continue;
      // Find the first pending cell whose backoff window has elapsed.
      auto it = std::find_if(pending_.begin(), pending_.end(),
                             [&](const PendingCell& c) {
                               return c.not_before <= now;
                             });
      if (it == pending_.end()) return;
      if (slot.pid <= 0 && !spawn(slot)) {
        // fork/pipe failure: retire the slot rather than spin on it.
        slot.retired = true;
        ++out_.stats.workers_retired;
        continue;
      }
      const PendingCell cell = *it;
      pending_.erase(it);
      assign(slot, cell);
    }
  }

  void supervise() {
    while (!crashed_) {
      if (g_stop != 0) {
        interrupted_ = true;
        write_incident("interrupted", nullptr, -1, 0,
                       "SIGINT/SIGTERM: committed cells are on disk; "
                       "re-run with the same checkpoint to resume");
        return;
      }
      reap_dead_workers();
      if (crashed_) return;
      expire_stale_leases();
      assign_ready_cells();

      if (pending_.empty() && cells_in_flight() == 0) return;
      if (pool_exhausted()) {
        // Graceful degradation's last stop: no worker slot left to run the
        // remaining cells. Report them failed instead of aborting.
        for (const PendingCell& c : pending_) {
          mark_failed(c.index, "no worker slots left (pool exhausted)");
        }
        pending_.clear();
        return;
      }

      std::vector<struct pollfd> fds;
      std::vector<std::size_t> fd_slot;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].pid > 0 && slots_[i].res_r >= 0) {
          struct pollfd pfd;
          pfd.fd = slots_[i].res_r;
          pfd.events = POLLIN;
          pfd.revents = 0;
          fds.push_back(pfd);
          fd_slot.push_back(i);
        }
      }
      const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);
      if (rc < 0) {
        if (errno == EINTR) continue;  // g_stop is checked at loop top
        return;
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) {
          drain_slot(slots_[fd_slot[i]]);
          if (crashed_) return;
        }
      }
    }
  }

  void terminate_workers(bool force) {
    for (WorkerSlot& slot : slots_) {
      if (slot.pid <= 0) continue;
      if (slot.cmd_w >= 0) write_line(slot.cmd_w, "quit");
      close_slot_fds(slot);  // EOF is the backstop quit signal
    }
    if (force) {
      // Workers may be mid-simulation and not looking at the pipe: give
      // the cooperative path a moment, then put them down hard.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      for (WorkerSlot& slot : slots_) {
        if (slot.pid <= 0) continue;
        int status = 0;
        if (reap_process(slot.pid, &status, WNOHANG) == slot.pid) {
          slot.pid = -1;
          continue;
        }
        send_signal(slot.pid, SIGTERM);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      for (WorkerSlot& slot : slots_) {
        if (slot.pid <= 0) continue;
        int status = 0;
        if (reap_process(slot.pid, &status, WNOHANG) != slot.pid) {
          send_signal(slot.pid, SIGKILL);
          reap_process(slot.pid, &status, 0);
        }
        slot.pid = -1;
      }
    } else {
      for (WorkerSlot& slot : slots_) {
        if (slot.pid <= 0) continue;
        int status = 0;
        reap_process(slot.pid, &status, 0);  // idle workers quit instantly
        slot.pid = -1;
      }
    }
  }

  void finalize(Clock::time_point t0) {
    FabricStats& s = out_.stats;
    s.cells_total = cells_.size();
    for (const WorkerSlot& slot : slots_) s.workers.push_back(slot.stats);
    s.wall_seconds = seconds_between(t0, Clock::now());
    s.cells_per_second =
        s.wall_seconds > 0.0
            ? static_cast<double>(s.cells_committed) / s.wall_seconds
            : 0.0;
    std::sort(out_.failed_cells.begin(), out_.failed_cells.end());

    if (crashed_) {
      out_.status = FabricStatus::kSupervisorCrashed;
      out_.message = "chaos: supervisor crashed before commit; re-run with "
                     "checkpoint " + checkpoint_path_ + " to resume";
    } else if (interrupted_) {
      out_.status = FabricStatus::kInterrupted;
      out_.message = "interrupted by SIGINT/SIGTERM; re-run with checkpoint " +
                     checkpoint_path_ + " to resume";
    } else if (!out_.failed_cells.empty()) {
      out_.status = FabricStatus::kPartial;
    } else {
      out_.status = FabricStatus::kComplete;
      out_.message.clear();
    }
  }

  const NetworkParams& net_;
  const std::vector<FabricCell>& cells_;
  CcKind challenger_;
  const TrialConfig& trial_;
  const FabricConfig& cfg_;
  std::string checkpoint_path_;
  std::string incident_path_;
  std::vector<std::string> cell_keys_;
  std::vector<WorkerSlot> slots_;
  std::deque<PendingCell> pending_;
  std::map<std::size_t, int> attempts_;  ///< cell -> failed assignments
  std::uint64_t epoch_counter_ = 0;
  bool crashed_ = false;
  bool interrupted_ = false;
  FabricOutcome out_;
};

}  // namespace

const char* to_string(FabricStatus status) {
  switch (status) {
    case FabricStatus::kComplete:
      return "complete";
    case FabricStatus::kPartial:
      return "partial";
    case FabricStatus::kInterrupted:
      return "interrupted";
    case FabricStatus::kSupervisorCrashed:
      return "supervisor-crashed";
  }
  return "unknown";
}

JsonlRecord fabric_stats_to_record(const FabricStats& stats) {
  JsonlRecord rec;
  rec.set("type", kSchemaFabricStats);
  rec.set("workers", static_cast<std::uint64_t>(stats.workers.size()));
  rec.set("cells_total", stats.cells_total);
  rec.set("cells_from_checkpoint", stats.cells_from_checkpoint);
  rec.set("cells_committed", stats.cells_committed);
  rec.set("cells_failed", stats.cells_failed);
  rec.set("cells_reassigned", stats.cells_reassigned);
  rec.set("leases_expired", stats.leases_expired);
  rec.set("worker_deaths", stats.worker_deaths);
  rec.set("worker_hangs", stats.worker_hangs);
  rec.set("worker_respawns", stats.worker_respawns);
  rec.set("workers_retired", stats.workers_retired);
  rec.set("retries_exhausted", stats.retries_exhausted);
  rec.set("supervisor_crashes", stats.supervisor_crashes);
  rec.set("incidents", stats.incidents);
  rec.set("checkpoint_skipped_lines",
          static_cast<std::uint64_t>(stats.checkpoint_skipped_lines));
  rec.set("backoff_seconds_total", stats.backoff_seconds_total);
  rec.set("wall_seconds", stats.wall_seconds);
  rec.set("cells_per_second", stats.cells_per_second);
  for (const FabricWorkerStats& w : stats.workers) {
    std::string p{"w"};
    p += std::to_string(w.worker);
    p += '.';
    rec.set(p + "spawns", w.spawns);
    rec.set(p + "claimed", w.cells_claimed);
    rec.set(p + "committed", w.cells_committed);
    rec.set(p + "expired", w.leases_expired);
  }
  return rec;
}

FabricOutcome run_fabric_cells(const NetworkParams& net,
                               const std::vector<FabricCell>& cells,
                               CcKind challenger, const TrialConfig& trial,
                               const FabricConfig& fabric) {
  if (fabric.workers < 1) {
    throw std::invalid_argument{"fabric: workers must be >= 1"};
  }
  if (!(fabric.lease_ms > 0.0)) {
    throw std::invalid_argument{"fabric: lease_ms must be > 0"};
  }
  if (fabric.max_worker_retries < 0 || fabric.max_worker_respawns < 0) {
    throw std::invalid_argument{"fabric: retry/respawn budgets must be >= 0"};
  }
  if (cells.empty()) {
    throw std::invalid_argument{"fabric: no cells to run"};
  }

  std::string checkpoint = fabric.checkpoint_path;
  if (checkpoint.empty()) {
    // Ephemeral coordination log: still crash-safe within the run, but a
    // fresh file per invocation (no cross-run resume was asked for).
    const auto dir = std::filesystem::temp_directory_path();
    checkpoint = (dir / ("bbrnash-fabric-" + std::to_string(::getpid()) +
                         ".jsonl")).string();
    std::error_code ec;
    std::filesystem::remove(checkpoint, ec);
  }
  std::string incidents = fabric.incident_path;
  if (incidents.empty()) incidents = checkpoint + ".incidents.jsonl";

  Supervisor sup{net,   cells,      challenger, trial,
                 fabric, checkpoint, incidents};
  return sup.run();
}

FabricSweepOutcome run_fabric_sweep(const NetworkParams& net, int total_flows,
                                    const NashSearchConfig& cfg,
                                    const FabricConfig& fabric) {
  if (total_flows < 1) {
    throw std::invalid_argument{"fabric: total_flows must be >= 1"};
  }
  std::vector<FabricCell> cells;
  cells.reserve(static_cast<std::size_t>(total_flows) + 1);
  for (int k = 0; k <= total_flows; ++k) {
    cells.push_back(FabricCell{total_flows - k, k});
  }
  FabricConfig fab = fabric;
  if (fab.checkpoint_path.empty()) fab.checkpoint_path = cfg.checkpoint_path;

  FabricOutcome cells_out =
      run_fabric_cells(net, cells, cfg.challenger, cfg.trial, fab);

  FabricSweepOutcome out;
  out.status = cells_out.status;
  out.message = std::move(cells_out.message);
  out.stats = std::move(cells_out.stats);
  out.payoffs.cubic_mbps.assign(cells.size(), 0.0);
  out.payoffs.other_mbps.assign(cells.size(), 0.0);
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const auto& m = cells_out.cells[k];
    if (!m.has_value() || m->trials_completed == 0) {
      // measure_payoffs throws for a zero-trial cell; the fabric's typed
      // outcome reports it as failed instead so survivors are kept.
      out.failed_k.push_back(static_cast<int>(k));
      continue;
    }
    out.payoffs.cubic_mbps[k] = m->per_flow_cubic_mbps;
    out.payoffs.other_mbps[k] = m->per_flow_other_mbps;
  }
  if (!out.failed_k.empty() && out.status == FabricStatus::kComplete) {
    out.status = FabricStatus::kPartial;
    out.message = "cells with zero completed trials: " +
                  std::to_string(out.failed_k.size());
  }
  return out;
}

}  // namespace bbrnash
