// Workload generation: realistic flow arrival patterns.
//
// The paper's evaluation uses only simultaneous long-lived flows and its
// §5 lists "more diverse workloads" as future work. This module generates
// the standard synthetic approximation of Internet traffic: flows arriving
// as a Poisson process with heavy-tailed (bounded Pareto) sizes, on top of
// an optional population of long-lived elephants.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/congestion_control.hpp"
#include "exp/scenario.hpp"
#include "model/network_params.hpp"
#include "util/rng.hpp"

namespace bbrnash {

struct WorkloadConfig {
  /// Mean arrival rate of short flows (flows per second).
  double arrivals_per_sec = 2.0;
  /// Bounded-Pareto size distribution (classic web-traffic model).
  double pareto_alpha = 1.2;
  Bytes min_size = 30 * 1024;
  Bytes max_size = 5 * 1024 * 1024;
  /// CCA used by the generated short flows.
  CcKind cc = CcKind::kCubic;
  TimeNs base_rtt = from_ms(40);
  /// Arrivals occupy [start, end) of scenario time.
  TimeNs start = 0;
  TimeNs end = from_sec(60);
  std::uint64_t seed = 1;
};

/// Draws one bounded-Pareto size.
[[nodiscard]] Bytes pareto_size(Rng& rng, double alpha, Bytes min_size,
                                Bytes max_size);

/// Generates the flow specs for a workload (arrival times and sizes are
/// deterministic given the seed).
[[nodiscard]] std::vector<FlowSpec> generate_workload(const WorkloadConfig& cfg);

/// Appends a generated workload to a scenario.
void add_workload(Scenario& scenario, const WorkloadConfig& cfg);

/// Offered load of a generated workload as a fraction of link capacity
/// (expected bytes per second / capacity).
[[nodiscard]] double offered_load(const WorkloadConfig& cfg,
                                  BytesPerSec capacity);

}  // namespace bbrnash
