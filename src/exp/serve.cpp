#include "exp/serve.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/cli_flags.hpp"
#include "model/network_params.hpp"
#include "util/ipc.hpp"
#include "util/schemas.hpp"

namespace bbrnash {

namespace {

// bbrnash-lint: allow(wall-clock) -- see file header: socket-deadline
// policy, never simulation state.
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Keep incident notes / error frames one-line (mirrors the fabric).
std::string sanitize_for_line(std::string s) {
  for (char& ch : s) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  return s;
}

// Deterministic u01 for backoff jitter: a splitmix64 finalizer over
// (seed, attempt), so a test replaying the same seed sees the same sleep
// schedule.
double jitter_u01(std::uint64_t seed, int attempt) {
  std::uint64_t z =
      seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(attempt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

// EINTR-safe write of one byte to the self-wake pipe (a pipe, not a
// socket, so ipc_write_some's send() does not apply). The pipe is
// nonblocking; a full pipe is fine — the poll loop is already pending.
void wake_pipe_poke(int fd) {
  for (;;) {
    const ssize_t w = ::write(fd, "x", 1);
    if (w >= 0 || errno != EINTR) return;
  }
}

void drain_pipe(int fd) {
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

volatile std::sig_atomic_t g_serve_stop = 0;

void serve_stop_handler(int) { g_serve_stop = 1; }

// SIGTERM/SIGINT handlers for the CLI daemon mode, without SA_RESTART so
// the poll loop wakes immediately. Restores the old dispositions on scope
// exit.
class ScopedServeSignals {
 public:
  ScopedServeSignals() {
    g_serve_stop = 0;
    struct sigaction sa{};
    sa.sa_handler = &serve_stop_handler;
    sigemptyset(&sa.sa_mask);
    // bbrnash-lint: allow(process-control) -- the daemon's SIGTERM-drain
    // entry point (finish in-flight, flush cache, unlink socket).
    sigaction(SIGINT, &sa, &old_int_);
    // bbrnash-lint: allow(process-control) -- SIGTERM drain, as above.
    sigaction(SIGTERM, &sa, &old_term_);
  }
  ~ScopedServeSignals() {
    // bbrnash-lint: allow(process-control) -- restore the caller's
    // SIGINT/SIGTERM dispositions on scope exit.
    sigaction(SIGINT, &old_int_, nullptr);
    // bbrnash-lint: allow(process-control) -- restore, as above.
    sigaction(SIGTERM, &old_term_, nullptr);
  }
  ScopedServeSignals(const ScopedServeSignals&) = delete;
  ScopedServeSignals& operator=(const ScopedServeSignals&) = delete;

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

std::optional<CcKind> parse_cc_name(const std::string& name) {
  for (const CcKind k : {CcKind::kCubic, CcKind::kReno, CcKind::kBbr,
                         CcKind::kBbrV2, CcKind::kCopa, CcKind::kVivace,
                         CcKind::kVegas}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

}  // namespace

// --- Wire protocol helpers -------------------------------------------------

const std::vector<std::string>& serve_query_keys() {
  static const std::vector<std::string> kKeys = {
      "capacity", "rtt",      "buffer-bdp", "cubic", "other", "challenger",
      "trials",   "duration", "warmup",     "seed",  "jobs"};
  return kKeys;
}

std::map<std::string, std::string> parse_query_tokens(
    const std::string& line) {
  std::map<std::string, std::string> kv;
  const std::vector<std::string>& allowed = serve_query_keys();
  std::stringstream tokens{line};
  std::string tok;
  while (tokens >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    const auto eq = tok.find('=');
    const std::string key = tok.substr(0, eq);
    if (eq == std::string::npos ||
        std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::invalid_argument{"bad query token '" + tok + "'"};
    }
    kv[key] = tok.substr(eq + 1);
  }
  return kv;
}

OracleQuery oracle_query_from_tokens(
    const std::map<std::string, std::string>& kv) {
  const auto num = [&kv](const std::string& key, double fallback) {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    return parse_double_strict(key, it->second);
  };
  const auto integer = [&kv](const std::string& key, int fallback) {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    return parse_int_strict(key, it->second);
  };
  OracleQuery q;
  q.net = make_params(num("capacity", 100), num("rtt", 40),
                      num("buffer-bdp", 5));
  q.num_cubic = integer("cubic", 1);
  q.num_other = integer("other", 1);
  if (q.num_cubic < 0 || q.num_other < 0) {
    throw std::invalid_argument{"cubic/other flow counts must be >= 0"};
  }
  const auto cit = kv.find("challenger");
  if (cit != kv.end()) {
    const auto challenger = parse_cc_name(cit->second);
    if (!challenger) {
      throw std::invalid_argument{"unknown challenger '" + cit->second + "'"};
    }
    q.challenger = *challenger;
  }
  q.trial.trials = integer("trials", 3);
  q.trial.duration = from_sec(num("duration", 30));
  q.trial.warmup = from_sec(num("warmup", num("duration", 30) / 4));
  const auto sit = kv.find("seed");
  if (sit != kv.end()) q.trial.seed = parse_u64_strict("seed", sit->second);
  q.trial.jobs = integer("jobs", 1);
  return q;
}

JsonlRecord serve_answer_record(const OracleAnswer& a) {
  // Start from the MixOutcome fields for ok answers, then overlay the
  // answer metadata. JsonlRecord::encode() sorts keys, so two equal
  // answers are equal strings — the kill-drill bit-identity contract.
  JsonlRecord rec;
  if (a.ok()) rec = mix_to_record(a.outcome);
  rec.set("schema", kSchemaOracle);
  rec.set("status", to_string(a.status));
  rec.set("fidelity", to_string(a.fidelity));
  rec.set("key", a.key);
  if (a.band_deviation >= 0.0) rec.set("band_dev", a.band_deviation);
  if (!a.reason.empty()) rec.set("reason", a.reason);
  if (!a.message.empty()) rec.set("message", sanitize_for_line(a.message));
  return rec;
}

JsonlRecord serve_stats_to_record(const ServeStats& s) {
  JsonlRecord rec;
  rec.set("schema", kSchemaServeStats);
  rec.set("clients_accepted", s.clients_accepted);
  rec.set("clients_disconnected", s.clients_disconnected);
  rec.set("slow_clients_dropped", s.slow_clients_dropped);
  rec.set("requests", s.requests);
  rec.set("answered_inline", s.answered_inline);
  rec.set("computed", s.computed);
  rec.set("shed", s.shed);
  rec.set("timeouts", s.timeouts);
  rec.set("bad_requests", s.bad_requests);
  rec.set("incidents", s.incidents);
  return rec;
}

const char* to_string(ClientStatus s) {
  switch (s) {
    case ClientStatus::kOk:
      return "ok";
    case ClientStatus::kConnectFailed:
      return "connect-failed";
    case ClientStatus::kTimeout:
      return "timeout";
    case ClientStatus::kDisconnected:
      return "disconnected";
    case ClientStatus::kProtocolError:
      return "protocol-error";
  }
  return "unknown";
}

// --- Daemon ----------------------------------------------------------------

struct OracleDaemon::Impl {
  struct PendingRequest {
    std::uint64_t client_id = 0;
    std::uint64_t wire_id = 0;
    OracleQuery q;
    std::string key;
    Clock::time_point deadline{};
    bool has_deadline = false;
    std::atomic<bool> answered{false};
  };

  struct Completion {
    std::shared_ptr<PendingRequest> req;
    OracleAnswer ans;
  };

  struct Client {
    int fd = -1;
    std::uint64_t id = 0;
    IpcLineReader reader;
    std::string out;                    ///< reply bytes not yet written
    Clock::time_point last_progress{};  ///< last successful write / empty out
    bool chaos_stalled = false;         ///< kSlowClient drill: suppress writes
    bool reads_done = false;            ///< EOF seen or draining
    bool dead = false;
    std::size_t in_flight = 0;          ///< queued/running compute requests
  };

  explicit Impl(ServeConfig cfg) : cfg_(std::move(cfg)), oracle_(cfg_.oracle) {
    if (cfg_.socket_path.empty()) {
      throw std::invalid_argument{"ServeConfig.socket_path is required"};
    }
    incident_path_ = cfg_.incident_path;
    if (incident_path_.empty()) {
      incident_path_ = (cfg_.oracle.cache_path.empty()
                            ? cfg_.socket_path
                            : cfg_.oracle.cache_path) +
                       ".incidents.jsonl";
    }
  }

  ~Impl() { stop_workers_and_join(); }

  // -- incidents ------------------------------------------------------------

  void write_incident(const char* trigger, std::uint64_t client_id,
                      const std::string& key, const std::string& note) {
    JsonlRecord rec;
    rec.set("type", kSchemaServe);
    rec.set("trigger", trigger);
    rec.set("pid", static_cast<std::uint64_t>(getpid()));
    rec.set("client", client_id);
    if (!key.empty()) rec.set("cell_key", key);
    if (!note.empty()) rec.set("note", sanitize_for_line(note));
    if (cfg_.chaos) rec.set("chaos", cfg_.chaos->describe());
    try {
      const std::lock_guard<std::mutex> lk{incident_mu_};
      append_jsonl_line(incident_path_, rec.encode());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: cannot write incident record: %s\n",
                   e.what());
    }
    const std::lock_guard<std::mutex> lk{stats_mu_};
    ++stats_.incidents;
  }

  // -- compute workers ------------------------------------------------------

  void worker_loop() {
    for (;;) {
      std::shared_ptr<PendingRequest> req;
      {
        std::unique_lock<std::mutex> lk{queue_mu_};
        queue_cv_.wait(lk,
                       [&] { return workers_quit_ || !queue_.empty(); });
        if (queue_.empty()) return;
        req = queue_.front();
        queue_.pop_front();
      }
      if (cfg_.chaos && cfg_.chaos_serve_crash &&
          cfg_.chaos->should_fire(ChaosClass::kServeCrash,
                                  "serve-crash " + req->key)) {
        // Mid-compute crash drill: the cell has NOT been memoized, the
        // socket file is left in place (stale), and clients see a raw
        // disconnect — exactly the kill -9 shape. The incident record is
        // the one breadcrumb (a real SIGKILL leaves none, which the
        // restart path must also survive; tests drill both).
        write_incident("serve-crash", req->client_id, req->key,
                       "chaos: daemon killed mid-compute");
        // bbrnash-lint: allow(process-control) -- kServeCrash drill: die
        // without unwinding, like kill -9, so restart recovery is honest.
        std::_Exit(42);
      }
      Completion done;
      done.ans = oracle_.query_compute(req->q);
      done.req = std::move(req);
      {
        const std::lock_guard<std::mutex> lk{completion_mu_};
        completions_.push_back(std::move(done));
      }
      wake_pipe_poke(wake_fds_[1]);
    }
  }

  void start_workers() {
    workers_quit_ = false;
    const int n = std::max(1, cfg_.compute_threads);
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void stop_workers_and_join() {
    {
      const std::lock_guard<std::mutex> lk{queue_mu_};
      workers_quit_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    workers_.clear();
  }

  // -- client/session plumbing ----------------------------------------------

  void enqueue_out(Client& c, const std::string& frame) {
    if (c.dead) return;
    if (c.out.empty()) c.last_progress = Clock::now();
    c.out += frame;
    c.out += '\n';
    if (c.out.size() > cfg_.max_reply_buffer) {
      drop_slow_client(c, "reply buffer over max_reply_buffer");
      return;
    }
    flush_client(c);
  }

  void post_answer(Client& c, std::uint64_t wire_id, const OracleAnswer& a) {
    if (cfg_.chaos && cfg_.chaos_slow_client && !c.chaos_stalled &&
        cfg_.chaos->should_fire(ChaosClass::kSlowClient,
                                "serve-slow " + a.key)) {
      // Write-stall drill: stop flushing this client so the genuine
      // stall detector (write_stall_ms with no progress) trips and the
      // drop/incident path executes for real.
      c.chaos_stalled = true;
    }
    enqueue_out(c, "answer " + std::to_string(wire_id) + " " +
                       serve_answer_record(a).encode());
  }

  void flush_client(Client& c) {
    if (c.dead || c.chaos_stalled) return;
    while (!c.out.empty()) {
      const long w = ipc_write_some(c.fd, c.out.data(), c.out.size());
      if (w > 0) {
        c.out.erase(0, static_cast<std::size_t>(w));
        c.last_progress = Clock::now();
        continue;
      }
      if (w == 0) return;  // EAGAIN: poll will retry
      // Hard error (EPIPE from a vanished peer — delivered as a return
      // value, never a SIGPIPE): typed incident, not process death.
      write_incident("client-disconnect", c.id, "",
                     "write failed with " + std::string{std::strerror(errno)} +
                         "; " + std::to_string(c.out.size()) +
                         " reply bytes dropped");
      mark_dead(c, /*count_disconnect=*/true);
      return;
    }
  }

  void drop_slow_client(Client& c, const std::string& why) {
    write_incident("slow-client", c.id, "",
                   why + "; dropping client with " +
                       std::to_string(c.out.size()) + " unsent reply bytes");
    {
      const std::lock_guard<std::mutex> lk{stats_mu_};
      ++stats_.slow_clients_dropped;
    }
    mark_dead(c, /*count_disconnect=*/false);
  }

  void mark_dead(Client& c, bool count_disconnect) {
    if (c.dead) return;
    c.dead = true;
    ipc_close(c.fd);
    c.fd = -1;
    c.out.clear();
    if (count_disconnect) {
      const std::lock_guard<std::mutex> lk{stats_mu_};
      ++stats_.clients_disconnected;
    }
  }

  Client* find_client(std::uint64_t id) {
    const auto it = clients_.find(id);
    return it == clients_.end() ? nullptr : &it->second;
  }

  // Returns false when the client was dropped mid-handling (stop
  // processing its remaining lines).
  bool handle_line(Client& c, const std::string& line) {
    std::stringstream ss{line};
    std::string verb;
    std::string id_tok;
    ss >> verb >> id_tok;
    std::uint64_t id = 0;
    if (!id_tok.empty()) {
      try {
        id = parse_u64_strict("request id", id_tok);
      } catch (const std::exception&) {
        bump_bad_request();
        enqueue_out(c, "error 0 unparseable request id '" +
                           sanitize_for_line(id_tok) + "'");
        return !c.dead;
      }
    }
    if (verb == "ping") {
      enqueue_out(c, "pong " + std::to_string(id));
      return !c.dead;
    }
    if (verb == "stats") {
      JsonlRecord rec = serve_stats_to_record(stats());
      const OracleStats os = oracle_.stats();
      rec.set("oracle_queries", os.queries);
      rec.set("oracle_exact_hits", os.exact_hits);
      rec.set("oracle_interpolated", os.interpolated);
      rec.set("oracle_model_only", os.model_only);
      rec.set("oracle_computed", os.computed);
      rec.set("oracle_pending", os.pending);
      rec.set("cache_size", static_cast<std::uint64_t>(oracle_.cache_size()));
      enqueue_out(c, "stats " + std::to_string(id) + " " + rec.encode());
      return !c.dead;
    }
    if (verb != "query") {
      bump_bad_request();
      enqueue_out(c, "error " + std::to_string(id) + " unknown verb '" +
                         sanitize_for_line(verb) + "'");
      return !c.dead;
    }

    {
      const std::lock_guard<std::mutex> lk{stats_mu_};
      ++stats_.requests;
    }
    OracleQuery q;
    try {
      std::string rest;
      std::getline(ss, rest);
      q = oracle_query_from_tokens(parse_query_tokens(rest));
    } catch (const std::exception& e) {
      bump_bad_request();
      enqueue_out(c, "error " + std::to_string(id) + " " +
                         sanitize_for_line(e.what()));
      return !c.dead;
    }
    const std::string key = oracle_key(q);

    if (cfg_.chaos && cfg_.chaos_client_disconnect &&
        cfg_.chaos->should_fire(ChaosClass::kClientDisconnect,
                                "serve-disconnect " + key)) {
      // Mid-request disconnect drill: sever the session before the reply,
      // as if the peer vanished. The client's bounded retry reconnects
      // and (fire-once) the resent request is answered normally.
      write_incident("client-disconnect", c.id, key,
                     "chaos: client connection severed mid-request");
      mark_dead(c, /*count_disconnect=*/true);
      return false;
    }

    const auto cached = oracle_.query_cached(q);
    if (cached) {
      {
        const std::lock_guard<std::mutex> lk{stats_mu_};
        ++stats_.answered_inline;
      }
      post_answer(c, id, *cached);
      return !c.dead;
    }
    if (cfg_.oracle.no_compute) {
      {
        const std::lock_guard<std::mutex> lk{stats_mu_};
        ++stats_.answered_inline;
      }
      post_answer(c, id, oracle_.answer_without_compute(q, "no-compute"));
      return !c.dead;
    }
    bool shed_now = false;
    {
      const std::lock_guard<std::mutex> lk{queue_mu_};
      if (queue_.size() >= cfg_.shed_queue_limit) {
        shed_now = true;
      } else {
        auto req = std::make_shared<PendingRequest>();
        req->client_id = c.id;
        req->wire_id = id;
        req->q = q;
        req->key = key;
        if (cfg_.request_deadline_ms > 0.0) {
          req->has_deadline = true;
          req->deadline =
              Clock::now() + std::chrono::microseconds(static_cast<long long>(
                                 cfg_.request_deadline_ms * 1000.0));
        }
        queue_.push_back(req);
        live_.push_back(std::move(req));
        ++c.in_flight;
      }
    }
    if (shed_now) {
      // Load shedding: answer NOW from the degraded tiers (model-only when
      // the closed forms apply, else kPending reason=shed) instead of
      // blocking the poll thread or growing the backlog unboundedly. The
      // fidelity tag rides along — numbers are never fabricated.
      {
        const std::lock_guard<std::mutex> lk{stats_mu_};
        ++stats_.shed;
      }
      post_answer(c, id, oracle_.answer_without_compute(q, "shed"));
      return !c.dead;
    }
    queue_cv_.notify_one();
    return !c.dead;
  }

  void bump_bad_request() {
    const std::lock_guard<std::mutex> lk{stats_mu_};
    ++stats_.bad_requests;
  }

  void read_client(Client& c) {
    if (c.dead || c.reads_done) return;
    std::vector<std::string> lines;
    const bool open = c.reader.drain(c.fd, &lines);
    for (const std::string& line : lines) {
      if (line.empty()) continue;
      if (!handle_line(c, line)) return;
    }
    if (!open) {
      c.reads_done = true;
      if (c.in_flight > 0 || !c.out.empty() || c.reader.buffered() > 0) {
        // The peer vanished with work outstanding: typed incident. The
        // in-flight computes still finish and land in the memo, so a
        // reconnecting client gets exact answers.
        write_incident("client-disconnect", c.id, "",
                       "EOF with " + std::to_string(c.in_flight) +
                           " request(s) in flight and " +
                           std::to_string(c.out.size()) +
                           " unsent reply bytes");
      }
      // The slot stays in clients_ until in-flight computes complete
      // (their answers are discarded; the memoization is the point) —
      // reap_dead_clients() erases it once in_flight hits 0.
      mark_dead(c, /*count_disconnect=*/true);
    }
  }

  void pump_completions() {
    std::vector<Completion> done;
    {
      const std::lock_guard<std::mutex> lk{completion_mu_};
      done.swap(completions_);
    }
    for (Completion& comp : done) {
      const std::shared_ptr<PendingRequest>& req = comp.req;
      Client* c = find_client(req->client_id);
      if (c != nullptr && c->in_flight > 0) --c->in_flight;
      const bool first = !req->answered.exchange(true);
      if (first && c != nullptr && !c->dead) {
        {
          const std::lock_guard<std::mutex> lk{stats_mu_};
          ++stats_.computed;
        }
        post_answer(*c, req->wire_id, comp.ans);
      }
      // Not-first (deadline already answered) or dead client: the reply is
      // dropped, but query_compute already memoized the cell — a retry is
      // an exact hit.
      live_.erase(std::remove(live_.begin(), live_.end(), req), live_.end());
    }
  }

  void sweep_deadlines() {
    const Clock::time_point now = Clock::now();
    for (const std::shared_ptr<PendingRequest>& req : live_) {
      if (!req->has_deadline || now < req->deadline) continue;
      if (req->answered.exchange(true)) continue;
      {
        const std::lock_guard<std::mutex> lk{stats_mu_};
        ++stats_.timeouts;
      }
      Client* c = find_client(req->client_id);
      if (c != nullptr && !c->dead) {
        // Typed timeout: kPending(reason=timeout) — the compute is NOT
        // cancelled, so the memo warms and a retry converges on exact.
        post_answer(*c, req->wire_id,
                    oracle_.answer_without_compute(req->q, "timeout"));
      }
    }
  }

  void sweep_stalls() {
    if (cfg_.write_stall_ms <= 0.0) return;
    const Clock::time_point now = Clock::now();
    for (auto& [id, c] : clients_) {
      if (c.dead || c.out.empty()) continue;
      if (ms_between(c.last_progress, now) > cfg_.write_stall_ms) {
        drop_slow_client(c, "no write progress for " +
                                std::to_string(static_cast<long long>(
                                    cfg_.write_stall_ms)) +
                                " ms");
      }
    }
  }

  void reap_dead_clients() {
    for (auto it = clients_.begin(); it != clients_.end();) {
      if (it->second.dead && it->second.in_flight == 0) {
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void begin_drain() {
    if (draining_) return;
    draining_ = true;
    // One final read per client: everything the peer already sent is
    // answered before the socket goes away ("finish in-flight").
    for (auto& [id, c] : clients_) {
      if (!c.dead && !c.reads_done) {
        read_client(c);
        c.reads_done = true;
      }
    }
  }

  bool drain_complete() {
    if (!live_.empty()) return false;
    {
      const std::lock_guard<std::mutex> lk{queue_mu_};
      if (!queue_.empty()) return false;
    }
    for (const auto& [id, c] : clients_) {
      if (!c.dead && !c.out.empty()) return false;
    }
    return true;
  }

  bool run() {
    std::string err;
    listen_fd_ = ipc_listen(cfg_.socket_path, &err);
    if (listen_fd_ < 0) {
      error_ = err;
      return false;
    }
    ipc_set_nonblocking(listen_fd_);
    if (pipe(wake_fds_) != 0) {
      error_ = "pipe() failed";
      ipc_close(listen_fd_);
      ipc_unlink(cfg_.socket_path);
      return false;
    }
    ipc_set_nonblocking(wake_fds_[0]);
    ipc_set_nonblocking(wake_fds_[1]);
    start_workers();

    std::unique_ptr<ScopedServeSignals> signals;
    if (cfg_.handle_signals) signals = std::make_unique<ScopedServeSignals>();
    serving_.store(true);

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_client;  // parallel: client id or 0
    for (;;) {
      if ((stop_.load() || (cfg_.handle_signals && g_serve_stop != 0)) &&
          !draining_) {
        begin_drain();
      }
      pump_completions();
      sweep_deadlines();
      sweep_stalls();
      reap_dead_clients();
      if (draining_ && drain_complete()) break;

      fds.clear();
      fd_client.clear();
      fds.push_back({wake_fds_[0], POLLIN, 0});
      fd_client.push_back(0);
      if (!draining_) {
        fds.push_back({listen_fd_, POLLIN, 0});
        fd_client.push_back(0);
      }
      for (auto& [id, c] : clients_) {
        if (c.dead) continue;
        short events = 0;
        if (!c.reads_done) events |= POLLIN;
        if (!c.out.empty() && !c.chaos_stalled) events |= POLLOUT;
        if (events == 0) continue;
        fds.push_back({c.fd, events, 0});
        fd_client.push_back(id);
      }
      const int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);
      if (rc < 0) {
        if (errno == EINTR) continue;  // signal: loop re-checks stop flags
        error_ = std::string{"poll(): "} + std::strerror(errno);
        break;
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        const pollfd& p = fds[i];
        if (p.revents == 0) continue;
        if (p.fd == wake_fds_[0]) {
          drain_pipe(wake_fds_[0]);
          continue;
        }
        if (p.fd == listen_fd_) {
          for (;;) {
            const int cfd = ipc_accept(listen_fd_);
            if (cfd < 0) break;
            ipc_set_nonblocking(cfd);
            Client c;
            c.fd = cfd;
            c.id = next_client_id_++;
            c.last_progress = Clock::now();
            clients_.emplace(c.id, std::move(c));
            const std::lock_guard<std::mutex> lk{stats_mu_};
            ++stats_.clients_accepted;
          }
          continue;
        }
        Client* c = find_client(fd_client[i]);
        if (c == nullptr || c->dead) continue;
        if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (p.revents & POLLIN) == 0) {
          // Peer reset with nothing readable: treat as EOF.
          read_client(*c);
          continue;
        }
        if ((p.revents & POLLIN) != 0) read_client(*c);
        if (c->dead) continue;
        if ((p.revents & POLLOUT) != 0) flush_client(*c);
      }
    }

    stop_workers_and_join();
    pump_completions();  // workers may have posted on the way out
    // Close sessions AFTER their replies flushed (drain_complete checked),
    // so clients read every answer and then a clean EOF.
    for (auto& [id, c] : clients_) {
      if (!c.dead) mark_dead(c, /*count_disconnect=*/false);
    }
    clients_.clear();
    oracle_.flush();
    ipc_close(listen_fd_);
    listen_fd_ = -1;
    ipc_close(wake_fds_[0]);
    ipc_close(wake_fds_[1]);
    ipc_unlink(cfg_.socket_path);
    serving_.store(false);
    return error_.empty();
  }

  ServeStats stats() const {
    const std::lock_guard<std::mutex> lk{stats_mu_};
    return stats_;
  }

  ServeConfig cfg_;
  PayoffOracle oracle_;
  std::string incident_path_;
  std::string error_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> serving_{false};
  bool draining_ = false;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::uint64_t next_client_id_ = 1;
  std::map<std::uint64_t, Client> clients_;
  std::vector<std::shared_ptr<PendingRequest>> live_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<PendingRequest>> queue_;
  bool workers_quit_ = false;
  std::vector<std::thread> workers_;

  std::mutex completion_mu_;
  std::vector<Completion> completions_;

  std::mutex incident_mu_;
  mutable std::mutex stats_mu_;
  ServeStats stats_;
};

OracleDaemon::OracleDaemon(ServeConfig cfg)
    : impl_(std::make_unique<Impl>(std::move(cfg))) {}

OracleDaemon::~OracleDaemon() = default;

bool OracleDaemon::run() { return impl_->run(); }

void OracleDaemon::request_stop() { impl_->stop_.store(true); }

bool OracleDaemon::serving() const { return impl_->serving_.load(); }

ServeStats OracleDaemon::stats() const { return impl_->stats(); }

OracleStats OracleDaemon::oracle_stats() const {
  return impl_->oracle_.stats();
}

std::string OracleDaemon::error() const { return impl_->error_; }

// --- Client ----------------------------------------------------------------

OracleClient::OracleClient(ClientConfig cfg) : cfg_(std::move(cfg)) {}

OracleClient::~OracleClient() { ipc_close(fd_); }

void OracleClient::backoff_sleep(int attempt) {
  double delay = cfg_.backoff_base_ms;
  for (int i = 1; i < attempt; ++i) {
    delay *= 2.0;
    if (delay >= cfg_.backoff_cap_ms) break;
  }
  delay = std::min(delay, cfg_.backoff_cap_ms);
  delay *= 0.5 + 0.5 * jitter_u01(cfg_.jitter_seed, attempt);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long long>(delay * 1000.0)));
}

bool OracleClient::ensure_connected() {
  if (fd_ >= 0) return true;
  for (int attempt = 1; attempt <= cfg_.max_attempts; ++attempt) {
    std::string err;
    fd_ = ipc_connect(cfg_.socket_path, &err);
    if (fd_ >= 0) {
      // The reply loop polls before draining; the fd must be nonblocking or
      // IpcLineReader::drain would block in recv() once the buffered bytes
      // are consumed.
      ipc_set_nonblocking(fd_);
      // Any connection after the client's first is a RE-connection — the
      // observable the disconnect drills assert on — whether or not this
      // particular connect() needed a retry.
      if (connected_before_) ++reconnects_;
      connected_before_ = true;
      return true;
    }
    if (attempt < cfg_.max_attempts) backoff_sleep(attempt);
  }
  return false;
}

void OracleClient::drop_connection() {
  ipc_close(fd_);
  fd_ = -1;
}

namespace {

// One parsed daemon frame.
struct Frame {
  std::string verb;
  std::uint64_t id = 0;
  std::string payload;
};

std::optional<Frame> parse_frame(const std::string& line) {
  std::stringstream ss{line};
  Frame f;
  std::string id_tok;
  if (!(ss >> f.verb >> id_tok)) return std::nullopt;
  try {
    f.id = parse_u64_strict("reply id", id_tok);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  std::getline(ss, f.payload);
  if (!f.payload.empty() && f.payload[0] == ' ') f.payload.erase(0, 1);
  return f;
}

}  // namespace

ClientStatus OracleClient::query_lines(
    const std::vector<std::string>& query_lines,
    std::vector<ServeReply>* replies) {
  replies->clear();
  replies->resize(query_lines.size());
  std::vector<bool> answered(query_lines.size(), false);
  std::size_t remaining = query_lines.size();
  if (remaining == 0) return ClientStatus::kOk;

  bool ever_connected = fd_ >= 0;
  int session_attempt = 0;
  while (remaining > 0) {
    ++session_attempt;
    if (session_attempt > cfg_.max_attempts) {
      return ever_connected ? ClientStatus::kDisconnected
                            : ClientStatus::kConnectFailed;
    }
    if (session_attempt > 1) backoff_sleep(session_attempt - 1);
    if (!ensure_connected()) return ClientStatus::kConnectFailed;
    ever_connected = true;

    // (Re)send every still-unanswered request on this connection; answered
    // entries keep their first reply.
    std::map<std::uint64_t, std::size_t> pending;
    bool send_ok = true;
    for (std::size_t i = 0; i < query_lines.size(); ++i) {
      if (answered[i]) continue;
      const std::uint64_t id = next_id_++;
      if (!ipc_write_line(fd_, "query " + std::to_string(id) + " " +
                                   query_lines[i])) {
        send_ok = false;
        break;
      }
      pending.emplace(id, i);
    }
    if (!send_ok) {
      drop_connection();
      continue;
    }

    IpcLineReader reader;
    Clock::time_point last_reply = Clock::now();
    bool disconnected = false;
    while (!pending.empty() && !disconnected) {
      pollfd p{fd_, POLLIN, 0};
      const int rc = poll(&p, 1, 50);
      if (rc < 0 && errno != EINTR) {
        disconnected = true;
        break;
      }
      if (cfg_.reply_timeout_ms > 0.0 &&
          ms_between(last_reply, Clock::now()) > cfg_.reply_timeout_ms) {
        return ClientStatus::kTimeout;
      }
      if (rc <= 0 || (p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      std::vector<std::string> lines;
      const bool open = reader.drain(fd_, &lines);
      for (const std::string& line : lines) {
        const auto frame = parse_frame(line);
        if (!frame) return ClientStatus::kProtocolError;
        const auto it = pending.find(frame->id);
        if (it == pending.end()) continue;  // duplicate/stale id
        const std::size_t idx = it->second;
        if (frame->verb == "answer") {
          (*replies)[idx].raw = frame->payload;
          const auto rec = JsonlRecord::parse(frame->payload);
          if (!rec) return ClientStatus::kProtocolError;
          (*replies)[idx].record = *rec;
        } else if (frame->verb == "error") {
          // The request itself was malformed: a typed failed record, no
          // retry (resending the same bad tokens cannot succeed).
          JsonlRecord rec;
          rec.set("schema", kSchemaOracle);
          rec.set("status", "failed");
          rec.set("message", frame->payload);
          (*replies)[idx].raw = "";
          (*replies)[idx].record = rec;
        } else {
          return ClientStatus::kProtocolError;
        }
        answered[idx] = true;
        --remaining;
        pending.erase(it);
        last_reply = Clock::now();
      }
      if (!open) disconnected = true;
    }
    if (disconnected && remaining > 0) {
      drop_connection();
      continue;
    }
  }
  return ClientStatus::kOk;
}

ClientStatus OracleClient::fetch_stats(JsonlRecord* out) {
  for (int attempt = 1; attempt <= cfg_.max_attempts; ++attempt) {
    if (attempt > 1) backoff_sleep(attempt - 1);
    if (!ensure_connected()) return ClientStatus::kConnectFailed;
    const std::uint64_t id = next_id_++;
    if (!ipc_write_line(fd_, "stats " + std::to_string(id))) {
      drop_connection();
      continue;
    }
    IpcLineReader reader;
    const Clock::time_point start = Clock::now();
    for (;;) {
      pollfd p{fd_, POLLIN, 0};
      const int rc = poll(&p, 1, 50);
      if (rc < 0 && errno != EINTR) break;
      if (cfg_.reply_timeout_ms > 0.0 &&
          ms_between(start, Clock::now()) > cfg_.reply_timeout_ms) {
        return ClientStatus::kTimeout;
      }
      if (rc <= 0 || (p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      std::vector<std::string> lines;
      const bool open = reader.drain(fd_, &lines);
      for (const std::string& line : lines) {
        const auto frame = parse_frame(line);
        if (!frame || frame->verb != "stats" || frame->id != id) continue;
        const auto rec = JsonlRecord::parse(frame->payload);
        if (!rec) return ClientStatus::kProtocolError;
        *out = *rec;
        return ClientStatus::kOk;
      }
      if (!open) break;
    }
    drop_connection();
  }
  return ClientStatus::kDisconnected;
}

}  // namespace bbrnash
