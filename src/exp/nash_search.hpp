// Empirical Nash Equilibrium search (the paper's §4.4/§4.5 methodology).
//
// Same-RTT populations are symmetric, so a strategy profile is just k = the
// number of flows running the non-CUBIC algorithm. Two searches are
// provided:
//   * enumerate — the paper's method: simulate every k in [0, n], build the
//     payoff tables, list all equilibria (via model::SymmetricGame);
//   * crossing — exploits the measured monotone decay of BBR's per-flow
//     throughput in k (the paper's Fig. 5 "diminishing returns"): binary
//     search for the fair-share crossing, then verify the NE condition on
//     the crossing's neighbourhood. O(log n) runs instead of O(n).
// Multi-RTT populations (Fig. 10) use best-response dynamics over
// per-RTT-group counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/congestion_control.hpp"
#include "exp/sweeps.hpp"
#include "model/nash.hpp"
#include "model/network_params.hpp"

namespace bbrnash {

struct NashSearchConfig {
  CcKind challenger = CcKind::kBbr;  ///< the non-CUBIC strategy
  TrialConfig trial;
  /// Throughput slack treated as "no incentive" (fraction of fair share).
  /// The paper observes multiple neighbouring NE because gains near the
  /// crossing are inside noise; this models that explicitly.
  double tolerance_frac = 0.05;
  /// When non-empty, every simulated distribution is checkpointed to this
  /// append-only JSONL file and a killed search restarted with the same
  /// path resumes from the finished cells, reproducing the uninterrupted
  /// numbers exactly (see exp/checkpoint.hpp).
  std::string checkpoint_path;
};

/// Per-distribution payoff tables: index k = number of challenger flows.
struct EmpiricalPayoffs {
  std::vector<double> cubic_mbps;  ///< per-flow CUBIC payoff at k (k < n)
  std::vector<double> other_mbps;  ///< per-flow challenger payoff at k (k > 0)
};

/// Per-trial failures inside a cell are tolerated (the cell averages its
/// surviving trials), but a cell with ZERO completed trials has no payoff
/// to report: measure_payoffs and find_ne_crossing throw std::runtime_error
/// carrying the per-trial diagnostics rather than feed 0 Mbps to the search.
[[nodiscard]] EmpiricalPayoffs measure_payoffs(const NetworkParams& net,
                                               int total_flows,
                                               const NashSearchConfig& cfg);

/// Full-enumeration NE list from measured payoffs.
[[nodiscard]] std::vector<int> find_ne_enumerate(const NetworkParams& net,
                                                 int total_flows,
                                                 const NashSearchConfig& cfg);

/// Crossing search: returns one representative NE value of k.
[[nodiscard]] int find_ne_crossing(const NetworkParams& net, int total_flows,
                                   const NashSearchConfig& cfg);

// --- Multi-RTT (Fig. 10) -------------------------------------------------

struct RttGroup {
  TimeNs base_rtt = from_ms(40);
  int flows = 10;
};

struct GroupProfile {
  std::vector<int> cubic_per_group;  ///< rest of each group runs challenger

  [[nodiscard]] int total_cubic() const {
    int n = 0;
    for (const int c : cubic_per_group) n += c;
    return n;
  }
};

struct MultiRttNe {
  GroupProfile profile;
  std::vector<double> group_cubic_mbps;  ///< per-flow, by group (0 if none)
  std::vector<double> group_other_mbps;
  int steps_taken = 0;   ///< best-response moves until absorption
  bool converged = false;
};

/// Best-response dynamics over group-level unilateral deviations, starting
/// from `start`. Each step simulates the candidate deviations and takes the
/// most profitable strictly-improving one.
[[nodiscard]] MultiRttNe find_multi_rtt_ne(BytesPerSec capacity,
                                           Bytes buffer_bytes,
                                           const std::vector<RttGroup>& groups,
                                           const GroupProfile& start,
                                           const NashSearchConfig& cfg);

}  // namespace bbrnash
