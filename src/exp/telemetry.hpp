// Telemetry: periodic snapshots of a running scenario.
//
// Attach a sampler to Scenario (`sample_period` + `on_sample`) and
// run_scenario() will deliver a Snapshot of every flow's congestion state
// and the bottleneck queue at each period — the data behind time-series
// plots like the paper's Fig. 12 discussion (cwnd-limited vs not) and the
// flow_timeline example.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cc/congestion_control.hpp"
#include "util/units.hpp"

namespace bbrnash {

struct FlowSnapshot {
  CcKind cc = CcKind::kCubic;
  Bytes cwnd = 0;
  BytesPerSec pacing_rate = 0;   ///< kNoPacing when unpaced
  Bytes inflight = 0;
  Bytes delivered = 0;           ///< lifetime delivered payload bytes
  Bytes queue_bytes = 0;         ///< this flow's bottleneck occupancy
  std::uint64_t retransmits = 0;
  std::uint64_t rtos = 0;
  TimeNs smoothed_rtt = kTimeNone;
};

struct Snapshot {
  TimeNs t = 0;
  std::vector<FlowSnapshot> flows;
  Bytes queue_bytes = 0;         ///< total bottleneck occupancy
  std::uint64_t total_drops = 0;
  Bytes bytes_served = 0;        ///< cumulative at the bottleneck
};

using SampleFn = std::function<void(const Snapshot&)>;

/// Convenience sink: accumulates snapshots in memory.
class SnapshotLog {
 public:
  [[nodiscard]] SampleFn sink() {
    return [this](const Snapshot& s) { snapshots_.push_back(s); };
  }
  [[nodiscard]] const std::vector<Snapshot>& snapshots() const {
    return snapshots_;
  }
  [[nodiscard]] bool empty() const { return snapshots_.empty(); }

  /// Per-flow goodput (bytes/sec) between consecutive snapshots i-1 and i.
  [[nodiscard]] double goodput_between(std::size_t i, std::size_t flow) const;

  /// Writes a CSV with one row per (snapshot, flow).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<Snapshot> snapshots_;
};

}  // namespace bbrnash
