#include "exp/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <deque>
#include <utility>

namespace bbrnash {

namespace {

/// Depth of pool tasks on this thread's stack; > 0 means a parallel_for
/// from here must run inline (the outermost loop owns the parallelism).
thread_local int tl_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++tl_region_depth; }
  ~RegionGuard() { --tl_region_depth; }
};

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

std::mutex g_telemetry_mu;
ParallelTelemetry g_telemetry;

void fold_worker_delta(const WorkerTelemetry& delta) {
  const std::lock_guard<std::mutex> lk{g_telemetry_mu};
  g_telemetry.cells_run += delta.cells_run;
  g_telemetry.steals += delta.steals;
  g_telemetry.busy_seconds += delta.busy_seconds;
  g_telemetry.cpu_seconds += delta.cpu_seconds;
}

}  // namespace

int hardware_jobs() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int resolve_jobs(int jobs) noexcept {
  return jobs <= 0 ? hardware_jobs() : jobs;
}

ParallelTelemetry parallel_telemetry() {
  const std::lock_guard<std::mutex> lk{g_telemetry_mu};
  return g_telemetry;
}

void reset_parallel_telemetry() {
  const std::lock_guard<std::mutex> lk{g_telemetry_mu};
  g_telemetry = ParallelTelemetry{};
}

void note_trial_outcomes(std::uint64_t retried, std::uint64_t failed) {
  if (retried == 0 && failed == 0) return;
  const std::lock_guard<std::mutex> lk{g_telemetry_mu};
  g_telemetry.trials_retried += retried;
  g_telemetry.trials_failed += failed;
}

std::string describe(const ParallelTelemetry& t) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "parallel: %llu cells over %llu regions on <=%d workers, "
                "%llu steals, %llu retried, %llu failed, "
                "busy %.2fs cpu %.2fs wall %.2fs",
                static_cast<unsigned long long>(t.cells_run),
                static_cast<unsigned long long>(t.regions), t.max_workers,
                static_cast<unsigned long long>(t.steals),
                static_cast<unsigned long long>(t.trials_retried),
                static_cast<unsigned long long>(t.trials_failed),
                t.busy_seconds, t.cpu_seconds, t.wall_seconds);
  return buf;
}

struct TrialPool::Worker {
  std::mutex mu;                ///< guards q only
  std::deque<std::size_t> q;    ///< own run: pop front; thieves pop back
  WorkerTelemetry telemetry;    ///< written by owner inside run_tasks only
};

bool TrialPool::in_parallel_region() noexcept { return tl_region_depth > 0; }

TrialPool::TrialPool(int jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(static_cast<std::size_t>(jobs_));
  for (int w = 0; w < jobs_; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int w = 1; w < jobs_; ++w) {
    threads_.emplace_back(&TrialPool::worker_main, this,
                          static_cast<std::size_t>(w));
  }
}

TrialPool::~TrialPool() {
  {
    const std::lock_guard<std::mutex> lk{mu_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TrialPool::worker_main(std::size_t self) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk{mu_};
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lk.unlock();
    run_tasks(self);
    lk.lock();
    if (--workers_active_ == 0) done_cv_.notify_all();
  }
}

bool TrialPool::pop_task(std::size_t self, std::size_t* idx, bool* stolen) {
  {
    Worker& me = *workers_[self];
    const std::lock_guard<std::mutex> lk{me.mu};
    if (!me.q.empty()) {
      *idx = me.q.front();
      me.q.pop_front();
      *stolen = false;
      return true;
    }
  }
  const auto n = workers_.size();
  for (std::size_t off = 1; off < n; ++off) {
    Worker& victim = *workers_[(self + off) % n];
    const std::lock_guard<std::mutex> lk{victim.mu};
    if (!victim.q.empty()) {
      *idx = victim.q.back();
      victim.q.pop_back();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void TrialPool::note_error(std::size_t idx) {
  const std::lock_guard<std::mutex> lk{err_mu_};
  if (first_error_ == nullptr || idx < first_error_index_) {
    first_error_ = std::current_exception();
    first_error_index_ = idx;
  }
}

void TrialPool::run_tasks(std::size_t self) {
  const RegionGuard region;
  const auto wall0 = std::chrono::steady_clock::now();
  const double cpu0 = thread_cpu_seconds();
  WorkerTelemetry delta;
  while (tasks_left_.load(std::memory_order_acquire) > 0) {
    std::size_t idx = 0;
    bool stolen = false;
    if (!pop_task(self, &idx, &stolen)) break;  // tail is running elsewhere
    if (stolen) ++delta.steals;
    try {
      (*fn_)(idx);
    } catch (...) {
      note_error(idx);
    }
    ++delta.cells_run;
    tasks_left_.fetch_sub(1, std::memory_order_acq_rel);
  }
  delta.busy_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall0)
                           .count();
  delta.cpu_seconds = thread_cpu_seconds() - cpu0;
  WorkerTelemetry& mine = workers_[self]->telemetry;
  mine.cells_run += delta.cells_run;
  mine.steals += delta.steals;
  mine.busy_seconds += delta.busy_seconds;
  mine.cpu_seconds += delta.cpu_seconds;
  fold_worker_delta(delta);
}

void TrialPool::parallel_for(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1 || in_parallel_region()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const auto wall0 = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lk{mu_};
    const auto jobs = static_cast<std::size_t>(jobs_);
    for (std::size_t w = 0; w < jobs; ++w) {
      // Contiguous runs keep each worker's indices cache-adjacent; the
      // steal path rebalances when runs finish unevenly.
      const std::size_t lo = w * n / jobs;
      const std::size_t hi = (w + 1) * n / jobs;
      const std::lock_guard<std::mutex> wlk{workers_[w]->mu};
      for (std::size_t i = lo; i < hi; ++i) workers_[w]->q.push_back(i);
    }
    fn_ = &fn;
    first_error_ = nullptr;
    first_error_index_ = 0;
    tasks_left_.store(n, std::memory_order_release);
    workers_active_ = jobs_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  run_tasks(0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk{mu_};
    done_cv_.wait(lk, [&] { return workers_active_ == 0; });
    fn_ = nullptr;
    error = std::exchange(first_error_, nullptr);
  }
  {
    const std::lock_guard<std::mutex> lk{g_telemetry_mu};
    ++g_telemetry.regions;
    g_telemetry.wall_seconds += std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - wall0)
                                    .count();
    g_telemetry.max_workers = std::max(g_telemetry.max_workers, jobs_);
  }
  // Deterministic failure: the smallest-index exception is the one the
  // serial loop would have thrown first.
  if (error != nullptr) std::rethrow_exception(error);
}

std::vector<WorkerTelemetry> TrialPool::worker_telemetry() const {
  std::vector<WorkerTelemetry> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) out.push_back(w->telemetry);
  return out;
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  const int resolved = resolve_jobs(jobs);
  if (resolved == 1 || n <= 1 || TrialPool::in_parallel_region()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  TrialPool pool{resolved};
  pool.parallel_for(n, fn);
}

}  // namespace bbrnash
