// Scenario: a complete description of one dumbbell experiment.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "cc/congestion_control.hpp"
#include "exp/telemetry.hpp"
#include "model/network_params.hpp"
#include "net/impairment.hpp"
#include "net/packet.hpp"
#include "sim/audit.hpp"
#include "util/units.hpp"

namespace bbrnash {

/// Bottleneck queue discipline for a scenario.
enum class AqmKind { kDropTail, kRed, kCoDel };

/// All queue disciplines, in a fixed order — the single source for
/// round-tripping names between the CLI, the benches and the tests.
inline constexpr AqmKind kAllAqmKinds[] = {AqmKind::kDropTail, AqmKind::kRed,
                                           AqmKind::kCoDel};

[[nodiscard]] const char* to_string(AqmKind kind);
/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<AqmKind> parse_aqm(std::string_view name);

/// One step of a bottleneck rate schedule (link flaps, diurnal profiles).
struct RateChange {
  TimeNs at = 0;           ///< absolute simulated time
  BytesPerSec rate = 0;    ///< new service rate, must be > 0
};

/// A square-wave link flap: capacity drops to `down_rate` for `down_for`
/// out of every `period`, starting at t = period - down_for, until `until`.
[[nodiscard]] std::vector<RateChange> make_flap_schedule(
    TimeNs period, TimeNs down_for, BytesPerSec up_rate, BytesPerSec down_rate,
    TimeNs until);

struct FlowSpec {
  CcKind cc = CcKind::kCubic;
  TimeNs base_rtt = from_ms(40);
  /// 0 = unbounded bulk flow; otherwise a finite transfer of this size.
  Bytes transfer_bytes = 0;
  /// Explicit start time; kTimeNone = start at t ~ U[0, start_jitter).
  TimeNs start_at = kTimeNone;
  /// Per-flow data-path impairments; overrides Scenario::impairments when
  /// set (e.g. one lossy access link in an otherwise clean population).
  std::optional<ImpairmentConfig> impairments{};
};

struct Scenario {
  BytesPerSec capacity = mbps(100);
  Bytes buffer_bytes = 0;
  std::vector<FlowSpec> flows;
  TimeNs duration = from_sec(30);   ///< total simulated time
  TimeNs warmup = from_sec(6);      ///< excluded from all averages
  TimeNs start_jitter = from_ms(100);  ///< flows start uniform in [0, jitter)
  /// Per-packet random delay on the sender->bottleneck access path,
  /// uniform in [0, access_jitter). Defaults (when negative) to one
  /// bottleneck packet serialization time. Deterministic drop-tail
  /// simulations otherwise phase-lock: a short-RTT flow's ack-clocked
  /// window increments always arrive exactly when the queue is full and
  /// soak up ALL the drops (Floyd & Jacobson's "phase effects"); real
  /// testbeds have enough cross-traffic/OS noise to break this.
  TimeNs access_jitter = -1;
  Bytes mss = kDefaultMss;
  std::uint64_t seed = 1;
  /// Ablation knob: BBR-family cwnd gain (paper assumption 2 uses 2.0).
  double bbr_cwnd_gain = 2.0;

  /// Telemetry: when both are set, `on_sample` receives a Snapshot every
  /// `sample_period` of simulated time (starting at t = sample_period).
  TimeNs sample_period = 0;
  SampleFn on_sample;

  /// Queue discipline at the bottleneck (default: the paper's drop-tail).
  AqmKind aqm = AqmKind::kDropTail;

  /// Data-path impairments applied to every flow without a per-flow
  /// override (pristine by default — the paper's assumption).
  ImpairmentConfig impairments;
  /// ACK-path impairments (all flows; the paper's reverse path is clean).
  ImpairmentConfig ack_impairments;
  /// Bottleneck rate schedule; empty = constant `capacity`. Entries are
  /// applied at their absolute times (need not be sorted).
  std::vector<RateChange> capacity_schedule;

  /// Conservation audit + crash flight recorder (--audit). Instrumentation
  /// is installed only when audit.active(), so the default leaves the
  /// zero-allocation hot path untouched.
  AuditConfig audit;

  /// Test-only: construct senders through the virtual-dispatch
  /// CongestionControl adapter instead of the devirtualized CcVariant hot
  /// path. The two are bit-identical by construction (same algorithm code,
  /// same factory config mapping); the jobs x dispatch equivalence suite
  /// pins that claim by running both and comparing RunOutcomes.
  bool virtual_cc_dispatch = false;

  [[nodiscard]] int count(CcKind kind) const {
    int n = 0;
    for (const auto& f : flows) n += (f.cc == kind) ? 1 : 0;
    return n;
  }

  /// Largest service rate the bottleneck ever runs at (the capacity bound
  /// the conservation invariant checks against).
  [[nodiscard]] BytesPerSec peak_capacity() const {
    BytesPerSec peak = capacity;
    for (const auto& c : capacity_schedule) {
      if (c.rate > peak) peak = c.rate;
    }
    return peak;
  }

  /// Rejects ill-formed scenarios with a clear message
  /// (std::invalid_argument) instead of a deep-in-simulation assertion:
  /// non-positive duration/mss/capacity/buffer, warmup >= duration, empty
  /// flows, bad impairment probabilities, non-positive scheduled rates.
  void validate() const;
};

/// The paper's standard setup: `num_cubic` + `num_other` flows with one
/// shared base RTT through (C, B). `other` defaults to BBR.
Scenario make_mix_scenario(const NetworkParams& net, int num_cubic,
                           int num_other, CcKind other = CcKind::kBbr);

}  // namespace bbrnash
