// Typed outcomes for guarded scenario runs.
//
// Sweeps and NE searches launch hundreds of simulations; one runaway or
// degenerate trial must not take the whole batch down. run_scenario_guarded
// therefore never lets an abort or an invariant violation escape as an
// exception: every attempt ends in a RunOutcome that says *what* happened
// (watchdog abort, invariant violation, error) with enough diagnostics to
// reproduce it, and degenerate trials are retried with a bumped seed.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/run_result.hpp"
#include "util/units.hpp"

namespace bbrnash {

class ChaosInjector;

enum class RunStatus {
  kOk,
  kAbortedEventBudget,   ///< watchdog: simulated-event budget exhausted
  kAbortedWallClock,     ///< watchdog: wall-clock limit exceeded
  kInvariantViolation,   ///< a runtime invariant guard fired
  kError,                ///< an exception escaped the simulation
};

[[nodiscard]] const char* to_string(RunStatus status);

/// Thrown by the unguarded run_scenario when an always-on invariant guard
/// fires (the guarded runner converts this into a RunOutcome instead).
class InvariantViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Where and why a run ended (populated for every status, including kOk).
struct RunDiagnostics {
  std::string message;                 ///< empty when status == kOk
  std::uint64_t events_executed = 0;
  /// LIVE events still queued when the run ended (EventQueue::size(), not
  /// raw_size(): lazily-cancelled dead entries must not inflate the
  /// reported backlog under cancellation-heavy scenarios).
  std::uint64_t pending_events = 0;
  TimeNs sim_time_reached = 0;
  double wall_seconds = 0.0;
};

/// Watchdog limits for one simulation attempt. The event budget aborts
/// deterministically (same scenario + seed stops at the same event); the
/// wall-clock limit is a best-effort backstop checked between simulated
/// slices. 0 disables either limit.
struct WatchdogConfig {
  std::uint64_t max_events = 0;
  double max_wall_seconds = 0.0;
};

/// Retry policy for guarded runs.
struct GuardConfig {
  WatchdogConfig watchdog;
  /// Total attempts per scenario (>= 1). Attempt i runs with
  /// seed + i * seed_bump, the same degenerate-trial remedy the paper's
  /// testbed scripts applied by re-randomizing start offsets.
  int max_attempts = 1;
  std::uint64_t seed_bump = 0x9E3779B9ULL;
  /// Deterministic fault injection for tests and drills: an attempt whose
  /// scenario seed is listed here reports an invariant violation instead of
  /// its result. The seed-bump retry then proceeds normally.
  std::vector<std::uint64_t> inject_failure_seeds;
  /// Chaos injection (--chaos SEED). Chaos faults are environmental, so the
  /// guarded runner redoes the attempt with the SAME seed and does not
  /// consume a retry attempt — recovered results stay bit-identical to a
  /// fault-free run. Shared because sweeps copy GuardConfig per trial but
  /// the fire-once bookkeeping must be global to the experiment.
  std::shared_ptr<ChaosInjector> chaos;
};

// nodiscard on the TYPE: a dropped RunOutcome silently swallows a watchdog
// abort or invariant violation, so every producer inherits the check.
struct [[nodiscard]] RunOutcome {
  RunStatus status = RunStatus::kOk;
  RunResult result;          ///< complete only when ok(); partial otherwise
  RunDiagnostics diagnostics;
  std::uint64_t seed_used = 0;  ///< seed of the final attempt
  int attempts = 1;             ///< attempts consumed (1 = no retry)

  [[nodiscard]] bool ok() const noexcept { return status == RunStatus::kOk; }
};

}  // namespace bbrnash
