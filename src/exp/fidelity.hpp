// Bench fidelity knobs.
//
// The paper's full grids (10 trials x 2-minute flows x every distribution x
// dozens of buffer sizes x 6 network settings) are hours of CPU. Every
// bench binary scales its grid by the BBRNASH_FIDELITY environment
// variable:
//   quick — smoke-test sized (seconds),
//   default — minutes for the whole suite, shapes preserved,
//   full — the paper's durations and grids.
#pragma once

#include "util/units.hpp"

namespace bbrnash {

enum class Fidelity { kQuick, kDefault, kFull };

/// Reads BBRNASH_FIDELITY ("quick" | "default" | "full"); anything else
/// (including unset) yields kDefault.
Fidelity fidelity_from_env();

/// Flow duration for throughput experiments at this fidelity.
/// The paper uses 120 s; default fidelity uses 60 s, quick 25 s.
TimeNs experiment_duration(Fidelity f);

/// Warm-up excluded from measurements (slow-start convergence).
TimeNs experiment_warmup(Fidelity f);

/// Trials per configuration (paper: 10, default: 3, quick: 1).
int experiment_trials(Fidelity f);

/// Grid thinning factor for buffer sweeps (1 = paper's step).
int sweep_step_multiplier(Fidelity f);

const char* to_string(Fidelity f);

}  // namespace bbrnash
