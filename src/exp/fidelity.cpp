#include "exp/fidelity.hpp"

#include <cstdlib>
#include <string>

namespace bbrnash {

Fidelity fidelity_from_env() {
  // bbrnash-lint: allow(nondeterminism) -- explicit operator knob read
  // once at startup; selects a test-fidelity profile, never a result.
  const char* raw = std::getenv("BBRNASH_FIDELITY");
  if (raw == nullptr) return Fidelity::kDefault;
  const std::string v{raw};
  if (v == "quick") return Fidelity::kQuick;
  if (v == "full") return Fidelity::kFull;
  return Fidelity::kDefault;
}

TimeNs experiment_duration(Fidelity f) {
  switch (f) {
    case Fidelity::kQuick:
      return from_sec(25);
    case Fidelity::kDefault:
      return from_sec(60);
    case Fidelity::kFull:
      return from_sec(120);
  }
  return from_sec(60);
}

TimeNs experiment_warmup(Fidelity f) {
  switch (f) {
    case Fidelity::kQuick:
      return from_sec(8);
    case Fidelity::kDefault:
      return from_sec(15);
    case Fidelity::kFull:
      return from_sec(15);
  }
  return from_sec(15);
}

int experiment_trials(Fidelity f) {
  switch (f) {
    case Fidelity::kQuick:
      return 1;
    case Fidelity::kDefault:
      return 3;
    case Fidelity::kFull:
      return 10;
  }
  return 3;
}

int sweep_step_multiplier(Fidelity f) {
  switch (f) {
    case Fidelity::kQuick:
      return 6;
    case Fidelity::kDefault:
      return 2;
    case Fidelity::kFull:
      return 1;
  }
  return 2;
}

const char* to_string(Fidelity f) {
  switch (f) {
    case Fidelity::kQuick:
      return "quick";
    case Fidelity::kDefault:
      return "default";
    case Fidelity::kFull:
      return "full";
  }
  return "default";
}

}  // namespace bbrnash
